/**
 * @file
 * Deep-network-stack baseline: the paper's Fig. 1 (netpipe between two
 * Calxeda ECX-1000 microservers over integrated 10 GbE).
 *
 * The phenomenon Fig. 1 documents is that per-packet protocol processing
 * on wimpy cores dominates: >40 us round-trip latency for small messages
 * and <2 Gbps bandwidth for large ones, despite a 10 Gbps fabric. The
 * model charges per-MTU-packet kernel/stack costs on sender and receiver
 * core resources (which also caps streaming bandwidth) plus link
 * serialization and propagation.
 */

#ifndef SONUMA_BASELINE_TCP_STACK_HH
#define SONUMA_BASELINE_TCP_STACK_HH

#include <cstdint>
#include <memory>

#include "sim/event_queue.hh"
#include "sim/service.hh"
#include "sim/stats.hh"
#include "sim/sync.hh"
#include "sim/task.hh"
#include "sim/types.hh"

namespace sonuma::baseline {

/** TCP/IP-on-wimpy-cores cost model. */
struct TcpParams
{
    std::uint32_t mtu = 1500;                     //!< bytes per packet
    sim::Tick perPacketTx = sim::usToTicks(5.0);  //!< kernel tx path
    sim::Tick perPacketRx = sim::usToTicks(6.0);  //!< irq + rx + copy
    sim::Tick perMessageTx = sim::usToTicks(12.0); //!< syscall + wakeup
    sim::Tick perMessageRx = sim::usToTicks(15.0); //!< wakeup + copyout
    double linkBandwidth = 1.25e9;                //!< 10 Gbps
    sim::Tick linkLat = sim::usToTicks(1.5);      //!< phy + NIC + switch
};

/**
 * A netpipe-style pair of hosts running a TCP/IP stack.
 */
class TcpPair
{
  public:
    TcpPair(sim::EventQueue &eq, sim::StatRegistry &stats,
            const TcpParams &params = {});

    /**
     * Deliver a @p len byte message from host 0 to host 1; resumes when
     * the receiver's stack hands the last byte to the application.
     */
    [[nodiscard]] sim::Task send(std::uint32_t len);

    /** Round trip: send @p len, peer replies with @p len. */
    [[nodiscard]] sim::Task pingPong(std::uint32_t len);

    /**
     * Stream @p count messages of @p len back to back (half duplex);
     * used for the bandwidth curve.
     */
    [[nodiscard]] sim::Task stream(std::uint32_t len, std::uint64_t count);

    const TcpParams &params() const { return params_; }

  private:
    sim::EventQueue &eq_;
    TcpParams params_;
    std::unique_ptr<sim::ServiceResource> txCore_[2];
    std::unique_ptr<sim::ServiceResource> rxCore_[2];
    std::unique_ptr<sim::BandwidthPipe> link_[2];

    sim::Counter packets_;

    /** Transfer one message in direction @p dir (0: A->B, 1: B->A). */
    sim::Task transfer(int dir, std::uint32_t len);
};

} // namespace sonuma::baseline

#endif // SONUMA_BASELINE_TCP_STACK_HH
