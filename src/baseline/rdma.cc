/**
 * @file
 * RDMA baseline implementation.
 */

#include "baseline/rdma.hh"

namespace sonuma::baseline {

RdmaPair::RdmaPair(sim::EventQueue &eq, sim::StatRegistry &stats,
                   const RdmaParams &params)
    : eq_(eq), params_(params), sq_(eq, params.maxOutstanding),
      ops_(stats, "rdma.ops", "completed RDMA operations")
{
    for (std::uint32_t i = 0; i < params.qpEngines; ++i) {
        srcEngines_.push_back(std::make_unique<sim::ServiceResource>(
            eq, "rdma.srcEngine" + std::to_string(i)));
        dstEngines_.push_back(std::make_unique<sim::ServiceResource>(
            eq, "rdma.dstEngine" + std::to_string(i)));
    }
    srcPcie_ = std::make_unique<sim::BandwidthPipe>(
        eq, "rdma.srcPcie", params.pcieBandwidth, params.pcieLat);
    dstPcie_ = std::make_unique<sim::BandwidthPipe>(
        eq, "rdma.dstPcie", params.pcieBandwidth, params.pcieLat);
    linkFwd_ = std::make_unique<sim::BandwidthPipe>(
        eq, "rdma.linkFwd", params.linkBandwidth, params.linkLat);
    linkRev_ = std::make_unique<sim::BandwidthPipe>(
        eq, "rdma.linkRev", params.linkBandwidth, params.linkLat);
}

sim::Task
RdmaPair::engine(std::vector<std::unique_ptr<sim::ServiceResource>> &pool)
{
    // Engine occupancy bounds throughput; the remaining latency of the
    // adapter pass overlaps with other operations.
    auto &eng = *pool[rr_++ % pool.size()];
    co_await eng.use(params_.adapterOcc);
    const sim::Tick extra = params_.adapterLat > params_.adapterOcc
                                ? params_.adapterLat - params_.adapterOcc
                                : 0;
    if (extra > 0)
        co_await sim::Delay(eq_, extra);
}

sim::Task
RdmaPair::pipeSend(sim::BandwidthPipe &pipe, std::uint64_t bytes)
{
    sim::OneShotEvent done(eq_);
    pipe.send(bytes, [&done] { done.set(); });
    co_await done;
}

sim::Task
RdmaPair::oneOp(std::uint32_t len, bool atomic)
{
    // Source host: doorbell with inlined WQE crosses PCIe.
    co_await sim::Delay(eq_, params_.doorbell);
    // Source adapter processes and transmits the request.
    co_await engine(srcEngines_);
    co_await pipeSend(*linkFwd_, 32);
    // Destination adapter: DMA the payload out of host memory (request
    // crosses PCIe, DRAM access, data streams back over PCIe).
    co_await engine(dstEngines_);
    if (atomic) {
        // Adapter-resident atomic: extra adapter pass instead of bulk DMA.
        co_await sim::Delay(eq_, params_.pcieLat);
        co_await sim::Delay(eq_, params_.memLat);
        co_await sim::Delay(eq_, params_.pcieLat);
        co_await engine(dstEngines_);
    } else {
        co_await sim::Delay(eq_, params_.pcieLat);
        co_await sim::Delay(eq_, params_.memLat);
        co_await pipeSend(*dstPcie_, len);
    }
    // Reply travels back over the link.
    co_await engine(dstEngines_);
    co_await pipeSend(*linkRev_, atomic ? 40 : 16 + len);
    // Source adapter DMA-writes payload + CQE into host memory.
    co_await engine(srcEngines_);
    co_await pipeSend(*srcPcie_, (atomic ? 8 : len) + 16);
    // Host observes the CQE by polling.
    co_await sim::Delay(eq_, params_.pollDetect);
    ops_.inc();
}

sim::Task
RdmaPair::read(std::uint32_t len)
{
    co_await oneOp(len, false);
}

sim::Task
RdmaPair::fetchAdd()
{
    co_await oneOp(8, true);
}

sim::Task
RdmaPair::stream(std::uint32_t len, std::uint64_t count)
{
    // Windowed issue: maxOutstanding ops in flight, like a deep SQ.
    sim::Condition allDone(eq_);
    std::uint64_t completed = 0;
    for (std::uint64_t i = 0; i < count; ++i) {
        co_await sq_.acquire();
        [](RdmaPair *self, std::uint32_t len, std::uint64_t *completed,
           std::uint64_t count, sim::Condition *allDone)
            -> sim::FireAndForget {
            co_await self->oneOp(len, false);
            self->sq_.release();
            if (++*completed == count)
                allDone->notifyAll();
        }(this, len, &completed, count, &allDone);
    }
    while (completed < count)
        co_await allDone.wait();
}

} // namespace sonuma::baseline
