/**
 * @file
 * RDMA-over-PCIe baseline: a queueing model of the paper's comparison
 * system (Mellanox ConnectX-3 on PCIe Gen3 + 56 Gbps InfiniBand,
 * back-to-back hosts; §7.4, Table 2).
 *
 * This is a *substitute* for hardware we do not have (DESIGN.md §1).
 * The model charges the mechanism the paper identifies as the gap
 * soNUMA closes: every operation crosses the PCIe bus multiple times
 * (doorbell, DMA of payload and CQE), and all processing runs in the
 * adapter rather than in the node's coherence hierarchy. Defaults are
 * calibrated to the published behaviour: ~1.19 us 64 B read RTT,
 * ~50 Gbps PCIe-limited bandwidth, ~1.15 us fetch-and-add, and
 * ~8-9 M IOPS per QP engine.
 */

#ifndef SONUMA_BASELINE_RDMA_HH
#define SONUMA_BASELINE_RDMA_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "sim/event_queue.hh"
#include "sim/service.hh"
#include "sim/stats.hh"
#include "sim/sync.hh"
#include "sim/task.hh"
#include "sim/types.hh"

namespace sonuma::baseline {

/** Tunable latency/bandwidth components of the RDMA path. */
struct RdmaParams
{
    sim::Tick doorbell = sim::nsToTicks(150);   //!< MMIO + inlined WQE
    sim::Tick adapterLat = sim::nsToTicks(70);  //!< per adapter pass
    sim::Tick adapterOcc = sim::nsToTicks(55);  //!< engine occupancy/op
    double pcieBandwidth = 6.25e9;              //!< 50 Gbps payload
    sim::Tick pcieLat = sim::nsToTicks(180);    //!< one-way transit
    double linkBandwidth = 7e9;                 //!< 56 Gbps InfiniBand
    sim::Tick linkLat = sim::nsToTicks(50);     //!< back-to-back cable
    sim::Tick memLat = sim::nsToTicks(60);      //!< host DRAM at target
    sim::Tick pollDetect = sim::nsToTicks(70);  //!< CQE polling at source
    std::uint32_t qpEngines = 1;                //!< parallel QP engines
    std::uint32_t maxOutstanding = 64;          //!< send queue depth
};

/**
 * A pair of hosts connected back-to-back through RDMA adapters.
 * Supports one-sided reads and fetch-and-add from host 0 to host 1.
 */
class RdmaPair
{
  public:
    RdmaPair(sim::EventQueue &eq, sim::StatRegistry &stats,
             const RdmaParams &params = {});

    /** One-sided read of @p len bytes; returns at CQE observation. */
    [[nodiscard]] sim::Task read(std::uint32_t len);

    /** Atomic fetch-and-add executed by the remote adapter. */
    [[nodiscard]] sim::Task fetchAdd();

    /**
     * Issue @p count reads of @p len bytes with up to maxOutstanding in
     * flight; completes when all have. Used for BW/IOPS measurements.
     */
    [[nodiscard]] sim::Task stream(std::uint32_t len, std::uint64_t count);

    const RdmaParams &params() const { return params_; }
    std::uint64_t completedOps() const { return ops_.value(); }

  private:
    sim::EventQueue &eq_;
    RdmaParams params_;

    // One engine pool per adapter; reads pass each adapter twice.
    std::vector<std::unique_ptr<sim::ServiceResource>> srcEngines_;
    std::vector<std::unique_ptr<sim::ServiceResource>> dstEngines_;
    std::unique_ptr<sim::BandwidthPipe> srcPcie_;  //!< adapter -> host mem
    std::unique_ptr<sim::BandwidthPipe> dstPcie_;  //!< adapter <-> host mem
    std::unique_ptr<sim::BandwidthPipe> linkFwd_;
    std::unique_ptr<sim::BandwidthPipe> linkRev_;
    sim::Semaphore sq_;
    std::uint64_t rr_ = 0; //!< round-robin engine pick

    sim::Counter ops_;

    sim::Task oneOp(std::uint32_t len, bool atomic);
    sim::Task engine(std::vector<std::unique_ptr<sim::ServiceResource>> &p);
    sim::Task pipeSend(sim::BandwidthPipe &pipe, std::uint64_t bytes);
};

} // namespace sonuma::baseline

#endif // SONUMA_BASELINE_RDMA_HH
