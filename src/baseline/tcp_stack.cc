/**
 * @file
 * TCP deep-stack baseline implementation.
 */

#include "baseline/tcp_stack.hh"

namespace sonuma::baseline {

TcpPair::TcpPair(sim::EventQueue &eq, sim::StatRegistry &stats,
                 const TcpParams &params)
    : eq_(eq), params_(params),
      packets_(stats, "tcp.packets", "MTU packets processed")
{
    for (int h = 0; h < 2; ++h) {
        txCore_[h] = std::make_unique<sim::ServiceResource>(
            eq, "tcp.tx" + std::to_string(h));
        rxCore_[h] = std::make_unique<sim::ServiceResource>(
            eq, "tcp.rx" + std::to_string(h));
        link_[h] = std::make_unique<sim::BandwidthPipe>(
            eq, "tcp.link" + std::to_string(h), params.linkBandwidth,
            params.linkLat);
    }
}

sim::Task
TcpPair::transfer(int dir, std::uint32_t len)
{
    const int src = dir;
    const int dst = 1 - dir;
    const std::uint32_t packetCount =
        std::max<std::uint32_t>(1, (len + params_.mtu - 1) / params_.mtu);

    // Per-message syscall/wakeup cost, then a pipelined per-packet path:
    // tx stack -> wire -> rx stack. After the last packet, the receiver
    // pays the per-message wakeup + copy-out before the app sees data.
    co_await txCore_[src]->use(params_.perMessageTx);

    sim::Condition lastDone(eq_);
    bool finished = false;
    std::uint32_t remaining = packetCount;
    for (std::uint32_t p = 0; p < packetCount; ++p) {
        const std::uint32_t bytes =
            std::min<std::uint32_t>(params_.mtu, len - p * params_.mtu);
        packets_.inc();
        txCore_[src]->submit(params_.perPacketTx, [this, src, dst, bytes,
                                                   &remaining, &finished,
                                                   &lastDone] {
            link_[src]->send(bytes + 66 /* eth+ip+tcp headers */,
                             [this, dst, &remaining, &finished,
                              &lastDone] {
                                 rxCore_[dst]->submit(
                                     params_.perPacketRx,
                                     [this, dst, &remaining, &finished,
                                      &lastDone] {
                                         if (--remaining > 0)
                                             return;
                                         rxCore_[dst]->submit(
                                             params_.perMessageRx,
                                             [&finished, &lastDone] {
                                                 finished = true;
                                                 lastDone.notifyAll();
                                             });
                                     });
                             });
        });
    }
    while (!finished)
        co_await lastDone.wait();
}

sim::Task
TcpPair::send(std::uint32_t len)
{
    co_await transfer(0, len);
}

sim::Task
TcpPair::pingPong(std::uint32_t len)
{
    co_await transfer(0, len);
    co_await transfer(1, len);
}

sim::Task
TcpPair::stream(std::uint32_t len, std::uint64_t count)
{
    for (std::uint64_t i = 0; i < count; ++i)
        co_await transfer(0, len);
}

} // namespace sonuma::baseline
