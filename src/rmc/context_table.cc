/**
 * @file
 * Context Table implementation.
 */

#include "rmc/context_table.hh"

#include <cassert>

namespace sonuma::rmc {

ContextTable::ContextTable(sim::StatRegistry &stats, const std::string &name,
                           mem::PAddr basePa, std::uint32_t maxContexts,
                           std::uint32_t cacheEntries)
    : basePa_(basePa), maxContexts_(maxContexts), entries_(maxContexts),
      cache_(cacheEntries),
      hits_(stats, name + ".ctCacheHits", "CT$ hits"),
      misses_(stats, name + ".ctCacheMisses", "CT$ misses")
{
}

void
ContextTable::install(sim::CtxId ctx, const CtEntry &entry)
{
    assert(ctx < maxContexts_);
    if (&entries_[ctx] != &entry)
        entries_[ctx] = entry;
    entries_[ctx].valid = true;
    invalidateCache(); // driver updated memory behind the CT$
}

void
ContextTable::remove(sim::CtxId ctx)
{
    assert(ctx < maxContexts_);
    entries_[ctx] = CtEntry{};
    invalidateCache();
}

const CtEntry *
ContextTable::entry(sim::CtxId ctx) const
{
    if (ctx >= maxContexts_ || !entries_[ctx].valid)
        return nullptr;
    return &entries_[ctx];
}

CtEntry *
ContextTable::entryMutable(sim::CtxId ctx)
{
    if (ctx >= maxContexts_ || !entries_[ctx].valid)
        return nullptr;
    return &entries_[ctx];
}

bool
ContextTable::cacheLookup(sim::CtxId ctx)
{
    if (!cacheEnabled_) {
        misses_.inc();
        return false;
    }
    for (auto &slot : cache_) {
        if (slot.valid && slot.ctx == ctx) {
            slot.lastUse = ++useClock_;
            hits_.inc();
            return true;
        }
    }
    misses_.inc();
    return false;
}

void
ContextTable::fill(sim::CtxId ctx)
{
    if (!cacheEnabled_)
        return;
    CacheSlot *victim = nullptr;
    for (auto &slot : cache_) {
        if (slot.valid && slot.ctx == ctx)
            return; // already present (raced fill)
        if (!slot.valid) {
            victim = &slot;
            break;
        }
        if (!victim || slot.lastUse < victim->lastUse)
            victim = &slot;
    }
    victim->valid = true;
    victim->ctx = ctx;
    victim->lastUse = ++useClock_;
}

void
ContextTable::invalidateCache()
{
    for (auto &slot : cache_)
        slot.valid = false;
}

void
ContextTable::setCacheEnabled(bool enabled)
{
    cacheEnabled_ = enabled;
    if (!enabled)
        invalidateCache();
}

} // namespace sonuma::rmc
