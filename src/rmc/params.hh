/**
 * @file
 * RMC configuration, with presets for the paper's two platforms.
 *
 * - simulatedHardware(): hardwired pipelines, per-stage cycle costs
 *   (paper Table 1: 3 independent pipelines, 32-entry MAQ, 32-entry TLB).
 * - emulationPlatform(): the Xen "development platform" substitute — RMC
 *   logic runs as software on two emulated kernel threads (one for
 *   RGP+RCP, one for RRPP, as in §7.1), with per-WQ-entry and per-line
 *   software processing costs that reproduce its measured behaviour
 *   (~1.5 us remote read RTT, ~1.8 Gbps bandwidth ceiling).
 */

#ifndef SONUMA_RMC_PARAMS_HH
#define SONUMA_RMC_PARAMS_HH

#include <cstdint>
#include <stdexcept>
#include <string>

#include "sim/types.hh"

namespace sonuma::rmc {

/** Which platform the RMC models (paper §7.1). */
enum class Platform
{
    kSimulatedHardware,
    kEmulation,
};

struct RmcParams
{
    Platform platform = Platform::kSimulatedHardware;

    //
    // Structure sizes
    //
    std::uint32_t maxTids = 64;        //!< ITT entries / transfer ids
    std::uint32_t tlbEntries = 32;     //!< MMU TLB (Table 1)
    std::uint32_t maqEntries = 32;     //!< Memory Access Queue (Table 1)
    std::uint32_t ctCacheEntries = 8;  //!< CT$ (recently used CT entries)
    std::uint32_t maxContexts = 16;
    std::uint32_t maxQpsPerContext = 16;
    std::uint32_t qpEntries = 64;      //!< WQ/CQ ring depth per queue pair

    //
    // Session-level queue-pair fan-out (paper Table 2: IOPS scale with
    // the number of QPs). Each RmcSession registers this many
    // independent WQ/CQ pairs and distributes posts across them; 1
    // reproduces the classic one-QP-per-thread model of §4.2.
    //
    std::uint32_t qpCount = 1;

    //
    // RGP arbitration: WQ entries one armed QP may consume before the
    // pipeline rotates to the next armed QP. Bounds how long one
    // streaming QP can hold the (single, shared) request pipeline when
    // several QPs have work — the multi-QP fairness knob.
    //
    std::uint32_t rgpQpBurst = 8;

    //
    // Hardwired-pipeline stage costs, in core cycles (the 'L' states of
    // Fig. 3b are combinational; memory states are charged by the MAQ).
    //
    double freqGhz = 2.0;
    std::uint32_t rgpStageCycles = 30;  //!< per WQ entry (parse/init)
    std::uint32_t rgpPerLineCycles = 2; //!< per unrolled line (pipelined)
    std::uint32_t rrppStageCycles = 60; //!< per serviced request
    std::uint32_t rcpStageCycles = 40;  //!< per processed reply

    //
    // Source-side transfer timeout: a transfer whose replies stop
    // arriving (node/link failure swallowed the packets) is aborted
    // with a fabric-error completion after this long. Complements the
    // driver's failure notification (§5.1) for requests that were still
    // queued when the failure hit.
    //
    sim::Tick transferTimeout = sim::usToTicks(200);

    //
    // Reliable delivery (timeout-driven retransmission). A transfer
    // whose replies stop arriving is retransmitted by the sweep instead
    // of aborted: up to maxAttempts total attempts, each retransmit
    // delayed by rnrBackoff doubled per attempt (capped at
    // rnrBackoffCapDoublings doublings). Only after the attempt budget
    // is exhausted does the transfer abort with a fabric-error
    // completion. maxAttempts == 1 restores the legacy abort-on-first-
    // timeout behaviour.
    //
    std::uint32_t maxAttempts = 4;
    sim::Tick rnrBackoff = sim::usToTicks(5);
    std::uint32_t rnrBackoffCapDoublings = 4;

    //
    // Destination-side replay-dedup window: the RRPP remembers the last
    // dedupWindow mutating requests (writes/atomics) by (srcNid, tid,
    // offset) and answers a replayed one with its cached reply instead
    // of executing it again — the exactly-once half of the protocol
    // (reads are idempotent and are never deduplicated). 0 disables the
    // window. Purely functional: lookups charge no cycles, so the
    // no-loss path is timing-identical with the window on or off.
    //
    std::uint32_t dedupWindow = 1024;

    //
    // Emulation-platform software costs (only used when platform ==
    // kEmulation). These model RMCemu's per-item processing on its
    // dedicated virtual CPUs.
    //
    sim::Tick emuPerWqEntry = sim::nsToTicks(230);  //!< parse + schedule
    sim::Tick emuPerLine = sim::nsToTicks(150);     //!< unroll one line
    sim::Tick emuPerReply = sim::nsToTicks(130);    //!< absorb one reply
    sim::Tick emuRrppPerLine = sim::nsToTicks(280); //!< serve one request
    sim::Tick emuPollDelay = sim::nsToTicks(175);   //!< queue-poll lag

    /** Cycle duration shortcut. */
    sim::Tick
    cycles(std::uint32_t n) const
    {
        return sim::Clock(freqGhz).cycles(n);
    }

    bool emulation() const { return platform == Platform::kEmulation; }

    static RmcParams
    simulatedHardware()
    {
        return RmcParams{};
    }

    static RmcParams
    emulationPlatform()
    {
        RmcParams p;
        p.platform = Platform::kEmulation;
        // Software per-line costs make large transfers thousands of
        // times slower than hardware; scale the abort timeout with them.
        p.transferTimeout = sim::usToTicks(50000);
        return p;
    }
};

/**
 * Eager configuration check (the ClusterParams convention): throws
 * std::invalid_argument with a precise message instead of misbehaving
 * deep inside a ring cursor or the RGP. Called by node::validate for
 * every cluster build; also usable directly.
 */
inline void
validate(const RmcParams &params)
{
    if (params.qpEntries == 0)
        throw std::invalid_argument(
            "RmcParams: qpEntries must be >= 1 (got 0); each queue pair "
            "needs at least one WQ/CQ ring slot");
    if (params.qpEntries > 65536)
        throw std::invalid_argument(
            "RmcParams: qpEntries " + std::to_string(params.qpEntries) +
            " exceeds 65536, the largest ring a CQ entry's 16-bit "
            "wqIndex can address");
    if (params.qpCount == 0)
        throw std::invalid_argument(
            "RmcParams: qpCount must be >= 1 (got 0); a session cannot "
            "operate without a queue pair");
    if (params.qpCount > params.maxQpsPerContext)
        throw std::invalid_argument(
            "RmcParams: qpCount " + std::to_string(params.qpCount) +
            " exceeds maxQpsPerContext " +
            std::to_string(params.maxQpsPerContext) +
            "; raise maxQpsPerContext or lower the per-session fan-out");
    if (params.maxQpsPerContext == 0)
        throw std::invalid_argument(
            "RmcParams: maxQpsPerContext must be >= 1 (got 0)");
    if (params.rgpQpBurst == 0)
        throw std::invalid_argument(
            "RmcParams: rgpQpBurst must be >= 1 (got 0); the RGP must "
            "consume at least one WQ entry per arbitration turn");
    if (params.maxTids == 0)
        throw std::invalid_argument(
            "RmcParams: maxTids must be >= 1 (got 0); the RMC needs at "
            "least one in-flight transfer id");
    if (params.maxTids > 65536)
        throw std::invalid_argument(
            "RmcParams: maxTids " + std::to_string(params.maxTids) +
            " exceeds 65536, the largest index a packed 16-bit tid "
            "field can carry");
    if (params.maxAttempts == 0)
        throw std::invalid_argument(
            "RmcParams: maxAttempts must be >= 1 (got 0); every "
            "transfer needs at least its first attempt");
    if (params.maxAttempts > 255)
        throw std::invalid_argument(
            "RmcParams: maxAttempts " +
            std::to_string(params.maxAttempts) +
            " exceeds 255, the largest value the packet's 8-bit "
            "attempt tag can carry");
    if (params.dedupWindow > (1u << 20))
        throw std::invalid_argument(
            "RmcParams: dedupWindow " +
            std::to_string(params.dedupWindow) +
            " exceeds 2^20 entries; the replay window is a bounded "
            "cache, not a log");
}


} // namespace sonuma::rmc

#endif // SONUMA_RMC_PARAMS_HH
