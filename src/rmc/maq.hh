/**
 * @file
 * The RMC's Memory Access Queue (paper §4.3).
 *
 * All RMC memory traffic — application data, WQ/CQ interactions, page
 * table walks, ITT and CT accesses — funnels through the MAQ into the
 * RMC's private L1. The MAQ bounds the number of in-flight accesses
 * (32 in Table 1, matching the L1's MSHRs), supports out-of-order
 * completion, and provides store-to-load forwarding.
 *
 * Zero-allocation design: in-flight accesses live in a fixed table of
 * MAQ slots (the completion passed down to the cache captures only
 * {maq, slot} and stays inline in sim::Callback), the overflow queue is
 * a ring buffer, and store-to-load forwarding subscribes waiters on the
 * in-flight store's slot instead of a per-line hash map.
 */

#ifndef SONUMA_RMC_MAQ_HH
#define SONUMA_RMC_MAQ_HH

#include <coroutine>
#include <cstdint>
#include <string>
#include <vector>

#include "mem/cache.hh"
#include "sim/callback.hh"
#include "sim/event_queue.hh"
#include "sim/ring_buffer.hh"
#include "sim/stats.hh"
#include "sim/sync.hh"

namespace sonuma::rmc {

/**
 * Bounded queue of memory accesses feeding the RMC's L1 port.
 *
 * Usage is awaitable: `co_await maq.read(pa)` suspends the issuing
 * pipeline transaction until the access commits. When the queue is full
 * the awaiter additionally waits for a free entry (structural hazard),
 * which is how the MAQ depth bounds RMC throughput.
 */
class Maq
{
  public:
    Maq(sim::EventQueue &eq, sim::StatRegistry &stats,
        const std::string &name, mem::L1Cache &l1, std::uint32_t entries);

    /** Timed read of the line containing @p pa. */
    auto
    read(mem::PAddr pa)
    {
        return AccessAwaiter{*this, pa, false};
    }

    /** Timed write (exclusive access) of the line containing @p pa. */
    auto
    write(mem::PAddr pa)
    {
        return AccessAwaiter{*this, pa, true};
    }

    /**
     * Timed full-line write through the RMC's cache-line-wide interface:
     * allocates on miss without fetching stale data.
     */
    auto
    writeFullLine(mem::PAddr pa)
    {
        return AccessAwaiter{*this, pa, true, true};
    }

    std::uint32_t inflight() const { return inflight_; }
    std::uint32_t capacity() const { return capacity_; }
    std::uint64_t forwardCount() const { return forwards_.value(); }

    struct AccessAwaiter
    {
        Maq &maq;
        mem::PAddr pa;
        bool isWrite;
        bool fullLine = false;

        bool await_ready() const noexcept { return false; }

        void
        await_suspend(std::coroutine_handle<> h)
        {
            maq.submit(pa, isWrite, fullLine, [h] { h.resume(); });
        }

        void await_resume() const noexcept {}
    };

    /**
     * Callback-style submission (used by the awaiter). Queues when the
     * MAQ is full; applies store-to-load forwarding for loads that hit
     * an in-flight store to the same line.
     */
    void submit(mem::PAddr pa, bool isWrite, bool fullLine,
                sim::Callback done);

  private:
    struct Pending
    {
        mem::PAddr pa = 0;
        bool isWrite = false;
        bool fullLine = false;
        sim::Callback done;
    };

    /** One occupied MAQ slot (an access issued to the L1). */
    struct Slot
    {
        mem::PAddr line = 0;
        bool isWrite = false;
        bool active = false;
        sim::Callback done;
        // Loads forwarded from this in-flight store. The vector keeps
        // its capacity across slot reuse, so it stops allocating once
        // the workload's forwarding fan-out has been seen.
        std::vector<sim::Callback> forwardedLoads;
    };

    sim::EventQueue &eq_;
    mem::L1Cache &l1_;
    std::uint32_t capacity_;
    std::uint32_t inflight_ = 0;
    std::vector<Slot> slots_;              //!< capacity_ entries
    std::vector<std::uint32_t> freeSlots_;
    sim::RingBuffer<Pending> waiting_;

    sim::Counter reads_;
    sim::Counter writes_;
    sim::Counter forwards_;
    sim::Counter structuralStalls_;

    void issue(mem::PAddr pa, bool isWrite, bool fullLine,
               sim::Callback done);
    void complete(std::uint32_t slotIdx);
    void release();

    /**
     * Any in-flight store to @p line (lowest slot index, which under
     * freelist reuse is unrelated to issue age), or nullptr.
     */
    Slot *findInflightStore(mem::PAddr line);

    static mem::PAddr
    lineOf(mem::PAddr pa)
    {
        return pa & ~mem::PAddr(63);
    }
};

} // namespace sonuma::rmc

#endif // SONUMA_RMC_MAQ_HH
