/**
 * @file
 * Queue-pair (WQ/CQ) memory layouts shared by application and RMC.
 *
 * Both queues live in application virtual memory and are cached coherently
 * by the cores and the RMC alike (paper §4.1). WQ entries are one cache
 * line so a producing store and the RMC's polling load transfer exactly
 * one line. Ring-lap phase bits (rather than a shared head/tail word)
 * make polling race-free without extra coherence traffic.
 */

#ifndef SONUMA_RMC_QUEUE_PAIR_HH
#define SONUMA_RMC_QUEUE_PAIR_HH

#include <cstdint>

#include "sim/types.hh"
#include "vm/page_table.hh"

namespace sonuma::rmc {

/** Operation kinds schedulable on a WQ. */
enum class WqOp : std::uint8_t
{
    kRead = 1,
    kWrite = 2,
    kCas = 3,
    kFetchAdd = 4,
};

/**
 * One work-queue entry (64 bytes = one cache line).
 *
 * `phase` toggles every ring lap: the RMC consumes an entry when the
 * entry's phase equals the current lap parity, so neither side needs to
 * write a shared index.
 */
struct WqEntry
{
    std::uint8_t phase;      //!< lap parity; toggles each ring wrap
    std::uint8_t op;         //!< WqOp
    sim::NodeId dstNid;      //!< destination node
    std::uint32_t length;    //!< bytes; multiple of 64 (8 for atomics)
    std::uint64_t offset;    //!< destination context-segment offset
    std::uint64_t bufVa;     //!< local buffer virtual address
    std::uint64_t operand1;  //!< CAS compare value / F&A addend
    std::uint64_t operand2;  //!< CAS swap value
    std::uint8_t pad[24];
};

static_assert(sizeof(WqEntry) == sim::kCacheLineBytes,
              "WQ entries must be exactly one cache line");

/**
 * One completion-queue entry (8 bytes; 8 per cache line).
 *
 * Carries the index of the completed WQ request (paper §4.1) plus a
 * success/error status. Phase bit works as in WqEntry.
 */
struct CqEntry
{
    std::uint8_t phase;
    std::uint8_t status;    //!< CqStatus
    std::uint16_t wqIndex;  //!< index of the completed WQ entry
    std::uint32_t pad;
};

static_assert(sizeof(CqEntry) == 8, "CQ entry layout");

enum class CqStatus : std::uint8_t
{
    kOk = 0,
    kBoundsError = 1,   //!< offset outside the destination segment
    kBadContext = 2,    //!< ctx not registered at the destination
    kFabricError = 3,   //!< node/link failure while in flight
    kFlushed = 4,       //!< QP/context torn down while in flight
};

/**
 * Software-visible descriptor of one registered queue pair. Held in the
 * Context Table; the RGP polls wqBase, the RCP writes cqBase.
 */
struct QpDescriptor
{
    bool valid = false;
    vm::VAddr wqBase = 0;
    vm::VAddr cqBase = 0;
    std::uint32_t entries = 0;  //!< ring size (same for WQ and CQ)

    std::uint64_t
    wqEntryVa(std::uint32_t idx) const
    {
        return wqBase + std::uint64_t(idx) * sizeof(WqEntry);
    }

    std::uint64_t
    cqEntryVa(std::uint32_t idx) const
    {
        return cqBase + std::uint64_t(idx) * sizeof(CqEntry);
    }
};

/** Phase value expected on lap @p lap (laps count from 0). */
constexpr std::uint8_t
phaseForLap(std::uint64_t lap)
{
    return static_cast<std::uint8_t>(1 - (lap & 1));
}

//
// Global slot numbering for multi-QP sessions: a session owning N queue
// pairs of E entries each addresses its per-slot state (records, busy
// bits, landing buffers) with one flat index `qp * E + idx`. The CQ
// wire format still carries the per-QP wqIndex; these helpers are the
// session-side (de)multiplexing arithmetic.
//

/** Flat slot index for entry @p idx of queue pair @p qp. */
constexpr std::uint32_t
globalSlot(std::uint32_t qp, std::uint32_t idx, std::uint32_t entries)
{
    return qp * entries + idx;
}

/** Queue pair owning flat slot @p g. */
constexpr std::uint32_t
slotQp(std::uint32_t g, std::uint32_t entries)
{
    return g / entries;
}

/** Per-QP ring index of flat slot @p g. */
constexpr std::uint32_t
slotIndex(std::uint32_t g, std::uint32_t entries)
{
    return g % entries;
}

/**
 * Live occupancy of one queue pair as the RMC sees it: WQ entries
 * consumed but not yet completed (transfers in flight), and CQ entries
 * written but not yet reaped by software. Maintained unconditionally
 * (two integer bumps per op) and exported as per-QP time series when
 * sampling is on (docs/observability.md).
 */
struct QpOccupancy
{
    std::uint32_t wq = 0; //!< in-flight transfers charged to this QP
    std::uint32_t cq = 0; //!< completions posted, not yet consumed
};

/**
 * Ring cursor: index + current lap phase. Used by the producing and
 * consuming sides of both queues.
 */
class RingCursor
{
  public:
    explicit RingCursor(std::uint32_t entries) : entries_(entries) {}

    std::uint32_t index() const { return idx_; }

    /** Phase an entry must carry to be "new" at this cursor position. */
    std::uint8_t expectedPhase() const { return phaseForLap(lap_); }

    void
    advance()
    {
        if (++idx_ == entries_) {
            idx_ = 0;
            ++lap_;
        }
    }

    std::uint32_t entries() const { return entries_; }

  private:
    std::uint32_t entries_;
    std::uint32_t idx_ = 0;
    std::uint64_t lap_ = 0;
};

} // namespace sonuma::rmc

#endif // SONUMA_RMC_QUEUE_PAIR_HH
