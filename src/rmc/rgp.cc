/**
 * @file
 * Request Generation Pipeline (paper §4.2, Fig. 3b top).
 *
 * Poll WQ -> fetch request -> init ITT entry -> unroll -> (read payload
 * for writes) -> generate packet(s) -> inject. Multi-line requests are
 * unrolled at the source into line-sized transactions so the destination
 * can stay stateless.
 */

#include "rmc/rmc.hh"

#include "sim/log.hh"

namespace sonuma::rmc {

sim::FireAndForget
Rmc::rgpLoop()
{
    while (true) {
        while (armedQps_.empty())
            co_await rgpWork_.wait();
        const QpRef ref = armedQps_.popFront();
        // Disarm before scanning: a doorbell during the scan re-arms the
        // QP and forces another scan, so no wake-up is lost.
        qpArmed_[ref.ctx][ref.qpIndex] = false;
        co_await processWq(ref.ctx, ref.qpIndex);
    }
}

sim::Task
Rmc::processWq(sim::CtxId ctx, std::uint32_t qpIndex)
{
    const CtEntry *ce = ct_.entry(ctx); // re-fetched after suspensions
    if (!ce || qpIndex >= ce->qps.size() || !ce->qps[qpIndex].valid)
        co_return; // QP vanished (context teardown)
    const QpDescriptor qp = ce->qps[qpIndex];
    RingCursor &cursor = wqCursor_[ctx][qpIndex];

    // Per-QP arbitration: one turn consumes at most rgpQpBurst entries,
    // then the QP re-arms behind the other armed QPs. A re-armed QP's
    // next turn resumes with exactly the timed WQ read the continuing
    // loop would have issued, so a lone QP's timing is unchanged; with
    // several armed QPs the single request pipeline round-robins at
    // burst granularity instead of draining one ring to exhaustion.
    std::uint32_t burst = 0;
    while (true) {
        // Poll: timed read of the WQ entry's cache line. After a producer
        // store this misses in the RMC L1 and transfers cache-to-cache.
        const vm::VAddr entryVa = qp.wqEntryVa(cursor.index());
        std::optional<mem::PAddr> pa;
        co_await translate(ctx, entryVa, ce->ptRoot, &pa);
        // Re-validate after every suspension: a teardown fence may have
        // run while this coroutine slept, flush-completing the very
        // entry under the cursor. Touching the cursor after that would
        // double-complete it.
        ce = ct_.entry(ctx);
        if (!ce || qpIndex >= ce->qps.size() || !ce->qps[qpIndex].valid)
            co_return; // QP fenced during the translation
        if (!pa)
            co_return; // unmapped WQ (teardown)
        co_await maq_.read(*pa);
        ce = ct_.entry(ctx);
        if (!ce || qpIndex >= ce->qps.size() || !ce->qps[qpIndex].valid)
            co_return; // QP fenced during the WQ read

        WqEntry entry;
        phys_.read(*pa, &entry, sizeof(entry));
        if (entry.phase != cursor.expectedPhase())
            co_return; // no new work; RGP returns to the armed-QP queue

        wqEntriesProcessed_.inc();
        const std::uint32_t wqIndex = cursor.index();
        cursor.advance();
        co_await generateRequests(ctx, qpIndex, wqIndex, entry);
        if (++burst >= params_.rgpQpBurst) {
            armQp(ctx, qpIndex); // yield the pipeline, keep the claim
            co_return;
        }
    }
}

sim::Task
Rmc::generateRequests(sim::CtxId ctx, std::uint32_t qpIndex,
                      std::uint32_t wqIndex, const WqEntry &entry)
{
    const CtEntry *ce = ct_.entry(ctx);
    const WqOp op = static_cast<WqOp>(entry.op);
    const bool isAtomic = op == WqOp::kCas || op == WqOp::kFetchAdd;
    const std::uint32_t numLines =
        isAtomic ? 1
                 : std::max<std::uint32_t>(
                       1, (entry.length + sim::kCacheLineBytes - 1) /
                              sim::kCacheLineBytes);

    // Allocate a transfer id and initialize its ITT entry (a memory
    // write through the MAQ, Fig. 3b "Init ITT Entry").
    std::uint32_t tidIndex = 0;
    co_await allocTid(&tidIndex);
    IttEntry &itt = itt_[tidIndex];
    itt.active = true;
    itt.ctx = ctx;
    itt.qpIndex = qpIndex;
    itt.wqIndex = wqIndex;
    itt.remaining = numLines;
    itt.total = numLines;
    itt.peer = entry.dstNid;
    itt.op = op;
    itt.error = false;
    itt.bufVa = entry.bufVa;
    itt.baseOffset = entry.offset;
    itt.attempt = 0;
    itt.retransmitPending = false;
    itt.unrolled = false;
    itt.operand1 = entry.operand1;
    itt.operand2 = entry.operand2;
    // Counted here — synchronously with the ITT init, so every freeTid
    // on this entry (the single decrement point) sees a counted entry.
    ++qpOcc_[ctx][qpIndex].wq;
    const std::uint16_t myEpoch = itt.epoch;
    // Close the teardown window between WQ consumption and ITT entry:
    // while this coroutine waited for a tid the op was invisible to a
    // fence (already consumed from the WQ, not yet in the ITT). If the
    // QP died meanwhile, self-flush — exactly one completion either way.
    ce = ct_.entry(ctx);
    if (!ce || qpIndex >= ce->qps.size() || !ce->qps[qpIndex].valid) {
        abortTransfer(tidIndex, CqStatus::kFlushed);
        co_return;
    }
    co_await maq_.write(ittAddr(tidIndex));

    // Per-WQ-entry front-end cost (parse/schedule).
    co_await chargeFrontend(params_.cycles(params_.rgpStageCycles),
                            params_.emuPerWqEntry);

    for (std::uint32_t i = 0; i < numLines; ++i) {
        // Every iteration suspends (charges, MAQ reads, NI back-
        // pressure); a reset() in one of those windows aborts this
        // transfer and frees its tid. Stop unrolling: the remaining
        // lines belong to a transfer that no longer exists, and the
        // slot may already carry a new one.
        if (!itt.active || itt.epoch != myEpoch)
            co_return;
        fab::Message msg;
        msg.srcNid = nid_;
        msg.dstNid = entry.dstNid;
        msg.ctxId = ctx;
        msg.tid = tidOf(itt.epoch, tidIndex);
        msg.attempt = itt.attempt;
        msg.offset = entry.offset + std::uint64_t(i) * sim::kCacheLineBytes;

        switch (op) {
          case WqOp::kRead:
            msg.op = fab::Op::kReadReq;
            break;
          case WqOp::kWrite: {
            msg.op = fab::Op::kWriteReq;
            // Fetch the local payload line through the MAQ.
            const vm::VAddr lineVa =
                entry.bufVa + std::uint64_t(i) * sim::kCacheLineBytes;
            std::optional<mem::PAddr> pa;
            co_await translate(ctx, lineVa, ce->ptRoot, &pa);
            if (!itt.active || itt.epoch != myEpoch)
                co_return; // aborted during the translation
            if (!pa) {
                // Unmapped local buffer: stop unrolling and complete the
                // WQ entry with an error. Lines already injected will
                // still reply, so the tid stays live until they drain
                // (tid reuse before that would mis-route their replies).
                // remaining currently counts numLines minus replies that
                // already arrived; cancel the never-sent lines.
                itt.error = true;
                itt.remaining -= numLines - i;
                itt.total = i;
                // The transfer is fully unrolled as far as it ever will
                // be; without this the timeout sweep would skip it
                // forever if its in-flight replies get dropped.
                itt.unrolled = true;
                if (itt.remaining == 0)
                    co_await postCompletion(itt, tidIndex);
                co_return;
            }
            co_await maq_.read(*pa);
            std::uint8_t line[sim::kCacheLineBytes];
            phys_.read(*pa, line, sizeof(line));
            msg.setPayload(line, sim::kCacheLineBytes);
            break;
          }
          case WqOp::kCas:
            msg.op = fab::Op::kCasReq;
            msg.operand1 = entry.operand1;
            msg.operand2 = entry.operand2;
            break;
          case WqOp::kFetchAdd:
            msg.op = fab::Op::kFetchAddReq;
            msg.operand1 = entry.operand1;
            break;
        }

        // Per-line pipeline occupancy, then inject.
        co_await chargeFrontend(params_.cycles(params_.rgpPerLineCycles),
                                params_.emuPerLine);
        co_await sendMessage(msg);
        requestPacketsSent_.inc();
    }
    // All lines injected: the transfer's timeout clock may start.
    if (itt.active && itt.epoch == myEpoch)
        itt.unrolled = true;
}

sim::FireAndForget
Rmc::retransmitTransfer(std::uint32_t tidIndex)
{
    IttEntry &itt = itt_[tidIndex];
    const std::uint16_t myEpoch = itt.epoch;
    const std::uint8_t myAttempt = itt.attempt;

    // Capped deterministic backoff: attempt 1 resends after rnrBackoff,
    // each further attempt doubles, up to rnrBackoffCapDoublings.
    const std::uint32_t shift = std::min<std::uint32_t>(
        std::uint32_t(myAttempt) - 1, params_.rnrBackoffCapDoublings);
    co_await sim::Delay(eq_, params_.rnrBackoff << shift);

    // Same re-check discipline as generateRequests: a fence/reset in
    // any suspension frees the tid (epoch bump); a newer sweep pass
    // cannot re-own the entry while retransmitPending, so an attempt
    // mismatch here means the entry was freed and reused.
    const CtEntry *ce = ct_.entry(itt.ctx);
    if (!itt.active || itt.epoch != myEpoch || itt.attempt != myAttempt ||
        !ce) {
        co_return;
    }

    const std::uint32_t total = itt.total;
    for (std::uint32_t i = 0; i < total; ++i) {
        if (!itt.active || itt.epoch != myEpoch ||
            itt.attempt != myAttempt)
            co_return;
        fab::Message msg;
        msg.srcNid = nid_;
        msg.dstNid = itt.peer;
        msg.ctxId = itt.ctx;
        msg.tid = tidOf(itt.epoch, tidIndex);
        msg.attempt = itt.attempt;
        msg.offset =
            itt.baseOffset + std::uint64_t(i) * sim::kCacheLineBytes;

        switch (itt.op) {
          case WqOp::kRead:
            msg.op = fab::Op::kReadReq;
            break;
          case WqOp::kWrite: {
            msg.op = fab::Op::kWriteReq;
            // Re-read the payload line through the MAQ, exactly as the
            // first attempt did.
            const vm::VAddr lineVa =
                itt.bufVa + std::uint64_t(i) * sim::kCacheLineBytes;
            std::optional<mem::PAddr> pa;
            co_await translate(itt.ctx, lineVa, ce->ptRoot, &pa);
            if (!itt.active || itt.epoch != myEpoch ||
                itt.attempt != myAttempt)
                co_return;
            if (!pa) {
                // The buffer was unmapped between attempts (application
                // bug). Mark the error and hand the entry back; the
                // next sweep pass aborts it.
                itt.error = true;
                itt.issuedAt = eq_.now();
                itt.retransmitPending = false;
                co_return;
            }
            co_await maq_.read(*pa);
            if (!itt.active || itt.epoch != myEpoch ||
                itt.attempt != myAttempt)
                co_return;
            std::uint8_t line[sim::kCacheLineBytes];
            phys_.read(*pa, line, sizeof(line));
            msg.setPayload(line, sim::kCacheLineBytes);
            break;
          }
          case WqOp::kCas:
            msg.op = fab::Op::kCasReq;
            msg.operand1 = itt.operand1;
            msg.operand2 = itt.operand2;
            break;
          case WqOp::kFetchAdd:
            msg.op = fab::Op::kFetchAddReq;
            msg.operand1 = itt.operand1;
            break;
        }

        co_await chargeFrontend(params_.cycles(params_.rgpPerLineCycles),
                                params_.emuPerLine);
        co_await sendMessage(msg);
        requestPacketsSent_.inc();
    }
    if (!itt.active || itt.epoch != myEpoch || itt.attempt != myAttempt)
        co_return;
    // Fresh deadline for this attempt; the sweep owns the entry again.
    itt.issuedAt = eq_.now();
    itt.retransmitPending = false;
}

} // namespace sonuma::rmc
