/**
 * @file
 * Remote Request Processing Pipeline (paper §4.2, Fig. 3b bottom).
 *
 * Stateless servicing of incoming requests: decode -> CT lookup (CT$) ->
 * bounds check -> compute VA -> translate -> perform line read / write /
 * atomic -> generate reply. Uses only packet-header values plus local
 * configuration state, so the destination keeps no per-transfer state.
 */

#include "rmc/rmc.hh"

#include <cstring>

#include "sim/log.hh"

namespace sonuma::rmc {

sim::FireAndForget
Rmc::rrppLoop()
{
    const auto lane = static_cast<std::size_t>(fab::Lane::kRequest);
    while (true) {
        // Bound in-flight request servicing by the MAQ depth; excess
        // packets stay in the NI eject queue and backpressure the fabric.
        co_await rrppSlots_.acquire();
        while (!ni_.hasMessage(fab::Lane::kRequest))
            co_await arrival_[lane].wait();
        serviceRequest(ni_.pop(fab::Lane::kRequest));
    }
}

sim::FireAndForget
Rmc::serviceRequest(fab::Message msg)
{
    requestsServiced_.inc();

    // Validate the wire-supplied payload length before it is ever used
    // as a copy size; a corrupt packet must not become a buffer overrun.
    if (!msg.payloadLenValid()) {
        boundsErrors_.inc();
        co_await sendMessage(msg.makeReply(fab::Op::kErrorReply));
        rrppSlots_.release();
        co_return;
    }

    // Emulation platform: RMCemu discovers work by polling its queues;
    // the detection lag adds latency without occupying the thread.
    if (params_.emulation())
        co_await sim::Delay(eq_, params_.emuPollDelay);

    // Decode + per-request pipeline occupancy.
    co_await chargeRemote(params_.cycles(params_.rrppStageCycles),
                          params_.emuRrppPerLine);

    // CT lookup through the CT$; a miss costs a memory read of the CT
    // entry through the MAQ (paper §4.3).
    if (!ct_.cacheLookup(msg.ctxId)) {
        co_await maq_.read(ct_.entryAddr(msg.ctxId));
        ct_.fill(msg.ctxId);
    }
    const CtEntry *ce = ct_.entry(msg.ctxId);
    if (!ce) {
        badContextErrors_.inc();
        co_await sendMessage(msg.makeReply(fab::Op::kErrorReply));
        rrppSlots_.release();
        co_return;
    }

    // Bounds check: the whole accessed span must sit inside the segment
    // registered for this context at this node.
    const std::uint64_t span =
        (msg.op == fab::Op::kCasReq || msg.op == fab::Op::kFetchAddReq)
            ? sizeof(std::uint64_t)
            : sim::kCacheLineBytes;
    if (msg.offset + span > ce->segBytes) {
        boundsErrors_.inc();
        co_await sendMessage(msg.makeReply(fab::Op::kErrorReply));
        rrppSlots_.release();
        co_return;
    }

    // Compute the local VA and translate it (TLB / hardware walk).
    const vm::VAddr va = ce->segBase + msg.offset;
    std::optional<mem::PAddr> pa;
    co_await translate(msg.ctxId, va, ce->ptRoot, &pa);
    if (!pa) {
        // Registered segments are pinned, so this indicates teardown
        // racing with traffic; surface as a bounds error.
        boundsErrors_.inc();
        co_await sendMessage(msg.makeReply(fab::Op::kErrorReply));
        rrppSlots_.release();
        co_return;
    }

    // Replay dedup (exactly-once for mutating ops): a retransmitted
    // write or atomic whose original execution succeeded — only the
    // reply was lost — must not execute again. Answer it with the
    // cached reply instead. Reads are idempotent and skip the window.
    // Purely functional (no cycles charged), so the no-loss path is
    // timing-identical.
    const bool mutating = msg.op != fab::Op::kReadReq;
    if (mutating && params_.dedupWindow > 0) {
        if (const DedupEntry *d = dedupLookup(msg)) {
            dupSuppressed_.inc();
            fab::Message cached = msg.makeReply(d->replyOp);
            if (d->replyOp == fab::Op::kAtomicReply)
                cached.setPayload(&d->oldValue, sizeof(d->oldValue));
            co_await sendMessage(cached);
            rrppSlots_.release();
            co_return;
        }
    }

    fab::Message reply;
    switch (msg.op) {
      case fab::Op::kReadReq: {
        co_await maq_.read(*pa);
        reply = msg.makeReply(fab::Op::kReadReply);
        std::uint8_t line[sim::kCacheLineBytes];
        phys_.read(*pa, line, sizeof(line));
        reply.setPayload(line, sim::kCacheLineBytes);
        break;
      }
      case fab::Op::kWriteReq: {
        // Full-line store: allocate-on-miss without a stale fetch.
        co_await maq_.writeFullLine(*pa);
        phys_.write(*pa, msg.payload.data(), msg.payloadLen);
        reply = msg.makeReply(fab::Op::kWriteReply);
        break;
      }
      case fab::Op::kCasReq: {
        // Atomic executed within the destination's coherence hierarchy:
        // the exclusive (M) acquisition serializes against all local
        // and remote accesses to the line (paper §7.4).
        co_await maq_.write(*pa);
        atomicsExecuted_.inc();
        const std::uint64_t old =
            phys_.compareSwap64(*pa, msg.operand1, msg.operand2);
        reply = msg.makeReply(fab::Op::kAtomicReply);
        reply.setPayload(&old, sizeof(old));
        break;
      }
      case fab::Op::kFetchAddReq: {
        co_await maq_.write(*pa);
        atomicsExecuted_.inc();
        const std::uint64_t old = phys_.fetchAdd64(*pa, msg.operand1);
        reply = msg.makeReply(fab::Op::kAtomicReply);
        reply.setPayload(&old, sizeof(old));
        break;
      }
      default:
        sim::panic("RRPP received a non-request opcode");
    }

    if (mutating) {
        // Local memory changed: wake software polling for unsolicited
        // messages (§5.3).
        remoteWriteEvent_.notifyAll();
        if (params_.dedupWindow > 0) {
            std::uint64_t old = 0;
            if (reply.op == fab::Op::kAtomicReply)
                std::memcpy(&old, reply.payload.data(), sizeof(old));
            dedupRecord(msg, reply.op, old);
        }
    }
    co_await sendMessage(reply);
    rrppSlots_.release();
}

const Rmc::DedupEntry *
Rmc::dedupLookup(const fab::Message &msg) const
{
    const std::uint32_t *slot =
        dedupIndex_.find(dedupKey(msg.srcNid, msg.tid, msg.offset));
    if (!slot)
        return nullptr;
    const DedupEntry &d = dedupRing_[*slot];
    // Verify the full triple: a packed-key collision or a recycled ring
    // slot behind a stale index entry must read as a miss, never as a
    // wrong suppression.
    if (!d.valid || d.srcNid != msg.srcNid || d.tid != msg.tid ||
        d.offset != msg.offset)
        return nullptr;
    return &d;
}

void
Rmc::dedupRecord(const fab::Message &msg, fab::Op replyOp,
                 std::uint64_t oldValue)
{
    const std::uint32_t slot = dedupNext_;
    DedupEntry &d = dedupRing_[slot];
    if (d.valid) {
        // FIFO eviction: drop the index entry of the request this slot
        // held — unless a colliding key already replaced it.
        const std::uint64_t oldKey = dedupKey(d.srcNid, d.tid, d.offset);
        const std::uint32_t *p = dedupIndex_.find(oldKey);
        if (p && *p == slot)
            dedupIndex_.erase(oldKey);
    }
    d.valid = true;
    d.srcNid = msg.srcNid;
    d.tid = msg.tid;
    d.offset = msg.offset;
    d.replyOp = replyOp;
    d.oldValue = oldValue;
    dedupIndex_.insert(dedupKey(msg.srcNid, msg.tid, msg.offset), slot);
    dedupNext_ = (slot + 1) % std::uint32_t(dedupRing_.size());
}

} // namespace sonuma::rmc
