/**
 * @file
 * The Context Table (CT) and its lookaside cache (CT$), paper §4.2/4.3.
 *
 * The CT is the RMC's configuration root: per ctx_id it records the
 * registered context segment (base VA + bounds), the page-table root,
 * and the list of queue pairs. It is allocated in memory by the device
 * driver and read by the RMC through the MAQ; the CT$ caches recently
 * used entries so steady-state request processing avoids the memory
 * round-trip. Entry *contents* are mirrored in host structures for
 * implementation simplicity — their memory traffic (timing) is still
 * charged through the MAQ at the correct addresses (see DESIGN.md).
 */

#ifndef SONUMA_RMC_CONTEXT_TABLE_HH
#define SONUMA_RMC_CONTEXT_TABLE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "mem/phys_mem.hh"
#include "rmc/queue_pair.hh"
#include "sim/stats.hh"
#include "sim/types.hh"
#include "vm/page_table.hh"

namespace sonuma::rmc {

/** One CT entry: a context registered at this node. */
struct CtEntry
{
    bool valid = false;
    vm::VAddr segBase = 0;       //!< context segment base VA
    std::uint64_t segBytes = 0;  //!< context segment size (bounds check)
    mem::PAddr ptRoot = 0;       //!< page table root of the owning process
    std::vector<QpDescriptor> qps;
};

/** In-memory footprint of one CT entry (for MAQ timing addresses). */
inline constexpr std::uint64_t kCtEntryBytes = 256;

/**
 * The Context Table plus the CT$ front-end.
 *
 * `lookup()` reports whether the access hit the CT$; on a miss the
 * caller (a pipeline) charges a MAQ read at `entryAddr()` before using
 * the entry, then calls `fill()`.
 */
class ContextTable
{
  public:
    ContextTable(sim::StatRegistry &stats, const std::string &name,
                 mem::PAddr basePa, std::uint32_t maxContexts,
                 std::uint32_t cacheEntries);

    /** Base physical address (the RMC's CT_base register). */
    mem::PAddr basePa() const { return basePa_; }

    /** Physical address of @p ctx's entry (for MAQ timing charges). */
    mem::PAddr
    entryAddr(sim::CtxId ctx) const
    {
        return basePa_ + std::uint64_t(ctx) * kCtEntryBytes;
    }

    std::uint32_t maxContexts() const { return maxContexts_; }

    //
    // Driver-side (functional) interface
    //

    /** Register / replace a context entry. */
    void install(sim::CtxId ctx, const CtEntry &entry);

    /** Tear down a context. */
    void remove(sim::CtxId ctx);

    /** Driver-side read (no timing). */
    const CtEntry *entry(sim::CtxId ctx) const;
    CtEntry *entryMutable(sim::CtxId ctx);

    //
    // RMC-side (CT$) interface
    //

    /**
     * CT$ probe. @retval true on CT$ hit: no memory access needed.
     * On miss the pipeline must charge a MAQ read, then call fill().
     */
    bool cacheLookup(sim::CtxId ctx);

    /** Install @p ctx into the CT$ after the miss fill completes. */
    void fill(sim::CtxId ctx);

    /** Invalidate the CT$ (driver update or RMC reset). */
    void invalidateCache();

    /** Disable the CT$ entirely (ablation experiments). */
    void setCacheEnabled(bool enabled);

    std::uint64_t cacheHits() const { return hits_.value(); }
    std::uint64_t cacheMisses() const { return misses_.value(); }

  private:
    struct CacheSlot
    {
        bool valid = false;
        sim::CtxId ctx = 0;
        std::uint64_t lastUse = 0;
    };

    mem::PAddr basePa_;
    std::uint32_t maxContexts_;
    std::vector<CtEntry> entries_;
    std::vector<CacheSlot> cache_;
    bool cacheEnabled_ = true;
    std::uint64_t useClock_ = 0;

    sim::Counter hits_;
    sim::Counter misses_;
};

} // namespace sonuma::rmc

#endif // SONUMA_RMC_CONTEXT_TABLE_HH
