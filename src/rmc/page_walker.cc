/**
 * @file
 * Page walker implementation.
 */

#include "rmc/page_walker.hh"

namespace sonuma::rmc {

PageWalker::PageWalker(sim::StatRegistry &stats, const std::string &name,
                       mem::PhysMem &phys, Maq &maq, Tlb &tlb)
    : phys_(phys), maq_(maq), tlb_(tlb),
      walks_(stats, name + ".walks", "page-table walks"),
      faults_(stats, name + ".faults", "walks hitting invalid PTEs")
{
}

sim::Task
PageWalker::translate(sim::CtxId ctx, vm::VAddr va, mem::PAddr ptRoot,
                      std::optional<mem::PAddr> *out)
{
    if (auto pa = tlb_.lookup(ctx, va)) {
        *out = pa;
        co_return;
    }

    walks_.inc();
    mem::PAddr table = ptRoot;
    for (std::uint32_t level = 0; level < vm::kLevels; ++level) {
        const mem::PAddr pteAddr =
            vm::PageTable::pteAddr(table, level, va);
        co_await maq_.read(pteAddr); // dependent load through the MAQ
        const auto pte = phys_.readT<std::uint64_t>(pteAddr);
        if (!vm::PageTable::pteValid(pte)) {
            faults_.inc();
            *out = std::nullopt;
            co_return;
        }
        table = vm::PageTable::pteFrame(pte);
    }
    tlb_.insert(ctx, va, table);
    *out = table + vm::pageOffset(va);
}

} // namespace sonuma::rmc
