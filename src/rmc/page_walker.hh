/**
 * @file
 * Hardware page-table walker for the RMC MMU (paper §4.3).
 *
 * On a TLB miss, the walker performs kLevels dependent PTE loads through
 * the MAQ (so walks contend with all other RMC memory traffic and hit in
 * the RMC's coherent L1 when PTEs are cached — the paper's argument for
 * coherence-integrated control structures).
 */

#ifndef SONUMA_RMC_PAGE_WALKER_HH
#define SONUMA_RMC_PAGE_WALKER_HH

#include <cstdint>
#include <optional>
#include <string>

#include "mem/phys_mem.hh"
#include "rmc/maq.hh"
#include "rmc/tlb.hh"
#include "sim/stats.hh"
#include "sim/task.hh"
#include "vm/page_table.hh"

namespace sonuma::rmc {

/**
 * Awaitable translation engine combining the TLB and the walker.
 */
class PageWalker
{
  public:
    PageWalker(sim::StatRegistry &stats, const std::string &name,
               mem::PhysMem &phys, Maq &maq, Tlb &tlb);

    /**
     * Translate (ctx, va) using @p ptRoot on a TLB miss.
     *
     * Coroutine: suspends for the duration of TLB/walk activity.
     * @return the physical address, or std::nullopt if unmapped.
     */
    [[nodiscard]] sim::Task
    translate(sim::CtxId ctx, vm::VAddr va, mem::PAddr ptRoot,
              std::optional<mem::PAddr> *out);

    std::uint64_t walkCount() const { return walks_.value(); }

  private:
    mem::PhysMem &phys_;
    Maq &maq_;
    Tlb &tlb_;

    sim::Counter walks_;
    sim::Counter faults_;
};

} // namespace sonuma::rmc

#endif // SONUMA_RMC_PAGE_WALKER_HH
