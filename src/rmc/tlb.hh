/**
 * @file
 * The RMC MMU's TLB: small, fully associative, LRU, tagged with the
 * application context (address-space identifier) as in paper §4.3.
 */

#ifndef SONUMA_RMC_TLB_HH
#define SONUMA_RMC_TLB_HH

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "mem/phys_mem.hh"
#include "sim/stats.hh"
#include "sim/types.hh"
#include "vm/page_table.hh"

namespace sonuma::rmc {

/**
 * Fully-associative, LRU translation lookaside buffer keyed by
 * (ctx_id, virtual page number).
 */
class Tlb
{
  public:
    Tlb(sim::StatRegistry &stats, const std::string &name,
        std::uint32_t entries);

    /** Look up a translation. Refreshes LRU on hit. */
    std::optional<mem::PAddr> lookup(sim::CtxId ctx, vm::VAddr va);

    /** Install a translation (evicts LRU when full). */
    void insert(sim::CtxId ctx, vm::VAddr va, mem::PAddr frame);

    /** Drop all translations for @p ctx (context teardown). */
    void flushCtx(sim::CtxId ctx);

    /** Drop everything (RMC reset on fabric failure). */
    void flushAll();

    std::uint64_t hitCount() const { return hits_.value(); }
    std::uint64_t missCount() const { return misses_.value(); }
    std::uint32_t capacity() const { return capacity_; }

  private:
    struct Entry
    {
        bool valid = false;
        sim::CtxId ctx = 0;
        std::uint64_t vpn = 0;
        mem::PAddr frame = 0;
        std::uint64_t lastUse = 0;
    };

    std::uint32_t capacity_;
    std::vector<Entry> entries_;
    std::uint64_t useClock_ = 0;

    sim::Counter hits_;
    sim::Counter misses_;

    static std::uint64_t
    vpnOf(vm::VAddr va)
    {
        return va >> vm::kPageBits;
    }
};

} // namespace sonuma::rmc

#endif // SONUMA_RMC_TLB_HH
