/**
 * @file
 * The Remote Memory Controller (paper §4) — soNUMA's core contribution.
 *
 * The RMC is an on-chip, hardwired protocol controller integrated into
 * the node's coherence hierarchy through a private L1 cache. It runs
 * three decoupled pipelines (Fig. 3):
 *
 *  - RGP (Request Generation):  polls registered WQs, unrolls multi-line
 *    requests, allocates transfer ids (ITT entries) and injects request
 *    packets into the NI.
 *  - RRPP (Remote Request Processing): statelessly services incoming
 *    requests — CT lookup, bounds check, virtual address computation,
 *    translation, line read/write/atomic, reply generation.
 *  - RCP (Request Completion): absorbs replies, writes payloads to the
 *    application's buffers, tracks per-request progress in the ITT, and
 *    posts CQ entries on completion.
 *
 * Each in-flight transaction is a coroutine; structural hazards (MAQ
 * depth, NI queues, ITT capacity) bound concurrency exactly as the
 * microarchitectural resources do in the paper.
 *
 * Modeling note — "doorbell": in hardware the RGP discovers new WQ
 * entries by polling a coherently-cached line (the producing store
 * invalidates the RMC's copy; the next poll misses and fetches it
 * cache-to-cache). A discrete-event simulation must not busy-poll, so
 * the software side *wakes* the RGP when it writes a WQ entry; the RGP
 * then performs the same timed WQ-line read it would have performed on
 * its next poll iteration. Detection timing therefore matches the
 * steady-polling hardware within one poll iteration.
 */

#ifndef SONUMA_RMC_RMC_HH
#define SONUMA_RMC_RMC_HH

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "fabric/fabric.hh"
#include "mem/cache.hh"
#include "mem/phys_mem.hh"
#include "rmc/context_table.hh"
#include "rmc/maq.hh"
#include "rmc/page_walker.hh"
#include "rmc/params.hh"
#include "rmc/queue_pair.hh"
#include "rmc/tlb.hh"
#include "sim/callback.hh"
#include "sim/event_queue.hh"
#include "sim/flat_map.hh"
#include "sim/ring_buffer.hh"
#include "sim/service.hh"
#include "sim/stats.hh"
#include "sim/sync.hh"
#include "sim/task.hh"
#include "sim/time_series.hh"

namespace sonuma::rmc {

/** In-flight transaction table entry (source-side transfer state). */
struct IttEntry
{
    bool active = false;
    std::uint16_t epoch = 0;    //!< bumped on free; drops stale replies
    sim::CtxId ctx = 0;
    std::uint32_t qpIndex = 0;
    std::uint32_t wqIndex = 0;
    std::uint32_t remaining = 0; //!< line replies still outstanding
    std::uint32_t total = 0;
    sim::NodeId peer = 0;        //!< destination node of the transfer
    WqOp op = WqOp::kRead;
    bool error = false;
    vm::VAddr bufVa = 0;
    std::uint64_t baseOffset = 0;
    sim::Tick issuedAt = 0;      //!< for the transfer timeout

    //
    // Reliable-delivery state. `attempt` tags every packet of the
    // transfer; replies carrying a stale attempt are dropped by the
    // RCP. `retransmitPending` parks the entry while a backoff/resend
    // coroutine owns it (the sweep must not double-fire). `unrolled`
    // flips once the RGP has injected (or error-skipped) every line —
    // the sweep ignores half-unrolled transfers, whose deadline starts
    // only when the last line leaves. Atomics keep their operands here
    // so a retransmit can rebuild the packets without the WQ entry.
    //
    std::uint8_t attempt = 0;
    bool retransmitPending = false;
    bool unrolled = false;
    std::uint64_t operand1 = 0;
    std::uint64_t operand2 = 0;
};

/** In-memory footprint of one ITT entry (for MAQ timing addresses). */
inline constexpr std::uint64_t kIttEntryBytes = 32;

/**
 * One node's Remote Memory Controller.
 */
class Rmc
{
  public:
    Rmc(sim::EventQueue &eq, sim::StatRegistry &stats,
        const std::string &name, sim::NodeId nid, const RmcParams &params,
        mem::PhysMem &phys, mem::L1Cache &l1, fab::NetworkInterface &ni,
        mem::PAddr ctBasePa, mem::PAddr ittBasePa);

    Rmc(const Rmc &) = delete;
    Rmc &operator=(const Rmc &) = delete;

    //
    // Driver-facing interface (paper §5.1)
    //

    /** The Context Table (driver installs/removes entries). */
    ContextTable &contextTable() { return ct_; }

    /**
     * Software wake-up after a WQ entry store (see file header for why
     * this exists in a discrete-event model).
     */
    void doorbell(sim::CtxId ctx, std::uint32_t qpIndex);

    /** Hook invoked after each CQ entry write for (ctx, qp). */
    void setCompletionHook(sim::CtxId ctx, std::uint32_t qpIndex,
                           sim::Callback hook);

    /** Hook invoked when the fabric reports a failure (driver). */
    void setFailureHook(sim::Callback hook);

    /**
     * Condition notified after the RRPP applies a remote write or atomic
     * to this node's memory. Software that polls local memory for
     * unsolicited messages (paper §5.3) awaits this instead of
     * busy-polling the event queue; each wake-up still performs the same
     * timed loads the poll loop would have (see file-header note on the
     * doorbell shortcut).
     */
    sim::Condition &remoteWriteEvent() { return remoteWriteEvent_; }

    /**
     * Reset transfer state after a fabric failure: every outstanding
     * transaction completes with CqStatus::kFabricError, TLB and CT$
     * are flushed, and the tid epoch advances so late replies from the
     * pre-failure era are dropped (§5.1).
     */
    void reset();

    /**
     * The most recent fabric failure notification, for software that
     * wants the reason (which peer, node-vs-link) behind aborted ops.
     */
    const fab::FailureInfo &lastFailure() const { return ni_.lastFailure(); }

    /**
     * Drain one queue pair after the driver invalidated its descriptor
     * (QP destroy / context unregister with ops in flight, §5.1). Every
     * op the application posted gets exactly one completion: transfers
     * already in the ITT abort with CqStatus::kFlushed (tid freed,
     * epoch bumped so late replies drop), and posted-but-unconsumed WQ
     * entries — including doorbell-batched ones that were never rung —
     * are flush-completed in ring order. Purely functional; the
     * descriptor must already be invalid when this is called.
     */
    void fenceQueuePair(sim::CtxId ctx, std::uint32_t qpIndex);

    //
    // Observability
    //

    /**
     * Driver notification that (ctx, qp) now exists: registers the
     * per-QP WQ/CQ occupancy time series (when sampling is enabled) at
     * setup time, so no series is ever allocated mid-measurement.
     */
    void noteQpCreated(sim::CtxId ctx, std::uint32_t qpIndex);

    /** Software reaped one CQ entry of (ctx, qp); keeps the occupancy
     *  gauge honest on the consumer side. */
    void noteCqConsumed(sim::CtxId ctx, std::uint32_t qpIndex);

    /** Live occupancy of one queue pair (tests + probes). */
    const QpOccupancy &
    qpOccupancy(sim::CtxId ctx, std::uint32_t qpIndex) const
    {
        return qpOcc_[ctx][qpIndex];
    }

    std::uint32_t activeTransfers() const { return activeTids_; }
    Tlb &tlb() { return tlb_; }
    Maq &maq() { return maq_; }
    const RmcParams &params() const { return params_; }
    sim::NodeId nodeId() const { return nid_; }

  private:
    sim::EventQueue &eq_;
    sim::StatRegistry &stats_;
    std::string name_;
    sim::NodeId nid_;
    RmcParams params_;
    mem::PhysMem &phys_;
    fab::NetworkInterface &ni_;

    Tlb tlb_;
    Maq maq_;
    PageWalker walker_;
    ContextTable ct_;
    mem::PAddr ittBasePa_;

    // ITT + tid management.
    std::vector<IttEntry> itt_;
    std::vector<std::uint32_t> freeTids_;
    std::uint32_t activeTids_ = 0;
    sim::Condition tidAvailable_;
    bool sweepScheduled_ = false;

    // RGP scheduling state. Armed QPs rotate through a fixed ring
    // (each QP appears at most once, so capacity is bounded by
    // maxContexts * maxQpsPerContext and the steady state never
    // allocates); processWq consumes at most rgpQpBurst WQ entries per
    // turn before the QP re-queues behind its peers.
    struct QpRef
    {
        sim::CtxId ctx = 0;
        std::uint32_t qpIndex = 0;
    };
    sim::RingBuffer<QpRef> armedQps_;
    std::vector<std::vector<bool>> qpArmed_;     //!< [ctx][qp]
    std::vector<std::vector<RingCursor>> wqCursor_;
    std::vector<std::vector<RingCursor>> cqCursor_;
    std::vector<std::vector<sim::Callback>> completionHooks_;
    sim::Condition rgpWork_;

    // Per-QP live occupancy, maintained unconditionally (two integer
    // bumps per op); exported as time series when sampling is on.
    std::vector<std::vector<QpOccupancy>> qpOcc_;    //!< [ctx][qp]
    std::vector<std::vector<bool>> qpProbed_;        //!< [ctx][qp]
    std::unique_ptr<sim::TimeSeries> ittProbe_;
    std::vector<std::unique_ptr<sim::TimeSeries>> qpProbes_;

    // NI wakeups.
    sim::Condition sendSpace_[fab::kNumLanes];
    sim::Condition arrival_[fab::kNumLanes];
    sim::Condition remoteWriteEvent_;

    // Emulation-platform software threads (RGP+RCP share one, RRPP owns
    // the other, as RMCemu does in §7.1).
    std::unique_ptr<sim::ServiceResource> emuFrontend_;
    std::unique_ptr<sim::ServiceResource> emuRemote_;

    // Concurrency bounds for request/reply servicing.
    sim::Semaphore rrppSlots_;
    sim::Semaphore rcpSlots_;

    sim::Callback failureHook_;

    // Stats.
    sim::Counter doorbellsRung_;
    sim::Counter wqEntriesProcessed_;
    sim::Counter requestPacketsSent_;
    sim::Counter requestsServiced_;
    sim::Counter repliesProcessed_;
    sim::Counter completionsPosted_;
    sim::Counter boundsErrors_;
    sim::Counter badContextErrors_;
    sim::Counter atomicsExecuted_;
    sim::Counter failureAborts_;
    sim::Counter retransmits_;
    sim::Counter dupSuppressed_;
    sim::Counter unrecoverable_;

    //
    // RRPP replay-dedup window: a FIFO ring of the last dedupWindow
    // mutating requests keyed by (srcNid, tid, offset), indexed by a
    // pre-sized FlatMap from a 64-bit packed key to the ring slot. The
    // triple is verified at the ring entry on every hit, so packed-key
    // collisions degrade to a miss, never to a wrong suppression. Both
    // structures are sized at construction; steady state is
    // allocation-free.
    //
    struct DedupEntry
    {
        bool valid = false;
        sim::NodeId srcNid = 0;
        std::uint32_t tid = 0;
        std::uint64_t offset = 0;
        fab::Op replyOp = fab::Op::kWriteReply;
        std::uint64_t oldValue = 0; //!< atomic replies replay this
    };
    std::vector<DedupEntry> dedupRing_;
    sim::FlatMap<std::uint64_t, std::uint32_t> dedupIndex_;
    std::uint32_t dedupNext_ = 0;

    //
    // Pipelines (one .cc file each).
    //

    sim::FireAndForget rgpLoop();                          // rgp.cc
    sim::Task processWq(sim::CtxId ctx, std::uint32_t qp); // rgp.cc
    sim::Task generateRequests(sim::CtxId ctx, std::uint32_t qpIndex,
                               std::uint32_t wqIndex,
                               const WqEntry &entry);      // rgp.cc

    sim::FireAndForget rrppLoop();                         // rrpp.cc
    sim::FireAndForget serviceRequest(fab::Message msg);   // rrpp.cc

    sim::FireAndForget rcpLoop();                          // rcp.cc
    sim::FireAndForget processReply(fab::Message msg);     // rcp.cc
    sim::Task postCompletion(IttEntry &itt,
                             std::uint32_t tidIndex);      // rcp.cc

    //
    // Shared helpers (rmc.cc)
    //

    /** Charge pipeline occupancy: hardware stage cycles or emulated
     *  software service time, depending on the platform. */
    sim::Task chargeFrontend(sim::Tick hwCost, sim::Tick emuCost);
    sim::Task chargeRemote(sim::Tick hwCost, sim::Tick emuCost);

    /** Inject @p msg, waiting for NI space. */
    sim::Task sendMessage(fab::Message msg);

    /** Allocate a transfer id, waiting if the ITT is full. */
    sim::Task allocTid(std::uint32_t *out);
    void freeTid(std::uint32_t tidIndex);

    /** Arm (ctx, qp) for the RGP if it is not already queued. */
    void armQp(sim::CtxId ctx, std::uint32_t qpIndex);

    /**
     * Timeout-driven resend of every line of transfer @p tidIndex
     * (attempt already bumped by the sweep): waits out the capped
     * exponential backoff, then rebuilds and re-injects the packets —
     * write payloads re-read through translate+MAQ, atomic operands
     * from the ITT. Bails silently if the entry is freed or re-bumped
     * while suspended (epoch/attempt re-check discipline).
     */
    sim::FireAndForget retransmitTransfer(std::uint32_t tidIndex); // rgp.cc

    /** RRPP replay-dedup window (rrpp.cc). */
    const DedupEntry *dedupLookup(const fab::Message &msg) const;
    void dedupRecord(const fab::Message &msg, fab::Op replyOp,
                     std::uint64_t oldValue);

    /** Packed (srcNid, tid, offset) key; collisions verified at the ring. */
    static std::uint64_t
    dedupKey(sim::NodeId src, std::uint32_t tid, std::uint64_t offset)
    {
        return (std::uint64_t(src) << 48) ^ (std::uint64_t(tid) << 16) ^
               offset;
    }

    /** Abort one transfer with a (functional) error completion. */
    void abortTransfer(std::uint32_t tidIndex, CqStatus status);

    /**
     * Functional (untimed) page-table walk, used by the error/teardown
     * completion paths where charging MAQ time is impossible (the
     * caller is not a coroutine) and unnecessary.
     */
    std::optional<mem::PAddr> walkFunctional(mem::PAddr ptRoot,
                                             vm::VAddr va) const;

    /** Functionally write one CQ entry for (ctx, qp) and fire hooks. */
    void postFunctionalCompletion(sim::CtxId ctx, std::uint32_t qpIndex,
                                  std::uint32_t wqIndex, CqStatus status);

    /** Abort every active transfer destined to @p peer (peer death). */
    void abortTransfersTo(sim::NodeId peer);

    /** Dispatch a fabric failure notification by kind and victim. */
    void handleFabricFailure();

    /** Timeout sweep over active ITT entries. */
    void scheduleSweep();
    void sweepTimeouts();

    /** Translate through TLB + walker with the ctx's page-table root. */
    sim::Task translate(sim::CtxId ctx, vm::VAddr va, mem::PAddr ptRoot,
                        std::optional<mem::PAddr> *out);

    mem::PAddr
    ittAddr(std::uint32_t tidIndex) const
    {
        return ittBasePa_ + std::uint64_t(tidIndex) * kIttEntryBytes;
    }

    std::uint32_t
    tidOf(std::uint16_t ep, std::uint32_t index) const
    {
        return (std::uint32_t(ep) << 16) | index;
    }

    friend class RmcTestPeer;
};

} // namespace sonuma::rmc

#endif // SONUMA_RMC_RMC_HH
