/**
 * @file
 * RMC top-level: construction, driver interface, shared helpers.
 */

#include "rmc/rmc.hh"

#include <cassert>

#include "sim/log.hh"

namespace sonuma::rmc {

Rmc::Rmc(sim::EventQueue &eq, sim::StatRegistry &stats,
         const std::string &name, sim::NodeId nid, const RmcParams &params,
         mem::PhysMem &phys, mem::L1Cache &l1, fab::NetworkInterface &ni,
         mem::PAddr ctBasePa, mem::PAddr ittBasePa)
    : eq_(eq), stats_(stats), name_(name), nid_(nid), params_(params),
      phys_(phys), ni_(ni),
      tlb_(stats, name + ".tlb", params.tlbEntries),
      maq_(eq, stats, name + ".maq", l1, params.maqEntries),
      walker_(stats, name + ".walker", phys, maq_, tlb_),
      ct_(stats, name + ".ct", ctBasePa, params.maxContexts,
          params.ctCacheEntries),
      ittBasePa_(ittBasePa),
      itt_(params.maxTids),
      tidAvailable_(eq),
      armedQps_(std::size_t(params.maxContexts) * params.maxQpsPerContext),
      qpArmed_(params.maxContexts,
               std::vector<bool>(params.maxQpsPerContext, false)),
      rgpWork_(eq),
      sendSpace_{sim::Condition(eq), sim::Condition(eq)},
      arrival_{sim::Condition(eq), sim::Condition(eq)},
      remoteWriteEvent_(eq),
      rrppSlots_(eq, params.maqEntries),
      rcpSlots_(eq, params.maqEntries),
      doorbellsRung_(stats, name + ".rgp.doorbells",
                     "software doorbells (WQ poll wake-ups)"),
      wqEntriesProcessed_(stats, name + ".rgp.wqEntries",
                          "WQ entries consumed"),
      requestPacketsSent_(stats, name + ".rgp.requestPackets",
                          "request packets injected"),
      requestsServiced_(stats, name + ".rrpp.requests",
                        "incoming requests serviced"),
      repliesProcessed_(stats, name + ".rcp.replies", "replies absorbed"),
      completionsPosted_(stats, name + ".rcp.completions",
                         "CQ entries written"),
      boundsErrors_(stats, name + ".rrpp.boundsErrors",
                    "requests outside the context segment"),
      badContextErrors_(stats, name + ".rrpp.badContext",
                        "requests for unregistered contexts"),
      atomicsExecuted_(stats, name + ".rrpp.atomics",
                       "remote atomics executed"),
      failureAborts_(stats, name + ".failureAborts",
                     "transfers aborted by fabric failures or teardown"),
      retransmits_(stats, name + ".retransmits",
                   "timed-out transfers retransmitted"),
      dupSuppressed_(stats, name + ".rrpp.dupSuppressed",
                     "replayed writes/atomics answered from the dedup "
                     "window"),
      unrecoverable_(stats, name + ".unrecoverable",
                     "transfers given up as unrecoverable (attempt "
                     "budget exhausted or peer dead)"),
      dedupRing_(params.dedupWindow),
      // 4x the live window keeps the index far from its rehash
      // threshold: tombstone drift from FIFO eviction stays amortized
      // out of the steady state.
      dedupIndex_(std::size_t(params.dedupWindow) * 4)
{
    freeTids_.reserve(params.maxTids);
    for (std::uint32_t i = 0; i < params.maxTids; ++i)
        freeTids_.push_back(params.maxTids - 1 - i);

    // Per-(ctx, qp) ring cursors, completion hooks, and occupancy.
    for (std::uint32_t c = 0; c < params.maxContexts; ++c) {
        wqCursor_.emplace_back();
        cqCursor_.emplace_back();
        completionHooks_.emplace_back(params.maxQpsPerContext);
        qpOcc_.emplace_back(params.maxQpsPerContext);
        qpProbed_.emplace_back(params.maxQpsPerContext, false);
        for (std::uint32_t q = 0; q < params.maxQpsPerContext; ++q) {
            wqCursor_.back().emplace_back(params.qpEntries);
            cqCursor_.back().emplace_back(params.qpEntries);
        }
    }

    if (stats_.samplingEnabled()) {
        ittProbe_ = std::make_unique<sim::TimeSeries>(
            stats_, name + ".ittOccupancy", "transfers",
            "active ITT entries (in-flight transfers)",
            sim::TimeSeries::Kind::kGauge,
            [this] { return static_cast<double>(activeTids_); });
    }

    if (params_.emulation()) {
        emuFrontend_ = std::make_unique<sim::ServiceResource>(
            eq_, name + ".emuFrontend");
        emuRemote_ = std::make_unique<sim::ServiceResource>(
            eq_, name + ".emuRemote");
    }

    // NI wiring: arrivals wake the RRPP/RCP loops, freed send space wakes
    // blocked senders, fabric failures reset transfer state.
    ni_.onArrival(fab::Lane::kRequest,
                  [this] { arrival_[0].notifyAll(); });
    ni_.onArrival(fab::Lane::kReply, [this] { arrival_[1].notifyAll(); });
    ni_.onSendSpace(fab::Lane::kRequest,
                    [this] { sendSpace_[0].notifyAll(); });
    ni_.onSendSpace(fab::Lane::kReply,
                    [this] { sendSpace_[1].notifyAll(); });
    ni_.onFabricFailure([this] { handleFabricFailure(); });

    // Start the three decoupled pipelines.
    rgpLoop();
    rrppLoop();
    rcpLoop();
}

void
Rmc::armQp(sim::CtxId ctx, std::uint32_t qpIndex)
{
    assert(ctx < params_.maxContexts && qpIndex < params_.maxQpsPerContext);
    if (!qpArmed_[ctx][qpIndex]) {
        qpArmed_[ctx][qpIndex] = true;
        armedQps_.push(QpRef{ctx, qpIndex});
        rgpWork_.notifyAll();
    }
}

void
Rmc::doorbell(sim::CtxId ctx, std::uint32_t qpIndex)
{
    doorbellsRung_.inc();
    armQp(ctx, qpIndex);
}

void
Rmc::setCompletionHook(sim::CtxId ctx, std::uint32_t qpIndex,
                       sim::Callback hook)
{
    completionHooks_[ctx][qpIndex] = std::move(hook);
}

void
Rmc::noteQpCreated(sim::CtxId ctx, std::uint32_t qpIndex)
{
    if (!stats_.samplingEnabled() || qpProbed_[ctx][qpIndex])
        return;
    qpProbed_[ctx][qpIndex] = true;
    const std::string base = name_ + ".ctx" + std::to_string(ctx) + ".qp" +
                             std::to_string(qpIndex);
    qpProbes_.push_back(std::make_unique<sim::TimeSeries>(
        stats_, base + ".wqOccupancy", "transfers",
        "WQ entries consumed, transfer not yet completed",
        sim::TimeSeries::Kind::kGauge, [this, ctx, qpIndex] {
            return static_cast<double>(qpOcc_[ctx][qpIndex].wq);
        }));
    qpProbes_.push_back(std::make_unique<sim::TimeSeries>(
        stats_, base + ".cqOccupancy", "completions",
        "CQ entries written, not yet reaped by software",
        sim::TimeSeries::Kind::kGauge, [this, ctx, qpIndex] {
            return static_cast<double>(qpOcc_[ctx][qpIndex].cq);
        }));
}

void
Rmc::noteCqConsumed(sim::CtxId ctx, std::uint32_t qpIndex)
{
    QpOccupancy &occ = qpOcc_[ctx][qpIndex];
    if (occ.cq > 0)
        --occ.cq;
}

void
Rmc::setFailureHook(sim::Callback hook)
{
    failureHook_ = std::move(hook);
}

std::optional<mem::PAddr>
Rmc::walkFunctional(mem::PAddr ptRoot, vm::VAddr va) const
{
    mem::PAddr table = ptRoot;
    for (std::uint32_t level = 0; level < vm::kLevels; ++level) {
        const auto pte = phys_.readT<std::uint64_t>(
            vm::PageTable::pteAddr(table, level, va));
        if (!vm::PageTable::pteValid(pte))
            return std::nullopt;
        table = vm::PageTable::pteFrame(pte);
    }
    return table + vm::pageOffset(va);
}

void
Rmc::postFunctionalCompletion(sim::CtxId ctx, std::uint32_t qpIndex,
                              std::uint32_t wqIndex, CqStatus status)
{
    const CtEntry *ce = ct_.entry(ctx);
    if (!ce || qpIndex >= ce->qps.size())
        return;
    const QpDescriptor &qp = ce->qps[qpIndex];
    RingCursor &cur = cqCursor_[ctx][qpIndex];
    CqEntry cq;
    cq.phase = cur.expectedPhase();
    cq.status = static_cast<std::uint8_t>(status);
    cq.wqIndex = static_cast<std::uint16_t>(wqIndex);
    cq.pad = 0;
    // Functional-only post: the RMC is aborting or draining, not
    // timing-accurately completing; applications just need to observe
    // the status (paper §5.1). CQ pages are pinned.
    const std::optional<mem::PAddr> pa =
        walkFunctional(ce->ptRoot, qp.cqEntryVa(cur.index()));
    if (!pa)
        return;
    phys_.write(*pa, &cq, sizeof(cq));
    cur.advance();
    completionsPosted_.inc();
    ++qpOcc_[ctx][qpIndex].cq;
    if (completionHooks_[ctx][qpIndex])
        completionHooks_[ctx][qpIndex]();
}

void
Rmc::abortTransfer(std::uint32_t tidIndex, CqStatus status)
{
    IttEntry &e = itt_[tidIndex];
    assert(e.active);
    failureAborts_.inc();
    if (status == CqStatus::kFabricError)
        unrecoverable_.inc();
    const CtEntry *ctx = ct_.entry(e.ctx);
    // A flush (teardown) posts through the just-invalidated descriptor:
    // the driver clears `valid` before fencing, but the rings are still
    // mapped and the application still holds handles to drain.
    const bool usable =
        ctx && e.qpIndex < ctx->qps.size() &&
        (ctx->qps[e.qpIndex].valid || status == CqStatus::kFlushed);
    if (usable)
        postFunctionalCompletion(e.ctx, e.qpIndex, e.wqIndex, status);
    freeTid(tidIndex);
}

void
Rmc::fenceQueuePair(sim::CtxId ctx, std::uint32_t qpIndex)
{
    // 1. In-flight transfers of this (ctx, qp): one clean flushed
    //    completion each; freeTid bumps the epoch so late replies drop.
    for (std::uint32_t i = 0; i < itt_.size(); ++i) {
        if (itt_[i].active && itt_[i].ctx == ctx &&
            itt_[i].qpIndex == qpIndex)
            abortTransfer(i, CqStatus::kFlushed);
    }
    // 2. Posted-but-unconsumed WQ entries — including doorbell-batched
    //    ones that were never rung — flush-complete in ring order so
    //    every application post gets exactly one completion. Ops the
    //    RGP consumed but has not yet entered into the ITT (parked in
    //    allocTid) complete themselves: generateRequests re-checks the
    //    descriptor after allocation and self-aborts with kFlushed.
    const CtEntry *ce = ct_.entry(ctx);
    if (!ce || qpIndex >= ce->qps.size())
        return;
    const QpDescriptor &qp = ce->qps[qpIndex];
    RingCursor &cur = wqCursor_[ctx][qpIndex];
    while (true) {
        const std::optional<mem::PAddr> pa =
            walkFunctional(ce->ptRoot, qp.wqEntryVa(cur.index()));
        if (!pa)
            break;
        WqEntry entry;
        phys_.read(*pa, &entry, sizeof(entry));
        if (entry.phase != cur.expectedPhase())
            break;
        const std::uint32_t wqIndex = cur.index();
        cur.advance();
        postFunctionalCompletion(ctx, qpIndex, wqIndex,
                                 CqStatus::kFlushed);
    }
}

void
Rmc::handleFabricFailure()
{
    const fab::FailureInfo &f = ni_.lastFailure();
    switch (f.kind) {
      case fab::FailureKind::kNodeDown:
        if (f.a == nid_) {
            // This node itself died: full reset (paper §5.1).
            reset();
            return;
        }
        // A peer died: abort only the transfers aimed at it, leaving
        // healthy traffic undisturbed, and still tell the driver.
        abortTransfersTo(f.a);
        if (failureHook_)
            failureHook_();
        return;
      case fab::FailureKind::kNodeUp:
      case fab::FailureKind::kLinkDown:
      case fab::FailureKind::kLinkUp:
        // Link faults lose packets, not endpoints: in-flight transfers
        // over the dead link surface through the transfer timeout (or
        // complete via a detour under adaptive routing).
        return;
      case fab::FailureKind::kNone:
        // Legacy bare notification (no info recorded): conservative reset.
        reset();
        return;
    }
}

void
Rmc::abortTransfersTo(sim::NodeId peer)
{
    for (std::uint32_t i = 0; i < itt_.size(); ++i) {
        if (itt_[i].active && itt_[i].peer == peer)
            abortTransfer(i, CqStatus::kFabricError);
    }
}

void
Rmc::reset()
{
    // Abort every outstanding transfer with a fabric-error completion.
    // (Conservative: the paper notes failures "typically require a reset
    // of the RMC's state, and may require a restart of the applications".)
    for (std::uint32_t i = 0; i < itt_.size(); ++i) {
        if (itt_[i].active)
            abortTransfer(i, CqStatus::kFabricError);
    }
    tlb_.flushAll();
    ct_.invalidateCache();
    if (failureHook_)
        failureHook_();
}

void
Rmc::scheduleSweep()
{
    if (sweepScheduled_ || params_.transferTimeout == 0)
        return;
    sweepScheduled_ = true;
    eq_.scheduleAfter(params_.transferTimeout / 2, [this] {
        sweepScheduled_ = false;
        sweepTimeouts();
    });
}

void
Rmc::sweepTimeouts()
{
    const sim::Tick now = eq_.now();
    for (std::uint32_t i = 0; i < itt_.size(); ++i) {
        IttEntry &e = itt_[i];
        // Skip entries a retransmit coroutine already owns and entries
        // the RGP is still unrolling (their deadline starts when the
        // last line leaves).
        if (!e.active || e.retransmitPending || !e.unrolled)
            continue;
        if (now - e.issuedAt < params_.transferTimeout)
            continue;
        // Transfers that already took a source-side error (unmapped
        // buffer) and transfers out of attempts abort; everything else
        // retransmits with capped deterministic backoff.
        if (e.error ||
            std::uint32_t(e.attempt) + 1 >= params_.maxAttempts) {
            abortTransfer(i, CqStatus::kFabricError);
            continue;
        }
        ++e.attempt;
        e.remaining = e.total;
        e.retransmitPending = true;
        retransmits_.inc();
        retransmitTransfer(i);
    }
    if (activeTids_ > 0)
        scheduleSweep();
}

sim::Task
Rmc::chargeFrontend(sim::Tick hwCost, sim::Tick emuCost)
{
    if (params_.emulation())
        co_await emuFrontend_->use(emuCost);
    else if (hwCost > 0)
        co_await sim::Delay(eq_, hwCost);
}

sim::Task
Rmc::chargeRemote(sim::Tick hwCost, sim::Tick emuCost)
{
    if (params_.emulation())
        co_await emuRemote_->use(emuCost);
    else if (hwCost > 0)
        co_await sim::Delay(eq_, hwCost);
}

sim::Task
Rmc::sendMessage(fab::Message msg)
{
    const auto lane = static_cast<std::size_t>(msg.lane());
    while (!ni_.trySend(msg))
        co_await sendSpace_[lane].wait();
}

sim::Task
Rmc::allocTid(std::uint32_t *out)
{
    while (freeTids_.empty())
        co_await tidAvailable_.wait();
    const std::uint32_t idx = freeTids_.back();
    freeTids_.pop_back();
    ++activeTids_;
    itt_[idx].issuedAt = eq_.now();
    scheduleSweep();
    *out = idx;
}

void
Rmc::freeTid(std::uint32_t tidIndex)
{
    assert(tidIndex < itt_.size());
    // Every transfer release funnels through here, so this is the single
    // WQ-occupancy decrement matching generateRequests' increment. The
    // guard covers entries freed before their ITT init (never counted).
    {
        QpOccupancy &occ =
            qpOcc_[itt_[tidIndex].ctx][itt_[tidIndex].qpIndex];
        if (occ.wq > 0)
            --occ.wq;
    }
    itt_[tidIndex].active = false;
    // Bump the per-entry epoch so a late reply for the old incarnation
    // of this tid cannot be confused with a future reuse.
    ++itt_[tidIndex].epoch;
    freeTids_.push_back(tidIndex);
    assert(activeTids_ > 0);
    --activeTids_;
    tidAvailable_.notifyAll();
}

sim::Task
Rmc::translate(sim::CtxId ctx, vm::VAddr va, mem::PAddr ptRoot,
               std::optional<mem::PAddr> *out)
{
    co_await walker_.translate(ctx, va, ptRoot, out);
}

} // namespace sonuma::rmc
