/**
 * @file
 * TLB implementation.
 */

#include "rmc/tlb.hh"

namespace sonuma::rmc {

Tlb::Tlb(sim::StatRegistry &stats, const std::string &name,
         std::uint32_t entries)
    : capacity_(entries), entries_(entries),
      hits_(stats, name + ".hits", "TLB hits"),
      misses_(stats, name + ".misses", "TLB misses")
{
}

std::optional<mem::PAddr>
Tlb::lookup(sim::CtxId ctx, vm::VAddr va)
{
    const std::uint64_t vpn = vpnOf(va);
    for (auto &e : entries_) {
        if (e.valid && e.ctx == ctx && e.vpn == vpn) {
            e.lastUse = ++useClock_;
            hits_.inc();
            return e.frame + vm::pageOffset(va);
        }
    }
    misses_.inc();
    return std::nullopt;
}

void
Tlb::insert(sim::CtxId ctx, vm::VAddr va, mem::PAddr frame)
{
    const std::uint64_t vpn = vpnOf(va);
    Entry *victim = nullptr;
    for (auto &e : entries_) {
        if (e.valid && e.ctx == ctx && e.vpn == vpn) {
            victim = &e; // refresh existing mapping
            break;
        }
        if (!e.valid) {
            if (!victim || victim->valid)
                victim = &e;
        } else if (!victim ||
                   (victim->valid && e.lastUse < victim->lastUse)) {
            victim = &e;
        }
    }
    victim->valid = true;
    victim->ctx = ctx;
    victim->vpn = vpn;
    victim->frame = frame;
    victim->lastUse = ++useClock_;
}

void
Tlb::flushCtx(sim::CtxId ctx)
{
    for (auto &e : entries_) {
        if (e.ctx == ctx)
            e.valid = false;
    }
}

void
Tlb::flushAll()
{
    for (auto &e : entries_)
        e.valid = false;
}

} // namespace sonuma::rmc
