/**
 * @file
 * Memory Access Queue implementation.
 */

#include "rmc/maq.hh"

namespace sonuma::rmc {

Maq::Maq(sim::EventQueue &eq, sim::StatRegistry &stats,
         const std::string &name, mem::L1Cache &l1, std::uint32_t entries)
    : eq_(eq), l1_(l1), capacity_(entries),
      reads_(stats, name + ".reads", "MAQ read accesses"),
      writes_(stats, name + ".writes", "MAQ write accesses"),
      forwards_(stats, name + ".forwards", "store-to-load forwards"),
      structuralStalls_(stats, name + ".stalls", "full-queue stalls")
{
}

void
Maq::submit(mem::PAddr pa, bool isWrite, bool fullLine,
            std::function<void()> done)
{
    // Store-to-load forwarding: a load that hits an in-flight store to
    // the same line completes when that store commits, without a second
    // L1 access.
    if (!isWrite) {
        auto it = inflightStores_.find(lineOf(pa));
        if (it != inflightStores_.end()) {
            forwards_.inc();
            it->second.push_back(std::move(done));
            return;
        }
    }

    if (inflight_ >= capacity_) {
        structuralStalls_.inc();
        waiting_.push_back(Pending{pa, isWrite, fullLine, std::move(done)});
        return;
    }
    issue(Pending{pa, isWrite, fullLine, std::move(done)});
}

void
Maq::issue(Pending p)
{
    ++inflight_;
    if (p.isWrite)
        writes_.inc();
    else
        reads_.inc();

    const mem::PAddr line = lineOf(p.pa);
    if (p.isWrite)
        inflightStores_[line]; // mark store in flight

    auto completion = [this, line, isWrite = p.isWrite,
                       done = std::move(p.done)]() mutable {
        done();
        if (isWrite) {
            // Wake any loads forwarded from this store.
            auto node = inflightStores_.extract(line);
            if (!node.empty()) {
                for (auto &fn : node.mapped())
                    fn();
            }
        }
        release();
    };
    if (p.fullLine)
        l1_.accessFullLineWrite(p.pa, std::move(completion));
    else
        l1_.access(p.pa, p.isWrite, std::move(completion));
}

void
Maq::release()
{
    --inflight_;
    if (!waiting_.empty() && inflight_ < capacity_) {
        Pending p = std::move(waiting_.front());
        waiting_.pop_front();
        issue(std::move(p));
    }
}

} // namespace sonuma::rmc
