/**
 * @file
 * Memory Access Queue implementation.
 */

#include "rmc/maq.hh"

#include <cassert>

namespace sonuma::rmc {

Maq::Maq(sim::EventQueue &eq, sim::StatRegistry &stats,
         const std::string &name, mem::L1Cache &l1, std::uint32_t entries)
    : eq_(eq), l1_(l1), capacity_(entries), waiting_(entries),
      reads_(stats, name + ".reads", "MAQ read accesses"),
      writes_(stats, name + ".writes", "MAQ write accesses"),
      forwards_(stats, name + ".forwards", "store-to-load forwards"),
      structuralStalls_(stats, name + ".stalls", "full-queue stalls")
{
    slots_.resize(capacity_);
    freeSlots_.reserve(capacity_);
    for (std::uint32_t i = capacity_; i > 0; --i)
        freeSlots_.push_back(i - 1);
}

Maq::Slot *
Maq::findInflightStore(mem::PAddr line)
{
    for (auto &slot : slots_) {
        if (slot.active && slot.isWrite && slot.line == line)
            return &slot;
    }
    return nullptr;
}

void
Maq::submit(mem::PAddr pa, bool isWrite, bool fullLine, sim::Callback done)
{
    // Store-to-load forwarding: a load that hits an in-flight store to
    // the same line completes when that store commits, without a second
    // L1 access (and without occupying a MAQ slot).
    if (!isWrite) {
        if (Slot *store = findInflightStore(lineOf(pa))) {
            forwards_.inc();
            store->forwardedLoads.push_back(std::move(done));
            return;
        }
    }

    if (inflight_ >= capacity_) {
        structuralStalls_.inc();
        waiting_.push(Pending{pa, isWrite, fullLine, std::move(done)});
        return;
    }
    issue(pa, isWrite, fullLine, std::move(done));
}

void
Maq::issue(mem::PAddr pa, bool isWrite, bool fullLine, sim::Callback done)
{
    ++inflight_;
    if (isWrite)
        writes_.inc();
    else
        reads_.inc();

    assert(!freeSlots_.empty());
    const std::uint32_t idx = freeSlots_.back();
    freeSlots_.pop_back();
    Slot &slot = slots_[idx];
    slot.line = lineOf(pa);
    slot.isWrite = isWrite;
    slot.active = true;
    slot.done = std::move(done);

    // The completion handed to the cache captures 12 bytes: it always
    // stays inline in sim::Callback no matter how large the original
    // continuation's captures are.
    if (fullLine)
        l1_.accessFullLineWrite(pa, [this, idx] { complete(idx); });
    else
        l1_.access(pa, isWrite, [this, idx] { complete(idx); });
}

void
Maq::complete(std::uint32_t slotIdx)
{
    Slot &slot = slots_[slotIdx];
    assert(slot.active);

    // Detach completion state before invoking anything: callbacks may
    // re-enter submit() and the freed slot must be reusable immediately.
    sim::Callback done = std::move(slot.done);
    const bool wasWrite = slot.isWrite;
    slot.active = false;

    done();
    if (wasWrite && !slot.forwardedLoads.empty()) {
        // Wake loads forwarded from this store. New forwards cannot
        // subscribe mid-loop (the slot is already inactive), so plain
        // index iteration is safe even if a callback grows other slots.
        for (auto &fn : slot.forwardedLoads)
            fn();
        slot.forwardedLoads.clear();
    }
    freeSlots_.push_back(slotIdx);
    release();
}

void
Maq::release()
{
    --inflight_;
    if (!waiting_.empty() && inflight_ < capacity_) {
        Pending p = waiting_.popFront();
        issue(p.pa, p.isWrite, p.fullLine, std::move(p.done));
    }
}

} // namespace sonuma::rmc
