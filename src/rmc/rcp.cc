/**
 * @file
 * Request Completion Pipeline (paper §4.2, Fig. 3b middle).
 *
 * Absorb replies: decode -> ITT lookup by tid -> (for reads/atomics)
 * translate the target buffer address and store the payload -> update
 * ITT -> on the last line, write the CQ entry and recycle the tid.
 * Replies may arrive and complete out of order.
 */

#include "rmc/rmc.hh"

#include <cassert>

#include "sim/log.hh"

namespace sonuma::rmc {

sim::FireAndForget
Rmc::rcpLoop()
{
    // Completion-side arbitration across queue pairs is implicit:
    // replies are absorbed in NI arrival order, so no single QP's
    // transfers can monopolize the RCP beyond the share of reply
    // traffic the fabric actually delivered for them. rcpSlots_ bounds
    // total reply concurrency exactly like the hardware's buffer pool.
    const auto lane = static_cast<std::size_t>(fab::Lane::kReply);
    while (true) {
        co_await rcpSlots_.acquire();
        while (!ni_.hasMessage(fab::Lane::kReply))
            co_await arrival_[lane].wait();
        processReply(ni_.pop(fab::Lane::kReply));
    }
}

sim::FireAndForget
Rmc::processReply(fab::Message msg)
{
    const std::uint16_t ep = static_cast<std::uint16_t>(msg.tid >> 16);
    const std::uint32_t tidIndex = msg.tid & 0xffff;

    if (tidIndex >= itt_.size() || !itt_[tidIndex].active ||
        itt_[tidIndex].epoch != ep ||
        itt_[tidIndex].attempt != msg.attempt) {
        // Stale reply — from before an RMC reset (epoch) or from a
        // superseded attempt of a retransmitted transfer: drop it. The
        // retransmit already re-counts every line of the new attempt.
        rcpSlots_.release();
        co_return;
    }
    IttEntry &itt = itt_[tidIndex];
    repliesProcessed_.inc();

    if (params_.emulation())
        co_await sim::Delay(eq_, params_.emuPollDelay);

    co_await chargeFrontend(params_.cycles(params_.rcpStageCycles),
                            params_.emuPerReply);

    // The charges above suspend; a reset() may have aborted this
    // transfer and freed (epoch-bumped) its tid meanwhile — or the
    // timeout sweep may have bumped the attempt, superseding this
    // reply. Re-check before reading buffer coordinates out of the
    // entry — the slot may already belong to a new transfer/attempt.
    if (!itt.active || itt.epoch != ep || itt.attempt != msg.attempt) {
        rcpSlots_.release();
        co_return;
    }

    const CtEntry *ce = ct_.entry(itt.ctx);

    if (msg.op == fab::Op::kErrorReply || !msg.payloadLenValid()) {
        // Error replies and replies carrying an impossible payload
        // length (never trust the wire value as a copy size).
        itt.error = true;
    } else if (msg.op == fab::Op::kReadReply ||
               msg.op == fab::Op::kAtomicReply) {
        // Compute the destination buffer address from the WQ entry's
        // buffer base plus the line offset echoed in the reply (§4.2).
        const vm::VAddr dst = itt.bufVa + (msg.offset - itt.baseOffset);
        std::optional<mem::PAddr> pa;
        co_await translate(itt.ctx, dst, ce->ptRoot, &pa);
        // Translation suspends too: re-check before writing the error
        // flag (or payload bookkeeping) into an entry a reset may have
        // handed to a new transfer (or a sweep to a new attempt).
        if (!itt.active || itt.epoch != ep ||
            itt.attempt != msg.attempt) {
            rcpSlots_.release();
            co_return;
        }
        if (!pa) {
            itt.error = true; // local buffer unmapped (app bug)
        } else if (msg.op == fab::Op::kReadReply) {
            co_await maq_.writeFullLine(*pa);
            phys_.write(*pa, msg.payload.data(), msg.payloadLen);
        } else {
            co_await maq_.write(*pa);
            phys_.write(*pa, msg.payload.data(), msg.payloadLen);
        }
    }
    // Write replies need no application-memory update at the source.

    // Update the ITT ("Update ITT", a memory write through the MAQ).
    co_await maq_.write(ittAddr(tidIndex));
    // The payload/ITT writes suspend too — same reset/retransmit window
    // as above. Decrementing a freed entry would post a duplicate
    // completion for whatever transfer reuses the slot; decrementing a
    // re-attempted one would double-count this line.
    if (!itt.active || itt.epoch != ep || itt.attempt != msg.attempt) {
        rcpSlots_.release();
        co_return;
    }
    // Always-on invariant (NDEBUG builds keep the net): a reply for a
    // live transfer with no lines outstanding means a stale reply
    // slipped the epoch check — the double-completion precursor.
    if (itt.remaining == 0)
        sim::fatal("RCP: reply for tid " + std::to_string(tidIndex) +
                   " with no outstanding lines (stale reply slipped the "
                   "epoch check?)");
    --itt.remaining;

    if (itt.remaining == 0)
        co_await postCompletion(itt, tidIndex);

    rcpSlots_.release();
}

sim::Task
Rmc::postCompletion(IttEntry &itt, std::uint32_t tidIndex)
{
    const CtEntry *ce = ct_.entry(itt.ctx);
    if (!ce || itt.qpIndex >= ce->qps.size() ||
        !ce->qps[itt.qpIndex].valid) {
        freeTid(tidIndex);
        co_return;
    }
    const QpDescriptor qp = ce->qps[itt.qpIndex];
    RingCursor &cursor = cqCursor_[itt.ctx][itt.qpIndex];

    // Claim the CQ slot *before* any suspension: concurrent completions
    // must each land in their own ring slot. A later-claimed slot may be
    // written earlier; the consumer polls in ring order and simply waits
    // for the earlier slot's phase flip.
    CqEntry cq;
    cq.phase = cursor.expectedPhase();
    cq.status = static_cast<std::uint8_t>(
        itt.error ? CqStatus::kBoundsError : CqStatus::kOk);
    cq.wqIndex = static_cast<std::uint16_t>(itt.wqIndex);
    cq.pad = 0;
    const vm::VAddr cqVa = qp.cqEntryVa(cursor.index());
    cursor.advance();

    // Release the ITT entry *before* any suspension, too: a fabric
    // failure (reset()) or the timeout sweep scanning active entries
    // mid-write would otherwise abort this transfer a second time and
    // post a duplicate completion for the same WQ slot. The epoch bump
    // in freeTid drops any straggler replies for the old incarnation.
    const sim::CtxId ctx = itt.ctx;
    const std::uint32_t qpIndex = itt.qpIndex;
    const mem::PAddr ptRoot = ce->ptRoot;
    freeTid(tidIndex);

    std::optional<mem::PAddr> pa;
    co_await translate(ctx, cqVa, ptRoot, &pa);
    if (pa) {
        co_await maq_.write(*pa);
        phys_.write(*pa, &cq, sizeof(cq));
        completionsPosted_.inc();
        ++qpOcc_[ctx][qpIndex].cq;
    }

    if (completionHooks_[ctx][qpIndex])
        completionHooks_[ctx][qpIndex]();
}

} // namespace sonuma::rmc
