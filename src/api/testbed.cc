/**
 * @file
 * ClusterSpec / TestBed implementation.
 */

#include "api/testbed.hh"

#include <algorithm>
#include <stdexcept>

namespace sonuma::api {

node::ClusterParams
ClusterSpec::resolve() const
{
    node::ClusterParams p = params_;
    if (physMemBytes_ != 0) {
        p.node.physMemBytes = physMemBytes_;
    } else {
        // Room for the segment, queue pairs, scratch buffers and page
        // tables; never below the Table 1 default.
        p.node.physMemBytes = std::max<std::uint64_t>(
            p.node.physMemBytes, 4 * segBytes_);
    }
    node::validate(p);
    return p;
}

TestBed::TestBed(const ClusterSpec &spec)
    : sim_(spec.seedValue()), ctx_(spec.ctx()),
      segBytes_(spec.segmentBytes())
{
    sessionParams_.doorbellBatching = spec.doorbellBatchingValue();
    const node::ClusterParams params = spec.resolve();
    cluster_ = std::make_unique<node::Cluster>(sim_, params);
    nodeCount_ = static_cast<std::uint32_t>(cluster_->nodeCount());
    cluster_->createSharedContext(ctx_);

    if (!spec.faultPlanValue().empty()) {
        // Arm before run(): a malformed plan (bad node id, nonexistent
        // link) throws here with a precise message, not mid-simulation.
        faultInjector_ = std::make_unique<fab::FaultInjector>(
            sim_.eq(), cluster_->fabric(), spec.faultPlanValue());
        faultInjector_->arm();
    }

    procs_.resize(nodeCount_);
    segBases_.resize(nodeCount_);
    for (std::uint32_t i = 0; i < nodeCount_; ++i) {
        auto &nd = cluster_->node(i);
        procs_[i] = &nd.os().createProcess(spec.uidValue());
        segBases_[i] = procs_[i]->alloc(segBytes_);
        nd.driver().openContext(*procs_[i], ctx_);
        nd.driver().registerSegment(*procs_[i], ctx_, segBases_[i],
                                    segBytes_);
    }
}

os::Process &
TestBed::process(std::uint32_t nodeIdx)
{
    return *procs_.at(nodeIdx);
}

vm::VAddr
TestBed::segBase(std::uint32_t nodeIdx) const
{
    return segBases_.at(nodeIdx);
}

RmcSession &
TestBed::session(std::uint32_t nodeIdx, std::uint32_t core)
{
    auto it = primary_.find({nodeIdx, core});
    if (it != primary_.end())
        return *it->second;
    RmcSession &s = newSession(nodeIdx, core);
    primary_.emplace(std::make_pair(nodeIdx, core), &s);
    return s;
}

RmcSession &
TestBed::newSession(std::uint32_t nodeIdx, std::uint32_t core)
{
    return newSession(nodeIdx, core, sessionParams_);
}

RmcSession &
TestBed::newSession(std::uint32_t nodeIdx, std::uint32_t core,
                    const SessionParams &params)
{
    auto &nd = cluster_->node(nodeIdx);
    sessions_.push_back(std::make_unique<RmcSession>(
        nd.core(core), nd.driver(), *procs_.at(nodeIdx), ctx_, params));
    return *sessions_.back();
}

} // namespace sonuma::api
