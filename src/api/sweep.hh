/**
 * @file
 * Parameter-matrix sweep driver.
 *
 * Runs a fig9-style uniform remote-read workload over the full cross
 * product of request size x QP depth x node count x topology, one
 * freshly-built TestBed + Workload per cell, and emits one JSON blob
 * per cell in the flat BENCH_sim_core.json schema so regression
 * tooling can diff runs:
 *
 *   {"bench": "sweep", "schema": 1, "nodes": 64,
 *    "topology": "torus_8x8", "request_bytes": 64, "qp_depth": 64,
 *    "ops": 8192, "mops": ..., "gbps": ..., "mean_latency_ns": ...,
 *    "p99_latency_ns": ..., "sim_us": ..., "host_seconds": ...}
 *
 * This is the ROADMAP's "workload sweeps" driver: a 64-512 node
 * scaling study is a SweepConfig literal, not a new harness.
 */

#ifndef SONUMA_API_SWEEP_HH
#define SONUMA_API_SWEEP_HH

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "api/testbed.hh"
#include "node/cluster.hh"
#include "rmc/params.hh"

namespace sonuma::api {

/** The sweep matrix plus per-cell workload intensity. */
struct SweepConfig
{
    std::vector<std::uint32_t> requestSizes{64};
    std::vector<std::uint32_t> qpDepths{64};
    std::vector<std::uint32_t> qpCounts{1}; //!< QPs per session (Table 2)
    std::vector<std::uint32_t> nodeCounts{4};
    std::vector<node::Topology> topologies{node::Topology::kCrossbar};

    std::uint32_t opsPerNode = 128;   //!< async reads issued per node
    std::uint64_t segmentBytes = 1_MiB;
    std::uint64_t seed = 1;
    bool doorbellBatching = false;    //!< batch WQ doorbells per QP
    rmc::RmcParams rmcParams = rmc::RmcParams::simulatedHardware();

    std::string outDir;   //!< write one SWEEP_*.json per cell; "" = skip
    bool echo = true;     //!< print each cell's JSON line to stdout
};

/** One cell of the matrix plus its measurements. */
struct SweepCellResult
{
    // Coordinates.
    std::uint32_t nodes = 0;
    node::Topology topology = node::Topology::kCrossbar;
    std::vector<std::uint32_t> torusDims; //!< empty for crossbar
    std::uint32_t requestBytes = 0;
    std::uint32_t qpDepth = 0;
    std::uint32_t qpCount = 1;
    bool doorbellBatching = false;

    // Measurements.
    std::uint64_t ops = 0;          //!< total remote reads issued
    double mops = 0;                //!< million ops per simulated second
    double gbps = 0;                //!< payload Gbit per simulated second
    double meanLatencyNs = 0;       //!< post -> completion, per op
    double p99LatencyNs = 0;
    double simMicros = 0;           //!< aligned region, simulated time
    double hostSeconds = 0;         //!< wall time to simulate the cell

    /**
     * Stable identifier, e.g. "n64_torus_8x8_rs64_qd64"; multi-QP
     * cells append "_qp<N>" (single-QP labels keep their pre-qpCount
     * spelling so existing artifacts stay diffable).
     */
    std::string label() const;

    /** Human-readable topology, e.g. "torus_8x8" or "crossbar". */
    std::string topologyName() const;

    /** Render the flat JSON blob (BENCH_sim_core.json schema style). */
    void writeJson(std::ostream &os) const;
};

class SweepDriver
{
  public:
    explicit SweepDriver(SweepConfig cfg) : cfg_(std::move(cfg)) {}

    /**
     * Run every cell of the matrix. Each cell gets its own Simulation
     * seeded from cfg.seed, so cells are independent and reproducible.
     */
    std::vector<SweepCellResult> run();

    /** Run one cell (used by run() and directly by tests). */
    SweepCellResult runCell(std::uint32_t nodes, node::Topology topo,
                            std::uint32_t requestBytes,
                            std::uint32_t qpDepth,
                            std::uint32_t qpCount = 1);

    /**
     * Near-square torus factorization for @p nodes, e.g. 64 -> {8, 8},
     * 32 -> {4, 8}. Falls back to {1, n} for primes.
     */
    static std::vector<std::uint32_t> torusDimsFor(std::uint32_t nodes);

  private:
    SweepConfig cfg_;

    void emit(const SweepCellResult &cell) const;
};

} // namespace sonuma::api

#endif // SONUMA_API_SWEEP_HH
