/**
 * @file
 * Parameter-matrix sweep driver with pluggable workloads.
 *
 * Runs a registered workload over the full cross product of request
 * size x QP depth x QP count x node count x topology, one freshly-built
 * TestBed + Workload per cell, and emits one JSON blob per cell in the
 * flat BENCH_sim_core.json schema so regression tooling can diff runs:
 *
 *   {"bench": "sweep", "schema": 1, "workload": "uniform", "nodes": 64,
 *    "topology": "torus_8x8", "request_bytes": 64, "qp_depth": 64,
 *    "ops": 8192, "mops": ..., "gbps": ..., "mean_latency_ns": ...,
 *    "p99_latency_ns": ..., "sim_us": ..., "host_seconds": ...}
 *
 * Two workloads ship registered:
 *
 *  - "uniform" (built in): the fig9-style uniform remote-read kernel,
 *    every node streaming a full-window pipeline of reads round-robin
 *    over its peers. Artifacts are SWEEP_<label>.json.
 *  - "pagerank" (src/app/pagerank.cc, enabled by calling
 *    app::registerPageRankSweepWorkload()): the paper's Fig. 9
 *    application itself — fine-grain BSP PageRank, one remote read per
 *    cross-partition edge. Artifacts are FIG9_<label>.json.
 *
 * New workloads implement SweepWorkload and register a factory; the
 * driver owns cell construction, metric pooling and JSON rendering, so
 * a 64-512 node scaling study of any workload is a SweepConfig
 * literal, not a new harness. Bodies sample per-op latency into the
 * standard per-node histogram "sweep.node<i>.opLatencyNs" (pooled
 * cluster-wide into mean/p99) and keep a per-node "sweep.node<i>.ops"
 * counter for the stats dump; the cell's total ops (the mops
 * numerator) comes from SweepWorkload::finish so it always covers
 * exactly the measured region.
 */

#ifndef SONUMA_API_SWEEP_HH
#define SONUMA_API_SWEEP_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "api/testbed.hh"
#include "api/workload.hh"
#include "fabric/router.hh"
#include "node/cluster.hh"
#include "rmc/params.hh"

namespace sonuma::api {

/** The sweep matrix plus per-cell workload intensity. */
struct SweepConfig
{
    std::vector<std::uint32_t> requestSizes{64};
    std::vector<std::uint32_t> qpDepths{64};
    std::vector<std::uint32_t> qpCounts{1}; //!< QPs per session (Table 2)
    std::vector<std::uint32_t> nodeCounts{4};
    std::vector<node::Topology> topologies{node::Topology::kCrossbar};

    /** Registered workload driven in every cell. */
    std::string workload = "uniform";

    /**
     * Torus shape. Explicit dims (e.g. {8, 8, 8} from --topo=8x8x8)
     * apply to every torus cell and must multiply to its node count;
     * when empty, cells auto-factorize their node count into
     * torusNdims near-equal radices (64 -> {8,8} in 2D, {4,4,4} in 3D).
     */
    std::vector<std::uint32_t> torusDims;
    std::uint32_t torusNdims = 2;

    std::uint32_t opsPerNode = 128;   //!< async reads issued per node
    std::uint64_t segmentBytes = 1_MiB;
    std::uint64_t seed = 1;
    bool doorbellBatching = false;    //!< batch WQ doorbells per QP
    rmc::RmcParams rmcParams = rmc::RmcParams::simulatedHardware();

    /**
     * Fault scenario applied to every cell (fab::FaultPlan grammar:
     * none | incast | node-kill@T[+D][:N] | link-kill@T[+D][:A-B] |
     * link-flap@T~PxC[:A-B] | drop@T+D[:A-B]). "none" keeps cells
     * healthy and their artifacts byte-identical to the fault-free
     * driver; "incast" leaves the fabric alone but switches the
     * uniform workload to an all-to-one traffic storm on node 0.
     */
    std::string faultSpec = "none";

    /** Torus routing policy; adaptive detours around failed links. */
    fab::RoutingMode routing = fab::RoutingMode::kDor;

    /**
     * Retry budget per op for degraded cells (faultSpec != "none"):
     * aborted ops are reposted with capped exponential backoff up to
     * maxRetries times, then counted failed. Healthy cells ignore
     * these and keep their fail-fast behavior.
     */
    std::uint32_t maxRetries = 8;
    sim::Tick retryBackoff = sim::usToTicks(5);

    /**
     * Background traffic: every node additionally runs a closed-loop
     * stream of single-line uniform reads over a private one-QP
     * session, with a window of max(1, bgTraffic * qpDepth) — a
     * fraction of the foreground intensity. 0 disables it (and keeps
     * healthy artifacts byte-identical). Cells with background load
     * get a "_bg<pct>" label suffix and bg_traffic/bg_ops JSON fields.
     */
    double bgTraffic = 0.0;

    /** PageRank workload axis (used when workload == "pagerank"). */
    struct PageRankAxis
    {
        std::uint32_t vertices = 16384; //!< fixed graph: strong scaling
        std::uint32_t degree = 8;       //!< average in-degree
        std::uint32_t supersteps = 1;   //!< measured BSP supersteps
        std::uint32_t warmupSupersteps = 0; //!< untimed warm-up
        std::uint64_t graphSeed = 7;
        bool verifyRanks = true; //!< check vs host reference, fatal on drift

        /**
         * LLC per node, scaled down with the scaled-down graph so the
         * cache-to-dataset ratio matches the paper's (see
         * bench/fig9_pagerank.cc); 0 keeps the Table 1 default.
         */
        std::uint64_t l2PerNodeBytes = 256 * 1024;
    };
    PageRankAxis pagerank;

    /**
     * Time-series sampling period in simulated ns; 0 (default) keeps
     * sampling off and every cell artifact byte-identical. When set,
     * each cell also renders an OBS_<label>.json sidecar (written next
     * to the cell artifact when outDir is set; docs/observability.md).
     */
    std::uint64_t obsPeriodNs = 0;
    std::size_t obsSlots = 1024; //!< fixed ring slots per series

    std::string outDir;   //!< write one <prefix><label>.json per cell
    bool echo = true;     //!< print each cell's JSON line to stdout
};

/** One cell of the matrix plus its measurements. */
struct SweepCellResult
{
    // Coordinates.
    std::string workload = "uniform";
    std::uint32_t nodes = 0;
    node::Topology topology = node::Topology::kCrossbar;
    std::vector<std::uint32_t> torusDims; //!< empty for crossbar
    std::uint32_t requestBytes = 0;
    std::uint32_t qpDepth = 0;
    std::uint32_t qpCount = 1;
    bool doorbellBatching = false;

    // Degraded-mode coordinates (defaults = the healthy baseline; a
    // cell is "degraded" when either differs, and only then do the
    // degraded fields below appear in its label and JSON).
    std::string faultScenario = "none";
    fab::RoutingMode routing = fab::RoutingMode::kDor;
    double bgTraffic = 0.0;         //!< background-load fraction (0 = off)

    // Measurements.
    std::uint64_t ops = 0;          //!< total remote ops issued
    double mops = 0;                //!< million ops per simulated second
    double gbps = 0;                //!< payload Gbit per simulated second
    double meanLatencyNs = 0;       //!< post -> completion, per op
    double p99LatencyNs = 0;
    double simMicros = 0;           //!< measured region, simulated time
    double hostSeconds = 0;         //!< wall time to simulate the cell

    // Degraded-mode accounting. The identities okOps + failedOps == ops
    // and abortedOps == retriedOps + failedOps hold for every cell (a
    // healthy cell has okOps == ops and zeros elsewhere).
    std::uint64_t okOps = 0;        //!< ops that completed successfully
    std::uint64_t abortedOps = 0;   //!< attempts aborted by a fault
    std::uint64_t retriedOps = 0;   //!< reposts after an aborted attempt
    std::uint64_t failedOps = 0;    //!< ops given up at the retry cap
    std::uint64_t droppedMessages = 0; //!< fabric-level packet drops
    // Reliable-delivery accounting, pooled from the RMC counters. A
    // dropped-then-retransmitted packet shows up in droppedMessages AND
    // retransmits but never as a lost op: with retries disabled,
    // okOps + unrecoverable == ops holds exactly (asserted for
    // drop-scenario uniform cells in runCell).
    std::uint64_t retransmits = 0;  //!< timed-out transfers re-sent
    std::uint64_t dupSuppressed = 0; //!< replays answered from dedup
    std::uint64_t unrecoverable = 0; //!< transfers given up for good
    std::uint64_t bgOps = 0;        //!< background reads completed ok
    double goodputMops = 0;         //!< successful ops per simulated second
    double p50LatencyNs = 0;
    double p95LatencyNs = 0;

    /** True when this cell ran with faults or non-default routing. */
    bool
    degraded() const
    {
        return faultScenario != "none" ||
               routing != fab::RoutingMode::kDor;
    }

    /** Workload-specific JSON fields, appended in order. */
    std::vector<std::pair<std::string, double>> extra;

    /**
     * Rendered OBS_<label>.json sidecar (empty unless the cell ran with
     * SweepConfig::obsPeriodNs > 0). Captured before the cell's TestBed
     * is torn down; not part of writeJson().
     */
    std::string obsJson;

    /**
     * Stable identifier, e.g. "n64_torus_8x8_rs64_qd64"; multi-QP
     * cells append "_qp<N>", batched cells "_db", non-uniform
     * workloads "_<workload>", adaptively-routed cells "_adaptive",
     * faulted cells "_<scenario>" and background-loaded cells
     * "_bg<pct>" (single-QP uniform dor-routed
     * healthy labels keep their original spelling so existing
     * artifacts stay diffable).
     */
    std::string label() const;

    /** Human-readable topology, e.g. "torus_8x8x8" or "crossbar". */
    std::string topologyName() const;

    /** Render the flat JSON blob (BENCH_sim_core.json schema style). */
    void writeJson(std::ostream &os) const;
};

/**
 * One registered sweep workload, instantiated per cell. The driver
 * calls, in order: configure (adjust the cell's ClusterSpec — segment
 * sizing, L2, ...), install (set the Workload body), run, finish
 * (report ops + the measured region), annotate (extra JSON fields).
 */
class SweepWorkload
{
  public:
    virtual ~SweepWorkload() = default;

    /** Adjust the cell's ClusterSpec before the TestBed is built. */
    virtual void
    configure(ClusterSpec &spec, const SweepCellResult &cell,
              const SweepConfig &cfg)
    {
        (void)spec;
        (void)cell;
        (void)cfg;
    }

    /** Install the per-node body (and any functional pre-run state). */
    virtual void install(TestBed &bed, Workload &wl,
                         const SweepCellResult &cell,
                         const SweepConfig &cfg) = 0;

    struct Outcome
    {
        std::uint64_t ops = 0;    //!< total remote ops issued
        sim::Tick measured = 0;   //!< measured region; 0 = wl.elapsed()
    };

    /** Called after the workload ran; verify and report. */
    virtual Outcome finish(TestBed &bed, const SweepCellResult &cell,
                           const SweepConfig &cfg) = 0;

    /** Append workload-specific JSON fields to the cell. */
    virtual void
    annotate(SweepCellResult &cell) const
    {
        (void)cell;
    }

    /** Artifact file prefix ("SWEEP_", or "FIG9_" for pagerank). */
    virtual const char *
    artifactPrefix() const
    {
        return "SWEEP_";
    }
};

class SweepDriver
{
  public:
    using WorkloadFactory = std::function<std::unique_ptr<SweepWorkload>()>;

    explicit SweepDriver(SweepConfig cfg) : cfg_(std::move(cfg)) {}

    /**
     * Run every cell of the matrix. Each cell gets its own Simulation
     * seeded from cfg.seed, so cells are independent and reproducible.
     */
    std::vector<SweepCellResult> run();

    /** Run one cell (used by run() and directly by tests). */
    SweepCellResult runCell(std::uint32_t nodes, node::Topology topo,
                            std::uint32_t requestBytes,
                            std::uint32_t qpDepth,
                            std::uint32_t qpCount = 1);

    /**
     * Register (or replace) a workload under @p name. "uniform" is
     * pre-registered; app::registerPageRankSweepWorkload() adds
     * "pagerank".
     */
    static void registerWorkload(const std::string &name,
                                 WorkloadFactory factory);

    static bool workloadRegistered(const std::string &name);

    /** Registered names, sorted (for error messages / --help). */
    static std::vector<std::string> registeredWorkloads();

    /**
     * Near-square 2D torus factorization for @p nodes, e.g. 64 ->
     * {8, 8}, 32 -> {4, 8}. Falls back to {1, n} for primes.
     */
    static std::vector<std::uint32_t> torusDimsFor(std::uint32_t nodes);

    /**
     * Near-cubic factorization into @p ndims radices, largest last:
     * 64 -> {4, 4, 4}, 256 -> {4, 8, 8}, 512 -> {8, 8, 8}.
     */
    static std::vector<std::uint32_t> torusDimsFor(std::uint32_t nodes,
                                                   std::uint32_t ndims);

  private:
    SweepConfig cfg_;

    void emit(const SweepCellResult &cell,
              const std::string &prefix) const;
};

} // namespace sonuma::api

#endif // SONUMA_API_SWEEP_HH
