/**
 * @file
 * Declarative cluster construction for applications, benches and tests.
 *
 * A ClusterSpec describes a whole soNUMA deployment in one expression;
 * building it performs every setup step the paper's §5.1 flow requires
 * — cluster + fabric assembly, one process per node, context creation,
 * per-node segment registration, context opens — and returns a TestBed
 * with per-(node, core) session accessors:
 *
 *   TestBed bed(ClusterSpec{}
 *                   .nodes(64)
 *                   .torus(8, 8)
 *                   .context(1)
 *                   .segmentPerNode(64_MiB));
 *   auto &s = bed.session(3);                 // node 3, core 0
 *   bed.spawn(worker(bed, 3));
 *   bed.run();
 *
 * This replaces the hand-wired twenty-line cluster/process/segment/
 * context preamble every bench and example used to carry.
 */

#ifndef SONUMA_API_TESTBED_HH
#define SONUMA_API_TESTBED_HH

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "api/session.hh"
#include "fabric/fault.hh"
#include "node/cluster.hh"
#include "sim/simulation.hh"

namespace sonuma::api {

/** Byte-size literals: 64_KiB, 64_MiB, 2_GiB. */
constexpr std::uint64_t operator""_KiB(unsigned long long v)
{
    return v << 10;
}

constexpr std::uint64_t operator""_MiB(unsigned long long v)
{
    return v << 20;
}

constexpr std::uint64_t operator""_GiB(unsigned long long v)
{
    return v << 30;
}

/**
 * Builder for a whole cluster-plus-context deployment. All setters
 * return *this so specs read as one chained expression. Invalid
 * combinations (nodes == 0, torus dims not multiplying to the node
 * count) throw std::invalid_argument at build time.
 */
class ClusterSpec
{
  public:
    /** Number of nodes in the rack (default 2). */
    ClusterSpec &
    nodes(std::uint32_t n)
    {
        params_.nodes = n;
        return *this;
    }

    /** Flat crossbar fabric (default; the paper's evaluated config). */
    ClusterSpec &
    crossbar()
    {
        params_.topology = node::Topology::kCrossbar;
        return *this;
    }

    /** Crossbar with a non-default one-way link latency. */
    ClusterSpec &
    crossbarLinkNs(double ns)
    {
        params_.topology = node::Topology::kCrossbar;
        params_.crossbar.linkLatency = sim::nsToTicks(ns);
        return *this;
    }

    /**
     * k-ary n-cube fabric; radix per dimension, e.g. torus({8, 8}) for
     * a 64-node 2D torus or torus({8, 8, 8}) for a 512-node 3D torus.
     */
    ClusterSpec &
    torus(std::initializer_list<std::uint32_t> dims)
    {
        params_.topology = node::Topology::kTorus;
        params_.torus.dims.assign(dims.begin(), dims.end());
        return *this;
    }

    /** As above with a runtime-built dims vector (e.g. --topo=8x8x8). */
    ClusterSpec &
    torus(std::vector<std::uint32_t> dims)
    {
        params_.topology = node::Topology::kTorus;
        params_.torus.dims = std::move(dims);
        return *this;
    }

    ClusterSpec &
    torus(std::uint32_t x, std::uint32_t y)
    {
        return torus({x, y});
    }

    ClusterSpec &
    torus(std::uint32_t x, std::uint32_t y, std::uint32_t z)
    {
        return torus({x, y, z});
    }

    /** Context id every node joins (default 1). */
    ClusterSpec &
    context(sim::CtxId ctx)
    {
        ctx_ = ctx;
        return *this;
    }

    /**
     * Bytes of context segment registered on every node (default
     * 1 MiB). Physical memory is sized automatically unless
     * physMemPerNode() overrides it.
     */
    ClusterSpec &
    segmentPerNode(std::uint64_t bytes)
    {
        segBytes_ = bytes;
        return *this;
    }

    ClusterSpec &
    coresPerNode(std::uint32_t c)
    {
        params_.node.cores = c;
        return *this;
    }

    ClusterSpec &
    rmc(const rmc::RmcParams &p)
    {
        params_.node.rmc = p;
        return *this;
    }

    /** WQ/CQ ring depth per queue pair (default 64). */
    ClusterSpec &
    qpDepth(std::uint32_t entries)
    {
        params_.node.rmc.qpEntries = entries;
        return *this;
    }

    /**
     * Queue pairs per session (default 1): every application session
     * registers this many WQ/CQ pairs and distributes posts across
     * them (paper Table 2's IOPS-vs-QPs axis).
     */
    ClusterSpec &
    qpCount(std::uint32_t n)
    {
        params_.node.rmc.qpCount = n;
        return *this;
    }

    /**
     * Enable doorbell batching on every TestBed-created session: async
     * posts accumulate per queue pair and ring the RMC once per QP at
     * flush() or when the session blocks (see SessionParams).
     */
    ClusterSpec &
    doorbellBatching(bool on = true)
    {
        doorbellBatching_ = on;
        return *this;
    }

    ClusterSpec &
    l2PerNode(std::uint64_t bytes)
    {
        params_.node.l2.sizeBytes = bytes;
        return *this;
    }

    ClusterSpec &
    physMemPerNode(std::uint64_t bytes)
    {
        physMemBytes_ = bytes;
        return *this;
    }

    /**
     * Torus packet-routing policy (default dor). Adaptive detours
     * around failed links; requires a torus topology.
     */
    ClusterSpec &
    routing(fab::RoutingMode mode)
    {
        params_.torus.routing = mode;
        return *this;
    }

    /**
     * Scheduled fault events for this run. The TestBed arms the plan on
     * the event queue at build time; events fire at their sim-time
     * ticks, deterministically for a given (seed, plan).
     */
    ClusterSpec &
    faultPlan(const fab::FaultPlan &plan)
    {
        faultPlan_ = plan;
        return *this;
    }

    /**
     * Enable time-series sampling: every registered probe records one
     * sample per @p periodNs of simulated time into @p slots fixed ring
     * slots (docs/observability.md). Off by default; enabling it never
     * changes model timing (the sampler is read-only).
     */
    ClusterSpec &
    observability(std::uint64_t periodNs, std::size_t slots = 1024)
    {
        params_.obs.periodNs = periodNs;
        params_.obs.slots = slots;
        return *this;
    }

    /** Simulation seed (default 1). */
    ClusterSpec &
    seed(std::uint64_t s)
    {
        seed_ = s;
        return *this;
    }

    /** Uid of the per-node processes (default 0). */
    ClusterSpec &
    uid(os::UserId u)
    {
        uid_ = u;
        return *this;
    }

    /** Resolved low-level parameters (validated on access). */
    node::ClusterParams resolve() const;

    sim::CtxId ctx() const { return ctx_; }
    std::uint64_t segmentBytes() const { return segBytes_; }
    std::uint64_t seedValue() const { return seed_; }
    os::UserId uidValue() const { return uid_; }
    bool doorbellBatchingValue() const { return doorbellBatching_; }
    const fab::FaultPlan &faultPlanValue() const { return faultPlan_; }

  private:
    node::ClusterParams params_;
    sim::CtxId ctx_ = 1;
    std::uint64_t segBytes_ = 1_MiB;
    std::uint64_t physMemBytes_ = 0; //!< 0 = size from the segment
    std::uint64_t seed_ = 1;
    os::UserId uid_ = 0;
    bool doorbellBatching_ = false;
    fab::FaultPlan faultPlan_;
};

/**
 * A fully stood-up cluster: simulation, fabric, nodes, one process per
 * node with a registered context segment, and lazily-created sessions.
 */
class TestBed
{
  public:
    explicit TestBed(const ClusterSpec &spec);

    sim::Simulation &sim() { return sim_; }
    node::Cluster &cluster() { return *cluster_; }
    node::Node &node(std::uint32_t i) { return cluster_->node(i); }
    std::uint32_t nodes() const { return nodeCount_; }
    sim::CtxId ctx() const { return ctx_; }

    os::Process &process(std::uint32_t nodeIdx);

    /** Base VA of node's registered context segment. */
    vm::VAddr segBase(std::uint32_t nodeIdx) const;

    /** Registered segment size (uniform across nodes). */
    std::uint64_t segBytes() const { return segBytes_; }

    /**
     * The (node, core) application session; created on first use and
     * cached, so repeated calls return the same queue pair.
     */
    RmcSession &session(std::uint32_t nodeIdx, std::uint32_t core = 0);

    /**
     * A fresh session (new queue pairs) on (node, core) — for software
     * layers that want QPs of their own, e.g. a Barrier next to
     * application traffic. The default SessionParams inherit the
     * spec's doorbell-batching choice and the node's qpCount.
     */
    RmcSession &newSession(std::uint32_t nodeIdx, std::uint32_t core = 0);

    /** As above with explicit SessionParams (QP fan-out, batching). */
    RmcSession &newSession(std::uint32_t nodeIdx, std::uint32_t core,
                           const SessionParams &params);

    /** Convenience pass-throughs. */
    void spawn(sim::Task t) { sim_.spawn(std::move(t)); }
    sim::Tick run() { return sim_.run(); }

    /** True when the spec carried a non-empty FaultPlan (armed at
     *  build time). Software layers use this to opt in to their
     *  degraded-mode behaviors (barrier re-announce, retries). */
    bool faultsActive() const { return faultInjector_ != nullptr; }

  private:
    sim::Simulation sim_;
    std::unique_ptr<node::Cluster> cluster_;
    std::unique_ptr<fab::FaultInjector> faultInjector_;
    sim::CtxId ctx_;
    SessionParams sessionParams_; //!< defaults for created sessions
    std::uint32_t nodeCount_;
    std::uint64_t segBytes_;
    std::vector<os::Process *> procs_;
    std::vector<vm::VAddr> segBases_;
    std::map<std::pair<std::uint32_t, std::uint32_t>, RmcSession *>
        primary_;
    std::vector<std::unique_ptr<RmcSession>> sessions_;
};

} // namespace sonuma::api

#endif // SONUMA_API_TESTBED_HH
