/**
 * @file
 * SweepDriver implementation.
 */

#include "api/sweep.hh"

#include <chrono>
#include <cmath>
#include <deque>
#include <fstream>
#include <iostream>
#include <stdexcept>

#include "api/workload.hh"
#include "sim/log.hh"

namespace sonuma::api {

std::string
SweepCellResult::topologyName() const
{
    if (topology == node::Topology::kCrossbar)
        return "crossbar";
    std::string name = "torus";
    for (std::size_t i = 0; i < torusDims.size(); ++i) {
        name += (i == 0 ? "_" : "x");
        name += std::to_string(torusDims[i]);
    }
    return name;
}

std::string
SweepCellResult::label() const
{
    std::string out = "n";
    out += std::to_string(nodes);
    out += "_" + topologyName();
    out += "_rs" + std::to_string(requestBytes);
    out += "_qd" + std::to_string(qpDepth);
    if (qpCount != 1)
        out += "_qp" + std::to_string(qpCount);
    if (doorbellBatching)
        out += "_db"; // batched runs must not overwrite unbatched cells
    return out;
}

void
SweepCellResult::writeJson(std::ostream &os) const
{
    os << "{\"bench\": \"sweep\", \"schema\": 1"
       << ", \"nodes\": " << nodes
       << ", \"topology\": \"" << topologyName() << "\""
       << ", \"request_bytes\": " << requestBytes
       << ", \"qp_depth\": " << qpDepth
       << ", \"qp_count\": " << qpCount
       << ", \"doorbell_batching\": " << (doorbellBatching ? 1 : 0)
       << ", \"ops\": " << ops
       << ", \"mops\": " << mops
       << ", \"gbps\": " << gbps
       << ", \"mean_latency_ns\": " << meanLatencyNs
       << ", \"p99_latency_ns\": " << p99LatencyNs
       << ", \"sim_us\": " << simMicros
       << ", \"host_seconds\": " << hostSeconds << "}";
}

std::vector<std::uint32_t>
SweepDriver::torusDimsFor(std::uint32_t nodes)
{
    std::uint32_t a =
        static_cast<std::uint32_t>(std::sqrt(static_cast<double>(nodes)));
    while (a > 1 && nodes % a != 0)
        --a;
    if (a == 0)
        a = 1;
    return {a, nodes / a};
}

SweepCellResult
SweepDriver::runCell(std::uint32_t nodes, node::Topology topo,
                     std::uint32_t requestBytes, std::uint32_t qpDepth,
                     std::uint32_t qpCount)
{
    if (nodes < 2)
        throw std::invalid_argument(
            "SweepDriver: cells need >= 2 nodes (remote reads have no "
            "self-loop)");
    if (requestBytes == 0 || requestBytes % sim::kCacheLineBytes != 0)
        throw std::invalid_argument(
            "SweepDriver: request size must be a positive multiple of " +
            std::to_string(sim::kCacheLineBytes) + " bytes (got " +
            std::to_string(requestBytes) + ")");
    {
        const std::uint64_t dataOff = Barrier::regionBytes(nodes);
        if (cfg_.segmentBytes < dataOff + 2ull * requestBytes)
            throw std::invalid_argument(
                "SweepDriver: segmentBytes " +
                std::to_string(cfg_.segmentBytes) +
                " too small for the barrier region plus " +
                std::to_string(requestBytes) + "-byte reads at " +
                std::to_string(nodes) + " nodes");
    }

    SweepCellResult cell;
    cell.nodes = nodes;
    cell.topology = topo;
    cell.requestBytes = requestBytes;
    cell.qpDepth = qpDepth;
    cell.qpCount = qpCount;
    cell.doorbellBatching = cfg_.doorbellBatching;

    ClusterSpec spec;
    spec.nodes(nodes)
        .context(1)
        .segmentPerNode(cfg_.segmentBytes)
        .rmc(cfg_.rmcParams)
        .qpDepth(qpDepth)
        .qpCount(qpCount)
        .doorbellBatching(cfg_.doorbellBatching)
        .seed(cfg_.seed);
    if (topo == node::Topology::kTorus) {
        cell.torusDims = torusDimsFor(nodes);
        spec.torus({cell.torusDims[0], cell.torusDims[1]});
    }

    const auto t0 = std::chrono::steady_clock::now();
    TestBed bed(spec);
    Workload wl(bed, "sweep");

    const std::uint32_t ops = cfg_.opsPerNode;
    const std::uint64_t segBytes = cfg_.segmentBytes;

    // Uniform remote reads: node i streams a full-window pipeline of
    // requestBytes reads round-robin over its peers, sampling per-op
    // latency as handles complete (fig9's fine-grain access pattern
    // reduced to its fabric-facing core).
    wl.onEachNode([ops, requestBytes, segBytes,
                   nodes](Workload::NodeCtx &ctx) -> sim::Task {
        auto &s = ctx.session();
        auto &issued = ctx.counter("readsIssued");
        auto &lat = ctx.histogram("readLatencyNs");

        const std::uint32_t depth = s.queueDepth();
        const vm::VAddr buf =
            s.allocBuffer(std::uint64_t(depth) * requestBytes);
        const std::uint64_t dataOff = ctx.dataOffset();
        const std::uint64_t span =
            (segBytes - dataOff) / 2 / requestBytes * requestBytes;

        std::deque<OpHandle> window;
        auto retireFront =
            [&window, &lat]() -> sim::ValueTask<OpResult> {
            OpHandle h = window.front();
            window.pop_front();
            OpResult r = co_await h;
            if (!r.ok())
                sim::fatal("sweep read failed");
            lat.sample(sim::ticksToNs(r.latency));
            co_return r;
        };
        for (std::uint32_t i = 0; i < ops; ++i) {
            const auto peer = static_cast<sim::NodeId>(
                (ctx.nodeId() + 1 + i % (nodes - 1)) % nodes);
            const std::uint64_t off =
                dataOff + (std::uint64_t(i) * requestBytes) % span;
            // Full window: retire the oldest handle before its WQ slot
            // can be recycled by the next post (see session.hh).
            while (window.size() >= depth)
                co_await retireFront();
            const std::uint32_t slot = s.nextSlot();
            OpHandle h = co_await s.readAsync(
                peer, off, buf + std::uint64_t(slot) * requestBytes,
                requestBytes);
            issued.inc();
            window.push_back(h);
            // Opportunistically retire completed ops as they pass.
            while (!window.empty() && window.front().done())
                co_await retireFront();
        }
        while (!window.empty())
            co_await retireFront();
    });
    wl.run();

    cell.hostSeconds = std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - t0)
                           .count();
    cell.ops = std::uint64_t(nodes) * ops;
    cell.simMicros = sim::ticksToUs(wl.elapsed());
    const double secs = cell.simMicros * 1e-6;
    cell.mops = static_cast<double>(cell.ops) / secs / 1e6;
    cell.gbps = static_cast<double>(cell.ops) * requestBytes * 8.0 /
                secs / 1e9;

    // Pool the per-node histograms so mean and p99 describe the whole
    // cluster's sample population, not any single node's.
    double latSum = 0, latMaxSample = 0;
    std::uint64_t latCount = 0;
    std::vector<std::uint64_t> pooled;
    for (std::uint32_t i = 0; i < nodes; ++i) {
        const auto *h = bed.sim().stats().histogram(
            "sweep.node" + std::to_string(i) + ".readLatencyNs");
        if (!h)
            continue;
        latSum += h->sum();
        latCount += h->count();
        latMaxSample = std::max(latMaxSample, h->max());
        const auto &b = h->buckets();
        if (b.size() > pooled.size())
            pooled.resize(b.size(), 0);
        for (std::size_t j = 0; j < b.size(); ++j)
            pooled[j] += b[j];
    }
    cell.meanLatencyNs = latCount ? latSum / latCount : 0.0;
    cell.p99LatencyNs = sim::Histogram::percentileFromBuckets(
        pooled, latCount, 99.0, latMaxSample);
    return cell;
}

void
SweepDriver::emit(const SweepCellResult &cell) const
{
    if (cfg_.echo) {
        cell.writeJson(std::cout);
        std::cout << "\n" << std::flush;
    }
    if (!cfg_.outDir.empty()) {
        const std::string path =
            cfg_.outDir + "/SWEEP_" + cell.label() + ".json";
        std::ofstream f(path);
        if (!f)
            sim::fatal("sweep: cannot write " + path);
        cell.writeJson(f);
        f << "\n";
    }
}

std::vector<SweepCellResult>
SweepDriver::run()
{
    std::vector<SweepCellResult> results;
    for (const auto nodes : cfg_.nodeCounts)
        for (const auto topo : cfg_.topologies)
            for (const auto size : cfg_.requestSizes)
                for (const auto depth : cfg_.qpDepths)
                    for (const auto qps : cfg_.qpCounts) {
                        results.push_back(
                            runCell(nodes, topo, size, depth, qps));
                        emit(results.back());
                    }
    return results;
}

} // namespace sonuma::api
