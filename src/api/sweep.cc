/**
 * @file
 * SweepDriver implementation plus the built-in "uniform" workload.
 */

#include "api/sweep.hh"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <deque>
#include <fstream>
#include <iostream>
#include <map>
#include <stdexcept>

#include "sim/log.hh"
#include "sim/time_series.hh"

namespace sonuma::api {

std::string
SweepCellResult::topologyName() const
{
    if (topology == node::Topology::kCrossbar)
        return "crossbar";
    std::string name = "torus";
    for (std::size_t i = 0; i < torusDims.size(); ++i) {
        name += (i == 0 ? "_" : "x");
        name += std::to_string(torusDims[i]);
    }
    return name;
}

std::string
SweepCellResult::label() const
{
    std::string out = "n";
    out += std::to_string(nodes);
    out += "_" + topologyName();
    out += "_rs" + std::to_string(requestBytes);
    out += "_qd" + std::to_string(qpDepth);
    if (qpCount != 1)
        out += "_qp" + std::to_string(qpCount);
    if (doorbellBatching)
        out += "_db"; // batched runs must not overwrite unbatched cells
    if (workload != "uniform")
        out += "_" + workload;
    if (routing == fab::RoutingMode::kAdaptive)
        out += "_adaptive";
    if (faultScenario != "none")
        out += "_" + fab::FaultPlan::scenarioOf(faultScenario);
    if (bgTraffic > 0)
        out += "_bg" + std::to_string(static_cast<int>(
                           std::lround(bgTraffic * 100)));
    return out;
}

void
SweepCellResult::writeJson(std::ostream &os) const
{
    os << "{\"bench\": \"sweep\", \"schema\": 1"
       << ", \"workload\": \"" << sim::jsonEscape(workload) << "\""
       << ", \"nodes\": " << nodes
       << ", \"topology\": \"" << sim::jsonEscape(topologyName()) << "\""
       << ", \"request_bytes\": " << requestBytes
       << ", \"qp_depth\": " << qpDepth
       << ", \"qp_count\": " << qpCount
       << ", \"doorbell_batching\": " << (doorbellBatching ? 1 : 0)
       << ", \"ops\": " << ops
       << ", \"mops\": " << mops
       << ", \"gbps\": " << gbps
       << ", \"mean_latency_ns\": " << meanLatencyNs
       << ", \"p99_latency_ns\": " << p99LatencyNs;
    if (bgTraffic > 0) {
        os << ", \"bg_traffic\": " << bgTraffic
           << ", \"bg_ops\": " << bgOps;
    }
    if (degraded()) {
        // Degraded fields only appear for degraded cells, so healthy
        // artifacts stay byte-identical to the pre-fault schema.
        os << ", \"routing\": \""
           << sim::jsonEscape(fab::routingModeName(routing)) << "\""
           << ", \"fault_scenario\": \"" << sim::jsonEscape(faultScenario)
           << "\""
           << ", \"goodput_mops\": " << goodputMops
           << ", \"ok_ops\": " << okOps
           << ", \"aborted_ops\": " << abortedOps
           << ", \"retried_ops\": " << retriedOps
           << ", \"failed_ops\": " << failedOps
           << ", \"dropped_messages\": " << droppedMessages
           << ", \"retransmits\": " << retransmits
           << ", \"dup_suppressed\": " << dupSuppressed
           << ", \"unrecoverable\": " << unrecoverable
           << ", \"p50_latency_ns\": " << p50LatencyNs
           << ", \"p95_latency_ns\": " << p95LatencyNs;
    }
    for (const auto &[key, value] : extra) {
        os << ", \"" << sim::jsonEscape(key) << "\": ";
        // Exact counts (vertices, edges) must never be rounded by the
        // default 6-significant-digit double formatting.
        if (value == std::floor(value) && std::abs(value) < 1e15)
            os << static_cast<long long>(value);
        else
            os << value;
    }
    os << ", \"sim_us\": " << simMicros
       << ", \"host_seconds\": " << hostSeconds << "}";
}

//
// ------------------------- workload registry ---------------------------
//

namespace {

/**
 * The built-in uniform remote-read kernel: node i streams a
 * full-window pipeline of requestBytes reads round-robin over its
 * peers, sampling per-op latency as handles complete (fig9's
 * fine-grain access pattern reduced to its fabric-facing core).
 */
class UniformReadWorkload : public SweepWorkload
{
  public:
    void
    configure(ClusterSpec &spec, const SweepCellResult &cell,
              const SweepConfig &cfg) override
    {
        const std::uint64_t dataOff = Barrier::regionBytes(cell.nodes);
        if (cfg.segmentBytes < dataOff + 2ull * cell.requestBytes)
            throw std::invalid_argument(
                "SweepDriver: segmentBytes " +
                std::to_string(cfg.segmentBytes) +
                " too small for the barrier region plus " +
                std::to_string(cell.requestBytes) + "-byte reads at " +
                std::to_string(cell.nodes) + " nodes");
        (void)spec;
    }

    void
    install(TestBed &bed, Workload &wl, const SweepCellResult &cell,
            const SweepConfig &cfg) override
    {
        (void)bed;
        const std::uint32_t ops = cfg.opsPerNode;
        const std::uint32_t requestBytes = cell.requestBytes;
        const std::uint64_t segBytes = cfg.segmentBytes;
        const std::uint32_t nodes = cell.nodes;
        const bool faulted = cfg.faultSpec != "none";
        const bool incast =
            fab::FaultPlan::scenarioOf(cfg.faultSpec) == "incast";
        ops_ = std::uint64_t(nodes) * ops;

        wl.onEachNode([ops, requestBytes, segBytes, nodes, faulted,
                       incast](Workload::NodeCtx &ctx) -> sim::Task {
            auto &s = ctx.session();
            auto &issued = ctx.counter("ops");
            auto &lat = ctx.histogram("opLatencyNs");
            auto &ok = ctx.counter("okOps");
            auto &aborted = ctx.counter("abortedOps");
            auto &retried = ctx.counter("retriedOps");
            auto &failed = ctx.counter("failedOps");
            const RetryPolicy &retry = ctx.retry();

            const std::uint32_t depth = s.queueDepth();
            const vm::VAddr buf =
                s.allocBuffer(std::uint64_t(depth) * requestBytes);
            const std::uint64_t dataOff = ctx.dataOffset();
            const std::uint64_t span =
                (segBytes - dataOff) / 2 / requestBytes * requestBytes;

            /** One outstanding read plus what a repost would need. */
            struct Pending
            {
                OpHandle h;
                sim::NodeId peer;
                std::uint64_t off;
                std::uint32_t attempt;
            };
            std::deque<Pending> window;
            auto retireFront = [&]() -> sim::Task {
                Pending p = window.front();
                window.pop_front();
                OpResult r = co_await p.h;
                if (r.ok()) {
                    ok.inc();
                    lat.sample(sim::ticksToNs(r.latency));
                    co_return;
                }
                if (!faulted)
                    sim::fatal("sweep read failed");
                // A fault aborted this attempt: back off and repost the
                // same read, or charge the op to failedOps at the cap.
                aborted.inc();
                if (p.attempt >= retry.maxRetries) {
                    failed.inc();
                    co_return;
                }
                retried.inc();
                co_await sim::Delay(ctx.sim().eq(),
                                    retry.delayFor(p.attempt + 1));
                const std::uint32_t slot = s.nextSlot();
                OpHandle h = co_await s.readAsync(
                    p.peer, p.off,
                    buf + std::uint64_t(slot) * requestBytes,
                    requestBytes);
                window.push_back(Pending{h, p.peer, p.off, p.attempt + 1});
            };
            for (std::uint32_t i = 0; i < ops; ++i) {
                sim::NodeId peer;
                if (incast) {
                    // All-to-one storm: every node hammers node 0's
                    // RRPP; node 0 keeps the round-robin so its own
                    // reads still have peers.
                    peer = ctx.nodeId() == 0
                               ? static_cast<sim::NodeId>(1 +
                                                          i % (nodes - 1))
                               : static_cast<sim::NodeId>(0);
                } else {
                    peer = static_cast<sim::NodeId>(
                        (ctx.nodeId() + 1 + i % (nodes - 1)) % nodes);
                }
                const std::uint64_t off =
                    dataOff + (std::uint64_t(i) * requestBytes) % span;
                // Full window: retire the oldest handle before its WQ
                // slot can be recycled by the next post (session.hh).
                while (window.size() >= depth)
                    co_await retireFront();
                const std::uint32_t slot = s.nextSlot();
                OpHandle h = co_await s.readAsync(
                    peer, off, buf + std::uint64_t(slot) * requestBytes,
                    requestBytes);
                issued.inc();
                window.push_back(Pending{h, peer, off, 0});
                // Opportunistically retire completed ops as they pass.
                while (!window.empty() && window.front().h.done())
                    co_await retireFront();
            }
            while (!window.empty())
                co_await retireFront();
        });
    }

    Outcome
    finish(TestBed &bed, const SweepCellResult &cell,
           const SweepConfig &cfg) override
    {
        (void)bed;
        (void)cell;
        (void)cfg;
        return Outcome{ops_, 0};
    }

  private:
    std::uint64_t ops_ = 0;
};

using Registry = std::map<std::string, SweepDriver::WorkloadFactory>;

Registry &
registry()
{
    static Registry r = {
        {"uniform", [] { return std::make_unique<UniformReadWorkload>(); }},
    };
    return r;
}

} // namespace

void
SweepDriver::registerWorkload(const std::string &name,
                              WorkloadFactory factory)
{
    registry()[name] = std::move(factory);
}

bool
SweepDriver::workloadRegistered(const std::string &name)
{
    return registry().count(name) != 0;
}

std::vector<std::string>
SweepDriver::registeredWorkloads()
{
    std::vector<std::string> names;
    for (const auto &[name, factory] : registry())
        names.push_back(name);
    return names;
}

//
// ------------------------- torus factorization -------------------------
//

std::vector<std::uint32_t>
SweepDriver::torusDimsFor(std::uint32_t nodes)
{
    return torusDimsFor(nodes, 2);
}

std::vector<std::uint32_t>
SweepDriver::torusDimsFor(std::uint32_t nodes, std::uint32_t ndims)
{
    // Peel off the largest divisor <= nodes^(1/remaining) each round:
    // radices come out ascending and as near-equal as the node count's
    // factorization allows (primes degrade to {1, ..., n}).
    std::vector<std::uint32_t> dims;
    std::uint32_t rest = nodes;
    for (std::uint32_t d = ndims; d >= 1; --d) {
        if (d == 1) {
            dims.push_back(rest);
            break;
        }
        auto a = static_cast<std::uint32_t>(std::floor(
            std::pow(static_cast<double>(rest), 1.0 / d) + 1e-9));
        while (a > 1 && rest % a != 0)
            --a;
        if (a == 0)
            a = 1;
        dims.push_back(a);
        rest /= a;
    }
    return dims;
}

//
// ----------------------------- cell runs -------------------------------
//

SweepCellResult
SweepDriver::runCell(std::uint32_t nodes, node::Topology topo,
                     std::uint32_t requestBytes, std::uint32_t qpDepth,
                     std::uint32_t qpCount)
{
    if (nodes < 2)
        throw std::invalid_argument(
            "SweepDriver: cells need >= 2 nodes (remote reads have no "
            "self-loop)");
    if (requestBytes == 0 || requestBytes % sim::kCacheLineBytes != 0)
        throw std::invalid_argument(
            "SweepDriver: request size must be a positive multiple of " +
            std::to_string(sim::kCacheLineBytes) + " bytes (got " +
            std::to_string(requestBytes) + ")");

    const auto it = registry().find(cfg_.workload);
    if (it == registry().end()) {
        std::string names;
        for (const auto &n : registeredWorkloads())
            names += " " + n;
        throw std::invalid_argument("SweepDriver: unknown workload '" +
                                    cfg_.workload + "'; registered:" +
                                    names);
    }
    std::unique_ptr<SweepWorkload> body = it->second();

    fab::FaultPlan plan;
    std::string planError;
    if (!fab::FaultPlan::parse(cfg_.faultSpec, nodes, &plan, &planError))
        throw std::invalid_argument("SweepDriver: " + planError);

    SweepCellResult cell;
    cell.workload = cfg_.workload;
    cell.nodes = nodes;
    cell.topology = topo;
    cell.requestBytes = requestBytes;
    cell.qpDepth = qpDepth;
    cell.qpCount = qpCount;
    cell.doorbellBatching = cfg_.doorbellBatching;
    cell.faultScenario = cfg_.faultSpec;
    cell.routing = cfg_.routing;
    if (cfg_.bgTraffic < 0.0 || cfg_.bgTraffic > 1.0)
        throw std::invalid_argument(
            "SweepDriver: bgTraffic must be in [0, 1] (got " +
            std::to_string(cfg_.bgTraffic) + ")");
    cell.bgTraffic = cfg_.bgTraffic;
    if (topo == node::Topology::kTorus) {
        cell.torusDims = cfg_.torusDims.empty()
                             ? torusDimsFor(nodes, cfg_.torusNdims)
                             : cfg_.torusDims;
    }

    ClusterSpec spec;
    spec.nodes(nodes)
        .context(1)
        .segmentPerNode(cfg_.segmentBytes)
        .rmc(cfg_.rmcParams)
        .qpDepth(qpDepth)
        .qpCount(qpCount)
        .doorbellBatching(cfg_.doorbellBatching)
        .routing(cfg_.routing)
        .seed(cfg_.seed);
    if (cfg_.obsPeriodNs > 0)
        spec.observability(cfg_.obsPeriodNs, cfg_.obsSlots);
    if (topo == node::Topology::kTorus)
        spec.torus(cell.torusDims);
    if (!plan.empty())
        spec.faultPlan(plan);
    body->configure(spec, cell, cfg_);

    const auto t0 = std::chrono::steady_clock::now();
    TestBed bed(spec);
    Workload wl(bed, "sweep");
    if (cfg_.faultSpec != "none") {
        RetryPolicy rp;
        rp.maxRetries = cfg_.maxRetries;
        rp.backoff = cfg_.retryBackoff;
        wl.setRetryPolicy(rp);
    }
    if (cfg_.bgTraffic > 0)
        wl.setBackground(cfg_.bgTraffic);
    body->install(bed, wl, cell, cfg_);
    wl.run();

    cell.hostSeconds = std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - t0)
                           .count();
    const auto outcome = body->finish(bed, cell, cfg_);
    cell.ops = outcome.ops;
    cell.simMicros =
        sim::ticksToUs(outcome.measured ? outcome.measured : wl.elapsed());
    const double secs = cell.simMicros * 1e-6;
    cell.mops = static_cast<double>(cell.ops) / secs / 1e6;
    cell.gbps = static_cast<double>(cell.ops) * requestBytes * 8.0 /
                secs / 1e9;

    // Pool the per-node histograms so mean and p99 describe the whole
    // cluster's sample population, not any single node's.
    double latSum = 0, latMaxSample = 0;
    std::uint64_t latCount = 0;
    std::vector<std::uint64_t> pooled;
    for (std::uint32_t i = 0; i < nodes; ++i) {
        const auto *h = bed.sim().stats().histogram(
            "sweep.node" + std::to_string(i) + ".opLatencyNs");
        if (!h)
            continue;
        latSum += h->sum();
        latCount += h->count();
        latMaxSample = std::max(latMaxSample, h->max());
        const auto &b = h->buckets();
        if (b.size() > pooled.size())
            pooled.resize(b.size(), 0);
        for (std::size_t j = 0; j < b.size(); ++j)
            pooled[j] += b[j];
    }
    cell.meanLatencyNs = latCount ? latSum / latCount : 0.0;
    cell.p99LatencyNs = sim::Histogram::percentileFromBuckets(
        pooled, latCount, 99.0, latMaxSample);
    cell.p50LatencyNs = sim::Histogram::percentileFromBuckets(
        pooled, latCount, 50.0, latMaxSample);
    cell.p95LatencyNs = sim::Histogram::percentileFromBuckets(
        pooled, latCount, 95.0, latMaxSample);

    // Degraded accounting, pooled from the per-node counters the
    // workload bodies keep (zero when a body doesn't keep them).
    const auto sumCounters = [&](const std::string &name) {
        std::uint64_t total = 0;
        for (std::uint32_t i = 0; i < nodes; ++i)
            if (const auto *c = bed.sim().stats().counter(
                    "sweep.node" + std::to_string(i) + "." + name))
                total += c->value();
        return total;
    };
    cell.okOps = sumCounters("okOps");
    cell.abortedOps = sumCounters("abortedOps");
    cell.retriedOps = sumCounters("retriedOps");
    cell.failedOps = sumCounters("failedOps");
    cell.bgOps = sumCounters("bgOps");
    cell.droppedMessages = bed.cluster().fabric().droppedMessages();
    cell.goodputMops = static_cast<double>(cell.okOps) / secs / 1e6;

    // Reliable-delivery counters live on the RMCs, not the workload.
    const auto sumRmcCounters = [&](const std::string &name) {
        std::uint64_t total = 0;
        for (std::uint32_t i = 0; i < nodes; ++i)
            if (const auto *c = bed.sim().stats().counter(
                    "node" + std::to_string(i) + ".rmc." + name))
                total += c->value();
        return total;
    };
    cell.retransmits = sumRmcCounters("retransmits");
    cell.dupSuppressed = sumRmcCounters("rrpp.dupSuppressed");
    cell.unrecoverable = sumRmcCounters("unrecoverable");

    // Drops-vs-lost-ops audit: a dropped packet may be retransmitted
    // (then it is a drop but not a lost op). With the workload-level
    // retry loop disabled, every op either completes or is aborted as
    // unrecoverable — anything else means a completion was lost or
    // double-delivered.
    if (cell.workload == "uniform" && cfg_.maxRetries == 0 &&
        cfg_.bgTraffic == 0.0 &&
        fab::FaultPlan::scenarioOf(cell.faultScenario) == "drop" &&
        cell.okOps + cell.unrecoverable != cell.ops)
        sim::fatal("sweep: drop cell accounting broke: ok_ops " +
                   std::to_string(cell.okOps) + " + unrecoverable " +
                   std::to_string(cell.unrecoverable) + " != ops " +
                   std::to_string(cell.ops));

    body->annotate(cell);
    // Render the OBS sidecar while the TestBed (and its registered
    // series) is still alive; the string outlives the cell's models.
    if (cfg_.obsPeriodNs > 0)
        cell.obsJson = sim::renderObsJson(bed.sim().stats(), cell.label(),
                                          cfg_.obsPeriodNs);
    return cell;
}

void
SweepDriver::emit(const SweepCellResult &cell,
                  const std::string &prefix) const
{
    if (cfg_.echo) {
        cell.writeJson(std::cout);
        std::cout << "\n" << std::flush;
    }
    if (!cfg_.outDir.empty()) {
        const std::string path =
            cfg_.outDir + "/" + prefix + cell.label() + ".json";
        std::ofstream f(path);
        if (!f)
            sim::fatal("sweep: cannot write " + path);
        cell.writeJson(f);
        f << "\n";
        // Sampling sidecar (labels are unique across cell families, so
        // one OBS_ namespace cannot collide).
        if (!cell.obsJson.empty()) {
            const std::string obsPath =
                cfg_.outDir + "/OBS_" + cell.label() + ".json";
            std::ofstream of(obsPath);
            if (!of)
                sim::fatal("sweep: cannot write " + obsPath);
            of << cell.obsJson;
        }
    }
}

std::vector<SweepCellResult>
SweepDriver::run()
{
    // The artifact prefix is a property of the (sweep-wide) workload;
    // ask a fresh instance rather than carrying state out of runCell.
    std::string prefix = "SWEEP_";
    if (const auto it = registry().find(cfg_.workload);
        it != registry().end())
        prefix = it->second()->artifactPrefix();
    // Degraded cells get their own artifact family so healthy
    // SWEEP_/FIG9_ references are never overwritten by fault studies.
    if (cfg_.faultSpec != "none" ||
        cfg_.routing != fab::RoutingMode::kDor)
        prefix = "DEGRADED_";

    std::vector<SweepCellResult> results;
    for (const auto nodes : cfg_.nodeCounts)
        for (const auto topo : cfg_.topologies)
            for (const auto size : cfg_.requestSizes)
                for (const auto depth : cfg_.qpDepths)
                    for (const auto qps : cfg_.qpCounts) {
                        results.push_back(
                            runCell(nodes, topo, size, depth, qps));
                        emit(results.back(), prefix);
                    }
    return results;
}

} // namespace sonuma::api
