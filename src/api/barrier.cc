/**
 * @file
 * Barrier implementation.
 */

#include "api/barrier.hh"

namespace sonuma::api {

Barrier::Barrier(RmcSession &session, std::vector<sim::NodeId> participants,
                 vm::VAddr mySegmentBase, std::uint64_t regionOffset)
    : session_(session), participants_(std::move(participants)),
      myRegion_(mySegmentBase + regionOffset), regionOffset_(regionOffset)
{
    announceLine_ = session_.allocBuffer(sim::kCacheLineBytes);
}

sim::Task
Barrier::arrive()
{
    auto &as = session_.process().addressSpace();
    const std::uint64_t gen = ++generation_;
    const sim::NodeId self = session_.nodeId();

    // Announce arrival: write my generation into my slot on every peer
    // (and locally for myself).
    co_await session_.core().store(announceLine_);
    as.writeT<std::uint64_t>(announceLine_, gen);
    const std::uint64_t mySlotOff =
        regionOffset_ + std::uint64_t(self) * sim::kCacheLineBytes;
    for (sim::NodeId peer : participants_) {
        if (peer == self) {
            const vm::VAddr local =
                myRegion_ + std::uint64_t(self) * sim::kCacheLineBytes;
            co_await session_.core().store(local);
            as.writeT<std::uint64_t>(local, gen);
            continue;
        }
        // Fire-and-forget: peers observe the write by polling locally;
        // the slot recycles when a later post reaps its completion.
        co_await session_.writeAsync(peer, mySlotOff, announceLine_,
                                     sim::kCacheLineBytes);
    }
    // The announcements are never awaited and the wait below is on
    // remoteWriteEvent, so a doorbell-batched session must ring now
    // (Workload pins batching off for its barriers, but a Barrier can
    // ride any session).
    session_.flush();

    // Poll locally until every participant announced this generation.
    // Re-announcing is bounded: after kMaxReannounceRounds the wait
    // degrades to the event-driven form, so a permanently dead peer
    // quiesces the simulation (surfacing Workload::run's stalled-fault
    // diagnostic) instead of re-broadcasting forever.
    std::uint32_t reannounceLeft = kMaxReannounceRounds;
    for (sim::NodeId peer : participants_) {
        const vm::VAddr slot =
            myRegion_ + std::uint64_t(peer) * sim::kCacheLineBytes;
        while (true) {
            co_await session_.core().load(slot);
            if (as.readT<std::uint64_t>(slot) >= gen)
                break;
            if (reannounce_ == 0 || reannounceLeft == 0) {
                co_await session_.rmc().remoteWriteEvent().wait();
                continue;
            }
            --reannounceLeft;
            // Degraded mode: an announcement posted while a peer was
            // dead is gone, and the peer cannot know to ask for it.
            // Sleep a bounded interval, then re-broadcast my (monotone,
            // hence idempotent) generation before polling again.
            co_await sim::Delay(session_.core().simulation().eq(),
                                reannounce_);
            for (sim::NodeId p2 : participants_) {
                if (p2 != self)
                    co_await session_.writeAsync(p2, mySlotOff,
                                                 announceLine_,
                                                 sim::kCacheLineBytes);
            }
            session_.flush();
        }
    }
}

} // namespace sonuma::api
