/**
 * @file
 * The soNUMA access library, v2 (paper §5.2, Fig. 4).
 *
 * Applications issue one-sided remote reads/writes/atomics against a
 * global address space (context) through a queue pair. Every operation
 * is awaitable and yields an OpResult value — no status out-params, no
 * completion callbacks:
 *
 *   OpResult r = co_await session.read(nid, offset, buf, len);
 *   if (!r.ok()) ...                        // CQ status, by value
 *
 * Asynchronous posts return a lightweight OpHandle that is itself
 * awaitable and carries its completion:
 *
 *   OpHandle h = co_await session.readAsync(nid, offset, buf, len);
 *   ... overlap compute ...
 *   OpResult r = co_await h;                // rendezvous with the CQ
 *
 * Mapping to the paper's Fig. 4 calls (see src/api/README.md):
 *
 *   read / write            ~ rmc_read_sync / rmc_write_sync
 *   readAsync / writeAsync  ~ rmc_read_async / rmc_write_async
 *                             (slot wait + WQ post fused; the handle is
 *                             the paper's wq index + completion state)
 *   drain                   ~ rmc_drain_cq
 *   fetchAdd / compareSwap  ~ the atomic operations of §5.2
 *
 * Multi-QP sessions (paper Table 2, IOPS vs queue pairs): a session
 * owns RmcParams::qpCount independent WQ/CQ pairs. Async posts are
 * distributed round-robin, or pinned with an explicit `qp` argument;
 * completions are demultiplexed back to the owning OpHandle regardless
 * of which queue pair carried the operation. Doorbell batching
 * (SessionParams::doorbellBatching) defers the per-post RMC doorbell:
 * posts accumulate per queue pair and the doorbell rings once per QP at
 * flush() — or automatically at the point the session would block
 * waiting for a completion — amortizing the RGP's WQ poll per the
 * paper's pipelined-CP discussion.
 *
 * All methods are coroutines executing "on" a Core: they charge API
 * instruction overhead on the core's compute resource and perform timed
 * loads/stores on the core's L1 for every WQ/CQ interaction, which is
 * exactly where soNUMA's coherence-integrated queue pairs earn their
 * latency advantage. Internally the session keeps the zero-allocation
 * machinery of the simulation core: completions land in fixed per-slot
 * records, wake-ups ride sim::Callback, and no std::function appears on
 * any per-operation path.
 */

#ifndef SONUMA_API_SESSION_HH
#define SONUMA_API_SESSION_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "node/core.hh"
#include "os/rmc_driver.hh"
#include "rmc/queue_pair.hh"
#include "sim/log.hh"
#include "sim/sync.hh"
#include "sim/task.hh"
#include "sim/time_series.hh"

namespace sonuma::api {

class RmcSession;

/**
 * The completion of one remote operation, returned by value from every
 * awaitable op.
 */
struct OpResult
{
    rmc::CqStatus status = rmc::CqStatus::kOk;
    sim::Tick latency = 0;        //!< WQ post -> CQ completion observed
    sim::Tick completedAt = 0;    //!< tick the completion was reaped
    std::uint64_t oldValue = 0;   //!< atomics: memory value before the op

    bool ok() const { return status == rmc::CqStatus::kOk; }
};

/**
 * A pending asynchronous operation. Copyable and cheap (pointer + slot
 * + token); awaiting it yields the operation's OpResult. Discarding a
 * handle is legal (fire-and-forget): the WQ slot is still recycled when
 * its completion is reaped by a later session call.
 *
 * A handle's result stays readable until its WQ slot is reused, i.e.
 * for at least one full lap of its queue pair's ring — with round-robin
 * posting that is queueDepth() (total slots across all QPs) subsequent
 * posts. Awaiting a handle after that is a programming error and
 * aborts.
 */
class OpHandle
{
  public:
    OpHandle() = default;

    /** True if this handle refers to a posted operation. */
    bool valid() const { return session_ != nullptr; }

    /** True once the completion has been observed (non-blocking). */
    bool done() const;

    /**
     * The session-global slot this operation occupies (queue pair *
     * perQpDepth + ring index; e.g. to index per-slot buffers).
     */
    std::uint32_t slot() const { return slot_; }

    struct Awaiter; // defined below; owns the rendezvous coroutine

    /** `co_await handle` -> OpResult. */
    Awaiter operator co_await() const;

  private:
    friend class RmcSession;
    OpHandle(RmcSession *s, std::uint32_t slot, std::uint64_t token)
        : session_(s), slot_(slot), token_(token)
    {}

    RmcSession *session_ = nullptr;
    std::uint32_t slot_ = 0;
    std::uint64_t token_ = 0;
};

/** Tunable software overheads of the inline API functions. */
struct SessionParams
{
    std::uint32_t issueOverheadCycles = 120;     //!< per posted op
    std::uint32_t completionOverheadCycles = 70; //!< per reaped completion
    std::uint32_t syncPollOverheadCycles = 10;   //!< per empty poll

    /**
     * Queue pairs this session registers; 0 means "use the node's
     * RmcParams::qpCount". Software layers that only ever need one QP
     * (e.g. a Barrier) pin this to 1 regardless of the node default.
     */
    std::uint32_t qpCount = 0;

    /**
     * Defer the per-post RMC doorbell: posts accumulate per queue pair
     * and ring once at flush() or automatically when the session blocks
     * waiting for a completion (the paper's pipelined-CP amortization).
     */
    bool doorbellBatching = false;
};

/**
 * One application thread's handle on a set of queue pairs within a
 * global address space (context).
 *
 * Concurrency contract (matches the paper's one-QP-per-thread model,
 * §4.2, generalized to one *session* per thread): a session belongs to
 * ONE application coroutine. Its methods suspend internally, so two
 * coroutines interleaving posts on the same session would corrupt the
 * WQ rings — multi-QP fan-out happens *inside* the session, not by
 * sharing it. Software layers (Barrier, MsgEndpoint) may share their
 * caller's session only because the caller invokes them sequentially
 * from that one coroutine; coroutines that run concurrently need
 * sessions of their own (TestBed::newSession).
 */
class RmcSession
{
  public:
    /** "No preference" queue-pair argument: distribute round-robin. */
    static constexpr std::uint32_t kAnyQp = 0xffffffffu;

    /**
     * Open @p ctx for @p proc (driver permission check) and register
     * the session's queue pairs. @p core is the core this thread runs
     * on.
     */
    RmcSession(node::Core &core, os::RmcDriver &driver, os::Process &proc,
               sim::CtxId ctx, const SessionParams &params = {});

    RmcSession(const RmcSession &) = delete;
    RmcSession &operator=(const RmcSession &) = delete;

    //
    // Blocking operations: post, then rendezvous with the completion.
    //

    /** Remote read of @p len bytes into local @p buf. */
    [[nodiscard]] sim::ValueTask<OpResult> read(sim::NodeId nid,
                                                std::uint64_t offset,
                                                vm::VAddr buf,
                                                std::uint32_t len);

    /** Remote write of @p len bytes from local @p buf. */
    [[nodiscard]] sim::ValueTask<OpResult> write(sim::NodeId nid,
                                                 std::uint64_t offset,
                                                 vm::VAddr buf,
                                                 std::uint32_t len);

    /** Atomic fetch-and-add; the prior value is OpResult::oldValue. */
    [[nodiscard]] sim::ValueTask<OpResult> fetchAdd(sim::NodeId nid,
                                                    std::uint64_t offset,
                                                    std::uint64_t addend);

    /** Atomic compare-and-swap; the prior value is OpResult::oldValue. */
    [[nodiscard]] sim::ValueTask<OpResult>
    compareSwap(sim::NodeId nid, std::uint64_t offset,
                std::uint64_t expected, std::uint64_t desired);

    //
    // Asynchronous operations: wait for a free WQ slot (reaping
    // completions meanwhile), post, and return the slot's handle. The
    // trailing @p qp selects a queue pair explicitly (0..qpCount()-1);
    // kAnyQp distributes round-robin.
    //

    [[nodiscard]] sim::ValueTask<OpHandle>
    readAsync(sim::NodeId nid, std::uint64_t offset, vm::VAddr buf,
              std::uint32_t len, std::uint32_t qp = kAnyQp);

    [[nodiscard]] sim::ValueTask<OpHandle>
    writeAsync(sim::NodeId nid, std::uint64_t offset, vm::VAddr buf,
               std::uint32_t len, std::uint32_t qp = kAnyQp);

    [[nodiscard]] sim::ValueTask<OpHandle>
    fetchAddAsync(sim::NodeId nid, std::uint64_t offset,
                  std::uint64_t addend, std::uint32_t qp = kAnyQp);

    [[nodiscard]] sim::ValueTask<OpHandle>
    compareSwapAsync(sim::NodeId nid, std::uint64_t offset,
                     std::uint64_t expected, std::uint64_t desired,
                     std::uint32_t qp = kAnyQp);

    /** Reap available completions without blocking; yields the count. */
    [[nodiscard]] sim::ValueTask<std::uint32_t> poll();

    /** Block until every outstanding operation has completed. */
    [[nodiscard]] sim::Task drain();

    //
    // Teardown
    //

    /** What close() tears down beneath the session. */
    enum class CloseMode
    {
        kDestroyQps,        //!< destroy this session's queue pairs
        kUnregisterContext, //!< also drop the whole context on this node
    };

    /**
     * Tear the session down mid-flight. Batched doorbells are cancelled
     * (the fence completes those entries instead of ringing them), then
     * every queue pair is destroyed — each op in flight gets exactly
     * one CqStatus::kFlushed completion, which the owner still reaps
     * normally via drain()/handle awaits. kUnregisterContext
     * additionally removes the context from this node's RMC, so use it
     * only when no other session shares the context on this node.
     *
     * After close() the session stays usable as a stub: further posts
     * complete immediately with kFlushed (no WQ traffic), so drivers
     * that keep posting terminate cleanly instead of hanging. Plain
     * function (no simulated time) — callable from event context, e.g.
     * a scheduled teardown in a test.
     */
    void close(CloseMode mode = CloseMode::kDestroyQps);

    /** True once close() ran. */
    bool closed() const { return closed_; }

    //
    // Doorbell batching
    //

    /**
     * Ring the RMC for every queue pair with batched (unrung) posts.
     * Functional (no simulated time): the doorbell is the simulation's
     * stand-in for the RGP's next poll iteration discovering the
     * entries (see rmc.hh). No-op when batching is off or nothing is
     * pending.
     */
    void flush();

    /** Queue pairs with posts the RMC has not been told about yet. */
    std::uint32_t pendingDoorbells() const { return pendingDoorbells_; }

    /** Toggle doorbell batching at runtime (flushes when disabling). */
    void setDoorbellBatching(bool on);

    bool doorbellBatching() const { return params_.doorbellBatching; }

    //
    // Introspection / helpers
    //

    std::uint32_t outstanding() const { return outstanding_; }

    /** Queue pairs this session posts across. */
    std::uint32_t qpCount() const
    {
        return static_cast<std::uint32_t>(qps_.size());
    }

    /** WQ/CQ ring depth of each individual queue pair. */
    std::uint32_t perQpDepth() const { return qpEntries_; }

    /**
     * Total in-flight capacity: perQpDepth() * qpCount(). This is also
     * the number of subsequent round-robin posts for which an
     * OpHandle's result is guaranteed to stay readable (one full lap).
     */
    std::uint32_t queueDepth() const { return qpEntries_ * qpCount(); }

    /**
     * The session-global slot the *next* async post will occupy (the
     * paper's wq_head, on the queue pair the round-robin — or @p qp —
     * would pick). Lets callers address per-slot landing buffers before
     * posting: `buf + session.nextSlot() * 64`.
     */
    std::uint32_t nextSlot(std::uint32_t qp = kAnyQp) const;

    node::Core &core() { return core_; }
    os::Process &process() { return proc_; }
    sim::NodeId nodeId() const { return nid_; }
    rmc::Rmc &rmc() { return driver_.rmc(); }
    sim::CtxId ctx() const { return ctx_; }

    /**
     * Reason behind the most recent fabric failure seen by this node's
     * RMC (which peer, node- vs link-scoped), for software deciding
     * whether a kFabricError op is worth retrying.
     */
    const fab::FailureInfo &lastFailure() { return rmc().lastFailure(); }

    /** Scratch buffer allocator in the session's process. */
    vm::VAddr
    allocBuffer(std::uint64_t bytes)
    {
        return proc_.alloc(bytes);
    }

  private:
    friend class OpHandle;

    node::Core &core_;
    os::RmcDriver &driver_;
    os::Process &proc_;
    sim::CtxId ctx_;
    SessionParams params_;
    sim::NodeId nid_;

    /** One registered queue pair plus its producer/consumer cursors. */
    struct QpState
    {
        os::QpHandle handle;
        rmc::RingCursor wq;  //!< producer side
        rmc::RingCursor cq;  //!< consumer side
        bool doorbellPending = false; //!< batched posts not yet rung

        QpState() : wq(1), cq(1) {}
    };
    std::vector<QpState> qps_;
    std::uint32_t qpEntries_ = 0;
    std::uint32_t rrNext_ = 0;            //!< next round-robin QP
    std::uint32_t pendingDoorbells_ = 0;

    std::uint32_t outstanding_ = 0;
    std::vector<bool> slotBusy_;          //!< by session-global slot
    bool closed_ = false;                 //!< see close()

    // Outstanding-op gauge, created in the constructor when sampling is
    // enabled ("node<i>.session<k>.outstanding").
    std::unique_ptr<sim::TimeSeries> outstandingProbe_;

    /** Completion rendezvous state, one fixed record per WQ slot. */
    struct SlotRecord
    {
        std::uint64_t token = 0;  //!< which post currently owns the slot
        bool completed = false;
        bool atomic = false;      //!< reap reads oldValue from bufVa
        rmc::CqStatus status = rmc::CqStatus::kOk;
        sim::Tick postedAt = 0;
        sim::Tick completedAt = 0;
        vm::VAddr bufVa = 0;
        std::uint64_t oldValue = 0;
    };
    std::vector<SlotRecord> records_;     //!< by session-global slot
    std::uint64_t nextToken_ = 0;

    sim::Condition completionEvent_;
    vm::VAddr atomicScratch_ = 0; //!< per-slot landing lines for atomics

    /** Flat index of entry @p idx on queue pair @p qp. */
    std::uint32_t
    gslot(std::uint32_t qp, std::uint32_t idx) const
    {
        return rmc::globalSlot(qp, idx, qpEntries_);
    }

    /** Reap everything currently visible in the CQs (all queue pairs). */
    sim::Task reapAvailable(std::uint32_t *reaped);

    /** Functional peek: does any CQ head hold an unreaped entry? */
    bool cqEntryVisible() const;

    /**
     * Empty-poll backoff: flush batched doorbells, charge the poll
     * overhead, then block on the completion event — unless a
     * completion landed during the charge (lost-wakeup guard).
     */
    sim::Task pollWait();

    /**
     * Pick a queue pair (honoring @p qpHint) and spin (reaping) until
     * its WQ head slot frees; returns the QP and its head index.
     */
    sim::Task acquireSlot(std::uint32_t qpHint, std::uint32_t *qp,
                          std::uint32_t *slot);

    /** Acquire a slot, write + ring one WQ entry, hand out the handle. */
    sim::ValueTask<OpHandle> postOp(rmc::WqEntry entry, bool atomic,
                                    std::uint32_t qpHint);

    /** Rendezvous coroutine behind `co_await handle`. */
    sim::ValueTask<OpResult> awaitCompletion(std::uint32_t slot,
                                             std::uint64_t token);

    /** Non-blocking completion check for OpHandle::done(). */
    bool completionVisible(std::uint32_t slot, std::uint64_t token) const;

    /** Landing line for the old value of an atomic using global slot. */
    vm::VAddr scratchFor(std::uint32_t slot);
};

//
// OpHandle inline implementation (needs RmcSession above).
//

/**
 * Awaiter returned by `co_await handle`. Owns the rendezvous coroutine
 * for the duration of the await (the enclosing coroutine frame keeps
 * the awaiter alive across suspension).
 */
struct OpHandle::Awaiter
{
    sim::ValueTask<OpResult> task;
    sim::ValueTask<OpResult>::JoinAwaiter join;

    explicit Awaiter(sim::ValueTask<OpResult> t)
        : task(std::move(t)), join(task.operator co_await())
    {}

    bool await_ready() const noexcept { return join.await_ready(); }

    std::coroutine_handle<>
    await_suspend(std::coroutine_handle<> parent) noexcept
    {
        return join.await_suspend(parent);
    }

    OpResult await_resume() const { return join.await_resume(); }
};

inline OpHandle::Awaiter
OpHandle::operator co_await() const
{
    if (!session_)
        sim::fatal("co_await on a default-constructed (invalid) OpHandle");
    return Awaiter(session_->awaitCompletion(slot_, token_));
}

inline bool
OpHandle::done() const
{
    return session_ && session_->completionVisible(slot_, token_);
}

} // namespace sonuma::api

#endif // SONUMA_API_SESSION_HH
