/**
 * @file
 * The soNUMA access library (paper §5.2).
 *
 * A lightweight user-level API over the queue pairs: applications issue
 * one-sided remote reads/writes/atomics and synchronize by polling the
 * completion queue. Mirrors the paper's Fig. 4 interface:
 *
 *   - waitForSlot  ~ rmc_wait_for_slot (process CQ until WQ head frees)
 *   - postRead     ~ rmc_read_async
 *   - postWrite    ~ rmc_write_async
 *   - drainCq      ~ rmc_drain_cq
 *   - readSync / writeSync ~ the blocking variants
 *   - fetchAddSync / compareSwapSync ~ atomic operations (§5.2)
 *
 * All methods are coroutines executing "on" a Core: they charge API
 * instruction overhead on the core's compute resource and perform timed
 * loads/stores on the core's L1 for every WQ/CQ interaction, which is
 * exactly where soNUMA's coherence-integrated queue pairs earn their
 * latency advantage.
 */

#ifndef SONUMA_API_SESSION_HH
#define SONUMA_API_SESSION_HH

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "node/core.hh"
#include "os/rmc_driver.hh"
#include "rmc/queue_pair.hh"
#include "sim/sync.hh"
#include "sim/task.hh"

namespace sonuma::api {

/** Callback applied to completed WQ slots during CQ processing. */
using CompletionCallback =
    std::function<void(std::uint32_t slot, rmc::CqStatus status)>;

/** Tunable software overheads of the inline API functions. */
struct SessionParams
{
    std::uint32_t issueOverheadCycles = 120;     //!< per posted op
    std::uint32_t completionOverheadCycles = 70; //!< per reaped completion
    std::uint32_t syncPollOverheadCycles = 10;   //!< per empty poll
};

/**
 * One application thread's handle on a queue pair within a global
 * address space (context).
 */
class RmcSession
{
  public:
    /**
     * Open @p ctx for @p proc (driver permission check) and register a
     * fresh queue pair. @p core is the core this thread runs on.
     */
    RmcSession(node::Core &core, os::RmcDriver &driver, os::Process &proc,
               sim::CtxId ctx, const SessionParams &params = {});

    RmcSession(const RmcSession &) = delete;
    RmcSession &operator=(const RmcSession &) = delete;

    //
    // Asynchronous API (paper Fig. 4)
    //

    /**
     * Process CQ events (invoking @p cb on completed slots) until the
     * head of the WQ is free; returns that slot in @p slot.
     */
    [[nodiscard]] sim::Task waitForSlot(CompletionCallback cb,
                                        std::uint32_t *slot);

    /** Schedule a remote read of @p len bytes into local @p buf. */
    [[nodiscard]] sim::Task postRead(std::uint32_t slot, sim::NodeId nid,
                                     std::uint64_t offset, vm::VAddr buf,
                                     std::uint32_t len);

    /** Schedule a remote write of @p len bytes from local @p buf. */
    [[nodiscard]] sim::Task postWrite(std::uint32_t slot, sim::NodeId nid,
                                      std::uint64_t offset, vm::VAddr buf,
                                      std::uint32_t len);

    /** Schedule an atomic compare-and-swap; old value lands in @p buf. */
    [[nodiscard]] sim::Task postCompareSwap(std::uint32_t slot,
                                            sim::NodeId nid,
                                            std::uint64_t offset,
                                            vm::VAddr buf,
                                            std::uint64_t expected,
                                            std::uint64_t desired);

    /** Schedule an atomic fetch-and-add; old value lands in @p buf. */
    [[nodiscard]] sim::Task postFetchAdd(std::uint32_t slot,
                                         sim::NodeId nid,
                                         std::uint64_t offset,
                                         vm::VAddr buf,
                                         std::uint64_t addend);

    /** Process available CQ events without blocking. */
    [[nodiscard]] sim::Task pollCq(CompletionCallback cb,
                                   std::uint32_t *reaped);

    /** Block until every outstanding operation has completed. */
    [[nodiscard]] sim::Task drainCq(CompletionCallback cb);

    //
    // Synchronous (blocking) API
    //

    [[nodiscard]] sim::Task readSync(sim::NodeId nid, std::uint64_t offset,
                                     vm::VAddr buf, std::uint32_t len,
                                     rmc::CqStatus *status);

    [[nodiscard]] sim::Task writeSync(sim::NodeId nid, std::uint64_t offset,
                                      vm::VAddr buf, std::uint32_t len,
                                      rmc::CqStatus *status);

    /** Atomic fetch-and-add returning the old value. */
    [[nodiscard]] sim::Task fetchAddSync(sim::NodeId nid,
                                         std::uint64_t offset,
                                         std::uint64_t addend,
                                         std::uint64_t *oldValue,
                                         rmc::CqStatus *status);

    /** Atomic compare-and-swap returning the old value. */
    [[nodiscard]] sim::Task compareSwapSync(sim::NodeId nid,
                                            std::uint64_t offset,
                                            std::uint64_t expected,
                                            std::uint64_t desired,
                                            std::uint64_t *oldValue,
                                            rmc::CqStatus *status);

    //
    // Introspection / helpers
    //

    std::uint32_t outstanding() const { return outstanding_; }
    std::uint32_t queueDepth() const { return qp_.entries; }
    node::Core &core() { return core_; }
    os::Process &process() { return proc_; }
    sim::NodeId nodeId() const { return nid_; }
    rmc::Rmc &rmc() { return driver_.rmc(); }
    sim::CtxId ctx() const { return ctx_; }

    /**
     * Callback for completions reaped inside sync calls that belong to
     * other (async) slots. Defaults to dropping them.
     */
    void setDefaultCallback(CompletionCallback cb);

    /** Scratch buffer allocator in the session's process. */
    vm::VAddr
    allocBuffer(std::uint64_t bytes)
    {
        return proc_.alloc(bytes);
    }

    /** Lazily-allocated per-session scratch line for sync atomics. */
    vm::VAddr
    atomicScratch()
    {
        if (scratch_ == 0)
            scratch_ = proc_.alloc(sim::kCacheLineBytes);
        return scratch_;
    }

  private:
    node::Core &core_;
    os::RmcDriver &driver_;
    os::Process &proc_;
    sim::CtxId ctx_;
    SessionParams params_;
    os::QpHandle qp_;
    sim::NodeId nid_;

    rmc::RingCursor wqCursor_;  //!< producer side
    rmc::RingCursor cqCursor_;  //!< consumer side
    std::uint32_t outstanding_ = 0;
    std::vector<bool> slotBusy_;

    // Sync-op rendezvous per slot.
    struct SyncWait
    {
        bool done = false;
        rmc::CqStatus status = rmc::CqStatus::kOk;
    };
    std::vector<SyncWait *> syncWaiters_;

    sim::Condition completionEvent_;
    CompletionCallback defaultCb_;
    vm::VAddr scratch_ = 0;

    /** Write + ring one WQ entry (shared by all post* methods). */
    sim::Task postEntry(std::uint32_t slot, const rmc::WqEntry &entry);

    /** Reap everything currently visible in the CQ. */
    sim::Task reapAvailable(const CompletionCallback &cb,
                            std::uint32_t *reaped);

    /** Generic sync wrapper: post, then wait for that slot. */
    sim::Task syncOp(const rmc::WqEntry &entry, rmc::CqStatus *status);
};

} // namespace sonuma::api

#endif // SONUMA_API_SESSION_HH
