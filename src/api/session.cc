/**
 * @file
 * Access-library implementation (v2 awaitable surface).
 */

#include "api/session.hh"

#include <cassert>
#include <cstring>

#include "sim/log.hh"

namespace sonuma::api {

namespace {

rmc::WqEntry
makeEntry(rmc::WqOp op, sim::NodeId nid, std::uint64_t offset,
          vm::VAddr buf, std::uint32_t len, std::uint64_t operand1 = 0,
          std::uint64_t operand2 = 0)
{
    rmc::WqEntry e{};
    e.op = static_cast<std::uint8_t>(op);
    e.dstNid = nid;
    e.offset = offset;
    e.bufVa = buf;
    e.length = len;
    e.operand1 = operand1;
    e.operand2 = operand2;
    return e;
}

} // namespace

RmcSession::RmcSession(node::Core &core, os::RmcDriver &driver,
                       os::Process &proc, sim::CtxId ctx,
                       const SessionParams &params)
    : core_(core), driver_(driver), proc_(proc), ctx_(ctx), params_(params),
      qp_(), nid_(driver.rmc().nodeId()), wqCursor_(1), cqCursor_(1),
      completionEvent_(core.simulation().eq())
{
    // Bind the thread's process to its core so timed loads/stores
    // translate in the right address space.
    core_.attachProcess(proc_);
    driver_.openContext(proc_, ctx_);
    qp_ = driver_.createQueuePair(proc_, ctx_);
    wqCursor_ = rmc::RingCursor(qp_.entries);
    cqCursor_ = rmc::RingCursor(qp_.entries);
    slotBusy_.assign(qp_.entries, false);
    records_.assign(qp_.entries, SlotRecord{});
    driver_.rmc().setCompletionHook(ctx_, qp_.qpIndex,
                                    [this] { completionEvent_.notifyAll(); });
}

vm::VAddr
RmcSession::scratchFor(std::uint32_t slot)
{
    if (atomicScratch_ == 0)
        atomicScratch_ =
            proc_.alloc(std::uint64_t(qp_.entries) * sim::kCacheLineBytes);
    return atomicScratch_ + std::uint64_t(slot) * sim::kCacheLineBytes;
}

bool
RmcSession::completionVisible(std::uint32_t slot, std::uint64_t token) const
{
    const SlotRecord &r = records_[slot];
    return r.token == token && r.completed;
}

sim::Task
RmcSession::reapAvailable(std::uint32_t *reaped)
{
    std::uint32_t n = 0;
    while (true) {
        const vm::VAddr entryVa = qp_.cqEntryVa(cqCursor_.index());
        rmc::CqEntry entry;
        proc_.addressSpace().read(entryVa, &entry, sizeof(entry));
        if (entry.phase != cqCursor_.expectedPhase())
            break;

        // Timed load of the CQ line + per-completion software cost.
        co_await core_.load(entryVa);
        co_await core_.compute(params_.completionOverheadCycles);

        const std::uint32_t slot = entry.wqIndex;
        const auto status = static_cast<rmc::CqStatus>(entry.status);
        assert(slot < qp_.entries && slotBusy_[slot]);
        slotBusy_[slot] = false;
        assert(outstanding_ > 0);
        --outstanding_;
        cqCursor_.advance();
        ++n;

        SlotRecord &r = records_[slot];
        r.completed = true;
        r.status = status;
        r.completedAt = core_.simulation().now();
        if (r.atomic && status == rmc::CqStatus::kOk)
            r.oldValue =
                proc_.addressSpace().readT<std::uint64_t>(r.bufVa);
    }
    if (reaped)
        *reaped = n;
}

bool
RmcSession::cqEntryVisible() const
{
    rmc::CqEntry entry;
    proc_.addressSpace().read(qp_.cqEntryVa(cqCursor_.index()), &entry,
                              sizeof(entry));
    return entry.phase == cqCursor_.expectedPhase();
}

sim::Task
RmcSession::pollWait()
{
    co_await core_.compute(params_.syncPollOverheadCycles);
    // A completion may have landed during the compute charge, with its
    // hook firing while no waiter was registered. Re-check the CQ head
    // before sleeping: the check and the wait registration execute in
    // one event-loop step, so nothing can slip between them.
    if (!cqEntryVisible())
        co_await completionEvent_.wait();
}

sim::Task
RmcSession::acquireSlot(std::uint32_t *slot)
{
    const std::uint32_t next = wqCursor_.index();
    while (slotBusy_[next]) {
        std::uint32_t reaped = 0;
        co_await reapAvailable(&reaped);
        if (slotBusy_[next] && reaped == 0)
            co_await pollWait();
    }
    *slot = next;
}

sim::ValueTask<OpHandle>
RmcSession::postOp(rmc::WqEntry entry, bool atomic)
{
    std::uint32_t slot = 0;
    co_await acquireSlot(&slot);
    assert(slot == wqCursor_.index() && !slotBusy_[slot]);

    entry.phase = wqCursor_.expectedPhase();

    // Inline-function overhead + the producing store (one cache line).
    co_await core_.compute(params_.issueOverheadCycles);
    const vm::VAddr entryVa = qp_.wqEntryVa(slot);
    co_await core_.store(entryVa);
    proc_.addressSpace().write(entryVa, &entry, sizeof(entry));

    SlotRecord &r = records_[slot];
    r.token = ++nextToken_;
    r.completed = false;
    r.atomic = atomic;
    r.status = rmc::CqStatus::kOk;
    r.postedAt = core_.simulation().now();
    r.bufVa = entry.bufVa;
    r.oldValue = 0;

    slotBusy_[slot] = true;
    ++outstanding_;
    wqCursor_.advance();
    driver_.rmc().doorbell(ctx_, qp_.qpIndex);
    co_return OpHandle(this, slot, r.token);
}

sim::ValueTask<OpResult>
RmcSession::awaitCompletion(std::uint32_t slot, std::uint64_t token)
{
    while (true) {
        SlotRecord &r = records_[slot];
        if (r.token != token)
            sim::fatal("OpHandle awaited after its WQ slot was reused; "
                       "consume results within one ring lap");
        if (r.completed)
            break;
        std::uint32_t reaped = 0;
        co_await reapAvailable(&reaped);
        if (!records_[slot].completed && reaped == 0)
            co_await pollWait();
    }
    const SlotRecord &r = records_[slot];
    OpResult res;
    res.status = r.status;
    res.latency = r.completedAt - r.postedAt;
    res.oldValue = r.oldValue;
    co_return res;
}

//
// ------------------------- asynchronous posts --------------------------
//

sim::ValueTask<OpHandle>
RmcSession::readAsync(sim::NodeId nid, std::uint64_t offset, vm::VAddr buf,
                      std::uint32_t len)
{
    co_return co_await postOp(
        makeEntry(rmc::WqOp::kRead, nid, offset, buf, len),
        /*atomic=*/false);
}

sim::ValueTask<OpHandle>
RmcSession::writeAsync(sim::NodeId nid, std::uint64_t offset, vm::VAddr buf,
                       std::uint32_t len)
{
    co_return co_await postOp(
        makeEntry(rmc::WqOp::kWrite, nid, offset, buf, len),
        /*atomic=*/false);
}

sim::ValueTask<OpHandle>
RmcSession::fetchAddAsync(sim::NodeId nid, std::uint64_t offset,
                          std::uint64_t addend)
{
    const vm::VAddr buf = scratchFor(wqCursor_.index());
    co_return co_await postOp(
        makeEntry(rmc::WqOp::kFetchAdd, nid, offset, buf,
                  sizeof(std::uint64_t), addend),
        /*atomic=*/true);
}

sim::ValueTask<OpHandle>
RmcSession::compareSwapAsync(sim::NodeId nid, std::uint64_t offset,
                             std::uint64_t expected, std::uint64_t desired)
{
    const vm::VAddr buf = scratchFor(wqCursor_.index());
    co_return co_await postOp(
        makeEntry(rmc::WqOp::kCas, nid, offset, buf,
                  sizeof(std::uint64_t), expected, desired),
        /*atomic=*/true);
}

//
// -------------------------- blocking wrappers --------------------------
//

sim::ValueTask<OpResult>
RmcSession::read(sim::NodeId nid, std::uint64_t offset, vm::VAddr buf,
                 std::uint32_t len)
{
    OpHandle h = co_await readAsync(nid, offset, buf, len);
    co_return co_await h;
}

sim::ValueTask<OpResult>
RmcSession::write(sim::NodeId nid, std::uint64_t offset, vm::VAddr buf,
                  std::uint32_t len)
{
    OpHandle h = co_await writeAsync(nid, offset, buf, len);
    co_return co_await h;
}

sim::ValueTask<OpResult>
RmcSession::fetchAdd(sim::NodeId nid, std::uint64_t offset,
                     std::uint64_t addend)
{
    OpHandle h = co_await fetchAddAsync(nid, offset, addend);
    co_return co_await h;
}

sim::ValueTask<OpResult>
RmcSession::compareSwap(sim::NodeId nid, std::uint64_t offset,
                        std::uint64_t expected, std::uint64_t desired)
{
    OpHandle h = co_await compareSwapAsync(nid, offset, expected, desired);
    co_return co_await h;
}

//
// ----------------------------- reaping ---------------------------------
//

sim::ValueTask<std::uint32_t>
RmcSession::poll()
{
    std::uint32_t reaped = 0;
    co_await reapAvailable(&reaped);
    co_return reaped;
}

sim::Task
RmcSession::drain()
{
    while (outstanding_ > 0) {
        std::uint32_t reaped = 0;
        co_await reapAvailable(&reaped);
        if (outstanding_ > 0 && reaped == 0)
            co_await pollWait();
    }
}

} // namespace sonuma::api
