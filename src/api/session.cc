/**
 * @file
 * Access-library implementation (v2 awaitable surface, multi-QP).
 */

#include "api/session.hh"

#include <cassert>
#include <cstring>

#include "sim/log.hh"

namespace sonuma::api {

namespace {

rmc::WqEntry
makeEntry(rmc::WqOp op, sim::NodeId nid, std::uint64_t offset,
          vm::VAddr buf, std::uint32_t len, std::uint64_t operand1 = 0,
          std::uint64_t operand2 = 0)
{
    rmc::WqEntry e{};
    e.op = static_cast<std::uint8_t>(op);
    e.dstNid = nid;
    e.offset = offset;
    e.bufVa = buf;
    e.length = len;
    e.operand1 = operand1;
    e.operand2 = operand2;
    return e;
}

} // namespace

RmcSession::RmcSession(node::Core &core, os::RmcDriver &driver,
                       os::Process &proc, sim::CtxId ctx,
                       const SessionParams &params)
    : core_(core), driver_(driver), proc_(proc), ctx_(ctx), params_(params),
      nid_(driver.rmc().nodeId()),
      completionEvent_(core.simulation().eq())
{
    // Bind the thread's process to its core so timed loads/stores
    // translate in the right address space.
    core_.attachProcess(proc_);
    driver_.openContext(proc_, ctx_);

    std::uint32_t n = params_.qpCount != 0 ? params_.qpCount
                                           : driver_.rmc().params().qpCount;
    if (n == 0)
        sim::fatal("RmcSession: resolved qpCount is 0 (RmcParams was not "
                   "validated?)");
    qps_.resize(n);
    for (std::uint32_t q = 0; q < n; ++q) {
        QpState &qp = qps_[q];
        qp.handle = driver_.createQueuePair(proc_, ctx_);
        qp.wq = rmc::RingCursor(qp.handle.entries);
        qp.cq = rmc::RingCursor(qp.handle.entries);
        driver_.rmc().setCompletionHook(
            ctx_, qp.handle.qpIndex,
            [this] { completionEvent_.notifyAll(); });
        if (q == 0)
            qpEntries_ = qp.handle.entries;
        else if (qp.handle.entries != qpEntries_)
            sim::fatal("RmcSession: queue pairs of one session must share "
                       "one ring depth");
    }
    slotBusy_.assign(std::size_t(qpEntries_) * n, false);
    records_.assign(std::size_t(qpEntries_) * n, SlotRecord{});

    sim::StatRegistry &stats = core_.simulation().stats();
    if (stats.samplingEnabled()) {
        // Sessions are anonymous; claim the first free per-node index so
        // series names stay stable for a deterministic creation order.
        const std::string prefix = "node" + std::to_string(nid_) +
                                   ".session";
        std::uint32_t k = 0;
        while (stats.timeSeries(prefix + std::to_string(k) +
                                ".outstanding"))
            ++k;
        outstandingProbe_ = std::make_unique<sim::TimeSeries>(
            stats, prefix + std::to_string(k) + ".outstanding", "ops",
            "operations posted, completion not yet reaped",
            sim::TimeSeries::Kind::kGauge,
            [this] { return static_cast<double>(outstanding_); });
    }
}

vm::VAddr
RmcSession::scratchFor(std::uint32_t slot)
{
    if (atomicScratch_ == 0)
        atomicScratch_ = proc_.alloc(std::uint64_t(queueDepth()) *
                                     sim::kCacheLineBytes);
    return atomicScratch_ + std::uint64_t(slot) * sim::kCacheLineBytes;
}

bool
RmcSession::completionVisible(std::uint32_t slot, std::uint64_t token) const
{
    const SlotRecord &r = records_[slot];
    return r.token == token && r.completed;
}

std::uint32_t
RmcSession::nextSlot(std::uint32_t qp) const
{
    const std::uint32_t q = qp == kAnyQp ? rrNext_ : qp;
    if (q >= qpCount())
        sim::fatal("RmcSession::nextSlot: qp " + std::to_string(q) +
                   " out of range (session has " +
                   std::to_string(qpCount()) + " queue pairs)");
    return gslot(q, qps_[q].wq.index());
}

void
RmcSession::flush()
{
    if (pendingDoorbells_ == 0)
        return;
    for (QpState &q : qps_) {
        if (!q.doorbellPending)
            continue;
        q.doorbellPending = false;
        driver_.rmc().doorbell(ctx_, q.handle.qpIndex);
    }
    pendingDoorbells_ = 0;
}

void
RmcSession::setDoorbellBatching(bool on)
{
    if (!on)
        flush();
    params_.doorbellBatching = on;
}

sim::Task
RmcSession::reapAvailable(std::uint32_t *reaped)
{
    std::uint32_t n = 0;
    for (std::uint32_t q = 0; q < qpCount(); ++q) {
        QpState &qp = qps_[q];
        while (true) {
            const vm::VAddr entryVa = qp.handle.cqEntryVa(qp.cq.index());
            rmc::CqEntry entry;
            proc_.addressSpace().read(entryVa, &entry, sizeof(entry));
            if (entry.phase != qp.cq.expectedPhase())
                break;

            // Timed load of the CQ line + per-completion software cost.
            co_await core_.load(entryVa);
            co_await core_.compute(params_.completionOverheadCycles);

            const std::uint32_t slot = entry.wqIndex;
            const auto status = static_cast<rmc::CqStatus>(entry.status);
            if (slot >= qpEntries_)
                sim::fatal("CQ entry names WQ slot " +
                           std::to_string(slot) + " beyond the " +
                           std::to_string(qpEntries_) + "-entry ring");
            const std::uint32_t g = gslot(q, slot);
            // Always-on invariant (not an assert: NDEBUG builds must
            // keep the net): a completion for an idle slot means the
            // RMC completed one WQ entry twice.
            if (!slotBusy_[g])
                sim::fatal("CQ completion for idle WQ slot " +
                           std::to_string(slot) + " on qp " +
                           std::to_string(q) +
                           " (double completion?)");
            slotBusy_[g] = false;
            if (outstanding_ == 0)
                sim::fatal("CQ completion with no outstanding ops");
            --outstanding_;
            qp.cq.advance();
            driver_.rmc().noteCqConsumed(ctx_, qp.handle.qpIndex);
            ++n;

            SlotRecord &r = records_[g];
            if (r.completed)
                sim::fatal("completion for an already-completed slot "
                           "record (double completion?)");
            r.completed = true;
            r.status = status;
            r.completedAt = core_.simulation().now();
            if (r.atomic && status == rmc::CqStatus::kOk)
                r.oldValue =
                    proc_.addressSpace().readT<std::uint64_t>(r.bufVa);
        }
    }
    if (reaped)
        *reaped = n;
}

bool
RmcSession::cqEntryVisible() const
{
    for (const QpState &qp : qps_) {
        rmc::CqEntry entry;
        proc_.addressSpace().read(qp.handle.cqEntryVa(qp.cq.index()),
                                  &entry, sizeof(entry));
        if (entry.phase == qp.cq.expectedPhase())
            return true;
    }
    return false;
}

sim::Task
RmcSession::pollWait()
{
    // Batched posts must reach the RMC before this session sleeps on
    // their completions (deadlock otherwise); this is the "automatic at
    // suspension" half of the doorbell-batching contract.
    flush();
    co_await core_.compute(params_.syncPollOverheadCycles);
    // A completion may have landed during the compute charge, with its
    // hook firing while no waiter was registered. Re-check the CQ heads
    // before sleeping: the check and the wait registration execute in
    // one event-loop step, so nothing can slip between them.
    if (!cqEntryVisible())
        co_await completionEvent_.wait();
}

sim::Task
RmcSession::acquireSlot(std::uint32_t qpHint, std::uint32_t *qp,
                        std::uint32_t *slot)
{
    std::uint32_t q;
    if (qpHint == kAnyQp) {
        q = rrNext_;
        rrNext_ = (rrNext_ + 1) % qpCount();
    } else {
        if (qpHint >= qpCount())
            sim::fatal("RmcSession: qp hint " + std::to_string(qpHint) +
                       " out of range (session has " +
                       std::to_string(qpCount()) + " queue pairs)");
        q = qpHint;
    }
    const std::uint32_t next = qps_[q].wq.index();
    while (slotBusy_[gslot(q, next)]) {
        std::uint32_t reaped = 0;
        co_await reapAvailable(&reaped);
        if (slotBusy_[gslot(q, next)] && reaped == 0)
            co_await pollWait();
    }
    *qp = q;
    *slot = next;
}

sim::ValueTask<OpHandle>
RmcSession::postOp(rmc::WqEntry entry, bool atomic, std::uint32_t qpHint)
{
    std::uint32_t q = 0, slot = 0;
    co_await acquireSlot(qpHint, &q, &slot);
    QpState &qp = qps_[q];
    const std::uint32_t g = gslot(q, slot);
    assert(slot == qp.wq.index() && !slotBusy_[g]);

    // Atomics land their old value in a per-slot scratch line; the slot
    // is only known now that the queue pair is chosen.
    if (atomic)
        entry.bufVa = scratchFor(g);
    entry.phase = qp.wq.expectedPhase();

    // Inline-function overhead + the producing store (one cache line).
    co_await core_.compute(params_.issueOverheadCycles);
    if (!closed_) {
        const vm::VAddr entryVa = qp.handle.wqEntryVa(slot);
        co_await core_.store(entryVa);
        // close() may have landed during either charge above; its fence
        // already scanned the WQ, so a late functional write would
        // publish an entry nobody will ever consume. Skip it.
        if (!closed_)
            proc_.addressSpace().write(entryVa, &entry, sizeof(entry));
    }

    SlotRecord &r = records_[g];
    r.token = ++nextToken_;
    r.completed = false;
    r.atomic = atomic;
    r.status = rmc::CqStatus::kOk;
    r.postedAt = core_.simulation().now();
    r.completedAt = 0;
    r.bufVa = entry.bufVa;
    r.oldValue = 0;

    if (closed_) {
        // Post-close stub: the queue pairs are gone, so complete the op
        // immediately with kFlushed. No busy slot, no outstanding count
        // — there is no CQ entry coming, and drain() must not wait for
        // one. The cursor still advances so successive closed posts get
        // distinct slot records.
        r.completed = true;
        r.status = rmc::CqStatus::kFlushed;
        r.completedAt = r.postedAt;
        qp.wq.advance();
        co_return OpHandle(this, g, r.token);
    }

    slotBusy_[g] = true;
    ++outstanding_;
    qp.wq.advance();
    if (params_.doorbellBatching) {
        if (!qp.doorbellPending) {
            qp.doorbellPending = true;
            ++pendingDoorbells_;
        }
    } else {
        driver_.rmc().doorbell(ctx_, qp.handle.qpIndex);
    }
    co_return OpHandle(this, g, r.token);
}

sim::ValueTask<OpResult>
RmcSession::awaitCompletion(std::uint32_t slot, std::uint64_t token)
{
    while (true) {
        SlotRecord &r = records_[slot];
        if (r.token != token)
            sim::fatal("OpHandle awaited after its WQ slot was reused; "
                       "consume results within one ring lap");
        if (r.completed)
            break;
        std::uint32_t reaped = 0;
        co_await reapAvailable(&reaped);
        if (!records_[slot].completed && reaped == 0)
            co_await pollWait();
    }
    const SlotRecord &r = records_[slot];
    OpResult res;
    res.status = r.status;
    res.latency = r.completedAt - r.postedAt;
    res.completedAt = r.completedAt;
    res.oldValue = r.oldValue;
    co_return res;
}

//
// ------------------------- asynchronous posts --------------------------
//

sim::ValueTask<OpHandle>
RmcSession::readAsync(sim::NodeId nid, std::uint64_t offset, vm::VAddr buf,
                      std::uint32_t len, std::uint32_t qp)
{
    co_return co_await postOp(
        makeEntry(rmc::WqOp::kRead, nid, offset, buf, len),
        /*atomic=*/false, qp);
}

sim::ValueTask<OpHandle>
RmcSession::writeAsync(sim::NodeId nid, std::uint64_t offset, vm::VAddr buf,
                       std::uint32_t len, std::uint32_t qp)
{
    co_return co_await postOp(
        makeEntry(rmc::WqOp::kWrite, nid, offset, buf, len),
        /*atomic=*/false, qp);
}

sim::ValueTask<OpHandle>
RmcSession::fetchAddAsync(sim::NodeId nid, std::uint64_t offset,
                          std::uint64_t addend, std::uint32_t qp)
{
    // bufVa is filled in by postOp once the landing slot is known.
    co_return co_await postOp(
        makeEntry(rmc::WqOp::kFetchAdd, nid, offset, /*buf=*/0,
                  sizeof(std::uint64_t), addend),
        /*atomic=*/true, qp);
}

sim::ValueTask<OpHandle>
RmcSession::compareSwapAsync(sim::NodeId nid, std::uint64_t offset,
                             std::uint64_t expected, std::uint64_t desired,
                             std::uint32_t qp)
{
    co_return co_await postOp(
        makeEntry(rmc::WqOp::kCas, nid, offset, /*buf=*/0,
                  sizeof(std::uint64_t), expected, desired),
        /*atomic=*/true, qp);
}

//
// -------------------------- blocking wrappers --------------------------
//

sim::ValueTask<OpResult>
RmcSession::read(sim::NodeId nid, std::uint64_t offset, vm::VAddr buf,
                 std::uint32_t len)
{
    OpHandle h = co_await readAsync(nid, offset, buf, len);
    co_return co_await h;
}

sim::ValueTask<OpResult>
RmcSession::write(sim::NodeId nid, std::uint64_t offset, vm::VAddr buf,
                  std::uint32_t len)
{
    OpHandle h = co_await writeAsync(nid, offset, buf, len);
    co_return co_await h;
}

sim::ValueTask<OpResult>
RmcSession::fetchAdd(sim::NodeId nid, std::uint64_t offset,
                     std::uint64_t addend)
{
    OpHandle h = co_await fetchAddAsync(nid, offset, addend);
    co_return co_await h;
}

sim::ValueTask<OpResult>
RmcSession::compareSwap(sim::NodeId nid, std::uint64_t offset,
                        std::uint64_t expected, std::uint64_t desired)
{
    OpHandle h = co_await compareSwapAsync(nid, offset, expected, desired);
    co_return co_await h;
}

//
// ----------------------------- reaping ---------------------------------
//

sim::ValueTask<std::uint32_t>
RmcSession::poll()
{
    flush(); // batched posts become visible before their CQs are read
    std::uint32_t reaped = 0;
    co_await reapAvailable(&reaped);
    co_return reaped;
}

sim::Task
RmcSession::drain()
{
    flush();
    while (outstanding_ > 0) {
        std::uint32_t reaped = 0;
        co_await reapAvailable(&reaped);
        if (outstanding_ > 0 && reaped == 0)
            co_await pollWait();
    }
}

//
// ----------------------------- teardown --------------------------------
//

void
RmcSession::close(CloseMode mode)
{
    if (closed_)
        return;
    // Cancel batched doorbells instead of ringing them: the fence's WQ
    // scan flush-completes those entries, and ringing a dead QP would
    // bounce anyway. Must happen before the fence runs so a concurrent
    // pollWait() can't re-ring.
    for (QpState &q : qps_)
        q.doorbellPending = false;
    pendingDoorbells_ = 0;
    closed_ = true;
    // The fence posts a kFlushed completion for every in-flight op and
    // fires the completion hooks, so anyone parked in pollWait() wakes
    // and reaps normally.
    if (mode == CloseMode::kUnregisterContext) {
        driver_.unregisterContext(proc_, ctx_);
    } else {
        for (QpState &q : qps_)
            driver_.destroyQueuePair(q.handle);
    }
}

} // namespace sonuma::api
