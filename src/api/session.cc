/**
 * @file
 * Access-library implementation.
 */

#include "api/session.hh"

#include <cassert>
#include <cstring>

#include "sim/log.hh"

namespace sonuma::api {

RmcSession::RmcSession(node::Core &core, os::RmcDriver &driver,
                       os::Process &proc, sim::CtxId ctx,
                       const SessionParams &params)
    : core_(core), driver_(driver), proc_(proc), ctx_(ctx), params_(params),
      qp_(), nid_(driver.rmc().nodeId()), wqCursor_(1), cqCursor_(1),
      completionEvent_(core.simulation().eq())
{
    // Bind the thread's process to its core so timed loads/stores
    // translate in the right address space.
    core_.attachProcess(proc_);
    driver_.openContext(proc_, ctx_);
    qp_ = driver_.createQueuePair(proc_, ctx_);
    wqCursor_ = rmc::RingCursor(qp_.entries);
    cqCursor_ = rmc::RingCursor(qp_.entries);
    slotBusy_.assign(qp_.entries, false);
    syncWaiters_.assign(qp_.entries, nullptr);
    driver_.rmc().setCompletionHook(ctx_, qp_.qpIndex,
                                    [this] { completionEvent_.notifyAll(); });
}

void
RmcSession::setDefaultCallback(CompletionCallback cb)
{
    defaultCb_ = std::move(cb);
}

sim::Task
RmcSession::reapAvailable(const CompletionCallback &cb,
                          std::uint32_t *reaped)
{
    std::uint32_t n = 0;
    while (true) {
        const vm::VAddr entryVa = qp_.cqEntryVa(cqCursor_.index());
        rmc::CqEntry entry;
        proc_.addressSpace().read(entryVa, &entry, sizeof(entry));
        if (entry.phase != cqCursor_.expectedPhase())
            break;

        // Timed load of the CQ line + per-completion software cost.
        co_await core_.load(entryVa);
        co_await core_.compute(params_.completionOverheadCycles);

        const std::uint32_t slot = entry.wqIndex;
        const auto status = static_cast<rmc::CqStatus>(entry.status);
        assert(slot < qp_.entries && slotBusy_[slot]);
        slotBusy_[slot] = false;
        assert(outstanding_ > 0);
        --outstanding_;
        cqCursor_.advance();
        ++n;

        if (syncWaiters_[slot]) {
            syncWaiters_[slot]->done = true;
            syncWaiters_[slot]->status = status;
            syncWaiters_[slot] = nullptr;
        } else if (cb) {
            cb(slot, status);
        } else if (defaultCb_) {
            defaultCb_(slot, status);
        }
    }
    if (reaped)
        *reaped = n;
}

sim::Task
RmcSession::waitForSlot(CompletionCallback cb, std::uint32_t *slot)
{
    const std::uint32_t next = wqCursor_.index();
    while (slotBusy_[next]) {
        std::uint32_t reaped = 0;
        co_await reapAvailable(cb, &reaped);
        if (slotBusy_[next]) {
            co_await core_.compute(params_.syncPollOverheadCycles);
            co_await completionEvent_.wait();
        }
    }
    *slot = next;
}

sim::Task
RmcSession::postEntry(std::uint32_t slot, const rmc::WqEntry &entry)
{
    assert(slot == wqCursor_.index() &&
           "slots must be posted in ring order (use waitForSlot)");
    assert(!slotBusy_[slot]);

    rmc::WqEntry e = entry;
    e.phase = wqCursor_.expectedPhase();

    // Inline-function overhead + the producing store (one cache line).
    co_await core_.compute(params_.issueOverheadCycles);
    const vm::VAddr entryVa = qp_.wqEntryVa(slot);
    co_await core_.store(entryVa);
    proc_.addressSpace().write(entryVa, &e, sizeof(e));

    slotBusy_[slot] = true;
    ++outstanding_;
    wqCursor_.advance();
    driver_.rmc().doorbell(ctx_, qp_.qpIndex);
}

sim::Task
RmcSession::postRead(std::uint32_t slot, sim::NodeId nid,
                     std::uint64_t offset, vm::VAddr buf, std::uint32_t len)
{
    rmc::WqEntry e{};
    e.op = static_cast<std::uint8_t>(rmc::WqOp::kRead);
    e.dstNid = nid;
    e.offset = offset;
    e.bufVa = buf;
    e.length = len;
    co_await postEntry(slot, e);
}

sim::Task
RmcSession::postWrite(std::uint32_t slot, sim::NodeId nid,
                      std::uint64_t offset, vm::VAddr buf, std::uint32_t len)
{
    rmc::WqEntry e{};
    e.op = static_cast<std::uint8_t>(rmc::WqOp::kWrite);
    e.dstNid = nid;
    e.offset = offset;
    e.bufVa = buf;
    e.length = len;
    co_await postEntry(slot, e);
}

sim::Task
RmcSession::postCompareSwap(std::uint32_t slot, sim::NodeId nid,
                            std::uint64_t offset, vm::VAddr buf,
                            std::uint64_t expected, std::uint64_t desired)
{
    rmc::WqEntry e{};
    e.op = static_cast<std::uint8_t>(rmc::WqOp::kCas);
    e.dstNid = nid;
    e.offset = offset;
    e.bufVa = buf;
    e.length = sizeof(std::uint64_t);
    e.operand1 = expected;
    e.operand2 = desired;
    co_await postEntry(slot, e);
}

sim::Task
RmcSession::postFetchAdd(std::uint32_t slot, sim::NodeId nid,
                         std::uint64_t offset, vm::VAddr buf,
                         std::uint64_t addend)
{
    rmc::WqEntry e{};
    e.op = static_cast<std::uint8_t>(rmc::WqOp::kFetchAdd);
    e.dstNid = nid;
    e.offset = offset;
    e.bufVa = buf;
    e.length = sizeof(std::uint64_t);
    e.operand1 = addend;
    co_await postEntry(slot, e);
}

sim::Task
RmcSession::pollCq(CompletionCallback cb, std::uint32_t *reaped)
{
    co_await reapAvailable(cb, reaped);
}

sim::Task
RmcSession::drainCq(CompletionCallback cb)
{
    while (outstanding_ > 0) {
        std::uint32_t reaped = 0;
        co_await reapAvailable(cb, &reaped);
        if (outstanding_ > 0 && reaped == 0) {
            co_await core_.compute(params_.syncPollOverheadCycles);
            co_await completionEvent_.wait();
        }
    }
}

sim::Task
RmcSession::syncOp(const rmc::WqEntry &entry, rmc::CqStatus *status)
{
    std::uint32_t slot = 0;
    co_await waitForSlot(defaultCb_, &slot);
    SyncWait wait;
    co_await postEntry(slot, entry);
    syncWaiters_[slot] = &wait;
    while (!wait.done) {
        std::uint32_t reaped = 0;
        co_await reapAvailable(defaultCb_, &reaped);
        if (!wait.done && reaped == 0) {
            co_await core_.compute(params_.syncPollOverheadCycles);
            co_await completionEvent_.wait();
        }
    }
    if (status)
        *status = wait.status;
}

sim::Task
RmcSession::readSync(sim::NodeId nid, std::uint64_t offset, vm::VAddr buf,
                     std::uint32_t len, rmc::CqStatus *status)
{
    rmc::WqEntry e{};
    e.op = static_cast<std::uint8_t>(rmc::WqOp::kRead);
    e.dstNid = nid;
    e.offset = offset;
    e.bufVa = buf;
    e.length = len;
    co_await syncOp(e, status);
}

sim::Task
RmcSession::writeSync(sim::NodeId nid, std::uint64_t offset, vm::VAddr buf,
                      std::uint32_t len, rmc::CqStatus *status)
{
    rmc::WqEntry e{};
    e.op = static_cast<std::uint8_t>(rmc::WqOp::kWrite);
    e.dstNid = nid;
    e.offset = offset;
    e.bufVa = buf;
    e.length = len;
    co_await syncOp(e, status);
}

sim::Task
RmcSession::fetchAddSync(sim::NodeId nid, std::uint64_t offset,
                         std::uint64_t addend, std::uint64_t *oldValue,
                         rmc::CqStatus *status)
{
    const vm::VAddr buf = atomicScratch();
    rmc::WqEntry e{};
    e.op = static_cast<std::uint8_t>(rmc::WqOp::kFetchAdd);
    e.dstNid = nid;
    e.offset = offset;
    e.bufVa = buf;
    e.length = sizeof(std::uint64_t);
    e.operand1 = addend;
    co_await syncOp(e, status);
    if (oldValue)
        *oldValue = proc_.addressSpace().readT<std::uint64_t>(buf);
}

sim::Task
RmcSession::compareSwapSync(sim::NodeId nid, std::uint64_t offset,
                            std::uint64_t expected, std::uint64_t desired,
                            std::uint64_t *oldValue, rmc::CqStatus *status)
{
    const vm::VAddr buf = atomicScratch();
    rmc::WqEntry e{};
    e.op = static_cast<std::uint8_t>(rmc::WqOp::kCas);
    e.dstNid = nid;
    e.offset = offset;
    e.bufVa = buf;
    e.length = sizeof(std::uint64_t);
    e.operand1 = expected;
    e.operand2 = desired;
    co_await syncOp(e, status);
    if (oldValue)
        *oldValue = proc_.addressSpace().readT<std::uint64_t>(buf);
}

} // namespace sonuma::api
