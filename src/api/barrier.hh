/**
 * @file
 * Barrier synchronization across nodes sharing a context (paper §5.3):
 * "Each participating node broadcasts the arrival at a barrier by
 * issuing a write to an agreed upon offset on each of its peers. The
 * nodes then poll locally until all of them reach the barrier."
 *
 * Layout: every node's context segment reserves, at a common offset, an
 * array of one cache line per participant; slot i holds the generation
 * counter last announced by node i. Generations make the barrier
 * reusable without reinitialization.
 */

#ifndef SONUMA_API_BARRIER_HH
#define SONUMA_API_BARRIER_HH

#include <cstdint>
#include <vector>

#include "api/session.hh"

namespace sonuma::api {

class Barrier
{
  public:
    /**
     * @param session this node's RMC session. The barrier posts its
     *        announcement writes fire-and-forget; v2 per-slot
     *        completions cannot be misrouted, so the owning coroutine
     *        may interleave barrier arrivals with its own traffic on
     *        one session (sequentially — see session.hh's concurrency
     *        contract). Workload still gives each barrier a private QP
     *        so announcement writes never contend for WQ slots.
     * @param participants node ids taking part (must include self)
     * @param mySegmentBase local VA of this node's context segment
     * @param regionOffset common offset of the barrier region in every
     *        participant's segment
     */
    Barrier(RmcSession &session, std::vector<sim::NodeId> participants,
            vm::VAddr mySegmentBase, std::uint64_t regionOffset);

    /** Bytes of context segment the barrier region occupies. */
    static std::uint64_t
    regionBytes(std::size_t participants)
    {
        return participants * sim::kCacheLineBytes;
    }

    /** Enter the barrier; resumes when all participants arrived. */
    [[nodiscard]] sim::Task arrive();

    /** Completed barrier episodes. */
    std::uint64_t generation() const { return generation_; }

    /**
     * Opt in to periodic re-announcement while waiting (degraded-mode
     * runs): an announcement written to a peer that was dead at the time
     * is lost forever, so under fault plans each waiter re-posts its
     * generation to every peer each @p interval until the barrier
     * completes. Announcement values are monotone, so re-posting is
     * idempotent. The healthy path (never enabled) is event-driven and
     * byte-identical to before. Re-announcing is bounded by
     * kMaxReannounceRounds per arrival so a permanently dead peer
     * quiesces the simulation instead of livelocking it.
     */
    void enableReannounce(sim::Tick interval) { reannounce_ = interval; }

    /** Re-announce rounds per arrival before degrading to the
     *  event-driven wait (4096 x 50us default interval ~= 200 ms of sim
     *  time — far beyond any plausible recovery window). */
    static constexpr std::uint32_t kMaxReannounceRounds = 4096;

  private:
    RmcSession &session_;
    std::vector<sim::NodeId> participants_;
    vm::VAddr myRegion_;
    std::uint64_t regionOffset_;
    std::uint64_t generation_ = 0;
    vm::VAddr announceLine_;
    sim::Tick reannounce_ = 0; //!< 0 = event-driven wait (default)
};

} // namespace sonuma::api

#endif // SONUMA_API_BARRIER_HH
