/**
 * @file
 * Unsolicited send/receive built entirely in software on one-sided
 * operations (paper §5.3).
 *
 * soNUMA provides no hardware send/receive; this library composes them
 * from remote writes and reads:
 *
 *  - push: the sender packetizes the message into cache-line slots and
 *    rmc-writes them into the peer's bounded ring; the receiver polls
 *    its local ring. Low latency for small messages; per-line
 *    packetization and copy costs for large ones.
 *  - pull: the sender stages the payload locally and pushes only a
 *    descriptor <offset, size>; the receiver rmc-reads the payload
 *    straight from the sender's staging buffer and acknowledges with a
 *    remote write of a cumulative byte counter. Higher bandwidth (no
 *    packetization), but an extra control round-trip.
 *
 * The push/pull boundary is the `pushThreshold` parameter, matching the
 * paper's compile-time threshold (0 forces pull, UINT32_MAX forces push).
 * Flow control is credit-based: push slots are recycled only after the
 * receiver writes back its consumed count (credits piggyback on a
 * dedicated line rather than on reverse traffic — same cost, simpler).
 */

#ifndef SONUMA_API_MESSAGING_HH
#define SONUMA_API_MESSAGING_HH

#include <cstdint>
#include <vector>

#include "api/session.hh"

namespace sonuma::api {

/** Messaging-layer configuration. */
struct MsgParams
{
    std::uint32_t ringSlots = 64;       //!< inbound ring, 64 B slots
    std::uint32_t pushThreshold = 256;  //!< <= threshold: push; else pull
    std::uint32_t pullBufferBytes = 256 * 1024; //!< staging region
};

/**
 * One endpoint of a bidirectional message channel between two nodes
 * sharing a context. Each endpoint owns a region inside its node's
 * context segment with the layout (offsets from the region base):
 *
 *   [0, R)        inbound ring: ringSlots x 64 B, written by the peer
 *   [R, R+64)     creditsReturned line, written by the peer
 *   [R+64, R+128) pullAck line (cumulative bytes pulled), written by peer
 *   [R+128, ...)  pull staging buffer, read remotely by the peer
 */
class MsgEndpoint
{
  public:
    /** Bytes of context segment one endpoint's region occupies. */
    static std::uint64_t regionBytes(const MsgParams &params);

    /**
     * @param session this thread's RMC session (context already joined).
     *        The endpoint posts fire-and-forget writes on the session's
     *        QP. v2 per-slot completions cannot be misrouted, so the
     *        owning coroutine may interleave its own (sequential)
     *        traffic on the same session; a concurrently-running
     *        coroutine must use its own session (see session.hh's
     *        concurrency contract).
     * @param peerNid the peer node
     * @param mySegmentBase local VA of this node's context segment
     * @param myRegionOffset offset of my region within my segment
     * @param peerRegionOffset offset of the peer's region within the
     *        peer's segment
     */
    MsgEndpoint(RmcSession &session, sim::NodeId peerNid,
                vm::VAddr mySegmentBase, std::uint64_t myRegionOffset,
                std::uint64_t peerRegionOffset,
                const MsgParams &params = {});

    /**
     * Send @p len bytes. Push sends return once all packets are posted
     * (decoupled); pull sends return once the descriptor is posted, with
     * the staging space recycled asynchronously on ack.
     */
    [[nodiscard]] sim::Task send(const void *data, std::uint32_t len);

    /** Blocking receive of exactly one message. */
    [[nodiscard]] sim::Task receive(std::vector<std::uint8_t> *out);

    /** Bytes of payload a single push slot carries. */
    static constexpr std::uint32_t kSlotPayload = 48;

    std::uint64_t messagesSent() const { return sent_; }
    std::uint64_t messagesReceived() const { return received_; }

  private:
    /** One cache-line ring slot. */
    struct Slot
    {
        std::uint8_t phase;
        std::uint8_t kind;         //!< SlotKind
        std::uint16_t chunkLen;    //!< payload bytes in this slot
        std::uint32_t msgLen;      //!< total message length
        std::uint64_t stagingOff;  //!< pull: offset in sender staging
        std::uint8_t payload[kSlotPayload];
    };
    static_assert(sizeof(Slot) == sim::kCacheLineBytes, "slot layout");

    enum SlotKind : std::uint8_t
    {
        kData = 1,
        kPullDesc = 2,
    };

    RmcSession &session_;
    sim::NodeId peer_;
    MsgParams params_;

    // Local (receive-side) addresses.
    vm::VAddr myRing_;
    vm::VAddr myCredits_;   //!< peer writes its consumed count here
    vm::VAddr myPullAck_;   //!< peer writes cumulative pulled bytes here
    vm::VAddr myStaging_;

    // Remote (send-side) offsets within the peer's segment.
    std::uint64_t peerRingOff_;
    std::uint64_t peerCreditsOff_;
    std::uint64_t peerPullAckOff_;
    std::uint64_t peerStagingOff_;

    // Send state.
    rmc::RingCursor sendCursor_;
    std::uint64_t slotsSent_ = 0;
    std::uint64_t stagedBytes_ = 0;   //!< cumulative bytes staged
    vm::VAddr stagingLines_;          //!< local copies for in-flight writes
    std::uint64_t sent_ = 0;

    // Receive state.
    rmc::RingCursor recvCursor_;
    std::uint64_t slotsConsumed_ = 0;
    std::uint64_t creditsReturnedAt_ = 0;
    std::uint64_t pulledBytes_ = 0;   //!< cumulative bytes pulled
    vm::VAddr pullLanding_;           //!< buffer for pull reads
    vm::VAddr creditLine_;            //!< staging for credit returns
    vm::VAddr ackLine_;               //!< staging for pull acks
    std::uint64_t received_ = 0;

    sim::Task sendPush(const void *data, std::uint32_t len,
                       SlotKind kind, std::uint64_t stagingOff);
    sim::Task sendPull(const void *data, std::uint32_t len);
    sim::Task acquireSendSlot();           //!< credit flow control
    sim::Task postSlot(const Slot &slot);  //!< write one ring slot
    sim::Task waitForSlotPhase(Slot *out); //!< poll inbound ring
    sim::Task returnCreditsIfDue();
};

} // namespace sonuma::api

#endif // SONUMA_API_MESSAGING_HH
