/**
 * @file
 * Workload runtime implementation.
 */

#include "api/workload.hh"

#include <stdexcept>

namespace sonuma::api {

Workload::Workload(TestBed &bed, std::string scope)
    : bed_(bed), scope_(std::move(scope))
{
    const std::uint32_t n = bed_.nodes();
    if (bed_.segBytes() < Barrier::regionBytes(n))
        throw std::invalid_argument(
            "Workload: segmentPerNode too small for the barrier region "
            "(need " + std::to_string(Barrier::regionBytes(n)) +
            " bytes for " + std::to_string(n) + " nodes)");

    std::vector<sim::NodeId> all(n);
    for (std::uint32_t i = 0; i < n; ++i)
        all[i] = static_cast<sim::NodeId>(i);

    ctxs_.resize(n);
    for (std::uint32_t i = 0; i < n; ++i) {
        ctxs_[i].wl_ = this;
        ctxs_[i].node_ = i;
        // The barrier gets a QP of its own so its fire-and-forget
        // announcement writes never contend with application windows.
        // One QP and no batching regardless of the node defaults: its
        // announcements are single posts that must reach the wire
        // immediately, and multi-QP fan-out would only burn CT slots.
        SessionParams barrierParams;
        barrierParams.qpCount = 1;
        barrierParams.doorbellBatching = false;
        barriers_.push_back(std::make_unique<Barrier>(
            bed_.newSession(i, 0, barrierParams), all, bed_.segBase(i),
            /*regionOffset=*/0));
        // Under a fault plan, a barrier announcement written to a dead
        // peer is lost; re-announcing makes the barrier converge once
        // the peer recovers. Healthy runs keep the event-driven wait.
        if (bed_.faultsActive())
            barriers_.back()->enableReannounce(sim::usToTicks(50));
    }
}

Workload &
Workload::onEachNode(Fn fn)
{
    fn_ = std::move(fn);
    return *this;
}

sim::Counter &
Workload::NodeCtx::counter(const std::string &name)
{
    Workload &w = *wl_;
    const std::string full =
        w.scope_ + ".node" + std::to_string(node_) + "." + name;
    if (const auto *existing = w.bed_.sim().stats().counter(full))
        return *const_cast<sim::Counter *>(existing);
    w.counters_.emplace_back(w.bed_.sim().stats(), full,
                             "workload counter");
    return w.counters_.back();
}

sim::Histogram &
Workload::NodeCtx::histogram(const std::string &name)
{
    Workload &w = *wl_;
    const std::string full =
        w.scope_ + ".node" + std::to_string(node_) + "." + name;
    if (const auto *existing = w.bed_.sim().stats().histogram(full))
        return *const_cast<sim::Histogram *>(existing);
    w.histograms_.emplace_back(w.bed_.sim().stats(), full,
                               "workload histogram");
    return w.histograms_.back();
}

sim::Task
Workload::nodeMain(std::uint32_t i)
{
    co_await barriers_[i]->arrive();
    if (i == 0)
        start_ = bed_.sim().now();
    co_await fn_(ctxs_[i]);
    co_await barriers_[i]->arrive();
    if (i == 0)
        end_ = bed_.sim().now();
}

sim::Tick
Workload::run()
{
    if (!fn_)
        throw std::invalid_argument("Workload: onEachNode() not set");
    for (std::uint32_t i = 0; i < bed_.nodes(); ++i)
        bed_.spawn(nodeMain(i));
    const sim::Tick t = bed_.run();
    if (!bed_.sim().allRootsDone())
        throw std::runtime_error(
            "Workload: simulation quiesced with node coroutines still "
            "suspended — a permanent fault (dead node or link) left ops "
            "that can neither complete nor time out; give the plan a "
            "recovery event or enable a retry policy");
    return t;
}

} // namespace sonuma::api
