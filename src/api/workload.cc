/**
 * @file
 * Workload runtime implementation.
 */

#include "api/workload.hh"

#include <algorithm>
#include <stdexcept>

namespace sonuma::api {

Workload::Workload(TestBed &bed, std::string scope)
    : bed_(bed), scope_(std::move(scope)), bgDone_(bed.sim().eq())
{
    const std::uint32_t n = bed_.nodes();
    if (bed_.segBytes() < Barrier::regionBytes(n))
        throw std::invalid_argument(
            "Workload: segmentPerNode too small for the barrier region "
            "(need " + std::to_string(Barrier::regionBytes(n)) +
            " bytes for " + std::to_string(n) + " nodes)");

    std::vector<sim::NodeId> all(n);
    for (std::uint32_t i = 0; i < n; ++i)
        all[i] = static_cast<sim::NodeId>(i);

    ctxs_.resize(n);
    bgStop_.assign(n, 0);
    bgRunning_.assign(n, 0);
    for (std::uint32_t i = 0; i < n; ++i) {
        ctxs_[i].wl_ = this;
        ctxs_[i].node_ = i;
        // The barrier gets a QP of its own so its fire-and-forget
        // announcement writes never contend with application windows.
        // One QP and no batching regardless of the node defaults: its
        // announcements are single posts that must reach the wire
        // immediately, and multi-QP fan-out would only burn CT slots.
        SessionParams barrierParams;
        barrierParams.qpCount = 1;
        barrierParams.doorbellBatching = false;
        barriers_.push_back(std::make_unique<Barrier>(
            bed_.newSession(i, 0, barrierParams), all, bed_.segBase(i),
            /*regionOffset=*/0));
        // Under a fault plan, a barrier announcement written to a dead
        // peer is lost; re-announcing makes the barrier converge once
        // the peer recovers. Healthy runs keep the event-driven wait.
        if (bed_.faultsActive())
            barriers_.back()->enableReannounce(sim::usToTicks(50));
    }
}

Workload &
Workload::onEachNode(Fn fn)
{
    fn_ = std::move(fn);
    return *this;
}

sim::Counter &
Workload::NodeCtx::counter(const std::string &name)
{
    Workload &w = *wl_;
    const std::string full =
        w.scope_ + ".node" + std::to_string(node_) + "." + name;
    if (const auto *existing = w.bed_.sim().stats().counter(full))
        return *const_cast<sim::Counter *>(existing);
    w.counters_.emplace_back(w.bed_.sim().stats(), full,
                             "workload counter");
    return w.counters_.back();
}

sim::Histogram &
Workload::NodeCtx::histogram(const std::string &name)
{
    Workload &w = *wl_;
    const std::string full =
        w.scope_ + ".node" + std::to_string(node_) + "." + name;
    if (const auto *existing = w.bed_.sim().stats().histogram(full))
        return *const_cast<sim::Histogram *>(existing);
    w.histograms_.emplace_back(w.bed_.sim().stats(), full,
                               "workload histogram");
    return w.histograms_.back();
}

Workload &
Workload::setBackground(double fraction)
{
    if (fraction < 0.0 || fraction > 1.0)
        throw std::invalid_argument(
            "Workload: background fraction must be in [0, 1]");
    bgFraction_ = fraction;
    return *this;
}

sim::Task
Workload::nodeMain(std::uint32_t i)
{
    co_await barriers_[i]->arrive();
    if (i == 0)
        start_ = bed_.sim().now();
    const bool bg = bgFraction_ > 0.0 && bed_.nodes() >= 2;
    if (bg) {
        bgStop_[i] = 0;
        bgRunning_[i] = 1;
        bed_.spawn(bgMain(i));
    }
    co_await fn_(ctxs_[i]);
    if (bg) {
        // Stop and drain the background stream before arriving at the
        // finish barrier, so elapsed() never covers bg-only traffic.
        bgStop_[i] = 1;
        while (bgRunning_[i])
            co_await bgDone_.wait();
    }
    co_await barriers_[i]->arrive();
    if (i == 0)
        end_ = bed_.sim().now();
}

sim::Task
Workload::bgMain(std::uint32_t i)
{
    SessionParams params;
    params.qpCount = 1;
    params.doorbellBatching = false;
    RmcSession &s = bed_.newSession(i, 0, params);

    const std::uint32_t nodes = bed_.nodes();
    const std::uint32_t fgDepth = bed_.session(i).queueDepth();
    std::uint32_t window = static_cast<std::uint32_t>(
        bgFraction_ * static_cast<double>(fgDepth));
    window = std::max<std::uint32_t>(window, 1);
    window = std::min(window, s.queueDepth());

    sim::Counter &done = ctxs_[i].counter("bgOps");
    // One landing line per WQ slot: nextSlot() walks the whole ring,
    // not just the bg window.
    const vm::VAddr buf = s.allocBuffer(std::uint64_t(s.queueDepth()) *
                                        sim::kCacheLineBytes);
    // Target the first line past the barrier region: present in every
    // segment, and reads racing the foreground are harmless.
    const std::uint64_t off = Barrier::regionBytes(nodes);

    std::deque<OpHandle> inflight;
    std::uint64_t posted = 0;
    while (!bgStop_[i] || !inflight.empty()) {
        if (bgStop_[i] || inflight.size() >= window) {
            OpHandle h = inflight.front();
            inflight.pop_front();
            OpResult r = co_await h;
            // Under faults a background read may abort; swallow it —
            // background load must never turn a degraded run fatal.
            if (r.ok())
                done.inc();
            continue;
        }
        const auto peer = static_cast<sim::NodeId>(
            (i + 1 + posted % (nodes - 1)) % nodes);
        const std::uint32_t slot = s.nextSlot();
        OpHandle h = co_await s.readAsync(
            peer, off, buf + std::uint64_t(slot) * sim::kCacheLineBytes,
            sim::kCacheLineBytes);
        ++posted;
        inflight.push_back(h);
    }
    bgRunning_[i] = 0;
    bgDone_.notifyAll();
}

sim::Tick
Workload::run()
{
    if (!fn_)
        throw std::invalid_argument("Workload: onEachNode() not set");
    for (std::uint32_t i = 0; i < bed_.nodes(); ++i)
        bed_.spawn(nodeMain(i));
    const sim::Tick t = bed_.run();
    if (!bed_.sim().allRootsDone())
        throw std::runtime_error(
            "Workload: simulation quiesced with node coroutines still "
            "suspended — a permanent fault (dead node or link) left ops "
            "that can neither complete nor time out; give the plan a "
            "recovery event or enable a retry policy");
    return t;
}

} // namespace sonuma::api
