/**
 * @file
 * Per-node workload runtime.
 *
 * A Workload runs one application coroutine per node of a TestBed with
 * built-in barrier alignment and per-node statistics scoping:
 *
 *   Workload w(bed);
 *   w.onEachNode([&](Workload::NodeCtx &ctx) -> sim::Task {
 *       auto &s = ctx.session();
 *       ...
 *       co_await ctx.barrier();          // cluster-wide sync (§5.3)
 *       ctx.counter("reads").inc();      // "workload.node3.reads"
 *   });
 *   w.run();
 *   // w.elapsed() = ticks between global start and finish barriers
 *
 * Every node's body is bracketed by the one-sided barrier of §5.3, so
 * elapsed() measures the aligned region exactly the way the paper's
 * scaling studies time their supersteps. The barrier region occupies
 * the first Barrier::regionBytes(nodes) bytes of every node's context
 * segment; application data should start at ctx.dataOffset().
 */

#ifndef SONUMA_API_WORKLOAD_HH
#define SONUMA_API_WORKLOAD_HH

#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "api/barrier.hh"
#include "api/testbed.hh"
#include "sim/stats.hh"
#include "sim/sync.hh"

namespace sonuma::api {

/**
 * Opt-in capped-exponential-backoff retry policy for degraded-mode
 * runs: when a fabric fault aborts an op with kFabricError, a workload
 * body consults this to decide whether (and after how long) to repost.
 * Disabled (maxRetries == 0) the body should treat failures as fatal,
 * which keeps healthy-run behavior byte-identical.
 */
struct RetryPolicy
{
    std::uint32_t maxRetries = 0;            //!< 0 = fail fast (default)
    sim::Tick backoff = sim::usToTicks(5);   //!< first retry delay
    std::uint32_t capDoublings = 5;          //!< backoff cap = 2^cap * backoff

    bool enabled() const { return maxRetries > 0; }

    /** Deterministic backoff before retry number @p attempt (1-based). */
    sim::Tick
    delayFor(std::uint32_t attempt) const
    {
        const std::uint32_t shift =
            attempt > capDoublings ? capDoublings : attempt;
        return backoff << shift;
    }
};

class Workload
{
  public:
    /** Everything one node's coroutine needs. */
    class NodeCtx
    {
      public:
        std::uint32_t nodeId() const { return node_; }
        std::uint32_t nodes() const { return wl_->bed_.nodes(); }
        TestBed &bed() { return wl_->bed_; }
        sim::Simulation &sim() { return wl_->bed_.sim(); }

        /** This node's application session (TestBed primary). */
        RmcSession &session() { return wl_->bed_.session(node_); }

        vm::VAddr segBase() const { return wl_->bed_.segBase(node_); }

        /** First segment byte past the workload's barrier region. */
        std::uint64_t
        dataOffset() const
        {
            return Barrier::regionBytes(wl_->bed_.nodes());
        }

        /** Arrive at the cluster-wide one-sided barrier. */
        [[nodiscard]] sim::Task
        barrier()
        {
            return wl_->barriers_[node_]->arrive();
        }

        /** Node-scoped counter: "<scope>.node<i>.<name>". */
        sim::Counter &counter(const std::string &name);

        /** Node-scoped histogram: "<scope>.node<i>.<name>". */
        sim::Histogram &histogram(const std::string &name);

        /** The workload's retry policy (see Workload::setRetryPolicy). */
        const RetryPolicy &retry() const { return wl_->retry_; }

      private:
        friend class Workload;
        Workload *wl_ = nullptr;
        std::uint32_t node_ = 0;
    };

    using Fn = std::function<sim::Task(NodeCtx &)>;

    /**
     * @param bed the cluster to run on. Each node's context segment
     *        must be at least Barrier::regionBytes(bed.nodes()) bytes.
     * @param scope stat-name prefix (default "workload")
     */
    explicit Workload(TestBed &bed, std::string scope = "workload");

    /** Register the per-node body. */
    Workload &onEachNode(Fn fn);

    /** Opt in to op retries under faults (read via NodeCtx::retry()). */
    Workload &
    setRetryPolicy(const RetryPolicy &p)
    {
        retry_ = p;
        return *this;
    }

    /**
     * Run background traffic next to the body: each node spawns a
     * closed-loop stream of single-line reads round-robin over its
     * peers on a private one-QP session, windowed at max(1, fraction *
     * primary queueDepth). The stream starts after the start barrier
     * and drains before the node arrives at the finish barrier, so
     * elapsed() still brackets the foreground region. Completed reads
     * count in "<scope>.node<i>.bgOps"; failures under faults are
     * tolerated silently (background load must not turn a degraded
     * cell fatal). 0 disables (the default — no extra sessions, no
     * timing impact).
     */
    Workload &setBackground(double fraction);

    /**
     * Spawn one coroutine per node (bracketed by start/finish barriers)
     * and run the simulation to quiescence. Throws if the simulation
     * quiesces with node coroutines still suspended (a permanent fault
     * with no recovery/retry path). @return final tick.
     */
    sim::Tick run();

    /** Ticks between the global start and finish barriers. */
    sim::Tick elapsed() const { return end_ - start_; }

  private:
    friend class NodeCtx;

    TestBed &bed_;
    std::string scope_;
    Fn fn_;
    RetryPolicy retry_;
    std::vector<std::unique_ptr<Barrier>> barriers_;
    std::vector<NodeCtx> ctxs_;
    // Deques: stable addresses for registry-held stat pointers.
    std::deque<sim::Counter> counters_;
    std::deque<sim::Histogram> histograms_;
    sim::Tick start_ = 0;
    sim::Tick end_ = 0;

    // Background traffic (see setBackground). std::uint8_t, not bool:
    // these are per-node flags mutated across coroutines and
    // vector<bool>'s proxy references make that needlessly subtle.
    double bgFraction_ = 0.0;
    std::vector<std::uint8_t> bgStop_;
    std::vector<std::uint8_t> bgRunning_;
    sim::Condition bgDone_;

    sim::Task nodeMain(std::uint32_t i);
    sim::Task bgMain(std::uint32_t i);
};

} // namespace sonuma::api

#endif // SONUMA_API_WORKLOAD_HH
