/**
 * @file
 * Messaging library implementation (push/pull over one-sided ops).
 */

#include "api/messaging.hh"

#include <cassert>
#include <cstring>

#include "sim/log.hh"

namespace sonuma::api {

namespace {

constexpr std::uint64_t
roundUpLine(std::uint64_t v)
{
    return (v + sim::kCacheLineBytes - 1) & ~std::uint64_t(63);
}

} // namespace

std::uint64_t
MsgEndpoint::regionBytes(const MsgParams &params)
{
    return std::uint64_t(params.ringSlots) * sim::kCacheLineBytes +
           2 * sim::kCacheLineBytes + params.pullBufferBytes;
}

MsgEndpoint::MsgEndpoint(RmcSession &session, sim::NodeId peerNid,
                         vm::VAddr mySegmentBase,
                         std::uint64_t myRegionOffset,
                         std::uint64_t peerRegionOffset,
                         const MsgParams &params)
    : session_(session), peer_(peerNid), params_(params),
      sendCursor_(params.ringSlots), recvCursor_(params.ringSlots)
{
    const std::uint64_t ringBytes =
        std::uint64_t(params.ringSlots) * sim::kCacheLineBytes;

    myRing_ = mySegmentBase + myRegionOffset;
    myCredits_ = myRing_ + ringBytes;
    myPullAck_ = myCredits_ + sim::kCacheLineBytes;
    myStaging_ = myPullAck_ + sim::kCacheLineBytes;

    peerRingOff_ = peerRegionOffset;
    peerCreditsOff_ = peerRegionOffset + ringBytes;
    peerPullAckOff_ = peerCreditsOff_ + sim::kCacheLineBytes;
    peerStagingOff_ = peerPullAckOff_ + sim::kCacheLineBytes;

    // Local scratch: per-ring-slot staging lines for in-flight slot
    // writes, a landing zone for pull reads, and a line for counters.
    stagingLines_ = session_.allocBuffer(ringBytes);
    pullLanding_ = session_.allocBuffer(params.pullBufferBytes);
    creditLine_ = session_.allocBuffer(sim::kCacheLineBytes);
    ackLine_ = session_.allocBuffer(sim::kCacheLineBytes);
}

sim::Task
MsgEndpoint::acquireSendSlot()
{
    auto &as = session_.process().addressSpace();
    while (true) {
        // Credit check: the peer writes its cumulative consumed-slot
        // count into our credits line.
        co_await session_.core().load(myCredits_);
        const auto returned = as.readT<std::uint64_t>(myCredits_);
        if (slotsSent_ - returned < params_.ringSlots)
            co_return;
        co_await session_.rmc().remoteWriteEvent().wait();
    }
}

sim::Task
MsgEndpoint::postSlot(const Slot &slot)
{
    const std::uint32_t idx = sendCursor_.index();
    auto &as = session_.process().addressSpace();

    // Copy the slot into its staging line (the RGP reads the payload
    // from here when it unrolls the write).
    const vm::VAddr lineVa =
        stagingLines_ + std::uint64_t(idx) * sim::kCacheLineBytes;
    Slot stamped = slot;
    stamped.phase = sendCursor_.expectedPhase();
    co_await session_.core().store(lineVa);
    as.write(lineVa, &stamped, sizeof(stamped));

    co_await session_.writeAsync(
        peer_, peerRingOff_ + std::uint64_t(idx) * sim::kCacheLineBytes,
        lineVa, sim::kCacheLineBytes);
    // Fire-and-forget on a possibly doorbell-batched session: the
    // endpoint later blocks on remoteWriteEvent (not on a session
    // completion), so the automatic flush-on-block never runs. Ring
    // now or the peer never sees the slot.
    session_.flush();

    sendCursor_.advance();
    ++slotsSent_;
}

sim::Task
MsgEndpoint::sendPush(const void *data, std::uint32_t len, SlotKind kind,
                      std::uint64_t stagingOff)
{
    const auto *bytes = static_cast<const std::uint8_t *>(data);
    std::uint32_t sentBytes = 0;
    do {
        const std::uint32_t chunk =
            std::min<std::uint32_t>(kSlotPayload, len - sentBytes);
        co_await acquireSendSlot();

        Slot slot{};
        slot.kind = static_cast<std::uint8_t>(kind);
        slot.chunkLen = static_cast<std::uint16_t>(chunk);
        slot.msgLen = len;
        slot.stagingOff = stagingOff;
        if (bytes && chunk > 0)
            std::memcpy(slot.payload, bytes + sentBytes, chunk);

        // Packetization cost: a few cycles per chunk on the core.
        co_await session_.core().compute(8);
        co_await postSlot(slot);
        sentBytes += chunk;
    } while (sentBytes < len);
}

sim::Task
MsgEndpoint::sendPull(const void *data, std::uint32_t len)
{
    if (len > params_.pullBufferBytes)
        sim::fatal("message exceeds the pull staging buffer");
    auto &as = session_.process().addressSpace();
    const std::uint64_t need = roundUpLine(len);

    // Avoid wrapping a message across the staging buffer end.
    std::uint64_t cumOff = stagedBytes_;
    if ((cumOff % params_.pullBufferBytes) + need > params_.pullBufferBytes)
        cumOff += params_.pullBufferBytes -
                  (cumOff % params_.pullBufferBytes);

    // Flow control: wait until the receiver's cumulative ack frees room.
    while (true) {
        co_await session_.core().load(myPullAck_);
        const auto acked = as.readT<std::uint64_t>(myPullAck_);
        if (cumOff + need - acked <= params_.pullBufferBytes)
            break;
        co_await session_.rmc().remoteWriteEvent().wait();
    }

    // Stage the payload (a local memcpy: ~8 bytes per cycle).
    const vm::VAddr dst = myStaging_ + (cumOff % params_.pullBufferBytes);
    co_await session_.core().compute((need / 8));
    as.write(dst, data, len);
    stagedBytes_ = cumOff + need;

    // Push the descriptor; the receiver pulls and acks asynchronously.
    co_await acquireSendSlot();
    Slot desc{};
    desc.kind = static_cast<std::uint8_t>(kPullDesc);
    desc.chunkLen = 0;
    desc.msgLen = len;
    desc.stagingOff = cumOff;
    co_await session_.core().compute(8);
    co_await postSlot(desc);
}

sim::Task
MsgEndpoint::send(const void *data, std::uint32_t len)
{
    assert(len > 0);
    if (len <= params_.pushThreshold)
        co_await sendPush(data, len, kData, 0);
    else
        co_await sendPull(data, len);
    ++sent_;
}

sim::Task
MsgEndpoint::waitForSlotPhase(Slot *out)
{
    auto &as = session_.process().addressSpace();
    const vm::VAddr slotVa =
        myRing_ +
        std::uint64_t(recvCursor_.index()) * sim::kCacheLineBytes;
    while (true) {
        // Timed poll load first; the functional inspection and (on a
        // miss) the wait registration then happen in one synchronous
        // segment of the event loop, so a write landing during the load
        // cannot be lost between check and sleep.
        co_await session_.core().load(slotVa);
        Slot slot;
        as.read(slotVa, &slot, sizeof(slot));
        if (slot.phase == recvCursor_.expectedPhase()) {
            *out = slot;
            co_return;
        }
        co_await session_.rmc().remoteWriteEvent().wait();
    }
}

sim::Task
MsgEndpoint::returnCreditsIfDue()
{
    if (slotsConsumed_ - creditsReturnedAt_ < params_.ringSlots / 2)
        co_return;
    creditsReturnedAt_ = slotsConsumed_;
    auto &as = session_.process().addressSpace();
    co_await session_.core().store(creditLine_);
    as.writeT<std::uint64_t>(creditLine_, slotsConsumed_);
    co_await session_.writeAsync(peer_, peerCreditsOff_, creditLine_,
                                 sim::kCacheLineBytes);
    session_.flush(); // fire-and-forget credit return (see postSlot)
}

sim::Task
MsgEndpoint::receive(std::vector<std::uint8_t> *out)
{
    auto &as = session_.process().addressSpace();

    Slot first;
    co_await waitForSlotPhase(&first);
    recvCursor_.advance();
    ++slotsConsumed_;

    out->resize(first.msgLen);

    if (first.kind == kData) {
        std::uint32_t got = 0;
        if (first.chunkLen > 0) {
            std::memcpy(out->data(), first.payload, first.chunkLen);
            got = first.chunkLen;
        }
        while (got < first.msgLen) {
            Slot next;
            co_await waitForSlotPhase(&next);
            recvCursor_.advance();
            ++slotsConsumed_;
            assert(next.kind == kData && next.msgLen == first.msgLen);
            std::memcpy(out->data() + got, next.payload, next.chunkLen);
            got += next.chunkLen;
            // Return credits mid-message: a message longer than the
            // ring would otherwise deadlock against flow control.
            co_await returnCreditsIfDue();
        }
    } else {
        assert(first.kind == kPullDesc);
        // Pull the payload straight out of the sender's staging buffer.
        const std::uint64_t need = roundUpLine(first.msgLen);
        const std::uint64_t off =
            first.stagingOff % params_.pullBufferBytes;
        const OpResult pull = co_await session_.read(
            peer_, peerStagingOff_ + off, pullLanding_,
            static_cast<std::uint32_t>(need));
        if (!pull.ok())
            sim::fatal("pull read failed");
        as.read(pullLanding_, out->data(), first.msgLen);

        // Ack: cumulative bytes (line-rounded) pulled so far.
        pulledBytes_ = first.stagingOff + need;
        co_await session_.core().store(ackLine_);
        as.writeT<std::uint64_t>(ackLine_, pulledBytes_);
        co_await session_.writeAsync(peer_, peerPullAckOff_, ackLine_,
                                     sim::kCacheLineBytes);
        session_.flush(); // fire-and-forget pull ack (see postSlot)
    }

    co_await returnCreditsIfDue();
    ++received_;
}

} // namespace sonuma::api
