/**
 * @file
 * Page table and frame allocator implementation.
 */

#include "vm/page_table.hh"

#include <cassert>

#include "sim/log.hh"

namespace sonuma::vm {

FrameAllocator::FrameAllocator(mem::PAddr base, std::uint64_t size)
    : base_(base), totalFrames_(size / kPageBytes)
{
    assert(base % kPageBytes == 0 && "frame pool must be page aligned");
}

mem::PAddr
FrameAllocator::alloc()
{
    if (!freeList_.empty()) {
        mem::PAddr f = freeList_.back();
        freeList_.pop_back();
        ++allocated_;
        return f;
    }
    if (next_ >= totalFrames_)
        sim::fatal("physical memory exhausted: " +
                   std::to_string(totalFrames_) + " frames in pool");
    ++allocated_;
    return base_ + (next_++) * kPageBytes;
}

void
FrameAllocator::free(mem::PAddr frame)
{
    assert(frame % kPageBytes == 0);
    assert(allocated_ > 0);
    --allocated_;
    freeList_.push_back(frame);
}

PageTable::PageTable(mem::PhysMem &mem, FrameAllocator &frames)
    : mem_(mem), frames_(frames), root_(frames.alloc())
{
    mem_.fill(root_, 0, kPageBytes);
}

mem::PAddr
PageTable::allocNode()
{
    mem::PAddr node = frames_.alloc();
    mem_.fill(node, 0, kPageBytes);
    ++tableNodes_;
    return node;
}

std::uint32_t
PageTable::indexAt(std::uint32_t level, VAddr va)
{
    assert(level < kLevels);
    const std::uint32_t shift =
        kPageBits + (kLevels - 1 - level) * kLevelBits;
    return static_cast<std::uint32_t>((va >> shift) &
                                      ((1ull << kLevelBits) - 1));
}

mem::PAddr
PageTable::pteAddr(mem::PAddr tableBase, std::uint32_t level, VAddr va)
{
    return tableBase + std::uint64_t(indexAt(level, va)) * 8;
}

void
PageTable::map(VAddr va, mem::PAddr frame)
{
    assert(pageOffset(va) == 0 && "map requires page-aligned VA");
    assert(frame % kPageBytes == 0 && "map requires page-aligned frame");
    assert(va < (1ull << kVaBits) && "VA exceeds addressable range");

    mem::PAddr table = root_;
    for (std::uint32_t level = 0; level + 1 < kLevels; ++level) {
        const mem::PAddr slot = pteAddr(table, level, va);
        std::uint64_t pte = mem_.readT<std::uint64_t>(slot);
        if (!pteValid(pte)) {
            const mem::PAddr node = allocNode();
            pte = makePte(node);
            mem_.writeT<std::uint64_t>(slot, pte);
        }
        table = pteFrame(pte);
    }
    mem_.writeT<std::uint64_t>(pteAddr(table, kLevels - 1, va),
                               makePte(frame));
}

void
PageTable::unmap(VAddr va)
{
    assert(pageOffset(va) == 0);
    mem::PAddr table = root_;
    for (std::uint32_t level = 0; level + 1 < kLevels; ++level) {
        const std::uint64_t pte =
            mem_.readT<std::uint64_t>(pteAddr(table, level, va));
        if (!pteValid(pte))
            return;
        table = pteFrame(pte);
    }
    mem_.writeT<std::uint64_t>(pteAddr(table, kLevels - 1, va), 0);
}

std::optional<mem::PAddr>
PageTable::translate(VAddr va) const
{
    if (va >= (1ull << kVaBits))
        return std::nullopt;
    mem::PAddr table = root_;
    for (std::uint32_t level = 0; level < kLevels; ++level) {
        const std::uint64_t pte =
            mem_.readT<std::uint64_t>(pteAddr(table, level, va));
        if (!pteValid(pte))
            return std::nullopt;
        table = pteFrame(pte);
    }
    return table + pageOffset(va);
}

} // namespace sonuma::vm
