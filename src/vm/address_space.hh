/**
 * @file
 * A process's virtual address space: VA allocation + functional access.
 */

#ifndef SONUMA_VM_ADDRESS_SPACE_HH
#define SONUMA_VM_ADDRESS_SPACE_HH

#include <cstdint>
#include <string>

#include "mem/phys_mem.hh"
#include "vm/page_table.hh"

namespace sonuma::vm {

/**
 * Owns a page table plus a simple bump allocator over the VA range.
 *
 * Functional reads/writes here are the "backdoor" used by software models
 * to move bytes; timing for the same accesses is charged separately by
 * whoever owns the requester port (core or RMC pipeline).
 */
class AddressSpace
{
  public:
    AddressSpace(mem::PhysMem &mem, FrameAllocator &frames);

    /**
     * Allocate and map @p bytes (rounded up to whole pages) of zeroed
     * memory. @return the base VA of the region.
     */
    VAddr alloc(std::uint64_t bytes);

    /** Functional translation. Throws sim::FatalError on unmapped VA. */
    mem::PAddr translate(VAddr va) const;

    /** True if @p va is mapped. */
    bool mapped(VAddr va) const;

    /** Functional read crossing page boundaries as needed. */
    void read(VAddr va, void *dst, std::uint64_t len) const;

    /** Functional write crossing page boundaries as needed. */
    void write(VAddr va, const void *src, std::uint64_t len);

    template <typename T>
    T
    readT(VAddr va) const
    {
        T v;
        read(va, &v, sizeof(T));
        return v;
    }

    template <typename T>
    void
    writeT(VAddr va, const T &v)
    {
        write(va, &v, sizeof(T));
    }

    PageTable &pageTable() { return pt_; }
    const PageTable &pageTable() const { return pt_; }
    mem::PhysMem &phys() { return mem_; }

    /** Total bytes allocated through alloc(). */
    std::uint64_t allocatedBytes() const { return nextVa_ - kVaBase; }

  private:
    // Start user allocations away from 0 so that null-ish VAs fault.
    static constexpr VAddr kVaBase = 1ull << 20;

    mem::PhysMem &mem_;
    FrameAllocator &frames_;
    PageTable pt_;
    VAddr nextVa_ = kVaBase;
};

} // namespace sonuma::vm

#endif // SONUMA_VM_ADDRESS_SPACE_HH
