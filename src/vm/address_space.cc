/**
 * @file
 * Address space implementation.
 */

#include "vm/address_space.hh"

#include <algorithm>

#include "sim/log.hh"

namespace sonuma::vm {

AddressSpace::AddressSpace(mem::PhysMem &mem, FrameAllocator &frames)
    : mem_(mem), frames_(frames), pt_(mem, frames)
{
}

VAddr
AddressSpace::alloc(std::uint64_t bytes)
{
    const std::uint64_t pages =
        std::max<std::uint64_t>(1, (bytes + kPageBytes - 1) / kPageBytes);
    const VAddr base = nextVa_;
    for (std::uint64_t i = 0; i < pages; ++i) {
        const mem::PAddr frame = frames_.alloc();
        mem_.fill(frame, 0, kPageBytes);
        pt_.map(base + i * kPageBytes, frame);
    }
    nextVa_ += pages * kPageBytes;
    return base;
}

mem::PAddr
AddressSpace::translate(VAddr va) const
{
    auto pa = pt_.translate(va);
    if (!pa)
        sim::fatal("access to unmapped VA 0x" /* user bug */ +
                   std::to_string(va));
    return *pa;
}

bool
AddressSpace::mapped(VAddr va) const
{
    return pt_.translate(va).has_value();
}

void
AddressSpace::read(VAddr va, void *dst, std::uint64_t len) const
{
    auto *out = static_cast<std::uint8_t *>(dst);
    while (len > 0) {
        const std::uint64_t chunk =
            std::min<std::uint64_t>(len, kPageBytes - pageOffset(va));
        mem_.read(translate(va), out, chunk);
        va += chunk;
        out += chunk;
        len -= chunk;
    }
}

void
AddressSpace::write(VAddr va, const void *src, std::uint64_t len)
{
    const auto *in = static_cast<const std::uint8_t *>(src);
    while (len > 0) {
        const std::uint64_t chunk =
            std::min<std::uint64_t>(len, kPageBytes - pageOffset(va));
        mem_.write(translate(va), in, chunk);
        va += chunk;
        in += chunk;
        len -= chunk;
    }
}

} // namespace sonuma::vm
