/**
 * @file
 * Per-process page tables, stored in simulated physical memory.
 *
 * The paper's RMC walks the *same* page tables the OS manages (no state
 * replication into the device — the core argument of §4.3). To model that,
 * PTEs live in PhysMem as real bytes: the OS writes them here and the
 * RMC's hardware page walker (src/rmc/page_walker.*) reads them back
 * through its coherent L1.
 *
 * Geometry: 8 KB pages (Table 1), 3 levels, 10 index bits per level
 * (1024 x 8 B PTEs = one 8 KB page per table node), 43-bit VA.
 */

#ifndef SONUMA_VM_PAGE_TABLE_HH
#define SONUMA_VM_PAGE_TABLE_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "mem/phys_mem.hh"
#include "sim/types.hh"

namespace sonuma::vm {

/** Virtual address within one process. */
using VAddr = std::uint64_t;

inline constexpr std::uint32_t kPageBits = 13;           //!< 8 KB pages
inline constexpr std::uint64_t kPageBytes = 1ull << kPageBits;
inline constexpr std::uint32_t kLevelBits = 10;          //!< 1024 PTEs
inline constexpr std::uint32_t kLevels = 3;
inline constexpr std::uint64_t kVaBits = kPageBits + kLevels * kLevelBits;

/** Page-align helpers. */
constexpr VAddr
pageBase(VAddr va)
{
    return va & ~(kPageBytes - 1);
}

constexpr std::uint64_t
pageOffset(VAddr va)
{
    return va & (kPageBytes - 1);
}

/**
 * Physical-frame allocator for one node.
 *
 * Frames are 8 KB. Freed frames are recycled LIFO.
 */
class FrameAllocator
{
  public:
    /** @param base first allocatable physical address (page aligned)
     *  @param size bytes available for allocation */
    FrameAllocator(mem::PAddr base, std::uint64_t size);

    /** Allocate one frame. Throws sim::FatalError when exhausted. */
    mem::PAddr alloc();

    /** Return a frame to the pool. */
    void free(mem::PAddr frame);

    std::uint64_t allocated() const { return allocated_; }
    std::uint64_t capacityFrames() const { return totalFrames_; }

  private:
    mem::PAddr base_;
    std::uint64_t totalFrames_;
    std::uint64_t next_ = 0;
    std::uint64_t allocated_ = 0;
    std::vector<mem::PAddr> freeList_;
};

/**
 * A hierarchical page table rooted in physical memory.
 *
 * The PTE format: bit 0 = valid; bits [63:13] = frame base address.
 */
class PageTable
{
  public:
    PageTable(mem::PhysMem &mem, FrameAllocator &frames);

    /** Physical address of the root table (CT "PT root" field). */
    mem::PAddr root() const { return root_; }

    /** Map one page: @p va (page-aligned) -> @p frame (page-aligned). */
    void map(VAddr va, mem::PAddr frame);

    /** Remove the mapping for @p va if present. */
    void unmap(VAddr va);

    /** Functional translation (no timing). */
    std::optional<mem::PAddr> translate(VAddr va) const;

    /** Index of @p va at table level @p level (0 = root). */
    static std::uint32_t indexAt(std::uint32_t level, VAddr va);

    /**
     * Physical address of the PTE slot for @p va inside the table node at
     * @p tableBase / @p level. Used by the hardware walker to issue its
     * per-level memory reads.
     */
    static mem::PAddr pteAddr(mem::PAddr tableBase, std::uint32_t level,
                              VAddr va);

    /** Decode a raw PTE: valid bit and next-level/frame base. */
    static bool pteValid(std::uint64_t pte) { return pte & 1ull; }

    static mem::PAddr
    pteFrame(std::uint64_t pte)
    {
        return pte & ~((1ull << kPageBits) - 1);
    }

    /** Encode a PTE. */
    static std::uint64_t
    makePte(mem::PAddr frame)
    {
        return frame | 1ull;
    }

    /** Number of table nodes allocated (root included). */
    std::uint64_t tableNodes() const { return tableNodes_; }

  private:
    mem::PhysMem &mem_;
    FrameAllocator &frames_;
    mem::PAddr root_;
    std::uint64_t tableNodes_ = 1;

    mem::PAddr allocNode();
};

} // namespace sonuma::vm

#endif // SONUMA_VM_PAGE_TABLE_HH
