/**
 * @file
 * Coherent cache hierarchy implementation.
 */

#include "mem/cache.hh"

#include <algorithm>
#include <cassert>

#include "sim/log.hh"

namespace sonuma::mem {

//
// ------------------------------- L1 -----------------------------------
//

L1Cache::L1Cache(sim::EventQueue &eq, sim::StatRegistry &stats,
                 std::string name, const CacheParams &params, L2Cache &l2)
    : eq_(eq), name_(std::move(name)), params_(params), l2_(l2),
      hits_(stats, name_ + ".hits", "L1 hits"),
      misses_(stats, name_ + ".misses", "L1 misses"),
      writebacks_(stats, name_ + ".writebacks", "L1 dirty evictions"),
      probes_(stats, name_ + ".probes", "coherence probes received"),
      upgrades_(stats, name_ + ".upgrades", "S->M upgrade requests")
{
    const std::uint64_t lines = params_.sizeBytes / sim::kCacheLineBytes;
    numSets_ = static_cast<std::uint32_t>(lines / params_.assoc);
    assert(numSets_ > 0 && "L1 too small for its associativity");
    sets_.resize(numSets_, std::vector<LineInfo>(params_.assoc));
    mshrs_.resize(params_.mshrs);
    // Reserve steady-state capacities up front: waiter lists are
    // bounded by the concurrent accesses that can merge on one line,
    // putbacks by the transactions in flight. Exceeding a reservation
    // still works — it just pays one amortized growth.
    for (auto &m : mshrs_)
        m.waiters.reserve(2 * params_.mshrs);
    fillScratch_.reserve(2 * params_.mshrs);
    pendingPutbacks_.reserve(params_.mshrs);
    l1Id_ = l2_.registerL1(this);
}

L1Cache::Mshr *
L1Cache::findMshr(PAddr line)
{
    for (auto &m : mshrs_) {
        if (m.busy && m.line == line)
            return &m;
    }
    return nullptr;
}

bool
L1Cache::pendingPutback(PAddr line) const
{
    for (const PAddr p : pendingPutbacks_) {
        if (p == line)
            return true;
    }
    return false;
}

void
L1Cache::erasePendingPutback(PAddr line)
{
    for (auto &p : pendingPutbacks_) {
        if (p == line) {
            p = pendingPutbacks_.back();
            pendingPutbacks_.pop_back();
            return;
        }
    }
}

std::uint32_t
L1Cache::setOf(PAddr line) const
{
    return static_cast<std::uint32_t>((line / sim::kCacheLineBytes) %
                                      numSets_);
}

L1Cache::LineInfo *
L1Cache::findLine(PAddr line)
{
    for (auto &way : sets_[setOf(line)]) {
        if (way.valid && way.tag == line)
            return &way;
    }
    return nullptr;
}

L1Cache::LineInfo *
L1Cache::allocLine(PAddr line)
{
    if (LineInfo *existing = findLine(line))
        return existing; // upgrade fill: line already resident

    auto &set = sets_[setOf(line)];
    LineInfo *victim = nullptr;
    for (auto &way : set) {
        if (!way.valid) {
            victim = &way;
            break;
        }
    }
    if (!victim) {
        for (auto &way : set) {
            // Never victimize a line with an outstanding transaction.
            if (findMshr(way.tag))
                continue;
            if (!victim || way.lastUse < victim->lastUse)
                victim = &way;
        }
    }
    assert(victim && "no evictable way (all have pending MSHRs)");

    if (victim->valid && victim->state == State::kModified) {
        writebacks_.inc();
        pendingPutbacks_.push_back(victim->tag);
        l2_.putback(l1Id_, victim->tag);
    }
    victim->valid = false;
    victim->state = State::kInvalid;
    victim->tag = line;
    return victim;
}

void
L1Cache::access(PAddr addr, bool write, sim::Callback done)
{
    accessImpl(addr, write, false, std::move(done));
}

void
L1Cache::accessFullLineWrite(PAddr addr, sim::Callback done)
{
    accessImpl(addr, true, true, std::move(done));
}

void
L1Cache::accessImpl(PAddr addr, bool write, bool fullLine,
                    sim::Callback done)
{
    const std::uint32_t slot = accessSlots_.put(
        PendingAccess{lineOf(addr), write, fullLine, std::move(done)});
    eq_.scheduleAfter(params_.latency(), [this, slot] { fireAccess(slot); });
}

void
L1Cache::fireAccess(std::uint32_t slot)
{
    PendingAccess p = accessSlots_.take(slot);
    const PAddr line = p.addr;
    LineInfo *info = findLine(line);
    const bool read_hit = info && !p.write;
    const bool write_hit = info && p.write &&
                           info->state == State::kModified;
    if (read_hit || write_hit) {
        hits_.inc();
        info->lastUse = eq_.now();
        p.done();
        return;
    }
    if (info && p.write && info->state == State::kShared)
        upgrades_.inc();
    misses_.inc();
    startMiss(line, p.write, p.fullLine, std::move(p.done));
}

void
L1Cache::startMiss(PAddr line, bool write, bool fullLine,
                   sim::Callback done)
{
    if (Mshr *hit = findMshr(line)) {
        // Merge into the outstanding transaction; incompatible waiters
        // (writes joining a read request) are retried after the fill.
        hit->waiters.emplace_back(write, std::move(done));
        return;
    }
    if (mshrsInUse_ >= params_.mshrs) {
        blocked_.push(
            PendingAccess{line, write, fullLine, std::move(done)});
        return;
    }
    Mshr *mshr = nullptr;
    for (auto &m : mshrs_) {
        if (!m.busy) {
            mshr = &m;
            break;
        }
    }
    assert(mshr && "mshrsInUse_ disagrees with the slot table");
    mshr->busy = true;
    mshr->line = line;
    mshr->write = write;
    mshr->waiters.emplace_back(write, std::move(done));
    ++mshrsInUse_;
    l2_.request(l1Id_, line, write, fullLine,
                [this, line, write] { handleFill(line, write); });
}

void
L1Cache::handleFill(PAddr line, bool grantedWrite)
{
    LineInfo *info = allocLine(line);
    info->valid = true;
    info->state = grantedWrite ? State::kModified : State::kShared;
    info->lastUse = eq_.now();

    Mshr *mshr = findMshr(line);
    assert(mshr);
    // Free the slot before draining its waiters: a waiter retry or
    // retryBlocked() below may start a fresh transaction on this same
    // line. Waiters move into a scratch list so both vectors keep
    // their own (reserved) capacity.
    fillScratch_.clear();
    for (auto &w : mshr->waiters)
        fillScratch_.push_back(std::move(w));
    mshr->waiters.clear();
    mshr->busy = false;
    --mshrsInUse_;
    for (auto &[w, cb] : fillScratch_) {
        if (!w || grantedWrite) {
            cb();
        } else {
            // A write waiter on a read fill: retry as an upgrade.
            access(line, true, std::move(cb));
        }
    }
    retryBlocked();
}

void
L1Cache::retryBlocked()
{
    // Retry only the entries present now; anything re-blocked by these
    // retries lands behind them and keeps its relative order.
    std::size_t n = blocked_.size();
    while (n-- > 0) {
        PendingAccess p = blocked_.popFront();
        startMiss(p.addr, p.write, p.fullLine, std::move(p.done));
    }
}

bool
L1Cache::handleProbe(PAddr line, bool invalidate)
{
    probes_.inc();
    if (pendingPutback(line)) {
        // Our PutM is in flight; answer the probe as the dirty owner.
        erasePendingPutback(line);
        return true;
    }
    LineInfo *info = findLine(line);
    if (!info)
        return false;
    const bool wasDirty = info->state == State::kModified;
    if (invalidate) {
        info->valid = false;
        info->state = State::kInvalid;
    } else if (wasDirty) {
        info->state = State::kShared;
    }
    return wasDirty;
}

//
// ------------------------------- L2 -----------------------------------
//

L2Cache::L2Cache(sim::EventQueue &eq, sim::StatRegistry &stats,
                 std::string name, const Params &params, DramChannel &dram)
    : eq_(eq), name_(std::move(name)), params_(params), dram_(dram),
      hits_(stats, name_ + ".hits", "L2 hits"),
      misses_(stats, name_ + ".misses", "L2 misses"),
      c2c_(stats, name_ + ".c2cTransfers", "cache-to-cache transfers"),
      evictions_(stats, name_ + ".evictions", "L2 evictions"),
      dramRetries_(stats, name_ + ".dramRetries", "DRAM queue-full retries")
{
    const std::uint64_t lines = params_.sizeBytes / sim::kCacheLineBytes;
    numSets_ = static_cast<std::uint32_t>(lines / params_.assoc);
    assert(numSets_ > 0);
    setFill_.resize(numSets_);
    // A set's fill list tops out at the associativity; reserving it now
    // keeps first-touch line installs off the allocator.
    for (auto &f : setFill_)
        f.reserve(params_.assoc);
    // Directory sizing derives from the cache capacity: pre-size the
    // flat map so a fully resident L2 (at most `lines` tracked entries)
    // reaches its steady state without rehashing. 2x covers the 0.7
    // load factor; the clamp bounds host memory for large L2s in
    // many-hundred-node sweeps (beyond it the map still grows on
    // demand, an amortized warm-up cost).
    lines_ = sim::FlatMap<PAddr, DirEntry>(
        std::min<std::uint64_t>(2 * lines, 65536));
}

int
L2Cache::registerL1(L1Cache *l1)
{
    l1s_.push_back(l1);
    assert(l1s_.size() <= 32 && "directory bitmask limited to 32 L1s");
    // Grow the lock table past this L1's worst-case contribution to
    // concurrent transactions (its MSHRs plus in-flight putbacks), so
    // steady-state locking never constructs a new entry whatever the
    // core count or MSHR depth.
    locks_.resize(locks_.size() + 2 * l1->params_.mshrs);
    return static_cast<int>(l1s_.size()) - 1;
}

std::uint32_t
L2Cache::setOf(PAddr line) const
{
    return static_cast<std::uint32_t>((line / sim::kCacheLineBytes) %
                                      numSets_);
}

L2Cache::LockEntry *
L2Cache::findLock(PAddr line)
{
    for (auto &e : locks_) {
        if (e.inUse && e.line == line)
            return &e;
    }
    return nullptr;
}

bool
L2Cache::lockLine(PAddr line, PendingReq req)
{
    if (LockEntry *held = findLock(line)) {
        held->waiting.push(std::move(req));
        return false;
    }
    LockEntry *free = nullptr;
    for (auto &e : locks_) {
        if (!e.inUse) {
            free = &e;
            break;
        }
    }
    if (!free) {
        locks_.emplace_back();
        free = &locks_.back();
    }
    free->inUse = true;
    free->line = line;
    const std::uint32_t slot =
        reqSlots_.put(ParkedReq{line, std::move(req)});
    eq_.scheduleAfter(params_.latency(),
                      [this, slot] { fireProcess(slot); });
    return true;
}

void
L2Cache::fireProcess(std::uint32_t slot)
{
    ParkedReq parked = reqSlots_.take(slot);
    process(parked.line, std::move(parked.req));
}

void
L2Cache::unlockLine(PAddr line)
{
    LockEntry *held = findLock(line);
    assert(held && "unlock of a line that was never locked");
    if (held->waiting.empty()) {
        held->inUse = false; // slot recycles for the next locked line
        return;
    }
    // Hand the lock straight to the next waiter (the entry stays
    // inUse), scheduling its processing exactly as lockLine would.
    PendingReq next = held->waiting.popFront();
    const std::uint32_t slot =
        reqSlots_.put(ParkedReq{line, std::move(next)});
    eq_.scheduleAfter(params_.latency(),
                      [this, slot] { fireProcess(slot); });
}

void
L2Cache::request(int requester, PAddr line, bool write, bool fullLine,
                 sim::Callback done)
{
    lockLine(line,
             PendingReq{requester, write, fullLine, false, std::move(done)});
}

void
L2Cache::putback(int requester, PAddr line)
{
    lockLine(line, PendingReq{requester, false, false, true, nullptr});
}

void
L2Cache::process(PAddr line, PendingReq req)
{
    DirEntry *entry = lines_.find(line);

    if (req.isPutback) {
        if (entry && entry->owner == req.requester) {
            entry->owner = -1;
            entry->sharers |= 1u << req.requester;
            entry->dirtyInL2 = true;
            entry->lastUse = eq_.now();
        }
        // Stale putbacks (owner already changed by a probe) are dropped.
        l1s_[static_cast<std::size_t>(req.requester)]
            ->erasePendingPutback(line);
        unlockLine(line);
        return;
    }

    if (entry) {
        hits_.inc();
        finishRequest(line, req);
        return;
    }

    misses_.inc();
    const std::uint32_t slot =
        reqSlots_.put(ParkedReq{line, std::move(req)});
    ensureCapacity(line, slot);
}

void
L2Cache::fillMissingLine(PAddr line, std::uint32_t slot)
{
    const PendingReq &req = reqSlots_.peek(slot).req;
    if (req.fullLine && req.write) {
        // The requester overwrites the entire line: allocate without
        // fetching stale bytes from DRAM (RMC line-wide interface).
        installLine(line, slot);
    } else {
        fetchFromDram(line, slot);
    }
}

void
L2Cache::installLine(PAddr line, std::uint32_t slot)
{
    ParkedReq parked = reqSlots_.take(slot);
    DirEntry entry;
    entry.lastUse = eq_.now();
    entry.dirtyInL2 = parked.req.fullLine; // write-validate allocation
    lines_.insert(line, entry);
    setFill_[setOf(line)].push_back(line);
    finishRequest(line, parked.req);
}

void
L2Cache::finishRequest(PAddr line, PendingReq &req)
{
    DirEntry &dir = lines_.get(line);
    dir.lastUse = eq_.now();

    bool probed = false;
    const std::uint32_t reqBit = 1u << req.requester;

    if (req.write) {
        // GetM: invalidate every other copy.
        for (std::size_t i = 0; i < l1s_.size(); ++i) {
            const std::uint32_t bit = 1u << i;
            const bool holds = (dir.sharers & bit) ||
                               dir.owner == static_cast<int>(i);
            if (!holds || static_cast<int>(i) == req.requester)
                continue;
            probed = true;
            if (l1s_[i]->handleProbe(line, true)) {
                dir.dirtyInL2 = true;
                c2c_.inc();
            }
        }
        dir.sharers = 0;
        dir.owner = req.requester;
    } else {
        // GetS: downgrade a remote owner if present.
        if (dir.owner != -1 && dir.owner != req.requester) {
            probed = true;
            if (l1s_[static_cast<std::size_t>(dir.owner)]->handleProbe(
                    line, false)) {
                dir.dirtyInL2 = true;
                c2c_.inc();
            }
            dir.sharers |= 1u << dir.owner;
            dir.owner = -1;
        } else if (dir.owner == req.requester) {
            // Read request from the current owner (e.g. after a silent
            // state downgrade we never see). Keep ownership.
        }
        dir.sharers |= reqBit;
    }

    const sim::Tick extra = probed ? params_.probeLatency() : 0;
    const std::uint32_t slot =
        reqSlots_.put(ParkedReq{line, std::move(req)});
    eq_.scheduleAfter(extra, [this, slot] { fireCompletion(slot); });
}

void
L2Cache::fireCompletion(std::uint32_t slot)
{
    ParkedReq parked = reqSlots_.take(slot);
    if (parked.req.done)
        parked.req.done();
    unlockLine(parked.line);
}

void
L2Cache::ensureCapacity(PAddr line, std::uint32_t slot)
{
    auto &fill = setFill_[setOf(line)];
    if (fill.size() < params_.assoc) {
        fillMissingLine(line, slot);
        return;
    }

    // Evict the LRU line in the set that is not locked or awaited.
    PAddr victim = 0;
    bool found = false;
    sim::Tick best = 0;
    for (PAddr cand : fill) {
        if (findLock(cand))
            continue;
        const sim::Tick use = lines_.get(cand).lastUse;
        if (!found || use < best) {
            victim = cand;
            best = use;
            found = true;
        }
    }
    if (!found) {
        // Every line in the set is mid-transaction; retry shortly.
        eq_.scheduleAfter(params_.latency(), [this, line, slot] {
            ensureCapacity(line, slot);
        });
        return;
    }

    evictions_.inc();
    DirEntry &dir = lines_.get(victim);
    // Inclusive hierarchy: back-invalidate all L1 copies.
    for (std::size_t i = 0; i < l1s_.size(); ++i) {
        const std::uint32_t bit = 1u << i;
        const bool holds = (dir.sharers & bit) ||
                           dir.owner == static_cast<int>(i);
        if (holds && l1s_[i]->handleProbe(victim, true))
            dir.dirtyInL2 = true;
    }
    if (dir.dirtyInL2)
        writebackToDram(victim);
    lines_.erase(victim);
    fill.erase(std::find(fill.begin(), fill.end(), victim));
    fillMissingLine(line, slot);
}

void
L2Cache::fetchFromDram(PAddr line, std::uint32_t slot)
{
    if (dram_.full()) {
        dramRetries_.inc();
        eq_.scheduleAfter(dram_.params().busTransfer, [this, line, slot] {
            fetchFromDram(line, slot);
        });
        return;
    }
    dram_.access(line, false, [this, line, slot] {
        installLine(line, slot);
    });
}

void
L2Cache::writebackToDram(PAddr line)
{
    if (!dram_.access(line, true, nullptr)) {
        dramRetries_.inc();
        eq_.scheduleAfter(dram_.params().busTransfer,
                          [this, line] { writebackToDram(line); });
    }
}

} // namespace sonuma::mem
