/**
 * @file
 * DDR3-1600 single-channel DRAM timing model (DRAMSim2 substitute).
 *
 * Models the two properties the paper's results rest on (Table 1):
 * ~60 ns loaded access latency and 12.8 GB/s peak channel bandwidth with a
 * ~9.6 GB/s practical streaming ceiling. The model tracks per-bank open
 * rows (row-buffer hits vs. misses), a shared data bus, and uses FR-FCFS
 * scheduling (row hits first, then oldest).
 */

#ifndef SONUMA_MEM_DRAM_HH
#define SONUMA_MEM_DRAM_HH

#include <cstdint>
#include <string>
#include <vector>

#include "mem/phys_mem.hh"
#include "sim/callback.hh"
#include "sim/ring_buffer.hh"
#include "sim/event_queue.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace sonuma::mem {

/** Configuration for the DRAM channel (defaults: DDR3-1600, 1 channel). */
struct DramParams
{
    std::uint32_t banks = 8;
    std::uint32_t rowBytes = 8192;        //!< row-buffer size per bank
    sim::Tick tRcd = sim::nsToTicks(13.75);  //!< activate -> column
    sim::Tick tCas = sim::nsToTicks(13.75);  //!< column -> first data
    sim::Tick tRp = sim::nsToTicks(13.75);   //!< precharge
    sim::Tick busTransfer = sim::nsToTicks(5.0); //!< 64 B @ 12.8 GB/s
    sim::Tick controllerDelay = sim::nsToTicks(10.0); //!< queue+ctrl fixed
    std::uint32_t queueDepth = 64;        //!< max in-flight requests
};

/**
 * A single DRAM channel servicing 64-byte accesses.
 *
 * Requests complete via callback; reads and writes share bank/bus timing
 * (write data is posted — the caller does not wait for the write recovery).
 */
class DramChannel
{
  public:
    DramChannel(sim::EventQueue &eq, sim::StatRegistry &stats,
                const std::string &name, const DramParams &params = {});

    /**
     * Issue a 64-byte access at physical address @p addr.
     *
     * @param write true for a write (callback fires when data is accepted)
     * @param done completion callback (may be null for posted writes)
     * @retval false if the controller queue is full (caller must retry).
     */
    bool access(PAddr addr, bool write, sim::Callback done);

    /** True if a new request would be rejected. */
    bool full() const { return queue_.size() >= params_.queueDepth; }

    std::size_t queuedRequests() const { return queue_.size(); }

    const DramParams &params() const { return params_; }

    /** Fraction of elapsed time the data bus was busy. */
    double busUtilization() const;

  private:
    struct Request
    {
        PAddr addr = 0;
        bool write = false;
        sim::Callback done;
        sim::Tick arrival = 0;
    };

    struct Bank
    {
        bool rowOpen = false;
        std::uint64_t openRow = 0;
        sim::Tick readyAt = 0; //!< earliest next activate/column command
    };

    sim::EventQueue &eq_;
    DramParams params_;
    std::vector<Bank> banks_;
    std::vector<Request> queue_;
    sim::Tick busBusyUntil_ = 0;
    sim::Tick busBusyTotal_ = 0;
    bool drainScheduled_ = false;

    sim::Counter reads_;
    sim::Counter writes_;
    sim::Counter rowHits_;
    sim::Counter rowMisses_;
    sim::Histogram latency_;

    std::uint32_t bankOf(PAddr addr) const;
    std::uint64_t rowOf(PAddr addr) const;
    void scheduleDrain(sim::Tick when);
    void drain();
};

} // namespace sonuma::mem

#endif // SONUMA_MEM_DRAM_HH
