/**
 * @file
 * Sparse physical memory implementation.
 */

#include "mem/phys_mem.hh"

#include <algorithm>

#include "sim/log.hh"

namespace sonuma::mem {

PhysMem::PhysMem(std::uint64_t size) : size_(size) {}

void
PhysMem::checkRange(PAddr addr, std::uint64_t len) const
{
    if (addr + len > size_ || addr + len < addr) {
        sim::panic("PhysMem access out of range: addr=" +
                   std::to_string(addr) + " len=" + std::to_string(len) +
                   " size=" + std::to_string(size_));
    }
}

std::uint8_t *
PhysMem::chunkFor(PAddr addr) const
{
    const std::uint64_t idx = addr / kChunkBytes;
    auto it = chunks_.find(idx);
    if (it == chunks_.end()) {
        auto buf = std::make_unique<std::uint8_t[]>(kChunkBytes);
        std::memset(buf.get(), 0, kChunkBytes);
        it = chunks_.emplace(idx, std::move(buf)).first;
    }
    return it->second.get();
}

void
PhysMem::read(PAddr addr, void *dst, std::uint64_t len) const
{
    checkRange(addr, len);
    auto *out = static_cast<std::uint8_t *>(dst);
    while (len > 0) {
        const std::uint64_t off = addr % kChunkBytes;
        const std::uint64_t n = std::min(len, kChunkBytes - off);
        std::memcpy(out, chunkFor(addr) + off, n);
        addr += n;
        out += n;
        len -= n;
    }
}

void
PhysMem::write(PAddr addr, const void *src, std::uint64_t len)
{
    checkRange(addr, len);
    const auto *in = static_cast<const std::uint8_t *>(src);
    while (len > 0) {
        const std::uint64_t off = addr % kChunkBytes;
        const std::uint64_t n = std::min(len, kChunkBytes - off);
        std::memcpy(chunkFor(addr) + off, in, n);
        addr += n;
        in += n;
        len -= n;
    }
}

std::uint64_t
PhysMem::fetchAdd64(PAddr addr, std::uint64_t operand)
{
    const auto old = readT<std::uint64_t>(addr);
    writeT<std::uint64_t>(addr, old + operand);
    return old;
}

std::uint64_t
PhysMem::compareSwap64(PAddr addr, std::uint64_t expected,
                       std::uint64_t desired)
{
    const auto old = readT<std::uint64_t>(addr);
    if (old == expected)
        writeT<std::uint64_t>(addr, desired);
    return old;
}

void
PhysMem::fill(PAddr addr, std::uint8_t byte, std::uint64_t len)
{
    checkRange(addr, len);
    while (len > 0) {
        const std::uint64_t off = addr % kChunkBytes;
        const std::uint64_t n = std::min(len, kChunkBytes - off);
        std::memset(chunkFor(addr) + off, byte, n);
        addr += n;
        len -= n;
    }
}

} // namespace sonuma::mem
