/**
 * @file
 * Functional physical memory with sparse backing storage.
 *
 * The simulator follows a functional/timing split (DESIGN.md §5.2): payload
 * bytes live here; caches and DRAM only model *when* accesses complete.
 * Backing store is chunked so simulating nodes with multi-GB address
 * spaces does not reserve host memory up front.
 */

#ifndef SONUMA_MEM_PHYS_MEM_HH
#define SONUMA_MEM_PHYS_MEM_HH

#include <array>
#include <cstdint>
#include <cstring>
#include <memory>
#include <unordered_map>
#include <vector>

#include "sim/types.hh"

namespace sonuma::mem {

/** Physical address within one node. */
using PAddr = std::uint64_t;

/**
 * Sparse byte-addressable physical memory for one node.
 *
 * All functional reads/writes go through here; an untouched chunk reads
 * as zero, matching zero-initialized DRAM semantics.
 */
class PhysMem
{
  public:
    /** @param size physical memory size in bytes (bounds-checked). */
    explicit PhysMem(std::uint64_t size);

    std::uint64_t size() const { return size_; }

    /** Functional read of @p len bytes at @p addr into @p dst. */
    void read(PAddr addr, void *dst, std::uint64_t len) const;

    /** Functional write of @p len bytes from @p src to @p addr. */
    void write(PAddr addr, const void *src, std::uint64_t len);

    /** Typed convenience accessors. */
    template <typename T>
    T
    readT(PAddr addr) const
    {
        T v;
        read(addr, &v, sizeof(T));
        return v;
    }

    template <typename T>
    void
    writeT(PAddr addr, const T &v)
    {
        write(addr, &v, sizeof(T));
    }

    /**
     * Atomic (functional) fetch-and-add on a 64-bit word. Timing-level
     * atomicity is enforced by the requester (coherence + single-threaded
     * event loop); this performs the combined update at one event point.
     */
    std::uint64_t fetchAdd64(PAddr addr, std::uint64_t operand);

    /** Atomic compare-and-swap on a 64-bit word. @return the old value. */
    std::uint64_t compareSwap64(PAddr addr, std::uint64_t expected,
                                std::uint64_t desired);

    /** Fill @p len bytes with @p byte. */
    void fill(PAddr addr, std::uint8_t byte, std::uint64_t len);

  private:
    static constexpr std::uint64_t kChunkBytes = 1ull << 20; // 1 MiB

    std::uint64_t size_;
    mutable std::unordered_map<std::uint64_t,
                               std::unique_ptr<std::uint8_t[]>> chunks_;

    std::uint8_t *chunkFor(PAddr addr) const;
    void checkRange(PAddr addr, std::uint64_t len) const;
};

} // namespace sonuma::mem

#endif // SONUMA_MEM_PHYS_MEM_HH
