/**
 * @file
 * Node-local coherent cache hierarchy (timing model).
 *
 * Per node: any number of private L1 caches (one per core, plus one for
 * the RMC — the paper's key integration point) backed by a shared,
 * inclusive L2 with a full-map directory. MESI-reduced MSI states per L1
 * line; coherence transactions serialize per line at the L2, which keeps
 * the protocol race-free while preserving the latency behaviour that
 * matters (cache-to-cache transfers for queue-pair polling).
 *
 * Functional data lives in PhysMem (see DESIGN.md); these classes model
 * timing only.
 */

#ifndef SONUMA_MEM_CACHE_HH
#define SONUMA_MEM_CACHE_HH

#include <coroutine>
#include <cstdint>
#include <string>
#include <vector>

#include "mem/dram.hh"
#include "sim/callback.hh"
#include "sim/flat_map.hh"
#include "sim/slot_pool.hh"
#include "mem/phys_mem.hh"
#include "sim/event_queue.hh"
#include "sim/ring_buffer.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace sonuma::mem {

class L2Cache;

/** Cache geometry/timing configuration. */
struct CacheParams
{
    std::uint64_t sizeBytes = 32 * 1024;
    std::uint32_t assoc = 2;
    std::uint32_t latencyCycles = 3;  //!< tag+data access
    std::uint32_t mshrs = 32;
    double freqGhz = 2.0;

    sim::Tick
    latency() const
    {
        return sim::Clock(freqGhz).cycles(latencyCycles);
    }
};

/**
 * A private L1 cache (write-back, write-allocate) attached to an L2.
 *
 * All accesses are at cache-line granularity; callers align/split.
 * Completion is via callback after the full coherence transaction.
 */
class L1Cache
{
  public:
    L1Cache(sim::EventQueue &eq, sim::StatRegistry &stats, std::string name,
            const CacheParams &params, L2Cache &l2);

    L1Cache(const L1Cache &) = delete;
    L1Cache &operator=(const L1Cache &) = delete;

    /**
     * Timed access to the line containing @p addr.
     *
     * @param write true to acquire write (M) permission
     * @param done fires when the access commits
     */
    void access(PAddr addr, bool write, sim::Callback done);

    /**
     * Timed full-line store (the RMC's cache-line-wide interface,
     * paper §4.3). Like a write access, but an L2 miss allocates the
     * line without fetching stale data from DRAM since every byte is
     * overwritten ("write-validate").
     */
    void accessFullLineWrite(PAddr addr, sim::Callback done);

    /** Awaitable wrapper for coroutine users. */
    auto
    accessAwait(PAddr addr, bool write)
    {
        struct AccessAwaiter
        {
            L1Cache &cache;
            PAddr addr;
            bool write;

            bool await_ready() const noexcept { return false; }

            void
            await_suspend(std::coroutine_handle<> h)
            {
                cache.access(addr, write, [h] { h.resume(); });
            }

            void await_resume() const noexcept {}
        };
        return AccessAwaiter{*this, addr, write};
    }

    /** Number of in-flight MSHRs (for tests). */
    std::size_t inflight() const { return mshrsInUse_; }

    const std::string &name() const { return name_; }
    std::uint64_t hits() const { return hits_.value(); }
    std::uint64_t misses() const { return misses_.value(); }

  private:
    friend class L2Cache;

    enum class State : std::uint8_t { kInvalid, kShared, kModified };

    struct LineInfo
    {
        PAddr tag = 0;
        State state = State::kInvalid;
        sim::Tick lastUse = 0;
        bool valid = false;
    };

    /**
     * Miss-status holding register. Fixed slots (params.mshrs of them,
     * linear-scanned — the hardware's CAM): an unordered_map here would
     * allocate a node per miss, and queue-pair polling makes misses the
     * steady state. The waiters vector keeps its capacity across reuse.
     */
    struct Mshr
    {
        bool busy = false;
        PAddr line = 0;
        bool write = false;               //!< permission being requested
        std::vector<std::pair<bool, sim::Callback>> waiters;
    };

    void accessImpl(PAddr addr, bool write, bool fullLine,
                    sim::Callback done);

    /**
     * A timed access parked while its L1 latency elapses (or while all
     * MSHRs are busy). Slot-table storage keeps the scheduled event's
     * capture at {this, slot} so it stays inline in sim::Callback.
     */
    struct PendingAccess
    {
        PAddr addr = 0;
        bool write = false;
        bool fullLine = false;
        sim::Callback done;
    };

    void fireAccess(std::uint32_t slot);

    sim::EventQueue &eq_;
    std::string name_;
    CacheParams params_;
    L2Cache &l2_;
    int l1Id_ = -1;

    std::uint32_t numSets_;
    std::vector<std::vector<LineInfo>> sets_; //!< [set][way]
    std::vector<Mshr> mshrs_;                 //!< fixed slots (CAM)
    std::size_t mshrsInUse_ = 0;
    // Scratch for draining one MSHR's waiters after its slot is freed
    // (capacity persists; see handleFill).
    std::vector<std::pair<bool, sim::Callback>> fillScratch_;
    sim::SlotPool<PendingAccess> accessSlots_;
    sim::RingBuffer<PendingAccess> blocked_; //!< retry when an MSHR frees
    // PutMs in flight to the L2. A handful at most: linear vector, no
    // per-insert heap node.
    std::vector<PAddr> pendingPutbacks_;

    sim::Counter hits_;
    sim::Counter misses_;
    sim::Counter writebacks_;
    sim::Counter probes_;
    sim::Counter upgrades_;

    static PAddr lineOf(PAddr addr) { return addr & ~PAddr(63); }
    std::uint32_t setOf(PAddr line) const;
    LineInfo *findLine(PAddr line);
    LineInfo *allocLine(PAddr line); //!< may trigger victim writeback

    Mshr *findMshr(PAddr line);
    bool pendingPutback(PAddr line) const;
    void erasePendingPutback(PAddr line);

    void startMiss(PAddr line, bool write, bool fullLine,
                   sim::Callback done);
    void handleFill(PAddr line, bool grantedWrite);
    void retryBlocked();

    /**
     * Coherence probe from the directory. Invalidate or downgrade; returns
     * true (via callback semantics at L2) once the probe took effect.
     * @param invalidate true for invalidation, false for downgrade to S
     * @retval true if this L1 had the line in M (data forwarded)
     */
    bool handleProbe(PAddr line, bool invalidate);
};

/**
 * Shared, inclusive L2 with a full-map directory over the attached L1s,
 * backed by a DRAM channel. Transactions serialize per line.
 */
class L2Cache
{
  public:
    struct Params
    {
        std::uint64_t sizeBytes = 4ull * 1024 * 1024;
        std::uint32_t assoc = 16;
        std::uint32_t latencyCycles = 6;
        std::uint32_t probeLatencyCycles = 4; //!< L2 <-> L1 probe hop
        double freqGhz = 2.0;

        sim::Tick
        latency() const
        {
            return sim::Clock(freqGhz).cycles(latencyCycles);
        }

        sim::Tick
        probeLatency() const
        {
            return sim::Clock(freqGhz).cycles(probeLatencyCycles);
        }
    };

    L2Cache(sim::EventQueue &eq, sim::StatRegistry &stats, std::string name,
            const Params &params, DramChannel &dram);

    L2Cache(const L2Cache &) = delete;
    L2Cache &operator=(const L2Cache &) = delete;

    /** Attach an L1; returns its directory id. */
    int registerL1(L1Cache *l1);

    /**
     * L1-initiated request for a line.
     * @param requester directory id of the requesting L1
     * @param write true for GetM (exclusive), false for GetS
     * @param fullLine the requester overwrites the whole line, so an L2
     *        miss may allocate without a DRAM fetch
     * @param done fires when permission is granted
     */
    void request(int requester, PAddr line, bool write, bool fullLine,
                 sim::Callback done);

    /** L1 write-back of a modified line (PutM). */
    void putback(int requester, PAddr line);

    /** Total directory-tracked lines (for tests). */
    std::size_t trackedLines() const { return lines_.size(); }

    std::uint64_t hits() const { return hits_.value(); }
    std::uint64_t misses() const { return misses_.value(); }
    std::uint64_t cacheToCacheTransfers() const { return c2c_.value(); }

    const Params &params() const { return params_; }

  private:
    struct DirEntry
    {
        std::uint32_t sharers = 0; //!< bitmask over L1 ids
        int owner = -1;            //!< L1 id holding M, or -1
        bool dirtyInL2 = false;
        sim::Tick lastUse = 0;
    };

    struct PendingReq
    {
        int requester;
        bool write;
        bool fullLine = false;
        bool isPutback = false;
        sim::Callback done;
    };

    sim::EventQueue &eq_;
    std::string name_;
    Params params_;
    DramChannel &dram_;
    std::vector<L1Cache *> l1s_;

    std::uint32_t numSets_;
    // Inclusive tag+directory state, keyed by line address. A line present
    // here is present in the L2; set occupancy enforced via setFill_.
    // Flat map, not unordered_map: directory inserts happen on every
    // cold line and must not churn heap nodes once the working set is
    // resident.
    sim::FlatMap<PAddr, DirEntry> lines_;
    std::vector<std::vector<PAddr>> setFill_; //!< lines per set (for LRU)

    /**
     * Per-line transaction serialization. Concurrently locked lines are
     * bounded by in-flight transactions (MSHRs x L1s), so a compact
     * linear-scanned table replaces the old unordered set+map pair,
     * whose node churn allocated on every single transaction. Freed
     * entries (inUse = false) are recycled; each waiting ring keeps its
     * capacity.
     */
    struct LockEntry
    {
        bool inUse = false;
        PAddr line = 0;
        sim::RingBuffer<PendingReq> waiting{2};
    };
    std::vector<LockEntry> locks_;

    sim::Counter hits_;
    sim::Counter misses_;
    sim::Counter c2c_;
    sim::Counter evictions_;
    sim::Counter dramRetries_;

    /**
     * Requests parked on a scheduled event (the L2 tag latency before
     * process(), or the probe latency before completion). As in the L1,
     * slot storage keeps event captures at {this, slot}.
     */
    struct ParkedReq
    {
        PAddr line = 0;
        PendingReq req;
    };

    sim::SlotPool<ParkedReq> reqSlots_;

    std::uint32_t setOf(PAddr line) const;
    LockEntry *findLock(PAddr line);
    bool lockLine(PAddr line, PendingReq req);
    void unlockLine(PAddr line);
    void process(PAddr line, PendingReq req);
    void fireProcess(std::uint32_t slot);
    void fireCompletion(std::uint32_t slot);
    void finishRequest(PAddr line, PendingReq &req);

    //
    // L2 miss path. The missing request is parked in reqSlots_ and only
    // {this, line, slot} travels through the continuations — parking
    // keeps every capture inside sim::Callback's inline buffer (the
    // PendingReq itself holds a Callback and would overflow it).
    //
    void ensureCapacity(PAddr line, std::uint32_t slot);
    void fillMissingLine(PAddr line, std::uint32_t slot);
    void fetchFromDram(PAddr line, std::uint32_t slot);
    void installLine(PAddr line, std::uint32_t slot);

    void writebackToDram(PAddr line);
};

} // namespace sonuma::mem

#endif // SONUMA_MEM_CACHE_HH
