/**
 * @file
 * DRAM channel implementation (FR-FCFS over open-row banks).
 */

#include "mem/dram.hh"

#include <algorithm>
#include <cassert>

namespace sonuma::mem {

DramChannel::DramChannel(sim::EventQueue &eq, sim::StatRegistry &stats,
                         const std::string &name, const DramParams &params)
    : eq_(eq), params_(params), banks_(params.banks),
      reads_(stats, name + ".reads", "DRAM read accesses"),
      writes_(stats, name + ".writes", "DRAM write accesses"),
      rowHits_(stats, name + ".rowHits", "row-buffer hits"),
      rowMisses_(stats, name + ".rowMisses", "row-buffer misses"),
      latency_(stats, name + ".latencyNs", "access latency (ns)")
{
}

std::uint32_t
DramChannel::bankOf(PAddr addr) const
{
    // Line-interleaved bank mapping: consecutive cache lines hit
    // consecutive banks, so streams use all banks.
    return static_cast<std::uint32_t>((addr / sim::kCacheLineBytes) %
                                      params_.banks);
}

std::uint64_t
DramChannel::rowOf(PAddr addr) const
{
    return addr / (static_cast<std::uint64_t>(params_.rowBytes) *
                   params_.banks);
}

bool
DramChannel::access(PAddr addr, bool write, sim::Callback done)
{
    if (full())
        return false;
    queue_.push_back(Request{addr, write, std::move(done), eq_.now()});
    if (write)
        writes_.inc();
    else
        reads_.inc();
    scheduleDrain(eq_.now() + params_.controllerDelay);
    return true;
}

void
DramChannel::scheduleDrain(sim::Tick when)
{
    if (drainScheduled_)
        return;
    drainScheduled_ = true;
    eq_.schedule(std::max(when, eq_.now()), [this] {
        drainScheduled_ = false;
        drain();
    });
}

void
DramChannel::drain()
{
    if (queue_.empty())
        return;

    // FR-FCFS: prefer the oldest request whose bank has its row open and is
    // ready; otherwise fall back to the oldest request overall.
    const sim::Tick now = eq_.now();
    std::size_t pick = queue_.size();
    for (std::size_t i = 0; i < queue_.size(); ++i) {
        const Bank &b = banks_[bankOf(queue_[i].addr)];
        if (b.rowOpen && b.openRow == rowOf(queue_[i].addr) &&
            b.readyAt <= now) {
            pick = i;
            break;
        }
    }
    if (pick == queue_.size())
        pick = 0;

    Request req = std::move(queue_[pick]);
    queue_.erase(queue_.begin() + static_cast<std::ptrdiff_t>(pick));

    Bank &bank = banks_[bankOf(req.addr)];
    const std::uint64_t row = rowOf(req.addr);

    sim::Tick cmdStart = std::max(now, bank.readyAt);
    sim::Tick dataReady;
    if (bank.rowOpen && bank.openRow == row) {
        rowHits_.inc();
        dataReady = cmdStart + params_.tCas;
    } else {
        rowMisses_.inc();
        const sim::Tick precharge = bank.rowOpen ? params_.tRp : 0;
        dataReady = cmdStart + precharge + params_.tRcd + params_.tCas;
        bank.rowOpen = true;
        bank.openRow = row;
    }

    // Data bus: one 64-byte transfer, serialized across banks.
    const sim::Tick busStart = std::max(dataReady, busBusyUntil_);
    const sim::Tick busEnd = busStart + params_.busTransfer;
    busBusyUntil_ = busEnd;
    busBusyTotal_ += params_.busTransfer;
    bank.readyAt = busEnd;

    latency_.sample(sim::ticksToNs(busEnd - req.arrival));
    if (req.done)
        eq_.schedule(busEnd, std::move(req.done));

    if (!queue_.empty()) {
        // Next scheduling decision once this transfer's bus slot is known;
        // the next request may overlap bank timing with this one, so allow
        // an immediate re-evaluation.
        scheduleDrain(now + params_.busTransfer);
    }
}

double
DramChannel::busUtilization() const
{
    const sim::Tick now = eq_.now();
    return now == 0 ? 0.0
                    : static_cast<double>(busBusyTotal_) /
                          static_cast<double>(now);
}

} // namespace sonuma::mem
