/**
 * @file
 * The paper's application study (§7.5): three parallel PageRank
 * implementations on the Bulk Synchronous Processing model.
 *
 *  - SHM(pthreads): one cache-coherent node with N cores sharing memory;
 *    the aggregate LLC equals the N-node soNUMA configurations so no
 *    capacity advantage is conflated in (paper §7.5(i)).
 *  - soNUMA(bulk): per-superstep exchange — every node replicates its
 *    peers' vertex arrays with wide multi-line rmc_read_async pulls
 *    (Pregel-style aggregation), then computes entirely locally.
 *  - soNUMA(fine-grain): one rmc_read_async per cross-partition edge,
 *    the shared-memory-like style of Fig. 4.
 *
 * Every runner returns the final ranks (read back from simulated
 * memory) so tests can verify all three against the host reference.
 */

#ifndef SONUMA_APP_PAGERANK_HH
#define SONUMA_APP_PAGERANK_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "app/graph.hh"
#include "rmc/params.hh"
#include "sim/types.hh"

namespace sonuma::api {
class TestBed;
class Workload;
} // namespace sonuma::api

namespace sonuma::app {

/** One 64-byte vertex record in simulated memory (both rank parities
 *  plus out-degree travel in a single cache line / remote read). */
struct VertexData
{
    double rank[2];
    std::uint64_t outDegree;
    std::uint8_t pad[40];
};

static_assert(sizeof(VertexData) == 64, "vertex record is one line");

struct PageRankConfig
{
    std::uint32_t supersteps = 1;
    double damping = 0.85;
    std::uint64_t seed = 1;
    std::uint32_t edgeComputeCycles = 4;    //!< ALU work per edge
    std::uint32_t vertexComputeCycles = 8;  //!< loop/update per vertex
    std::uint32_t bulkChunkBytes = 8192;    //!< pull granularity (bulk)

    /**
     * Untimed warm-up supersteps executed before the measured ones
     * (caches and TLBs settle, as in steady-state BSP execution).
     * Ranks reflect warmup + supersteps iterations.
     */
    std::uint32_t warmupSupersteps = 0;

    /**
     * LLC capacity per core (SHM) / per node (soNUMA). Table 1's value
     * is 4 MB; the fig9 bench scales it down with the scaled-down graph
     * so the cache-to-dataset ratio matches the paper's (the Twitter
     * subset dwarfed every cache configuration; see DESIGN.md).
     */
    std::uint64_t l2PerUnitBytes = 4ull * 1024 * 1024;
};

struct PageRankRun
{
    std::vector<double> ranks;  //!< final ranks by global vertex id
    sim::Tick elapsed = 0;      //!< measured supersteps (excl. warm-up)
    std::uint64_t remoteOps = 0; //!< remote reads issued (0 for SHM)

    /**
     * Remote reads issued during the measured supersteps only — the
     * numerator that matches `elapsed` for throughput (equals
     * remoteOps when warmupSupersteps == 0).
     */
    std::uint64_t measuredRemoteOps = 0;

    std::uint64_t aborts = 0;   //!< timeout/failure-aborted transfers
    std::uint64_t errors = 0;   //!< RRPP-reported request errors
};

/** SHM(pthreads) baseline on one node with @p threads cores. */
PageRankRun runPageRankShm(const Graph &g, std::uint32_t threads,
                           const PageRankConfig &cfg);

/** soNUMA(bulk) on @p partition.parts single-core nodes. */
PageRankRun runPageRankBulk(const Graph &g, const Partition &partition,
                            const PageRankConfig &cfg,
                            const rmc::RmcParams &rmcParams =
                                rmc::RmcParams::simulatedHardware());

/** soNUMA(fine-grain) on @p partition.parts single-core nodes. */
PageRankRun runPageRankFine(const Graph &g, const Partition &partition,
                            const PageRankConfig &cfg,
                            const rmc::RmcParams &rmcParams =
                                rmc::RmcParams::simulatedHardware());

/**
 * Fine-grain PageRank as a Workload body on a caller-owned TestBed —
 * the piece the soNUMA runners and the SweepDriver "pagerank" workload
 * share. One coroutine per node (api::Workload), barrier-aligned BSP
 * supersteps (§5.3), one rmc_read_async per cross-partition edge
 * (Fig. 4), per-node stats under "<scope>.node<i>.ops" /
 * ".opLatencyNs". The TestBed must have bed.nodes() == part.parts and
 * per-node segments of at least segmentBytesNeeded().
 *
 * Usage:
 *   PageRankFineWorkload pr(g, part, cfg);
 *   TestBed bed(ClusterSpec{}...segmentPerNode(pr.segmentBytesNeeded(P)));
 *   Workload wl(bed, "pagerank");
 *   pr.install(bed, wl);
 *   wl.run();
 *   PageRankRun run = pr.collect(bed);   // ranks, elapsed, remoteOps
 */
class PageRankFineWorkload
{
  public:
    PageRankFineWorkload(const Graph &g, const Partition &part,
                         const PageRankConfig &cfg);
    ~PageRankFineWorkload();

    /** Per-node context segment bytes (barrier region + owned array). */
    std::uint64_t segmentBytesNeeded() const;

    /** Seed vertex arrays in simulated memory and set the node body. */
    void install(api::TestBed &bed, api::Workload &wl);

    /**
     * After the workload ran: gather ranks out of simulated memory and
     * report the measured region (supersteps minus warm-up), remote
     * ops, and RMC abort/error counters.
     */
    PageRankRun collect(api::TestBed &bed) const;

  private:
    struct State;
    std::unique_ptr<State> st_;
};

/**
 * Register the "pagerank" workload with api::SweepDriver (idempotent):
 * one PageRankFineWorkload per cell, graph/partition built from
 * SweepConfig::pagerank, artifacts FIG9_<label>.json, ranks verified
 * against the host reference when verifyRanks is set. Call once from
 * bench/test main()s that want `--workload pagerank`.
 */
void registerPageRankSweepWorkload();

} // namespace sonuma::app

#endif // SONUMA_APP_PAGERANK_HH
