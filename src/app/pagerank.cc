/**
 * @file
 * PageRank runners (SHM, soNUMA bulk, soNUMA fine-grain).
 */

#include "app/pagerank.hh"

#include <cassert>
#include <deque>
#include <memory>

#include "api/barrier.hh"
#include "api/session.hh"
#include "node/cluster.hh"
#include "sim/simulation.hh"
#include "sim/sync.hh"

namespace sonuma::app {

namespace {

/** Per-node view of the partitioned graph. */
struct NodeGraph
{
    struct Ref
    {
        std::uint32_t part;
        std::uint32_t localIdx;
    };

    std::vector<std::uint32_t> rowPtr; //!< per local vertex
    std::vector<Ref> refs;             //!< in-neighbors of local vertices
};

NodeGraph
buildNodeGraph(const Graph &g, const Partition &part, std::uint32_t p)
{
    NodeGraph ng;
    const auto &mine = part.members[p];
    ng.rowPtr.reserve(mine.size() + 1);
    ng.rowPtr.push_back(0);
    for (const std::uint32_t v : mine) {
        for (std::uint32_t e = g.rowPtr[v]; e < g.rowPtr[v + 1]; ++e) {
            const std::uint32_t u = g.inNeighbor[e];
            ng.refs.push_back(
                NodeGraph::Ref{part.owner[u], part.localIndex[u]});
        }
        ng.rowPtr.push_back(static_cast<std::uint32_t>(ng.refs.size()));
    }
    return ng;
}

/** Initialize a vertex array in simulated memory. */
void
initVertexArray(vm::AddressSpace &as, vm::VAddr base,
                const std::vector<std::uint32_t> &vertices, const Graph &g)
{
    const double init = 1.0 / g.numVertices;
    for (std::size_t i = 0; i < vertices.size(); ++i) {
        VertexData vd{};
        vd.rank[0] = init;
        vd.rank[1] = 0.0;
        vd.outDegree = g.outDegree[vertices[i]];
        as.write(base + i * sizeof(VertexData), &vd, sizeof(vd));
    }
}

} // namespace

//
// ------------------------- SHM (pthreads) ------------------------------
//

PageRankRun
runPageRankShm(const Graph &g, std::uint32_t threads,
               const PageRankConfig &cfg)
{
    sim::Simulation sim(cfg.seed);
    node::ClusterParams cp;
    cp.nodes = 1;
    cp.node.cores = threads;
    // Aggregate LLC equal to `threads` soNUMA nodes (paper §7.5(i)).
    cp.node.l2.sizeBytes = cfg.l2PerUnitBytes * threads;
    node::Cluster cluster(sim, cp);
    auto &nd = cluster.node(0);
    auto &proc = nd.os().createProcess(0);

    const vm::VAddr varr =
        proc.alloc(std::uint64_t(g.numVertices) * sizeof(VertexData));
    std::vector<std::uint32_t> all(g.numVertices);
    for (std::uint32_t v = 0; v < g.numVertices; ++v)
        all[v] = v;
    initVertexArray(proc.addressSpace(), varr, all, g);

    sim::LocalBarrier barrier(sim.eq(), threads);
    sim::Tick start = 0, end = 0;

    auto worker = [&](std::uint32_t tid) -> sim::Task {
        auto &core = nd.core(tid);
        core.attachProcess(proc);
        auto &as = proc.addressSpace();
        const std::uint32_t lo =
            static_cast<std::uint32_t>(std::uint64_t(g.numVertices) * tid /
                                       threads);
        const std::uint32_t hi = static_cast<std::uint32_t>(
            std::uint64_t(g.numVertices) * (tid + 1) / threads);

        co_await barrier.arrive();

        const std::uint32_t total =
            cfg.warmupSupersteps + cfg.supersteps;
        for (std::uint32_t step = 0; step < total; ++step) {
            if (tid == 0 && step == cfg.warmupSupersteps)
                start = sim.now();
            const int readPar = static_cast<int>(step % 2);
            const int writePar = 1 - readPar;
            for (std::uint32_t v = lo; v < hi; ++v) {
                co_await core.compute(cfg.vertexComputeCycles);
                double acc = (1.0 - cfg.damping) / g.numVertices;
                for (std::uint32_t e = g.rowPtr[v]; e < g.rowPtr[v + 1];
                     ++e) {
                    const std::uint32_t u = g.inNeighbor[e];
                    const vm::VAddr ua = varr + std::uint64_t(u) * 64;
                    co_await core.load(ua);
                    co_await core.compute(cfg.edgeComputeCycles);
                    VertexData ud;
                    as.read(ua, &ud, sizeof(ud));
                    acc += cfg.damping * ud.rank[readPar] /
                           static_cast<double>(ud.outDegree);
                }
                const vm::VAddr va = varr + std::uint64_t(v) * 64;
                co_await core.store(va);
                VertexData vd;
                as.read(va, &vd, sizeof(vd));
                vd.rank[writePar] = acc;
                as.write(va, &vd, sizeof(vd));
            }
            co_await barrier.arrive();
        }
        if (tid == 0)
            end = sim.now();
    };

    for (std::uint32_t t = 0; t < threads; ++t)
        sim.spawn(worker(t));
    sim.run();

    PageRankRun run;
    run.elapsed = end - start;
    run.remoteOps = 0;
    run.ranks.resize(g.numVertices);
    const int finalPar = static_cast<int>(
        (cfg.warmupSupersteps + cfg.supersteps) % 2);
    for (std::uint32_t v = 0; v < g.numVertices; ++v) {
        VertexData vd;
        proc.addressSpace().read(varr + std::uint64_t(v) * 64, &vd,
                                 sizeof(vd));
        run.ranks[v] = vd.rank[finalPar];
    }
    return run;
}

//
// ---------------------- shared soNUMA scaffolding ----------------------
//

namespace {

/** Everything one soNUMA PageRank node needs. */
struct PrNode
{
    os::Process *proc = nullptr;
    vm::VAddr segBase = 0;
    vm::VAddr vtxVa = 0;          //!< owned vertex array (in segment)
    std::uint64_t vtxOff = 0;     //!< its offset within the segment
    std::unique_ptr<api::RmcSession> session;
    std::unique_ptr<api::RmcSession> barrierSession; //!< own QP: barrier
    std::unique_ptr<api::Barrier> barrier;
    NodeGraph ng;
};

/** Build cluster + per-node state shared by bulk and fine-grain. */
struct PrSetup
{
    std::unique_ptr<node::Cluster> cluster;
    std::vector<PrNode> nodes;
    static constexpr sim::CtxId kCtx = 1;

    PrSetup(sim::Simulation &sim, const Graph &g, const Partition &part,
            const PageRankConfig &cfg, const rmc::RmcParams &rmcParams,
            std::uint64_t extraSegBytes)
    {
        const std::uint32_t P = part.parts;
        node::ClusterParams cp;
        cp.nodes = P;
        cp.node.cores = 1;
        cp.node.l2.sizeBytes = cfg.l2PerUnitBytes;
        cp.node.rmc = rmcParams;
        cluster = std::make_unique<node::Cluster>(sim, cp);
        cluster->createSharedContext(kCtx);

        const std::uint64_t barBytes = api::Barrier::regionBytes(P);
        std::vector<sim::NodeId> all(P);
        for (std::uint32_t i = 0; i < P; ++i)
            all[i] = static_cast<sim::NodeId>(i);

        nodes.resize(P);
        for (std::uint32_t p = 0; p < P; ++p) {
            auto &nd = cluster->node(p);
            PrNode &n = nodes[p];
            n.proc = &nd.os().createProcess(0);
            const std::uint64_t owned =
                part.members[p].size() * sizeof(VertexData);
            n.segBase =
                n.proc->alloc(barBytes + owned + extraSegBytes);
            nd.driver().openContext(*n.proc, kCtx);
            nd.driver().registerSegment(*n.proc, kCtx, n.segBase,
                                        barBytes + owned + extraSegBytes);
            n.vtxOff = barBytes;
            n.vtxVa = n.segBase + barBytes;
            initVertexArray(n.proc->addressSpace(), n.vtxVa,
                            part.members[p], g);
            n.session = std::make_unique<api::RmcSession>(
                nd.core(0), nd.driver(), *n.proc, kCtx);
            // The barrier owns a separate QP: completions of its
            // announcement writes must never surface through the
            // application QP's callbacks.
            n.barrierSession = std::make_unique<api::RmcSession>(
                nd.core(0), nd.driver(), *n.proc, kCtx);
            n.barrier = std::make_unique<api::Barrier>(
                *n.barrierSession, all, n.segBase, 0);
            n.ng = buildNodeGraph(g, part, p);
        }
    }

    /** Gather final ranks out of simulated memory. */
    std::vector<double>
    gather(const Graph &g, const Partition &part, int finalPar) const
    {
        std::vector<double> ranks(g.numVertices);
        for (std::uint32_t p = 0; p < part.parts; ++p) {
            const PrNode &n = nodes[p];
            for (std::size_t i = 0; i < part.members[p].size(); ++i) {
                VertexData vd;
                n.proc->addressSpace().read(n.vtxVa + i * 64, &vd,
                                            sizeof(vd));
                ranks[part.members[p][i]] = vd.rank[finalPar];
            }
        }
        return ranks;
    }
};

} // namespace

//
// --------------------------- soNUMA (bulk) -----------------------------
//

PageRankRun
runPageRankBulk(const Graph &g, const Partition &part,
                const PageRankConfig &cfg, const rmc::RmcParams &rmcParams)
{
    sim::Simulation sim(cfg.seed);
    PrSetup setup(sim, g, part, cfg, rmcParams, 0);
    const std::uint32_t P = part.parts;

    // Local mirror of every peer's vertex array; seeded functionally
    // (the paper's setup phase is not part of the timed supersteps).
    std::vector<std::vector<vm::VAddr>> mirror(P,
                                               std::vector<vm::VAddr>(P));
    for (std::uint32_t p = 0; p < P; ++p) {
        for (std::uint32_t q = 0; q < P; ++q) {
            if (q == p)
                continue;
            const std::uint64_t bytes =
                part.members[q].size() * sizeof(VertexData);
            mirror[p][q] = setup.nodes[p].proc->alloc(bytes);
            initVertexArray(setup.nodes[p].proc->addressSpace(),
                            mirror[p][q], part.members[q], g);
        }
    }

    sim::Tick start = 0, end = 0;
    std::uint64_t remoteOps = 0;

    auto worker = [&](std::uint32_t p) -> sim::Task {
        PrNode &n = setup.nodes[p];
        auto &core = setup.cluster->node(p).core(0);
        auto &as = n.proc->addressSpace();

        co_await n.barrier->arrive();

        const std::uint32_t total =
            cfg.warmupSupersteps + cfg.supersteps;
        for (std::uint32_t step = 0; step < total; ++step) {
            if (p == 0 && step == cfg.warmupSupersteps)
                start = sim.now();
            const int readPar = static_cast<int>(step % 2);
            const int writePar = 1 - readPar;

            // Compute phase: local + mirrored data only.
            const auto &mine = part.members[p];
            for (std::uint32_t i = 0;
                 i < static_cast<std::uint32_t>(mine.size()); ++i) {
                co_await core.compute(cfg.vertexComputeCycles);
                double acc = (1.0 - cfg.damping) / g.numVertices;
                for (std::uint32_t e = n.ng.rowPtr[i];
                     e < n.ng.rowPtr[i + 1]; ++e) {
                    const auto &ref = n.ng.refs[e];
                    const vm::VAddr ua =
                        (ref.part == p ? n.vtxVa : mirror[p][ref.part]) +
                        std::uint64_t(ref.localIdx) * 64;
                    co_await core.load(ua);
                    co_await core.compute(cfg.edgeComputeCycles);
                    VertexData ud;
                    as.read(ua, &ud, sizeof(ud));
                    acc += cfg.damping * ud.rank[readPar] /
                           static_cast<double>(ud.outDegree);
                }
                const vm::VAddr va = n.vtxVa + std::uint64_t(i) * 64;
                co_await core.store(va);
                VertexData vd;
                as.read(va, &vd, sizeof(vd));
                vd.rank[writePar] = acc;
                as.write(va, &vd, sizeof(vd));
            }

            co_await n.barrier->arrive();

            // Shuffle phase: pull every peer's vertex array in wide
            // multi-line reads (one WQ entry per chunk).
            for (std::uint32_t q = 0; q < P; ++q) {
                if (q == p)
                    continue;
                const std::uint64_t bytes =
                    part.members[q].size() * sizeof(VertexData);
                std::uint64_t off = 0;
                while (off < bytes) {
                    const auto chunk = static_cast<std::uint32_t>(
                        std::min<std::uint64_t>(cfg.bulkChunkBytes,
                                                bytes - off));
                    co_await n.session->readAsync(
                        static_cast<sim::NodeId>(q),
                        setup.nodes[q].vtxOff + off, mirror[p][q] + off,
                        chunk);
                    ++remoteOps;
                    off += chunk;
                }
            }
            co_await n.session->drain();
            co_await n.barrier->arrive();
        }
        if (p == 0)
            end = sim.now();
    };

    for (std::uint32_t p = 0; p < P; ++p)
        setup.cluster->node(p).core(0).run(worker(p));
    sim.run();

    PageRankRun run;
    run.elapsed = end - start;
    run.remoteOps = remoteOps;
    for (std::uint32_t p = 0; p < P; ++p) {
        const std::string prefix = "node" + std::to_string(p) + ".rmc.";
        if (const auto *c = sim.stats().counter(prefix + "failureAborts"))
            run.aborts += c->value();
        if (const auto *c =
                sim.stats().counter(prefix + "rrpp.boundsErrors"))
            run.errors += c->value();
        if (const auto *c = sim.stats().counter(prefix + "rrpp.badContext"))
            run.errors += c->value();
    }
    run.ranks = setup.gather(
        g, part,
        static_cast<int>((cfg.warmupSupersteps + cfg.supersteps) % 2));
    return run;
}

//
// ------------------------ soNUMA (fine-grain) --------------------------
//

PageRankRun
runPageRankFine(const Graph &g, const Partition &part,
                const PageRankConfig &cfg, const rmc::RmcParams &rmcParams)
{
    sim::Simulation sim(cfg.seed);
    PrSetup setup(sim, g, part, cfg, rmcParams, 0);
    const std::uint32_t P = part.parts;

    sim::Tick start = 0, end = 0;
    std::uint64_t remoteOps = 0;

    auto worker = [&](std::uint32_t p) -> sim::Task {
        PrNode &n = setup.nodes[p];
        auto &core = setup.cluster->node(p).core(0);
        auto &as = n.proc->addressSpace();
        auto &session = *n.session;

        // Per-slot landing lines + a FIFO of pending reads carrying the
        // paper's async_dest_addr context alongside each OpHandle.
        struct PendingRead
        {
            api::OpHandle h;
            std::uint32_t vLocal;
            int readPar;
            int writePar;
        };
        std::deque<PendingRead> pendingReads;
        const vm::VAddr lbuf =
            n.proc->alloc(std::uint64_t(session.queueDepth()) * 64);

        // Applying one completion runs the paper's pagerank_async:
        // read the fetched vertex, accumulate into the target's rank.
        auto applyOne = [&as, &n, &cfg,
                         this_lbuf = lbuf](const PendingRead &pr) {
            assert(pr.h.done());
            VertexData nb;
            as.read(this_lbuf + std::uint64_t(pr.h.slot()) * 64, &nb,
                    sizeof(nb));
            const double contrib = cfg.damping * nb.rank[pr.readPar] /
                                   static_cast<double>(nb.outDegree);
            const vm::VAddr va = n.vtxVa + std::uint64_t(pr.vLocal) * 64;
            VertexData vd;
            as.read(va, &vd, sizeof(vd));
            vd.rank[pr.writePar] += contrib;
            as.write(va, &vd, sizeof(vd));
        };

        co_await n.barrier->arrive();

        const auto &mine = part.members[p];
        const std::uint32_t total =
            cfg.warmupSupersteps + cfg.supersteps;
        for (std::uint32_t step = 0; step < total; ++step) {
            if (p == 0 && step == cfg.warmupSupersteps)
                start = sim.now();
            const int readPar = static_cast<int>(step % 2);
            const int writePar = 1 - readPar;

            for (std::uint32_t i = 0;
                 i < static_cast<std::uint32_t>(mine.size()); ++i) {
                co_await core.compute(cfg.vertexComputeCycles);
                const vm::VAddr va = n.vtxVa + std::uint64_t(i) * 64;

                // Seed the write-parity rank before any async completion
                // can accumulate into it (Fig. 4's first statement).
                co_await core.store(va);
                {
                    VertexData vd;
                    as.read(va, &vd, sizeof(vd));
                    vd.rank[writePar] =
                        (1.0 - cfg.damping) / g.numVertices;
                    as.write(va, &vd, sizeof(vd));
                }

                double acc = 0.0;
                for (std::uint32_t e = n.ng.rowPtr[i];
                     e < n.ng.rowPtr[i + 1]; ++e) {
                    const auto &ref = n.ng.refs[e];
                    if (ref.part == p) {
                        // Shared-memory path within the node.
                        const vm::VAddr ua =
                            n.vtxVa + std::uint64_t(ref.localIdx) * 64;
                        co_await core.load(ua);
                        co_await core.compute(cfg.edgeComputeCycles);
                        VertexData ud;
                        as.read(ua, &ud, sizeof(ud));
                        acc += cfg.damping * ud.rank[readPar] /
                               static_cast<double>(ud.outDegree);
                    } else {
                        // Explicit remote memory path (Fig. 4). A full
                        // window retires its oldest read before posting
                        // so the WQ slot (and landing line) can be
                        // recycled safely (see session.hh).
                        while (pendingReads.size() >=
                               session.queueDepth()) {
                            co_await pendingReads.front().h;
                            applyOne(pendingReads.front());
                            pendingReads.pop_front();
                        }
                        const std::uint32_t slot = session.nextSlot();
                        api::OpHandle h = co_await session.readAsync(
                            static_cast<sim::NodeId>(ref.part),
                            setup.nodes[ref.part].vtxOff +
                                std::uint64_t(ref.localIdx) * 64,
                            lbuf + std::uint64_t(slot) * 64, 64);
                        pendingReads.push_back(
                            PendingRead{h, i, readPar, writePar});
                        ++remoteOps;
                        // Absorb completions the post just reaped.
                        while (!pendingReads.empty() &&
                               pendingReads.front().h.done()) {
                            applyOne(pendingReads.front());
                            pendingReads.pop_front();
                        }
                    }
                }
                if (acc != 0.0) {
                    co_await core.store(va);
                    VertexData vd;
                    as.read(va, &vd, sizeof(vd));
                    vd.rank[writePar] += acc;
                    as.write(va, &vd, sizeof(vd));
                }
            }
            co_await session.drain();
            while (!pendingReads.empty()) {
                applyOne(pendingReads.front());
                pendingReads.pop_front();
            }
            co_await n.barrier->arrive();
        }
        if (p == 0)
            end = sim.now();
    };

    for (std::uint32_t p = 0; p < P; ++p)
        setup.cluster->node(p).core(0).run(worker(p));
    sim.run();

    PageRankRun run;
    run.elapsed = end - start;
    run.remoteOps = remoteOps;
    for (std::uint32_t p = 0; p < P; ++p) {
        const std::string prefix = "node" + std::to_string(p) + ".rmc.";
        if (const auto *c = sim.stats().counter(prefix + "failureAborts"))
            run.aborts += c->value();
        if (const auto *c =
                sim.stats().counter(prefix + "rrpp.boundsErrors"))
            run.errors += c->value();
        if (const auto *c = sim.stats().counter(prefix + "rrpp.badContext"))
            run.errors += c->value();
    }
    run.ranks = setup.gather(
        g, part,
        static_cast<int>((cfg.warmupSupersteps + cfg.supersteps) % 2));
    return run;
}

} // namespace sonuma::app
