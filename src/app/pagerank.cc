/**
 * @file
 * PageRank runners (SHM, soNUMA bulk, soNUMA fine-grain).
 *
 * The soNUMA sides run on the API-v2 Workload runtime: one coroutine
 * per node on a declaratively-built TestBed, §5.3 barrier alignment
 * via Workload's NodeCtx, per-node stats under the workload scope.
 * PageRankFineWorkload is the shared core the SweepDriver "pagerank"
 * workload drives at 64-512 nodes (FIG9 artifacts).
 */

#include "app/pagerank.hh"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <deque>
#include <memory>
#include <stdexcept>

#include "api/barrier.hh"
#include "api/session.hh"
#include "api/sweep.hh"
#include "api/workload.hh"
#include "node/cluster.hh"
#include "sim/simulation.hh"
#include "sim/sync.hh"

namespace sonuma::app {

namespace {

/** Per-node view of the partitioned graph. */
struct NodeGraph
{
    struct Ref
    {
        std::uint32_t part;
        std::uint32_t localIdx;
    };

    std::vector<std::uint32_t> rowPtr; //!< per local vertex
    std::vector<Ref> refs;             //!< in-neighbors of local vertices
};

NodeGraph
buildNodeGraph(const Graph &g, const Partition &part, std::uint32_t p)
{
    NodeGraph ng;
    const auto &mine = part.members[p];
    ng.rowPtr.reserve(mine.size() + 1);
    ng.rowPtr.push_back(0);
    for (const std::uint32_t v : mine) {
        for (std::uint32_t e = g.rowPtr[v]; e < g.rowPtr[v + 1]; ++e) {
            const std::uint32_t u = g.inNeighbor[e];
            ng.refs.push_back(
                NodeGraph::Ref{part.owner[u], part.localIndex[u]});
        }
        ng.rowPtr.push_back(static_cast<std::uint32_t>(ng.refs.size()));
    }
    return ng;
}

/** Initialize a vertex array in simulated memory. */
void
initVertexArray(vm::AddressSpace &as, vm::VAddr base,
                const std::vector<std::uint32_t> &vertices, const Graph &g)
{
    const double init = 1.0 / g.numVertices;
    for (std::size_t i = 0; i < vertices.size(); ++i) {
        VertexData vd{};
        vd.rank[0] = init;
        vd.rank[1] = 0.0;
        vd.outDegree = g.outDegree[vertices[i]];
        as.write(base + i * sizeof(VertexData), &vd, sizeof(vd));
    }
}

} // namespace

//
// ------------------------- SHM (pthreads) ------------------------------
//

PageRankRun
runPageRankShm(const Graph &g, std::uint32_t threads,
               const PageRankConfig &cfg)
{
    sim::Simulation sim(cfg.seed);
    node::ClusterParams cp;
    cp.nodes = 1;
    cp.node.cores = threads;
    // Aggregate LLC equal to `threads` soNUMA nodes (paper §7.5(i)).
    cp.node.l2.sizeBytes = cfg.l2PerUnitBytes * threads;
    node::Cluster cluster(sim, cp);
    auto &nd = cluster.node(0);
    auto &proc = nd.os().createProcess(0);

    const vm::VAddr varr =
        proc.alloc(std::uint64_t(g.numVertices) * sizeof(VertexData));
    std::vector<std::uint32_t> all(g.numVertices);
    for (std::uint32_t v = 0; v < g.numVertices; ++v)
        all[v] = v;
    initVertexArray(proc.addressSpace(), varr, all, g);

    sim::LocalBarrier barrier(sim.eq(), threads);
    sim::Tick start = 0, end = 0;

    auto worker = [&](std::uint32_t tid) -> sim::Task {
        auto &core = nd.core(tid);
        core.attachProcess(proc);
        auto &as = proc.addressSpace();
        const std::uint32_t lo =
            static_cast<std::uint32_t>(std::uint64_t(g.numVertices) * tid /
                                       threads);
        const std::uint32_t hi = static_cast<std::uint32_t>(
            std::uint64_t(g.numVertices) * (tid + 1) / threads);

        co_await barrier.arrive();

        const std::uint32_t total =
            cfg.warmupSupersteps + cfg.supersteps;
        for (std::uint32_t step = 0; step < total; ++step) {
            if (tid == 0 && step == cfg.warmupSupersteps)
                start = sim.now();
            const int readPar = static_cast<int>(step % 2);
            const int writePar = 1 - readPar;
            for (std::uint32_t v = lo; v < hi; ++v) {
                co_await core.compute(cfg.vertexComputeCycles);
                double acc = (1.0 - cfg.damping) / g.numVertices;
                for (std::uint32_t e = g.rowPtr[v]; e < g.rowPtr[v + 1];
                     ++e) {
                    const std::uint32_t u = g.inNeighbor[e];
                    const vm::VAddr ua = varr + std::uint64_t(u) * 64;
                    co_await core.load(ua);
                    co_await core.compute(cfg.edgeComputeCycles);
                    VertexData ud;
                    as.read(ua, &ud, sizeof(ud));
                    acc += cfg.damping * ud.rank[readPar] /
                           static_cast<double>(ud.outDegree);
                }
                const vm::VAddr va = varr + std::uint64_t(v) * 64;
                co_await core.store(va);
                VertexData vd;
                as.read(va, &vd, sizeof(vd));
                vd.rank[writePar] = acc;
                as.write(va, &vd, sizeof(vd));
            }
            co_await barrier.arrive();
        }
        if (tid == 0)
            end = sim.now();
    };

    for (std::uint32_t t = 0; t < threads; ++t)
        sim.spawn(worker(t));
    sim.run();

    PageRankRun run;
    run.elapsed = end - start;
    run.remoteOps = 0;
    run.ranks.resize(g.numVertices);
    const int finalPar = static_cast<int>(
        (cfg.warmupSupersteps + cfg.supersteps) % 2);
    for (std::uint32_t v = 0; v < g.numVertices; ++v) {
        VertexData vd;
        proc.addressSpace().read(varr + std::uint64_t(v) * 64, &vd,
                                 sizeof(vd));
        run.ranks[v] = vd.rank[finalPar];
    }
    return run;
}

//
// ---------------- shared soNUMA scaffolding (Workload runtime) ---------
//

namespace {

/** The P-node soNUMA deployment both runners use (paper §7.5(i)). */
api::ClusterSpec
soNumaSpec(const PageRankConfig &cfg, const rmc::RmcParams &rmcParams,
           std::uint32_t parts, std::uint64_t segBytes)
{
    return api::ClusterSpec{}
        .nodes(parts)
        .coresPerNode(1)
        .l2PerNode(cfg.l2PerUnitBytes)
        .rmc(rmcParams)
        .segmentPerNode(segBytes)
        .seed(cfg.seed);
}

/** Largest per-node vertex count (partitions differ by at most one). */
std::uint64_t
maxOwnedVertices(const Partition &part)
{
    std::uint64_t owned = 0;
    for (const auto &members : part.members)
        owned = std::max<std::uint64_t>(owned, members.size());
    return owned;
}

/** Gather final ranks out of the TestBed's simulated memories. */
std::vector<double>
gatherRanks(api::TestBed &bed, const Graph &g, const Partition &part,
            std::uint64_t vtxOff, int finalPar)
{
    std::vector<double> ranks(g.numVertices);
    for (std::uint32_t p = 0; p < part.parts; ++p) {
        auto &as = bed.process(p).addressSpace();
        const vm::VAddr vtxVa = bed.segBase(p) + vtxOff;
        for (std::size_t i = 0; i < part.members[p].size(); ++i) {
            VertexData vd;
            as.read(vtxVa + i * sizeof(VertexData), &vd, sizeof(vd));
            ranks[part.members[p][i]] = vd.rank[finalPar];
        }
    }
    return ranks;
}

/** Sum the per-node RMC abort/error counters into @p run. */
void
collectRmcErrors(sim::Simulation &sim, std::uint32_t parts,
                 PageRankRun *run)
{
    for (std::uint32_t p = 0; p < parts; ++p) {
        const std::string prefix = "node" + std::to_string(p) + ".rmc.";
        if (const auto *c = sim.stats().counter(prefix + "failureAborts"))
            run->aborts += c->value();
        if (const auto *c =
                sim.stats().counter(prefix + "rrpp.boundsErrors"))
            run->errors += c->value();
        if (const auto *c = sim.stats().counter(prefix + "rrpp.badContext"))
            run->errors += c->value();
    }
}

} // namespace

//
// ------------------------ soNUMA (fine-grain) --------------------------
//

struct PageRankFineWorkload::State
{
    const Graph &g;
    const Partition &part;
    PageRankConfig cfg;
    std::vector<NodeGraph> ng;    //!< per node
    std::uint64_t vtxOff;         //!< barrier region bytes
    sim::Tick start = 0, end = 0; //!< measured region (node 0)
    std::uint64_t remoteOps = 0;  //!< all supersteps (incl. warm-up)
    std::uint64_t measuredRemoteOps = 0; //!< post-warm-up only

    State(const Graph &graph, const Partition &partition,
          const PageRankConfig &config)
        : g(graph), part(partition), cfg(config),
          vtxOff(api::Barrier::regionBytes(partition.parts))
    {
        ng.reserve(part.parts);
        for (std::uint32_t p = 0; p < part.parts; ++p)
            ng.push_back(buildNodeGraph(g, part, p));
    }
};

PageRankFineWorkload::PageRankFineWorkload(const Graph &g,
                                           const Partition &part,
                                           const PageRankConfig &cfg)
    : st_(std::make_unique<State>(g, part, cfg))
{}

PageRankFineWorkload::~PageRankFineWorkload() = default;

std::uint64_t
PageRankFineWorkload::segmentBytesNeeded() const
{
    return st_->vtxOff +
           maxOwnedVertices(st_->part) * sizeof(VertexData);
}

void
PageRankFineWorkload::install(api::TestBed &bed, api::Workload &wl)
{
    State *st = st_.get();
    if (bed.nodes() != st->part.parts)
        throw std::invalid_argument(
            "PageRankFineWorkload: TestBed has " +
            std::to_string(bed.nodes()) + " nodes but the partition has " +
            std::to_string(st->part.parts) + " parts");
    if (bed.segBytes() < segmentBytesNeeded())
        throw std::invalid_argument(
            "PageRankFineWorkload: segmentPerNode " +
            std::to_string(bed.segBytes()) + " < " +
            std::to_string(segmentBytesNeeded()) +
            " bytes needed for the barrier region plus owned vertices");

    // Seed every node's owned vertex array (functional: the paper's
    // setup phase is not part of the timed supersteps).
    for (std::uint32_t p = 0; p < st->part.parts; ++p)
        initVertexArray(bed.process(p).addressSpace(),
                        bed.segBase(p) + st->vtxOff, st->part.members[p],
                        st->g);

    wl.onEachNode([st](api::Workload::NodeCtx &ctx) -> sim::Task {
        const std::uint32_t p = ctx.nodeId();
        auto &session = ctx.session();
        auto &core = session.core();
        auto &as = session.process().addressSpace();
        auto &ops = ctx.counter("ops");
        auto &lat = ctx.histogram("opLatencyNs");
        const NodeGraph &ng = st->ng[p];
        const PageRankConfig &cfg = st->cfg;
        const Graph &g = st->g;
        const vm::VAddr vtxVa = ctx.segBase() + st->vtxOff;

        // Per-slot landing lines + a FIFO of pending reads carrying the
        // paper's async_dest_addr context alongside each OpHandle (plus
        // what a degraded-mode repost needs: peer, offset, attempt).
        struct PendingRead
        {
            api::OpHandle h;
            std::uint32_t vLocal;
            int readPar;
            int writePar;
            sim::NodeId peer;
            std::uint64_t off;
            std::uint32_t attempt;
        };
        std::deque<PendingRead> pendingReads;
        const std::uint32_t depth = session.queueDepth();
        const vm::VAddr lbuf =
            session.allocBuffer(std::uint64_t(depth) * 64);
        // Warm-up supersteps are untimed, so their ops and latency
        // samples must not enter the measured stats either (the
        // Outcome's ops are divided by the measured region). A posted
        // read always retires within its own superstep (drain at the
        // superstep end), so one flag suffices.
        bool measuring = cfg.warmupSupersteps == 0;

        // Retiring one read runs the paper's pagerank_async handler:
        // await the fetched vertex, accumulate into the target's rank.
        // Under a retry policy, fault-aborted reads are reposted after
        // a capped backoff: a superstep's read parity is stable until
        // its closing barrier, so a late retry fetches the same value
        // the original attempt would have and the ranks stay exact.
        const api::RetryPolicy &retry = ctx.retry();
        auto &ok = ctx.counter("okOps");
        auto &aborted = ctx.counter("abortedOps");
        auto &retried = ctx.counter("retriedOps");
        auto retireFront = [&]() -> sim::Task {
            PendingRead pr = pendingReads.front();
            pendingReads.pop_front();
            const api::OpResult r = co_await pr.h;
            if (!r.ok()) {
                if (!retry.enabled())
                    sim::fatal("pagerank remote read failed");
                aborted.inc();
                if (pr.attempt >= retry.maxRetries)
                    sim::fatal(
                        "pagerank remote read failed after " +
                        std::to_string(pr.attempt) +
                        " retries; the rank sum would silently drift, "
                        "so a permanent fault needs a recovery event");
                retried.inc();
                co_await sim::Delay(ctx.sim().eq(),
                                    retry.delayFor(pr.attempt + 1));
                const std::uint32_t rslot = session.nextSlot();
                pr.h = co_await session.readAsync(
                    pr.peer, pr.off,
                    lbuf + std::uint64_t(rslot) * 64, 64);
                ++pr.attempt;
                pendingReads.push_back(pr);
                co_return;
            }
            if (measuring)
                ok.inc();
            if (measuring)
                lat.sample(sim::ticksToNs(r.latency));
            VertexData nb;
            as.read(lbuf + std::uint64_t(pr.h.slot()) * 64, &nb,
                    sizeof(nb));
            const double contrib = cfg.damping * nb.rank[pr.readPar] /
                                   static_cast<double>(nb.outDegree);
            const vm::VAddr va = vtxVa + std::uint64_t(pr.vLocal) * 64;
            VertexData vd;
            as.read(va, &vd, sizeof(vd));
            vd.rank[pr.writePar] += contrib;
            as.write(va, &vd, sizeof(vd));
        };

        const auto &mine = st->part.members[p];
        const std::uint32_t total =
            cfg.warmupSupersteps + cfg.supersteps;
        for (std::uint32_t step = 0; step < total; ++step) {
            if (p == 0 && step == cfg.warmupSupersteps)
                st->start = ctx.sim().now();
            measuring = step >= cfg.warmupSupersteps;
            const int readPar = static_cast<int>(step % 2);
            const int writePar = 1 - readPar;

            for (std::uint32_t i = 0;
                 i < static_cast<std::uint32_t>(mine.size()); ++i) {
                co_await core.compute(cfg.vertexComputeCycles);
                const vm::VAddr va = vtxVa + std::uint64_t(i) * 64;

                // Seed the write-parity rank before any async completion
                // can accumulate into it (Fig. 4's first statement).
                co_await core.store(va);
                {
                    VertexData vd;
                    as.read(va, &vd, sizeof(vd));
                    vd.rank[writePar] =
                        (1.0 - cfg.damping) / g.numVertices;
                    as.write(va, &vd, sizeof(vd));
                }

                double acc = 0.0;
                for (std::uint32_t e = ng.rowPtr[i]; e < ng.rowPtr[i + 1];
                     ++e) {
                    const auto &ref = ng.refs[e];
                    if (ref.part == p) {
                        // Shared-memory path within the node.
                        const vm::VAddr ua =
                            vtxVa + std::uint64_t(ref.localIdx) * 64;
                        co_await core.load(ua);
                        co_await core.compute(cfg.edgeComputeCycles);
                        VertexData ud;
                        as.read(ua, &ud, sizeof(ud));
                        acc += cfg.damping * ud.rank[readPar] /
                               static_cast<double>(ud.outDegree);
                    } else {
                        // Explicit remote memory path (Fig. 4). A full
                        // window retires its oldest read before posting
                        // so the WQ slot (and landing line) can be
                        // recycled safely (see session.hh).
                        while (pendingReads.size() >= depth)
                            co_await retireFront();
                        const std::uint32_t slot = session.nextSlot();
                        const auto peer =
                            static_cast<sim::NodeId>(ref.part);
                        const std::uint64_t off =
                            st->vtxOff + std::uint64_t(ref.localIdx) * 64;
                        api::OpHandle h = co_await session.readAsync(
                            peer, off, lbuf + std::uint64_t(slot) * 64,
                            64);
                        pendingReads.push_back(PendingRead{
                            h, i, readPar, writePar, peer, off, 0});
                        ++st->remoteOps;
                        if (measuring) {
                            // Stats cover the measured region only, so
                            // the pooled counter, the latency sample
                            // count and the cell's JSON ops all agree.
                            ops.inc();
                            ++st->measuredRemoteOps;
                        }
                        // Absorb completions the post just reaped.
                        while (!pendingReads.empty() &&
                               pendingReads.front().h.done())
                            co_await retireFront();
                    }
                }
                if (acc != 0.0) {
                    co_await core.store(va);
                    VertexData vd;
                    as.read(va, &vd, sizeof(vd));
                    vd.rank[writePar] += acc;
                    as.write(va, &vd, sizeof(vd));
                }
            }
            co_await session.drain();
            while (!pendingReads.empty())
                co_await retireFront();
            co_await ctx.barrier();
        }
        if (p == 0)
            st->end = ctx.sim().now();
    });
}

PageRankRun
PageRankFineWorkload::collect(api::TestBed &bed) const
{
    PageRankRun run;
    run.elapsed = st_->end - st_->start;
    run.remoteOps = st_->remoteOps;
    run.measuredRemoteOps = st_->measuredRemoteOps;
    collectRmcErrors(bed.sim(), st_->part.parts, &run);
    run.ranks = gatherRanks(
        bed, st_->g, st_->part, st_->vtxOff,
        static_cast<int>(
            (st_->cfg.warmupSupersteps + st_->cfg.supersteps) % 2));
    return run;
}

PageRankRun
runPageRankFine(const Graph &g, const Partition &part,
                const PageRankConfig &cfg, const rmc::RmcParams &rmcParams)
{
    PageRankFineWorkload pr(g, part, cfg);
    api::TestBed bed(soNumaSpec(cfg, rmcParams, part.parts,
                                pr.segmentBytesNeeded()));
    api::Workload wl(bed, "pagerank");
    pr.install(bed, wl);
    wl.run();
    return pr.collect(bed);
}

//
// --------------------------- soNUMA (bulk) -----------------------------
//

PageRankRun
runPageRankBulk(const Graph &g, const Partition &part,
                const PageRankConfig &cfg, const rmc::RmcParams &rmcParams)
{
    const std::uint32_t P = part.parts;
    const std::uint64_t vtxOff = api::Barrier::regionBytes(P);
    api::TestBed bed(soNumaSpec(
        cfg, rmcParams, P,
        vtxOff + maxOwnedVertices(part) * sizeof(VertexData)));

    std::vector<NodeGraph> ng;
    ng.reserve(P);
    for (std::uint32_t p = 0; p < P; ++p) {
        ng.push_back(buildNodeGraph(g, part, p));
        initVertexArray(bed.process(p).addressSpace(),
                        bed.segBase(p) + vtxOff, part.members[p], g);
    }

    // Local mirror of every peer's vertex array; seeded functionally
    // (the paper's setup phase is not part of the timed supersteps).
    std::vector<std::vector<vm::VAddr>> mirror(P,
                                               std::vector<vm::VAddr>(P));
    for (std::uint32_t p = 0; p < P; ++p) {
        for (std::uint32_t q = 0; q < P; ++q) {
            if (q == p)
                continue;
            mirror[p][q] = bed.process(p).alloc(
                part.members[q].size() * sizeof(VertexData));
            initVertexArray(bed.process(p).addressSpace(), mirror[p][q],
                            part.members[q], g);
        }
    }

    sim::Tick start = 0, end = 0;
    std::uint64_t remoteOps = 0, measuredRemoteOps = 0;

    api::Workload wl(bed, "pagerank");
    wl.onEachNode([&](api::Workload::NodeCtx &ctx) -> sim::Task {
        const std::uint32_t p = ctx.nodeId();
        auto &session = ctx.session();
        auto &core = session.core();
        auto &as = session.process().addressSpace();
        auto &ops = ctx.counter("ops");
        const vm::VAddr vtxVa = ctx.segBase() + vtxOff;

        const auto &mine = part.members[p];
        const std::uint32_t total =
            cfg.warmupSupersteps + cfg.supersteps;
        for (std::uint32_t step = 0; step < total; ++step) {
            if (p == 0 && step == cfg.warmupSupersteps)
                start = ctx.sim().now();
            const int readPar = static_cast<int>(step % 2);
            const int writePar = 1 - readPar;

            // Compute phase: local + mirrored data only.
            for (std::uint32_t i = 0;
                 i < static_cast<std::uint32_t>(mine.size()); ++i) {
                co_await core.compute(cfg.vertexComputeCycles);
                double acc = (1.0 - cfg.damping) / g.numVertices;
                for (std::uint32_t e = ng[p].rowPtr[i];
                     e < ng[p].rowPtr[i + 1]; ++e) {
                    const auto &ref = ng[p].refs[e];
                    const vm::VAddr ua =
                        (ref.part == p ? vtxVa : mirror[p][ref.part]) +
                        std::uint64_t(ref.localIdx) * 64;
                    co_await core.load(ua);
                    co_await core.compute(cfg.edgeComputeCycles);
                    VertexData ud;
                    as.read(ua, &ud, sizeof(ud));
                    acc += cfg.damping * ud.rank[readPar] /
                           static_cast<double>(ud.outDegree);
                }
                const vm::VAddr va = vtxVa + std::uint64_t(i) * 64;
                co_await core.store(va);
                VertexData vd;
                as.read(va, &vd, sizeof(vd));
                vd.rank[writePar] = acc;
                as.write(va, &vd, sizeof(vd));
            }

            co_await ctx.barrier();

            // Shuffle phase: pull every peer's vertex array in wide
            // multi-line reads (one WQ entry per chunk).
            for (std::uint32_t q = 0; q < P; ++q) {
                if (q == p)
                    continue;
                const std::uint64_t bytes =
                    part.members[q].size() * sizeof(VertexData);
                std::uint64_t off = 0;
                while (off < bytes) {
                    const auto chunk = static_cast<std::uint32_t>(
                        std::min<std::uint64_t>(cfg.bulkChunkBytes,
                                                bytes - off));
                    co_await session.readAsync(
                        static_cast<sim::NodeId>(q), vtxOff + off,
                        mirror[p][q] + off, chunk);
                    ++remoteOps;
                    if (step >= cfg.warmupSupersteps) {
                        ops.inc();
                        ++measuredRemoteOps;
                    }
                    off += chunk;
                }
            }
            co_await session.drain();
            co_await ctx.barrier();
        }
        if (p == 0)
            end = ctx.sim().now();
    });
    wl.run();

    PageRankRun run;
    run.elapsed = end - start;
    run.remoteOps = remoteOps;
    run.measuredRemoteOps = measuredRemoteOps;
    collectRmcErrors(bed.sim(), P, &run);
    run.ranks = gatherRanks(
        bed, g, part, vtxOff,
        static_cast<int>((cfg.warmupSupersteps + cfg.supersteps) % 2));
    return run;
}

//
// --------------------- SweepDriver "pagerank" workload -----------------
//

namespace {

/**
 * The Fig. 9 application as a sweepable workload: graph + partition
 * built per cell from SweepConfig::pagerank, the fine-grain runner
 * installed on the driver's TestBed/Workload, ranks verified against
 * the host reference, FIG9_<label>.json artifacts.
 */
class PageRankSweepWorkload : public api::SweepWorkload
{
  public:
    void
    configure(api::ClusterSpec &spec, const api::SweepCellResult &cell,
              const api::SweepConfig &cfg) override
    {
        const auto &axis = cfg.pagerank;
        if (cell.requestBytes != sizeof(VertexData))
            throw std::invalid_argument(
                "pagerank sweep: request size is fixed at " +
                std::to_string(sizeof(VertexData)) +
                " bytes (one vertex record per remote read); got " +
                std::to_string(cell.requestBytes) +
                " — run with --sizes=64");
        if (axis.vertices < cell.nodes)
            throw std::invalid_argument(
                "pagerank sweep: " + std::to_string(axis.vertices) +
                " vertices cannot be partitioned over " +
                std::to_string(cell.nodes) + " nodes");
        sim::Rng grng(axis.graphSeed);
        g_ = generatePowerLaw(grng, axis.vertices, axis.degree);
        sim::Rng prng(axis.graphSeed + cell.nodes);
        part_ = randomPartition(prng, g_.numVertices, cell.nodes);

        prCfg_.supersteps = axis.supersteps;
        prCfg_.warmupSupersteps = axis.warmupSupersteps;
        prCfg_.seed = cfg.seed;
        if (axis.l2PerNodeBytes != 0) {
            prCfg_.l2PerUnitBytes = axis.l2PerNodeBytes;
            spec.l2PerNode(axis.l2PerNodeBytes);
        }

        fine_ = std::make_unique<PageRankFineWorkload>(g_, part_, prCfg_);
        spec.segmentPerNode(fine_->segmentBytesNeeded());
    }

    void
    install(api::TestBed &bed, api::Workload &wl,
            const api::SweepCellResult &cell,
            const api::SweepConfig &cfg) override
    {
        (void)cell;
        (void)cfg;
        fine_->install(bed, wl);
    }

    Outcome
    finish(api::TestBed &bed, const api::SweepCellResult &cell,
           const api::SweepConfig &cfg) override
    {
        run_ = fine_->collect(bed);
        if (run_.aborts != 0 || run_.errors != 0)
            sim::fatal("pagerank sweep cell " + cell.label() + ": " +
                       std::to_string(run_.aborts) + " aborts, " +
                       std::to_string(run_.errors) + " RMC errors");
        if (cfg.pagerank.verifyRanks) {
            const auto ref = referencePageRank(
                g_, prCfg_.warmupSupersteps + prCfg_.supersteps,
                prCfg_.damping);
            double maxDiff = 0;
            for (std::size_t v = 0; v < ref.size(); ++v)
                maxDiff = std::max(maxDiff,
                                   std::abs(run_.ranks[v] - ref[v]));
            if (maxDiff > 1e-9)
                sim::fatal("pagerank sweep cell " + cell.label() +
                           ": ranks diverge from the host reference "
                           "(max |diff| = " + std::to_string(maxDiff) +
                           ")");
        }
        // Ops and time base must cover the same region: warm-up
        // supersteps are excluded from both.
        return Outcome{run_.measuredRemoteOps, run_.elapsed};
    }

    void
    annotate(api::SweepCellResult &cell) const override
    {
        cell.extra.emplace_back("vertices",
                                static_cast<double>(g_.numVertices));
        cell.extra.emplace_back("edges",
                                static_cast<double>(g_.numEdges()));
        cell.extra.emplace_back("supersteps",
                                static_cast<double>(prCfg_.supersteps));
        cell.extra.emplace_back("cross_edge_fraction",
                                part_.crossEdgeFraction(g_));
    }

    const char *
    artifactPrefix() const override
    {
        return "FIG9_";
    }

  private:
    Graph g_;
    Partition part_;
    PageRankConfig prCfg_;
    std::unique_ptr<PageRankFineWorkload> fine_;
    PageRankRun run_;
};

} // namespace

void
registerPageRankSweepWorkload()
{
    api::SweepDriver::registerWorkload("pagerank", [] {
        return std::make_unique<PageRankSweepWorkload>();
    });
}

} // namespace sonuma::app
