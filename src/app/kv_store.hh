/**
 * @file
 * A one-sided-read key-value store in the style the paper cites as a
 * killer application (§7.5, referencing Pilaf [38]): clients GET by
 * issuing remote reads of hash buckets directly out of the server's
 * context segment, with zero server CPU involvement; the server applies
 * PUTs locally. Bucket versioning (seqlock) lets clients detect racing
 * updates and retry.
 */

#ifndef SONUMA_APP_KV_STORE_HH
#define SONUMA_APP_KV_STORE_HH

#include <cstdint>
#include <optional>
#include <string>

#include "api/session.hh"

namespace sonuma::app {

/** One 64-byte hash bucket. */
struct KvBucket
{
    std::uint64_t version; //!< seqlock: odd while being written
    std::uint64_t key;
    std::uint64_t valid;
    std::uint64_t value[5];
};

static_assert(sizeof(KvBucket) == 64, "bucket is one line");

inline constexpr std::uint32_t kKvValueBytes = 40;

/**
 * Server side: owns the bucket array inside a registered context
 * segment and applies PUTs locally (functional + timed stores via the
 * server core are charged by the caller's coroutine).
 */
class KvServer
{
  public:
    /**
     * @param session server node session (segment must be registered)
     * @param segBase local VA of the server's context segment
     * @param tableOffset offset of the bucket array within the segment
     * @param buckets power-of-two bucket count
     */
    KvServer(api::RmcSession &session, vm::VAddr segBase,
             std::uint64_t tableOffset, std::uint32_t buckets);

    /** Required segment bytes for @p buckets. */
    static std::uint64_t
    tableBytes(std::uint32_t buckets)
    {
        return std::uint64_t(buckets) * sizeof(KvBucket);
    }

    /** Local PUT (insert or update). Linear probing; false if full. */
    [[nodiscard]] sim::ValueTask<bool> put(std::uint64_t key,
                                           const void *value,
                                           std::uint32_t len);

    /** Local DELETE; false if the key was absent. */
    [[nodiscard]] sim::ValueTask<bool> erase(std::uint64_t key);

    std::uint32_t buckets() const { return buckets_; }
    std::uint64_t tableOffset() const { return tableOffset_; }

    static std::uint64_t hashKey(std::uint64_t key);

  private:
    api::RmcSession &session_;
    vm::VAddr tableVa_;
    std::uint64_t tableOffset_;
    std::uint32_t buckets_;

    std::optional<std::uint32_t> findSlot(std::uint64_t key,
                                          bool forInsert) const;
};

/**
 * Client side: GETs via one-sided remote reads of bucket lines.
 */
class KvClient
{
  public:
    /**
     * @param session client node session (same context as the server)
     * @param serverNid the server's node id
     * @param tableOffset the server's bucket-array segment offset
     * @param buckets the server's bucket count
     */
    KvClient(api::RmcSession &session, sim::NodeId serverNid,
             std::uint64_t tableOffset, std::uint32_t buckets);

    /**
     * Remote GET; yields true when the key was found, with the value
     * bytes copied to @p value (kKvValueBytes capacity). Reads chase
     * linear-probe chains and retry on torn (odd-version) buckets.
     */
    [[nodiscard]] sim::ValueTask<bool> get(std::uint64_t key, void *value);

    /** Remote reads issued (probe chain length observability). */
    std::uint64_t readsIssued() const { return reads_; }

    /** Maximum buckets probed per GET before giving up. */
    static constexpr std::uint32_t kMaxProbes = 16;

  private:
    api::RmcSession &session_;
    sim::NodeId server_;
    std::uint64_t tableOffset_;
    std::uint32_t buckets_;
    vm::VAddr landing_;
    std::uint64_t reads_ = 0;
};

} // namespace sonuma::app

#endif // SONUMA_APP_KV_STORE_HH
