/**
 * @file
 * Graph data structures for the application study (paper §7.5).
 *
 * CSR over *incoming* edges: PageRank's pull-style update for vertex v
 * reads rank/out_degree of each in-neighbor (exactly the loop in the
 * paper's Fig. 4). The host-side Graph is the workload-generation
 * artifact; per-node simulated-memory layouts are built from it by the
 * PageRank runners.
 */

#ifndef SONUMA_APP_GRAPH_HH
#define SONUMA_APP_GRAPH_HH

#include <cstdint>
#include <vector>

#include "sim/rng.hh"

namespace sonuma::app {

/** Host-side CSR graph (in-edges). */
struct Graph
{
    std::uint32_t numVertices = 0;
    std::vector<std::uint32_t> rowPtr;    //!< size V+1
    std::vector<std::uint32_t> inNeighbor; //!< size E; source of in-edge
    std::vector<std::uint32_t> outDegree;  //!< size V

    std::uint64_t
    numEdges() const
    {
        return inNeighbor.size();
    }

    /** In-degree of @p v. */
    std::uint32_t
    inDegree(std::uint32_t v) const
    {
        return rowPtr[v + 1] - rowPtr[v];
    }
};

/**
 * Synthetic power-law graph (preferential attachment), the substitute
 * for the paper's Twitter subset [29] (see DESIGN.md §1). Determinism:
 * same rng seed => same graph.
 *
 * @param vertices number of vertices
 * @param avgDegree average in-degree (edges = vertices * avgDegree)
 */
Graph generatePowerLaw(sim::Rng &rng, std::uint32_t vertices,
                       std::uint32_t avgDegree);

/** Uniform-random graph (for locality ablations). */
Graph generateUniform(sim::Rng &rng, std::uint32_t vertices,
                      std::uint32_t avgDegree);

/**
 * Reference PageRank (host arithmetic, double precision): the golden
 * model every simulated implementation must match bit-for-bit given the
 * same summation order, or within tolerance otherwise.
 *
 * @param supersteps number of synchronous iterations
 * @param damping damping factor (0.85 in the paper's Fig. 4)
 */
std::vector<double> referencePageRank(const Graph &g,
                                      std::uint32_t supersteps,
                                      double damping = 0.85);

/** Random partition of vertices into @p parts of equal cardinality. */
struct Partition
{
    std::uint32_t parts = 1;
    std::vector<std::uint32_t> owner;      //!< vertex -> part
    std::vector<std::uint32_t> localIndex; //!< vertex -> index in part
    std::vector<std::vector<std::uint32_t>> members; //!< part -> vertices

    /** Fraction of edges whose endpoints live in different parts. */
    double crossEdgeFraction(const Graph &g) const;
};

Partition randomPartition(sim::Rng &rng, std::uint32_t vertices,
                          std::uint32_t parts);

} // namespace sonuma::app

#endif // SONUMA_APP_GRAPH_HH
