/**
 * @file
 * Graph utilities: reference PageRank and partitioning.
 */

#include "app/graph.hh"

#include <cassert>
#include <numeric>

namespace sonuma::app {

std::vector<double>
referencePageRank(const Graph &g, std::uint32_t supersteps, double damping)
{
    const auto n = static_cast<double>(g.numVertices);
    std::vector<double> rank(g.numVertices, 1.0 / n);
    std::vector<double> next(g.numVertices);
    for (std::uint32_t step = 0; step < supersteps; ++step) {
        for (std::uint32_t v = 0; v < g.numVertices; ++v) {
            double sum = 0.0;
            for (std::uint32_t e = g.rowPtr[v]; e < g.rowPtr[v + 1]; ++e) {
                const std::uint32_t u = g.inNeighbor[e];
                sum += rank[u] / static_cast<double>(g.outDegree[u]);
            }
            next[v] = (1.0 - damping) / n + damping * sum;
        }
        rank.swap(next);
    }
    return rank;
}

Partition
randomPartition(sim::Rng &rng, std::uint32_t vertices, std::uint32_t parts)
{
    Partition p;
    p.parts = parts;
    p.owner.resize(vertices);
    p.localIndex.resize(vertices);
    p.members.resize(parts);

    // Random permutation, then deal out round-robin: random placement
    // with equal cardinality (paper: "randomly partitions the vertices
    // into sets of equal cardinality").
    std::vector<std::uint32_t> perm(vertices);
    std::iota(perm.begin(), perm.end(), 0);
    for (std::uint32_t i = vertices; i > 1; --i) {
        const auto j = static_cast<std::uint32_t>(rng.below(i));
        std::swap(perm[i - 1], perm[j]);
    }
    for (std::uint32_t i = 0; i < vertices; ++i) {
        const std::uint32_t v = perm[i];
        const std::uint32_t part = i % parts;
        p.owner[v] = part;
        p.localIndex[v] =
            static_cast<std::uint32_t>(p.members[part].size());
        p.members[part].push_back(v);
    }
    return p;
}

double
Partition::crossEdgeFraction(const Graph &g) const
{
    if (g.numEdges() == 0)
        return 0.0;
    std::uint64_t cross = 0;
    for (std::uint32_t v = 0; v < g.numVertices; ++v) {
        for (std::uint32_t e = g.rowPtr[v]; e < g.rowPtr[v + 1]; ++e) {
            if (owner[v] != owner[g.inNeighbor[e]])
                ++cross;
        }
    }
    return static_cast<double>(cross) /
           static_cast<double>(g.numEdges());
}

} // namespace sonuma::app
