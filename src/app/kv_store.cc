/**
 * @file
 * Key-value store implementation.
 */

#include "app/kv_store.hh"

#include <cassert>
#include <cstring>

namespace sonuma::app {

std::uint64_t
KvServer::hashKey(std::uint64_t key)
{
    // splitmix64 finalizer: good avalanche for bucket selection.
    std::uint64_t z = key + 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

KvServer::KvServer(api::RmcSession &session, vm::VAddr segBase,
                   std::uint64_t tableOffset, std::uint32_t buckets)
    : session_(session), tableVa_(segBase + tableOffset),
      tableOffset_(tableOffset), buckets_(buckets)
{
    assert((buckets & (buckets - 1)) == 0 && "bucket count power of two");
}

std::optional<std::uint32_t>
KvServer::findSlot(std::uint64_t key, bool forInsert) const
{
    auto &as = session_.process().addressSpace();
    const auto start =
        static_cast<std::uint32_t>(hashKey(key) & (buckets_ - 1));
    for (std::uint32_t probe = 0; probe < KvClient::kMaxProbes; ++probe) {
        const std::uint32_t idx = (start + probe) & (buckets_ - 1);
        KvBucket b;
        as.read(tableVa_ + std::uint64_t(idx) * 64, &b, sizeof(b));
        if (b.valid && b.key == key)
            return idx;
        if (!b.valid && forInsert)
            return idx;
    }
    return std::nullopt;
}

sim::ValueTask<bool>
KvServer::put(std::uint64_t key, const void *value, std::uint32_t len)
{
    assert(len <= kKvValueBytes);
    auto &as = session_.process().addressSpace();
    const auto slot = findSlot(key, /*forInsert=*/true);
    if (!slot)
        co_return false;
    const vm::VAddr va = tableVa_ + std::uint64_t(*slot) * 64;
    KvBucket b;
    as.read(va, &b, sizeof(b));

    // Seqlock write: version goes odd, payload updates, version goes
    // even. Each step is a timed store on the server core; remote
    // readers observing an odd version retry.
    b.version += 1; // odd: write in progress
    co_await session_.core().store(va);
    as.write(va, &b, sizeof(b));

    b.key = key;
    b.valid = 1;
    std::memset(b.value, 0, sizeof(b.value));
    std::memcpy(b.value, value, len);
    b.version += 1; // even: stable
    co_await session_.core().store(va);
    as.write(va, &b, sizeof(b));
    co_return true;
}

sim::ValueTask<bool>
KvServer::erase(std::uint64_t key)
{
    auto &as = session_.process().addressSpace();
    const auto slot = findSlot(key, /*forInsert=*/false);
    if (!slot)
        co_return false;
    const vm::VAddr va = tableVa_ + std::uint64_t(*slot) * 64;
    KvBucket b;
    as.read(va, &b, sizeof(b));
    b.version += 1;
    co_await session_.core().store(va);
    as.write(va, &b, sizeof(b));
    b.valid = 0;
    b.version += 1;
    co_await session_.core().store(va);
    as.write(va, &b, sizeof(b));
    co_return true;
}

KvClient::KvClient(api::RmcSession &session, sim::NodeId serverNid,
                   std::uint64_t tableOffset, std::uint32_t buckets)
    : session_(session), server_(serverNid), tableOffset_(tableOffset),
      buckets_(buckets)
{
    landing_ = session_.allocBuffer(sim::kCacheLineBytes);
}

sim::ValueTask<bool>
KvClient::get(std::uint64_t key, void *value)
{
    auto &as = session_.process().addressSpace();
    const auto start =
        static_cast<std::uint32_t>(KvServer::hashKey(key) &
                                   (buckets_ - 1));
    for (std::uint32_t probe = 0; probe < kMaxProbes; ++probe) {
        const std::uint32_t idx = (start + probe) & (buckets_ - 1);
        KvBucket b;
        while (true) {
            ++reads_;
            const api::OpResult r = co_await session_.read(
                server_, tableOffset_ + std::uint64_t(idx) * 64, landing_,
                64);
            if (!r.ok())
                co_return false; // segment torn down / failure
            as.read(landing_, &b, sizeof(b));
            if ((b.version & 1) == 0)
                break; // stable snapshot (seqlock even)
        }
        if (b.valid && b.key == key) {
            std::memcpy(value, b.value, kKvValueBytes);
            co_return true;
        }
        if (!b.valid)
            co_return false; // probe chain ends at an empty bucket
    }
    co_return false;
}

} // namespace sonuma::app
