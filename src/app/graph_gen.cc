/**
 * @file
 * Synthetic graph generators.
 *
 * The power-law generator uses preferential attachment over *out*
 * endpoints: popular vertices accumulate followers, giving the heavy
 * right tail that makes Twitter-like graphs hard to partition — the
 * property that drives the paper's Fig. 9 behaviour.
 */

#include "app/graph.hh"

#include <algorithm>
#include <cassert>

namespace sonuma::app {

namespace {

/** Assemble CSR from an in-edge list (src -> dst). */
Graph
buildCsr(std::uint32_t vertices,
         const std::vector<std::pair<std::uint32_t, std::uint32_t>> &edges)
{
    Graph g;
    g.numVertices = vertices;
    g.rowPtr.assign(vertices + 1, 0);
    g.outDegree.assign(vertices, 0);
    for (const auto &[src, dst] : edges) {
        ++g.rowPtr[dst + 1]; // in-edge of dst
        ++g.outDegree[src];
    }
    for (std::uint32_t v = 0; v < vertices; ++v)
        g.rowPtr[v + 1] += g.rowPtr[v];
    g.inNeighbor.resize(edges.size());
    std::vector<std::uint32_t> fill(vertices, 0);
    for (const auto &[src, dst] : edges)
        g.inNeighbor[g.rowPtr[dst] + fill[dst]++] = src;
    // PageRank divides by out-degree; make every vertex emit something
    // (dangling vertices get a self-loop-free fixup of degree 1).
    for (std::uint32_t v = 0; v < vertices; ++v)
        g.outDegree[v] = std::max<std::uint32_t>(1, g.outDegree[v]);
    return g;
}

} // namespace

Graph
generatePowerLaw(sim::Rng &rng, std::uint32_t vertices,
                 std::uint32_t avgDegree)
{
    assert(vertices >= 2);
    const std::uint64_t target = std::uint64_t(vertices) * avgDegree;
    std::vector<std::pair<std::uint32_t, std::uint32_t>> edges;
    edges.reserve(target);

    // Out-endpoint popularity follows a Zipf distribution over a random
    // vertex permutation: a few super-hubs (celebrities, in the Twitter
    // analogy) emit a large fraction of all edges. Inverse-CDF sampling
    // over the precomputed harmonic prefix keeps generation O(E log V).
    std::vector<std::uint32_t> perm(vertices);
    for (std::uint32_t v = 0; v < vertices; ++v)
        perm[v] = v;
    for (std::uint32_t i = vertices; i > 1; --i) {
        const auto j = static_cast<std::uint32_t>(rng.below(i));
        std::swap(perm[i - 1], perm[j]);
    }
    std::vector<double> cdf(vertices);
    double h = 0.0;
    for (std::uint32_t r = 0; r < vertices; ++r) {
        h += 1.0 / static_cast<double>(r + 1);
        cdf[r] = h;
    }

    // Seed ring: every vertex has at least one in-edge and one out-edge.
    for (std::uint32_t v = 0; v < vertices && edges.size() < target; ++v)
        edges.emplace_back(v, (v + 1) % vertices);

    while (edges.size() < target) {
        const auto dst = static_cast<std::uint32_t>(rng.below(vertices));
        const double u = rng.uniform() * h;
        const auto rank = static_cast<std::uint32_t>(
            std::lower_bound(cdf.begin(), cdf.end(), u) - cdf.begin());
        const std::uint32_t src = perm[rank];
        if (src == dst)
            continue;
        edges.emplace_back(src, dst);
    }
    return buildCsr(vertices, edges);
}

Graph
generateUniform(sim::Rng &rng, std::uint32_t vertices,
                std::uint32_t avgDegree)
{
    assert(vertices >= 2);
    const std::uint64_t target = std::uint64_t(vertices) * avgDegree;
    std::vector<std::pair<std::uint32_t, std::uint32_t>> edges;
    edges.reserve(target);
    while (edges.size() < target) {
        const auto src = static_cast<std::uint32_t>(rng.below(vertices));
        const auto dst = static_cast<std::uint32_t>(rng.below(vertices));
        if (src == dst)
            continue;
        edges.emplace_back(src, dst);
    }
    return buildCsr(vertices, edges);
}

} // namespace sonuma::app
