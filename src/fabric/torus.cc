/**
 * @file
 * Torus fabric implementation.
 */

#include "fabric/torus.hh"

#include <algorithm>
#include <cassert>
#include <stdexcept>
#include <string>

namespace sonuma::fab {

TorusFabric::TorusFabric(sim::EventQueue &eq, sim::StatRegistry &stats,
                         const TorusParams &params)
    : eq_(eq), stats_(stats), params_(params), routing_(params.dims),
      delivered_(stats, "torus.delivered", "messages delivered"),
      dropped_(stats, "torus.dropped", "messages dropped (failures)"),
      totalHops_(stats, "torus.totalHops", "sum of per-message hop counts")
{
    endpoints_.resize(routing_.nodeCount());
    for (auto &ep : endpoints_) {
        ep.ports.resize(routing_.portCount() * kNumLanes);
        ep.linkUp.assign(routing_.portCount(), true);
        ep.lossy.assign(routing_.portCount(), false);
    }
    // Misrouting around failures must terminate: a packet that crossed
    // far more links than any minimal-plus-detour path could need is
    // dropped (and counted) rather than allowed to livelock.
    std::uint32_t sumDims = 0;
    for (auto k : params_.dims)
        sumDims += k;
    hopCap_ = 4 * sumDims + 16;
}

void
TorusFabric::attach(sim::NodeId id, NetworkInterface *ni)
{
    assert(id < endpoints_.size() && "node id exceeds torus size");
    assert(!endpoints_[id].ni && "node id attached twice");
    endpoints_[id].ni = ni;
    for (std::size_t l = 0; l < kNumLanes; ++l)
        endpoints_[id].credits[l] = params_.creditsPerLane;

    if (!stats_.samplingEnabled())
        return;
    // One utilization + one queue-depth series per outgoing direction
    // (lanes share the physical link, so their busy time is summed).
    // endpoints_ is sized once in the constructor, so capturing the
    // Endpoint's port vector through `this` + indices is stable.
    for (std::uint32_t dir = 0; dir < routing_.portCount(); ++dir) {
        const std::string base = "torus.node" + std::to_string(id) +
                                 ".link" + std::to_string(dir);
        probes_.push_back(std::make_unique<sim::TimeSeries>(
            stats_, base + ".util", "fraction",
            "link serialization utilization",
            sim::TimeSeries::Kind::kRate, [this, id, dir] {
                sim::Tick busy = 0;
                for (std::size_t l = 0; l < kNumLanes; ++l)
                    busy += endpoints_[id]
                                .ports[dir * kNumLanes + l]
                                .busyThrough(eq_.now());
                return static_cast<double>(busy);
            }));
        probes_.push_back(std::make_unique<sim::TimeSeries>(
            stats_, base + ".qdepth", "packets",
            "packets serialized or in flight on the link",
            sim::TimeSeries::Kind::kGauge, [this, id, dir] {
                std::size_t depth = 0;
                for (std::size_t l = 0; l < kNumLanes; ++l)
                    depth += endpoints_[id]
                                 .ports[dir * kNumLanes + l]
                                 .queued();
                return static_cast<double>(depth);
            }));
    }
}

bool
TorusFabric::tryInject(const Message &msg)
{
    Endpoint &src = endpoints_[msg.srcNid];
    const Lane lane = msg.lane();

    if (src.failed || msg.dstNid >= endpoints_.size() ||
        !endpoints_[msg.dstNid].ni || endpoints_[msg.dstNid].failed) {
        dropped_.inc();
        return true;
    }
    if (src.credits[li(lane)] == 0)
        return false;
    --src.credits[li(lane)];
    forward(msg.srcNid, msg, 0);
    return true;
}

void
TorusFabric::forward(sim::NodeId here, const Message &msg,
                     std::uint32_t hops)
{
    Endpoint &ep = endpoints_[here];
    const Lane lane = msg.lane();

    if (ep.failed) {
        dropped_.inc();
        returnCredit(msg.srcNid, lane);
        return;
    }

    if (msg.dstNid == here) {
        if (ep.ni->deliver(msg)) {
            delivered_.inc();
            totalHops_.inc(hops);
            returnCredit(msg.srcNid, lane);
        } else {
            ep.parked[li(lane)].push(msg);
        }
        return;
    }

    std::uint32_t dir;
    if (params_.routing == RoutingMode::kAdaptive) {
        if (hops >= hopCap_) {
            dropped_.inc();
            returnCredit(msg.srcNid, lane);
            return;
        }
        dir = adaptiveDir(ep, here, msg);
        if (dir == kNoDir) {
            dropped_.inc();
            returnCredit(msg.srcNid, lane);
            return;
        }
    } else {
        dir = routing_.nextDir(here, msg.dstNid);
        if (!ep.linkUp[dir]) {
            dropped_.inc();
            returnCredit(msg.srcNid, lane);
            return;
        }
    }
    if (ep.lossy[dir]) {
        // Transient drop window: the link looks up to routing but loses
        // the packet. No notification; the sender's timeout recovers.
        dropped_.inc();
        returnCredit(msg.srcNid, lane);
        return;
    }
    const sim::NodeId next = routing_.neighbor(here, dir);
    const sim::Tick ser = static_cast<sim::Tick>(
        static_cast<double>(msg.wireBytes()) / params_.linkBandwidth * 1e12);
    const std::uint32_t portIdx =
        dir * static_cast<std::uint32_t>(kNumLanes) +
        static_cast<std::uint32_t>(li(lane));
    auto &link = ep.ports[portIdx];
    InFlight f{next, hops + 1, msg};
    f.msg.lastDir = static_cast<std::uint8_t>(dir);
    link.push(eq_.now(), ser, params_.hopLatency, std::move(f));
    link.arm(eq_, [this, here, portIdx] { drain(here, portIdx); });
}

std::uint32_t
TorusFabric::adaptiveDir(const Endpoint &ep, sim::NodeId here,
                         const Message &msg) const
{
    // Deterministic minimal-detour selection: prefer the lowest-numbered
    // productive direction whose link is up, then any up link (misroute),
    // refusing the immediate U-turn unless it is the only link left.
    const std::uint32_t ports = routing_.portCount();
    const std::uint32_t avoid =
        msg.lastDir == kNoDir ? kNoDir : (msg.lastDir ^ 1u);
    for (std::uint32_t dir = 0; dir < ports; ++dir) {
        if (ep.linkUp[dir] && dir != avoid &&
            routing_.productive(here, msg.dstNid, dir))
            return dir;
    }
    for (std::uint32_t dir = 0; dir < ports; ++dir) {
        if (ep.linkUp[dir] && dir != avoid)
            return dir;
    }
    if (avoid != kNoDir && ep.linkUp[avoid])
        return avoid;
    return kNoDir;
}

void
TorusFabric::drain(sim::NodeId node, std::uint32_t portIdx)
{
    endpoints_[node].ports[portIdx].drain(
        eq_,
        [this](const InFlight &f) { forward(f.next, f.msg, f.hops); },
        [this, node, portIdx] { drain(node, portIdx); });
}

void
TorusFabric::ejectSpaceFreed(sim::NodeId id, Lane lane)
{
    Endpoint &ep = endpoints_[id];
    if (ep.failed) {
        // A failed node must not receive parked traffic; drop it so the
        // senders' credits come back (unified with the crossbar).
        flushParked(ep);
        return;
    }
    auto &q = ep.parked[li(lane)];
    while (!q.empty()) {
        if (!ep.ni->deliver(q.front()))
            break;
        delivered_.inc();
        returnCredit(q.front().srcNid, lane);
        q.pop();
    }
}

void
TorusFabric::returnCredit(sim::NodeId srcId, Lane lane)
{
    Endpoint &src = endpoints_[srcId];
    ++src.credits[li(lane)];
    assert(src.credits[li(lane)] <= params_.creditsPerLane);
    if (src.ni)
        src.ni->injectSpaceFreed(lane);
}

void
TorusFabric::flushParked(Endpoint &ep)
{
    for (std::size_t l = 0; l < kNumLanes; ++l) {
        auto &q = ep.parked[l];
        while (!q.empty()) {
            dropped_.inc();
            returnCredit(q.front().srcNid, static_cast<Lane>(l));
            q.pop();
        }
    }
}

void
TorusFabric::notifyAll(const FailureInfo &info)
{
    for (auto &ep : endpoints_) {
        if (ep.ni)
            ep.ni->notifyFailure(info);
    }
}

void
TorusFabric::failNode(sim::NodeId id)
{
    assert(id < endpoints_.size());
    Endpoint &ep = endpoints_[id];
    if (ep.failed)
        return;
    ep.failed = true;
    flushParked(ep);
    notifyAll({FailureKind::kNodeDown, id, id});
}

void
TorusFabric::recoverNode(sim::NodeId id)
{
    assert(id < endpoints_.size());
    Endpoint &ep = endpoints_[id];
    if (!ep.failed)
        return;
    ep.failed = false;
    notifyAll({FailureKind::kNodeUp, id, id});
}

std::uint32_t
TorusFabric::dirTo(sim::NodeId from, sim::NodeId to) const
{
    if (from >= endpoints_.size() || to >= endpoints_.size())
        throw std::invalid_argument(
            "torus link " + std::to_string(from) + "->" + std::to_string(to) +
            ": node id out of range (torus has " +
            std::to_string(endpoints_.size()) + " nodes)");
    if (from == to)
        throw std::invalid_argument(
            "torus link " + std::to_string(from) + "->" + std::to_string(to) +
            ": a node has no link to itself");
    for (std::uint32_t dir = 0; dir < routing_.portCount(); ++dir) {
        if (routing_.neighbor(from, dir) == to)
            return dir;
    }
    throw std::invalid_argument(
        "torus link " + std::to_string(from) + "->" + std::to_string(to) +
        " does not exist: the nodes are not torus neighbors");
}

void
TorusFabric::validateLink(sim::NodeId from, sim::NodeId to) const
{
    (void)dirTo(from, to);
}

void
TorusFabric::failLink(sim::NodeId from, sim::NodeId to)
{
    const std::uint32_t dir = dirTo(from, to);
    Endpoint &ep = endpoints_[from];
    if (!ep.linkUp[dir])
        return;
    ep.linkUp[dir] = false;
    notifyAll({FailureKind::kLinkDown, from, to});
}

void
TorusFabric::recoverLink(sim::NodeId from, sim::NodeId to)
{
    const std::uint32_t dir = dirTo(from, to);
    Endpoint &ep = endpoints_[from];
    if (ep.linkUp[dir])
        return;
    ep.linkUp[dir] = true;
    notifyAll({FailureKind::kLinkUp, from, to});
}

void
TorusFabric::setLinkLossy(sim::NodeId from, sim::NodeId to, bool lossy)
{
    endpoints_[from].lossy[dirTo(from, to)] = lossy;
}

} // namespace sonuma::fab
