/**
 * @file
 * Torus fabric implementation.
 */

#include "fabric/torus.hh"

#include <algorithm>
#include <cassert>

namespace sonuma::fab {

TorusFabric::TorusFabric(sim::EventQueue &eq, sim::StatRegistry &stats,
                         const TorusParams &params)
    : eq_(eq), params_(params), routing_(params.dims),
      delivered_(stats, "torus.delivered", "messages delivered"),
      dropped_(stats, "torus.dropped", "messages dropped (failures)"),
      totalHops_(stats, "torus.totalHops", "sum of per-message hop counts")
{
    endpoints_.resize(routing_.nodeCount());
    for (auto &ep : endpoints_)
        ep.ports.resize(routing_.portCount() * kNumLanes);
}

void
TorusFabric::attach(sim::NodeId id, NetworkInterface *ni)
{
    assert(id < endpoints_.size() && "node id exceeds torus size");
    assert(!endpoints_[id].ni && "node id attached twice");
    endpoints_[id].ni = ni;
    for (std::size_t l = 0; l < kNumLanes; ++l)
        endpoints_[id].credits[l] = params_.creditsPerLane;
}

bool
TorusFabric::tryInject(const Message &msg)
{
    Endpoint &src = endpoints_[msg.srcNid];
    const Lane lane = msg.lane();

    if (src.failed || msg.dstNid >= endpoints_.size() ||
        !endpoints_[msg.dstNid].ni || endpoints_[msg.dstNid].failed) {
        dropped_.inc();
        return true;
    }
    if (src.credits[li(lane)] == 0)
        return false;
    --src.credits[li(lane)];
    forward(msg.srcNid, msg, 0);
    return true;
}

void
TorusFabric::forward(sim::NodeId here, const Message &msg,
                     std::uint32_t hops)
{
    Endpoint &ep = endpoints_[here];
    const Lane lane = msg.lane();

    if (ep.failed) {
        dropped_.inc();
        returnCredit(msg.srcNid, lane);
        return;
    }

    if (msg.dstNid == here) {
        if (ep.ni->deliver(msg)) {
            delivered_.inc();
            totalHops_.inc(hops);
            returnCredit(msg.srcNid, lane);
        } else {
            ep.parked[li(lane)].push(msg);
        }
        return;
    }

    const std::uint32_t dir = routing_.nextDir(here, msg.dstNid);
    const sim::NodeId next = routing_.neighbor(here, dir);
    const sim::Tick ser = static_cast<sim::Tick>(
        static_cast<double>(msg.wireBytes()) / params_.linkBandwidth * 1e12);
    const std::uint32_t portIdx =
        dir * static_cast<std::uint32_t>(kNumLanes) +
        static_cast<std::uint32_t>(li(lane));
    auto &link = ep.ports[portIdx];
    link.push(eq_.now(), ser, params_.hopLatency,
              InFlight{next, hops + 1, msg});
    link.arm(eq_, [this, here, portIdx] { drain(here, portIdx); });
}

void
TorusFabric::drain(sim::NodeId node, std::uint32_t portIdx)
{
    endpoints_[node].ports[portIdx].drain(
        eq_,
        [this](const InFlight &f) { forward(f.next, f.msg, f.hops); },
        [this, node, portIdx] { drain(node, portIdx); });
}

void
TorusFabric::ejectSpaceFreed(sim::NodeId id, Lane lane)
{
    Endpoint &ep = endpoints_[id];
    auto &q = ep.parked[li(lane)];
    while (!q.empty()) {
        if (!ep.ni->deliver(q.front()))
            break;
        delivered_.inc();
        returnCredit(q.front().srcNid, lane);
        q.pop();
    }
}

void
TorusFabric::returnCredit(sim::NodeId srcId, Lane lane)
{
    Endpoint &src = endpoints_[srcId];
    ++src.credits[li(lane)];
    assert(src.credits[li(lane)] <= params_.creditsPerLane);
    if (src.ni)
        src.ni->injectSpaceFreed(lane);
}

void
TorusFabric::failNode(sim::NodeId id)
{
    assert(id < endpoints_.size());
    endpoints_[id].failed = true;
    for (auto &ep : endpoints_) {
        if (ep.ni)
            ep.ni->notifyFailure();
    }
}

} // namespace sonuma::fab
