/**
 * @file
 * Network interface implementation.
 */

#include "fabric/fabric.hh"

namespace sonuma::fab {

NetworkInterface::NetworkInterface(sim::EventQueue &eq,
                                   sim::StatRegistry &stats,
                                   const std::string &name, sim::NodeId id,
                                   Fabric &fabric, const NiParams &params)
    : eq_(eq), id_(id), fabric_(fabric), params_(params),
      sent_(stats, name + ".sent", "messages injected"),
      received_(stats, name + ".received", "messages ejected")
{
    for (std::size_t l = 0; l < kNumLanes; ++l) {
        injectQ_[l] = sim::RingBuffer<Message>(params_.injectQueueDepth);
        ejectQ_[l] = sim::RingBuffer<Message>(params_.ejectQueueDepth);
    }
    if (stats.samplingEnabled()) {
        ejectDepthProbe_ = std::make_unique<sim::TimeSeries>(
            stats, name + ".ejectDepth", "messages",
            "eject-queue depth (both lanes)",
            sim::TimeSeries::Kind::kGauge, [this] {
                std::size_t depth = 0;
                for (std::size_t l = 0; l < kNumLanes; ++l)
                    depth += ejectQ_[l].size();
                return static_cast<double>(depth);
            });
    }
    fabric_.attach(id_, this);
}

bool
NetworkInterface::trySend(const Message &msg)
{
    const Lane lane = msg.lane();
    if (injectQ_[li(lane)].size() >= params_.injectQueueDepth)
        return false;
    injectQ_[li(lane)].push(msg);
    sent_.inc();
    pumpInject(lane);
    return true;
}

bool
NetworkInterface::canSend(Lane lane) const
{
    return injectQ_[li(lane)].size() < params_.injectQueueDepth;
}

void
NetworkInterface::onSendSpace(Lane lane, sim::Callback fn)
{
    sendSpaceCb_[li(lane)] = std::move(fn);
}

void
NetworkInterface::pumpInject(Lane lane)
{
    // tryInject can drop the packet synchronously (dead link at the
    // source, lossy first hop) and return its credit, which re-enters
    // here via injectSpaceFreed while the message is still at the
    // front of the queue. The guard makes the nested call a no-op; the
    // outer loop picks up the freed credit on its next iteration.
    if (pumping_[li(lane)])
        return;
    pumping_[li(lane)] = true;
    auto &q = injectQ_[li(lane)];
    while (!q.empty() && fabric_.tryInject(q.front())) {
        q.pop();
        if (sendSpaceCb_[li(lane)])
            sendSpaceCb_[li(lane)]();
    }
    pumping_[li(lane)] = false;
}

void
NetworkInterface::injectSpaceFreed(Lane lane)
{
    pumpInject(lane);
}

bool
NetworkInterface::hasMessage(Lane lane) const
{
    return !ejectQ_[li(lane)].empty();
}

Message
NetworkInterface::pop(Lane lane)
{
    Message m = ejectQ_[li(lane)].popFront();
    // Space freed: let the fabric hand over a waiting packet / credit.
    fabric_.ejectSpaceFreed(id_, lane);
    return m;
}

void
NetworkInterface::onArrival(Lane lane, sim::Callback fn)
{
    arrivalCb_[li(lane)] = std::move(fn);
}

void
NetworkInterface::onFabricFailure(sim::Callback fn)
{
    failureCb_ = std::move(fn);
}

bool
NetworkInterface::deliver(const Message &msg)
{
    const Lane lane = msg.lane();
    if (ejectQ_[li(lane)].size() >= params_.ejectQueueDepth)
        return false;
    ejectQ_[li(lane)].push(msg);
    received_.inc();
    if (arrivalCb_[li(lane)])
        arrivalCb_[li(lane)]();
    return true;
}

void
NetworkInterface::notifyFailure(const FailureInfo &info)
{
    lastFailure_ = info;
    if (failureCb_)
        failureCb_();
}

std::size_t
NetworkInterface::injectDepth(Lane lane) const
{
    return injectQ_[li(lane)].size();
}

std::size_t
NetworkInterface::ejectDepth(Lane lane) const
{
    return ejectQ_[li(lane)].size();
}

} // namespace sonuma::fab
