/**
 * @file
 * Abstract fabric interface plus the per-node network interface (NI).
 *
 * The NI owns per-lane inject/eject queues connecting the RMC pipelines
 * to the fabric (paper Fig. 3a). Link-level flow control is credit based:
 * a packet occupies one credit from injection until the destination NI
 * accepts it into its eject queue, so a saturated receiver backpressures
 * the sender without dropping packets.
 */

#ifndef SONUMA_FABRIC_FABRIC_HH
#define SONUMA_FABRIC_FABRIC_HH

#include <string>
#include <vector>

#include "fabric/message.hh"
#include "sim/callback.hh"
#include "sim/event_queue.hh"
#include "sim/ring_buffer.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace sonuma::fab {

class NetworkInterface;

/** Topology-independent fabric interface. */
class Fabric
{
  public:
    virtual ~Fabric() = default;

    /** Attach a node's NI. Must be called once per node id. */
    virtual void attach(sim::NodeId id, NetworkInterface *ni) = 0;

    /**
     * Try to inject a message at its source node. Returns false when the
     * source has no credit on the message's lane; the fabric will invoke
     * the NI's retry hook when a credit frees.
     */
    virtual bool tryInject(const Message &msg) = 0;

    /** Called by the destination NI when it frees eject-queue space. */
    virtual void ejectSpaceFreed(sim::NodeId id, Lane lane) = 0;

    /**
     * Fail the node (test hook): subsequent packets to/from it are
     * dropped and attached NIs are notified of the failure.
     */
    virtual void failNode(sim::NodeId id) = 0;

    /** Number of attached nodes. */
    virtual std::size_t nodeCount() const = 0;
};

/**
 * Per-node NI: a pair of inject queues and a pair of eject queues (one
 * per virtual lane), connected to the fabric on one side and the RMC
 * pipelines on the other.
 */
/** NI queue configuration. */
struct NiParams
{
    std::size_t injectQueueDepth = 16;
    std::size_t ejectQueueDepth = 16;
};

class NetworkInterface
{
  public:
    NetworkInterface(sim::EventQueue &eq, sim::StatRegistry &stats,
                     const std::string &name, sim::NodeId id, Fabric &fabric,
                     const NiParams &params = {});

    sim::NodeId nodeId() const { return id_; }

    //
    // Egress (RMC pipelines -> fabric)
    //

    /** Queue a message for injection. @retval false if the queue is full. */
    bool trySend(const Message &msg);

    /** True if trySend would accept a message on @p lane. */
    bool canSend(Lane lane) const;

    /** Register a callback fired whenever send space frees on @p lane. */
    void onSendSpace(Lane lane, sim::Callback fn);

    //
    // Ingress (fabric -> RMC pipelines)
    //

    /** True if a message is waiting on @p lane. */
    bool hasMessage(Lane lane) const;

    /** Pop the oldest message on @p lane. @pre hasMessage(lane) */
    Message pop(Lane lane);

    /** Register a callback fired whenever a message arrives on @p lane. */
    void onArrival(Lane lane, sim::Callback fn);

    /** Register a callback fired if the fabric reports a failure. */
    void onFabricFailure(sim::Callback fn);

    //
    // Fabric-side hooks
    //

    /** Fabric delivers a packet. @retval false if the eject queue is full
     *  (the fabric then holds the packet and its credit). */
    bool deliver(const Message &msg);

    /** Fabric signals that credits freed on @p lane; retries injection. */
    void injectSpaceFreed(Lane lane);

    /** Fabric reports node/link failure. */
    void notifyFailure();

    std::size_t injectDepth(Lane lane) const;
    std::size_t ejectDepth(Lane lane) const;

  private:
    sim::EventQueue &eq_;
    sim::NodeId id_;
    Fabric &fabric_;
    NiParams params_;

    sim::RingBuffer<Message> injectQ_[kNumLanes];
    sim::RingBuffer<Message> ejectQ_[kNumLanes];
    sim::Callback sendSpaceCb_[kNumLanes];
    sim::Callback arrivalCb_[kNumLanes];
    sim::Callback failureCb_;

    sim::Counter sent_;
    sim::Counter received_;

    void pumpInject(Lane lane);

    std::size_t li(Lane l) const { return static_cast<std::size_t>(l); }
};

} // namespace sonuma::fab

#endif // SONUMA_FABRIC_FABRIC_HH
