/**
 * @file
 * Abstract fabric interface plus the per-node network interface (NI).
 *
 * The NI owns per-lane inject/eject queues connecting the RMC pipelines
 * to the fabric (paper Fig. 3a). Link-level flow control is credit based:
 * a packet occupies one credit from injection until the destination NI
 * accepts it into its eject queue, so a saturated receiver backpressures
 * the sender without dropping packets.
 */

#ifndef SONUMA_FABRIC_FABRIC_HH
#define SONUMA_FABRIC_FABRIC_HH

#include <memory>
#include <string>
#include <vector>

#include "fabric/message.hh"
#include "sim/callback.hh"
#include "sim/event_queue.hh"
#include "sim/ring_buffer.hh"
#include "sim/stats.hh"
#include "sim/time_series.hh"
#include "sim/types.hh"

namespace sonuma::fab {

class NetworkInterface;

/** What kind of fabric fault a notification describes. */
enum class FailureKind : std::uint8_t
{
    kNone = 0,  //!< no failure observed yet
    kNodeDown,  //!< node @c a failed
    kNodeUp,    //!< node @c a recovered
    kLinkDown,  //!< directed link @c a -> @c b failed
    kLinkUp,    //!< directed link @c a -> @c b recovered
};

/**
 * Failure reason delivered with NetworkInterface::notifyFailure(): which
 * peer is involved and whether the fault is node- or link-scoped.
 */
struct FailureInfo
{
    FailureKind kind = FailureKind::kNone;
    sim::NodeId a = 0;  //!< failed/recovered node, or link source
    sim::NodeId b = 0;  //!< link destination (== @c a for node events)
};

/** Topology-independent fabric interface. */
class Fabric
{
  public:
    virtual ~Fabric() = default;

    /** Attach a node's NI. Must be called once per node id. */
    virtual void attach(sim::NodeId id, NetworkInterface *ni) = 0;

    /**
     * Try to inject a message at its source node. Returns false when the
     * source has no credit on the message's lane; the fabric will invoke
     * the NI's retry hook when a credit frees.
     */
    virtual bool tryInject(const Message &msg) = 0;

    /** Called by the destination NI when it frees eject-queue space. */
    virtual void ejectSpaceFreed(sim::NodeId id, Lane lane) = 0;

    /**
     * Fail the node: packets to/from it (including any parked at its
     * eject queue) are dropped and attached NIs are notified.
     */
    virtual void failNode(sim::NodeId id) = 0;

    /** Bring a failed node back; attached NIs see a kNodeUp notification. */
    virtual void recoverNode(sim::NodeId id) = 0;

    /**
     * Fail the directed link @p from -> @p to: packets routed over it are
     * dropped (dor) or detoured (adaptive). NIs see kLinkDown.
     * @throws std::invalid_argument if the link does not exist.
     */
    virtual void failLink(sim::NodeId from, sim::NodeId to) = 0;

    /** Restore a failed link; attached NIs see kLinkUp. */
    virtual void recoverLink(sim::NodeId from, sim::NodeId to) = 0;

    /**
     * Mark the directed link @p from -> @p to lossy (transient drop
     * window): packets crossing it are silently dropped and counted, with
     * no failure notification. Routing still treats the link as up.
     */
    virtual void setLinkLossy(sim::NodeId from, sim::NodeId to,
                              bool lossy) = 0;

    /**
     * Check that @p from -> @p to names a link of this fabric.
     * @throws std::invalid_argument with a precise message otherwise.
     */
    virtual void validateLink(sim::NodeId from, sim::NodeId to) const = 0;

    /** Number of attached nodes. */
    virtual std::size_t nodeCount() const = 0;

    /**
     * Messages dropped by faults, unified across topologies: dead-node
     * arrivals, dead-link crossings, lossy-window drops, parked packets
     * flushed by failNode, and (torus, adaptive) hop-cap victims all
     * land in this one counter.
     */
    virtual std::uint64_t droppedMessages() const = 0;
};

/**
 * Per-node NI: a pair of inject queues and a pair of eject queues (one
 * per virtual lane), connected to the fabric on one side and the RMC
 * pipelines on the other.
 */
/** NI queue configuration. */
struct NiParams
{
    std::size_t injectQueueDepth = 16;
    std::size_t ejectQueueDepth = 16;
};

class NetworkInterface
{
  public:
    NetworkInterface(sim::EventQueue &eq, sim::StatRegistry &stats,
                     const std::string &name, sim::NodeId id, Fabric &fabric,
                     const NiParams &params = {});

    sim::NodeId nodeId() const { return id_; }

    //
    // Egress (RMC pipelines -> fabric)
    //

    /** Queue a message for injection. @retval false if the queue is full. */
    bool trySend(const Message &msg);

    /** True if trySend would accept a message on @p lane. */
    bool canSend(Lane lane) const;

    /** Register a callback fired whenever send space frees on @p lane. */
    void onSendSpace(Lane lane, sim::Callback fn);

    //
    // Ingress (fabric -> RMC pipelines)
    //

    /** True if a message is waiting on @p lane. */
    bool hasMessage(Lane lane) const;

    /** Pop the oldest message on @p lane. @pre hasMessage(lane) */
    Message pop(Lane lane);

    /** Register a callback fired whenever a message arrives on @p lane. */
    void onArrival(Lane lane, sim::Callback fn);

    /** Register a callback fired if the fabric reports a failure. */
    void onFabricFailure(sim::Callback fn);

    //
    // Fabric-side hooks
    //

    /** Fabric delivers a packet. @retval false if the eject queue is full
     *  (the fabric then holds the packet and its credit). */
    bool deliver(const Message &msg);

    /** Fabric signals that credits freed on @p lane; retries injection. */
    void injectSpaceFreed(Lane lane);

    /** Fabric reports a node/link failure or recovery. */
    void notifyFailure(const FailureInfo &info);

    /** The most recent failure notification (kNone before the first). */
    const FailureInfo &lastFailure() const { return lastFailure_; }

    std::size_t injectDepth(Lane lane) const;
    std::size_t ejectDepth(Lane lane) const;

  private:
    sim::EventQueue &eq_;
    sim::NodeId id_;
    Fabric &fabric_;
    NiParams params_;

    sim::RingBuffer<Message> injectQ_[kNumLanes];
    sim::RingBuffer<Message> ejectQ_[kNumLanes];
    sim::Callback sendSpaceCb_[kNumLanes];
    sim::Callback arrivalCb_[kNumLanes];
    bool pumping_[kNumLanes] = {}; //!< pumpInject reentrancy guard
    sim::Callback failureCb_;
    FailureInfo lastFailure_;

    sim::Counter sent_;
    sim::Counter received_;
    // Eject-queue depth probe (reply-path backpressure indicator);
    // created in the constructor when sampling is enabled.
    std::unique_ptr<sim::TimeSeries> ejectDepthProbe_;

    void pumpInject(Lane lane);

    std::size_t li(Lane l) const { return static_cast<std::size_t>(l); }
};

} // namespace sonuma::fab

#endif // SONUMA_FABRIC_FABRIC_HH
