/**
 * @file
 * Deterministic fault injection: scheduled node/link failures.
 *
 * A FaultPlan is an ordered list of sim-time fault events — node
 * kill/recover, directed link kill/recover, and transient drop windows —
 * built programmatically or parsed from a compact scenario spec. A
 * FaultInjector arms the plan on the event queue, where each event calls
 * the corresponding Fabric method at its scheduled tick. Because faults
 * are ordinary events in the deterministic queue, a given (seed, plan)
 * pair replays bit-identically: degraded-mode runs are as reproducible
 * as healthy ones.
 */

#ifndef SONUMA_FABRIC_FAULT_HH
#define SONUMA_FABRIC_FAULT_HH

#include <cstdint>
#include <string>
#include <vector>

#include "fabric/fabric.hh"
#include "sim/event_queue.hh"
#include "sim/types.hh"

namespace sonuma::fab {

/** One scheduled fault event. */
enum class FaultEventKind : std::uint8_t
{
    kNodeKill,
    kNodeRecover,
    kLinkKill,
    kLinkRecover,
    kDropStart,  //!< begin a lossy window on link a->b
    kDropEnd,    //!< end a lossy window on link a->b
};

struct FaultEvent
{
    sim::Tick at = 0;
    FaultEventKind kind = FaultEventKind::kNodeKill;
    sim::NodeId a = 0;  //!< victim node, or link source
    sim::NodeId b = 0;  //!< link destination (== @c a for node events)
};

/**
 * A replayable schedule of fault events.
 *
 * Build with the fluent mutators, or parse a scenario spec:
 *
 *     none                       healthy baseline (empty plan)
 *     incast                     empty plan; workload-level traffic storm
 *     node-kill@T[+D][:N]        kill node N at T, recover at T+D if given
 *     link-kill@T[+D][:A-B]      kill directed link A->B at T
 *     link-flap@T~PxC[:A-B]      C kill/recover cycles of period P from T
 *     drop@T+D[:A-B]             lossy (silent-drop) window on A->B
 *
 * Times accept ns/us/ms suffixes (e.g. `node-kill@50us+100us:3`).
 * Defaults: victim node = nodes/2, link = 0 -> its first neighbor.
 */
class FaultPlan
{
  public:
    FaultPlan &killNode(sim::Tick at, sim::NodeId n);
    FaultPlan &recoverNode(sim::Tick at, sim::NodeId n);
    FaultPlan &killLink(sim::Tick at, sim::NodeId from, sim::NodeId to);
    FaultPlan &recoverLink(sim::Tick at, sim::NodeId from, sim::NodeId to);
    /** Lossy window on link @p from -> @p to over [@p start, @p end). */
    FaultPlan &dropWindow(sim::Tick start, sim::Tick end, sim::NodeId from,
                          sim::NodeId to);
    /** @p cycles kill/recover cycles of @p period from @p start (link
     *  down for the first half of each period). */
    FaultPlan &flapLink(sim::Tick start, sim::Tick period,
                        std::uint32_t cycles, sim::NodeId from,
                        sim::NodeId to);

    bool empty() const { return events_.empty(); }
    const std::vector<FaultEvent> &events() const { return events_; }

    /** Events ordered by time (stable: insertion order breaks ties). */
    std::vector<FaultEvent> sorted() const;

    /**
     * Check node ids against @p nodeCount.
     * @throws std::invalid_argument on the first out-of-range event.
     */
    void validate(std::size_t nodeCount) const;

    /**
     * Parse a scenario spec (grammar above) into @p out. Returns false
     * and fills @p error — with a did-you-mean hint for misspelled
     * scenario keywords — on malformed specs. @p nodes supplies the
     * defaults for omitted victims.
     */
    static bool parse(const std::string &spec, std::uint32_t nodes,
                      FaultPlan *out, std::string *error);

    /** Leading scenario keyword of a spec ("none", "node-kill", ...). */
    static std::string scenarioOf(const std::string &spec);

    /** Known scenario keywords, for help text and did-you-mean. */
    static const std::vector<std::string> &knownScenarios();

  private:
    std::vector<FaultEvent> events_;
};

/**
 * Arms a FaultPlan on the event queue against a fabric. Validation
 * (node ranges via FaultPlan::validate, link existence via
 * Fabric::validateLink) happens at arm time, so a bad plan throws
 * before the simulation starts rather than from inside an event.
 */
class FaultInjector
{
  public:
    FaultInjector(sim::EventQueue &eq, Fabric &fabric, FaultPlan plan);

    /** Schedule every event. @throws std::invalid_argument on bad plans. */
    void arm();

    std::size_t eventCount() const { return plan_.events().size(); }

  private:
    sim::EventQueue &eq_;
    Fabric &fabric_;
    FaultPlan plan_;
    bool armed_ = false;
};

} // namespace sonuma::fab

#endif // SONUMA_FABRIC_FAULT_HH
