/**
 * @file
 * Crossbar fabric implementation.
 */

#include "fabric/crossbar.hh"

#include <algorithm>
#include <cassert>
#include <stdexcept>
#include <string>

#include "sim/log.hh"

namespace sonuma::fab {

CrossbarFabric::CrossbarFabric(sim::EventQueue &eq,
                               sim::StatRegistry &stats,
                               const CrossbarParams &params)
    : eq_(eq), stats_(stats), params_(params),
      delivered_(stats, "fabric.delivered", "messages delivered"),
      dropped_(stats, "fabric.dropped", "messages dropped (failures)"),
      parkedCount_(stats, "fabric.parked",
                   "deliveries parked on full eject queues")
{
}

void
CrossbarFabric::attach(sim::NodeId id, NetworkInterface *ni)
{
    if (endpoints_.size() <= id)
        endpoints_.resize(id + 1);
    Endpoint &ep = endpoints_[id];
    assert(!ep.ni && "node id attached twice");
    ep.ni = ni;
    for (std::size_t l = 0; l < kNumLanes; ++l)
        ep.credits[l] = params_.creditsPerLane;

    if (!stats_.samplingEnabled())
        return;
    // Per-node egress probes; lanes share the node's egress bandwidth
    // budget, so their busy time and depth are summed.
    const std::string base = "fabric.node" + std::to_string(id) + ".egress";
    probes_.push_back(std::make_unique<sim::TimeSeries>(
        stats_, base + ".util", "fraction",
        "egress pipe serialization utilization",
        sim::TimeSeries::Kind::kRate, [this, id] {
            sim::Tick busy = 0;
            for (std::size_t l = 0; l < kNumLanes; ++l)
                busy += endpoints_[id].egress[l].busyThrough(eq_.now());
            return static_cast<double>(busy);
        }));
    probes_.push_back(std::make_unique<sim::TimeSeries>(
        stats_, base + ".qdepth", "packets",
        "packets serialized or in flight from this node",
        sim::TimeSeries::Kind::kGauge, [this, id] {
            std::size_t depth = 0;
            for (std::size_t l = 0; l < kNumLanes; ++l)
                depth += endpoints_[id].egress[l].queued();
            return static_cast<double>(depth);
        }));
}

bool
CrossbarFabric::tryInject(const Message &msg)
{
    assert(msg.srcNid < endpoints_.size() && endpoints_[msg.srcNid].ni);
    Endpoint &src = endpoints_[msg.srcNid];
    const Lane lane = msg.lane();

    if (src.failed || msg.dstNid >= endpoints_.size() ||
        !endpoints_[msg.dstNid].ni) {
        dropped_.inc();
        return true; // swallowed: reliable delivery not possible
    }
    if (endpoints_[msg.dstNid].failed) {
        dropped_.inc();
        return true;
    }
    if (src.credits[li(lane)] == 0)
        return false;
    --src.credits[li(lane)];

    // Serialize on the per-lane egress pipe, then propagate (flat).
    const sim::Tick ser = static_cast<sim::Tick>(
        static_cast<double>(msg.wireBytes()) / params_.linkBandwidth * 1e12);
    const sim::NodeId srcId = msg.srcNid;
    auto &link = src.egress[li(lane)];
    link.push(eq_.now(), ser, params_.linkLatency, msg);
    link.arm(eq_, [this, srcId, lane] { drain(srcId, lane); });
    return true;
}

void
CrossbarFabric::drain(sim::NodeId srcId, Lane lane)
{
    endpoints_[srcId].egress[li(lane)].drain(
        eq_, [this](const Message &m) { arrive(m); },
        [this, srcId, lane] { drain(srcId, lane); });
}

void
CrossbarFabric::arrive(const Message &msg)
{
    Endpoint &dst = endpoints_[msg.dstNid];
    const Lane lane = msg.lane();
    if (dst.failed) {
        dropped_.inc();
        returnCredit(msg.srcNid, lane);
        return;
    }
    // Link faults are checked at arrival so packets already serialized
    // when the link died are lost too, matching a real cable pull.
    if ((!failedLinks_.empty() &&
         contains(failedLinks_, msg.srcNid, msg.dstNid)) ||
        (!lossyLinks_.empty() &&
         contains(lossyLinks_, msg.srcNid, msg.dstNid))) {
        dropped_.inc();
        returnCredit(msg.srcNid, lane);
        return;
    }
    if (dst.ni->deliver(msg)) {
        delivered_.inc();
        returnCredit(msg.srcNid, lane);
    } else {
        // Receiver eject queue full: park the packet, keep the credit.
        parkedCount_.inc();
        dst.parked[li(lane)].push(msg);
    }
}

void
CrossbarFabric::ejectSpaceFreed(sim::NodeId id, Lane lane)
{
    Endpoint &dst = endpoints_[id];
    if (dst.failed) {
        // A failed node must not receive parked traffic; drop it so the
        // senders' credits come back (unified with the torus).
        flushParked(dst);
        return;
    }
    auto &q = dst.parked[li(lane)];
    while (!q.empty()) {
        if (!dst.ni->deliver(q.front()))
            break;
        delivered_.inc();
        returnCredit(q.front().srcNid, lane);
        q.pop();
    }
}

void
CrossbarFabric::returnCredit(sim::NodeId srcId, Lane lane)
{
    Endpoint &src = endpoints_[srcId];
    ++src.credits[li(lane)];
    assert(src.credits[li(lane)] <= params_.creditsPerLane);
    if (src.ni)
        src.ni->injectSpaceFreed(lane);
}

void
CrossbarFabric::flushParked(Endpoint &ep)
{
    for (std::size_t l = 0; l < kNumLanes; ++l) {
        auto &q = ep.parked[l];
        while (!q.empty()) {
            dropped_.inc();
            returnCredit(q.front().srcNid, static_cast<Lane>(l));
            q.pop();
        }
    }
}

void
CrossbarFabric::notifyAll(const FailureInfo &info)
{
    // Notify every attached NI (the paper's driver is told of fabric
    // failures and may reset RMC state, §5.1).
    for (auto &ep : endpoints_) {
        if (ep.ni)
            ep.ni->notifyFailure(info);
    }
}

bool
CrossbarFabric::contains(
    const std::vector<std::pair<sim::NodeId, sim::NodeId>> &links,
    sim::NodeId from, sim::NodeId to)
{
    return std::find(links.begin(), links.end(),
                     std::make_pair(from, to)) != links.end();
}

void
CrossbarFabric::failNode(sim::NodeId id)
{
    assert(id < endpoints_.size());
    Endpoint &ep = endpoints_[id];
    if (ep.failed)
        return;
    ep.failed = true;
    flushParked(ep);
    notifyAll({FailureKind::kNodeDown, id, id});
}

void
CrossbarFabric::recoverNode(sim::NodeId id)
{
    assert(id < endpoints_.size());
    Endpoint &ep = endpoints_[id];
    if (!ep.failed)
        return;
    ep.failed = false;
    notifyAll({FailureKind::kNodeUp, id, id});
}

void
CrossbarFabric::validateLink(sim::NodeId from, sim::NodeId to) const
{
    if (from >= endpoints_.size() || to >= endpoints_.size())
        throw std::invalid_argument(
            "crossbar link " + std::to_string(from) + "->" +
            std::to_string(to) + ": node id out of range (crossbar has " +
            std::to_string(endpoints_.size()) + " nodes)");
    if (from == to)
        throw std::invalid_argument(
            "crossbar link " + std::to_string(from) + "->" +
            std::to_string(to) + ": a node has no link to itself");
}

void
CrossbarFabric::failLink(sim::NodeId from, sim::NodeId to)
{
    validateLink(from, to);
    if (contains(failedLinks_, from, to))
        return;
    failedLinks_.emplace_back(from, to);
    notifyAll({FailureKind::kLinkDown, from, to});
}

void
CrossbarFabric::recoverLink(sim::NodeId from, sim::NodeId to)
{
    validateLink(from, to);
    auto it = std::find(failedLinks_.begin(), failedLinks_.end(),
                        std::make_pair(from, to));
    if (it == failedLinks_.end())
        return;
    failedLinks_.erase(it);
    notifyAll({FailureKind::kLinkUp, from, to});
}

void
CrossbarFabric::setLinkLossy(sim::NodeId from, sim::NodeId to, bool lossy)
{
    validateLink(from, to);
    auto it = std::find(lossyLinks_.begin(), lossyLinks_.end(),
                        std::make_pair(from, to));
    if (lossy && it == lossyLinks_.end())
        lossyLinks_.emplace_back(from, to);
    else if (!lossy && it != lossyLinks_.end())
        lossyLinks_.erase(it);
}

} // namespace sonuma::fab
