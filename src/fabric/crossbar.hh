/**
 * @file
 * Full-crossbar fabric: the paper's simulated-hardware configuration
 * ("full crossbar with reliable links between RMCs and a flat latency of
 * 50 ns", §7.1).
 *
 * Each node has one egress serialization pipe per virtual lane; packets
 * then experience a flat propagation delay to any destination. Credits
 * are per (source, lane): a packet holds a credit from injection until
 * the destination NI accepts it, so receiver backpressure propagates to
 * senders losslessly.
 *
 * Zero-allocation data path: in-flight packets sit in per-(source, lane)
 * ring buffers with precomputed arrival ticks (FIFO serialization makes
 * arrivals monotone per ring), and a single drain event per ring hands
 * them to the destination — no per-packet closures copying ~136 B
 * Messages through the event queue.
 */

#ifndef SONUMA_FABRIC_CROSSBAR_HH
#define SONUMA_FABRIC_CROSSBAR_HH

#include <memory>
#include <utility>
#include <vector>

#include "fabric/fabric.hh"
#include "sim/ring_buffer.hh"
#include "sim/serialized_link.hh"
#include "sim/time_series.hh"

namespace sonuma::fab {

/** Crossbar configuration. */
struct CrossbarParams
{
    sim::Tick linkLatency = sim::nsToTicks(50.0); //!< one-way, flat
    double linkBandwidth = 12.8e9;                //!< bytes/s per node/lane (QPI-class)
    std::uint32_t creditsPerLane = 64;            //!< in-flight packets
};

class CrossbarFabric : public Fabric
{
  public:
    CrossbarFabric(sim::EventQueue &eq, sim::StatRegistry &stats,
                   const CrossbarParams &params = {});

    void attach(sim::NodeId id, NetworkInterface *ni) override;
    bool tryInject(const Message &msg) override;
    void ejectSpaceFreed(sim::NodeId id, Lane lane) override;
    void failNode(sim::NodeId id) override;
    void recoverNode(sim::NodeId id) override;
    void failLink(sim::NodeId from, sim::NodeId to) override;
    void recoverLink(sim::NodeId from, sim::NodeId to) override;
    void setLinkLossy(sim::NodeId from, sim::NodeId to, bool lossy) override;
    void validateLink(sim::NodeId from, sim::NodeId to) const override;
    std::size_t nodeCount() const override { return endpoints_.size(); }

    const CrossbarParams &params() const { return params_; }

    /** Messages dropped due to failed nodes/links (test observability). */
    std::uint64_t droppedMessages() const override
    {
        return dropped_.value();
    }

  private:
    struct Endpoint
    {
        Endpoint() = default;
        Endpoint(const Endpoint &) = delete;
        Endpoint &operator=(const Endpoint &) = delete;
        Endpoint(Endpoint &&) noexcept = default;
        Endpoint &operator=(Endpoint &&) noexcept = default;

        NetworkInterface *ni = nullptr;
        bool failed = false;
        // Per-lane egress serialization pipe (one drain event per pipe).
        sim::SerializedLink<Message> egress[kNumLanes];
        std::uint32_t credits[kNumLanes] = {0, 0};
        // Packets that arrived at a full eject queue, per lane.
        sim::RingBuffer<Message> parked[kNumLanes];
    };

    sim::EventQueue &eq_;
    sim::StatRegistry &stats_;
    CrossbarParams params_;
    std::vector<Endpoint> endpoints_;
    // Per-node egress probes (utilization + queue depth), created at
    // attach() time. endpoints_ grows with attach(), so probe closures
    // index endpoints_[id] at sample time instead of caching addresses.
    std::vector<std::unique_ptr<sim::TimeSeries>> probes_;
    // Directed point-to-point link faults. Rack-scale crossbars have a few
    // faulted pairs at most, so a scanned vector keeps the healthy path
    // allocation- and hash-free.
    std::vector<std::pair<sim::NodeId, sim::NodeId>> failedLinks_;
    std::vector<std::pair<sim::NodeId, sim::NodeId>> lossyLinks_;

    sim::Counter delivered_;
    sim::Counter dropped_;
    sim::Counter parkedCount_;

    void drain(sim::NodeId src, Lane lane);
    void arrive(const Message &msg);
    void returnCredit(sim::NodeId src, Lane lane);
    void flushParked(Endpoint &ep);
    void notifyAll(const FailureInfo &info);
    static bool contains(
        const std::vector<std::pair<sim::NodeId, sim::NodeId>> &links,
        sim::NodeId from, sim::NodeId to);

    std::size_t li(Lane l) const { return static_cast<std::size_t>(l); }
};

} // namespace sonuma::fab

#endif // SONUMA_FABRIC_CROSSBAR_HH
