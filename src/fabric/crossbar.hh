/**
 * @file
 * Full-crossbar fabric: the paper's simulated-hardware configuration
 * ("full crossbar with reliable links between RMCs and a flat latency of
 * 50 ns", §7.1).
 *
 * Each node has one egress serialization pipe per virtual lane; packets
 * then experience a flat propagation delay to any destination. Credits
 * are per (source, lane): a packet holds a credit from injection until
 * the destination NI accepts it, so receiver backpressure propagates to
 * senders losslessly.
 */

#ifndef SONUMA_FABRIC_CROSSBAR_HH
#define SONUMA_FABRIC_CROSSBAR_HH

#include <deque>
#include <memory>
#include <vector>

#include "fabric/fabric.hh"
#include "sim/service.hh"

namespace sonuma::fab {

/** Crossbar configuration. */
struct CrossbarParams
{
    sim::Tick linkLatency = sim::nsToTicks(50.0); //!< one-way, flat
    double linkBandwidth = 12.8e9;                //!< bytes/s per node/lane (QPI-class)
    std::uint32_t creditsPerLane = 64;            //!< in-flight packets
};

class CrossbarFabric : public Fabric
{
  public:
    CrossbarFabric(sim::EventQueue &eq, sim::StatRegistry &stats,
                   const CrossbarParams &params = {});

    void attach(sim::NodeId id, NetworkInterface *ni) override;
    bool tryInject(const Message &msg) override;
    void ejectSpaceFreed(sim::NodeId id, Lane lane) override;
    void failNode(sim::NodeId id) override;
    std::size_t nodeCount() const override { return endpoints_.size(); }

    const CrossbarParams &params() const { return params_; }

    /** Messages dropped due to failed nodes (test observability). */
    std::uint64_t droppedMessages() const { return dropped_.value(); }

  private:
    struct Endpoint
    {
        Endpoint() = default;
        Endpoint(const Endpoint &) = delete;
        Endpoint &operator=(const Endpoint &) = delete;
        Endpoint(Endpoint &&) noexcept = default;
        Endpoint &operator=(Endpoint &&) noexcept = default;

        NetworkInterface *ni = nullptr;
        bool failed = false;
        // One serialization pipe and credit pool per lane.
        std::unique_ptr<sim::ServiceResource> egress[kNumLanes];
        std::uint32_t credits[kNumLanes] = {0, 0};
        // Packets that arrived at a full eject queue, per lane.
        std::deque<Message> parked[kNumLanes];
    };

    sim::EventQueue &eq_;
    CrossbarParams params_;
    std::vector<Endpoint> endpoints_;

    sim::Counter delivered_;
    sim::Counter dropped_;
    sim::Counter parkedCount_;

    void arrive(Message msg);
    void returnCredit(sim::NodeId src, Lane lane);

    std::size_t li(Lane l) const { return static_cast<std::size_t>(l); }
};

} // namespace sonuma::fab

#endif // SONUMA_FABRIC_CROSSBAR_HH
