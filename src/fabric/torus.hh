/**
 * @file
 * k-ary n-cube (torus) fabric with dimension-order routing.
 *
 * Per-hop cost = router pin-to-pin delay + link serialization (per-link
 * FIFO servers, so contention queues show up in latency). Flow control is
 * end-to-end credit based per (source, lane): hop-by-hop VC buffer
 * occupancy is abstracted away, which preserves the latency/bandwidth
 * behaviour at the paper's load levels while guaranteeing deadlock
 * freedom by construction (every in-network packet drains through
 * work-conserving servers; see DESIGN.md).
 *
 * Zero-allocation data path: each output port is a ring of in-flight
 * packets with precomputed hop-completion ticks and one drain event, the
 * same structure the crossbar uses for its egress pipes.
 */

#ifndef SONUMA_FABRIC_TORUS_HH
#define SONUMA_FABRIC_TORUS_HH

#include <memory>
#include <vector>

#include "fabric/fabric.hh"
#include "fabric/router.hh"
#include "sim/ring_buffer.hh"
#include "sim/serialized_link.hh"
#include "sim/time_series.hh"

namespace sonuma::fab {

/** Torus configuration. Defaults give a 4x4 2D torus of QPI-like links. */
struct TorusParams
{
    std::vector<std::uint32_t> dims = {4, 4};
    sim::Tick hopLatency = sim::nsToTicks(11.0); //!< Alpha 21364-like [39]
    double linkBandwidth = 25.6e9;               //!< bytes/s per link
    std::uint32_t creditsPerLane = 64;           //!< end-to-end, per source
    RoutingMode routing = RoutingMode::kDor;     //!< dor keeps artifacts stable
};

class TorusFabric : public Fabric
{
  public:
    TorusFabric(sim::EventQueue &eq, sim::StatRegistry &stats,
                const TorusParams &params = {});

    void attach(sim::NodeId id, NetworkInterface *ni) override;
    bool tryInject(const Message &msg) override;
    void ejectSpaceFreed(sim::NodeId id, Lane lane) override;
    void failNode(sim::NodeId id) override;
    void recoverNode(sim::NodeId id) override;
    void failLink(sim::NodeId from, sim::NodeId to) override;
    void recoverLink(sim::NodeId from, sim::NodeId to) override;
    void setLinkLossy(sim::NodeId from, sim::NodeId to, bool lossy) override;
    void validateLink(sim::NodeId from, sim::NodeId to) const override;
    std::size_t nodeCount() const override { return endpoints_.size(); }

    const TorusRouting &routing() const { return routing_; }
    const TorusParams &params() const { return params_; }
    std::uint64_t droppedMessages() const override
    {
        return dropped_.value();
    }

    /** Mean hops of delivered messages (for topology ablation). */
    double
    meanHops() const
    {
        return delivered_.value() == 0
                   ? 0.0
                   : static_cast<double>(totalHops_.value()) /
                         static_cast<double>(delivered_.value());
    }

  private:
    /** One packet traversing a link toward its next router. */
    struct InFlight
    {
        sim::NodeId next = 0;
        std::uint32_t hops = 0;
        Message msg;
    };

    struct Endpoint
    {
        Endpoint() = default;
        Endpoint(const Endpoint &) = delete;
        Endpoint &operator=(const Endpoint &) = delete;
        Endpoint(Endpoint &&) noexcept = default;
        Endpoint &operator=(Endpoint &&) noexcept = default;

        NetworkInterface *ni = nullptr;
        bool failed = false;
        std::uint32_t credits[kNumLanes] = {0, 0};
        sim::RingBuffer<Message> parked[kNumLanes];
        // One serializing link per outgoing port per lane.
        std::vector<sim::SerializedLink<InFlight>> ports;
        // Physical link state per outgoing direction (lanes share a link).
        std::vector<bool> linkUp;
        std::vector<bool> lossy;
    };

    /** Sentinel "no usable direction" value (also Message::lastDir unset). */
    static constexpr std::uint32_t kNoDir = 0xff;

    sim::EventQueue &eq_;
    sim::StatRegistry &stats_;
    TorusParams params_;
    TorusRouting routing_;
    std::vector<Endpoint> endpoints_;
    std::uint32_t hopCap_; //!< adaptive-misroute livelock backstop

    sim::Counter delivered_;
    sim::Counter dropped_;
    sim::Counter totalHops_;

    // Per-(node, direction) link probes (utilization + queue depth),
    // created at attach() time; see docs/observability.md.
    std::vector<std::unique_ptr<sim::TimeSeries>> probes_;

    void forward(sim::NodeId here, const Message &msg, std::uint32_t hops);
    void drain(sim::NodeId node, std::uint32_t portIdx);
    void returnCredit(sim::NodeId src, Lane lane);
    void flushParked(Endpoint &ep);
    void notifyAll(const FailureInfo &info);
    std::uint32_t dirTo(sim::NodeId from, sim::NodeId to) const;
    std::uint32_t adaptiveDir(const Endpoint &ep, sim::NodeId here,
                              const Message &msg) const;

    std::size_t li(Lane l) const { return static_cast<std::size_t>(l); }
};

} // namespace sonuma::fab

#endif // SONUMA_FABRIC_TORUS_HH
