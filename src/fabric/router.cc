/**
 * @file
 * Torus routing arithmetic.
 */

#include "fabric/router.hh"

#include <algorithm>
#include <cassert>

namespace sonuma::fab {

const char *
routingModeName(RoutingMode mode)
{
    return mode == RoutingMode::kAdaptive ? "adaptive" : "dor";
}

bool
parseRoutingMode(const std::string &name, RoutingMode *out,
                 std::string *error)
{
    if (name == "dor") {
        *out = RoutingMode::kDor;
        return true;
    }
    if (name == "adaptive") {
        *out = RoutingMode::kAdaptive;
        return true;
    }
    if (error) {
        *error = "unknown routing mode '" + name + "'";
        // Cheap did-you-mean: prefix match against the two known names.
        for (const char *cand : {"dor", "adaptive"}) {
            const std::string c(cand);
            if (!name.empty() &&
                (c.find(name) == 0 || name.find(c) == 0)) {
                *error += " (did you mean '" + c + "'?)";
                return false;
            }
        }
        *error += " (valid: dor, adaptive)";
    }
    return false;
}

TorusRouting::TorusRouting(std::vector<std::uint32_t> dims)
    : dims_(std::move(dims))
{
    assert(!dims_.empty());
    total_ = 1;
    strides_.reserve(dims_.size());
    for (auto k : dims_) {
        assert(k >= 2 && "torus radix must be >= 2");
        strides_.push_back(total_);
        total_ *= k;
    }
}

std::vector<std::uint32_t>
TorusRouting::coords(sim::NodeId id) const
{
    std::vector<std::uint32_t> c(dims_.size());
    std::uint32_t rest = id;
    for (std::size_t d = 0; d < dims_.size(); ++d) {
        c[d] = rest % dims_[d];
        rest /= dims_[d];
    }
    return c;
}

sim::NodeId
TorusRouting::idAt(const std::vector<std::uint32_t> &coords) const
{
    std::uint32_t id = 0;
    std::uint32_t stride = 1;
    for (std::size_t d = 0; d < dims_.size(); ++d) {
        id += coords[d] * stride;
        stride *= dims_[d];
    }
    return static_cast<sim::NodeId>(id);
}

std::uint32_t
TorusRouting::nextDir(sim::NodeId here, sim::NodeId dst) const
{
    assert(here != dst);
    // Digit-at-a-time comparison: this runs once per hop per packet, so
    // it must not materialize coordinate vectors.
    for (std::size_t d = 0; d < dims_.size(); ++d) {
        const std::uint32_t a = digit(here, d);
        const std::uint32_t b = digit(dst, d);
        if (a == b)
            continue;
        const std::uint32_t k = dims_[d];
        const std::uint32_t fwd = (b + k - a) % k;  // hops going +
        const std::uint32_t bwd = (a + k - b) % k;  // hops going -
        return static_cast<std::uint32_t>(
            fwd <= bwd ? 2 * d : 2 * d + 1);
    }
    assert(false && "here == dst");
    return 0;
}

sim::NodeId
TorusRouting::neighbor(sim::NodeId id, std::uint32_t dir) const
{
    const std::size_t d = dir / 2;
    const bool positive = (dir % 2) == 0;
    const std::uint32_t k = dims_[d];
    const std::uint32_t c = digit(id, d);
    const std::uint32_t next = positive ? (c + 1) % k : (c + k - 1) % k;
    return static_cast<sim::NodeId>(id + (next - c) * strides_[d]);
}

std::uint32_t
TorusRouting::hopCount(sim::NodeId a, sim::NodeId b) const
{
    std::uint32_t hops = 0;
    for (std::size_t d = 0; d < dims_.size(); ++d) {
        const std::uint32_t k = dims_[d];
        const std::uint32_t ca = digit(a, d);
        const std::uint32_t cb = digit(b, d);
        const std::uint32_t fwd = (cb + k - ca) % k;
        const std::uint32_t bwd = (ca + k - cb) % k;
        hops += std::min(fwd, bwd);
    }
    return hops;
}

} // namespace sonuma::fab
