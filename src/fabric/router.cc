/**
 * @file
 * Torus routing arithmetic.
 */

#include "fabric/router.hh"

#include <cassert>

namespace sonuma::fab {

TorusRouting::TorusRouting(std::vector<std::uint32_t> dims)
    : dims_(std::move(dims))
{
    assert(!dims_.empty());
    total_ = 1;
    for (auto k : dims_) {
        assert(k >= 2 && "torus radix must be >= 2");
        total_ *= k;
    }
}

std::vector<std::uint32_t>
TorusRouting::coords(sim::NodeId id) const
{
    std::vector<std::uint32_t> c(dims_.size());
    std::uint32_t rest = id;
    for (std::size_t d = 0; d < dims_.size(); ++d) {
        c[d] = rest % dims_[d];
        rest /= dims_[d];
    }
    return c;
}

sim::NodeId
TorusRouting::idAt(const std::vector<std::uint32_t> &coords) const
{
    std::uint32_t id = 0;
    std::uint32_t stride = 1;
    for (std::size_t d = 0; d < dims_.size(); ++d) {
        id += coords[d] * stride;
        stride *= dims_[d];
    }
    return static_cast<sim::NodeId>(id);
}

std::uint32_t
TorusRouting::nextDir(sim::NodeId here, sim::NodeId dst) const
{
    assert(here != dst);
    const auto a = coords(here);
    const auto b = coords(dst);
    for (std::size_t d = 0; d < dims_.size(); ++d) {
        if (a[d] == b[d])
            continue;
        const std::uint32_t k = dims_[d];
        const std::uint32_t fwd = (b[d] + k - a[d]) % k;  // hops going +
        const std::uint32_t bwd = (a[d] + k - b[d]) % k;  // hops going -
        return static_cast<std::uint32_t>(
            fwd <= bwd ? 2 * d : 2 * d + 1);
    }
    assert(false && "here == dst");
    return 0;
}

sim::NodeId
TorusRouting::neighbor(sim::NodeId id, std::uint32_t dir) const
{
    const std::size_t d = dir / 2;
    const bool positive = (dir % 2) == 0;
    auto c = coords(id);
    const std::uint32_t k = dims_[d];
    c[d] = positive ? (c[d] + 1) % k : (c[d] + k - 1) % k;
    return idAt(c);
}

std::uint32_t
TorusRouting::hopCount(sim::NodeId a, sim::NodeId b) const
{
    const auto ca = coords(a);
    const auto cb = coords(b);
    std::uint32_t hops = 0;
    for (std::size_t d = 0; d < dims_.size(); ++d) {
        const std::uint32_t k = dims_[d];
        const std::uint32_t fwd = (cb[d] + k - ca[d]) % k;
        const std::uint32_t bwd = (ca[d] + k - cb[d]) % k;
        hops += std::min(fwd, bwd);
    }
    return hops;
}

} // namespace sonuma::fab
