/**
 * @file
 * Dimension-order routing for k-ary n-cube (torus) topologies.
 *
 * Pure routing arithmetic, separated from the fabric timing model so the
 * routing function is directly unit-testable: coordinate mapping, shortest
 * ring direction per dimension, and hop counting.
 */

#ifndef SONUMA_FABRIC_ROUTER_HH
#define SONUMA_FABRIC_ROUTER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "sim/types.hh"

namespace sonuma::fab {

/**
 * Packet routing policy for the torus fabric.
 *
 * kDor is strict dimension-order (deterministic, minimal, livelock-free)
 * and the default; kAdaptive detours minimally around failed links and
 * falls back to misrouting when no productive link is up.
 */
enum class RoutingMode : std::uint8_t
{
    kDor = 0,
    kAdaptive,
};

/** "dor" / "adaptive". */
const char *routingModeName(RoutingMode mode);

/**
 * Parse a routing-mode name. Returns false and fills @p error (with a
 * did-you-mean hint) on unknown names.
 */
bool parseRoutingMode(const std::string &name, RoutingMode *out,
                      std::string *error);

/**
 * Routing helper for an n-dimensional torus with per-dimension radix.
 *
 * Directions are encoded as 2*dim (positive) and 2*dim+1 (negative).
 * The forwarding decision is table-free (paper §6: "directly maps
 * destination addresses to outgoing router ports").
 */
class TorusRouting
{
  public:
    explicit TorusRouting(std::vector<std::uint32_t> dims);

    std::size_t dimensions() const { return dims_.size(); }
    std::uint32_t radix(std::size_t d) const { return dims_[d]; }

    /** Total node count (product of radices). */
    std::uint32_t nodeCount() const { return total_; }

    /** Coordinates of @p id (mixed-radix decomposition). */
    std::vector<std::uint32_t> coords(sim::NodeId id) const;

    /** Node id at @p coords. */
    sim::NodeId idAt(const std::vector<std::uint32_t> &coords) const;

    /**
     * Next output direction for a packet at @p here destined to @p dst.
     * Dimension-order: resolve the lowest differing dimension first,
     * taking the shorter way around the ring (ties go positive).
     *
     * @pre here != dst
     */
    std::uint32_t nextDir(sim::NodeId here, sim::NodeId dst) const;

    /** Neighbor of @p id in direction @p dir. */
    sim::NodeId neighbor(sim::NodeId id, std::uint32_t dir) const;

    /**
     * True if taking @p dir from @p here brings the packet strictly
     * closer to @p dst (a "productive" hop in adaptive routing).
     */
    bool
    productive(sim::NodeId here, sim::NodeId dst, std::uint32_t dir) const
    {
        return hopCount(neighbor(here, dir), dst) < hopCount(here, dst);
    }

    /** Minimal hop count between two nodes. */
    std::uint32_t hopCount(sim::NodeId a, sim::NodeId b) const;

    /** Number of directed ports per router (2 per dimension). */
    std::uint32_t portCount() const
    {
        return static_cast<std::uint32_t>(2 * dims_.size());
    }

  private:
    std::vector<std::uint32_t> dims_;
    std::vector<std::uint32_t> strides_; //!< mixed-radix place values
    std::uint32_t total_;

    /** Digit of @p id in dimension @p d, without materializing coords. */
    std::uint32_t
    digit(sim::NodeId id, std::size_t d) const
    {
        return (id / strides_[d]) % dims_[d];
    }
};

} // namespace sonuma::fab

#endif // SONUMA_FABRIC_ROUTER_HH
