/**
 * @file
 * Fault plan construction, scenario-spec parsing, and injection.
 */

#include "fabric/fault.hh"

#include <algorithm>
#include <stdexcept>

namespace sonuma::fab {

namespace {

/** Levenshtein distance for did-you-mean on scenario keywords. */
std::size_t
editDistance(const std::string &a, const std::string &b)
{
    std::vector<std::size_t> prev(b.size() + 1), cur(b.size() + 1);
    for (std::size_t j = 0; j <= b.size(); ++j)
        prev[j] = j;
    for (std::size_t i = 1; i <= a.size(); ++i) {
        cur[0] = i;
        for (std::size_t j = 1; j <= b.size(); ++j) {
            const std::size_t sub = prev[j - 1] + (a[i - 1] != b[j - 1]);
            cur[j] = std::min({prev[j] + 1, cur[j - 1] + 1, sub});
        }
        std::swap(prev, cur);
    }
    return prev[b.size()];
}

/** Parse "<float><ns|us|ms>" into ticks. */
bool
parseTime(const std::string &s, sim::Tick *out, std::string *error)
{
    std::size_t pos = 0;
    double v = 0.0;
    try {
        v = std::stod(s, &pos);
    } catch (const std::exception &) {
        pos = 0;
    }
    if (pos == 0 || v < 0.0) {
        *error = "malformed time '" + s + "' (expected e.g. 50us, 1.5ms)";
        return false;
    }
    const std::string unit = s.substr(pos);
    if (unit == "ns")
        *out = sim::nsToTicks(v);
    else if (unit == "us")
        *out = sim::usToTicks(v);
    else if (unit == "ms")
        *out = sim::usToTicks(v * 1000.0);
    else {
        *error = "time '" + s + "' needs a unit suffix (ns, us or ms)";
        return false;
    }
    return true;
}

bool
parseNode(const std::string &s, sim::NodeId *out, std::string *error)
{
    std::size_t pos = 0;
    unsigned long v = 0;
    try {
        v = std::stoul(s, &pos);
    } catch (const std::exception &) {
        pos = 0;
    }
    if (pos != s.size() || s.empty()) {
        *error = "malformed node id '" + s + "'";
        return false;
    }
    *out = static_cast<sim::NodeId>(v);
    return true;
}

/** Parse "A-B" into a directed link. */
bool
parseLink(const std::string &s, sim::NodeId *a, sim::NodeId *b,
          std::string *error)
{
    const std::size_t dash = s.find('-');
    if (dash == std::string::npos) {
        *error = "malformed link '" + s + "' (expected <from>-<to>, e.g. 0-1)";
        return false;
    }
    return parseNode(s.substr(0, dash), a, error) &&
           parseNode(s.substr(dash + 1), b, error);
}

const char *
kindName(FaultEventKind k)
{
    switch (k) {
      case FaultEventKind::kNodeKill: return "node-kill";
      case FaultEventKind::kNodeRecover: return "node-recover";
      case FaultEventKind::kLinkKill: return "link-kill";
      case FaultEventKind::kLinkRecover: return "link-recover";
      case FaultEventKind::kDropStart: return "drop-start";
      case FaultEventKind::kDropEnd: return "drop-end";
    }
    return "?";
}

bool
isLinkEvent(FaultEventKind k)
{
    return k == FaultEventKind::kLinkKill ||
           k == FaultEventKind::kLinkRecover ||
           k == FaultEventKind::kDropStart || k == FaultEventKind::kDropEnd;
}

} // namespace

FaultPlan &
FaultPlan::killNode(sim::Tick at, sim::NodeId n)
{
    events_.push_back({at, FaultEventKind::kNodeKill, n, n});
    return *this;
}

FaultPlan &
FaultPlan::recoverNode(sim::Tick at, sim::NodeId n)
{
    events_.push_back({at, FaultEventKind::kNodeRecover, n, n});
    return *this;
}

FaultPlan &
FaultPlan::killLink(sim::Tick at, sim::NodeId from, sim::NodeId to)
{
    events_.push_back({at, FaultEventKind::kLinkKill, from, to});
    return *this;
}

FaultPlan &
FaultPlan::recoverLink(sim::Tick at, sim::NodeId from, sim::NodeId to)
{
    events_.push_back({at, FaultEventKind::kLinkRecover, from, to});
    return *this;
}

FaultPlan &
FaultPlan::dropWindow(sim::Tick start, sim::Tick end, sim::NodeId from,
                      sim::NodeId to)
{
    events_.push_back({start, FaultEventKind::kDropStart, from, to});
    events_.push_back({end, FaultEventKind::kDropEnd, from, to});
    return *this;
}

FaultPlan &
FaultPlan::flapLink(sim::Tick start, sim::Tick period, std::uint32_t cycles,
                    sim::NodeId from, sim::NodeId to)
{
    for (std::uint32_t i = 0; i < cycles; ++i) {
        const sim::Tick t = start + i * period;
        killLink(t, from, to);
        recoverLink(t + period / 2, from, to);
    }
    return *this;
}

std::vector<FaultEvent>
FaultPlan::sorted() const
{
    std::vector<FaultEvent> out = events_;
    std::stable_sort(out.begin(), out.end(),
                     [](const FaultEvent &x, const FaultEvent &y) {
                         return x.at < y.at;
                     });
    return out;
}

void
FaultPlan::validate(std::size_t nodeCount) const
{
    for (const auto &e : events_) {
        if (e.a >= nodeCount || e.b >= nodeCount)
            throw std::invalid_argument(
                std::string("fault plan: ") + kindName(e.kind) + " names node " +
                std::to_string(std::max(e.a, e.b)) +
                " but the fabric has only " + std::to_string(nodeCount) +
                " nodes");
    }
}

std::string
FaultPlan::scenarioOf(const std::string &spec)
{
    return spec.substr(0, spec.find('@'));
}

const std::vector<std::string> &
FaultPlan::knownScenarios()
{
    static const std::vector<std::string> kScenarios = {
        "none", "incast", "node-kill", "link-kill", "link-flap", "drop",
    };
    return kScenarios;
}

bool
FaultPlan::parse(const std::string &spec, std::uint32_t nodes,
                 FaultPlan *out, std::string *error)
{
    *out = FaultPlan{};
    if (spec.empty()) {
        *error = "empty fault spec (use 'none' for the healthy baseline)";
        return false;
    }

    const std::string scenario = scenarioOf(spec);
    const auto &known = knownScenarios();
    if (std::find(known.begin(), known.end(), scenario) == known.end()) {
        *error = "unknown fault scenario '" + scenario + "'";
        std::string best;
        std::size_t bestDist = 4; // suggest only close misspellings
        for (const auto &cand : known) {
            const std::size_t d = editDistance(scenario, cand);
            if (d < bestDist) {
                bestDist = d;
                best = cand;
            }
        }
        if (!best.empty())
            *error += " (did you mean '" + best + "'?)";
        else
            *error += " (valid: none, incast, node-kill@T[+D][:N], "
                      "link-kill@T[+D][:A-B], link-flap@T~PxC[:A-B], "
                      "drop@T+D[:A-B])";
        return false;
    }

    if (scenario == "none" || scenario == "incast") {
        if (spec != scenario) {
            *error = "'" + scenario + "' takes no '@' arguments";
            return false;
        }
        // incast is a traffic pattern, not a fabric fault: the plan stays
        // empty and the workload steers every node at one hotspot.
        return true;
    }

    if (spec.size() == scenario.size()) {
        *error = "'" + scenario + "' needs '@<time>' (e.g. " + scenario +
                 "@50us)";
        return false;
    }
    std::string rest = spec.substr(scenario.size() + 1);

    // Optional ":<target>" suffix.
    std::string target;
    const std::size_t colon = rest.find(':');
    if (colon != std::string::npos) {
        target = rest.substr(colon + 1);
        rest = rest.substr(0, colon);
    }

    if (scenario == "node-kill") {
        sim::NodeId victim = nodes / 2;
        if (!target.empty() && !parseNode(target, &victim, error))
            return false;
        const std::size_t plus = rest.find('+');
        sim::Tick at = 0;
        if (!parseTime(rest.substr(0, plus), &at, error))
            return false;
        out->killNode(at, victim);
        if (plus != std::string::npos) {
            sim::Tick dur = 0;
            if (!parseTime(rest.substr(plus + 1), &dur, error))
                return false;
            out->recoverNode(at + dur, victim);
        }
        return true;
    }

    // The remaining scenarios act on a directed link.
    sim::NodeId from = 0, to = 1;
    if (!target.empty() && !parseLink(target, &from, &to, error))
        return false;

    if (scenario == "link-kill") {
        const std::size_t plus = rest.find('+');
        sim::Tick at = 0;
        if (!parseTime(rest.substr(0, plus), &at, error))
            return false;
        out->killLink(at, from, to);
        if (plus != std::string::npos) {
            sim::Tick dur = 0;
            if (!parseTime(rest.substr(plus + 1), &dur, error))
                return false;
            out->recoverLink(at + dur, from, to);
        }
        return true;
    }

    if (scenario == "link-flap") {
        const std::size_t tilde = rest.find('~');
        if (tilde == std::string::npos) {
            *error = "link-flap needs '@T~PxC' (e.g. link-flap@40us~30usx3)";
            return false;
        }
        sim::Tick at = 0;
        if (!parseTime(rest.substr(0, tilde), &at, error))
            return false;
        const std::string cyc = rest.substr(tilde + 1);
        const std::size_t x = cyc.find('x');
        if (x == std::string::npos) {
            *error = "link-flap needs '~<period>x<cycles>' (e.g. ~30usx3)";
            return false;
        }
        sim::Tick period = 0;
        if (!parseTime(cyc.substr(0, x), &period, error))
            return false;
        sim::NodeId cycles = 0;
        if (!parseNode(cyc.substr(x + 1), &cycles, error))
            return false;
        if (cycles == 0 || period == 0) {
            *error = "link-flap needs a non-zero period and cycle count";
            return false;
        }
        out->flapLink(at, period, cycles, from, to);
        return true;
    }

    // scenario == "drop"
    const std::size_t plus = rest.find('+');
    if (plus == std::string::npos) {
        *error = "drop needs '@T+D' (a window, e.g. drop@40us+20us)";
        return false;
    }
    sim::Tick at = 0, dur = 0;
    if (!parseTime(rest.substr(0, plus), &at, error) ||
        !parseTime(rest.substr(plus + 1), &dur, error))
        return false;
    out->dropWindow(at, at + dur, from, to);
    return true;
}

FaultInjector::FaultInjector(sim::EventQueue &eq, Fabric &fabric,
                             FaultPlan plan)
    : eq_(eq), fabric_(fabric), plan_(std::move(plan))
{
}

void
FaultInjector::arm()
{
    if (armed_)
        return;
    // Validate up front so a bad plan throws here, not from inside a
    // scheduled event in the middle of a run.
    plan_.validate(fabric_.nodeCount());
    for (const auto &e : plan_.events()) {
        if (isLinkEvent(e.kind))
            fabric_.validateLink(e.a, e.b);
    }
    armed_ = true;
    for (const auto &e : plan_.sorted()) {
        Fabric *fab = &fabric_;
        eq_.schedule(e.at, [fab, e] {
            switch (e.kind) {
              case FaultEventKind::kNodeKill:
                fab->failNode(e.a);
                break;
              case FaultEventKind::kNodeRecover:
                fab->recoverNode(e.a);
                break;
              case FaultEventKind::kLinkKill:
                fab->failLink(e.a, e.b);
                break;
              case FaultEventKind::kLinkRecover:
                fab->recoverLink(e.a, e.b);
                break;
              case FaultEventKind::kDropStart:
                fab->setLinkLossy(e.a, e.b, true);
                break;
              case FaultEventKind::kDropEnd:
                fab->setLinkLossy(e.a, e.b, false);
                break;
            }
        });
    }
}

} // namespace sonuma::fab
