/**
 * @file
 * Wire-level message format of the soNUMA protocol (paper §6).
 *
 * The protocol layer is a stateless request/reply exchange: exactly one
 * reply per request. The routing header carries <dst_nid, src_nid>; the
 * protocol header carries <ctx_id, op, offset, tid>; the payload is at
 * most one cache line. The MTU is sized for header + 64 B payload, which
 * keeps buffering needs minimal (§3).
 */

#ifndef SONUMA_FABRIC_MESSAGE_HH
#define SONUMA_FABRIC_MESSAGE_HH

#include <array>
#include <cassert>
#include <cstdint>
#include <cstring>

#include "sim/types.hh"

namespace sonuma::fab {

/** Two virtual lanes give deadlock-free request/reply (paper §6). */
enum class Lane : std::uint8_t
{
    kRequest = 0,
    kReply = 1,
};

inline constexpr std::size_t kNumLanes = 2;

/** Protocol operations. Requests unroll to cache-line granularity. */
enum class Op : std::uint8_t
{
    kReadReq,
    kWriteReq,
    kCasReq,       //!< compare-and-swap, executed at the destination
    kFetchAddReq,  //!< fetch-and-add, executed at the destination
    kReadReply,
    kWriteReply,
    kAtomicReply,
    kErrorReply,   //!< bounds/permission violation signalled to source
};

/** True for the four request opcodes. */
constexpr bool
isRequest(Op op)
{
    return op == Op::kReadReq || op == Op::kWriteReq || op == Op::kCasReq ||
           op == Op::kFetchAddReq;
}

/** Lane a given opcode travels on. */
constexpr Lane
laneOf(Op op)
{
    return isRequest(op) ? Lane::kRequest : Lane::kReply;
}

/**
 * Payload length each opcode carries on the wire: full-line for write
 * requests and read replies, 8 bytes for atomic replies (the old value),
 * none otherwise (reads/atomics put operands in the header).
 */
constexpr std::uint8_t
expectedPayloadLen(Op op)
{
    switch (op) {
      case Op::kWriteReq:
      case Op::kReadReply:
        return static_cast<std::uint8_t>(sim::kCacheLineBytes);
      case Op::kAtomicReply:
        return sizeof(std::uint64_t);
      default:
        return 0;
    }
}

/**
 * One protocol message.
 *
 * Replies echo the request's tid (opaque to the destination) and offset;
 * the source RCP uses them to locate the ITT entry and compute the
 * destination buffer address for multi-line requests (§4.2).
 */
struct Message
{
    Op op = Op::kReadReq;
    sim::NodeId srcNid = 0;
    sim::NodeId dstNid = 0;
    sim::CtxId ctxId = 0;
    std::uint32_t tid = 0;
    std::uint64_t offset = 0;      //!< context-segment offset of the line
    std::uint64_t operand1 = 0;    //!< CAS compare / F&A addend
    std::uint64_t operand2 = 0;    //!< CAS swap value
    std::uint8_t payloadLen = 0;   //!< 0, 8 (atomics) or 64 bytes
    std::array<std::uint8_t, sim::kCacheLineBytes> payload{};

    /**
     * Last output direction taken, set per hop by adaptive torus routing
     * to forbid immediate U-turns. Router-local scratch, not a wire
     * field: it does not contribute to wireBytes(). 0xff = none.
     */
    std::uint8_t lastDir = 0xff;

    /**
     * Retransmission attempt of the transfer this packet belongs to
     * (0 = first send). Together with the tid's epoch this forms the
     * (tid, epoch, attempt) sequence the source uses to discard stale
     * replies after a timeout-driven retransmit. Carried in existing
     * protocol-header padding, so it does not change kHeaderBytes or
     * wireBytes() — stamping it is timing-neutral.
     */
    std::uint8_t attempt = 0;

    /** Fixed header size on the wire (routing + protocol). */
    static constexpr std::uint32_t kHeaderBytes = 24;

    /** Total wire footprint used for serialization timing. */
    std::uint32_t
    wireBytes() const
    {
        return kHeaderBytes + payloadLen;
    }

    Lane lane() const { return laneOf(op); }

    /** Build the reply skeleton for this request (src/dst swapped). */
    Message
    makeReply(Op replyOp) const
    {
        Message r;
        r.op = replyOp;
        r.srcNid = dstNid;
        r.dstNid = srcNid;
        r.ctxId = ctxId;
        r.tid = tid;
        r.offset = offset;
        // Replies echo the attempt so the source RCP can tell a reply
        // to the current attempt from one the fabric delivered late.
        r.attempt = attempt;
        return r;
    }

    void
    setPayload(const void *data, std::uint8_t len)
    {
        assert(len <= sim::kCacheLineBytes &&
               "payload exceeds one cache line");
        // The clamp must survive NDEBUG builds: a wire- or
        // computation-derived length must never overrun the array.
        if (len > sim::kCacheLineBytes)
            len = static_cast<std::uint8_t>(sim::kCacheLineBytes);
        payloadLen = len;
        std::memcpy(payload.data(), data, len);
    }

    /**
     * True if payloadLen is exactly what this message's opcode puts on
     * the wire. Receivers validate this instead of trusting the wire
     * value before using payloadLen as a copy length.
     */
    bool
    payloadLenValid() const
    {
        return payloadLen == expectedPayloadLen(op);
    }
};

} // namespace sonuma::fab

#endif // SONUMA_FABRIC_MESSAGE_HH
