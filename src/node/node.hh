/**
 * @file
 * One soNUMA node: cores + private L1s + shared L2 + DRAM + RMC (with
 * its own coherent L1) + NI + OS + driver, wired per paper Fig. 2.
 */

#ifndef SONUMA_NODE_NODE_HH
#define SONUMA_NODE_NODE_HH

#include <memory>
#include <string>
#include <vector>

#include "fabric/fabric.hh"
#include "mem/cache.hh"
#include "mem/dram.hh"
#include "mem/phys_mem.hh"
#include "node/core.hh"
#include "os/context_registry.hh"
#include "os/node_os.hh"
#include "os/rmc_driver.hh"
#include "rmc/rmc.hh"
#include "sim/simulation.hh"

namespace sonuma::node {

/** Full configuration of one node (defaults = paper Table 1). */
struct NodeParams
{
    std::uint32_t cores = 1;
    std::uint64_t physMemBytes = 256ull << 20;
    mem::CacheParams l1;          //!< 32 KB 2-way, 3 cycles
    mem::L2Cache::Params l2;      //!< 4 MB 16-way, 6 cycles
    mem::DramParams dram;         //!< DDR3-1600
    rmc::RmcParams rmc;           //!< simulated-hardware preset
    fab::NiParams ni;
    double coreFreqGhz = 2.0;
};

class Node
{
  public:
    Node(sim::Simulation &sim, const std::string &name, sim::NodeId nid,
         fab::Fabric &fabric, os::ContextRegistry &registry,
         const NodeParams &params = {});

    Node(const Node &) = delete;
    Node &operator=(const Node &) = delete;

    sim::NodeId nodeId() const { return nid_; }
    Core &core(std::size_t i) { return *cores_.at(i); }
    std::size_t coreCount() const { return cores_.size(); }
    rmc::Rmc &rmc() { return *rmc_; }
    os::NodeOs &os() { return *os_; }
    os::RmcDriver &driver() { return *driver_; }
    mem::PhysMem &phys() { return *phys_; }
    mem::L2Cache &l2() { return *l2_; }
    fab::NetworkInterface &ni() { return *ni_; }
    const NodeParams &params() const { return params_; }

  private:
    sim::NodeId nid_;
    NodeParams params_;

    std::unique_ptr<mem::PhysMem> phys_;
    std::unique_ptr<mem::DramChannel> dram_;
    std::unique_ptr<mem::L2Cache> l2_;
    std::vector<std::unique_ptr<mem::L1Cache>> coreL1s_;
    std::unique_ptr<mem::L1Cache> rmcL1_;
    std::unique_ptr<fab::NetworkInterface> ni_;
    std::unique_ptr<os::NodeOs> os_;
    std::unique_ptr<rmc::Rmc> rmc_;
    std::unique_ptr<os::RmcDriver> driver_;
    std::vector<std::unique_ptr<Core>> cores_;
};

} // namespace sonuma::node

#endif // SONUMA_NODE_NODE_HH
