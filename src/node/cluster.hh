/**
 * @file
 * A rack-scale soNUMA cluster: N nodes on one memory fabric, sharing a
 * context namespace (single administrative domain, paper §5.1).
 */

#ifndef SONUMA_NODE_CLUSTER_HH
#define SONUMA_NODE_CLUSTER_HH

#include <memory>
#include <vector>

#include "fabric/crossbar.hh"
#include "fabric/torus.hh"
#include "node/node.hh"
#include "os/context_registry.hh"
#include "sim/simulation.hh"

namespace sonuma::node {

/** Fabric topology selection. */
enum class Topology
{
    kCrossbar, //!< paper's evaluated configuration (flat 50 ns)
    kTorus,    //!< k-ary n-cube for the topology ablation
};

/**
 * Time-series sampling configuration (see docs/observability.md). Off by
 * default (periodNs == 0): no sampler event is ever scheduled, rings stay
 * empty, and model timing plus every checked-in artifact are unchanged.
 */
struct ObsParams
{
    std::uint64_t periodNs = 0;  //!< sampling period; 0 disables
    std::size_t slots = 1024;    //!< fixed ring slots per series
};

struct ClusterParams
{
    std::uint32_t nodes = 2;
    Topology topology = Topology::kCrossbar;
    fab::CrossbarParams crossbar;
    fab::TorusParams torus;    //!< dims must multiply to `nodes`
    NodeParams node;
    ObsParams obs;
};

/**
 * Eager configuration check: throws std::invalid_argument with a
 * precise message on nodes == 0 or torus dims whose product differs
 * from the node count (instead of misbehaving deep in fab::Torus
 * routing). Called by the Cluster constructor; also usable directly.
 */
void validate(const ClusterParams &params);

/**
 * Derive per-node fixed-capacity structures from the deployment shape
 * (the 64-node-era tuning audit; see docs/testing.md "Scaling the
 * fixed-capacity structures"). Only ever *raises* capacities, and is a
 * no-op at the Table 1 defaults, so existing configurations keep their
 * exact timing:
 *
 *  - ITT slots (RmcParams::maxTids): at least one transfer id per WQ
 *    slot of a full session window (qpEntries x qpCount), so a deep
 *    multi-QP pipeline never stalls on tid allocation.
 *  - NI eject ring (NiParams::ejectQueueDepth): grows with the node
 *    count to absorb incast bursts (e.g. N-1 simultaneous barrier
 *    announcement writes), bounded at 256.
 *
 * Deliberately NOT derived: MAQ/TLB/CT$ sizes (Table 1 hardware
 * structures whose pressure is per-node, not per-cluster — incast
 * backpressures through NI credits instead) and torus creditsPerLane
 * (end-to-end per source; the diameter of an 8x8x8 torus still fits
 * comfortably in the default 64 in-flight packets).
 *
 * Called by the Cluster constructor on its own copy of the params;
 * also usable directly (tests, capacity introspection).
 */
void deriveCapacities(ClusterParams &params);

class Cluster
{
  public:
    Cluster(sim::Simulation &sim, const ClusterParams &params = {});
    ~Cluster();

    Node &node(std::size_t i) { return *nodes_.at(i); }
    std::size_t nodeCount() const { return nodes_.size(); }
    os::ContextRegistry &registry() { return registry_; }
    fab::Fabric &fabric() { return *fabric_; }
    const ClusterParams &params() const { return params_; }

    /**
     * Convenience for tests/benches: create context @p ctx owned by
     * @p owner and grant it to everyone.
     */
    void createSharedContext(sim::CtxId ctx, os::UserId owner = 0);

  private:
    ClusterParams params_;
    os::ContextRegistry registry_;
    std::unique_ptr<fab::Fabric> fabric_;
    std::vector<std::unique_ptr<Node>> nodes_;

    // Periodic sampler service (armed only when obs.periodNs > 0). The
    // pending event captures `this`, so the destructor cancels it — the
    // event queue can outlive the cluster.
    sim::EventQueue *eq_ = nullptr;
    sim::StatRegistry *stats_ = nullptr;
    sim::Tick obsPeriod_ = 0;
    sim::EventId samplerEvent_{};
    bool samplerArmed_ = false;

    void armSampler();
};

} // namespace sonuma::node

#endif // SONUMA_NODE_CLUSTER_HH
