/**
 * @file
 * Application core model.
 *
 * The paper's evaluation uses simple in-order-ish cores (Cortex-A15
 * class, Table 1); the results hinge on memory-system and RMC behaviour,
 * not core microarchitecture. Accordingly a Core charges: (i) timed
 * loads/stores through its private L1 (coherent with the RMC's L1 —
 * this is where queue-pair polling costs come from), and (ii) explicit
 * compute time. Application code runs as coroutines bound to a core;
 * concurrent tasks on one core serialize on its compute resource.
 */

#ifndef SONUMA_NODE_CORE_HH
#define SONUMA_NODE_CORE_HH

#include <coroutine>
#include <cstdint>
#include <string>

#include "mem/cache.hh"
#include "os/node_os.hh"
#include "sim/service.hh"
#include "sim/simulation.hh"
#include "sim/types.hh"
#include "vm/address_space.hh"

namespace sonuma::node {

class Core
{
  public:
    Core(sim::Simulation &sim, sim::StatRegistry &stats,
         const std::string &name, mem::L1Cache &l1, double freq_ghz = 2.0);

    /** Bind the process whose address space load/store translate in. */
    void attachProcess(os::Process &proc) { proc_ = &proc; }

    os::Process &process() const { return *proc_; }
    mem::L1Cache &l1() { return l1_; }
    sim::Simulation &simulation() { return sim_; }
    const sim::Clock &clock() const { return clock_; }

    /** Spawn an application task "running on" this core. */
    void
    run(sim::Task t)
    {
        sim_.spawn(std::move(t));
    }

    /** Timed load of the line containing @p va. */
    auto
    load(vm::VAddr va)
    {
        return MemAwaiter{*this, va, false};
    }

    /** Timed store to the line containing @p va. */
    auto
    store(vm::VAddr va)
    {
        return MemAwaiter{*this, va, true};
    }

    /**
     * Charge @p cyc cycles of compute. Tasks sharing the core serialize
     * here, so co-located threads contend realistically.
     */
    auto
    compute(std::uint64_t cyc)
    {
        return exec_.use(clock_.cycles(cyc));
    }

    /** Charge raw ticks of compute (for ns-denominated costs). */
    auto
    computeTicks(sim::Tick t)
    {
        return exec_.use(t);
    }

    struct MemAwaiter
    {
        Core &core;
        vm::VAddr va;
        bool write;

        bool await_ready() const noexcept { return false; }

        void
        await_suspend(std::coroutine_handle<> h)
        {
            const mem::PAddr pa =
                core.proc_->addressSpace().translate(va);
            core.l1_.access(pa, write, [h] { h.resume(); });
        }

        void await_resume() const noexcept {}
    };

  private:
    sim::Simulation &sim_;
    mem::L1Cache &l1_;
    os::Process *proc_ = nullptr;
    sim::Clock clock_;
    sim::ServiceResource exec_;
};

} // namespace sonuma::node

#endif // SONUMA_NODE_CORE_HH
