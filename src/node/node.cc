/**
 * @file
 * Node assembly.
 */

#include "node/node.hh"

namespace sonuma::node {

Node::Node(sim::Simulation &sim, const std::string &name, sim::NodeId nid,
           fab::Fabric &fabric, os::ContextRegistry &registry,
           const NodeParams &params)
    : nid_(nid), params_(params)
{
    auto &stats = sim.stats();

    phys_ = std::make_unique<mem::PhysMem>(params.physMemBytes);
    dram_ = std::make_unique<mem::DramChannel>(sim.eq(), stats,
                                               name + ".dram", params.dram);
    l2_ = std::make_unique<mem::L2Cache>(sim.eq(), stats, name + ".l2",
                                         params.l2, *dram_);

    for (std::uint32_t i = 0; i < params.cores; ++i) {
        coreL1s_.push_back(std::make_unique<mem::L1Cache>(
            sim.eq(), stats, name + ".l1.c" + std::to_string(i), params.l1,
            *l2_));
    }
    // The RMC's private L1 participates in the same coherence domain.
    rmcL1_ = std::make_unique<mem::L1Cache>(
        sim.eq(), stats, name + ".l1.rmc", params.l1, *l2_);

    ni_ = std::make_unique<fab::NetworkInterface>(
        sim.eq(), stats, name + ".ni", nid, fabric, params.ni);

    os_ = std::make_unique<os::NodeOs>(*phys_);

    // Driver-managed control structures in pinned kernel memory.
    const mem::PAddr ctBase = os_->allocKernel(
        std::uint64_t(params.rmc.maxContexts) * rmc::kCtEntryBytes);
    const mem::PAddr ittBase = os_->allocKernel(
        std::uint64_t(params.rmc.maxTids) * rmc::kIttEntryBytes);

    rmc_ = std::make_unique<rmc::Rmc>(sim.eq(), stats, name + ".rmc", nid,
                                      params.rmc, *phys_, *rmcL1_, *ni_,
                                      ctBase, ittBase);
    driver_ = std::make_unique<os::RmcDriver>(*os_, *rmc_, registry);

    for (std::uint32_t i = 0; i < params.cores; ++i) {
        cores_.push_back(std::make_unique<Core>(
            sim, stats, name + ".core" + std::to_string(i), *coreL1s_[i],
            params.coreFreqGhz));
    }
}

} // namespace sonuma::node
