/**
 * @file
 * Core implementation.
 */

#include "node/core.hh"

namespace sonuma::node {

Core::Core(sim::Simulation &sim, sim::StatRegistry &stats,
           const std::string &name, mem::L1Cache &l1, double freq_ghz)
    : sim_(sim), l1_(l1), clock_(freq_ghz), exec_(sim.eq(), name + ".exec")
{
    (void)stats;
}

} // namespace sonuma::node
