/**
 * @file
 * Cluster assembly.
 */

#include "node/cluster.hh"

#include <stdexcept>
#include <string>

#include "sim/log.hh"

namespace sonuma::node {

void
validate(const ClusterParams &params)
{
    if (params.nodes == 0)
        throw std::invalid_argument(
            "ClusterParams: nodes must be >= 1 (got 0)");
    rmc::validate(params.node.rmc);
    if (params.topology == Topology::kTorus) {
        if (params.torus.dims.empty())
            throw std::invalid_argument(
                "ClusterParams: torus dims are empty; give one radix per "
                "dimension, e.g. {8, 8} for an 8x8 torus");
        std::uint64_t cap = 1;
        std::string dims;
        for (auto d : params.torus.dims) {
            if (d == 0)
                throw std::invalid_argument(
                    "ClusterParams: torus dimension radix must be >= 1");
            cap *= d;
            if (!dims.empty())
                dims += "x";
            dims += std::to_string(d);
        }
        if (cap != params.nodes)
            throw std::invalid_argument(
                "ClusterParams: torus dims " + dims + " hold " +
                std::to_string(cap) + " nodes but nodes=" +
                std::to_string(params.nodes) +
                "; dims must multiply to the node count");
    }
}

Cluster::Cluster(sim::Simulation &sim, const ClusterParams &params)
    : params_(params), registry_(params.node.rmc.maxContexts)
{
    validate(params);
    switch (params.topology) {
      case Topology::kCrossbar:
        fabric_ = std::make_unique<fab::CrossbarFabric>(
            sim.eq(), sim.stats(), params.crossbar);
        break;
      case Topology::kTorus:
        fabric_ = std::make_unique<fab::TorusFabric>(sim.eq(), sim.stats(),
                                                     params.torus);
        break;
    }

    for (std::uint32_t i = 0; i < params.nodes; ++i) {
        nodes_.push_back(std::make_unique<Node>(
            sim, "node" + std::to_string(i), static_cast<sim::NodeId>(i),
            *fabric_, registry_, params.node));
    }
}

void
Cluster::createSharedContext(sim::CtxId ctx, os::UserId owner)
{
    registry_.createContext(ctx, owner);
    for (os::UserId uid = 0; uid < 64; ++uid)
        registry_.grant(ctx, uid);
}

} // namespace sonuma::node
