/**
 * @file
 * Cluster assembly.
 */

#include "node/cluster.hh"

#include "sim/log.hh"

namespace sonuma::node {

Cluster::Cluster(sim::Simulation &sim, const ClusterParams &params)
    : params_(params), registry_(params.node.rmc.maxContexts)
{
    switch (params.topology) {
      case Topology::kCrossbar:
        fabric_ = std::make_unique<fab::CrossbarFabric>(
            sim.eq(), sim.stats(), params.crossbar);
        break;
      case Topology::kTorus: {
        fab::TorusParams tp = params.torus;
        std::uint32_t cap = 1;
        for (auto d : tp.dims)
            cap *= d;
        if (cap != params.nodes)
            sim::fatal("torus dims do not match node count");
        fabric_ = std::make_unique<fab::TorusFabric>(sim.eq(), sim.stats(),
                                                     tp);
        break;
      }
    }

    for (std::uint32_t i = 0; i < params.nodes; ++i) {
        nodes_.push_back(std::make_unique<Node>(
            sim, "node" + std::to_string(i), static_cast<sim::NodeId>(i),
            *fabric_, registry_, params.node));
    }
}

void
Cluster::createSharedContext(sim::CtxId ctx, os::UserId owner)
{
    registry_.createContext(ctx, owner);
    for (os::UserId uid = 0; uid < 64; ++uid)
        registry_.grant(ctx, uid);
}

} // namespace sonuma::node
