/**
 * @file
 * Cluster assembly.
 */

#include "node/cluster.hh"

#include <stdexcept>
#include <string>

#include "sim/log.hh"

namespace sonuma::node {

namespace {

/** Render a dims vector the way users write it: "8x8x8". */
std::string
dimsString(const std::vector<std::uint32_t> &dims)
{
    std::string out;
    for (auto d : dims) {
        if (!out.empty())
            out += "x";
        out += std::to_string(d);
    }
    return out;
}

} // namespace

void
validate(const ClusterParams &params)
{
    if (params.nodes == 0)
        throw std::invalid_argument(
            "ClusterParams: nodes must be >= 1 (got 0)");
    rmc::validate(params.node.rmc);
    if (params.topology == Topology::kCrossbar &&
        params.torus.routing == fab::RoutingMode::kAdaptive)
        throw std::invalid_argument(
            "ClusterParams: routing=adaptive requires a torus topology; "
            "crossbar links are point-to-point, so there is no alternate "
            "path to adapt onto");
    if (params.topology == Topology::kTorus) {
        const auto &dims = params.torus.dims;
        if (dims.empty())
            throw std::invalid_argument(
                "ClusterParams: torus dims are empty; give one radix per "
                "dimension, e.g. {8, 8} for an 8x8 torus or {8, 8, 8} "
                "for an 8x8x8 3D torus");
        std::uint64_t cap = 1;
        for (auto d : dims) {
            if (d == 0)
                throw std::invalid_argument(
                    "ClusterParams: torus dims " + dimsString(dims) +
                    " contain a zero radix; every dimension needs "
                    "radix >= 1");
            cap *= d;
        }
        if (cap != params.nodes)
            throw std::invalid_argument(
                "ClusterParams: torus dims " + dimsString(dims) +
                " hold " + std::to_string(cap) + " nodes but nodes=" +
                std::to_string(params.nodes) +
                "; dims must multiply to the node count");
    }
}

void
deriveCapacities(ClusterParams &params)
{
    // ITT: one transfer id per WQ slot of a full session window, so a
    // qpCount x qpEntries pipeline never blocks in allocTid. Bounded:
    // 2048 entries is 64 KB of ITT SRAM at 32 B/entry, already beyond
    // anything the paper's Table 1 contemplates.
    auto &rmcp = params.node.rmc;
    const std::uint32_t window = std::min<std::uint32_t>(
        2048, rmcp.qpEntries * rmcp.qpCount);
    rmcp.maxTids = std::max(rmcp.maxTids, window);

    // NI eject ring: at rack scale a node can receive request bursts
    // from every peer at once (the barrier's N-1 announcement writes
    // are the canonical incast). Deeper eject buffering keeps those
    // bursts out of the routers; injection stays at its default (a
    // node only generates its own load).
    params.node.ni.ejectQueueDepth =
        std::max<std::size_t>(params.node.ni.ejectQueueDepth,
                              std::min<std::size_t>(256, params.nodes / 4));
}

Cluster::Cluster(sim::Simulation &sim, const ClusterParams &params)
    : params_(params), registry_(params.node.rmc.maxContexts)
{
    validate(params_);
    deriveCapacities(params_);

    // Observability: enable sampling *before* any model construction so
    // every series registered below gets its fixed ring slots at add()
    // time — no allocation ever happens on the sampling path itself.
    if (params_.obs.periodNs > 0) {
        eq_ = &sim.eq();
        stats_ = &sim.stats();
        obsPeriod_ = params_.obs.periodNs * sim::kTicksPerNs;
        stats_->enableSampling(params_.obs.slots);
    }

    switch (params_.topology) {
      case Topology::kCrossbar:
        fabric_ = std::make_unique<fab::CrossbarFabric>(
            sim.eq(), sim.stats(), params_.crossbar);
        break;
      case Topology::kTorus:
        fabric_ = std::make_unique<fab::TorusFabric>(sim.eq(), sim.stats(),
                                                     params_.torus);
        break;
    }

    for (std::uint32_t i = 0; i < params_.nodes; ++i) {
        nodes_.push_back(std::make_unique<Node>(
            sim, "node" + std::to_string(i), static_cast<sim::NodeId>(i),
            *fabric_, registry_, params_.node));
    }

    if (obsPeriod_ > 0)
        armSampler();
}

Cluster::~Cluster()
{
    // The pending sampler event captures `this`; the event queue may
    // outlive the cluster (TestBed tears the cluster down first).
    if (samplerArmed_)
        eq_->cancel(samplerEvent_);
}

void
Cluster::armSampler()
{
    samplerArmed_ = true;
    samplerEvent_ = eq_->scheduleAfter(obsPeriod_, [this] {
        samplerArmed_ = false;
        stats_->sampleAll(eq_->now());
        // Re-arm only while model events remain: probes are read-only,
        // so once the model quiesces the sampler lets run() terminate
        // instead of ticking an idle cluster forever.
        if (eq_->pendingEvents() > 0)
            armSampler();
    });
}

void
Cluster::createSharedContext(sim::CtxId ctx, os::UserId owner)
{
    registry_.createContext(ctx, owner);
    for (os::UserId uid = 0; uid < 64; ++uid)
        registry_.grant(ctx, uid);
}

} // namespace sonuma::node
