/**
 * @file
 * Serial service resources (single-server queueing stations).
 *
 * Used wherever one physical resource serializes work items: a DRAM data
 * bus, a link serializing packets, a software "RMCemu" thread in the
 * development-platform configuration, an RDMA adapter's processing engine.
 */

#ifndef SONUMA_SIM_SERVICE_HH
#define SONUMA_SIM_SERVICE_HH

#include <coroutine>
#include <cstdint>
#include <string>

#include "sim/callback.hh"
#include "sim/event_queue.hh"
#include "sim/types.hh"

namespace sonuma::sim {

/**
 * A single server with FIFO order: each job occupies the server for its
 * service time; jobs arriving while busy queue behind it.
 *
 * Implemented with a "busy-until" horizon rather than an explicit queue —
 * jobs are assigned sequential service windows at submit time, which is
 * exact for FIFO single-server semantics and costs O(1) per job.
 */
class ServiceResource
{
  public:
    ServiceResource(EventQueue &eq, std::string name)
        : eq_(eq), name_(std::move(name))
    {}

    /**
     * Submit a job needing @p serviceTime of the resource; @p done fires at
     * its completion time.
     *
     * @return the completion tick.
     */
    Tick
    submit(Tick serviceTime, Callback done = nullptr)
    {
        const Tick start = std::max(eq_.now(), busyUntil_);
        busyUntil_ = start + serviceTime;
        totalBusy_ += serviceTime;
        ++jobs_;
        if (done)
            eq_.schedule(busyUntil_, std::move(done));
        return busyUntil_;
    }

    /** Awaitable submit for coroutine users. */
    auto
    use(Tick serviceTime)
    {
        struct UseAwaiter
        {
            ServiceResource &res;
            Tick serviceTime;

            bool await_ready() const noexcept { return false; }

            void
            await_suspend(std::coroutine_handle<> h)
            {
                res.submit(serviceTime, [h] { h.resume(); });
            }

            void await_resume() const noexcept {}
        };
        return UseAwaiter{*this, serviceTime};
    }

    /** The earliest tick at which a new job could start. */
    Tick busyUntil() const { return busyUntil_; }

    /** Aggregate busy time (for utilization stats). */
    Tick totalBusy() const { return totalBusy_; }

    /** Number of jobs served or in service. */
    std::uint64_t jobs() const { return jobs_; }

    const std::string &name() const { return name_; }

  private:
    EventQueue &eq_;
    std::string name_;
    Tick busyUntil_ = 0;
    Tick totalBusy_ = 0;
    std::uint64_t jobs_ = 0;
};

/**
 * A bandwidth-limited pipe: jobs of a given byte size occupy the pipe for
 * size/bandwidth; delivery additionally incurs a fixed latency after
 * serialization completes. Models links and buses.
 */
class BandwidthPipe
{
  public:
    /**
     * @param bytes_per_sec serialization bandwidth
     * @param latency propagation delay added after serialization
     */
    BandwidthPipe(EventQueue &eq, std::string name, double bytes_per_sec,
                  Tick latency)
        : server_(eq, std::move(name)), eq_(eq),
          bytesPerSec_(bytes_per_sec), latency_(latency)
    {}

    /** Ticks needed to serialize @p bytes onto the pipe. */
    Tick
    serializationTime(std::uint64_t bytes) const
    {
        const double sec = static_cast<double>(bytes) / bytesPerSec_;
        return static_cast<Tick>(sec * 1e12);
    }

    /**
     * Send @p bytes; @p deliver fires when the last byte arrives at the
     * far end (serialization under FIFO contention + propagation).
     *
     * @return the delivery tick.
     */
    Tick
    send(std::uint64_t bytes, Callback deliver)
    {
        const Tick serialized =
            server_.submit(serializationTime(bytes), nullptr);
        const Tick arrival = serialized + latency_;
        if (deliver)
            eq_.schedule(arrival, std::move(deliver));
        return arrival;
    }

    Tick latency() const { return latency_; }
    double bandwidth() const { return bytesPerSec_; }
    ServiceResource &server() { return server_; }

  private:
    ServiceResource server_;
    EventQueue &eq_;
    double bytesPerSec_;
    Tick latency_;
};

} // namespace sonuma::sim

#endif // SONUMA_SIM_SERVICE_HH
