/**
 * @file
 * Frame pool thread-local instance.
 */

#include "sim/frame_pool.hh"

namespace sonuma::sim {

FramePool &
FramePool::instance()
{
    thread_local FramePool pool;
    return pool;
}

} // namespace sonuma::sim
