/**
 * @file
 * Deterministic pseudo-random number generation (xoshiro256**).
 *
 * The simulator must be bit-reproducible across runs; all randomness
 * (workload generation, randomized arbitration, graph synthesis) derives
 * from one seeded Rng per Simulation, or from forked child streams.
 */

#ifndef SONUMA_SIM_RNG_HH
#define SONUMA_SIM_RNG_HH

#include <cstdint>

namespace sonuma::sim {

/** xoshiro256** generator with splitmix64 seeding. */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 1) { reseed(seed); }

    void
    reseed(std::uint64_t seed)
    {
        // splitmix64 to spread the seed across state words.
        std::uint64_t x = seed;
        for (auto &w : s_) {
            x += 0x9e3779b97f4a7c15ULL;
            std::uint64_t z = x;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
            w = z ^ (z >> 31);
        }
    }

    /** Uniform 64-bit value. */
    std::uint64_t
    next()
    {
        auto rotl = [](std::uint64_t v, int k) {
            return (v << k) | (v >> (64 - k));
        };
        const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
        const std::uint64_t t = s_[1] << 17;
        s_[2] ^= s_[0];
        s_[3] ^= s_[1];
        s_[1] ^= s_[2];
        s_[0] ^= s_[3];
        s_[2] ^= t;
        s_[3] = rotl(s_[3], 45);
        return result;
    }

    /** Uniform value in [0, bound). @pre bound > 0 */
    std::uint64_t
    below(std::uint64_t bound)
    {
        // Lemire-style rejection-free mapping is fine for simulation use.
        return next() % bound;
    }

    /** Uniform value in [lo, hi] inclusive. */
    std::uint64_t
    range(std::uint64_t lo, std::uint64_t hi)
    {
        return lo + below(hi - lo + 1);
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Bernoulli draw with probability @p p of true. */
    bool chance(double p) { return uniform() < p; }

    /** Fork an independent child stream (deterministic). */
    Rng
    fork()
    {
        return Rng(next() ^ 0xdeadbeefcafef00dULL);
    }

  private:
    std::uint64_t s_[4];
};

} // namespace sonuma::sim

#endif // SONUMA_SIM_RNG_HH
