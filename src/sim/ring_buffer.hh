/**
 * @file
 * Fixed-capacity (grow-on-demand) ring buffer.
 *
 * Replaces std::deque in the fabric queues: a deque allocates and frees
 * 512-byte map nodes as it churns, while a ring buffer reaches a
 * steady-state capacity once and never touches the allocator again.
 * Capacity is a power of two; pushing into a full ring doubles it (an
 * amortized warm-up cost, zero in steady state).
 */

#ifndef SONUMA_SIM_RING_BUFFER_HH
#define SONUMA_SIM_RING_BUFFER_HH

#include <cassert>
#include <cstddef>
#include <type_traits>
#include <utility>
#include <vector>

namespace sonuma::sim {

template <typename T>
class RingBuffer
{
  public:
    explicit RingBuffer(std::size_t initialCapacity = 16)
    {
        std::size_t cap = 2;
        while (cap < initialCapacity)
            cap *= 2;
        buf_.resize(cap);
    }

    bool empty() const noexcept { return size_ == 0; }
    std::size_t size() const noexcept { return size_; }
    std::size_t capacity() const noexcept { return buf_.size(); }

    void
    push(T v)
    {
        if (size_ == buf_.size())
            grow();
        buf_[(head_ + size_) & (buf_.size() - 1)] = std::move(v);
        ++size_;
    }

    T &
    front()
    {
        assert(size_ > 0);
        return buf_[head_];
    }

    const T &
    front() const
    {
        assert(size_ > 0);
        return buf_[head_];
    }

    void
    pop()
    {
        assert(size_ > 0);
        // Release held resources eagerly; skip the dead store for PODs.
        if constexpr (!std::is_trivially_destructible_v<T>)
            buf_[head_] = T{};
        head_ = (head_ + 1) & (buf_.size() - 1);
        --size_;
    }

    T
    popFront()
    {
        assert(size_ > 0);
        T v = std::move(buf_[head_]);
        if constexpr (!std::is_trivially_destructible_v<T>)
            buf_[head_] = T{};
        head_ = (head_ + 1) & (buf_.size() - 1);
        --size_;
        return v;
    }

    void
    clear()
    {
        while (size_ > 0)
            pop();
    }

  private:
    std::vector<T> buf_;
    std::size_t head_ = 0;
    std::size_t size_ = 0;

    void
    grow()
    {
        std::vector<T> bigger(buf_.size() * 2);
        for (std::size_t i = 0; i < size_; ++i)
            bigger[i] = std::move(buf_[(head_ + i) & (buf_.size() - 1)]);
        buf_.swap(bigger);
        head_ = 0;
    }
};

} // namespace sonuma::sim

#endif // SONUMA_SIM_RING_BUFFER_HH
