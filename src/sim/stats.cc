/**
 * @file
 * Statistics framework implementation.
 */

#include "sim/stats.hh"

#include <cmath>
#include <iomanip>

namespace sonuma::sim {

Counter::Counter(StatRegistry &reg, std::string name, std::string desc)
    : name_(std::move(name)), desc_(std::move(desc))
{
    reg.add(this);
}

Histogram::Histogram(StatRegistry &reg, std::string name, std::string desc)
    : name_(std::move(name)), desc_(std::move(desc))
{
    reg.add(this);
}

void
Histogram::sample(double v)
{
    if (count_ == 0) {
        min_ = v;
        max_ = v;
    } else {
        min_ = std::min(min_, v);
        max_ = std::max(max_, v);
    }
    ++count_;
    sum_ += v;

    std::size_t bucket = 0;
    if (v >= 1.0)
        bucket = static_cast<std::size_t>(std::log2(v)) + 1;
    if (buckets_.size() <= bucket)
        buckets_.resize(bucket + 1, 0);
    ++buckets_[bucket];
}

double
Histogram::percentile(double p) const
{
    return percentileFromBuckets(buckets_, count_, p, max_);
}

double
Histogram::percentileFromBuckets(const std::vector<std::uint64_t> &buckets,
                                 std::uint64_t count, double p,
                                 double maxFallback)
{
    if (count == 0)
        return 0.0;
    const auto target =
        static_cast<std::uint64_t>(std::ceil(p / 100.0 *
                                             static_cast<double>(count)));
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < buckets.size(); ++i) {
        seen += buckets[i];
        if (seen >= target) {
            // Midpoint of the log2 bucket as the estimate.
            if (i == 0)
                return 0.5;
            return 0.75 * std::pow(2.0, static_cast<double>(i));
        }
    }
    return maxFallback;
}

void
Histogram::reset()
{
    count_ = 0;
    sum_ = 0.0;
    min_ = 0.0;
    max_ = 0.0;
    buckets_.clear();
}

void
StatRegistry::add(Counter *c)
{
    counters_[c->name()] = c;
}

void
StatRegistry::add(Histogram *h)
{
    histograms_[h->name()] = h;
}

const Counter *
StatRegistry::counter(const std::string &name) const
{
    auto it = counters_.find(name);
    return it == counters_.end() ? nullptr : it->second;
}

const Histogram *
StatRegistry::histogram(const std::string &name) const
{
    auto it = histograms_.find(name);
    return it == histograms_.end() ? nullptr : it->second;
}

std::uint64_t
StatRegistry::sumByPrefix(const std::string &prefix) const
{
    std::uint64_t total = 0;
    for (auto it = counters_.lower_bound(prefix); it != counters_.end();
         ++it) {
        if (it->first.compare(0, prefix.size(), prefix) != 0)
            break;
        total += it->second->value();
    }
    return total;
}

void
StatRegistry::dump(std::ostream &os) const
{
    os << "---------- stats ----------\n";
    for (const auto &[name, c] : counters_) {
        os << std::left << std::setw(48) << name << ' ' << c->value();
        if (!c->desc().empty())
            os << "   # " << c->desc();
        os << '\n';
    }
    for (const auto &[name, h] : histograms_) {
        os << std::left << std::setw(48) << name << " n=" << h->count()
           << " mean=" << h->mean() << " min=" << h->min()
           << " max=" << h->max();
        if (!h->desc().empty())
            os << "   # " << h->desc();
        os << '\n';
    }
    os << "---------------------------\n";
}

void
StatRegistry::resetAll()
{
    for (auto &[name, c] : counters_)
        c->reset();
    for (auto &[name, h] : histograms_)
        h->reset();
}

} // namespace sonuma::sim
