/**
 * @file
 * Statistics framework implementation.
 */

#include "sim/stats.hh"

#include <cmath>
#include <cstdio>
#include <iomanip>

#include "sim/time_series.hh"

namespace sonuma::sim {

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          case '\r':
            out += "\\r";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

Counter::Counter(StatRegistry &reg, std::string name, std::string desc)
    : name_(std::move(name)), desc_(std::move(desc))
{
    reg.add(this);
}

Histogram::Histogram(StatRegistry &reg, std::string name, std::string desc)
    : name_(std::move(name)), desc_(std::move(desc))
{
    reg.add(this);
}

void
Histogram::sample(double v)
{
    if (count_ == 0) {
        min_ = v;
        max_ = v;
    } else {
        min_ = std::min(min_, v);
        max_ = std::max(max_, v);
    }
    ++count_;
    sum_ += v;

    std::size_t bucket = 0;
    if (v >= 1.0)
        bucket = static_cast<std::size_t>(std::log2(v)) + 1;
    if (buckets_.size() <= bucket)
        buckets_.resize(bucket + 1, 0);
    ++buckets_[bucket];
}

double
Histogram::percentile(double p) const
{
    return percentileFromBuckets(buckets_, count_, p, max_);
}

double
Histogram::percentileFromBuckets(const std::vector<std::uint64_t> &buckets,
                                 std::uint64_t count, double p,
                                 double maxFallback)
{
    if (count == 0)
        return 0.0;
    // p >= 100 asks for the maximum; the bucket scan would answer with
    // the last occupied bucket's midpoint, which undershoots the true
    // max the caller already tracks. Hand back the fallback directly.
    if (p >= 100.0)
        return maxFallback;
    auto target =
        static_cast<std::uint64_t>(std::ceil(p / 100.0 *
                                             static_cast<double>(count)));
    // p <= 0 would make target 0 and trivially "find" bucket 0 even when
    // it is empty (returning 0.5 for data that never saw a sub-1 sample).
    // Clamp to the first sample instead.
    target = std::max<std::uint64_t>(target, 1);
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < buckets.size(); ++i) {
        seen += buckets[i];
        if (seen >= target) {
            // Midpoint of the log2 bucket as the estimate.
            if (i == 0)
                return 0.5;
            return 0.75 * std::pow(2.0, static_cast<double>(i));
        }
    }
    return maxFallback;
}

void
Histogram::reset()
{
    count_ = 0;
    sum_ = 0.0;
    min_ = 0.0;
    max_ = 0.0;
    buckets_.clear();
}

void
StatRegistry::add(Counter *c)
{
    counters_[c->name()] = c;
}

void
StatRegistry::add(Histogram *h)
{
    histograms_[h->name()] = h;
}

void
StatRegistry::add(TimeSeries *ts)
{
    series_[ts->name()] = ts;
    if (samplingSlots_ > 0)
        ts->reserve(samplingSlots_);
}

void
StatRegistry::enableSampling(std::size_t slots)
{
    samplingSlots_ = slots;
    for (auto &[name, ts] : series_)
        ts->reserve(slots);
}

const TimeSeries *
StatRegistry::timeSeries(const std::string &name) const
{
    auto it = series_.find(name);
    return it == series_.end() ? nullptr : it->second;
}

std::vector<const TimeSeries *>
StatRegistry::allTimeSeries() const
{
    std::vector<const TimeSeries *> out;
    out.reserve(series_.size());
    for (const auto &[name, ts] : series_)
        out.push_back(ts);
    return out;
}

void
StatRegistry::sampleAll(Tick now)
{
    // Hot path when sampling is on: plain map walk, no allocation.
    for (auto &[name, ts] : series_)
        ts->sample(now);
}

const Counter *
StatRegistry::counter(const std::string &name) const
{
    auto it = counters_.find(name);
    return it == counters_.end() ? nullptr : it->second;
}

const Histogram *
StatRegistry::histogram(const std::string &name) const
{
    auto it = histograms_.find(name);
    return it == histograms_.end() ? nullptr : it->second;
}

std::uint64_t
StatRegistry::sumByPrefix(const std::string &prefix) const
{
    std::uint64_t total = 0;
    for (auto it = counters_.lower_bound(prefix); it != counters_.end();
         ++it) {
        if (it->first.compare(0, prefix.size(), prefix) != 0)
            break;
        total += it->second->value();
    }
    return total;
}

void
StatRegistry::dump(std::ostream &os) const
{
    os << "---------- stats ----------\n";
    for (const auto &[name, c] : counters_) {
        os << std::left << std::setw(48) << name << ' ' << c->value();
        if (!c->desc().empty())
            os << "   # " << c->desc();
        os << '\n';
    }
    for (const auto &[name, h] : histograms_) {
        os << std::left << std::setw(48) << name << " n=" << h->count()
           << " mean=" << h->mean() << " min=" << h->min()
           << " max=" << h->max();
        if (!h->desc().empty())
            os << "   # " << h->desc();
        os << '\n';
    }
    os << "---------------------------\n";
}

void
StatRegistry::resetAll()
{
    for (auto &[name, c] : counters_)
        c->reset();
    for (auto &[name, h] : histograms_)
        h->reset();
}

} // namespace sonuma::sim
