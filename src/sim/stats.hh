/**
 * @file
 * Lightweight statistics framework (gem5-inspired).
 *
 * Stats register themselves with a StatRegistry under hierarchical dotted
 * names ("node0.rmc.rgp.reqSent"). Benchmarks and tests read them back
 * programmatically; dump() renders a human-readable report.
 */

#ifndef SONUMA_SIM_STATS_HH
#define SONUMA_SIM_STATS_HH

#include <algorithm>
#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "sim/types.hh"

namespace sonuma::sim {

class StatRegistry;
class TimeSeries;

/**
 * Escape a string for embedding inside a JSON string literal: backslash,
 * double quote, and control characters (\uXXXX). Every string that
 * reaches an artifact must pass through here — raw labels with quotes or
 * backslashes would otherwise corrupt the JSON.
 */
std::string jsonEscape(const std::string &s);

/** Monotonically increasing event counter. */
class Counter
{
  public:
    Counter() = default;
    Counter(StatRegistry &reg, std::string name, std::string desc);

    void inc(std::uint64_t n = 1) { value_ += n; }
    std::uint64_t value() const { return value_; }
    void reset() { value_ = 0; }

    const std::string &name() const { return name_; }
    const std::string &desc() const { return desc_; }

  private:
    std::string name_;
    std::string desc_;
    std::uint64_t value_ = 0;
};

/**
 * Sampled distribution with mean/min/max and logarithmic buckets.
 * Used for latency distributions (e.g., remote read RTTs).
 */
class Histogram
{
  public:
    Histogram() = default;
    Histogram(StatRegistry &reg, std::string name, std::string desc);

    void sample(double v);

    std::uint64_t count() const { return count_; }
    double sum() const { return sum_; }
    double mean() const { return count_ ? sum_ / count_ : 0.0; }
    double min() const { return count_ ? min_ : 0.0; }
    double max() const { return count_ ? max_ : 0.0; }

    /**
     * Approximate p-th percentile from log2 buckets. Edge cases are
     * pinned down (and unit-tested): count==0 returns 0; p <= 0 is
     * clamped to the first sample; p >= 100 returns the true max (the
     * maxFallback) rather than a bucket midpoint below it.
     */
    double percentile(double p) const;

    /**
     * The same estimate over an externally pooled bucket array (e.g.
     * several histograms' buckets() summed element-wise); keeps pooled
     * percentiles in lockstep with this class's bucket mapping.
     * @param maxFallback returned when the target lies past all buckets
     */
    static double percentileFromBuckets(
        const std::vector<std::uint64_t> &buckets, std::uint64_t count,
        double p, double maxFallback);

    void reset();

    const std::string &name() const { return name_; }
    const std::string &desc() const { return desc_; }
    const std::vector<std::uint64_t> &buckets() const { return buckets_; }

  private:
    std::string name_;
    std::string desc_;
    std::uint64_t count_ = 0;
    double sum_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
    std::vector<std::uint64_t> buckets_; // bucket i: [2^i, 2^(i+1))
};

/**
 * Registry of all stats in one Simulation. Owns nothing: stats live in
 * their owning model objects and register pointers here.
 */
class StatRegistry
{
  public:
    void add(Counter *c);
    void add(Histogram *h);
    void add(TimeSeries *ts);

    /** Find a counter by exact name; nullptr if absent. */
    const Counter *counter(const std::string &name) const;

    /** Find a histogram by exact name; nullptr if absent. */
    const Histogram *histogram(const std::string &name) const;

    /** Sum of all counters whose names match a prefix. */
    std::uint64_t sumByPrefix(const std::string &prefix) const;

    /** Render a report of all registered stats. */
    void dump(std::ostream &os) const;

    /** Reset every registered stat to zero. */
    void resetAll();

    //
    // Time-series sampling (off by default; see sim/time_series.hh).
    //

    /**
     * Turn sampling on with @p slots fixed ring slots per series. Must
     * be called before model construction: series registered afterwards
     * get their rings sized here at add() time; series registered while
     * sampling is off keep zero slots and sample() no-ops.
     */
    void enableSampling(std::size_t slots);

    bool samplingEnabled() const { return samplingSlots_ > 0; }
    std::size_t samplingSlots() const { return samplingSlots_; }

    /** Find a time series by exact name; nullptr if absent. */
    const TimeSeries *timeSeries(const std::string &name) const;

    /** Every registered series, in name order. */
    std::vector<const TimeSeries *> allTimeSeries() const;

    /** Record one sample in every registered series (sampler service). */
    void sampleAll(Tick now);

  private:
    std::map<std::string, Counter *> counters_;
    std::map<std::string, Histogram *> histograms_;
    std::map<std::string, TimeSeries *> series_;
    std::size_t samplingSlots_ = 0;
};

} // namespace sonuma::sim

#endif // SONUMA_SIM_STATS_HH
