/**
 * @file
 * Freelist pool for coroutine frames.
 *
 * Every simulated transaction is a coroutine; at scale the simulator
 * creates and destroys millions of frames whose sizes cluster on a
 * handful of values (one per coroutine function). Task and FireAndForget
 * promise types route frame allocation here: frames are bucketed by size
 * class (64-byte granularity) and recycled through per-bucket freelists,
 * so steady-state spawn/complete cycles never touch the global allocator.
 *
 * The pool is thread-local — the simulator is single-threaded, and this
 * keeps independent Simulations in different threads (e.g. parallel test
 * shards) from racing.
 */

#ifndef SONUMA_SIM_FRAME_POOL_HH
#define SONUMA_SIM_FRAME_POOL_HH

#include <cstddef>
#include <cstdint>
#include <new>

namespace sonuma::sim {

class FramePool
{
  public:
    /** Size-class granularity; also the block header size. */
    static constexpr std::size_t kGranuleBytes = 64;

    /** Largest pooled frame; bigger frames fall through to new/delete. */
    static constexpr std::size_t kMaxPooledBytes = 4096;

    struct Stats
    {
        std::uint64_t allocs = 0;      //!< total allocate() calls
        std::uint64_t reuses = 0;      //!< served from a freelist
        std::uint64_t fresh = 0;       //!< served by the heap
        std::uint64_t oversize = 0;    //!< larger than kMaxPooledBytes
        std::uint64_t outstanding = 0; //!< live frames
    };

    /** The calling thread's pool. */
    static FramePool &instance();

    void *
    allocate(std::size_t bytes)
    {
        ++stats_.allocs;
        ++stats_.outstanding;
        const std::size_t total = bytes + sizeof(Header);
        if (total > kMaxPooledBytes) {
            ++stats_.oversize;
            auto *block = static_cast<Header *>(::operator new(total));
            block->bucket = kOversize;
            return block + 1;
        }
        const std::size_t bucket = bucketOf(total);
        if (Header *block = freelists_[bucket]) {
            freelists_[bucket] = block->next;
            ++stats_.reuses;
            block->bucket = static_cast<std::uint32_t>(bucket);
            return block + 1;
        }
        ++stats_.fresh;
        auto *block = static_cast<Header *>(
            ::operator new((bucket + 1) * kGranuleBytes));
        block->bucket = static_cast<std::uint32_t>(bucket);
        return block + 1;
    }

    void
    deallocate(void *p)
    {
        if (!p)
            return;
        --stats_.outstanding;
        Header *block = static_cast<Header *>(p) - 1;
        // Copy the bucket out before linking: next aliases bucket in the
        // header union.
        const std::uint32_t bucket = block->bucket;
        if (bucket == kOversize) {
            ::operator delete(block);
            return;
        }
        block->next = freelists_[bucket];
        freelists_[bucket] = block;
    }

    const Stats &stats() const { return stats_; }
    void resetStats() { stats_ = Stats{.outstanding = stats_.outstanding}; }

    /** Return all pooled blocks to the heap (e.g. between benchmarks). */
    void
    releaseAll()
    {
        for (auto &head : freelists_) {
            while (head) {
                Header *next = head->next;
                ::operator delete(head);
                head = next;
            }
        }
    }

    ~FramePool() { releaseAll(); }

  private:
    // Header keeps the frame payload max_align_t-aligned (64 >= 16) and
    // doubles as the freelist link when the block is free.
    struct alignas(std::max_align_t) Header
    {
        union
        {
            std::uint32_t bucket;
            Header *next;
        };
    };
    static_assert(sizeof(Header) <= kGranuleBytes);

    static constexpr std::uint32_t kOversize = 0xffffffffu;
    static constexpr std::size_t kNumBuckets =
        kMaxPooledBytes / kGranuleBytes;

    static std::size_t
    bucketOf(std::size_t totalBytes)
    {
        // Round up to the granule, then 0-index: 1..64 -> 0, 65..128 -> 1.
        return (totalBytes + kGranuleBytes - 1) / kGranuleBytes - 1;
    }

    Header *freelists_[kNumBuckets] = {};
    Stats stats_;
};

/**
 * Inherit from this in a promise_type to pool its coroutine frames.
 */
struct PooledFrame
{
    static void *
    operator new(std::size_t bytes)
    {
        return FramePool::instance().allocate(bytes);
    }

    static void
    operator delete(void *p, std::size_t)
    {
        FramePool::instance().deallocate(p);
    }

    static void
    operator delete(void *p)
    {
        FramePool::instance().deallocate(p);
    }
};

} // namespace sonuma::sim

#endif // SONUMA_SIM_FRAME_POOL_HH
