/**
 * @file
 * Synchronization primitives for simulated software threads.
 *
 * All wake-ups route through the EventQueue (at the current tick) rather
 * than resuming coroutines inline. This bounds native stack depth and keeps
 * the global event order the single source of truth.
 */

#ifndef SONUMA_SIM_SYNC_HH
#define SONUMA_SIM_SYNC_HH

#include <coroutine>
#include <cstdint>
#include <vector>

#include "sim/event_queue.hh"
#include "sim/ring_buffer.hh"
#include "sim/task.hh"
#include "sim/types.hh"

namespace sonuma::sim {

/**
 * One-shot broadcast event: tasks co_await it; set() wakes all waiters.
 * Awaiting an already-set event does not suspend.
 */
class OneShotEvent
{
  public:
    explicit OneShotEvent(EventQueue &eq) : eq_(eq) {}

    /** Fire the event, waking all current and future waiters. */
    void
    set()
    {
        if (set_)
            return;
        set_ = true;
        for (auto h : waiters_)
            eq_.scheduleAfter(0, [h] { h.resume(); });
        waiters_.clear();
    }

    bool isSet() const { return set_; }

    struct Awaiter
    {
        OneShotEvent &ev;

        bool await_ready() const noexcept { return ev.set_; }

        void
        await_suspend(std::coroutine_handle<> h)
        {
            ev.waiters_.push_back(h);
        }

        void await_resume() const noexcept {}
    };

    Awaiter operator co_await() noexcept { return Awaiter{*this}; }

  private:
    EventQueue &eq_;
    std::vector<std::coroutine_handle<>> waiters_;
    bool set_ = false;
};

/**
 * Counting semaphore. Used throughout for credit-based flow control
 * (fabric link credits, WQ slots, messaging-library credits).
 */
class Semaphore
{
  public:
    Semaphore(EventQueue &eq, std::uint64_t initial)
        : eq_(eq), count_(initial)
    {}

    /** Current credit count. */
    std::uint64_t count() const { return count_; }

    /** Number of tasks blocked in acquire(). */
    std::size_t waiters() const { return waiters_.size(); }

    /** Release one credit, waking the oldest waiter if any. */
    void
    release(std::uint64_t n = 1)
    {
        count_ += n;
        while (count_ > 0 && !waiters_.empty()) {
            --count_;
            auto h = waiters_.popFront();
            eq_.scheduleAfter(0, [h] { h.resume(); });
        }
    }

    /** Non-blocking acquire. @retval true if a credit was taken. */
    bool
    tryAcquire()
    {
        if (count_ == 0)
            return false;
        --count_;
        return true;
    }

    /**
     * Awaitable acquire of one credit. FIFO-fair: if tasks are already
     * queued, new arrivals go to the back even when credits are available.
     *
     * Usage: `co_await sem.acquire();`
     */
    auto
    acquire()
    {
        struct AcquireAwaiter
        {
            Semaphore &sem;

            bool
            await_ready() noexcept
            {
                if (sem.waiters_.empty() && sem.count_ > 0) {
                    --sem.count_;
                    return true;
                }
                return false;
            }

            void
            await_suspend(std::coroutine_handle<> h)
            {
                sem.waiters_.push(h);
            }

            void await_resume() const noexcept {}
        };
        return AcquireAwaiter{*this};
    }

  private:
    EventQueue &eq_;
    std::uint64_t count_;
    // Ring, not deque: a deque churns 512-byte map nodes as waiters
    // cycle through it, which shows up under the alloc-counting hook.
    RingBuffer<std::coroutine_handle<>> waiters_;
};

/**
 * Re-triggerable condition: tasks wait; notifyAll() wakes every current
 * waiter (they must re-check their predicate). This is the building block
 * for polling loops that should not spin at zero-cost.
 */
class Condition
{
  public:
    explicit Condition(EventQueue &eq) : eq_(eq) {}

    void
    notifyAll()
    {
        for (auto h : waiters_)
            eq_.scheduleAfter(0, [h] { h.resume(); });
        waiters_.clear();
    }

    std::size_t waiters() const { return waiters_.size(); }

    auto
    wait()
    {
        struct WaitAwaiter
        {
            Condition &cond;
            bool await_ready() const noexcept { return false; }

            void
            await_suspend(std::coroutine_handle<> h)
            {
                cond.waiters_.push_back(h);
            }

            void await_resume() const noexcept {}
        };
        return WaitAwaiter{*this};
    }

  private:
    EventQueue &eq_;
    std::vector<std::coroutine_handle<>> waiters_;
};

/**
 * Intra-node barrier for tasks sharing one coherent node (pthread-style).
 * Reusable across episodes.
 */
class LocalBarrier
{
  public:
    LocalBarrier(EventQueue &eq, std::size_t parties)
        : cond_(eq), parties_(parties)
    {}

    /** Coroutine: resumes once all parties arrived. */
    Task
    arrive()
    {
        const std::uint64_t myGen = generation_;
        if (++waiting_ == parties_) {
            waiting_ = 0;
            ++generation_;
            cond_.notifyAll();
            co_return;
        }
        while (generation_ == myGen)
            co_await cond_.wait();
    }

    std::uint64_t generation() const { return generation_; }

  private:
    Condition cond_;
    std::size_t parties_;
    std::size_t waiting_ = 0;
    std::uint64_t generation_ = 0;
};

} // namespace sonuma::sim

#endif // SONUMA_SIM_SYNC_HH
