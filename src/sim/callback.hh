/**
 * @file
 * Small-buffer-optimized callback type for the simulation hot path.
 *
 * `sim::Callback` replaces `std::function<void()>` everywhere events are
 * scheduled. libstdc++'s std::function only stores trivially-copyable
 * captures up to 16 bytes inline; every fabric closure that captured a
 * Message (~136 B) or a coroutine handle plus context took a heap
 * allocation per event. Callback provides 48 bytes of inline storage and
 * accepts move-only captures, so the steady-state simulation loop touches
 * the allocator only for captures that genuinely exceed the buffer.
 *
 * Trivially-copyable captures (the overwhelming majority: lambdas over
 * pointers, handles, ids, PODs) take a fast path: moves are a fixed-size
 * memcpy and destruction is a no-op, with no indirect calls.
 *
 * Semantics: move-only, nullable, repeatedly invocable. Invoking an empty
 * Callback is undefined (asserts in debug builds).
 */

#ifndef SONUMA_SIM_CALLBACK_HH
#define SONUMA_SIM_CALLBACK_HH

#include <cassert>
#include <cstddef>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>

namespace sonuma::sim {

class Callback
{
  public:
    /** Bytes of inline storage: captures up to this size never allocate. */
    static constexpr std::size_t kInlineBytes = 48;

    Callback() noexcept = default;
    Callback(std::nullptr_t) noexcept {}

    template <typename F,
              typename = std::enable_if_t<
                  !std::is_same_v<std::decay_t<F>, Callback> &&
                  std::is_invocable_r_v<void, std::decay_t<F> &>>>
    Callback(F &&f)
    {
        emplace(std::forward<F>(f));
    }

    Callback(Callback &&o) noexcept { moveFrom(o); }

    Callback &
    operator=(Callback &&o) noexcept
    {
        if (this != &o) {
            reset();
            moveFrom(o);
        }
        return *this;
    }

    Callback &
    operator=(std::nullptr_t) noexcept
    {
        reset();
        return *this;
    }

    template <typename F,
              typename = std::enable_if_t<
                  !std::is_same_v<std::decay_t<F>, Callback> &&
                  std::is_invocable_r_v<void, std::decay_t<F> &>>>
    Callback &
    operator=(F &&f)
    {
        reset();
        emplace(std::forward<F>(f));
        return *this;
    }

    Callback(const Callback &) = delete;
    Callback &operator=(const Callback &) = delete;

    ~Callback() { reset(); }

    explicit operator bool() const noexcept { return ops_ != nullptr; }

    void
    operator()()
    {
        assert(ops_ && "invoking an empty Callback");
        ops_->invoke(target());
    }

    /** True if the callable lives in the inline buffer (test hook). */
    bool
    isInline() const noexcept
    {
        return ops_ && ops_->inlineStored;
    }

    /** Drop the held callable (releases its captures immediately). */
    void
    reset() noexcept
    {
        if (ops_) {
            if (!ops_->trivial)
                ops_->destroy(target());
            ops_ = nullptr;
        }
    }

  private:
    struct Ops
    {
        void (*invoke)(void *);
        void (*destroy)(void *);
        // Moves the callable from src storage into dst storage. For heap
        // targets this just moves the pointer.
        void (*relocate)(void *src, void *dst);
        bool inlineStored;
        // Trivially copyable and destructible: moves are a plain memcpy
        // of the inline buffer and destruction is a no-op.
        bool trivial;
    };

    alignas(std::max_align_t) unsigned char storage_[kInlineBytes];
    const Ops *ops_ = nullptr;

    void *
    target() noexcept
    {
        if (ops_->inlineStored)
            return storage_;
        return *reinterpret_cast<void **>(storage_);
    }

    void
    moveFrom(Callback &o) noexcept
    {
        ops_ = o.ops_;
        if (ops_) {
            if (ops_->trivial)
                std::memcpy(storage_, o.storage_, kInlineBytes);
            else
                ops_->relocate(o.storage_, storage_);
        }
        o.ops_ = nullptr;
    }

    template <typename F>
    void
    emplace(F &&f)
    {
        using Fn = std::decay_t<F>;
        constexpr bool fits = sizeof(Fn) <= kInlineBytes &&
                              alignof(Fn) <= alignof(std::max_align_t) &&
                              std::is_nothrow_move_constructible_v<Fn>;
        if constexpr (fits) {
            static const Ops ops = {
                [](void *p) { (*static_cast<Fn *>(p))(); },
                [](void *p) { static_cast<Fn *>(p)->~Fn(); },
                [](void *src, void *dst) {
                    ::new (dst) Fn(std::move(*static_cast<Fn *>(src)));
                    static_cast<Fn *>(src)->~Fn();
                },
                true,
                std::is_trivially_copyable_v<Fn> &&
                    std::is_trivially_destructible_v<Fn>,
            };
            ::new (static_cast<void *>(storage_))
                Fn(std::forward<F>(f));
            ops_ = &ops;
        } else {
            static const Ops ops = {
                [](void *p) { (*static_cast<Fn *>(p))(); },
                [](void *p) { delete static_cast<Fn *>(p); },
                [](void *src, void *dst) {
                    *reinterpret_cast<void **>(dst) =
                        *reinterpret_cast<void **>(src);
                },
                false,
                false,
            };
            *reinterpret_cast<void **>(storage_) =
                new Fn(std::forward<F>(f));
            ops_ = &ops;
        }
    }
};

} // namespace sonuma::sim

#endif // SONUMA_SIM_CALLBACK_HH
