/**
 * @file
 * A FIFO-serialized link with one scheduled drain event.
 *
 * Shared by the crossbar egress pipes and the torus router ports: a
 * packet occupies the link's serialization horizon, then arrives a fixed
 * latency after its serialization completes. Because serialization is
 * FIFO, arrival ticks are monotone per link, so a single scheduled drain
 * event (at the head's arrival tick) replaces per-packet closures — the
 * drain callback captures only the link's identity and stays inline in
 * sim::Callback.
 */

#ifndef SONUMA_SIM_SERIALIZED_LINK_HH
#define SONUMA_SIM_SERIALIZED_LINK_HH

#include <algorithm>
#include <utility>

#include "sim/event_queue.hh"
#include "sim/ring_buffer.hh"
#include "sim/types.hh"

namespace sonuma::sim {

template <typename Payload>
class SerializedLink
{
  public:
    bool empty() const { return q_.empty(); }

    /**
     * Admit a packet: serialize for @p ser behind whatever is already on
     * the link, then propagate for @p latency.
     */
    void
    push(Tick now, Tick ser, Tick latency, Payload payload)
    {
        const Tick start = std::max(now, busyUntil_);
        busyUntil_ = start + ser;
        totalBusy_ += ser;
        q_.push(Entry{busyUntil_ + latency, std::move(payload)});
    }

    /**
     * Cumulative serialization ticks consumed up to @p now: total busy
     * time charged minus the portion still scheduled in the future.
     * Sampling this as a rate over wall (simulated) time yields the
     * link's utilization fraction.
     */
    Tick
    busyThrough(Tick now) const
    {
        return totalBusy_ - (busyUntil_ > now ? busyUntil_ - now : 0);
    }

    /** Packets serialized or in flight, not yet delivered. */
    std::size_t queued() const { return q_.size(); }

    /**
     * Schedule @p drainEvent at the head's arrival tick unless a drain
     * is already pending. @p drainEvent must call drain() on this link.
     * A credit returned mid-drain can re-arm while the head is already
     * due, so the schedule tick is clamped to now.
     */
    template <typename DrainEvent>
    void
    arm(EventQueue &eq, DrainEvent &&drainEvent)
    {
        if (drainArmed_ || q_.empty())
            return;
        drainArmed_ = true;
        eq.schedule(std::max(q_.front().arriveAt, eq.now()),
                    std::forward<DrainEvent>(drainEvent));
    }

    /**
     * Deliver every packet whose arrival tick has been reached, then
     * re-arm for the next head if packets remain. @p deliver receives
     * each Payload; @p drainEvent is the same event used with arm().
     * Safe against re-entrant push()es from inside @p deliver (new
     * arrivals are strictly later than now, so the loop terminates and
     * the re-arm picks them up).
     */
    template <typename Deliver, typename DrainEvent>
    void
    drain(EventQueue &eq, Deliver &&deliver, DrainEvent &&drainEvent)
    {
        drainArmed_ = false;
        while (!q_.empty() && q_.front().arriveAt <= eq.now()) {
            Entry e = q_.popFront();
            deliver(e.payload);
        }
        arm(eq, std::forward<DrainEvent>(drainEvent));
    }

  private:
    struct Entry
    {
        Tick arriveAt = 0;
        Payload payload;
    };

    RingBuffer<Entry> q_{4};
    Tick busyUntil_ = 0;
    Tick totalBusy_ = 0;
    bool drainArmed_ = false;
};

} // namespace sonuma::sim

#endif // SONUMA_SIM_SERIALIZED_LINK_HH
