/**
 * @file
 * Logging implementation.
 */

#include "sim/log.hh"

#include <cstdlib>
#include <iostream>

namespace sonuma::sim {

namespace {

LogLevel g_level = LogLevel::kWarn;

const char *
levelName(LogLevel lvl)
{
    switch (lvl) {
      case LogLevel::kWarn:
        return "warn";
      case LogLevel::kInfo:
        return "info";
      case LogLevel::kDebug:
        return "debug";
      case LogLevel::kTrace:
        return "trace";
      default:
        return "?";
    }
}

} // namespace

LogLevel
logLevel()
{
    return g_level;
}

void
setLogLevel(LogLevel lvl)
{
    g_level = lvl;
}

void
logLine(LogLevel lvl, Tick now, const std::string &component,
        const std::string &msg)
{
    std::cerr << '[' << ticksToNs(now) << "ns] " << levelName(lvl) << ' '
              << component << ": " << msg << '\n';
}

void
fatal(const std::string &msg)
{
    throw FatalError(msg);
}

void
panic(const std::string &msg)
{
    std::cerr << "panic: " << msg << std::endl;
    std::abort();
}

} // namespace sonuma::sim
