/**
 * @file
 * Coroutine tasks for simulated software threads.
 *
 * Application code (the paper's Fig. 4 style) runs as C++20 coroutines.
 * A Task is lazy: it starts when first resumed, either by `co_await`ing it
 * from another task or by Simulation::spawn(). All time-based suspensions
 * resume through the EventQueue, so software and hardware share one global
 * deterministic ordering.
 */

#ifndef SONUMA_SIM_TASK_HH
#define SONUMA_SIM_TASK_HH

#include <cassert>
#include <coroutine>
#include <cstdlib>
#include <exception>
#include <utility>

#include "sim/event_queue.hh"
#include "sim/frame_pool.hh"
#include "sim/types.hh"

namespace sonuma::sim {

/**
 * A lazily-started coroutine representing a simulated software thread
 * (or a sub-routine of one).
 *
 * Tasks are move-only and own their coroutine frame. `co_await task`
 * runs the child to completion (in simulated time) and then resumes the
 * parent via symmetric transfer; exceptions propagate to the awaiter.
 */
class Task
{
  public:
    struct promise_type;
    using Handle = std::coroutine_handle<promise_type>;

    struct promise_type : PooledFrame
    {
        std::coroutine_handle<> continuation;
        std::exception_ptr exception;
        bool *completionFlag = nullptr;

        Task
        get_return_object()
        {
            return Task(Handle::from_promise(*this));
        }

        std::suspend_always initial_suspend() noexcept { return {}; }

        struct FinalAwaiter
        {
            bool await_ready() noexcept { return false; }

            std::coroutine_handle<>
            await_suspend(Handle h) noexcept
            {
                auto &p = h.promise();
                if (p.completionFlag)
                    *p.completionFlag = true;
                return p.continuation ? p.continuation
                                      : std::coroutine_handle<>(
                                            std::noop_coroutine());
            }

            void await_resume() noexcept {}
        };

        FinalAwaiter final_suspend() noexcept { return {}; }
        void return_void() noexcept {}

        void
        unhandled_exception() noexcept
        {
            exception = std::current_exception();
        }
    };

    Task() = default;
    explicit Task(Handle h) : handle_(h) {}

    Task(Task &&o) noexcept : handle_(std::exchange(o.handle_, nullptr)) {}

    Task &
    operator=(Task &&o) noexcept
    {
        if (this != &o) {
            destroy();
            handle_ = std::exchange(o.handle_, nullptr);
        }
        return *this;
    }

    Task(const Task &) = delete;
    Task &operator=(const Task &) = delete;

    ~Task() { destroy(); }

    /** True if this task holds a coroutine frame. */
    bool valid() const { return static_cast<bool>(handle_); }

    /** True once the coroutine ran to completion. */
    bool done() const { return handle_ && handle_.done(); }

    /** Rethrow an exception that escaped the coroutine, if any. */
    void
    rethrowIfFailed() const
    {
        if (handle_ && handle_.promise().exception)
            std::rethrow_exception(handle_.promise().exception);
    }

    /** Awaiter for `co_await task`: start child, resume parent when done. */
    struct JoinAwaiter
    {
        Handle handle;

        bool await_ready() const noexcept { return !handle || handle.done(); }

        std::coroutine_handle<>
        await_suspend(std::coroutine_handle<> parent) noexcept
        {
            handle.promise().continuation = parent;
            return handle; // symmetric transfer: start the child now
        }

        void
        await_resume() const
        {
            if (handle && handle.promise().exception)
                std::rethrow_exception(handle.promise().exception);
        }
    };

    JoinAwaiter operator co_await() const noexcept { return {handle_}; }

    /**
     * Release ownership of the frame (used by Simulation::spawn, which
     * manages root-task lifetime itself).
     */
    Handle
    release()
    {
        return std::exchange(handle_, nullptr);
    }

  private:
    Handle handle_;

    void
    destroy()
    {
        if (handle_) {
            handle_.destroy();
            handle_ = nullptr;
        }
    }
};

/**
 * A lazily-started coroutine that computes a value of type T.
 *
 * The value-bearing sibling of Task, used by the access library for
 * awaitable operations: `OpResult r = co_await session.read(...)`.
 * Same lifetime rules as Task (move-only, owns its frame, pooled
 * allocation); `co_await valueTask` runs the child to completion in
 * simulated time and yields the returned value.
 */
template <typename T>
class ValueTask
{
  public:
    struct promise_type;
    using Handle = std::coroutine_handle<promise_type>;

    struct promise_type : PooledFrame
    {
        std::coroutine_handle<> continuation;
        std::exception_ptr exception;
        T value{};

        ValueTask
        get_return_object()
        {
            return ValueTask(Handle::from_promise(*this));
        }

        std::suspend_always initial_suspend() noexcept { return {}; }

        struct FinalAwaiter
        {
            bool await_ready() noexcept { return false; }

            std::coroutine_handle<>
            await_suspend(Handle h) noexcept
            {
                auto &p = h.promise();
                return p.continuation ? p.continuation
                                      : std::coroutine_handle<>(
                                            std::noop_coroutine());
            }

            void await_resume() noexcept {}
        };

        FinalAwaiter final_suspend() noexcept { return {}; }

        void
        return_value(T v) noexcept
        {
            value = std::move(v);
        }

        void
        unhandled_exception() noexcept
        {
            exception = std::current_exception();
        }
    };

    ValueTask() = default;
    explicit ValueTask(Handle h) : handle_(h) {}

    ValueTask(ValueTask &&o) noexcept
        : handle_(std::exchange(o.handle_, nullptr))
    {}

    ValueTask &
    operator=(ValueTask &&o) noexcept
    {
        if (this != &o) {
            destroy();
            handle_ = std::exchange(o.handle_, nullptr);
        }
        return *this;
    }

    ValueTask(const ValueTask &) = delete;
    ValueTask &operator=(const ValueTask &) = delete;

    ~ValueTask() { destroy(); }

    bool valid() const { return static_cast<bool>(handle_); }
    bool done() const { return handle_ && handle_.done(); }

    /** Awaiter: start the child, resume the parent with the value. */
    struct JoinAwaiter
    {
        Handle handle;

        bool await_ready() const noexcept { return !handle || handle.done(); }

        std::coroutine_handle<>
        await_suspend(std::coroutine_handle<> parent) noexcept
        {
            handle.promise().continuation = parent;
            return handle; // symmetric transfer: start the child now
        }

        T
        await_resume() const
        {
            if (handle && handle.promise().exception)
                std::rethrow_exception(handle.promise().exception);
            return std::move(handle.promise().value);
        }
    };

    JoinAwaiter operator co_await() const noexcept { return {handle_}; }

  private:
    Handle handle_;

    void
    destroy()
    {
        if (handle_) {
            handle_.destroy();
            handle_ = nullptr;
        }
    }
};

/**
 * An eagerly-started, self-destroying coroutine for hardware transactions
 * (e.g., one in-flight RMC request). Runs synchronously until its first
 * suspension; the frame frees itself at completion, so millions of
 * transactions do not accumulate. Exceptions escaping one of these are
 * simulator bugs and abort.
 */
struct FireAndForget
{
    struct promise_type : PooledFrame
    {
        FireAndForget get_return_object() noexcept { return {}; }
        std::suspend_never initial_suspend() noexcept { return {}; }
        std::suspend_never final_suspend() noexcept { return {}; }
        void return_void() noexcept {}
        [[noreturn]] void unhandled_exception() noexcept { std::abort(); }
    };
};

/** Awaitable that suspends a task for a fixed amount of simulated time. */
class Delay
{
  public:
    Delay(EventQueue &eq, Tick d) : eq_(eq), delay_(d) {}

    bool await_ready() const noexcept { return delay_ == 0; }

    void
    await_suspend(std::coroutine_handle<> h)
    {
        eq_.scheduleAfter(delay_, [h] { h.resume(); });
    }

    void await_resume() const noexcept {}

  private:
    EventQueue &eq_;
    Tick delay_;
};

} // namespace sonuma::sim

#endif // SONUMA_SIM_TASK_HH
