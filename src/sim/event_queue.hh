/**
 * @file
 * Deterministic discrete-event queue.
 *
 * Single-threaded binary-heap event queue. Events scheduled for the same
 * tick fire in scheduling order (a monotonic sequence number breaks ties),
 * which makes runs bit-reproducible for a given seed and workload.
 */

#ifndef SONUMA_SIM_EVENT_QUEUE_HH
#define SONUMA_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "sim/types.hh"

namespace sonuma::sim {

/** Opaque handle used to cancel a scheduled event. */
using EventId = std::uint64_t;

/**
 * The central event queue driving a simulation.
 *
 * All timing models schedule closures here; coroutine awaitables resume
 * through it as well, so there is a single global ordering of actions.
 */
class EventQueue
{
  public:
    EventQueue() = default;
    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Current simulated time. */
    Tick now() const { return now_; }

    /**
     * Schedule @p fn to run at absolute time @p when.
     *
     * @pre when >= now()
     * @return an id usable with cancel().
     */
    EventId schedule(Tick when, std::function<void()> fn);

    /** Schedule @p fn to run @p delay ticks from now. */
    EventId scheduleAfter(Tick delay, std::function<void()> fn);

    /**
     * Cancel a previously scheduled event. Cancelling an already-fired or
     * already-cancelled event is a harmless no-op.
     *
     * @retval true if the event was still pending and is now cancelled.
     */
    bool cancel(EventId id);

    /** Run until the queue drains. @return final simulated time. */
    Tick run();

    /**
     * Run until the queue drains or simulated time would exceed @p limit.
     * Events scheduled at exactly @p limit still fire.
     */
    Tick runUntil(Tick limit);

    /** Fire exactly one event if any is pending. @retval false if empty. */
    bool step();

    /** True if no events are pending. */
    bool empty() const { return pending_.empty(); }

    /** Number of pending (non-cancelled) events. */
    std::size_t pendingEvents() const { return pending_.size(); }

    /** Total events executed so far (for stats / debugging). */
    std::uint64_t executedEvents() const { return executed_; }

  private:
    struct Event
    {
        Tick when;
        std::uint64_t seq;
        std::function<void()> fn;

        bool
        operator>(const Event &o) const
        {
            return when != o.when ? when > o.when : seq > o.seq;
        }
    };

    std::priority_queue<Event, std::vector<Event>, std::greater<>> heap_;
    std::unordered_set<EventId> pending_;
    Tick now_ = 0;
    std::uint64_t nextSeq_ = 0;
    std::uint64_t executed_ = 0;
};

} // namespace sonuma::sim

#endif // SONUMA_SIM_EVENT_QUEUE_HH
