/**
 * @file
 * Deterministic discrete-event queue.
 *
 * Single-threaded binary-heap event queue. Events scheduled for the same
 * tick fire in scheduling order (a monotonic sequence number breaks ties),
 * which makes runs bit-reproducible for a given seed and workload.
 *
 * Zero-allocation design: callbacks are sim::Callback (48 B inline
 * storage, no heap for captures that fit); pending callbacks live in a
 * generation-tagged slot table recycled through a freelist, and the heap
 * holds plain {key, slot, gen} records ordered by a single 128-bit
 * (tick, seq) key. cancel() is an O(1) slot lookup that releases the
 * callback (and its captured resources) eagerly; the heap record is
 * tombstoned by its stale generation and dropped lazily when it
 * surfaces. After warm-up the steady-state schedule / fire / cancel
 * cycle performs no heap allocation at all.
 *
 * The hot methods (schedule, step, cancel) are defined inline in this
 * header: they sit in the innermost loop of every simulation, and the
 * call out of a separate translation unit costs more than the work.
 */

#ifndef SONUMA_SIM_EVENT_QUEUE_HH
#define SONUMA_SIM_EVENT_QUEUE_HH

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <vector>

#include "sim/callback.hh"
#include "sim/types.hh"

namespace sonuma::sim {

/** Opaque handle used to cancel a scheduled event. */
using EventId = std::uint64_t;

/**
 * The central event queue driving a simulation.
 *
 * All timing models schedule closures here; coroutine awaitables resume
 * through it as well, so there is a single global ordering of actions.
 */
class EventQueue
{
  public:
    EventQueue() = default;
    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Current simulated time. */
    Tick now() const { return now_; }

    /**
     * Schedule @p fn to run at absolute time @p when.
     *
     * @pre when >= now()
     * @return an id usable with cancel().
     */
    EventId
    schedule(Tick when, Callback fn)
    {
        assert(when >= now_ && "cannot schedule into the past");
        assert(fn && "cannot schedule an empty closure");
        const std::uint32_t index = allocSlot(std::move(fn));
        const std::uint32_t gen = slots_[index].gen;
        heap_.push_back(HeapEntry{makeKey(when, nextSeq_++), index, gen});
        std::push_heap(heap_.begin(), heap_.end(), HeapLater{});
        ++live_;
        return (static_cast<EventId>(gen) << 32) | index;
    }

    /** Schedule @p fn to run @p delay ticks from now. */
    EventId
    scheduleAfter(Tick delay, Callback fn)
    {
        return schedule(now_ + delay, std::move(fn));
    }

    /**
     * Cancel a previously scheduled event. Cancelling an already-fired or
     * already-cancelled event is a harmless no-op. The callback and its
     * captured state are released immediately; only a tombstoned heap
     * record lingers until it surfaces.
     *
     * @retval true if the event was still pending and is now cancelled.
     */
    bool
    cancel(EventId id)
    {
        const auto index = static_cast<std::uint32_t>(id & 0xffffffffu);
        const auto gen = static_cast<std::uint32_t>(id >> 32);
        if (index >= slots_.size())
            return false;
        Slot &s = slots_[index];
        if (!s.live || s.gen != gen)
            return false; // already fired or cancelled
        // Release the callback (and its captures) right now; the heap
        // record becomes a tombstone identified by its stale generation.
        s.fn.reset();
        s.live = false;
        ++s.gen;
        freeSlots_.push_back(index);
        --live_;
        return true;
    }

    /** Fire exactly one event if any is pending. @retval false if empty. */
    bool
    step()
    {
        if (!liveTop())
            return false;
        const HeapEntry top = heap_.front();
        std::pop_heap(heap_.begin(), heap_.end(), HeapLater{});
        heap_.pop_back();
        Slot &s = slots_[top.slot];
        assert(tickOf(top.key) >= now_);
        now_ = tickOf(top.key);
        ++executed_;
        // Move the callback out before invoking: the callback may
        // schedule new events that reuse this very slot.
        Callback fn = std::move(s.fn);
        s.live = false;
        ++s.gen;
        freeSlots_.push_back(top.slot);
        --live_;
        fn();
        return true;
    }

    /** Run until the queue drains. @return final simulated time. */
    Tick
    run()
    {
        while (step()) {
        }
        return now_;
    }

    /**
     * Run until the queue drains or simulated time would exceed @p limit.
     * Events scheduled at exactly @p limit still fire.
     */
    Tick runUntil(Tick limit);

    /** True if no events are pending. */
    bool empty() const { return live_ == 0; }

    /** Number of pending (non-cancelled) events. */
    std::size_t pendingEvents() const { return live_; }

    /** Total events executed so far (for stats / debugging). */
    std::uint64_t executedEvents() const { return executed_; }

    /**
     * Pre-size internal storage for @p events concurrently pending events
     * so the steady state never reallocates (benchmark warm-up hook).
     */
    void reserve(std::size_t events);

    /** Heap records currently tombstoned by cancel() (observability). */
    std::size_t tombstones() const { return heap_.size() - live_; }

  private:
    /** (tick, seq) packed so heap ordering is one 128-bit compare. */
    using Key = unsigned __int128;

    static Key
    makeKey(Tick when, std::uint64_t seq)
    {
        return (static_cast<Key>(when) << 64) | seq;
    }

    static Tick tickOf(Key k) { return static_cast<Tick>(k >> 64); }

    struct HeapEntry
    {
        Key key;
        std::uint32_t slot;
        std::uint32_t gen;
    };

    struct HeapLater
    {
        bool
        operator()(const HeapEntry &a, const HeapEntry &b) const
        {
            return a.key > b.key;
        }
    };

    struct Slot
    {
        Callback fn;
        std::uint32_t gen = 0;
        bool live = false;
    };

    std::vector<HeapEntry> heap_; //!< min-heap via std::push/pop_heap
    std::vector<Slot> slots_;
    std::vector<std::uint32_t> freeSlots_;
    std::size_t live_ = 0;
    Tick now_ = 0;
    std::uint64_t nextSeq_ = 0;
    std::uint64_t executed_ = 0;

    /**
     * Drop cancel() tombstones off the heap top; returns the live head
     * entry or nullptr if the queue is empty. The single home of the
     * stale-generation test, shared by step() and runUntil().
     */
    const HeapEntry *
    liveTop()
    {
        while (!heap_.empty()) {
            const HeapEntry &top = heap_.front();
            const Slot &s = slots_[top.slot];
            if (s.live && s.gen == top.gen)
                return &top;
            std::pop_heap(heap_.begin(), heap_.end(), HeapLater{});
            heap_.pop_back();
        }
        return nullptr;
    }

    std::uint32_t
    allocSlot(Callback &&fn)
    {
        std::uint32_t index;
        if (!freeSlots_.empty()) {
            index = freeSlots_.back();
            freeSlots_.pop_back();
        } else {
            index = static_cast<std::uint32_t>(slots_.size());
            slots_.emplace_back();
        }
        Slot &s = slots_[index];
        s.fn = std::move(fn);
        s.live = true;
        return index;
    }
};

} // namespace sonuma::sim

#endif // SONUMA_SIM_EVENT_QUEUE_HH
