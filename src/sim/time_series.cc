/**
 * @file
 * Time-series sampler implementation and OBS artifact rendering.
 */

#include "sim/time_series.hh"

#include <sstream>

namespace sonuma::sim {

TimeSeries::TimeSeries(StatRegistry &reg, std::string name, std::string unit,
                       std::string desc, Kind kind, SampleFn fn)
    : name_(std::move(name)), unit_(std::move(unit)),
      desc_(std::move(desc)), kind_(kind), fn_(std::move(fn))
{
    reg.add(this);
}

void
TimeSeries::reserve(std::size_t slots)
{
    ring_.assign(slots, Sample{});
    head_ = 0;
    count_ = 0;
    dropped_ = 0;
}

void
TimeSeries::sample(Tick now)
{
    if (ring_.empty())
        return; // sampling disabled: zero overhead beyond this branch

    const double raw = fn_();
    double v = raw;
    if (kind_ == Kind::kRate) {
        const Tick dt = now - lastTick_;
        v = dt ? (raw - lastRaw_) / static_cast<double>(dt) : 0.0;
        lastRaw_ = raw;
        lastTick_ = now;
    }

    ring_[head_] = Sample{now, v};
    head_ = (head_ + 1) % ring_.size();
    if (count_ < ring_.size())
        ++count_;
    else
        ++dropped_;
}

namespace {

/** Deterministic, locale-independent double rendering. */
void
renderValue(std::ostringstream &os, double v)
{
    if (v == static_cast<double>(static_cast<std::int64_t>(v))) {
        os << static_cast<std::int64_t>(v);
    } else {
        os << v;
    }
}

} // namespace

std::string
renderObsJson(const StatRegistry &reg, const std::string &label,
              std::uint64_t periodNs)
{
    std::ostringstream os;
    os << "{\n"
       << "  \"bench\": \"obs\",\n"
       << "  \"schema\": 1,\n"
       << "  \"label\": \"" << jsonEscape(label) << "\",\n"
       << "  \"period_ns\": " << periodNs << ",\n";

    // Elide all-zero series: an idle link's flat line carries no signal
    // and a 512-node torus has thousands of them.
    std::size_t elided = 0;
    std::vector<const TimeSeries *> live;
    for (const TimeSeries *ts : reg.allTimeSeries()) {
        bool allZero = true;
        for (std::size_t i = 0; i < ts->size() && allZero; ++i)
            allZero = ts->at(i).value == 0.0;
        if (allZero)
            ++elided;
        else
            live.push_back(ts);
    }
    os << "  \"series_elided\": " << elided << ",\n"
       << "  \"series\": [";

    bool firstSeries = true;
    for (const TimeSeries *ts : live) {
        if (!firstSeries)
            os << ",";
        firstSeries = false;
        os << "\n    {\"name\": \"" << jsonEscape(ts->name())
           << "\", \"unit\": \"" << jsonEscape(ts->unit())
           << "\", \"dropped\": " << ts->dropped()
           << ", \"samples\": [";
        for (std::size_t i = 0; i < ts->size(); ++i) {
            if (i)
                os << ", ";
            const TimeSeries::Sample &s = ts->at(i);
            os << "[" << s.tick / kTicksPerNs << ", ";
            renderValue(os, s.value);
            os << "]";
        }
        os << "]}";
    }
    if (!firstSeries)
        os << "\n  ";
    os << "],\n"
       << "  \"series_count\": " << live.size() << "\n"
       << "}\n";
    return os.str();
}

} // namespace sonuma::sim
