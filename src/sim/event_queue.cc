/**
 * @file
 * Event queue implementation.
 */

#include "sim/event_queue.hh"

#include <cassert>
#include <utility>

namespace sonuma::sim {

EventId
EventQueue::schedule(Tick when, std::function<void()> fn)
{
    assert(when >= now_ && "cannot schedule into the past");
    assert(fn && "cannot schedule an empty closure");
    EventId id = nextSeq_++;
    heap_.push(Event{when, id, std::move(fn)});
    pending_.insert(id);
    return id;
}

EventId
EventQueue::scheduleAfter(Tick delay, std::function<void()> fn)
{
    return schedule(now_ + delay, std::move(fn));
}

bool
EventQueue::cancel(EventId id)
{
    // Ids of fired or already-cancelled events are absent from pending_, so
    // cancelling them is a no-op. The heap entry is tombstoned: it is
    // skipped when it surfaces.
    return pending_.erase(id) > 0;
}

bool
EventQueue::step()
{
    while (!heap_.empty()) {
        Event ev = std::move(const_cast<Event &>(heap_.top()));
        heap_.pop();
        if (pending_.erase(ev.seq) == 0)
            continue; // tombstoned by cancel()
        assert(ev.when >= now_);
        now_ = ev.when;
        ++executed_;
        ev.fn();
        return true;
    }
    return false;
}

Tick
EventQueue::run()
{
    while (step()) {
    }
    return now_;
}

Tick
EventQueue::runUntil(Tick limit)
{
    while (!heap_.empty()) {
        const Event &top = heap_.top();
        if (pending_.find(top.seq) == pending_.end()) {
            heap_.pop(); // drop tombstone
            continue;
        }
        if (top.when > limit)
            break;
        step();
    }
    if (now_ < limit)
        now_ = limit;
    return now_;
}

} // namespace sonuma::sim
