/**
 * @file
 * Event queue implementation (cold paths; the hot path is inline in the
 * header).
 */

#include "sim/event_queue.hh"

namespace sonuma::sim {

Tick
EventQueue::runUntil(Tick limit)
{
    while (const HeapEntry *top = liveTop()) {
        if (tickOf(top->key) > limit)
            break;
        step();
    }
    if (now_ < limit)
        now_ = limit;
    return now_;
}

void
EventQueue::reserve(std::size_t events)
{
    heap_.reserve(events);
    freeSlots_.reserve(events);
    if (slots_.size() < events) {
        const auto first = static_cast<std::uint32_t>(slots_.size());
        slots_.resize(events);
        // Hand the new slots out freelist-LIFO starting from the lowest
        // index so warm runs and cold runs allocate slots identically.
        for (std::uint32_t i = static_cast<std::uint32_t>(slots_.size());
             i > first; --i)
            freeSlots_.push_back(i - 1);
    }
}

} // namespace sonuma::sim
