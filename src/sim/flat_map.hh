/**
 * @file
 * Open-addressed hash map over flat vector storage.
 *
 * Replaces std::unordered_map on simulation hot paths: a node-based map
 * allocates (and frees) one heap node per insert (erase), so structures
 * that track a growing-then-stable working set — the L2 directory being
 * the canonical case — would keep touching the allocator in steady
 * state. This map stores slots inline, probes linearly, and allocates
 * only when it grows past its load factor: an amortized warm-up cost,
 * zero in steady state, exactly like sim::RingBuffer and sim::SlotPool.
 *
 * Erase uses tombstones (reclaimed by the next growth rehash), which
 * keeps deletion O(1) without backward-shifting. Iteration order is
 * deliberately not exposed: the simulator must never depend on hash
 * order for determinism.
 */

#ifndef SONUMA_SIM_FLAT_MAP_HH
#define SONUMA_SIM_FLAT_MAP_HH

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace sonuma::sim {

template <typename K, typename V>
class FlatMap
{
  public:
    explicit FlatMap(std::size_t initialCapacity = 16)
    {
        std::size_t cap = 16;
        while (cap < initialCapacity)
            cap *= 2;
        slots_.resize(cap);
    }

    std::size_t size() const { return full_; }
    bool empty() const { return full_ == 0; }

    /** Pointer to the mapped value, or nullptr. */
    V *
    find(const K &key)
    {
        const std::size_t mask = slots_.size() - 1;
        for (std::size_t i = hash(key) & mask;; i = (i + 1) & mask) {
            Slot &s = slots_[i];
            if (s.state == State::kEmpty)
                return nullptr;
            if (s.state == State::kFull && s.key == key)
                return &s.val;
        }
    }

    const V *
    find(const K &key) const
    {
        return const_cast<FlatMap *>(this)->find(key);
    }

    /** Mapped value of a key that must be present. */
    V &
    get(const K &key)
    {
        V *v = find(key);
        assert(v && "FlatMap::get of an absent key");
        return *v;
    }

    /**
     * Insert @p key -> @p val; replaces the value if the key exists.
     * @return reference to the mapped value.
     */
    V &
    insert(const K &key, V val)
    {
        maybeGrow();
        const std::size_t mask = slots_.size() - 1;
        std::size_t firstTomb = slots_.size();
        for (std::size_t i = hash(key) & mask;; i = (i + 1) & mask) {
            Slot &s = slots_[i];
            if (s.state == State::kFull && s.key == key) {
                s.val = std::move(val);
                return s.val;
            }
            if (s.state == State::kTomb && firstTomb == slots_.size()) {
                firstTomb = i;
                continue;
            }
            if (s.state == State::kEmpty) {
                Slot &dst =
                    firstTomb != slots_.size() ? slots_[firstTomb] : s;
                if (dst.state != State::kTomb)
                    ++used_;
                dst.state = State::kFull;
                dst.key = key;
                dst.val = std::move(val);
                ++full_;
                return dst.val;
            }
        }
    }

    /** @retval true if the key was present and removed. */
    bool
    erase(const K &key)
    {
        const std::size_t mask = slots_.size() - 1;
        for (std::size_t i = hash(key) & mask;; i = (i + 1) & mask) {
            Slot &s = slots_[i];
            if (s.state == State::kEmpty)
                return false;
            if (s.state == State::kFull && s.key == key) {
                s.state = State::kTomb;
                s.val = V{}; // release held resources eagerly
                --full_;
                return true;
            }
        }
    }

  private:
    enum class State : std::uint8_t { kEmpty, kFull, kTomb };

    struct Slot
    {
        State state = State::kEmpty;
        K key{};
        V val{};
    };

    std::vector<Slot> slots_;
    std::size_t full_ = 0; //!< live entries
    std::size_t used_ = 0; //!< live + tombstoned slots

    static std::size_t
    hash(const K &key)
    {
        // splitmix64 finalizer: line addresses are highly regular, so
        // spread them before masking.
        auto x = static_cast<std::uint64_t>(key);
        x += 0x9e3779b97f4a7c15ULL;
        x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
        x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
        return static_cast<std::size_t>(x ^ (x >> 31));
    }

    void
    maybeGrow()
    {
        if ((used_ + 1) * 10 < slots_.size() * 7)
            return;
        std::vector<Slot> old(slots_.size() * 2);
        old.swap(slots_);
        full_ = 0;
        used_ = 0;
        for (Slot &s : old) {
            if (s.state == State::kFull)
                insert(s.key, std::move(s.val));
        }
    }
};

} // namespace sonuma::sim

#endif // SONUMA_SIM_FLAT_MAP_HH
