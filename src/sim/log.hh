/**
 * @file
 * Minimal leveled logging with simulated timestamps.
 *
 * Levels follow gem5's spirit: `panic` for simulator bugs (aborts),
 * `fatal` for user/configuration errors (throws), `warn`/`info` for
 * status, `trace` for per-event debugging (off by default).
 */

#ifndef SONUMA_SIM_LOG_HH
#define SONUMA_SIM_LOG_HH

#include <sstream>
#include <stdexcept>
#include <string>

#include "sim/types.hh"

namespace sonuma::sim {

enum class LogLevel : int
{
    kNone = 0,
    kWarn = 1,
    kInfo = 2,
    kDebug = 3,
    kTrace = 4,
};

/** Global log verbosity (process-wide; default kWarn). */
LogLevel logLevel();
void setLogLevel(LogLevel lvl);

/** Emit one log line (already formatted) at @p lvl. */
void logLine(LogLevel lvl, Tick now, const std::string &component,
             const std::string &msg);

/** Error thrown by fatal(): the condition is the user's fault. */
class FatalError : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/** Raise a user-facing configuration/usage error. */
[[noreturn]] void fatal(const std::string &msg);

/** Abort on a should-never-happen internal condition. */
[[noreturn]] void panic(const std::string &msg);

} // namespace sonuma::sim

/**
 * Logging macros: cheap when disabled (level test before formatting).
 * `cmp` is a short component tag, `expr` is streamed.
 */
#define SONUMA_LOG(lvl, now, cmp, expr)                                     \
    do {                                                                    \
        if (static_cast<int>(::sonuma::sim::logLevel()) >=                  \
            static_cast<int>(lvl)) {                                        \
            std::ostringstream os_;                                         \
            os_ << expr;                                                    \
            ::sonuma::sim::logLine(lvl, now, cmp, os_.str());               \
        }                                                                   \
    } while (0)

#define SONUMA_TRACE(now, cmp, expr)                                        \
    SONUMA_LOG(::sonuma::sim::LogLevel::kTrace, now, cmp, expr)
#define SONUMA_DEBUG(now, cmp, expr)                                        \
    SONUMA_LOG(::sonuma::sim::LogLevel::kDebug, now, cmp, expr)
#define SONUMA_INFO(now, cmp, expr)                                         \
    SONUMA_LOG(::sonuma::sim::LogLevel::kInfo, now, cmp, expr)
#define SONUMA_WARN(now, cmp, expr)                                         \
    SONUMA_LOG(::sonuma::sim::LogLevel::kWarn, now, cmp, expr)

#endif // SONUMA_SIM_LOG_HH
