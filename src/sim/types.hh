/**
 * @file
 * Fundamental simulation types: ticks, time conversions, cycles.
 *
 * The simulator counts time in integer picoseconds. One 2 GHz core cycle is
 * 500 ticks, so all of the paper's latency parameters (Table 1) are exactly
 * representable.
 */

#ifndef SONUMA_SIM_TYPES_HH
#define SONUMA_SIM_TYPES_HH

#include <cstdint>

namespace sonuma::sim {

/** Simulated time in picoseconds. */
using Tick = std::uint64_t;

/** One nanosecond worth of ticks. */
inline constexpr Tick kTicksPerNs = 1000;

/** One microsecond worth of ticks. */
inline constexpr Tick kTicksPerUs = 1000 * kTicksPerNs;

/** One millisecond worth of ticks. */
inline constexpr Tick kTicksPerMs = 1000 * kTicksPerUs;

/** Convert nanoseconds to ticks. */
constexpr Tick
nsToTicks(double ns)
{
    return static_cast<Tick>(ns * static_cast<double>(kTicksPerNs));
}

/** Convert microseconds to ticks. */
constexpr Tick
usToTicks(double us)
{
    return static_cast<Tick>(us * static_cast<double>(kTicksPerUs));
}

/** Convert ticks to (fractional) nanoseconds. */
constexpr double
ticksToNs(Tick t)
{
    return static_cast<double>(t) / static_cast<double>(kTicksPerNs);
}

/** Convert ticks to (fractional) microseconds. */
constexpr double
ticksToUs(Tick t)
{
    return static_cast<double>(t) / static_cast<double>(kTicksPerUs);
}

/**
 * A fixed clock domain that converts between cycles and ticks.
 *
 * All hardware blocks in a node run off a node clock (2 GHz by default per
 * the paper's Table 1).
 */
class Clock
{
  public:
    explicit constexpr Clock(double freq_ghz = 2.0)
        : period_(static_cast<Tick>(1000.0 / freq_ghz))
    {}

    /** Tick duration of @p cycles clock cycles. */
    constexpr Tick cycles(std::uint64_t n) const { return n * period_; }

    /** Tick duration of one cycle. */
    constexpr Tick period() const { return period_; }

  private:
    Tick period_;
};

/** Node identifier within the fabric. */
using NodeId = std::uint16_t;

/** Global address-space (security context) identifier. */
using CtxId = std::uint16_t;

/** Cache-line size used throughout (fabric payload granularity). */
inline constexpr std::uint32_t kCacheLineBytes = 64;

} // namespace sonuma::sim

#endif // SONUMA_SIM_TYPES_HH
