/**
 * @file
 * Top-level simulation container: event queue + root-task lifetimes +
 * deterministic RNG + stats registry.
 */

#ifndef SONUMA_SIM_SIMULATION_HH
#define SONUMA_SIM_SIMULATION_HH

#include <memory>
#include <stdexcept>
#include <vector>

#include "sim/event_queue.hh"
#include "sim/rng.hh"
#include "sim/stats.hh"
#include "sim/task.hh"

namespace sonuma::sim {

/**
 * Owns everything that makes one simulation run: the event queue, the set
 * of spawned root tasks, a seeded RNG, and the statistics registry.
 */
class Simulation
{
  public:
    explicit Simulation(std::uint64_t seed = 1)
        : rng_(seed)
    {}

    EventQueue &eq() { return eq_; }
    Tick now() const { return eq_.now(); }
    Rng &rng() { return rng_; }
    StatRegistry &stats() { return stats_; }

    /**
     * Adopt a root task and schedule its first resumption at the current
     * tick. The frame is kept alive until the Simulation is destroyed.
     */
    void
    spawn(Task t)
    {
        auto h = t.release();
        if (!h)
            throw std::invalid_argument("spawn of empty task");
        roots_.push_back(h);
        eq_.scheduleAfter(0, [h] { h.resume(); });
    }

    /** Run to quiescence, then surface any root-task exception. */
    Tick
    run()
    {
        Tick t = eq_.run();
        rethrowRootFailures();
        return t;
    }

    /** Run with a simulated-time limit. */
    Tick
    runUntil(Tick limit)
    {
        Tick t = eq_.runUntil(limit);
        rethrowRootFailures();
        return t;
    }

    /** True when every spawned root task ran to completion. */
    bool
    allRootsDone() const
    {
        for (auto h : roots_)
            if (!h.done())
                return false;
        return true;
    }

    ~Simulation()
    {
        for (auto h : roots_)
            h.destroy();
    }

    Simulation(const Simulation &) = delete;
    Simulation &operator=(const Simulation &) = delete;

  private:
    EventQueue eq_;
    Rng rng_;
    StatRegistry stats_;
    std::vector<Task::Handle> roots_;

    void
    rethrowRootFailures()
    {
        for (auto h : roots_) {
            if (h.done() && h.promise().exception)
                std::rethrow_exception(h.promise().exception);
        }
    }
};

} // namespace sonuma::sim

#endif // SONUMA_SIM_SIMULATION_HH
