/**
 * @file
 * Indexed slot pool for parked continuations.
 *
 * The zero-allocation pattern used throughout the timing models: state
 * that must survive a scheduled delay is stored in an indexed slot and
 * the event captures only {owner, slot} (12 bytes — always inline in
 * sim::Callback), no matter how large the parked state is. The slot
 * vector grows amortized during warm-up and is recycled thereafter.
 *
 * Re-entrancy invariant, centralized here: take() moves the value out
 * and frees the slot *before* returning, so the caller can invoke any
 * contained callback afterwards even if it re-enters put().
 */

#ifndef SONUMA_SIM_SLOT_POOL_HH
#define SONUMA_SIM_SLOT_POOL_HH

#include <cstdint>
#include <utility>
#include <vector>

namespace sonuma::sim {

template <typename T>
class SlotPool
{
  public:
    /** Park @p v; returns the slot index to capture in the event. */
    std::uint32_t
    put(T v)
    {
        std::uint32_t slot;
        if (!free_.empty()) {
            slot = free_.back();
            free_.pop_back();
        } else {
            slot = static_cast<std::uint32_t>(slots_.size());
            slots_.emplace_back();
        }
        slots_[slot] = std::move(v);
        return slot;
    }

    /** Reclaim the slot and return the parked value. */
    T
    take(std::uint32_t slot)
    {
        T v = std::move(slots_[slot]);
        free_.push_back(slot);
        return v;
    }

    /** Read a parked value without reclaiming its slot. */
    T &
    peek(std::uint32_t slot)
    {
        return slots_[slot];
    }

    std::size_t capacity() const { return slots_.size(); }

  private:
    std::vector<T> slots_;
    std::vector<std::uint32_t> free_;
};

} // namespace sonuma::sim

#endif // SONUMA_SIM_SLOT_POOL_HH
