/**
 * @file
 * Service-resource translation unit.
 *
 * ServiceResource and BandwidthPipe are header-only; this file exists so
 * the sim library has a stable archive member for them (and anchors the
 * vtable-free types' debug info in one place).
 */

#include "sim/service.hh"
