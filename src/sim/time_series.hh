/**
 * @file
 * Fixed-slot, zero-allocation time-series sampler (NUMAscope-style).
 *
 * A TimeSeries wraps a probe callback (a gauge read or a monotonic raw
 * counter) and a preallocated ring of (tick, value) slots. A periodic
 * sampler service (Cluster) calls StatRegistry::sampleAll() on simulated
 * time; each series records one slot per period. Slots are allocated
 * once, at registration, so the steady-state sampling path performs no
 * heap allocation — the same discipline as the event and message hot
 * paths (see tests/sim_alloc_test.cc and the observability test).
 *
 * Sampling is off by default (StatRegistry::samplingEnabled() == false):
 * rings stay empty, sample() is a no-op, and every checked-in artifact
 * stays byte-identical. docs/observability.md catalogs the series.
 */

#ifndef SONUMA_SIM_TIME_SERIES_HH
#define SONUMA_SIM_TIME_SERIES_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "sim/stats.hh"
#include "sim/types.hh"

namespace sonuma::sim {

class TimeSeries
{
  public:
    /** How the probe value turns into a sample. */
    enum class Kind : std::uint8_t
    {
        kGauge, //!< record the probe value as-is (occupancy, depth)
        kRate,  //!< record delta(probe) / delta(tick) (utilization)
    };

    using SampleFn = std::function<double()>;

    struct Sample
    {
        Tick tick = 0;
        double value = 0.0;
    };

    /** Self-registers; the ring is sized by the registry (zero slots
     *  when sampling is disabled, so sample() no-ops). */
    TimeSeries(StatRegistry &reg, std::string name, std::string unit,
               std::string desc, Kind kind, SampleFn fn);

    /** Record one sample at @p now. No-op when the ring has no slots.
     *  Never allocates: a full ring overwrites the oldest slot and
     *  counts the loss in dropped(). */
    void sample(Tick now);

    /** Size the ring to @p slots fixed slots (registration time only). */
    void reserve(std::size_t slots);

    const std::string &name() const { return name_; }
    const std::string &unit() const { return unit_; }
    const std::string &desc() const { return desc_; }
    Kind kind() const { return kind_; }

    /** Number of samples currently held (<= slot capacity). */
    std::size_t size() const { return count_; }

    /** Samples overwritten because the ring was full. */
    std::uint64_t dropped() const { return dropped_; }

    /** The i-th held sample, oldest first. @pre i < size() */
    const Sample &at(std::size_t i) const
    {
        const std::size_t cap = ring_.size();
        return ring_[(head_ + cap - count_ + i) % cap];
    }

  private:
    std::string name_;
    std::string unit_;
    std::string desc_;
    Kind kind_;
    SampleFn fn_;

    std::vector<Sample> ring_; //!< fixed slots; sized once by reserve()
    std::size_t head_ = 0;     //!< next slot to write
    std::size_t count_ = 0;    //!< held samples
    std::uint64_t dropped_ = 0;

    // kRate state: previous raw probe value and its tick.
    double lastRaw_ = 0.0;
    Tick lastTick_ = 0;
};

/**
 * Render every registered series as an OBS artifact (schema 1):
 * {"bench": "obs", "label": ..., "period_ns": N, "series": [...]}.
 * Series whose samples are all zero are elided (counted in
 * "series_elided") to keep artifacts readable at fleet scale.
 */
std::string renderObsJson(const StatRegistry &reg, const std::string &label,
                          std::uint64_t periodNs);

} // namespace sonuma::sim

#endif // SONUMA_SIM_TIME_SERIES_HH
