/**
 * @file
 * Cluster-wide context namespace and access control (paper §5.1).
 *
 * soNUMA's security model grants access per ctx_id: joining a global
 * address space means opening /dev/rmc_contexts/<ctx_id>, which succeeds
 * only with appropriate permissions. All OS instances of one soNUMA
 * fabric are a single administrative domain, so the registry is a
 * cluster-level singleton owned by the Cluster.
 */

#ifndef SONUMA_OS_CONTEXT_REGISTRY_HH
#define SONUMA_OS_CONTEXT_REGISTRY_HH

#include <cstdint>
#include <map>
#include <set>

#include "os/node_os.hh"
#include "sim/types.hh"

namespace sonuma::os {

/**
 * Registry of global contexts: creation, permissions, membership.
 */
class ContextRegistry
{
  public:
    explicit ContextRegistry(std::uint32_t maxContexts = 16);

    /**
     * Create context @p ctx owned by @p owner. The owner is implicitly
     * allowed to open it.
     */
    void createContext(sim::CtxId ctx, UserId owner);

    /** Grant @p uid permission to open @p ctx. */
    void grant(sim::CtxId ctx, UserId uid);

    /** Revoke @p uid's permission. */
    void revoke(sim::CtxId ctx, UserId uid);

    bool exists(sim::CtxId ctx) const;

    /** @retval true when @p uid may open @p ctx. */
    bool allowed(sim::CtxId ctx, UserId uid) const;

    /** Throwing check used by the driver's open path. */
    void checkOpen(sim::CtxId ctx, UserId uid) const;

  private:
    struct Entry
    {
        UserId owner;
        std::set<UserId> acl;
    };

    std::uint32_t maxContexts_;
    std::map<sim::CtxId, Entry> contexts_;
};

} // namespace sonuma::os

#endif // SONUMA_OS_CONTEXT_REGISTRY_HH
