/**
 * @file
 * Context registry implementation.
 */

#include "os/context_registry.hh"

#include "sim/log.hh"

namespace sonuma::os {

ContextRegistry::ContextRegistry(std::uint32_t maxContexts)
    : maxContexts_(maxContexts)
{
}

void
ContextRegistry::createContext(sim::CtxId ctx, UserId owner)
{
    if (ctx >= maxContexts_)
        sim::fatal("ctx_id " + std::to_string(ctx) + " out of range");
    if (contexts_.count(ctx))
        sim::fatal("ctx_id " + std::to_string(ctx) + " already exists");
    contexts_[ctx] = Entry{owner, {owner}};
}

void
ContextRegistry::grant(sim::CtxId ctx, UserId uid)
{
    auto it = contexts_.find(ctx);
    if (it == contexts_.end())
        sim::fatal("grant on unknown ctx_id " + std::to_string(ctx));
    it->second.acl.insert(uid);
}

void
ContextRegistry::revoke(sim::CtxId ctx, UserId uid)
{
    auto it = contexts_.find(ctx);
    if (it == contexts_.end())
        sim::fatal("revoke on unknown ctx_id " + std::to_string(ctx));
    if (uid == it->second.owner)
        sim::fatal("cannot revoke the owner's access");
    it->second.acl.erase(uid);
}

bool
ContextRegistry::exists(sim::CtxId ctx) const
{
    return contexts_.count(ctx) > 0;
}

bool
ContextRegistry::allowed(sim::CtxId ctx, UserId uid) const
{
    auto it = contexts_.find(ctx);
    return it != contexts_.end() && it->second.acl.count(uid) > 0;
}

void
ContextRegistry::checkOpen(sim::CtxId ctx, UserId uid) const
{
    if (!exists(ctx))
        throw PermissionError("open of unknown ctx_id " +
                              std::to_string(ctx));
    if (!allowed(ctx, uid))
        throw PermissionError("uid " + std::to_string(uid) +
                              " may not open ctx_id " + std::to_string(ctx));
}

} // namespace sonuma::os
