/**
 * @file
 * RMC driver implementation.
 */

#include "os/rmc_driver.hh"

#include <stdexcept>

#include "sim/log.hh"

namespace sonuma::os {

RmcDriver::RmcDriver(NodeOs &os, rmc::Rmc &rmc, ContextRegistry &registry)
    : os_(os), rmc_(rmc), registry_(registry)
{
    rmc_.setFailureHook([this] {
        for (auto &fn : failureCbs_)
            fn();
    });
}

bool
RmcDriver::hasOpened(const Process &proc, sim::CtxId ctx) const
{
    for (const auto &rec : opens_) {
        if (rec.ctx == ctx && rec.pid == proc.pid())
            return true;
    }
    return false;
}

void
RmcDriver::requireOpened(const Process &proc, sim::CtxId ctx) const
{
    if (!hasOpened(proc, ctx))
        throw PermissionError("pid " + std::to_string(proc.pid()) +
                              " has not opened ctx_id " +
                              std::to_string(ctx));
}

void
RmcDriver::openContext(Process &proc, sim::CtxId ctx)
{
    registry_.checkOpen(ctx, proc.uid());
    if (!hasOpened(proc, ctx))
        opens_.push_back(OpenRecord{ctx, proc.pid()});
}

void
RmcDriver::registerSegment(Process &proc, sim::CtxId ctx, vm::VAddr base,
                           std::uint64_t bytes)
{
    requireOpened(proc, ctx);
    if (bytes == 0)
        sim::fatal("empty context segment");
    // Pinning check: the whole range must be mapped.
    for (vm::VAddr va = vm::pageBase(base); va < base + bytes;
         va += vm::kPageBytes) {
        if (!proc.addressSpace().mapped(va))
            sim::fatal("context segment contains unmapped pages");
    }

    rmc::CtEntry entry;
    if (const rmc::CtEntry *old = rmc_.contextTable().entry(ctx))
        entry = *old; // preserve registered QPs on re-registration
    entry.valid = true;
    entry.segBase = base;
    entry.segBytes = bytes;
    entry.ptRoot = proc.addressSpace().pageTable().root();
    rmc_.contextTable().install(ctx, entry);
}

QpHandle
RmcDriver::createQueuePair(Process &proc, sim::CtxId ctx)
{
    requireOpened(proc, ctx);

    rmc::CtEntry *entry = rmc_.contextTable().entryMutable(ctx);
    if (!entry) {
        // A QP without a registered segment is legal (a pure client
        // node): create a CT entry with an empty segment.
        rmc::CtEntry fresh;
        fresh.valid = true;
        fresh.segBase = 0;
        fresh.segBytes = 0;
        fresh.ptRoot = proc.addressSpace().pageTable().root();
        rmc_.contextTable().install(ctx, fresh);
        entry = rmc_.contextTable().entryMutable(ctx);
    }
    if (entry->qps.size() >= rmc_.params().maxQpsPerContext)
        throw std::invalid_argument(
            "createQueuePair: ctx " + std::to_string(ctx) +
            " already holds " + std::to_string(entry->qps.size()) +
            " of maxQpsPerContext=" +
            std::to_string(rmc_.params().maxQpsPerContext) +
            " queue pairs; note each RmcSession registers qpCount QPs "
            "and Workload adds a one-QP barrier session per node — "
            "raise RmcParams::maxQpsPerContext or lower the fan-out");

    const std::uint32_t entries = rmc_.params().qpEntries;
    rmc::QpDescriptor qp;
    qp.valid = true;
    qp.entries = entries;
    qp.wqBase = proc.alloc(entries * sizeof(rmc::WqEntry));
    qp.cqBase = proc.alloc(entries * sizeof(rmc::CqEntry));
    entry->qps.push_back(qp);

    QpHandle handle;
    handle.ctx = ctx;
    handle.qpIndex = static_cast<std::uint32_t>(entry->qps.size()) - 1;
    handle.wqBase = qp.wqBase;
    handle.cqBase = qp.cqBase;
    handle.entries = entries;
    handle.process = &proc;

    // Installing again refreshes the in-memory CT image and invalidates
    // the CT$ (the driver wrote behind it).
    rmc_.contextTable().install(ctx, *entry);
    // Register the per-QP observability series now, at setup time, so
    // sampling never allocates inside a measured window.
    rmc_.noteQpCreated(ctx, handle.qpIndex);
    return handle;
}

void
RmcDriver::destroyQueuePair(const QpHandle &qp)
{
    rmc::CtEntry *entry = rmc_.contextTable().entryMutable(qp.ctx);
    if (!entry || qp.qpIndex >= entry->qps.size() ||
        !entry->qps[qp.qpIndex].valid)
        return; // unknown or already destroyed: idempotent
    // Invalidate first (new posts/doorbells bounce off), then fence:
    // every op already in flight through this QP gets exactly one
    // CqStatus::kFlushed completion, tids/epochs are reclaimed. Both
    // steps are synchronous, so no pipeline coroutine can interleave.
    entry->qps[qp.qpIndex].valid = false;
    rmc_.contextTable().install(qp.ctx, *entry);
    rmc_.fenceQueuePair(qp.ctx, qp.qpIndex);
}

void
RmcDriver::unregisterContext(Process &proc, sim::CtxId ctx)
{
    requireOpened(proc, ctx);
    rmc::CtEntry *entry = rmc_.contextTable().entryMutable(ctx);
    if (!entry)
        return;
    // Destroy-and-fence every live QP, then drop the CT entry: the node
    // stops serving remote requests for this context (peers see
    // bad-context error replies) and local software keeps only its
    // ring memory, which stays with the process.
    for (std::uint32_t q = 0;
         q < static_cast<std::uint32_t>(entry->qps.size()); ++q) {
        if (!entry->qps[q].valid)
            continue;
        entry->qps[q].valid = false;
        rmc_.contextTable().install(ctx, *entry);
        rmc_.fenceQueuePair(ctx, q);
        entry = rmc_.contextTable().entryMutable(ctx);
    }
    rmc_.contextTable().remove(ctx);
}

void
RmcDriver::onFailure(sim::Callback fn)
{
    failureCbs_.push_back(std::move(fn));
}

} // namespace sonuma::os
