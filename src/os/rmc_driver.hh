/**
 * @file
 * The RMC device driver (paper §5.1).
 *
 * Responsibilities mirror the paper: manage the context namespace
 * (via the cluster ContextRegistry), register context segments (pages
 * pinned — our address spaces map eagerly, which is equivalent), create
 * and register queue pairs in the Context Table, and surface fabric
 * failures to interested software.
 *
 * Because the RMC shares the OS page tables through cache coherence,
 * registration does NOT copy any translation state into the device —
 * the CT entry simply records the process's page-table root.
 */

#ifndef SONUMA_OS_RMC_DRIVER_HH
#define SONUMA_OS_RMC_DRIVER_HH

#include <cstdint>
#include <vector>

#include "os/context_registry.hh"
#include "os/node_os.hh"
#include "rmc/rmc.hh"
#include "sim/callback.hh"

namespace sonuma::os {

/** Handle returned by createQueuePair. */
struct QpHandle
{
    sim::CtxId ctx = 0;
    std::uint32_t qpIndex = 0;
    vm::VAddr wqBase = 0;
    vm::VAddr cqBase = 0;
    std::uint32_t entries = 0;
    Process *process = nullptr;

    vm::VAddr
    wqEntryVa(std::uint32_t idx) const
    {
        return wqBase + std::uint64_t(idx) * sizeof(rmc::WqEntry);
    }

    vm::VAddr
    cqEntryVa(std::uint32_t idx) const
    {
        return cqBase + std::uint64_t(idx) * sizeof(rmc::CqEntry);
    }
};

class RmcDriver
{
  public:
    RmcDriver(NodeOs &os, rmc::Rmc &rmc, ContextRegistry &registry);

    /**
     * Open context @p ctx on behalf of @p proc (the ioctl path).
     * Performs the registry permission check; a process must open a
     * context before registering segments or QPs in it.
     *
     * @throws PermissionError if the uid may not open the context.
     */
    void openContext(Process &proc, sim::CtxId ctx);

    /**
     * Register @p proc's [base, base+bytes) as this node's segment of
     * context @p ctx. Pages must already be mapped (pinned).
     */
    void registerSegment(Process &proc, sim::CtxId ctx, vm::VAddr base,
                         std::uint64_t bytes);

    /**
     * Allocate WQ/CQ rings in @p proc's memory and register them in the
     * CT. Multi-threaded processes may register several QPs per context
     * (paper §4.2).
     */
    QpHandle createQueuePair(Process &proc, sim::CtxId ctx);

    /**
     * Unregister a QP (its ring memory stays with the process). Safe
     * mid-flight: the descriptor is invalidated and the RMC fences the
     * QP — ops already completed keep their completions, every other
     * posted op gets exactly one CqStatus::kFlushed completion, and
     * tids/epochs are reclaimed. Idempotent.
     */
    void destroyQueuePair(const QpHandle &qp);

    /**
     * Tear down context @p ctx on this node: destroy-and-fence every
     * registered QP (kFlushed completions as in destroyQueuePair), then
     * remove the CT entry — after which this node answers remote
     * requests for the context with bad-context error replies.
     */
    void unregisterContext(Process &proc, sim::CtxId ctx);

    /** Register a callback for fabric-failure notifications (§5.1). */
    void onFailure(sim::Callback fn);

    rmc::Rmc &rmc() { return rmc_; }
    NodeOs &os() { return os_; }
    ContextRegistry &registry() { return registry_; }

  private:
    NodeOs &os_;
    rmc::Rmc &rmc_;
    ContextRegistry &registry_;
    std::vector<sim::Callback> failureCbs_;

    struct OpenRecord
    {
        sim::CtxId ctx;
        std::uint32_t pid;
    };
    std::vector<OpenRecord> opens_;

    bool hasOpened(const Process &proc, sim::CtxId ctx) const;
    void requireOpened(const Process &proc, sim::CtxId ctx) const;
};

} // namespace sonuma::os

#endif // SONUMA_OS_RMC_DRIVER_HH
