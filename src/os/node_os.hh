/**
 * @file
 * Minimal per-node operating system model (paper §5.1).
 *
 * The OS's roles in soNUMA are: manage virtual memory (so the RMC can
 * walk the same page tables), allocate the RMC's control structures
 * (CT, ITT), and mediate context/QP registration through the device
 * driver. There is one OS instance per node — soNUMA deliberately does
 * NOT extend a single OS image across nodes (fault isolation, §2.2).
 */

#ifndef SONUMA_OS_NODE_OS_HH
#define SONUMA_OS_NODE_OS_HH

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "mem/phys_mem.hh"
#include "vm/address_space.hh"
#include "vm/page_table.hh"

namespace sonuma::os {

/** Thrown when access control denies an operation (paper §5.1). */
class PermissionError : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/** A user identity for the driver's access-control checks. */
using UserId = std::uint32_t;

class NodeOs;

/**
 * One user process: an address space plus an owner uid.
 */
class Process
{
  public:
    Process(NodeOs &os, std::uint32_t pid, UserId uid);

    std::uint32_t pid() const { return pid_; }
    UserId uid() const { return uid_; }
    vm::AddressSpace &addressSpace() { return as_; }
    const vm::AddressSpace &addressSpace() const { return as_; }

    /** Convenience: allocate zeroed, mapped (hence pinned) memory. */
    vm::VAddr
    alloc(std::uint64_t bytes)
    {
        return as_.alloc(bytes);
    }

  private:
    std::uint32_t pid_;
    UserId uid_;
    vm::AddressSpace as_;
};

/**
 * Per-node OS: owns the frame allocator and the process table, and
 * hands out pinned kernel memory for RMC control structures.
 */
class NodeOs
{
  public:
    /**
     * @param phys the node's physical memory
     * @param kernelReserve bytes at the bottom of PA space reserved for
     *        kernel structures (CT, ITT, page tables share the pool)
     */
    NodeOs(mem::PhysMem &phys, std::uint64_t kernelReserve = 1ull << 20);

    mem::PhysMem &phys() { return phys_; }
    vm::FrameAllocator &frames() { return frames_; }

    /** Spawn a process owned by @p uid. */
    Process &createProcess(UserId uid);

    Process &process(std::uint32_t pid);

    /** Allocate pinned, zeroed, physically-contiguous kernel memory. */
    mem::PAddr allocKernel(std::uint64_t bytes);

  private:
    mem::PhysMem &phys_;
    std::uint64_t kernelReserve_;
    mem::PAddr kernelBrk_ = 0;
    vm::FrameAllocator frames_;
    std::vector<std::unique_ptr<Process>> processes_;
};

} // namespace sonuma::os

#endif // SONUMA_OS_NODE_OS_HH
