/**
 * @file
 * Node OS implementation.
 */

#include "os/node_os.hh"

#include "sim/log.hh"

namespace sonuma::os {

Process::Process(NodeOs &os, std::uint32_t pid, UserId uid)
    : pid_(pid), uid_(uid), as_(os.phys(), os.frames())
{
}

NodeOs::NodeOs(mem::PhysMem &phys, std::uint64_t kernelReserve)
    : phys_(phys), kernelReserve_(kernelReserve),
      frames_(kernelReserve, phys.size() - kernelReserve)
{
    if (kernelReserve % vm::kPageBytes != 0)
        sim::fatal("kernel reserve must be page aligned");
    if (kernelReserve >= phys.size())
        sim::fatal("kernel reserve exceeds physical memory");
}

Process &
NodeOs::createProcess(UserId uid)
{
    processes_.push_back(std::make_unique<Process>(
        *this, static_cast<std::uint32_t>(processes_.size()), uid));
    return *processes_.back();
}

Process &
NodeOs::process(std::uint32_t pid)
{
    if (pid >= processes_.size())
        sim::fatal("no such pid: " + std::to_string(pid));
    return *processes_[pid];
}

mem::PAddr
NodeOs::allocKernel(std::uint64_t bytes)
{
    // Align to cache lines so RMC structures never straddle shared lines.
    const std::uint64_t aligned = (bytes + 63) & ~std::uint64_t(63);
    if (kernelBrk_ + aligned > kernelReserve_)
        sim::fatal("kernel reserve exhausted");
    const mem::PAddr pa = kernelBrk_;
    kernelBrk_ += aligned;
    phys_.fill(pa, 0, aligned);
    return pa;
}

} // namespace sonuma::os
