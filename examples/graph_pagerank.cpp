/**
 * @file
 * The paper's application study as a runnable walkthrough (§7.5):
 * PageRank over a power-law graph, three ways —
 *
 *   SHM        one cache-coherent node, plain shared memory
 *   bulk       soNUMA nodes exchanging whole vertex arrays per superstep
 *   fine-grain one remote read per cross-partition edge (Fig. 4 style)
 *
 * All three produce the same ranks (verified against a host reference);
 * what differs is *where the time goes*, printed per variant.
 *
 *   $ ./graph_pagerank [--vertices=N] [--nodes=P] [--supersteps=S]
 */

#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>

#include "app/graph.hh"
#include "app/pagerank.hh"

using namespace sonuma;
using namespace sonuma::app;

namespace {

std::uint64_t
flag(int argc, char **argv, const char *name, std::uint64_t def)
{
    const std::string prefix = std::string("--") + name + "=";
    for (int i = 1; i < argc; ++i) {
        if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0)
            return std::stoull(argv[i] + prefix.size());
    }
    return def;
}

} // namespace

int
main(int argc, char **argv)
{
    const auto vertices =
        static_cast<std::uint32_t>(flag(argc, argv, "vertices", 8192));
    const auto nodes =
        static_cast<std::uint32_t>(flag(argc, argv, "nodes", 4));
    PageRankConfig cfg;
    cfg.supersteps =
        static_cast<std::uint32_t>(flag(argc, argv, "supersteps", 2));
    cfg.seed = 42;

    std::printf("PageRank on a power-law graph, three implementations\n");
    sim::Rng rng(7);
    const Graph g = generatePowerLaw(rng, vertices, 12);
    sim::Rng prng(9);
    const Partition part = randomPartition(prng, vertices, nodes);
    std::printf("graph: %u vertices, %llu edges; %u-way random partition "
                "(%.0f%% cross edges)\n\n",
                g.numVertices,
                static_cast<unsigned long long>(g.numEdges()), nodes,
                100.0 * part.crossEdgeFraction(g));

    const auto ref = referencePageRank(g, cfg.supersteps, cfg.damping);

    auto check = [&](const PageRankRun &run) {
        double maxDiff = 0;
        for (std::uint32_t v = 0; v < g.numVertices; ++v)
            maxDiff = std::max(maxDiff, std::fabs(run.ranks[v] - ref[v]));
        return maxDiff;
    };

    const auto shm = runPageRankShm(g, nodes, cfg);
    std::printf("SHM (%u cores, one node):   %8.1f us   "
                "(max |err| vs reference: %.2e)\n",
                nodes, sim::ticksToUs(shm.elapsed), check(shm));

    const auto bulk = runPageRankBulk(g, part, cfg);
    std::printf("soNUMA bulk (%u nodes):     %8.1f us   "
                "(%llu multi-line pulls, err %.2e)\n",
                nodes, sim::ticksToUs(bulk.elapsed),
                static_cast<unsigned long long>(bulk.remoteOps),
                check(bulk));

    const auto fine = runPageRankFine(g, part, cfg);
    std::printf("soNUMA fine-grain (%u):     %8.1f us   "
                "(%llu remote reads,     err %.2e)\n",
                nodes, sim::ticksToUs(fine.elapsed),
                static_cast<unsigned long long>(fine.remoteOps),
                check(fine));

    std::printf("\nfine-grain issues one remote read per cross-partition "
                "edge;\nbulk amortizes the fabric with one wide pull per "
                "peer per superstep.\n");
    return 0;
}
