/**
 * @file
 * Quickstart: the smallest complete soNUMA program.
 *
 * Builds a two-node rack, joins a global address space (context), and
 * performs the paper's three one-sided primitives — remote read, remote
 * write, and a remote atomic — printing what happened and how long each
 * took in simulated time.
 *
 *   $ ./quickstart
 */

#include <cstdio>

#include "api/session.hh"
#include "node/cluster.hh"
#include "sim/simulation.hh"

using namespace sonuma;

namespace {

sim::Task
clientMain(sim::Simulation &sim, api::RmcSession &session,
           os::Process &serverProc, vm::VAddr serverSeg)
{
    // A local buffer to read into / write from (any process memory).
    const vm::VAddr buf = session.allocBuffer(4096);

    //
    // 1. Remote read: copy 64 bytes from the server's context segment
    //    (offset 0) into our local buffer.
    //
    rmc::CqStatus status;
    sim::Tick t0 = sim.now();
    co_await session.readSync(/*nid=*/0, /*offset=*/0, buf, 64, &status);
    std::printf("remote read : %-4s in %6.0f ns  -> \"%s\"\n",
                status == rmc::CqStatus::kOk ? "ok" : "ERR",
                sim::ticksToNs(sim.now() - t0),
                [&] {
                    static char text[65];
                    session.process().addressSpace().read(buf, text, 64);
                    text[64] = 0;
                    return text;
                }());

    //
    // 2. Remote write: place a greeting at offset 4096 of the server's
    //    segment, then verify it landed (functional read on the server).
    //
    const char reply[] = "greetings from node 1";
    session.process().addressSpace().write(buf, reply, sizeof(reply));
    t0 = sim.now();
    co_await session.writeSync(0, 4096, buf, 64, &status);
    char landed[64];
    serverProc.addressSpace().read(serverSeg + 4096, landed,
                                   sizeof(landed));
    std::printf("remote write: %-4s in %6.0f ns  -> server sees \"%s\"\n",
                status == rmc::CqStatus::kOk ? "ok" : "ERR",
                sim::ticksToNs(sim.now() - t0), landed);

    //
    // 3. Remote atomic: fetch-and-add on a counter in the server's
    //    segment. Atomicity is enforced by the server's own cache
    //    coherence (paper §7.4), so it is safe against local access too.
    //
    std::uint64_t old = 0;
    t0 = sim.now();
    co_await session.fetchAddSync(0, /*offset=*/8192, /*addend=*/5, &old,
                                  &status);
    std::printf("fetch-add   : %-4s in %6.0f ns  -> old=%llu now=%llu\n",
                status == rmc::CqStatus::kOk ? "ok" : "ERR",
                sim::ticksToNs(sim.now() - t0),
                static_cast<unsigned long long>(old),
                static_cast<unsigned long long>(
                    serverProc.addressSpace().readT<std::uint64_t>(
                        serverSeg + 8192)));

    //
    // 4. Errors surface through the CQ: reading past the segment end
    //    yields an error completion, not silent corruption.
    //
    co_await session.readSync(0, /*offset=*/1 << 30, buf, 64, &status);
    std::printf("bad read    : %s (bounds violations surface via CQ)\n",
                status == rmc::CqStatus::kBoundsError ? "rejected"
                                                      : "UNEXPECTED");
}

} // namespace

int
main()
{
    std::printf("soNUMA quickstart: 2 nodes, crossbar fabric, one "
                "shared context\n\n");

    sim::Simulation sim(/*seed=*/1);

    // A rack: two nodes on one memory fabric (defaults = paper Table 1).
    node::Cluster cluster(sim, node::ClusterParams{});

    // A global virtual address space, id 1, open to everyone.
    cluster.createSharedContext(/*ctx=*/1);

    // Node 0: register a 1 MiB context segment and put data in it.
    auto &serverProc = cluster.node(0).os().createProcess(/*uid=*/0);
    const vm::VAddr serverSeg = serverProc.alloc(1 << 20);
    cluster.node(0).driver().openContext(serverProc, 1);
    cluster.node(0).driver().registerSegment(serverProc, 1, serverSeg,
                                             1 << 20);
    const char hello[] = "hello from node 0's memory";
    serverProc.addressSpace().write(serverSeg, hello, sizeof(hello));
    serverProc.addressSpace().writeT<std::uint64_t>(serverSeg + 8192, 100);

    // Node 1: join the context and run the client program.
    auto &clientProc = cluster.node(1).os().createProcess(/*uid=*/0);
    api::RmcSession session(cluster.node(1).core(0),
                            cluster.node(1).driver(), clientProc, 1);

    sim.spawn(clientMain(sim, session, serverProc, serverSeg));
    sim.run();

    std::printf("\nsimulated time: %.2f us\n", sim::ticksToUs(sim.now()));
    return 0;
}
