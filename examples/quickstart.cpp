/**
 * @file
 * Quickstart: the smallest complete soNUMA program, on the v2 API.
 * Two nodes, one context, and the paper's one-sided primitives — each
 * a single co_await yielding an OpResult (status + latency).
 *
 *   $ ./quickstart
 */

#include <cstdio>

#include "api/testbed.hh"

using namespace sonuma;
using namespace sonuma::api;

static sim::Task clientMain(TestBed &bed)
{
    auto &s = bed.session(1);              // node 1, core 0
    auto &as = s.process().addressSpace();
    const vm::VAddr buf = s.allocBuffer(4096);
    // 1. Remote read: 64 B from node 0's segment into our buffer.
    OpResult r = co_await s.read(/*nid=*/0, /*offset=*/0, buf, 64);
    char text[65] = {};
    as.read(buf, text, 64);
    std::printf("remote read : %-4s in %6.0f ns  -> \"%s\"\n",
                r.ok() ? "ok" : "ERR", sim::ticksToNs(r.latency), text);

    // 2. Remote write: place a greeting in node 0's memory.
    as.write(buf, "greetings from node 1", 22);
    r = co_await s.write(0, 4096, buf, 64);
    char landed[64];
    bed.process(0).addressSpace().read(bed.segBase(0) + 4096, landed, 64);
    std::printf("remote write: %-4s in %6.0f ns  -> server sees \"%s\"\n",
                r.ok() ? "ok" : "ERR", sim::ticksToNs(r.latency), landed);

    // 3. Remote atomic: fetch-and-add; the old value rides the result.
    r = co_await s.fetchAdd(0, /*offset=*/8192, /*addend=*/5);
    std::printf("fetch-add   : %-4s in %6.0f ns  -> old=%llu\n",
                r.ok() ? "ok" : "ERR", sim::ticksToNs(r.latency),
                static_cast<unsigned long long>(r.oldValue));

    // 4. Errors surface in the OpResult, not as corruption.
    r = co_await s.read(0, /*offset=*/1 << 30, buf, 64);
    std::printf("bad read    : %s (bounds violations surface via CQ)\n",
                r.status == rmc::CqStatus::kBoundsError ? "rejected"
                                                        : "UNEXPECTED");
}

int main()
{
    TestBed bed(ClusterSpec{}.nodes(2).context(1).segmentPerNode(1_MiB));
    bed.process(0).addressSpace().write(bed.segBase(0),
                                        "hello from node 0's memory", 27);
    bed.process(0).addressSpace().writeT<std::uint64_t>(
        bed.segBase(0) + 8192, 100);
    bed.spawn(clientMain(bed));
    bed.run();
    std::printf("\nsimulated time: %.2f us\n",
                sim::ticksToUs(bed.sim().now()));
    return 0;
}
