/**
 * @file
 * A one-sided-read key-value store (the paper's "killer application"
 * class, §7.5): the server publishes a hash table inside its context
 * segment; clients GET with remote reads only — zero server CPU on the
 * read path — and observe sub-microsecond access latency, an order of
 * magnitude below the ~5 us the paper quotes for RDMA-based stores.
 *
 *   $ ./kv_store [--clients=N] [--gets=M]
 */

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "api/testbed.hh"
#include "app/kv_store.hh"
#include "sim/log.hh"

using namespace sonuma;
using namespace sonuma::app;

namespace {

std::uint64_t
flag(int argc, char **argv, const char *name, std::uint64_t def)
{
    const std::string prefix = std::string("--") + name + "=";
    for (int i = 1; i < argc; ++i) {
        if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0)
            return std::stoull(argv[i] + prefix.size());
    }
    return def;
}

} // namespace

int
main(int argc, char **argv)
{
    const auto clients =
        static_cast<std::uint32_t>(flag(argc, argv, "clients", 3));
    const auto gets = flag(argc, argv, "gets", 2000);
    constexpr std::uint32_t kBuckets = 8192;
    constexpr std::uint64_t kKeys = 1500;

    // Node 0 serves; the rest issue GETs. The bucket table is the
    // context segment.
    api::TestBed bed(api::ClusterSpec{}
                         .nodes(clients + 1)
                         .context(1)
                         .segmentPerNode(KvServer::tableBytes(kBuckets))
                         .seed(3));
    KvServer server(bed.session(0), bed.segBase(0), 0, kBuckets);

    // Populate, then let clients hammer GETs concurrently.
    bed.spawn([](KvServer *server) -> sim::Task {
        for (std::uint64_t k = 0; k < kKeys; ++k) {
            const std::uint64_t v = k * 1000 + 7;
            if (!co_await server->put(k, &v, sizeof(v)))
                sim::fatal("table full");
        }
        std::printf("server: %llu keys loaded into %u buckets\n",
                    static_cast<unsigned long long>(kKeys), kBuckets);
    }(&server));
    bed.run();

    struct ClientState
    {
        std::unique_ptr<KvClient> kv;
        std::uint64_t hits = 0;
        std::uint64_t misses = 0;
        double avgNs = 0;
    };
    std::vector<ClientState> cs(clients);
    for (std::uint32_t c = 0; c < clients; ++c) {
        cs[c].kv = std::make_unique<KvClient>(bed.session(c + 1), 0, 0,
                                              kBuckets);
        bed.spawn([](sim::Simulation *sim, ClientState *st,
                     std::uint32_t c, std::uint64_t gets) -> sim::Task {
            sim::Rng rng(100 + c);
            std::uint8_t value[kKvValueBytes];
            const sim::Tick t0 = sim->now();
            for (std::uint64_t i = 0; i < gets; ++i) {
                // 90% present keys, 10% absent ones.
                const std::uint64_t key = rng.chance(0.9)
                                              ? rng.below(kKeys)
                                              : kKeys + rng.below(1000);
                if (co_await st->kv->get(key, value)) {
                    ++st->hits;
                    std::uint64_t v;
                    std::memcpy(&v, value, sizeof(v));
                    if (v % 1000 != 7)
                        sim::fatal("corrupt value");
                } else {
                    ++st->misses;
                }
            }
            st->avgNs = sim::ticksToNs(sim->now() - t0) /
                        static_cast<double>(gets);
        }(&bed.sim(), &cs[c], c, gets));
    }
    bed.run();

    std::printf("\n%-8s %10s %10s %14s %16s\n", "client", "hits",
                "misses", "avg GET (ns)", "reads issued");
    for (std::uint32_t c = 0; c < clients; ++c) {
        std::printf("%-8u %10llu %10llu %14.0f %16llu\n", c,
                    static_cast<unsigned long long>(cs[c].hits),
                    static_cast<unsigned long long>(cs[c].misses),
                    cs[c].avgNs,
                    static_cast<unsigned long long>(
                        cs[c].kv->readsIssued()));
    }
    std::printf("\nGETs are pure one-sided remote reads: the server CPU "
                "never runs on the read path.\n");
    return 0;
}
