/**
 * @file
 * Messaging and synchronization without hardware send/receive (§5.3):
 * a pipeline of nodes passes tokens with the software send/receive
 * library (push for small control messages, pull for bulk payloads),
 * then all nodes meet at the one-sided barrier.
 *
 *   $ ./messaging
 */

#include <cstdio>
#include <numeric>
#include <vector>

#include "api/barrier.hh"
#include "api/messaging.hh"
#include "node/cluster.hh"
#include "sim/simulation.hh"

using namespace sonuma;

int
main()
{
    constexpr std::uint32_t kNodes = 4;
    sim::Simulation sim(5);
    node::ClusterParams params;
    params.nodes = kNodes;
    node::Cluster cluster(sim, params);
    cluster.createSharedContext(1);

    const api::MsgParams mp; // push <= 256 B, pull beyond
    // Segment layout per node: barrier region, then one messaging
    // region per neighbor direction (previous and next in the ring).
    const std::uint64_t barBytes = api::Barrier::regionBytes(kNodes);
    const std::uint64_t epBytes = api::MsgEndpoint::regionBytes(mp);
    const std::uint64_t segBytes = barBytes + 2 * epBytes;

    struct NodeState
    {
        os::Process *proc;
        vm::VAddr seg;
        std::unique_ptr<api::RmcSession> msgSession, barrierSession;
        std::unique_ptr<api::MsgEndpoint> fromPrev, toNext;
        std::unique_ptr<api::Barrier> barrier;
    };
    std::vector<NodeState> ns(kNodes);
    std::vector<sim::NodeId> all(kNodes);
    std::iota(all.begin(), all.end(), 0);

    for (std::uint32_t i = 0; i < kNodes; ++i) {
        auto &nd = cluster.node(i);
        ns[i].proc = &nd.os().createProcess(0);
        ns[i].seg = ns[i].proc->alloc(segBytes);
        nd.driver().openContext(*ns[i].proc, 1);
        nd.driver().registerSegment(*ns[i].proc, 1, ns[i].seg, segBytes);
        ns[i].msgSession = std::make_unique<api::RmcSession>(
            nd.core(0), nd.driver(), *ns[i].proc, 1);
        ns[i].barrierSession = std::make_unique<api::RmcSession>(
            nd.core(0), nd.driver(), *ns[i].proc, 1);
        ns[i].barrier = std::make_unique<api::Barrier>(
            *ns[i].barrierSession, all, ns[i].seg, 0);
    }
    // Ring endpoints: region [bar, bar+ep) receives from the previous
    // node; region [bar+ep, bar+2ep) receives from the next node (only
    // the first is used for data here; layout kept symmetric).
    for (std::uint32_t i = 0; i < kNodes; ++i) {
        const std::uint32_t next = (i + 1) % kNodes;
        ns[i].toNext = std::make_unique<api::MsgEndpoint>(
            *ns[i].msgSession, static_cast<sim::NodeId>(next),
            ns[i].seg, barBytes + epBytes, barBytes, mp);
    }
    for (std::uint32_t i = 0; i < kNodes; ++i) {
        const std::uint32_t prev = (i + kNodes - 1) % kNodes;
        // Reuse the sending endpoint of prev for its receive side: the
        // endpoint at node i receiving from prev is ns[i].fromPrev.
        ns[i].fromPrev = std::make_unique<api::MsgEndpoint>(
            *ns[i].msgSession, static_cast<sim::NodeId>(prev),
            ns[i].seg, barBytes, barBytes + epBytes, mp);
    }

    for (std::uint32_t i = 0; i < kNodes; ++i) {
        sim.spawn([](sim::Simulation *sim, NodeState *st, std::uint32_t i,
                     std::uint32_t nodes) -> sim::Task {
            // Token ride around the ring: node 0 injects a small (push)
            // and a bulk (pull) message; everyone relays.
            std::vector<std::uint8_t> bulk(16 * 1024);
            for (std::size_t b = 0; b < bulk.size(); ++b)
                bulk[b] = static_cast<std::uint8_t>(b * 7);

            if (i == 0) {
                std::uint64_t token = 1;
                co_await st->toNext->send(&token, sizeof(token));
                co_await st->toNext->send(bulk.data(),
                                          static_cast<std::uint32_t>(
                                              bulk.size()));
                std::vector<std::uint8_t> back;
                co_await st->fromPrev->receive(&back); // token returns
                co_await st->fromPrev->receive(&back); // bulk returns
                std::printf("node 0: token + %zu B bulk made the round "
                            "trip in %.2f us\n",
                            back.size(), sim::ticksToUs(sim->now()));
                bool intact = back.size() == bulk.size();
                for (std::size_t b = 0; intact && b < back.size(); ++b)
                    intact = back[b] == bulk[b];
                std::printf("node 0: bulk payload integrity: %s\n",
                            intact ? "ok" : "CORRUPT");
            } else {
                std::vector<std::uint8_t> m1, m2;
                co_await st->fromPrev->receive(&m1);
                co_await st->fromPrev->receive(&m2);
                std::printf("node %u: relaying token + %zu B bulk\n", i,
                            m2.size());
                co_await st->toNext->send(m1.data(),
                                          static_cast<std::uint32_t>(
                                              m1.size()));
                co_await st->toNext->send(m2.data(),
                                          static_cast<std::uint32_t>(
                                              m2.size()));
            }

            // Everyone meets at the barrier (writes to peers + local
            // polling, §5.3).
            co_await st->barrier->arrive();
            if (i == 0)
                std::printf("all %u nodes passed the barrier at %.2f "
                            "us\n",
                            nodes, sim::ticksToUs(sim->now()));
        }(&sim, &ns[i], i, kNodes));
    }
    sim.run();
    return 0;
}
