/**
 * @file
 * Messaging and synchronization without hardware send/receive (§5.3):
 * a ring of nodes passes tokens with the software send/receive library
 * (push for small control messages, pull for bulk payloads), running
 * on the Workload runtime — one coroutine per node with the built-in
 * one-sided barrier.
 *
 *   $ ./messaging
 */

#include <cstdio>
#include <memory>
#include <vector>

#include "api/messaging.hh"
#include "api/workload.hh"

using namespace sonuma;
using api::MsgEndpoint;
using api::Workload;

int
main()
{
    constexpr std::uint32_t kNodes = 4;
    const api::MsgParams mp; // push <= 256 B, pull beyond

    // Segment layout per node: the Workload's barrier region, then one
    // messaging region per ring direction (from-previous, to-next).
    const std::uint64_t barBytes = api::Barrier::regionBytes(kNodes);
    const std::uint64_t epBytes = api::MsgEndpoint::regionBytes(mp);

    api::TestBed bed(api::ClusterSpec{}
                         .nodes(kNodes)
                         .context(1)
                         .segmentPerNode(barBytes + 2 * epBytes)
                         .seed(5));

    // Ring endpoints: region [bar, bar+ep) receives from the previous
    // node; region [bar+ep, bar+2ep) receives from the next node (only
    // the first carries data here; layout kept symmetric).
    std::vector<std::unique_ptr<MsgEndpoint>> toNext(kNodes),
        fromPrev(kNodes);
    for (std::uint32_t i = 0; i < kNodes; ++i) {
        const std::uint32_t next = (i + 1) % kNodes;
        const std::uint32_t prev = (i + kNodes - 1) % kNodes;
        toNext[i] = std::make_unique<MsgEndpoint>(
            bed.session(i), static_cast<sim::NodeId>(next),
            bed.segBase(i), barBytes + epBytes, barBytes, mp);
        fromPrev[i] = std::make_unique<MsgEndpoint>(
            bed.session(i), static_cast<sim::NodeId>(prev),
            bed.segBase(i), barBytes, barBytes + epBytes, mp);
    }

    Workload wl(bed);
    wl.onEachNode([&](Workload::NodeCtx &ctx) -> sim::Task {
        const std::uint32_t i = ctx.nodeId();
        // Token ride around the ring: node 0 injects a small (push)
        // and a bulk (pull) message; everyone relays.
        std::vector<std::uint8_t> bulk(16 * 1024);
        for (std::size_t b = 0; b < bulk.size(); ++b)
            bulk[b] = static_cast<std::uint8_t>(b * 7);

        if (i == 0) {
            std::uint64_t token = 1;
            co_await toNext[i]->send(&token, sizeof(token));
            co_await toNext[i]->send(
                bulk.data(), static_cast<std::uint32_t>(bulk.size()));
            std::vector<std::uint8_t> back;
            co_await fromPrev[i]->receive(&back); // token returns
            co_await fromPrev[i]->receive(&back); // bulk returns
            std::printf("node 0: token + %zu B bulk made the round "
                        "trip in %.2f us\n",
                        back.size(), sim::ticksToUs(ctx.sim().now()));
            bool intact = back.size() == bulk.size();
            for (std::size_t b = 0; intact && b < back.size(); ++b)
                intact = back[b] == bulk[b];
            std::printf("node 0: bulk payload integrity: %s\n",
                        intact ? "ok" : "CORRUPT");
        } else {
            std::vector<std::uint8_t> m1, m2;
            co_await fromPrev[i]->receive(&m1);
            co_await fromPrev[i]->receive(&m2);
            std::printf("node %u: relaying token + %zu B bulk\n", i,
                        m2.size());
            co_await toNext[i]->send(
                m1.data(), static_cast<std::uint32_t>(m1.size()));
            co_await toNext[i]->send(
                m2.data(), static_cast<std::uint32_t>(m2.size()));
        }
        // The Workload's finish barrier aligns all nodes (§5.3); an
        // explicit mid-workload ctx.barrier() works the same way.
        co_await ctx.barrier();
        if (i == 0)
            std::printf("all %u nodes passed the barrier at %.2f us\n",
                        ctx.nodes(), sim::ticksToUs(ctx.sim().now()));
    });
    wl.run();
    return 0;
}
