/**
 * @file
 * Frame-pool tests: coroutine frames are recycled through the freelist,
 * outstanding counts balance, and oversize frames fall through cleanly.
 */

#include <gtest/gtest.h>

#include <array>
#include <cstdint>

#include "sim/event_queue.hh"
#include "sim/frame_pool.hh"
#include "sim/simulation.hh"
#include "sim/task.hh"

namespace {

using namespace sonuma;

sim::FireAndForget
smallTransaction(sim::EventQueue &eq, int *done)
{
    co_await sim::Delay(eq, 1);
    ++*done;
}

sim::Task
smallTask(int *done)
{
    ++*done;
    co_return;
}

sim::FireAndForget
hugeFrameTransaction(sim::EventQueue &eq, std::uint64_t *sum)
{
    // Large locals force an oversize coroutine frame (> kMaxPooledBytes).
    std::array<std::uint64_t, 1024> scratch{};
    scratch.fill(1);
    co_await sim::Delay(eq, 1);
    for (auto v : scratch)
        *sum += v;
}

TEST(FramePool, FireAndForgetFramesAreReused)
{
    auto &pool = sim::FramePool::instance();
    sim::EventQueue eq;
    int done = 0;

    // Prime: first frame is a fresh heap block.
    smallTransaction(eq, &done);
    eq.run();

    pool.resetStats();
    const int kRounds = 100;
    for (int i = 0; i < kRounds; ++i) {
        smallTransaction(eq, &done);
        eq.run();
    }
    EXPECT_EQ(done, kRounds + 1);
    const auto &st = pool.stats();
    EXPECT_EQ(st.allocs, static_cast<std::uint64_t>(kRounds));
    EXPECT_EQ(st.reuses, static_cast<std::uint64_t>(kRounds));
    EXPECT_EQ(st.fresh, 0u);
}

TEST(FramePool, TaskFramesAreReused)
{
    auto &pool = sim::FramePool::instance();
    int done = 0;
    {
        sim::Simulation s;
        s.spawn(smallTask(&done));
        s.run();
    }
    pool.resetStats();
    const int kRounds = 50;
    for (int i = 0; i < kRounds; ++i) {
        sim::Simulation s;
        s.spawn(smallTask(&done));
        s.run();
    }
    EXPECT_EQ(done, kRounds + 1);
    EXPECT_EQ(pool.stats().reuses, static_cast<std::uint64_t>(kRounds));
    EXPECT_EQ(pool.stats().fresh, 0u);
}

TEST(FramePool, OutstandingBalancesToZero)
{
    auto &pool = sim::FramePool::instance();
    const std::uint64_t before = pool.stats().outstanding;
    sim::EventQueue eq;
    int done = 0;
    for (int i = 0; i < 8; ++i)
        smallTransaction(eq, &done);
    EXPECT_GT(pool.stats().outstanding, before); // frames live while queued
    eq.run();
    EXPECT_EQ(pool.stats().outstanding, before);
    EXPECT_EQ(done, 8);
}

TEST(FramePool, OversizeFramesFallThrough)
{
    auto &pool = sim::FramePool::instance();
    sim::EventQueue eq;
    std::uint64_t sum = 0;
    pool.resetStats();
    hugeFrameTransaction(eq, &sum);
    eq.run();
    EXPECT_EQ(sum, 1024u);
    EXPECT_GE(pool.stats().oversize, 1u);
}

TEST(FramePool, ConcurrentFramesGetDistinctBlocksThenPool)
{
    auto &pool = sim::FramePool::instance();
    sim::EventQueue eq;
    int done = 0;

    // 16 frames live at once: the pool must mint 16 distinct blocks.
    for (int i = 0; i < 16; ++i)
        smallTransaction(eq, &done);
    eq.run();

    // A second wave of 16 reuses all of them.
    pool.resetStats();
    for (int i = 0; i < 16; ++i)
        smallTransaction(eq, &done);
    eq.run();
    EXPECT_EQ(pool.stats().fresh, 0u);
    EXPECT_EQ(pool.stats().reuses, 16u);
}

} // namespace
