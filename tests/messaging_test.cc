/**
 * @file
 * Tests for the software messaging library (§5.3): push and pull
 * paths, threshold selection, ordering, and credit flow control under
 * ring pressure. The one-sided barrier has its own suite in
 * api_barrier_test.cc.
 */

#include <gtest/gtest.h>

#include <memory>
#include <numeric>
#include <vector>

#include "api/messaging.hh"
#include "api/session.hh"
#include "node/cluster.hh"
#include "sim/simulation.hh"

namespace {

using namespace sonuma;
using api::MsgEndpoint;
using api::MsgParams;
using api::RmcSession;

/** Two nodes, each with a segment sized for one messaging endpoint. */
struct MsgFixture : public ::testing::Test
{
    sim::Simulation sim{7};
    std::unique_ptr<node::Cluster> cluster;
    std::unique_ptr<RmcSession> s0, s1;
    std::unique_ptr<MsgEndpoint> e0, e1;
    static constexpr sim::CtxId kCtx = 1;

    void
    buildEndpoints(const MsgParams &params,
                   const api::SessionParams &sp = {},
                   const rmc::RmcParams &rp = {})
    {
        node::ClusterParams cp;
        cp.nodes = 2;
        cp.node.rmc = rp;
        cluster = std::make_unique<node::Cluster>(sim, cp);
        cluster->createSharedContext(kCtx);

        const std::uint64_t segBytes = MsgEndpoint::regionBytes(params);
        std::vector<vm::VAddr> segBase(2);
        std::vector<os::Process *> procs(2);
        for (int n = 0; n < 2; ++n) {
            auto &node = cluster->node(static_cast<std::size_t>(n));
            procs[n] = &node.os().createProcess(0);
            segBase[n] = procs[n]->alloc(segBytes);
            node.driver().openContext(*procs[n], kCtx);
            node.driver().registerSegment(*procs[n], kCtx, segBase[n],
                                          segBytes);
        }
        s0 = std::make_unique<RmcSession>(cluster->node(0).core(0),
                                          cluster->node(0).driver(),
                                          *procs[0], kCtx, sp);
        s1 = std::make_unique<RmcSession>(cluster->node(1).core(0),
                                          cluster->node(1).driver(),
                                          *procs[1], kCtx, sp);
        e0 = std::make_unique<MsgEndpoint>(*s0, 1, segBase[0], 0, 0,
                                           params);
        e1 = std::make_unique<MsgEndpoint>(*s1, 0, segBase[1], 0, 0,
                                           params);
    }

    static std::vector<std::uint8_t>
    pattern(std::uint32_t len, std::uint8_t seed)
    {
        std::vector<std::uint8_t> v(len);
        for (std::uint32_t i = 0; i < len; ++i)
            v[i] = static_cast<std::uint8_t>(seed + i * 3);
        return v;
    }
};

TEST_F(MsgFixture, SmallMessageViaPush)
{
    buildEndpoints(MsgParams{});
    const auto msg = pattern(32, 5);
    std::vector<std::uint8_t> got;
    sim.spawn([](MsgEndpoint *e, const std::vector<std::uint8_t> *m)
                  -> sim::Task { co_await e->send(m->data(), 32); }(
        e0.get(), &msg));
    sim.spawn([](MsgEndpoint *e, std::vector<std::uint8_t> *out)
                  -> sim::Task { co_await e->receive(out); }(e1.get(),
                                                             &got));
    sim.run();
    EXPECT_EQ(got, msg);
}

/**
 * Regression: the endpoint's announcement writes are fire-and-forget
 * and its waits ride remoteWriteEvent, so on a doorbell-batched
 * multi-QP session it must flush explicitly — without that, both sides
 * sleep forever on doorbells that never rang.
 */
TEST_F(MsgFixture, PushAndPullWorkOnBatchedMultiQpSessions)
{
    api::SessionParams sp;
    sp.doorbellBatching = true;
    auto rp = rmc::RmcParams::simulatedHardware();
    rp.qpCount = 2;
    buildEndpoints(MsgParams{}, sp, rp);
    const auto small = pattern(32, 5);
    const auto large = pattern(8 * 1024, 11);
    std::vector<std::uint8_t> got0, got1;
    sim.spawn([](MsgEndpoint *e, const std::vector<std::uint8_t> *a,
                 const std::vector<std::uint8_t> *b) -> sim::Task {
        co_await e->send(a->data(),
                         static_cast<std::uint32_t>(a->size()));
        co_await e->send(b->data(),
                         static_cast<std::uint32_t>(b->size()));
    }(e0.get(), &small, &large));
    sim.spawn([](MsgEndpoint *e, std::vector<std::uint8_t> *o0,
                 std::vector<std::uint8_t> *o1) -> sim::Task {
        co_await e->receive(o0);
        co_await e->receive(o1);
    }(e1.get(), &got0, &got1));
    sim.run();
    EXPECT_EQ(got0, small);
    EXPECT_EQ(got1, large);
    // Unreaped fire-and-forget completions may remain, but no doorbell
    // may still be pending — every post must have reached the RMC.
    EXPECT_EQ(s0->pendingDoorbells(), 0u);
    EXPECT_EQ(s1->pendingDoorbells(), 0u);
}

TEST_F(MsgFixture, LargeMessageViaPull)
{
    buildEndpoints(MsgParams{});
    const std::uint32_t kLen = 16 * 1024; // above the 256 B threshold
    const auto msg = pattern(kLen, 9);
    std::vector<std::uint8_t> got;
    sim.spawn([](MsgEndpoint *e, const std::vector<std::uint8_t> *m,
                 std::uint32_t len) -> sim::Task {
        co_await e->send(m->data(), len);
    }(e0.get(), &msg, kLen));
    sim.spawn([](MsgEndpoint *e, std::vector<std::uint8_t> *out)
                  -> sim::Task { co_await e->receive(out); }(e1.get(),
                                                             &got));
    sim.run();
    EXPECT_EQ(got, msg);
}

TEST_F(MsgFixture, MultiChunkPushReassembles)
{
    MsgParams p;
    p.pushThreshold = 1 << 20; // force push even for large messages
    buildEndpoints(p);
    const std::uint32_t kLen = 1000; // ~21 chunks of 48 B
    const auto msg = pattern(kLen, 13);
    std::vector<std::uint8_t> got;
    sim.spawn([](MsgEndpoint *e, const std::vector<std::uint8_t> *m,
                 std::uint32_t len) -> sim::Task {
        co_await e->send(m->data(), len);
    }(e0.get(), &msg, kLen));
    sim.spawn([](MsgEndpoint *e, std::vector<std::uint8_t> *out)
                  -> sim::Task { co_await e->receive(out); }(e1.get(),
                                                             &got));
    sim.run();
    EXPECT_EQ(got, msg);
}

TEST_F(MsgFixture, ThresholdZeroForcesPullEvenForTinyMessages)
{
    MsgParams p;
    p.pushThreshold = 0;
    buildEndpoints(p);
    const auto msg = pattern(16, 21);
    std::vector<std::uint8_t> got;
    sim.spawn([](MsgEndpoint *e, const std::vector<std::uint8_t> *m)
                  -> sim::Task { co_await e->send(m->data(), 16); }(
        e0.get(), &msg));
    sim.spawn([](MsgEndpoint *e, std::vector<std::uint8_t> *out)
                  -> sim::Task { co_await e->receive(out); }(e1.get(),
                                                             &got));
    sim.run();
    EXPECT_EQ(got, msg);
}

TEST_F(MsgFixture, ManyMessagesArriveInOrder)
{
    buildEndpoints(MsgParams{});
    const int kMsgs = 300; // several ring laps; exercises credit return
    std::vector<int> receivedOrder;
    sim.spawn([](MsgEndpoint *e) -> sim::Task {
        for (int i = 0; i < kMsgs; ++i) {
            std::uint32_t v = static_cast<std::uint32_t>(i);
            co_await e->send(&v, sizeof(v));
        }
    }(e0.get()));
    sim.spawn([](MsgEndpoint *e, std::vector<int> *order) -> sim::Task {
        for (int i = 0; i < kMsgs; ++i) {
            std::vector<std::uint8_t> buf;
            co_await e->receive(&buf);
            std::uint32_t v;
            std::memcpy(&v, buf.data(), sizeof(v));
            order->push_back(static_cast<int>(v));
        }
    }(e1.get(), &receivedOrder));
    sim.run();
    ASSERT_EQ(receivedOrder.size(), static_cast<std::size_t>(kMsgs));
    for (int i = 0; i < kMsgs; ++i)
        EXPECT_EQ(receivedOrder[static_cast<std::size_t>(i)], i);
}

TEST_F(MsgFixture, MixedSizesCrossThreshold)
{
    buildEndpoints(MsgParams{});
    const std::vector<std::uint32_t> sizes = {8,    64,   256,  257,
                                              4096, 48,   8192, 100};
    std::vector<std::vector<std::uint8_t>> got(sizes.size());
    sim.spawn([](MsgFixture *f, const std::vector<std::uint32_t> *sizes)
                  -> sim::Task {
        for (std::size_t i = 0; i < sizes->size(); ++i) {
            auto msg = pattern((*sizes)[i],
                               static_cast<std::uint8_t>(i * 11 + 1));
            co_await f->e0->send(msg.data(), (*sizes)[i]);
        }
    }(this, &sizes));
    sim.spawn([](MsgFixture *f,
                 std::vector<std::vector<std::uint8_t>> *got) -> sim::Task {
        for (auto &slot : *got)
            co_await f->e1->receive(&slot);
    }(this, &got));
    sim.run();
    for (std::size_t i = 0; i < sizes.size(); ++i)
        EXPECT_EQ(got[i],
                  pattern(sizes[i], static_cast<std::uint8_t>(i * 11 + 1)))
            << "message " << i;
}

TEST_F(MsgFixture, PingPongLatencyIsSubMicrosecond)
{
    buildEndpoints(MsgParams{});
    sim::Tick oneWay = 0;
    sim.spawn([](MsgFixture *f, sim::Tick *oneWay) -> sim::Task {
        // Warmup exchange, then 10 timed round trips.
        std::uint64_t v = 1;
        std::vector<std::uint8_t> buf;
        co_await f->e0->send(&v, 8);
        co_await f->e0->receive(&buf);
        const sim::Tick start = f->sim.now();
        for (int i = 0; i < 10; ++i) {
            co_await f->e0->send(&v, 8);
            co_await f->e0->receive(&buf);
        }
        *oneWay = (f->sim.now() - start) / 20;
    }(this, &oneWay));
    sim.spawn([](MsgFixture *f) -> sim::Task {
        std::uint64_t v = 2;
        std::vector<std::uint8_t> buf;
        co_await f->e1->receive(&buf);
        co_await f->e1->send(&v, 8);
        for (int i = 0; i < 10; ++i) {
            co_await f->e1->receive(&buf);
            co_await f->e1->send(&v, 8);
        }
    }(this));
    sim.run();
    // Paper: minimal half-duplex latency 340 ns on simulated hardware.
    EXPECT_GT(sim::ticksToNs(oneWay), 100.0);
    EXPECT_LT(sim::ticksToNs(oneWay), 700.0);
}

} // namespace
