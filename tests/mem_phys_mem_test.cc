/**
 * @file
 * Tests for sparse functional physical memory.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "mem/phys_mem.hh"

namespace {

using sonuma::mem::PhysMem;

TEST(PhysMem, ZeroInitialized)
{
    PhysMem m(1 << 20);
    EXPECT_EQ(m.readT<std::uint64_t>(0), 0u);
    EXPECT_EQ(m.readT<std::uint64_t>((1 << 20) - 8), 0u);
}

TEST(PhysMem, ReadBackWritten)
{
    PhysMem m(1 << 20);
    m.writeT<std::uint64_t>(128, 0xdeadbeefcafef00dULL);
    EXPECT_EQ(m.readT<std::uint64_t>(128), 0xdeadbeefcafef00dULL);
}

TEST(PhysMem, CrossChunkAccess)
{
    // Chunk size is 1 MiB; write a buffer straddling the boundary.
    PhysMem m(4ull << 20);
    std::vector<std::uint8_t> src(4096);
    for (std::size_t i = 0; i < src.size(); ++i)
        src[i] = static_cast<std::uint8_t>(i * 13);
    const std::uint64_t addr = (1ull << 20) - 1000;
    m.write(addr, src.data(), src.size());
    std::vector<std::uint8_t> dst(src.size());
    m.read(addr, dst.data(), dst.size());
    EXPECT_EQ(src, dst);
}

TEST(PhysMem, SparseChunksOnlyMaterializeWhenTouched)
{
    // A 64 GB space must construct without allocating 64 GB.
    PhysMem m(64ull << 30);
    m.writeT<std::uint32_t>(48ull << 30, 7);
    EXPECT_EQ(m.readT<std::uint32_t>(48ull << 30), 7u);
}

TEST(PhysMem, FetchAdd64)
{
    PhysMem m(1 << 16);
    m.writeT<std::uint64_t>(64, 100);
    EXPECT_EQ(m.fetchAdd64(64, 5), 100u);
    EXPECT_EQ(m.fetchAdd64(64, 5), 105u);
    EXPECT_EQ(m.readT<std::uint64_t>(64), 110u);
}

TEST(PhysMem, CompareSwap64SucceedsOnMatch)
{
    PhysMem m(1 << 16);
    m.writeT<std::uint64_t>(8, 42);
    EXPECT_EQ(m.compareSwap64(8, 42, 77), 42u);
    EXPECT_EQ(m.readT<std::uint64_t>(8), 77u);
}

TEST(PhysMem, CompareSwap64FailsOnMismatch)
{
    PhysMem m(1 << 16);
    m.writeT<std::uint64_t>(8, 42);
    EXPECT_EQ(m.compareSwap64(8, 41, 77), 42u);
    EXPECT_EQ(m.readT<std::uint64_t>(8), 42u);
}

TEST(PhysMem, FillSetsRange)
{
    PhysMem m(1 << 16);
    m.fill(100, 0xab, 300);
    for (std::uint64_t a = 100; a < 400; ++a) {
        std::uint8_t b;
        m.read(a, &b, 1);
        EXPECT_EQ(b, 0xab);
    }
    std::uint8_t before, after;
    m.read(99, &before, 1);
    m.read(400, &after, 1);
    EXPECT_EQ(before, 0);
    EXPECT_EQ(after, 0);
}

TEST(PhysMemDeathTest, OutOfRangePanics)
{
    PhysMem m(1024);
    std::uint8_t b = 0;
    EXPECT_DEATH(m.read(1024, &b, 1), "out of range");
    EXPECT_DEATH(m.write(1020, &b, 8), "out of range");
}

} // namespace
