/**
 * @file
 * Unit tests for RMC building blocks: TLB, MAQ (store-to-load forwarding,
 * capacity), Context Table + CT$, page walker, queue-pair layouts.
 */

#include <gtest/gtest.h>

#include "mem/cache.hh"
#include "mem/dram.hh"
#include "mem/phys_mem.hh"
#include "rmc/context_table.hh"
#include "rmc/maq.hh"
#include "rmc/page_walker.hh"
#include "rmc/queue_pair.hh"
#include "rmc/tlb.hh"
#include "sim/simulation.hh"

namespace {

using namespace sonuma;

TEST(QueuePairLayout, RingCursorPhaseTogglesPerLap)
{
    rmc::RingCursor c(4);
    EXPECT_EQ(c.expectedPhase(), 1); // lap 0
    for (int i = 0; i < 4; ++i)
        c.advance();
    EXPECT_EQ(c.index(), 0u);
    EXPECT_EQ(c.expectedPhase(), 0); // lap 1
    for (int i = 0; i < 4; ++i)
        c.advance();
    EXPECT_EQ(c.expectedPhase(), 1); // lap 2
}

TEST(QueuePairLayout, EntryAddressing)
{
    rmc::QpDescriptor qp;
    qp.wqBase = 0x10000;
    qp.cqBase = 0x20000;
    qp.entries = 64;
    EXPECT_EQ(qp.wqEntryVa(0), 0x10000u);
    EXPECT_EQ(qp.wqEntryVa(3), 0x10000u + 3 * 64);
    EXPECT_EQ(qp.cqEntryVa(3), 0x20000u + 3 * 8);
}

TEST(Tlb, HitAfterInsert)
{
    sim::StatRegistry stats;
    rmc::Tlb tlb(stats, "tlb", 4);
    EXPECT_FALSE(tlb.lookup(1, 0x4000).has_value());
    tlb.insert(1, 0x4000, 0x80000);
    auto pa = tlb.lookup(1, 0x4000 + 17);
    ASSERT_TRUE(pa.has_value());
    EXPECT_EQ(*pa, 0x80000u + 17);
    EXPECT_EQ(tlb.hitCount(), 1u);
    EXPECT_EQ(tlb.missCount(), 1u);
}

TEST(Tlb, TaggedByContext)
{
    sim::StatRegistry stats;
    rmc::Tlb tlb(stats, "tlb", 4);
    tlb.insert(1, 0x4000, 0x80000);
    EXPECT_FALSE(tlb.lookup(2, 0x4000).has_value());
}

TEST(Tlb, LruEviction)
{
    sim::StatRegistry stats;
    rmc::Tlb tlb(stats, "tlb", 2);
    tlb.insert(0, 0x0000, 0x10000);
    tlb.insert(0, 0x2000, 0x20000);
    tlb.lookup(0, 0x0000);          // refresh first entry
    tlb.insert(0, 0x4000, 0x30000); // evicts vpn of 0x2000
    EXPECT_TRUE(tlb.lookup(0, 0x0000).has_value());
    EXPECT_FALSE(tlb.lookup(0, 0x2000).has_value());
    EXPECT_TRUE(tlb.lookup(0, 0x4000).has_value());
}

TEST(Tlb, FlushCtxOnlyDropsThatContext)
{
    sim::StatRegistry stats;
    rmc::Tlb tlb(stats, "tlb", 8);
    tlb.insert(1, 0x2000, 0x10000);
    tlb.insert(2, 0x2000, 0x20000);
    tlb.flushCtx(1);
    EXPECT_FALSE(tlb.lookup(1, 0x2000).has_value());
    EXPECT_TRUE(tlb.lookup(2, 0x2000).has_value());
}

struct MaqFixture : public ::testing::Test
{
    sim::Simulation sim;
    mem::DramChannel dram{sim.eq(), sim.stats(), "dram", {}};
    mem::L2Cache l2{sim.eq(), sim.stats(), "l2", {}, dram};
    mem::L1Cache l1{sim.eq(), sim.stats(), "l1", {}, l2};
    rmc::Maq maq{sim.eq(), sim.stats(), "maq", l1, 4};
};

TEST_F(MaqFixture, CompletesAccesses)
{
    int done = 0;
    maq.submit(0x1000, false, false, [&] { ++done; });
    maq.submit(0x2000, true, false, [&] { ++done; });
    sim.run();
    EXPECT_EQ(done, 2);
}

TEST_F(MaqFixture, StoreToLoadForwarding)
{
    int order = 0;
    int storeDone = 0, loadDone = 0;
    maq.submit(0x1000, true, false, [&] { storeDone = ++order; });
    maq.submit(0x1000, false, false, [&] { loadDone = ++order; });
    sim.run();
    EXPECT_EQ(maq.forwardCount(), 1u);
    // The forwarded load completes with (after) the store, without a
    // second L1 access.
    EXPECT_EQ(storeDone, 1);
    EXPECT_EQ(loadDone, 2);
    EXPECT_EQ(l1.hits() + l1.misses(), 1u);
}

TEST_F(MaqFixture, CapacityBoundsInflight)
{
    // 8 accesses into a 4-entry MAQ: all complete, stalls recorded.
    int done = 0;
    for (int i = 0; i < 8; ++i)
        maq.submit(0x1000 + static_cast<std::uint64_t>(i) * 4096, false,
                   false, [&] { ++done; });
    EXPECT_LE(maq.inflight(), 4u);
    sim.run();
    EXPECT_EQ(done, 8);
    EXPECT_GT(sim.stats().counter("maq.stalls")->value(), 0u);
}

TEST(ContextTable, InstallLookupRemove)
{
    sim::StatRegistry stats;
    rmc::ContextTable ct(stats, "ct", 0x1000, 8, 2);
    EXPECT_EQ(ct.entry(3), nullptr);
    rmc::CtEntry e;
    e.segBase = 0x100000;
    e.segBytes = 1 << 20;
    e.ptRoot = 0x2000;
    ct.install(3, e);
    ASSERT_NE(ct.entry(3), nullptr);
    EXPECT_EQ(ct.entry(3)->segBase, 0x100000u);
    ct.remove(3);
    EXPECT_EQ(ct.entry(3), nullptr);
}

TEST(ContextTable, EntryAddressForTimingCharges)
{
    sim::StatRegistry stats;
    rmc::ContextTable ct(stats, "ct", 0x8000, 8, 2);
    EXPECT_EQ(ct.entryAddr(0), 0x8000u);
    EXPECT_EQ(ct.entryAddr(5), 0x8000u + 5 * rmc::kCtEntryBytes);
}

TEST(ContextTable, CtCacheHitsAfterFill)
{
    sim::StatRegistry stats;
    rmc::ContextTable ct(stats, "ct", 0, 8, 2);
    rmc::CtEntry e;
    e.segBytes = 64;
    ct.install(1, e);
    EXPECT_FALSE(ct.cacheLookup(1)); // cold
    ct.fill(1);
    EXPECT_TRUE(ct.cacheLookup(1));
    EXPECT_EQ(ct.cacheHits(), 1u);
    EXPECT_EQ(ct.cacheMisses(), 1u);
}

TEST(ContextTable, InstallInvalidatesCache)
{
    sim::StatRegistry stats;
    rmc::ContextTable ct(stats, "ct", 0, 8, 2);
    rmc::CtEntry e;
    ct.install(1, e);
    ct.fill(1);
    ASSERT_TRUE(ct.cacheLookup(1));
    ct.install(1, e); // driver update behind the CT$
    EXPECT_FALSE(ct.cacheLookup(1));
}

TEST(ContextTable, DisabledCacheAlwaysMisses)
{
    sim::StatRegistry stats;
    rmc::ContextTable ct(stats, "ct", 0, 8, 2);
    rmc::CtEntry e;
    ct.install(1, e);
    ct.setCacheEnabled(false);
    ct.fill(1);
    EXPECT_FALSE(ct.cacheLookup(1));
}

struct WalkerFixture : public ::testing::Test
{
    sim::Simulation sim;
    mem::PhysMem phys{64ull << 20};
    vm::FrameAllocator frames{0, 64ull << 20};
    vm::PageTable pt{phys, frames};
    mem::DramChannel dram{sim.eq(), sim.stats(), "dram", {}};
    mem::L2Cache l2{sim.eq(), sim.stats(), "l2", {}, dram};
    mem::L1Cache l1{sim.eq(), sim.stats(), "l1", {}, l2};
    rmc::Maq maq{sim.eq(), sim.stats(), "maq", l1, 32};
    rmc::Tlb tlb{sim.stats(), "tlb", 4};
    rmc::PageWalker walker{sim.stats(), "walker", phys, maq, tlb};
};

TEST_F(WalkerFixture, WalkFillsTlb)
{
    const vm::VAddr va = 0x40000;
    const auto frame = frames.alloc();
    pt.map(va, frame);

    std::optional<mem::PAddr> out;
    sim.spawn([](WalkerFixture *f, vm::VAddr va,
                 std::optional<mem::PAddr> *out) -> sim::Task {
        co_await f->walker.translate(7, va, f->pt.root(), out);
    }(this, va + 5, &out));
    sim.run();
    ASSERT_TRUE(out.has_value());
    EXPECT_EQ(*out, frame + 5);
    EXPECT_EQ(walker.walkCount(), 1u);
    // Second translation: TLB hit, no new walk.
    std::optional<mem::PAddr> out2;
    sim.spawn([](WalkerFixture *f, vm::VAddr va,
                 std::optional<mem::PAddr> *out) -> sim::Task {
        co_await f->walker.translate(7, va, f->pt.root(), out);
    }(this, va + 9, &out2));
    sim.run();
    ASSERT_TRUE(out2.has_value());
    EXPECT_EQ(*out2, frame + 9);
    EXPECT_EQ(walker.walkCount(), 1u);
}

TEST_F(WalkerFixture, UnmappedVaYieldsNullopt)
{
    std::optional<mem::PAddr> out = mem::PAddr{123};
    sim.spawn([](WalkerFixture *f,
                 std::optional<mem::PAddr> *out) -> sim::Task {
        co_await f->walker.translate(7, 0x123000, f->pt.root(), out);
    }(this, &out));
    sim.run();
    EXPECT_FALSE(out.has_value());
}

TEST_F(WalkerFixture, WalkChargesDependentMemoryAccesses)
{
    const vm::VAddr va = 0x40000;
    pt.map(va, frames.alloc());
    const sim::Tick start = sim.now();
    sim.spawn([](WalkerFixture *f, vm::VAddr va) -> sim::Task {
        std::optional<mem::PAddr> out;
        co_await f->walker.translate(7, va, f->pt.root(), &out);
    }(this, va));
    sim.run();
    // Three dependent PTE loads, each at least an L1 access; cold ones
    // go to DRAM, so the walk takes >= ~100 ns.
    EXPECT_GT(sim.now() - start, sim::nsToTicks(100));
}

} // namespace
