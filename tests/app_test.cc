/**
 * @file
 * Tests for the application suite: graph generation/partitioning, the
 * three PageRank implementations against the host reference, and the
 * one-sided key-value store.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "api/testbed.hh"
#include "app/graph.hh"
#include "app/kv_store.hh"
#include "app/pagerank.hh"
#include "node/cluster.hh"
#include "sim/simulation.hh"

namespace {

using namespace sonuma;
using namespace sonuma::app;

double
maxAbsDiff(const std::vector<double> &a, const std::vector<double> &b)
{
    double m = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i)
        m = std::max(m, std::fabs(a[i] - b[i]));
    return m;
}

TEST(GraphGen, PowerLawShape)
{
    sim::Rng rng(3);
    Graph g = generatePowerLaw(rng, 2000, 8);
    EXPECT_EQ(g.numVertices, 2000u);
    EXPECT_GE(g.numEdges(), 2000u * 8);
    // Power law: the top-1% out-degree vertices own a large edge share.
    std::vector<std::uint32_t> degrees(g.outDegree);
    std::sort(degrees.rbegin(), degrees.rend());
    std::uint64_t top = 0, total = 0;
    for (std::size_t i = 0; i < degrees.size(); ++i) {
        total += degrees[i];
        if (i < degrees.size() / 100)
            top += degrees[i];
    }
    EXPECT_GT(static_cast<double>(top) / static_cast<double>(total), 0.15);
}

TEST(GraphGen, Deterministic)
{
    sim::Rng a(5), b(5);
    Graph g1 = generatePowerLaw(a, 500, 4);
    Graph g2 = generatePowerLaw(b, 500, 4);
    EXPECT_EQ(g1.inNeighbor, g2.inNeighbor);
    EXPECT_EQ(g1.rowPtr, g2.rowPtr);
}

TEST(GraphGen, CsrIsConsistent)
{
    sim::Rng rng(7);
    Graph g = generateUniform(rng, 300, 6);
    EXPECT_EQ(g.rowPtr.front(), 0u);
    EXPECT_EQ(g.rowPtr.back(), g.numEdges());
    std::uint64_t outSum = 0;
    for (auto d : g.outDegree)
        outSum += d;
    EXPECT_GE(outSum, g.numEdges()); // >= because of the degree-1 fixup
    for (auto u : g.inNeighbor)
        EXPECT_LT(u, g.numVertices);
}

TEST(PartitionTest, EqualCardinalityAndConsistency)
{
    sim::Rng rng(11);
    Partition p = randomPartition(rng, 1000, 8);
    for (std::uint32_t part = 0; part < 8; ++part)
        EXPECT_EQ(p.members[part].size(), 125u);
    for (std::uint32_t v = 0; v < 1000; ++v)
        EXPECT_EQ(p.members[p.owner[v]][p.localIndex[v]], v);
}

TEST(PartitionTest, RandomPartitionHasExpectedCrossFraction)
{
    sim::Rng rng(13);
    Graph g = generateUniform(rng, 1000, 8);
    Partition p = randomPartition(rng, 1000, 4);
    // Random placement: cross fraction ~ 1 - 1/parts = 0.75.
    EXPECT_NEAR(p.crossEdgeFraction(g), 0.75, 0.05);
}

TEST(ReferencePageRank, RanksSumToOne)
{
    sim::Rng rng(17);
    Graph g = generatePowerLaw(rng, 500, 6);
    auto ranks = referencePageRank(g, 10);
    double sum = 0;
    for (auto r : ranks)
        sum += r;
    // With the out-degree fixup some mass leaks; sum stays near 1.
    EXPECT_GT(sum, 0.5);
    EXPECT_LT(sum, 1.1);
}

struct PageRankFixture : public ::testing::Test
{
    Graph g;
    PageRankConfig cfg;

    void
    SetUp() override
    {
        sim::Rng rng(23);
        g = generatePowerLaw(rng, 1200, 6);
        cfg.supersteps = 2;
        cfg.seed = 42;
    }
};

TEST_F(PageRankFixture, ShmMatchesReferenceExactly)
{
    const auto ref = referencePageRank(g, cfg.supersteps);
    const auto run = runPageRankShm(g, 4, cfg);
    EXPECT_LT(maxAbsDiff(run.ranks, ref), 1e-12);
    EXPECT_GT(run.elapsed, 0u);
    EXPECT_EQ(run.remoteOps, 0u);
}

TEST_F(PageRankFixture, BulkMatchesReference)
{
    const auto ref = referencePageRank(g, cfg.supersteps);
    sim::Rng rng(29);
    const auto part = randomPartition(rng, g.numVertices, 4);
    const auto run = runPageRankBulk(g, part, cfg);
    EXPECT_LT(maxAbsDiff(run.ranks, ref), 1e-12);
    EXPECT_GT(run.remoteOps, 0u);
}

TEST_F(PageRankFixture, FineGrainMatchesReference)
{
    const auto ref = referencePageRank(g, cfg.supersteps);
    sim::Rng rng(31);
    const auto part = randomPartition(rng, g.numVertices, 4);
    const auto run = runPageRankFine(g, part, cfg);
    // Floating-point summation order differs (async accumulation).
    EXPECT_LT(maxAbsDiff(run.ranks, ref), 1e-9);
    // Remote ops scale with cross-partition edges, not vertices (§7.5).
    EXPECT_GT(run.remoteOps, g.numVertices);
}

TEST_F(PageRankFixture, MoreNodesRunFasterThanOne)
{
    cfg.supersteps = 1;
    const auto t1 = runPageRankShm(g, 1, cfg).elapsed;
    sim::Rng rng(37);
    const auto part4 = randomPartition(rng, g.numVertices, 4);
    const auto bulk4 = runPageRankBulk(g, part4, cfg).elapsed;
    EXPECT_LT(bulk4, t1);
    // Speedup should be material (not linear: at this tiny test scale
    // the per-superstep pulls and barriers are a large fixed cost; the
    // fig9 bench validates the paper-scale shape).
    EXPECT_GT(static_cast<double>(t1) / static_cast<double>(bulk4), 1.3);
}

TEST_F(PageRankFixture, FineGrainSlowerThanBulk)
{
    cfg.supersteps = 1;
    sim::Rng rng(41);
    const auto part = randomPartition(rng, g.numVertices, 4);
    const auto bulk = runPageRankBulk(g, part, cfg).elapsed;
    const auto fine = runPageRankFine(g, part, cfg).elapsed;
    // Paper Fig. 9: fine-grain has noticeably greater overheads.
    EXPECT_GT(fine, bulk);
}

struct KvFixture : public ::testing::Test
{
    std::unique_ptr<api::TestBed> bed;
    std::unique_ptr<KvServer> server;
    std::unique_ptr<KvClient> client;
    sim::Simulation *simp = nullptr;
    static constexpr std::uint32_t kBuckets = 1024;

    void
    SetUp() override
    {
        bed = std::make_unique<api::TestBed>(
            api::ClusterSpec{}
                .nodes(2)
                .context(1)
                .segmentPerNode(KvServer::tableBytes(kBuckets))
                .seed(5));
        simp = &bed->sim();
        server = std::make_unique<KvServer>(bed->session(0),
                                            bed->segBase(0), 0, kBuckets);
        client = std::make_unique<KvClient>(bed->session(1), 0, 0,
                                            kBuckets);
    }

    sim::Simulation &sim() { return *simp; }
};

TEST_F(KvFixture, PutThenRemoteGet)
{
    sim().spawn([](KvFixture *f) -> sim::Task {
        const char val[] = "hello sonuma kv";
        EXPECT_TRUE(co_await f->server->put(1234, val, sizeof(val)));
        char got[kKvValueBytes] = {};
        EXPECT_TRUE(co_await f->client->get(1234, got));
        EXPECT_STREQ(got, "hello sonuma kv");
    }(this));
    sim().run();
}

TEST_F(KvFixture, MissingKeyNotFound)
{
    sim().spawn([](KvFixture *f) -> sim::Task {
        char got[kKvValueBytes];
        EXPECT_FALSE(co_await f->client->get(999, got));
    }(this));
    sim().run();
}

TEST_F(KvFixture, ManyKeysSurviveProbing)
{
    sim().spawn([](KvFixture *f) -> sim::Task {
        const int kKeys = 400; // ~40% load factor
        for (int k = 0; k < kKeys; ++k) {
            std::uint64_t v = static_cast<std::uint64_t>(k) * 31 + 7;
            EXPECT_TRUE(co_await f->server->put(
                static_cast<std::uint64_t>(k), &v, sizeof(v)));
        }
        for (int k = 0; k < kKeys; ++k) {
            std::uint8_t got[kKvValueBytes];
            EXPECT_TRUE(co_await f->client->get(
                static_cast<std::uint64_t>(k), got))
                << k;
            std::uint64_t v;
            std::memcpy(&v, got, sizeof(v));
            EXPECT_EQ(v, static_cast<std::uint64_t>(k) * 31 + 7);
        }
    }(this));
    sim().run();
}

TEST_F(KvFixture, UpdateIsVisibleAndErasable)
{
    sim().spawn([](KvFixture *f) -> sim::Task {
        std::uint64_t v1 = 111, v2 = 222;
        EXPECT_TRUE(co_await f->server->put(5, &v1, sizeof(v1)));
        EXPECT_TRUE(co_await f->server->put(5, &v2, sizeof(v2)));
        std::uint8_t got[kKvValueBytes];
        EXPECT_TRUE(co_await f->client->get(5, got));
        std::uint64_t v;
        std::memcpy(&v, got, sizeof(v));
        EXPECT_EQ(v, 222u);
        EXPECT_TRUE(co_await f->server->erase(5));
        EXPECT_FALSE(co_await f->client->get(5, got));
    }(this));
    sim().run();
}

TEST_F(KvFixture, GetLatencyIsAFewRemoteReads)
{
    sim().spawn([](KvFixture *f) -> sim::Task {
        std::uint64_t v = 42;
        EXPECT_TRUE(co_await f->server->put(77, &v, sizeof(v)));
        std::uint8_t got[kKvValueBytes];
        // Warm up, then time one GET.
        co_await f->client->get(77, got);
        const sim::Tick t0 = f->sim().now();
        const bool found = co_await f->client->get(77, got);
        const double ns = sim::ticksToNs(f->sim().now() - t0);
        EXPECT_TRUE(found);
        // One or two ~300 ns remote reads — far below the ~5 us the
        // paper quotes for RDMA-based KV stores (§2.1).
        EXPECT_LT(ns, 1500.0);
    }(this));
    sim().run();
}

} // namespace
