/**
 * @file
 * Unit tests for sim::Callback: inline vs heap storage around the SBO
 * threshold, move-only captures, move semantics, and eager release of
 * captured resources.
 */

#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <memory>
#include <utility>

#include "sim/callback.hh"

namespace {

using sonuma::sim::Callback;

TEST(Callback, DefaultIsEmpty)
{
    Callback cb;
    EXPECT_FALSE(static_cast<bool>(cb));
    Callback nullCb = nullptr;
    EXPECT_FALSE(static_cast<bool>(nullCb));
}

TEST(Callback, InvokesSmallCapture)
{
    int hits = 0;
    Callback cb = [&hits] { ++hits; };
    ASSERT_TRUE(static_cast<bool>(cb));
    cb();
    cb();
    EXPECT_EQ(hits, 2);
}

TEST(Callback, CaptureExactlyAtThresholdStaysInline)
{
    // 48-byte capture: exactly kInlineBytes.
    struct Exactly48
    {
        std::array<std::uint64_t, 6> v;
    };
    static_assert(sizeof(Exactly48) == Callback::kInlineBytes);
    std::uint64_t sum = 0;
    Exactly48 st{{1, 2, 3, 4, 5, 6}};
    std::uint64_t *out = &sum;
    Callback cb = [st, out] {
        for (auto x : st.v)
            *out += x;
    };
    // Capture is st (48) + out (8) = 56 > 48: heap. Shrink to fit:
    EXPECT_FALSE(cb.isInline());

    static std::uint64_t g_sum;
    g_sum = 0;
    struct Exactly40
    {
        std::array<std::uint64_t, 5> v;
    };
    Exactly40 st40{{1, 2, 3, 4, 5}};
    Callback cb40 = [st40] {
        for (auto x : st40.v)
            g_sum += x;
    };
    EXPECT_TRUE(cb40.isInline());
    cb40();
    EXPECT_EQ(g_sum, 15u);
}

TEST(Callback, CaptureAboveThresholdUsesHeapAndWorks)
{
    struct Big
    {
        std::array<std::uint64_t, 16> v{}; // 128 B
    };
    std::uint64_t sum = 0;
    Big big;
    big.v.fill(3);
    Callback cb = [big, &sum] {
        for (auto x : big.v)
            sum += x;
    };
    EXPECT_FALSE(cb.isInline());
    cb();
    EXPECT_EQ(sum, 48u);
}

TEST(Callback, MoveOnlyCaptureInline)
{
    auto p = std::make_unique<int>(41);
    int result = 0;
    Callback cb = [p = std::move(p), &result] { result = *p + 1; };
    EXPECT_TRUE(cb.isInline());
    cb();
    EXPECT_EQ(result, 42);
}

TEST(Callback, MoveOnlyCaptureHeap)
{
    auto p = std::make_unique<int>(1);
    std::array<std::uint64_t, 8> pad{};
    int result = 0;
    Callback cb = [p = std::move(p), pad, &result] {
        result = *p + static_cast<int>(pad[0]);
    };
    EXPECT_FALSE(cb.isInline());
    cb();
    EXPECT_EQ(result, 1);
}

TEST(Callback, MoveTransfersOwnership)
{
    int hits = 0;
    Callback a = [&hits] { ++hits; };
    Callback b = std::move(a);
    EXPECT_FALSE(static_cast<bool>(a));
    ASSERT_TRUE(static_cast<bool>(b));
    b();
    EXPECT_EQ(hits, 1);

    Callback c;
    c = std::move(b);
    EXPECT_FALSE(static_cast<bool>(b));
    c();
    EXPECT_EQ(hits, 2);
}

TEST(Callback, MoveAssignReleasesPreviousTarget)
{
    auto tracked = std::make_shared<int>(7);
    std::weak_ptr<int> watch = tracked;
    Callback cb = [tracked] { (void)*tracked; };
    tracked.reset();
    EXPECT_FALSE(watch.expired());
    cb = [] {};
    EXPECT_TRUE(watch.expired()); // old captures released on reassign
}

TEST(Callback, ResetReleasesCapturedResources)
{
    auto tracked = std::make_shared<int>(7);
    std::weak_ptr<int> watch = tracked;
    Callback cb = [tracked] { (void)*tracked; };
    tracked.reset();
    EXPECT_FALSE(watch.expired());
    cb.reset();
    EXPECT_TRUE(watch.expired());
    EXPECT_FALSE(static_cast<bool>(cb));
}

TEST(Callback, DestructorReleasesHeapTarget)
{
    auto tracked = std::make_shared<int>(1);
    std::weak_ptr<int> watch = tracked;
    {
        std::array<std::uint64_t, 8> pad{};
        Callback cb = [tracked, pad] { (void)pad; };
        EXPECT_FALSE(cb.isInline());
        tracked.reset();
        EXPECT_FALSE(watch.expired());
    }
    EXPECT_TRUE(watch.expired());
}

TEST(Callback, NullptrAssignmentClears)
{
    Callback cb = [] {};
    EXPECT_TRUE(static_cast<bool>(cb));
    cb = nullptr;
    EXPECT_FALSE(static_cast<bool>(cb));
}

TEST(Callback, NonTriviallyCopyableInlineCaptureDestructs)
{
    auto tracked = std::make_shared<int>(5);
    std::weak_ptr<int> watch = tracked;
    {
        Callback cb = [tracked] { (void)*tracked; };
        EXPECT_TRUE(cb.isInline()); // shared_ptr capture fits inline
        tracked.reset();
        Callback moved = std::move(cb);
        EXPECT_FALSE(watch.expired());
        moved();
    }
    EXPECT_TRUE(watch.expired());
}

} // namespace
