/**
 * @file
 * sim::FlatMap unit tests: the open-addressed map behind the L2
 * directory. Correctness across insert/find/erase/tombstone reuse and
 * growth, plus the steady-state no-allocation contract it exists for.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <unordered_map>

#include "sim/flat_map.hh"

namespace {

using sonuma::sim::FlatMap;

TEST(FlatMap, InsertFindEraseBasics)
{
    FlatMap<std::uint64_t, int> m;
    EXPECT_TRUE(m.empty());
    EXPECT_EQ(m.find(42), nullptr);

    m.insert(42, 7);
    ASSERT_NE(m.find(42), nullptr);
    EXPECT_EQ(*m.find(42), 7);
    EXPECT_EQ(m.size(), 1u);

    // Insert on an existing key replaces the value, not the count.
    m.insert(42, 9);
    EXPECT_EQ(*m.find(42), 9);
    EXPECT_EQ(m.size(), 1u);
    EXPECT_EQ(m.get(42), 9);

    EXPECT_TRUE(m.erase(42));
    EXPECT_FALSE(m.erase(42));
    EXPECT_EQ(m.find(42), nullptr);
    EXPECT_TRUE(m.empty());
}

TEST(FlatMap, GrowthAndTombstonesAgreeWithReferenceMap)
{
    FlatMap<std::uint64_t, std::uint64_t> m(4);
    std::unordered_map<std::uint64_t, std::uint64_t> ref;

    // Cache-line-like keys (64-byte strides) with interleaved erases:
    // the exact pattern that exercises tombstone reuse under probing.
    for (std::uint64_t i = 0; i < 4000; ++i) {
        const std::uint64_t key = (i * 64) ^ ((i % 7) << 20);
        m.insert(key, i);
        ref[key] = i;
        if (i % 3 == 0) {
            const std::uint64_t victim = ((i / 2) * 64) ^
                                         (((i / 2) % 7) << 20);
            EXPECT_EQ(m.erase(victim), ref.erase(victim) == 1);
        }
    }
    EXPECT_EQ(m.size(), ref.size());
    for (const auto &[k, v] : ref) {
        ASSERT_NE(m.find(k), nullptr) << k;
        EXPECT_EQ(*m.find(k), v);
    }
}

TEST(FlatMap, SteadyStateChurnDoesNotGrowStorage)
{
    FlatMap<std::uint64_t, int> m;
    for (std::uint64_t i = 0; i < 64; ++i)
        m.insert(i * 64, 1);
    // Erase/insert churn over a fixed working set must stabilize: the
    // map's job is exactly to absorb this without touching the
    // allocator (verified end-to-end under the alloc-counting hook in
    // session_stress_test; here we pin the size bookkeeping).
    for (int round = 0; round < 1000; ++round) {
        const std::uint64_t k = std::uint64_t(round % 64) * 64;
        EXPECT_TRUE(m.erase(k));
        m.insert(k, round);
        EXPECT_EQ(m.size(), 64u);
    }
    for (std::uint64_t i = 0; i < 64; ++i)
        EXPECT_NE(m.find(i * 64), nullptr);
}

} // namespace
