/**
 * @file
 * Determinism regression tests: two identically-seeded runs of the
 * fig7-style remote-read workload and the fig8-style send/receive
 * workload must produce byte-identical statistics dumps. Guards the
 * event queue's same-tick FIFO ordering and the fabric's ring-buffered
 * drain path against nondeterminism.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "api/sweep.hh"
#include "api/workload.hh"
#include "app/pagerank.hh"
#include "bench/common.hh"

namespace {

using namespace sonuma;
using api::TestBed;

sim::Task
remoteReadWorker(api::RmcSession *s, vm::VAddr buf, std::uint64_t segBytes,
                 int iters)
{
    const std::uint64_t span = segBytes / 2;
    for (int i = 0; i < iters; ++i)
        co_await s->read(0, (std::uint64_t(i) * 64) % span, buf, 64);
}

/** Run the fig7-style workload and render the full stats dump. */
std::string
runRemoteReadStats(std::uint64_t seed)
{
    TestBed bed = bench::twoNodeBed(rmc::RmcParams::simulatedHardware(),
                                    1ull << 20, seed);
    auto &session = bed.session(1);
    bed.spawn(remoteReadWorker(&session, bed.segBase(1), bed.segBytes(),
                               200));
    bed.run();
    std::ostringstream os;
    os << "finalTick=" << bed.sim().now() << "\n";
    bed.sim().stats().dump(os);
    return os.str();
}

TEST(Determinism, RemoteReadStatsDumpIsReproducible)
{
    const std::string a = runRemoteReadStats(42);
    const std::string b = runRemoteReadStats(42);
    EXPECT_FALSE(a.empty());
    EXPECT_EQ(a, b) << "identical seeds must give identical stats dumps";
}

sim::Task
sendWorker(api::RmcSession *s, vm::VAddr buf, int iters)
{
    for (int i = 0; i < iters; ++i) {
        // Remote write of one line, fig8-style one-way messaging.
        co_await s->write(0, 4096 + std::uint64_t(i % 8) * 64, buf, 64);
    }
}

std::string
runSendReceiveStats(std::uint64_t seed)
{
    TestBed bed = bench::twoNodeBed(rmc::RmcParams::simulatedHardware(),
                                    1ull << 20, seed);
    auto &session = bed.session(1);
    bed.spawn(sendWorker(&session, bed.segBase(1), 200));
    bed.run();
    std::ostringstream os;
    os << "finalTick=" << bed.sim().now() << "\n";
    bed.sim().stats().dump(os);
    return os.str();
}

TEST(Determinism, SendReceiveStatsDumpIsReproducible)
{
    const std::string a = runSendReceiveStats(7);
    const std::string b = runSendReceiveStats(7);
    EXPECT_FALSE(a.empty());
    EXPECT_EQ(a, b);
}

TEST(Determinism, BackToBackRunsInOneProcessMatchFreshState)
{
    // Pools and thread-local state must not leak timing between runs:
    // run A, then B, then A again; the two A dumps must match.
    const std::string a1 = runRemoteReadStats(123);
    const std::string b = runSendReceiveStats(9);
    const std::string a2 = runRemoteReadStats(123);
    EXPECT_NE(a1, b);
    EXPECT_EQ(a1, a2);
}

/**
 * Multi-QP session with doorbell batching: round-robin QP selection,
 * per-QP doorbell coalescing and the burst-limited RGP arbitration are
 * all deterministic — identical seeds must still give byte-identical
 * stats dumps.
 */
std::string
runMultiQpBatchedStats(std::uint64_t seed)
{
    auto rp = rmc::RmcParams::simulatedHardware();
    rp.qpCount = 4;
    rp.qpEntries = 8;
    TestBed bed(api::ClusterSpec{}
                    .nodes(2)
                    .rmc(rp)
                    .doorbellBatching(true)
                    .segmentPerNode(1ull << 20)
                    .seed(seed));
    auto &session = bed.session(1);
    const vm::VAddr buf =
        session.allocBuffer(std::uint64_t(session.queueDepth()) * 64);
    bed.spawn([](api::RmcSession *s, vm::VAddr buf) -> sim::Task {
        // Bursts of async posts (batched doorbells, mixed explicit and
        // round-robin QPs) separated by flush/drain rendezvous.
        for (int round = 0; round < 25; ++round) {
            for (std::uint32_t i = 0; i < s->queueDepth(); ++i) {
                const std::uint32_t qp =
                    i % 3 == 0 ? i % s->qpCount() : api::RmcSession::kAnyQp;
                (void)co_await s->readAsync(
                    0, (std::uint64_t(round) * 31 + i) * 64,
                    buf + std::uint64_t(s->nextSlot(qp)) * 64, 64, qp);
            }
            co_await s->drain();
        }
    }(&session, buf));
    bed.run();
    std::ostringstream os;
    os << "finalTick=" << bed.sim().now() << "\n";
    bed.sim().stats().dump(os);
    return os.str();
}

TEST(Determinism, MultiQpBatchedStatsDumpIsReproducible)
{
    const std::string a = runMultiQpBatchedStats(31);
    const std::string b = runMultiQpBatchedStats(31);
    EXPECT_FALSE(a.empty());
    EXPECT_EQ(a, b) << "multi-QP + doorbell batching must stay "
                       "deterministic";
    // Batching must actually have coalesced: strictly fewer doorbells
    // than WQ entries processed.
    const auto grab = [&a](const std::string &key) {
        const auto pos = a.find(key);
        EXPECT_NE(pos, std::string::npos) << key;
        return std::stoull(a.substr(
            a.find_first_of("0123456789", pos + key.size())));
    };
    EXPECT_LT(grab("node1.rmc.rgp.doorbells"),
              grab("node1.rmc.rgp.wqEntries"));
}

/**
 * The fig9 PageRank workload on the Workload runtime (graph
 * generation, random partition, fine-grain superstep loop with
 * barriers on a 3D torus): identical seeds must give byte-identical
 * stats dumps — the CI check behind the FIG9_*.json artifacts.
 */
std::string
runFig9PageRankStats(std::uint64_t seed)
{
    api::SweepConfig cfg;
    cfg.workload = "pagerank";
    cfg.pagerank.vertices = 256;
    cfg.pagerank.degree = 4;
    cfg.torusDims = {2, 2, 2};
    cfg.seed = seed;
    cfg.echo = false;

    // Drive through the SweepDriver so the whole artifact path is under
    // test, then dump the cell's JSON (the stats registry dies with the
    // cell's TestBed; its JSON projection is what regressions diff).
    sonuma::app::registerPageRankSweepWorkload();
    const auto cell = api::SweepDriver(cfg).runCell(
        8, sonuma::node::Topology::kTorus, 64, 16);
    std::ostringstream os;
    cell.writeJson(os);
    return os.str();
}

TEST(Determinism, Fig9PageRankCellIsReproducible)
{
    const std::string a = runFig9PageRankStats(11);
    const std::string b = runFig9PageRankStats(11);
    EXPECT_FALSE(a.empty());
    // host_seconds is wall time; mask it before comparing.
    const auto mask = [](std::string s) {
        const auto pos = s.find("\"host_seconds\"");
        return pos == std::string::npos ? s : s.substr(0, pos);
    };
    EXPECT_EQ(mask(a), mask(b))
        << "seeded fig9 pagerank cells must be byte-identical";
    EXPECT_NE(a.find("\"workload\": \"pagerank\""), std::string::npos);
}

/** Same property, one layer down: the full simulator stats dump. */
std::string
runFig9WorkloadStatsDump(std::uint64_t seed)
{
    using namespace sonuma::app;
    sim::Rng grng(5);
    const Graph g = generatePowerLaw(grng, 256, 4);
    sim::Rng prng(6);
    const Partition part = randomPartition(prng, g.numVertices, 8);
    PageRankConfig cfg;
    cfg.supersteps = 1;
    cfg.seed = seed;

    PageRankFineWorkload pr(g, part, cfg);
    TestBed bed(api::ClusterSpec{}
                    .nodes(8)
                    .torus(2, 2, 2)
                    .segmentPerNode(pr.segmentBytesNeeded())
                    .seed(seed));
    api::Workload wl(bed, "pagerank");
    pr.install(bed, wl);
    wl.run();
    std::ostringstream os;
    os << "finalTick=" << bed.sim().now() << "\n";
    bed.sim().stats().dump(os);
    return os.str();
}

TEST(Determinism, Fig9WorkloadStatsDumpIsReproducible)
{
    const std::string a = runFig9WorkloadStatsDump(17);
    const std::string b = runFig9WorkloadStatsDump(17);
    EXPECT_FALSE(a.empty());
    EXPECT_EQ(a, b) << "identical seeds must give identical stats dumps";
}

} // namespace
