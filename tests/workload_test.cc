/**
 * @file
 * Workload runtime + SweepDriver tests: one coroutine per node with
 * built-in barrier alignment, per-node stat scoping, elapsed() timing,
 * and sweep cells emitting schema-stable JSON.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "api/sweep.hh"
#include "api/workload.hh"
#include "app/pagerank.hh"
#include "sim/simulation.hh"

namespace {

using namespace sonuma;
using api::ClusterSpec;
using api::SweepConfig;
using api::SweepDriver;
using api::TestBed;
using api::Workload;
using api::operator""_KiB;

TEST(WorkloadTest, RunsBodyOnEveryNodeWithBarrierAlignment)
{
    TestBed bed(ClusterSpec{}.nodes(4).segmentPerNode(64_KiB).seed(21));
    Workload wl(bed);

    std::vector<sim::Tick> bodyStart(4, 0);
    int ran = 0;
    wl.onEachNode([&](Workload::NodeCtx &ctx) -> sim::Task {
        bodyStart[ctx.nodeId()] = ctx.sim().now();
        ++ran;
        // Do some real remote traffic from every node.
        auto &s = ctx.session();
        const vm::VAddr buf = s.allocBuffer(64);
        const auto peer =
            static_cast<sim::NodeId>((ctx.nodeId() + 1) % ctx.nodes());
        const api::OpResult r =
            co_await s.read(peer, ctx.dataOffset(), buf, 64);
        EXPECT_TRUE(r.ok());
        ctx.counter("reads").inc();
    });
    wl.run();

    EXPECT_EQ(ran, 4);
    EXPECT_GT(wl.elapsed(), 0u);
    // The start barrier aligns all bodies to (nearly) the same tick:
    // every body starts after the last arrival.
    for (std::uint32_t i = 0; i < 4; ++i)
        EXPECT_GT(bodyStart[i], 0u);
    // Per-node scoped counters exist and read back.
    for (std::uint32_t i = 0; i < 4; ++i) {
        const auto *c = bed.sim().stats().counter(
            "workload.node" + std::to_string(i) + ".reads");
        ASSERT_NE(c, nullptr) << i;
        EXPECT_EQ(c->value(), 1u);
    }
}

TEST(WorkloadTest, MidWorkloadBarrierKeepsNodesInLockstep)
{
    TestBed bed(ClusterSpec{}.nodes(3).segmentPerNode(64_KiB).seed(22));
    Workload wl(bed);
    std::vector<int> phase(3, 0);
    wl.onEachNode([&](Workload::NodeCtx &ctx) -> sim::Task {
        for (int r = 0; r < 4; ++r) {
            // Uneven compute, then barrier: nobody may be a full phase
            // ahead after the barrier.
            co_await sim::Delay(ctx.sim().eq(),
                                sim::usToTicks(1 + ctx.nodeId()));
            phase[ctx.nodeId()] = r;
            co_await ctx.barrier();
            for (int n = 0; n < 3; ++n)
                EXPECT_GE(phase[static_cast<std::size_t>(n)], r);
        }
    });
    wl.run();
}

TEST(WorkloadTest, RejectsSegmentsSmallerThanBarrierRegion)
{
    // 64 nodes * 64 B = 4 KiB barrier region > 1 KiB segment.
    TestBed bed(ClusterSpec{}.nodes(2).segmentPerNode(1_KiB).seed(23));
    (void)bed;
    TestBed small(ClusterSpec{}.nodes(2).segmentPerNode(64).seed(24));
    EXPECT_THROW(Workload wl(small), std::invalid_argument);
}

TEST(SweepDriverTest, TorusFactorizationIsNearSquare)
{
    EXPECT_EQ(SweepDriver::torusDimsFor(64),
              (std::vector<std::uint32_t>{8, 8}));
    EXPECT_EQ(SweepDriver::torusDimsFor(32),
              (std::vector<std::uint32_t>{4, 8}));
    EXPECT_EQ(SweepDriver::torusDimsFor(16),
              (std::vector<std::uint32_t>{4, 4}));
    EXPECT_EQ(SweepDriver::torusDimsFor(7),
              (std::vector<std::uint32_t>{1, 7}));
}

TEST(SweepDriverTest, CellMeasuresAndRendersSchemaStableJson)
{
    SweepConfig cfg;
    cfg.opsPerNode = 16;
    cfg.segmentBytes = 64_KiB;
    cfg.echo = false;
    SweepDriver driver(cfg);
    const auto cell = driver.runCell(4, node::Topology::kTorus, 64, 16);

    EXPECT_EQ(cell.nodes, 4u);
    EXPECT_EQ(cell.qpDepth, 16u);
    EXPECT_EQ(cell.ops, 4u * 16u);
    EXPECT_GT(cell.mops, 0.0);
    EXPECT_GT(cell.gbps, 0.0);
    EXPECT_GT(cell.meanLatencyNs, 100.0); // a remote read is ~300 ns
    EXPECT_GE(cell.p99LatencyNs, cell.meanLatencyNs);
    EXPECT_GT(cell.simMicros, 0.0);
    EXPECT_EQ(cell.label(), "n4_torus_2x2_rs64_qd16");

    std::ostringstream os;
    cell.writeJson(os);
    const std::string json = os.str();
    for (const char *key :
         {"\"bench\": \"sweep\"", "\"schema\": 1", "\"nodes\": 4",
          "\"topology\": \"torus_2x2\"", "\"request_bytes\": 64",
          "\"qp_depth\": 16", "\"ops\": 64", "\"mops\": ",
          "\"mean_latency_ns\": ", "\"sim_us\": "})
        EXPECT_NE(json.find(key), std::string::npos) << key;
}

TEST(SweepDriverTest, MatrixRunsEveryCellDeterministically)
{
    SweepConfig cfg;
    cfg.nodeCounts = {2, 4};
    cfg.requestSizes = {64, 256};
    cfg.qpDepths = {16};
    cfg.topologies = {node::Topology::kCrossbar};
    cfg.opsPerNode = 8;
    cfg.segmentBytes = 64_KiB;
    cfg.echo = false;

    auto a = SweepDriver(cfg).run();
    auto b = SweepDriver(cfg).run();
    ASSERT_EQ(a.size(), 4u);
    ASSERT_EQ(b.size(), 4u);
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].label(), b[i].label());
        // Same seed, same cell -> identical simulated timeline.
        EXPECT_EQ(a[i].simMicros, b[i].simMicros) << a[i].label();
        EXPECT_EQ(a[i].meanLatencyNs, b[i].meanLatencyNs);
    }
    // Bigger requests move more bytes per op: gbps must rise with size
    // at fixed depth.
    EXPECT_GT(a[1].gbps, a[0].gbps);
}

TEST(SweepDriverTest, TorusFactorizationIsNearCubicIn3d)
{
    EXPECT_EQ(SweepDriver::torusDimsFor(8, 3),
              (std::vector<std::uint32_t>{2, 2, 2}));
    EXPECT_EQ(SweepDriver::torusDimsFor(64, 3),
              (std::vector<std::uint32_t>{4, 4, 4}));
    EXPECT_EQ(SweepDriver::torusDimsFor(256, 3),
              (std::vector<std::uint32_t>{4, 8, 8}));
    EXPECT_EQ(SweepDriver::torusDimsFor(512, 3),
              (std::vector<std::uint32_t>{8, 8, 8}));
    // The 2-dim overloads agree.
    EXPECT_EQ(SweepDriver::torusDimsFor(64, 2),
              SweepDriver::torusDimsFor(64));
}

TEST(SweepDriverTest, ExplicitTorusDimsReachTheCell)
{
    SweepConfig cfg;
    cfg.torusDims = {2, 2, 2};
    cfg.opsPerNode = 8;
    cfg.segmentBytes = 64_KiB;
    cfg.echo = false;
    const auto cell =
        SweepDriver(cfg).runCell(8, node::Topology::kTorus, 64, 16);
    EXPECT_EQ(cell.topologyName(), "torus_2x2x2");
    // Dims that don't multiply to the node count throw eagerly with the
    // offending vector in the message (ClusterParams validation).
    cfg.torusDims = {2, 2};
    try {
        SweepDriver(cfg).runCell(8, node::Topology::kTorus, 64, 16);
        FAIL() << "expected std::invalid_argument";
    } catch (const std::invalid_argument &e) {
        EXPECT_NE(std::string(e.what()).find("2x2"), std::string::npos)
            << e.what();
    }
}

TEST(SweepDriverTest, UnknownWorkloadListsRegisteredNames)
{
    SweepConfig cfg;
    cfg.workload = "nonesuch";
    try {
        SweepDriver(cfg).runCell(4, node::Topology::kCrossbar, 64, 16);
        FAIL() << "expected std::invalid_argument";
    } catch (const std::invalid_argument &e) {
        EXPECT_NE(std::string(e.what()).find("uniform"),
                  std::string::npos)
            << e.what();
    }
}

TEST(SweepDriverTest, PageRankWorkloadCellRunsAndVerifies)
{
    app::registerPageRankSweepWorkload();
    ASSERT_TRUE(SweepDriver::workloadRegistered("pagerank"));

    SweepConfig cfg;
    cfg.workload = "pagerank";
    cfg.pagerank.vertices = 512;
    cfg.pagerank.degree = 4;
    cfg.pagerank.supersteps = 2; // exercises both rank parities
    cfg.echo = false;
    const auto cell = SweepDriver(cfg).runCell(
        8, node::Topology::kTorus, 64, 16);

    // finish() fatals if the simulated ranks diverge from the host
    // reference, so a returned cell is a verified cell.
    EXPECT_EQ(cell.workload, "pagerank");
    EXPECT_EQ(cell.topologyName(), "torus_2x4"); // 2D default
    EXPECT_GT(cell.ops, 512u);  // remote ops ~ cross-partition edges
    EXPECT_GT(cell.mops, 0.0);
    EXPECT_GT(cell.meanLatencyNs, 100.0);
    EXPECT_GT(cell.simMicros, 0.0);
    EXPECT_EQ(cell.label(), "n8_torus_2x4_rs64_qd16_pagerank");

    std::ostringstream os;
    cell.writeJson(os);
    const std::string json = os.str();
    for (const char *key :
         {"\"workload\": \"pagerank\"", "\"vertices\": 512",
          "\"edges\": 2048", "\"supersteps\": 2",
          "\"cross_edge_fraction\": "})
        EXPECT_NE(json.find(key), std::string::npos) << key << "\n"
                                                     << json;
}

TEST(SweepDriverTest, PageRankCellHonorsQpCountAxis)
{
    app::registerPageRankSweepWorkload();
    SweepConfig cfg;
    cfg.workload = "pagerank";
    cfg.pagerank.vertices = 256;
    cfg.pagerank.degree = 4;
    cfg.echo = false;
    const auto qp1 = SweepDriver(cfg).runCell(
        4, node::Topology::kCrossbar, 64, 8, 1);
    const auto qp4 = SweepDriver(cfg).runCell(
        4, node::Topology::kCrossbar, 64, 8, 4);
    EXPECT_EQ(qp4.label(), "n4_crossbar_rs64_qd8_qp4_pagerank");
    // Same graph, same remote-op count; 4 QPs give the fine-grain
    // window 4x the in-flight capacity, so the superstep cannot be
    // slower than the 8-deep single-QP run.
    EXPECT_EQ(qp1.ops, qp4.ops);
    EXPECT_LE(qp4.simMicros, qp1.simMicros);
}

} // namespace
