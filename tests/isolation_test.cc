/**
 * @file
 * Isolation and configuration-robustness tests:
 *
 *  - Context isolation: traffic in one global address space can neither
 *    read nor corrupt another's segments; per-context TLB tagging keeps
 *    translations apart.
 *  - Cache-geometry sweeps: the coherent hierarchy delivers correct
 *    end-to-end data for any (L1 size, associativity, L2 size) tuple.
 *  - Messaging fuzz: random bidirectional message streams with random
 *    sizes cross the push/pull threshold and always arrive intact and
 *    in order.
 */

#include <gtest/gtest.h>

#include <deque>
#include <vector>

#include "api/messaging.hh"
#include "api/session.hh"
#include "node/cluster.hh"
#include "sim/simulation.hh"

namespace {

using namespace sonuma;
using api::RmcSession;

TEST(ContextIsolation, TwoContextsDoNotInterfere)
{
    sim::Simulation sim(3);
    node::Cluster cluster(sim, {});
    cluster.createSharedContext(1);
    cluster.createSharedContext(2);

    // Node 0 registers DIFFERENT segments into ctx 1 and ctx 2.
    auto &srv = cluster.node(0).os().createProcess(0);
    const auto segA = srv.alloc(1 << 16);
    const auto segB = srv.alloc(1 << 16);
    cluster.node(0).driver().openContext(srv, 1);
    cluster.node(0).driver().openContext(srv, 2);
    cluster.node(0).driver().registerSegment(srv, 1, segA, 1 << 16);
    cluster.node(0).driver().registerSegment(srv, 2, segB, 1 << 16);
    srv.addressSpace().writeT<std::uint64_t>(segA, 0xAAAA);
    srv.addressSpace().writeT<std::uint64_t>(segB, 0xBBBB);

    auto &cli = cluster.node(1).os().createProcess(0);
    RmcSession s1(cluster.node(1).core(0), cluster.node(1).driver(), cli,
                  1);
    RmcSession s2(cluster.node(1).core(0), cluster.node(1).driver(), cli,
                  2);
    const auto b1 = s1.allocBuffer(64);
    const auto b2 = s2.allocBuffer(64);

    sim.spawn([](RmcSession *s1, RmcSession *s2, vm::VAddr b1,
                 vm::VAddr b2) -> sim::Task {
        // Same offset, different contexts: different data.
        EXPECT_TRUE((co_await s1->read(0, 0, b1, 64)).ok());
        EXPECT_TRUE((co_await s2->read(0, 0, b2, 64)).ok());
        // Writing via ctx 2 must not touch ctx 1's segment.
        EXPECT_TRUE((co_await s2->write(0, 0, b2, 64)).ok());
    }(&s1, &s2, b1, b2));
    sim.run();

    EXPECT_EQ(cli.addressSpace().readT<std::uint64_t>(b1), 0xAAAAu);
    EXPECT_EQ(cli.addressSpace().readT<std::uint64_t>(b2), 0xBBBBu);
    EXPECT_EQ(srv.addressSpace().readT<std::uint64_t>(segA), 0xAAAAu);
}

TEST(ContextIsolation, SegmentsOfDifferentProcessesStayApart)
{
    // Two processes on the server node register segments in different
    // contexts; remote traffic targets the right page tables.
    sim::Simulation sim(5);
    node::Cluster cluster(sim, {});
    cluster.createSharedContext(1);
    cluster.createSharedContext(2);

    auto &procA = cluster.node(0).os().createProcess(0);
    auto &procB = cluster.node(0).os().createProcess(0);
    const auto segA = procA.alloc(1 << 16);
    const auto segB = procB.alloc(1 << 16);
    cluster.node(0).driver().openContext(procA, 1);
    cluster.node(0).driver().openContext(procB, 2);
    cluster.node(0).driver().registerSegment(procA, 1, segA, 1 << 16);
    cluster.node(0).driver().registerSegment(procB, 2, segB, 1 << 16);
    procA.addressSpace().writeT<std::uint64_t>(segA + 512, 111);
    procB.addressSpace().writeT<std::uint64_t>(segB + 512, 222);

    auto &cli = cluster.node(1).os().createProcess(0);
    RmcSession s1(cluster.node(1).core(0), cluster.node(1).driver(), cli,
                  1);
    RmcSession s2(cluster.node(1).core(0), cluster.node(1).driver(), cli,
                  2);
    const auto b = s1.allocBuffer(128);
    sim.spawn([](RmcSession *s1, RmcSession *s2, vm::VAddr b) -> sim::Task {
        EXPECT_TRUE((co_await s1->read(0, 512, b, 64)).ok());
        EXPECT_TRUE((co_await s2->read(0, 512, b + 64, 64)).ok());
    }(&s1, &s2, b));
    sim.run();
    EXPECT_EQ(cli.addressSpace().readT<std::uint64_t>(b), 111u);
    EXPECT_EQ(cli.addressSpace().readT<std::uint64_t>(b + 64), 222u);
}

TEST(ContextIsolation, TlbTagsPreventCrossContextTranslationReuse)
{
    // Hammer two contexts whose segments alias the same offsets; with
    // per-context TLB tags every read must return its own context's
    // bytes even under TLB pressure.
    sim::Simulation sim(7);
    node::ClusterParams params;
    params.node.rmc.tlbEntries = 4; // force eviction/refill churn
    node::Cluster cluster(sim, params);
    cluster.createSharedContext(1);
    cluster.createSharedContext(2);

    auto &srv = cluster.node(0).os().createProcess(0);
    const auto segA = srv.alloc(1 << 18);
    const auto segB = srv.alloc(1 << 18);
    cluster.node(0).driver().openContext(srv, 1);
    cluster.node(0).driver().openContext(srv, 2);
    cluster.node(0).driver().registerSegment(srv, 1, segA, 1 << 18);
    cluster.node(0).driver().registerSegment(srv, 2, segB, 1 << 18);
    for (std::uint64_t off = 0; off < (1 << 18); off += 8192) {
        srv.addressSpace().writeT<std::uint64_t>(segA + off, off | 1);
        srv.addressSpace().writeT<std::uint64_t>(segB + off, off | 2);
    }

    auto &cli = cluster.node(1).os().createProcess(0);
    RmcSession s1(cluster.node(1).core(0), cluster.node(1).driver(), cli,
                  1);
    RmcSession s2(cluster.node(1).core(0), cluster.node(1).driver(), cli,
                  2);
    const auto b = s1.allocBuffer(64);
    bool ok = true;
    sim.spawn([](RmcSession *s1, RmcSession *s2, os::Process *cli,
                 vm::VAddr b, bool *ok) -> sim::Task {
        for (int i = 0; i < 128; ++i) {
            const std::uint64_t off =
                (static_cast<std::uint64_t>(i) * 8192) % (1 << 18);
            RmcSession *s = (i % 2) ? s2 : s1;
            co_await s->read(0, off, b, 64);
            const auto v = cli->addressSpace().readT<std::uint64_t>(b);
            if (v != (off | ((i % 2) ? 2u : 1u)))
                *ok = false;
        }
    }(&s1, &s2, &cli, b, &ok));
    sim.run();
    EXPECT_TRUE(ok);
}

/** Cache geometry sweep: correctness for any hierarchy shape. */
struct CacheGeo
{
    std::uint64_t l1Bytes;
    std::uint32_t l1Assoc;
    std::uint64_t l2Bytes;
};

class CacheGeometry : public ::testing::TestWithParam<CacheGeo>
{
};

TEST_P(CacheGeometry, RemoteTrafficSurvivesAnyGeometry)
{
    const CacheGeo geo = GetParam();
    sim::Simulation sim(11);
    node::ClusterParams params;
    params.node.l1.sizeBytes = geo.l1Bytes;
    params.node.l1.assoc = geo.l1Assoc;
    params.node.l2.sizeBytes = geo.l2Bytes;
    node::Cluster cluster(sim, params);
    cluster.createSharedContext(1);

    auto &srv = cluster.node(0).os().createProcess(0);
    const auto seg = srv.alloc(1 << 18);
    cluster.node(0).driver().openContext(srv, 1);
    cluster.node(0).driver().registerSegment(srv, 1, seg, 1 << 18);
    auto &cli = cluster.node(1).os().createProcess(0);
    RmcSession s(cluster.node(1).core(0), cluster.node(1).driver(), cli,
                 1);
    const auto buf = s.allocBuffer(4096);

    int done = 0;
    sim.spawn([](RmcSession *s, os::Process *cli, vm::VAddr buf,
                 int *done) -> sim::Task {
        for (int i = 0; i < 64; ++i) {
            // Write a pattern, read it back through the full stack.
            cli->addressSpace().writeT<std::uint64_t>(
                buf, 0x1000u + static_cast<std::uint64_t>(i));
            const std::uint64_t off =
                (static_cast<std::uint64_t>(i) * 4096) % (1 << 18);
            EXPECT_TRUE((co_await s->write(0, off, buf, 64)).ok());
            EXPECT_TRUE((co_await s->read(0, off, buf + 2048, 64)).ok());
            if (cli->addressSpace().readT<std::uint64_t>(buf + 2048) ==
                0x1000u + static_cast<std::uint64_t>(i))
                ++*done;
        }
    }(&s, &cli, buf, &done));
    sim.run();
    EXPECT_EQ(done, 64);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CacheGeometry,
    ::testing::Values(CacheGeo{4 * 1024, 1, 64 * 1024},
                      CacheGeo{8 * 1024, 2, 256 * 1024},
                      CacheGeo{32 * 1024, 2, 4 * 1024 * 1024},
                      CacheGeo{32 * 1024, 8, 1 * 1024 * 1024},
                      CacheGeo{64 * 1024, 4, 8 * 1024 * 1024}));

/** Random bidirectional messaging fuzz across the push/pull boundary. */
class MsgFuzz : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(MsgFuzz, RandomSizesBothDirectionsArriveInOrder)
{
    const std::uint64_t seed = GetParam();
    sim::Simulation sim(seed);
    node::Cluster cluster(sim, {});
    cluster.createSharedContext(1);

    api::MsgParams mp; // default 256 B threshold
    const std::uint64_t segBytes = api::MsgEndpoint::regionBytes(mp);
    std::vector<os::Process *> procs(2);
    std::vector<vm::VAddr> segs(2);
    for (int n = 0; n < 2; ++n) {
        auto &nd = cluster.node(static_cast<std::size_t>(n));
        procs[n] = &nd.os().createProcess(0);
        segs[n] = procs[n]->alloc(segBytes);
        nd.driver().openContext(*procs[n], 1);
        nd.driver().registerSegment(*procs[n], 1, segs[n], segBytes);
    }
    RmcSession s0(cluster.node(0).core(0), cluster.node(0).driver(),
                  *procs[0], 1);
    RmcSession s1(cluster.node(1).core(0), cluster.node(1).driver(),
                  *procs[1], 1);
    api::MsgEndpoint e0(s0, 1, segs[0], 0, 0, mp);
    api::MsgEndpoint e1(s1, 0, segs[1], 0, 0, mp);

    // Pre-generate both directions' schedules (deterministic).
    auto makeSchedule = [](std::uint64_t s) {
        sim::Rng rng(s);
        std::vector<std::vector<std::uint8_t>> msgs;
        for (int i = 0; i < 60; ++i) {
            const auto len =
                static_cast<std::uint32_t>(rng.range(1, 6000));
            std::vector<std::uint8_t> m(len);
            for (auto &b : m)
                b = static_cast<std::uint8_t>(rng.next());
            msgs.push_back(std::move(m));
        }
        return msgs;
    };
    const auto fwd = makeSchedule(seed * 3 + 1);
    const auto rev = makeSchedule(seed * 5 + 2);

    int checked = 0;
    auto pump = [&checked](api::MsgEndpoint *ep,
                           const std::vector<std::vector<std::uint8_t>>
                               *outbound,
                           const std::vector<std::vector<std::uint8_t>>
                               *inbound) -> sim::Task {
        // Alternate send/receive so both directions stay live.
        std::size_t tx = 0, rx = 0;
        while (tx < outbound->size() || rx < inbound->size()) {
            if (tx < outbound->size()) {
                co_await ep->send((*outbound)[tx].data(),
                                  static_cast<std::uint32_t>(
                                      (*outbound)[tx].size()));
                ++tx;
            }
            if (rx < inbound->size()) {
                std::vector<std::uint8_t> got;
                co_await ep->receive(&got);
                EXPECT_EQ(got, (*inbound)[rx]) << "message " << rx;
                ++rx;
                ++checked;
            }
        }
    };
    sim.spawn(pump(&e0, &fwd, &rev));
    sim.spawn(pump(&e1, &rev, &fwd));
    sim.run();
    EXPECT_EQ(checked, 120);
}

INSTANTIATE_TEST_SUITE_P(Property, MsgFuzz,
                         ::testing::Values(101, 202, 303, 404));

} // namespace
