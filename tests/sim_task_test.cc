/**
 * @file
 * Tests for coroutine tasks and synchronization primitives: joins,
 * delays, exceptions, semaphores (credit flow control), conditions.
 */

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "sim/simulation.hh"
#include "sim/sync.hh"
#include "sim/task.hh"

namespace {

using namespace sonuma::sim;

Task
delayTask(Simulation &sim, Tick d, int *out, int val)
{
    co_await Delay(sim.eq(), d);
    *out = val;
}

TEST(Task, DelayAdvancesSimulatedTime)
{
    Simulation sim;
    int result = 0;
    sim.spawn(delayTask(sim, 1000, &result, 42));
    sim.run();
    EXPECT_EQ(result, 42);
    EXPECT_EQ(sim.now(), 1000u);
    EXPECT_TRUE(sim.allRootsDone());
}

Task
childTask(Simulation &sim, std::vector<int> *trace)
{
    trace->push_back(1);
    co_await Delay(sim.eq(), 100);
    trace->push_back(2);
}

Task
parentTask(Simulation &sim, std::vector<int> *trace)
{
    trace->push_back(0);
    co_await childTask(sim, trace);
    trace->push_back(3);
}

TEST(Task, NestedTasksJoinInOrder)
{
    Simulation sim;
    std::vector<int> trace;
    sim.spawn(parentTask(sim, &trace));
    sim.run();
    EXPECT_EQ(trace, (std::vector<int>{0, 1, 2, 3}));
}

Task
throwingTask(Simulation &sim)
{
    co_await Delay(sim.eq(), 10);
    throw std::runtime_error("boom");
}

TEST(Task, RootExceptionSurfacesFromRun)
{
    Simulation sim;
    sim.spawn(throwingTask(sim));
    EXPECT_THROW(sim.run(), std::runtime_error);
}

Task
catchingParent(Simulation &sim, bool *caught)
{
    try {
        co_await throwingTask(sim);
    } catch (const std::runtime_error &) {
        *caught = true;
    }
}

TEST(Task, ChildExceptionPropagatesToAwaiter)
{
    Simulation sim;
    bool caught = false;
    sim.spawn(catchingParent(sim, &caught));
    sim.run();
    EXPECT_TRUE(caught);
}

TEST(Task, MultipleRootsInterleaveDeterministically)
{
    Simulation sim;
    std::vector<int> order;
    auto mk = [&](Tick d, int id) -> Task {
        co_await Delay(sim.eq(), d);
        order.push_back(id);
    };
    sim.spawn(mk(300, 3));
    sim.spawn(mk(100, 1));
    sim.spawn(mk(200, 2));
    sim.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(OneShotEvent, WakesAllWaiters)
{
    Simulation sim;
    OneShotEvent ev(sim.eq());
    int woken = 0;
    auto waiter = [&]() -> Task {
        co_await ev;
        ++woken;
    };
    sim.spawn(waiter());
    sim.spawn(waiter());
    // Capturing lambdas must be named: the coroutine frame holds a
    // pointer to the closure object, so a spawned temporary dangles
    // after the full expression while the coroutine is still parked.
    auto setter = [&]() -> Task {
        co_await Delay(sim.eq(), 500);
        ev.set();
    };
    sim.spawn(setter());
    sim.run();
    EXPECT_EQ(woken, 2);
    EXPECT_EQ(sim.now(), 500u);
}

TEST(OneShotEvent, AwaitAfterSetDoesNotBlock)
{
    Simulation sim;
    OneShotEvent ev(sim.eq());
    ev.set();
    bool done = false;
    auto body = [&]() -> Task {
        co_await ev;
        done = true;
    };
    sim.spawn(body());
    sim.run();
    EXPECT_TRUE(done);
}

TEST(Semaphore, LimitsConcurrency)
{
    Simulation sim;
    Semaphore sem(sim.eq(), 2);
    int active = 0;
    int peak = 0;
    auto worker = [&]() -> Task {
        co_await sem.acquire();
        ++active;
        peak = std::max(peak, active);
        co_await Delay(sim.eq(), 100);
        --active;
        sem.release();
    };
    for (int i = 0; i < 6; ++i)
        sim.spawn(worker());
    sim.run();
    EXPECT_EQ(peak, 2);
    EXPECT_EQ(active, 0);
    EXPECT_EQ(sem.count(), 2u);
    // 6 workers, 2 at a time, 100 ticks each -> 300 ticks.
    EXPECT_EQ(sim.now(), 300u);
}

TEST(Semaphore, TryAcquireNonBlocking)
{
    Simulation sim;
    Semaphore sem(sim.eq(), 1);
    EXPECT_TRUE(sem.tryAcquire());
    EXPECT_FALSE(sem.tryAcquire());
    sem.release();
    EXPECT_TRUE(sem.tryAcquire());
}

TEST(Semaphore, FifoFairness)
{
    Simulation sim;
    Semaphore sem(sim.eq(), 0);
    std::vector<int> order;
    auto waiter = [&](int id) -> Task {
        co_await sem.acquire();
        order.push_back(id);
    };
    sim.spawn(waiter(1));
    sim.spawn(waiter(2));
    sim.spawn(waiter(3));
    auto releaser = [&]() -> Task {
        co_await Delay(sim.eq(), 10);
        sem.release(3);
    };
    sim.spawn(releaser());
    sim.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Condition, NotifyAllWakesEveryWaiter)
{
    Simulation sim;
    Condition cond(sim.eq());
    int ready = 0;
    int woken = 0;
    auto waiter = [&]() -> Task {
        ++ready;
        co_await cond.wait();
        ++woken;
    };
    sim.spawn(waiter());
    sim.spawn(waiter());
    auto notifier = [&]() -> Task {
        co_await Delay(sim.eq(), 50);
        EXPECT_EQ(ready, 2);
        cond.notifyAll();
    };
    sim.spawn(notifier());
    sim.run();
    EXPECT_EQ(woken, 2);
}

} // namespace
