/**
 * @file
 * Allocation-counting test hook: verifies the zero-allocation guarantee
 * of the simulation core. This binary overrides global operator
 * new/delete to count heap allocations, warms each subsystem up, and
 * then asserts that the steady-state event loop, coroutine spawn cycle,
 * and fabric message path perform zero allocations per event.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <new>

#include "fabric/crossbar.hh"
#include "fabric/fabric.hh"
#include "mem/cache.hh"
#include "mem/dram.hh"
#include "sim/event_queue.hh"
#include "sim/frame_pool.hh"
#include "sim/stats.hh"
#include "sim/task.hh"

static std::uint64_t g_allocCount = 0;

void *
operator new(std::size_t n)
{
    ++g_allocCount;
    if (void *p = std::malloc(n ? n : 1))
        return p;
    throw std::bad_alloc();
}

void *
operator new[](std::size_t n)
{
    return operator new(n);
}

void
operator delete(void *p) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete[](void *p) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, std::size_t) noexcept
{
    std::free(p);
}

namespace {

using namespace sonuma;

TEST(AllocCounting, HookCountsAllocations)
{
    const std::uint64_t before = g_allocCount;
    // Call the replaceable allocation function directly: a plain
    // `new int` can legally be elided by the optimizer.
    void *p = ::operator new(8);
    EXPECT_GT(g_allocCount, before);
    ::operator delete(p);
}

TEST(AllocCounting, SteadyStateEventLoopIsAllocationFree)
{
    sim::EventQueue eq;
    eq.reserve(64);

    struct Chain
    {
        sim::EventQueue &eq;
        std::uint64_t fired = 0;
        std::uint64_t target = 0;

        void
        arm()
        {
            eq.scheduleAfter(1, [this] {
                ++fired;
                if (fired < target)
                    arm();
            });
        }
    } chain{eq};

    // Warm-up: grow heap storage, slot table, freelists.
    chain.target = 256;
    for (int i = 0; i < 16; ++i)
        chain.arm();
    eq.run();

    chain.fired = 0;
    chain.target = 10'000;
    for (int i = 0; i < 16; ++i)
        chain.arm();
    const std::uint64_t a0 = g_allocCount;
    eq.run();
    EXPECT_EQ(g_allocCount - a0, 0u)
        << "steady-state schedule/fire must not allocate";
    EXPECT_GE(chain.fired, 10'000u);
}

TEST(AllocCounting, ScheduleCancelCycleIsAllocationFree)
{
    sim::EventQueue eq;
    eq.reserve(64);

    // Warm-up, including tombstone churn.
    for (int i = 0; i < 64; ++i) {
        auto id = eq.scheduleAfter(5, [] {});
        eq.cancel(id);
    }
    eq.run();

    const std::uint64_t a0 = g_allocCount;
    for (int i = 0; i < 10'000; ++i) {
        auto id = eq.scheduleAfter(5, [] {});
        eq.cancel(id);
        eq.run();
    }
    EXPECT_EQ(g_allocCount - a0, 0u)
        << "cancel must recycle slots without allocating";
}

sim::FireAndForget
transaction(sim::EventQueue &eq, std::uint64_t *done)
{
    co_await sim::Delay(eq, 1);
    co_await sim::Delay(eq, 1);
    ++*done;
}

TEST(AllocCounting, SteadyStateCoroutineChurnIsAllocationFree)
{
    sim::EventQueue eq;
    eq.reserve(64);
    std::uint64_t done = 0;

    // Warm-up: pool a batch of frames.
    for (int i = 0; i < 32; ++i)
        transaction(eq, &done);
    eq.run();

    const std::uint64_t a0 = g_allocCount;
    for (int round = 0; round < 100; ++round) {
        for (int i = 0; i < 32; ++i)
            transaction(eq, &done);
        eq.run();
    }
    EXPECT_EQ(g_allocCount - a0, 0u)
        << "warmed coroutine spawn/complete cycles must not allocate";
    EXPECT_EQ(done, 32u * 101);
}

TEST(AllocCounting, SteadyStateL1HitPathIsAllocationFree)
{
    sim::EventQueue eq;
    sim::StatRegistry stats;
    mem::DramChannel dram(eq, stats, "dram");
    mem::L2Cache l2(eq, stats, "l2", {}, dram);
    mem::L1Cache l1(eq, stats, "l1", {}, l2);

    std::uint64_t done = 0;
    auto bump = [&done] { ++done; };

    // Warm-up: fill the line (miss path touches MSHR/directory maps)
    // and let the access slot table reach steady size.
    for (int i = 0; i < 4; ++i) {
        l1.access(0x1000, false, bump);
        eq.run();
    }

    const std::uint64_t a0 = g_allocCount;
    for (int i = 0; i < 5'000; ++i) {
        l1.access(0x1000, false, bump);
        eq.run();
    }
    EXPECT_EQ(g_allocCount - a0, 0u)
        << "L1 hits must ride the slot table, not heap closures";
    EXPECT_EQ(done, 5'004u);
}

TEST(AllocCounting, SteadyStateFabricPathIsAllocationFree)
{
    sim::EventQueue eq;
    sim::StatRegistry stats;
    fab::CrossbarFabric xbar(eq, stats);
    fab::NetworkInterface ni0(eq, stats, "ni0", 0, xbar);
    fab::NetworkInterface ni1(eq, stats, "ni1", 1, xbar);

    std::uint64_t received = 0;
    ni1.onArrival(fab::Lane::kRequest, [&ni1, &received] {
        while (ni1.hasMessage(fab::Lane::kRequest)) {
            ni1.pop(fab::Lane::kRequest);
            ++received;
        }
    });

    fab::Message msg;
    msg.op = fab::Op::kReadReq;
    msg.srcNid = 0;
    msg.dstNid = 1;

    struct Producer
    {
        sim::EventQueue &eq;
        fab::NetworkInterface &ni;
        fab::Message &msg;
        std::uint64_t toSend = 0;

        void
        pump()
        {
            while (toSend > 0 && ni.trySend(msg))
                --toSend;
            if (toSend > 0)
                eq.scheduleAfter(100, [this] { pump(); });
        }
    } producer{eq, ni0, msg};

    // Warm-up: sizes the NI rings, egress rings, and event storage.
    producer.toSend = 512;
    producer.pump();
    eq.run();
    received = 0;

    producer.toSend = 5'000;
    const std::uint64_t a0 = g_allocCount;
    producer.pump();
    eq.run();
    EXPECT_EQ(g_allocCount - a0, 0u)
        << "warmed fabric send/deliver path must not allocate";
    EXPECT_EQ(received, 5'000u);
}

} // namespace
