/**
 * @file
 * Tests for the coherent cache hierarchy: hit/miss timing, MSHR merging
 * and limits, upgrades, cache-to-cache transfers (the mechanism behind
 * the paper's low-latency queue-pair polling), writebacks, inclusion,
 * and probe/writeback races.
 */

#include <gtest/gtest.h>

#include <functional>
#include <vector>

#include "mem/cache.hh"
#include "mem/dram.hh"
#include "sim/event_queue.hh"
#include "sim/stats.hh"

namespace {

using namespace sonuma;
using mem::CacheParams;
using mem::DramChannel;
using mem::DramParams;
using mem::L1Cache;
using mem::L2Cache;
using sim::EventQueue;
using sim::StatRegistry;
using sim::Tick;

struct CacheFixture : public ::testing::Test
{
    EventQueue eq;
    StatRegistry stats;
    DramChannel dram{eq, stats, "dram", DramParams{}};
    L2Cache l2{eq, stats, "l2", L2Cache::Params{}, dram};
    L1Cache core{eq, stats, "core.l1", CacheParams{}, l2};
    L1Cache rmc{eq, stats, "rmc.l1", CacheParams{}, l2};

    /** Run one access to completion and return its latency in ns. */
    double
    timedAccess(L1Cache &l1, std::uint64_t addr, bool write)
    {
        const Tick start = eq.now();
        Tick end = 0;
        l1.access(addr, write, [&] { end = eq.now(); });
        eq.run();
        return sim::ticksToNs(end - start);
    }
};

TEST_F(CacheFixture, ColdMissGoesToDram)
{
    const double ns = timedAccess(core, 0x1000, false);
    // L1 (1.5) + L2 (3) + DRAM (~45-60) and fill path.
    EXPECT_GE(ns, 40.0);
    EXPECT_LE(ns, 90.0);
    EXPECT_EQ(core.misses(), 1u);
    EXPECT_EQ(l2.misses(), 1u);
    EXPECT_EQ(stats.counter("dram.reads")->value(), 1u);
}

TEST_F(CacheFixture, L1HitIsFast)
{
    timedAccess(core, 0x1000, false);
    const double ns = timedAccess(core, 0x1000, false);
    EXPECT_DOUBLE_EQ(ns, 1.5); // 3 cycles @ 2 GHz
    EXPECT_EQ(core.hits(), 1u);
}

TEST_F(CacheFixture, L2HitAvoidsDram)
{
    timedAccess(core, 0x2000, false);
    // A second L1 misses in its own L1 but hits the now-filled L2.
    const double ns = timedAccess(rmc, 0x2000, false);
    EXPECT_LT(ns, 10.0);
    EXPECT_EQ(stats.counter("dram.reads")->value(), 1u);
    EXPECT_EQ(l2.hits(), 1u);
}

TEST_F(CacheFixture, WriteThenRemoteReadIsCacheToCache)
{
    timedAccess(core, 0x3000, true); // core holds M
    const double ns = timedAccess(rmc, 0x3000, false);
    // Probe downgrade, not DRAM: this is the queue-pair polling path.
    EXPECT_LT(ns, 15.0);
    EXPECT_EQ(l2.cacheToCacheTransfers(), 1u);
    EXPECT_EQ(stats.counter("dram.reads")->value(), 1u); // only cold fill
}

TEST_F(CacheFixture, WriteInvalidatesOtherSharers)
{
    timedAccess(core, 0x4000, false);
    timedAccess(rmc, 0x4000, false); // both S
    timedAccess(core, 0x4000, true); // invalidates rmc
    // rmc read must now miss in its L1 (re-fetch via L2 + probe).
    const std::uint64_t missesBefore = rmc.misses();
    timedAccess(rmc, 0x4000, false);
    EXPECT_EQ(rmc.misses(), missesBefore + 1);
}

TEST_F(CacheFixture, UpgradeFromSharedToModified)
{
    timedAccess(core, 0x5000, false); // S
    const double ns = timedAccess(core, 0x5000, true);
    // Upgrade: L1 re-request to L2, but no DRAM traffic.
    EXPECT_LT(ns, 15.0);
    EXPECT_EQ(stats.counter("core.l1.upgrades")->value(), 1u);
    EXPECT_EQ(stats.counter("dram.reads")->value(), 1u);
}

TEST_F(CacheFixture, MshrMergesSameLineRequests)
{
    int done = 0;
    core.access(0x6000, false, [&] { ++done; });
    core.access(0x6000, false, [&] { ++done; });
    core.access(0x6020, false, [&] { ++done; }); // same 64 B line
    eq.run();
    EXPECT_EQ(done, 3);
    // One transaction serves all three.
    EXPECT_EQ(stats.counter("dram.reads")->value(), 1u);
}

TEST_F(CacheFixture, WriteWaiterOnReadFillRetriesAsUpgrade)
{
    int done = 0;
    core.access(0x7000, false, [&] { ++done; });
    // A write to the same line while the read is outstanding.
    core.access(0x7000, true, [&] { ++done; });
    eq.run();
    EXPECT_EQ(done, 2);
    // The line must end up writable: a further write hits.
    const double ns = timedAccess(core, 0x7000, true);
    EXPECT_DOUBLE_EQ(ns, 1.5);
}

TEST_F(CacheFixture, MshrLimitBlocksExcessMisses)
{
    CacheParams small;
    small.mshrs = 2;
    L1Cache tiny(eq, stats, "tiny.l1", small, l2);
    int done = 0;
    for (int i = 0; i < 8; ++i)
        tiny.access(0x10000 + static_cast<std::uint64_t>(i) * 4096, false,
                    [&] { ++done; });
    eq.run();
    EXPECT_EQ(done, 8); // all eventually complete
}

TEST_F(CacheFixture, DirtyEvictionWritesBack)
{
    // Fill one L1 set beyond associativity with dirty lines.
    // 32 KB / 64 B / 2-way = 256 sets; same set every 256 lines.
    const std::uint64_t setStride = 256 * 64;
    for (int i = 0; i < 3; ++i)
        timedAccess(core, static_cast<std::uint64_t>(i) * setStride, true);
    EXPECT_EQ(stats.counter("core.l1.writebacks")->value(), 1u);
    // The evicted line's data must still be readable (from L2, clean).
    const double ns = timedAccess(core, 0, false);
    EXPECT_LT(ns, 15.0); // L2 hit: no DRAM re-fetch
}

TEST_F(CacheFixture, ProbeDuringPendingWritebackResolves)
{
    // core dirties line A, evicts it (PutM in flight), rmc reads A.
    const std::uint64_t setStride = 256 * 64;
    const std::uint64_t lineA = 0x8000;
    timedAccess(core, lineA, true);
    // Evict A by touching two more lines in its set (no run to completion:
    // keep the PutM and the rmc read racing).
    core.access(lineA + setStride, true, [] {});
    core.access(lineA + 2 * setStride, true, [] {});
    int rmcDone = 0;
    rmc.access(lineA, false, [&] { ++rmcDone; });
    eq.run();
    EXPECT_EQ(rmcDone, 1);
}

TEST_F(CacheFixture, L2EvictionBackInvalidatesL1)
{
    // Use a tiny L2 to force eviction.
    EventQueue eq2;
    StatRegistry st2;
    DramChannel dram2(eq2, st2, "dram", DramParams{});
    L2Cache::Params tiny;
    tiny.sizeBytes = 8 * 1024; // 128 lines, 16-way -> 8 sets
    L2Cache l2b(eq2, st2, "l2", tiny, dram2);
    L1Cache l1b(eq2, st2, "l1", CacheParams{}, l2b);

    auto touch = [&](std::uint64_t addr) {
        l1b.access(addr, false, [] {});
        eq2.run();
    };
    // 8 sets * 64 B = 512 B stride hits the same L2 set.
    for (int i = 0; i < 20; ++i)
        touch(static_cast<std::uint64_t>(i) * 512);
    EXPECT_GT(st2.counter("l2.evictions")->value(), 0u);
    // Inclusion: evicted lines were invalidated in the L1 too, so the L1
    // must re-miss on the earliest line.
    const std::uint64_t missesBefore = l1b.misses();
    touch(0);
    EXPECT_EQ(l1b.misses(), missesBefore + 1);
}

TEST_F(CacheFixture, ConcurrentMixedTrafficCompletes)
{
    // Property-style smoke: many interleaved reads/writes from two L1s to
    // overlapping lines all complete, and no DRAM read is issued twice for
    // a line both L1s share via L2.
    int done = 0;
    const int kOps = 400;
    for (int i = 0; i < kOps; ++i) {
        L1Cache &l1 = (i % 3 == 0) ? rmc : core;
        const std::uint64_t addr = (static_cast<std::uint64_t>(i) % 32) * 64;
        const bool write = (i % 7 == 0);
        eq.schedule(static_cast<Tick>(i) * 100,
                    [&, addr, write, i]() mutable {
                        L1Cache &target = (i % 3 == 0) ? rmc : core;
                        (void)l1;
                        target.access(addr, write, [&] { ++done; });
                    });
    }
    eq.run();
    EXPECT_EQ(done, kOps);
    // 32 distinct lines -> at most 32 cold DRAM reads.
    EXPECT_LE(stats.counter("dram.reads")->value(), 32u);
}

} // namespace
