/**
 * @file
 * Tests for the two baseline models against their published behaviour:
 * RDMA/InfiniBand (Table 2 column 3) and the TCP deep stack (Fig. 1).
 */

#include <gtest/gtest.h>

#include "baseline/rdma.hh"
#include "baseline/tcp_stack.hh"
#include "sim/simulation.hh"

namespace {

using namespace sonuma;
using baseline::RdmaPair;
using baseline::TcpPair;

TEST(RdmaBaseline, SmallReadLatencyNearPublished)
{
    sim::Simulation sim;
    RdmaPair rdma(sim.eq(), sim.stats(), {});
    sim::Tick t = 0;
    sim.spawn([](sim::Simulation *s, RdmaPair *r, sim::Tick *t) -> sim::Task {
        co_await r->read(64);
        *t = s->now();
    }(&sim, &rdma, &t));
    sim.run();
    const double us = sim::ticksToUs(t);
    // Mellanox ConnectX-3 published: 1.19 us.
    EXPECT_GT(us, 1.0);
    EXPECT_LT(us, 1.4);
}

TEST(RdmaBaseline, FetchAddLatencyNearPublished)
{
    sim::Simulation sim;
    RdmaPair rdma(sim.eq(), sim.stats(), {});
    sim::Tick t = 0;
    sim.spawn([](sim::Simulation *s, RdmaPair *r, sim::Tick *t) -> sim::Task {
        co_await r->fetchAdd();
        *t = s->now();
    }(&sim, &rdma, &t));
    sim.run();
    const double us = sim::ticksToUs(t);
    // Published: 1.15 us — close to the read RTT.
    EXPECT_GT(us, 0.9);
    EXPECT_LT(us, 1.4);
}

TEST(RdmaBaseline, LargeReadBandwidthIsPcieLimited)
{
    sim::Simulation sim;
    RdmaPair rdma(sim.eq(), sim.stats(), {});
    const std::uint32_t kLen = 64 * 1024;
    const std::uint64_t kCount = 64;
    sim.spawn([](RdmaPair *r) -> sim::Task {
        co_await r->stream(kLen, kCount);
    }(&rdma));
    sim.run();
    const double secs = sim::ticksToNs(sim.now()) * 1e-9;
    const double gbps = kLen * kCount * 8.0 / secs / 1e9;
    // PCIe Gen3 payload ceiling ~50 Gbps despite the 56 Gbps link.
    EXPECT_GT(gbps, 40.0);
    EXPECT_LT(gbps, 52.0);
}

TEST(RdmaBaseline, IopsPerQpNearPublished)
{
    sim::Simulation sim;
    RdmaPair rdma(sim.eq(), sim.stats(), {});
    const std::uint64_t kCount = 20000;
    sim.spawn([](RdmaPair *r) -> sim::Task {
        co_await r->stream(8, kCount);
    }(&rdma));
    sim.run();
    const double secs = sim::ticksToNs(sim.now()) * 1e-9;
    const double mops = static_cast<double>(kCount) / secs / 1e6;
    // Published: 35 M IOPS with 4 QPs/4 cores => ~8.75 M per QP engine.
    EXPECT_GT(mops, 6.0);
    EXPECT_LT(mops, 12.0);
}

TEST(TcpBaseline, SmallMessageLatencyExceeds40us)
{
    sim::Simulation sim;
    TcpPair tcp(sim.eq(), sim.stats(), {});
    sim::Tick t = 0;
    sim.spawn([](sim::Simulation *s, TcpPair *p, sim::Tick *t) -> sim::Task {
        co_await p->send(64);
        *t = s->now();
    }(&sim, &tcp, &t));
    sim.run();
    // Paper Fig. 1: >40 us one-way for small messages.
    EXPECT_GT(sim::ticksToUs(t), 35.0);
    EXPECT_LT(sim::ticksToUs(t), 80.0);
}

TEST(TcpBaseline, LargeMessageBandwidthUnder2Gbps)
{
    sim::Simulation sim;
    TcpPair tcp(sim.eq(), sim.stats(), {});
    const std::uint32_t kLen = 256 * 1024;
    sim.spawn([](TcpPair *p) -> sim::Task {
        co_await p->stream(kLen, 16);
    }(&tcp));
    sim.run();
    const double secs = sim::ticksToNs(sim.now()) * 1e-9;
    const double gbps = kLen * 16 * 8.0 / secs / 1e9;
    // Paper Fig. 1: under 2 Gbps despite the 10 Gbps fabric.
    EXPECT_GT(gbps, 1.0);
    EXPECT_LT(gbps, 2.0);
}

TEST(TcpBaseline, LatencyGrowsWithMessageSize)
{
    sim::Simulation sim;
    TcpPair tcp(sim.eq(), sim.stats(), {});
    sim::Tick small = 0, large = 0;
    sim.spawn([](sim::Simulation *s, TcpPair *p, sim::Tick *a,
                 sim::Tick *b) -> sim::Task {
        const sim::Tick t0 = s->now();
        co_await p->send(64);
        *a = s->now() - t0;
        const sim::Tick t1 = s->now();
        co_await p->send(64 * 1024);
        *b = s->now() - t1;
    }(&sim, &tcp, &small, &large));
    sim.run();
    EXPECT_GT(large, 2 * small);
}

TEST(TcpBaseline, PingPongIsTwiceOneWay)
{
    sim::Simulation sim;
    TcpPair tcp(sim.eq(), sim.stats(), {});
    sim::Tick rtt = 0;
    sim.spawn([](sim::Simulation *s, TcpPair *p, sim::Tick *t) -> sim::Task {
        co_await p->pingPong(64);
        *t = s->now();
    }(&sim, &tcp, &rtt));
    sim.run();
    EXPECT_GT(sim::ticksToUs(rtt), 70.0);
    EXPECT_LT(sim::ticksToUs(rtt), 160.0);
}

} // namespace
