/**
 * @file
 * Dedicated tests for the one-sided barrier (paper §5.3): no early
 * escape under staggered arrivals, reuse across generations, scaling
 * to 16 nodes, generation counting, and coexistence with application
 * traffic on a shared queue pair (safe under the v2 per-slot
 * completion model).
 */

#include <gtest/gtest.h>

#include <memory>
#include <numeric>
#include <vector>

#include "api/barrier.hh"
#include "api/testbed.hh"
#include "sim/simulation.hh"

namespace {

using namespace sonuma;
using api::Barrier;
using api::ClusterSpec;
using api::RmcSession;
using api::TestBed;
using api::operator""_KiB;

struct BarrierFixture : public ::testing::Test
{
    std::unique_ptr<TestBed> bed;
    std::vector<Barrier *> barriers;
    std::vector<std::unique_ptr<Barrier>> owned;

    void
    build(std::uint32_t n)
    {
        bed = std::make_unique<TestBed>(
            ClusterSpec{}
                .nodes(n)
                .segmentPerNode(
                    std::max<std::uint64_t>(4_KiB,
                                            Barrier::regionBytes(n)))
                .seed(11));
        std::vector<sim::NodeId> all(n);
        std::iota(all.begin(), all.end(), 0);
        for (std::uint32_t i = 0; i < n; ++i) {
            owned.push_back(std::make_unique<Barrier>(
                bed->session(i), all, bed->segBase(i), 0));
            barriers.push_back(owned.back().get());
        }
    }

    sim::Simulation &sim() { return bed->sim(); }
};

TEST_F(BarrierFixture, NoNodeEscapesEarly)
{
    build(4);
    std::vector<sim::Tick> exitTimes(4, 0);
    sim::Tick lastArrival = 0;
    for (std::uint32_t i = 0; i < 4; ++i) {
        sim().spawn([](BarrierFixture *f, std::uint32_t i,
                       sim::Tick *lastArrival,
                       std::vector<sim::Tick> *exits) -> sim::Task {
            // Stagger arrivals: node i arrives at i * 10 us.
            co_await sim::Delay(f->sim().eq(), sim::usToTicks(10) * i);
            *lastArrival = std::max(*lastArrival, f->sim().now());
            co_await f->barriers[i]->arrive();
            (*exits)[i] = f->sim().now();
        }(this, i, &lastArrival, &exitTimes));
    }
    sim().run();
    for (std::uint32_t i = 0; i < 4; ++i)
        EXPECT_GE(exitTimes[i], lastArrival) << "node " << i;
}

TEST_F(BarrierFixture, ReusableAcrossGenerations)
{
    build(3);
    std::vector<int> rounds(3, 0);
    for (std::uint32_t i = 0; i < 3; ++i) {
        sim().spawn([](BarrierFixture *f, std::uint32_t i,
                       std::vector<int> *rounds) -> sim::Task {
            for (int r = 0; r < 5; ++r) {
                co_await f->barriers[i]->arrive();
                // All nodes must be in the same round after each barrier.
                for (int n = 0; n < 3; ++n)
                    EXPECT_GE((*rounds)[static_cast<std::size_t>(n)] + 1,
                              r);
                ++(*rounds)[i];
            }
        }(this, i, &rounds));
    }
    sim().run();
    EXPECT_EQ(rounds, (std::vector<int>{5, 5, 5}));
    for (const auto *b : barriers)
        EXPECT_EQ(b->generation(), 5u);
}

TEST_F(BarrierFixture, TwoNodeBarrierFast)
{
    build(2);
    sim::Tick done = 0;
    for (std::uint32_t i = 0; i < 2; ++i) {
        sim().spawn([](BarrierFixture *f, std::uint32_t i,
                       sim::Tick *done) -> sim::Task {
            co_await f->barriers[i]->arrive();
            *done = std::max(*done, f->sim().now());
        }(this, i, &done));
    }
    sim().run();
    // One remote write each way + local polling: ~hundreds of ns.
    EXPECT_LT(sim::ticksToNs(done), 2000.0);
}

TEST_F(BarrierFixture, SixteenNodesConverge)
{
    build(16);
    int passed = 0;
    for (std::uint32_t i = 0; i < 16; ++i) {
        sim().spawn([](BarrierFixture *f, std::uint32_t i,
                       int *passed) -> sim::Task {
            // Uneven arrival pattern across three rounds.
            for (int r = 0; r < 3; ++r) {
                co_await sim::Delay(f->sim().eq(),
                                    sim::usToTicks((i * 7 + r) % 5));
                co_await f->barriers[i]->arrive();
            }
            ++*passed;
        }(this, i, &passed));
    }
    sim().run();
    EXPECT_EQ(passed, 16);
    for (const auto *b : barriers)
        EXPECT_EQ(b->generation(), 3u);
}

TEST_F(BarrierFixture, SharesQpWithApplicationTraffic)
{
    // v2: barrier announcement writes are fire-and-forget slot posts,
    // so interleaving application reads on the *same session* is safe.
    build(4);
    int trafficOk = 0;
    for (std::uint32_t i = 0; i < 4; ++i) {
        sim().spawn([](BarrierFixture *f, std::uint32_t i,
                       int *ok) -> sim::Task {
            auto &s = f->bed->session(i); // same session as the barrier
            const vm::VAddr buf = s.allocBuffer(64);
            const auto peer = static_cast<sim::NodeId>((i + 1) % 4);
            for (int r = 0; r < 3; ++r) {
                const api::OpResult res =
                    co_await s.read(peer, 0, buf, 64);
                EXPECT_TRUE(res.ok());
                co_await f->barriers[i]->arrive();
            }
            ++*ok;
        }(this, i, &trafficOk));
    }
    sim().run();
    EXPECT_EQ(trafficOk, 4);
}

} // namespace
