/**
 * @file
 * Randomized stress/soak tests for the async session path — the
 * regression net for the retire/post race class PR 2 fixed.
 *
 * A seeded iteration drives four sessions (multi-QP, half of them with
 * doorbell batching) across a three-node cluster with a mixed
 * sync/async op soup: random op kinds, random line-aligned sizes,
 * random peers, random QP pins. Optionally a fabric failure is injected
 * mid-flight. Invariants checked:
 *
 *  - exact-once completion: one OpResult per post, outstanding() == 0
 *    at quiescence, and the session/RMC double-completion fatals (see
 *    session.cc reapAvailable, rcp.cc processReply) never fire;
 *  - no lost wakeup: every driver coroutine reaches its done flag —
 *    a sleeper the completion hook misses would hang at quiescence;
 *  - retire-before-post ordering: per-QP windows retire the oldest
 *    handle before a ring lap, and awaitCompletion's stale-token fatal
 *    never fires;
 *  - determinism: the same seed twice gives byte-identical stats dumps
 *    (including final tick), with and without failure injection;
 *  - zero-allocation steady state: this binary overrides operator
 *    new/delete, and after a warm-up phase the mixed workload performs
 *    0 heap allocations (the strong form of 0 allocs/event).
 *
 * Default soak: 10 seeds x 2 runs. SONUMA_STRESS_SEEDS=<n> extends the
 * seed range for longer soaks (ctest -L stress runs with a long
 * timeout budget for exactly that).
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <new>
#include <sstream>
#include <string>
#include <vector>

#include "api/testbed.hh"
#include "fabric/fault.hh"
#include "node/cluster.hh"
#include "sim/rng.hh"
#include "sim/simulation.hh"

static std::uint64_t g_allocCount = 0;
// Debug aid for alloc-source tracing; true inside the measured steady
// window.
static volatile bool g_steadyProbe = false;

// ASan has its own operator new/delete and flags cross-library frees
// against this malloc-backed override as alloc-dealloc mismatches; the
// allocation-counting harness is meaningless under a sanitizer anyway
// (SteadyStateIsAllocationFree then passes vacuously on zero counts),
// so keep ASan's allocator and skip the override.
#if defined(__has_feature)
#if __has_feature(address_sanitizer)
#define SONUMA_ASAN_ACTIVE 1
#endif
#endif
#if defined(__SANITIZE_ADDRESS__)
#define SONUMA_ASAN_ACTIVE 1
#endif

static int g_traceLeft = 0;

#ifndef SONUMA_ASAN_ACTIVE
#include <execinfo.h>
#include <unistd.h>

// GCC pairs the replaced operator new with the default operator delete
// and flags the std::free below as mismatched; the override is
// malloc-backed end to end, so the pairing is in fact correct.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"

void *
operator new(std::size_t n)
{
    ++g_allocCount;
    if (g_steadyProbe && g_traceLeft > 0) {
        --g_traceLeft;
        void *frames[12];
        const int depth = backtrace(frames, 12);
        backtrace_symbols_fd(frames, depth, 2);
        static const char nl[] = "----\n";
        (void)!write(2, nl, sizeof(nl) - 1);
    }
    if (void *p = std::malloc(n ? n : 1))
        return p;
    throw std::bad_alloc();
}

void *
operator new[](std::size_t n)
{
    return operator new(n);
}

void
operator delete(void *p) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete[](void *p) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, std::size_t) noexcept
{
    std::free(p);
}
#pragma GCC diagnostic pop
#endif // !SONUMA_ASAN_ACTIVE

namespace {

using namespace sonuma;
using api::ClusterSpec;
using api::OpHandle;
using api::OpResult;
using api::RmcSession;
using api::TestBed;
using api::operator""_KiB;

constexpr std::uint32_t kNodes = 3;
constexpr std::uint32_t kQpCount = 2;
constexpr std::uint32_t kQpDepth = 8;
constexpr std::uint32_t kMaxLines = 4; //!< largest op: 4 lines (256 B)
constexpr std::uint64_t kSegBytes = 256_KiB;

/** One session's driver state: per-QP FIFO windows in fixed storage. */
struct Driver
{
    RmcSession *s = nullptr;
    std::uint32_t nodeIdx = 0;
    sim::Rng rng{1};
    vm::VAddr buf = 0;

    // Fixed-capacity per-QP windows (no deque: the steady state of
    // this binary must not allocate). head/count index a flat array of
    // kQpDepth handles per QP.
    std::vector<OpHandle> slots;           //!< [qp * kQpDepth + i]
    std::vector<std::uint32_t> head, count;

    // Accounting.
    std::uint64_t posts = 0;
    std::uint64_t completions = 0;
    std::uint64_t okStatus = 0;
    std::uint64_t fabricErrors = 0;
    std::uint64_t flushed = 0;
    std::uint64_t otherErrors = 0;
    bool done = false;

    void
    init(RmcSession &session, std::uint32_t node, std::uint64_t seed)
    {
        s = &session;
        nodeIdx = node;
        rng.reseed(seed);
        buf = session.allocBuffer(
            std::uint64_t(session.queueDepth()) * kMaxLines * 64);
        slots.assign(session.queueDepth(), OpHandle{});
        head.assign(session.qpCount(), 0);
        count.assign(session.qpCount(), 0);
    }

    void
    record(const OpResult &r)
    {
        ++completions;
        if (r.ok())
            ++okStatus;
        else if (r.status == rmc::CqStatus::kFabricError)
            ++fabricErrors;
        else if (r.status == rmc::CqStatus::kFlushed)
            ++flushed;
        else
            ++otherErrors;
    }

    /** Retire the oldest handle of @p qp (caller ensures count > 0). */
    sim::ValueTask<std::uint8_t>
    retire(std::uint32_t qp)
    {
        OpHandle h = slots[qp * kQpDepth + head[qp]];
        head[qp] = (head[qp] + 1) % kQpDepth;
        --count[qp];
        record(co_await h);
        co_return 0;
    }

    /**
     * Retire-before-post: if the window still holds the handle whose
     * WQ slot the next post will recycle (sync ops share the rings, so
     * this can happen before the per-QP window is formally full),
     * retire it first. The windows are FIFO in post order, so only the
     * front can own the slot.
     */
    sim::ValueTask<std::uint8_t>
    makeRoomFor(std::uint32_t g)
    {
        const std::uint32_t qp = g / s->perQpDepth();
        while (count[qp] > 0 &&
               slots[qp * kQpDepth + head[qp]].slot() == g)
            co_await retire(qp);
        co_return 0;
    }

    sim::Task
    run(int ops)
    {
        for (int i = 0; i < ops; ++i) {
            const std::uint32_t lines =
                1 + static_cast<std::uint32_t>(rng.below(kMaxLines));
            const std::uint32_t len = lines * 64;
            const auto peer = static_cast<sim::NodeId>(
                (nodeIdx + 1 + rng.below(kNodes - 1)) % kNodes);
            const std::uint64_t off =
                rng.below((kSegBytes - len) / 64) * 64;
            const int kind = static_cast<int>(rng.below(8));

            if (kind < 4) {
                // Async read/write through a per-QP FIFO window with
                // retire-before-post: the oldest handle of the target
                // QP retires before its ring can lap.
                const std::uint32_t hint =
                    rng.chance(0.5)
                        ? static_cast<std::uint32_t>(
                              rng.below(s->qpCount()))
                        : RmcSession::kAnyQp;
                const std::uint32_t g = s->nextSlot(hint);
                const std::uint32_t qp = g / s->perQpDepth();
                co_await makeRoomFor(g);
                const vm::VAddr lbuf =
                    buf + std::uint64_t(g) * kMaxLines * 64;
                OpHandle h =
                    kind < 3
                        ? co_await s->readAsync(peer, off, lbuf, len,
                                                hint)
                        : co_await s->writeAsync(peer, off, lbuf, len,
                                                 hint);
                ++posts;
                slots[qp * kQpDepth + (head[qp] + count[qp]) % kQpDepth] =
                    h;
                ++count[qp];
                // Opportunistically retire whatever already completed.
                for (std::uint32_t q = 0; q < s->qpCount(); ++q)
                    while (count[q] > 0 &&
                           slots[q * kQpDepth + head[q]].done())
                        co_await retire(q);
            } else {
                // Sync ops ride the same round-robin rings: clear the
                // slot they are about to recycle first.
                co_await makeRoomFor(s->nextSlot());
                ++posts;
                if (kind == 4)
                    record(co_await s->read(peer, off, buf, len));
                else if (kind == 5)
                    record(co_await s->write(peer, off, buf, len));
                else if (kind == 6)
                    record(co_await s->fetchAdd(peer, off, i + 1));
                else
                    record(co_await s->compareSwap(peer, off, 0, i));
            }
        }
        for (std::uint32_t q = 0; q < s->qpCount(); ++q)
            while (count[q] > 0)
                co_await retire(q);
        co_await s->drain();
        done = true;
    }
};

struct IterationResult
{
    std::string statsDump;   //!< finalTick + full registry dump
    std::uint64_t posts = 0;
    std::uint64_t completions = 0;
    std::uint64_t okStatus = 0;
    std::uint64_t fabricErrors = 0;
    std::uint64_t flushed = 0;
    std::uint64_t otherErrors = 0;
    std::uint64_t retransmits = 0;   //!< pooled node<i>.rmc.retransmits
    std::uint64_t dropped = 0;       //!< fabric-level packet drops
};

/** Mid-flight session teardown for one iteration (see runIteration). */
struct Teardown
{
    int victim = -1; //!< driver index whose session close()s mid-run
    api::RmcSession::CloseMode mode =
        api::RmcSession::CloseMode::kDestroyQps;
};

/**
 * One seeded soak iteration. @p injectFailure schedules a failNode on a
 * seed-derived victim at a seed-derived tick mid-flight. @p plan
 * optionally arms a scheduled FaultPlan (link flaps, drop windows) and
 * @p ctx picks the context id, so teardown/rebuild loops can vary it.
 * @p teardown schedules a session.close() on a driver's session at a
 * seed-derived tick — exact-once must hold through it (in-flight ops
 * flush, later posts complete as kFlushed stubs, nothing hangs).
 */
IterationResult
runIteration(std::uint64_t seed, bool injectFailure, int opsPerSession,
             const fab::FaultPlan *plan = nullptr, sim::CtxId ctx = 1,
             const Teardown *teardown = nullptr)
{
    ClusterSpec spec = ClusterSpec{}
                           .nodes(kNodes)
                           .qpCount(kQpCount)
                           .qpDepth(kQpDepth)
                           .segmentPerNode(kSegBytes)
                           .context(ctx)
                           .seed(seed);
    if (plan)
        spec.faultPlan(*plan);
    TestBed bed(spec);

    // Four sessions: two on node 1 (distinct coroutines — sessions are
    // single-owner), one each on nodes 0 and 2. Odd sessions batch
    // doorbells.
    std::vector<Driver> drivers(4);
    const std::uint32_t nodeOf[4] = {1, 1, 0, 2};
    for (int i = 0; i < 4; ++i) {
        api::SessionParams sp;
        sp.doorbellBatching = (i % 2) == 1;
        drivers[i].init(bed.newSession(nodeOf[i], 0, sp), nodeOf[i],
                        seed * 1000003 + i);
    }

    if (injectFailure) {
        sim::Rng frng(seed ^ 0xfab);
        const auto victim =
            static_cast<sim::NodeId>(frng.below(kNodes));
        const sim::Tick when = sim::usToTicks(5) +
                               frng.below(sim::usToTicks(40));
        bed.sim().eq().schedule(when, [&bed, victim] {
            bed.cluster().fabric().failNode(victim);
        });
    }

    if (teardown && teardown->victim >= 0) {
        sim::Rng trng(seed ^ 0x7ea);
        const sim::Tick when = sim::usToTicks(5) +
                               trng.below(sim::usToTicks(40));
        api::RmcSession *victimSession = drivers[teardown->victim].s;
        const auto mode = teardown->mode;
        bed.sim().eq().schedule(when, [victimSession, mode] {
            victimSession->close(mode);
        });
    }

    for (auto &d : drivers)
        bed.spawn(d.run(opsPerSession));
    bed.run();

    IterationResult res;
    for (auto &d : drivers) {
        // No lost wakeup: a sleeper whose completion hook misfired
        // would still be suspended at quiescence.
        EXPECT_TRUE(d.done) << "driver coroutine hung (lost wakeup?)";
        // Exact-once: every post produced exactly one completion.
        EXPECT_EQ(d.posts, d.completions);
        EXPECT_EQ(d.s->outstanding(), 0u);
        EXPECT_EQ(d.s->pendingDoorbells(), 0u);
        if (!injectFailure && !plan && !teardown) {
            EXPECT_EQ(d.okStatus, d.posts);
            EXPECT_EQ(d.fabricErrors, 0u);
        }
        // Never anything but Ok / FabricError / Flushed — except under
        // a context unregister, where peers' in-flight ops to the
        // removed CT entry legitimately complete as bad-context bounds
        // errors.
        if (!teardown || teardown->mode !=
                             api::RmcSession::CloseMode::kUnregisterContext) {
            EXPECT_EQ(d.otherErrors, 0u);
        }
        res.posts += d.posts;
        res.completions += d.completions;
        res.okStatus += d.okStatus;
        res.fabricErrors += d.fabricErrors;
        res.flushed += d.flushed;
        res.otherErrors += d.otherErrors;
    }
    for (std::uint32_t i = 0; i < kNodes; ++i)
        if (const auto *c = bed.sim().stats().counter(
                "node" + std::to_string(i) + ".rmc.retransmits"))
            res.retransmits += c->value();
    res.dropped = bed.cluster().fabric().droppedMessages();

    std::ostringstream os;
    os << "finalTick=" << bed.sim().now() << "\n";
    bed.sim().stats().dump(os);
    res.statsDump = os.str();
    return res;
}

int
seedCount()
{
    if (const char *env = std::getenv("SONUMA_STRESS_SEEDS")) {
        const int n = std::atoi(env);
        if (n > 0)
            return n;
    }
    return 10;
}

TEST(SessionStress, SeededSoakIsDeterministicWithoutFailures)
{
    for (int seed = 1; seed <= seedCount(); seed += 2) {
        const IterationResult a = runIteration(seed, false, 60);
        const IterationResult b = runIteration(seed, false, 60);
        EXPECT_EQ(a.statsDump, b.statsDump)
            << "seed " << seed << " not reproducible";
        EXPECT_EQ(a.posts, b.posts);
        EXPECT_GT(a.posts, 0u);
    }
}

TEST(SessionStress, SeededSoakIsDeterministicWithFabricResets)
{
    std::uint64_t sawFabricErrors = 0;
    for (int seed = 2; seed <= seedCount() + 1; seed += 2) {
        const IterationResult a = runIteration(seed, true, 60);
        const IterationResult b = runIteration(seed, true, 60);
        EXPECT_EQ(a.statsDump, b.statsDump)
            << "seed " << seed << " with failure injection not "
               "reproducible";
        EXPECT_EQ(a.fabricErrors, b.fabricErrors);
        EXPECT_EQ(a.otherErrors, 0u);
        sawFabricErrors += a.fabricErrors;
    }
    // The injection window must actually bite in at least one seed, or
    // this test stops covering the abort paths.
    EXPECT_GT(sawFabricErrors, 0u);
}

TEST(SessionStress, LinkFlapSoakIsDeterministic)
{
    // A scheduled link-flap plan (kill/recover cycles on 0->1 and 1->0)
    // layered under the random op soup: packets crossing a down link
    // are dropped, the transfer timeout fires — and the RMC's
    // retransmission budget rides the loss out, so every op still
    // completes Ok with no app-visible aborts (the flap windows close
    // long before the attempt budget runs dry). Two same-seed runs
    // must be byte-identical including the fault events.
    std::uint64_t sawRetransmits = 0, sawDrops = 0;
    for (int seed = 3; seed <= seedCount() + 2; seed += 2) {
        fab::FaultPlan plan;
        plan.flapLink(sim::usToTicks(5), sim::usToTicks(10), 4, 0, 1);
        plan.flapLink(sim::usToTicks(8), sim::usToTicks(10), 4, 1, 0);
        const IterationResult a = runIteration(seed, false, 60, &plan);
        const IterationResult b = runIteration(seed, false, 60, &plan);
        EXPECT_EQ(a.statsDump, b.statsDump)
            << "seed " << seed << " with link flaps not reproducible";
        EXPECT_EQ(a.retransmits, b.retransmits);
        // Exactly-once recovery: drops become retransmits, never lost
        // or failed ops.
        EXPECT_EQ(a.okStatus, a.posts)
            << "seed " << seed << " lost ops despite retransmission";
        EXPECT_EQ(a.fabricErrors, 0u);
        EXPECT_EQ(a.otherErrors, 0u);
        sawRetransmits += a.retransmits;
        sawDrops += a.dropped;
    }
    // The flap windows must actually drop traffic — and the recovery
    // path must actually run — in at least one seed.
    EXPECT_GT(sawDrops, 0u);
    EXPECT_GT(sawRetransmits, 0u);
}

TEST(SessionStress, LossyWindowSoak)
{
    // Staggered silent-drop windows on three links under the random op
    // soup. Unlike flaps (which kill whole links and surface failure
    // notifications), drops are invisible to everything except the
    // transfer timeout — so this soaks the retransmission protocol
    // proper: every lost request or reply is re-sent, replayed writes
    // and atomics are dedup-suppressed at the responder, and every op
    // completes Ok exactly once with zero app-visible aborts. The
    // always-on fatals in the RMC (stale-reply, double-completion) and
    // session (idle-slot completion) turn any exactly-once violation
    // into a test abort, so the soak is sensitive to more than the
    // counters checked here.
    std::uint64_t sawRetransmits = 0, sawDrops = 0;
    for (int seed = 4; seed <= seedCount() + 3; seed += 2) {
        fab::FaultPlan plan;
        plan.dropWindow(sim::usToTicks(5), sim::usToTicks(45), 0, 1);
        plan.dropWindow(sim::usToTicks(10), sim::usToTicks(50), 1, 2);
        plan.dropWindow(sim::usToTicks(15), sim::usToTicks(55), 2, 0);
        const IterationResult a = runIteration(seed, false, 60, &plan);
        const IterationResult b = runIteration(seed, false, 60, &plan);
        EXPECT_EQ(a.statsDump, b.statsDump)
            << "seed " << seed << " with drop windows not reproducible";
        EXPECT_EQ(a.okStatus, a.posts)
            << "seed " << seed << " saw app-visible aborts";
        EXPECT_EQ(a.fabricErrors, 0u);
        EXPECT_EQ(a.flushed, 0u);
        EXPECT_EQ(a.otherErrors, 0u);
        sawRetransmits += a.retransmits;
        sawDrops += a.dropped;
    }
    EXPECT_GT(sawDrops, 0u) << "drop windows never bit";
    EXPECT_GT(sawRetransmits, 0u) << "recovery path never ran";
}

TEST(SessionStress, MidFlightTeardownMatrix)
{
    // destroyQueuePair mid-flight (any victim session) and context
    // unregister mid-flight (the sole session on node 0): in both
    // modes every posted op still gets exactly one completion — Ok if
    // it beat the teardown, kFlushed otherwise — no driver hangs, and
    // same-seed runs replay byte-identically. Unregister additionally
    // makes peers' ops to the dropped context complete as bad-context
    // errors, which the harness tolerates for that mode only.
    using CloseMode = api::RmcSession::CloseMode;
    std::uint64_t sawFlushed = 0;
    for (int seed = 5; seed <= seedCount() + 4; seed += 2) {
        for (const int victim : {0, 1, 2, 3}) {
            const Teardown td{victim, CloseMode::kDestroyQps};
            const IterationResult a =
                runIteration(seed, false, 60, nullptr, 1, &td);
            const IterationResult b =
                runIteration(seed, false, 60, nullptr, 1, &td);
            EXPECT_EQ(a.statsDump, b.statsDump)
                << "seed " << seed << " victim " << victim
                << " destroy-mode teardown not reproducible";
            EXPECT_EQ(a.posts, a.completions);
            sawFlushed += a.flushed;
        }
        // Unregister tears down the whole context on the victim's
        // node, so the victim must be the only session there (node 0).
        const Teardown td{2, CloseMode::kUnregisterContext};
        const IterationResult a =
            runIteration(seed, false, 60, nullptr, 1, &td);
        const IterationResult b =
            runIteration(seed, false, 60, nullptr, 1, &td);
        EXPECT_EQ(a.statsDump, b.statsDump)
            << "seed " << seed
            << " unregister-mode teardown not reproducible";
        EXPECT_EQ(a.posts, a.completions);
        sawFlushed += a.flushed;
    }
    // The teardown window must actually catch traffic mid-flight in at
    // least one (seed, victim) combination.
    EXPECT_GT(sawFlushed, 0u) << "no teardown ever flushed an op";
}

TEST(SessionStress, TeardownRebuildWithFaultsIsStable)
{
    // Repeated build/run/destroy of whole TestBeds — alternating
    // context ids and fault plans — must neither leak state across
    // builds nor drift: every iteration with the same (seed, plan, ctx)
    // reproduces the same stats dump as its first occurrence.
    fab::FaultPlan flap;
    flap.flapLink(sim::usToTicks(5), sim::usToTicks(10), 3, 0, 1);
    std::string reference[2];
    for (int iter = 0; iter < 6; ++iter) {
        const bool faulted = (iter % 2) == 1;
        const sim::CtxId ctx = faulted ? 2 : 1;
        const IterationResult r = runIteration(
            42, false, 40, faulted ? &flap : nullptr, ctx);
        EXPECT_GT(r.posts, 0u);
        EXPECT_EQ(r.otherErrors, 0u);
        std::string &ref = reference[faulted ? 1 : 0];
        if (ref.empty())
            ref = r.statsDump;
        else
            EXPECT_EQ(r.statsDump, ref)
                << "iteration " << iter
                << " diverged from an identical earlier build";
    }
}

TEST(SessionStress, SteadyStateIsAllocationFree)
{
#ifdef SONUMA_ASAN_ACTIVE
    GTEST_SKIP() << "allocation counting needs the operator new override, "
                    "which is disabled under AddressSanitizer";
#endif
    // Iteration 1 warms process-global pools (coroutine frames, event
    // slots); the measured iteration then warms its own session-local
    // state during a warm phase and must run its steady phase without
    // touching the allocator. The workload revisits a bounded offset
    // table so the cache directories reach their full working set
    // during warm-up.
    struct Phase
    {
        int warmLeft = 0;
        std::uint64_t allocsAtSteadyStart = 0;
        std::uint64_t allocsAtSteadyEnd = 0;
        int running = 0;
    };

    auto runCounted = [](std::uint64_t seed, Phase *phase,
                         std::uint64_t *steadyAllocs) {
        TestBed bed(ClusterSpec{}
                        .nodes(kNodes)
                        .qpCount(kQpCount)
                        .qpDepth(kQpDepth)
                        .segmentPerNode(kSegBytes)
                        .seed(seed));
        std::vector<Driver> drivers(4);
        const std::uint32_t nodeOf[4] = {1, 1, 0, 2};
        for (int i = 0; i < 4; ++i) {
            api::SessionParams sp;
            sp.doorbellBatching = (i % 2) == 1;
            drivers[i].init(bed.newSession(nodeOf[i], 0, sp), nodeOf[i],
                            seed * 7919 + i);
        }

        // Bounded working set: 24 offsets per driver, fixed for both
        // phases (vector sized before the run).
        struct Fixed
        {
            Driver *d;
            Phase *phase;
            std::vector<std::uint64_t> offsets;

            sim::Task
            run()
            {
                Driver &dr = *d;
                RmcSession *s = dr.s;
                const int kWarmOps = 48, kSteadyOps = 96;

                // Saturation warm-up, before the measured window: all
                // four drivers flood full windows of max-size reads
                // concurrently, then sweep an atomic through every
                // slot. This pushes every high-water mark (reply
                // pipeline concurrency, fabric link rings, frame
                // pools, waiter lists, scratch lines) past anything
                // the random steady mix reaches.
                for (int round = 0; round < 2; ++round) {
                    for (std::uint32_t q = 0; q < s->qpCount(); ++q)
                        for (std::uint32_t i = 0; i < s->perQpDepth();
                             ++i) {
                            const std::uint32_t g = s->nextSlot(q);
                            co_await dr.makeRoomFor(g);
                            const auto peer = static_cast<sim::NodeId>(
                                (dr.nodeIdx + 1 + i % (kNodes - 1)) %
                                kNodes);
                            OpHandle h = co_await s->readAsync(
                                peer,
                                offsets[(q * s->perQpDepth() + i) %
                                        offsets.size()],
                                dr.buf + std::uint64_t(g) * kMaxLines *
                                             64,
                                kMaxLines * 64, q);
                            ++dr.posts;
                            dr.slots[q * kQpDepth +
                                     (dr.head[q] + dr.count[q]) %
                                         kQpDepth] = h;
                            ++dr.count[q];
                        }
                    for (std::uint32_t q = 0; q < s->qpCount(); ++q)
                        while (dr.count[q] > 0)
                            co_await dr.retire(q);
                }
                for (std::uint32_t i = 0; i < s->queueDepth(); ++i) {
                    co_await dr.makeRoomFor(s->nextSlot());
                    ++dr.posts;
                    dr.record(co_await s->fetchAdd(
                        static_cast<sim::NodeId>(
                            (dr.nodeIdx + 1 + i % (kNodes - 1)) %
                            kNodes),
                        offsets[i % offsets.size()], 1));
                }

                for (int i = 0; i < kWarmOps + kSteadyOps; ++i) {
                    if (i == kWarmOps && --phase->warmLeft == 0) {
                        phase->allocsAtSteadyStart = g_allocCount;
                        g_steadyProbe = true;
                        if (std::getenv("SONUMA_TRACE_ALLOCS"))
                            g_traceLeft = 25;
                    }
                    const std::uint64_t off =
                        offsets[static_cast<std::size_t>(
                            dr.rng.below(offsets.size()))];
                    const std::uint32_t len =
                        64 * (1 + static_cast<std::uint32_t>(
                                      dr.rng.below(kMaxLines)));
                    const auto peer = static_cast<sim::NodeId>(
                        (dr.nodeIdx + 1 + dr.rng.below(kNodes - 1)) %
                        kNodes);
                    const int kind = static_cast<int>(dr.rng.below(6));
                    if (kind < 3) {
                        const std::uint32_t hint =
                            dr.rng.chance(0.5)
                                ? static_cast<std::uint32_t>(
                                      dr.rng.below(s->qpCount()))
                                : RmcSession::kAnyQp;
                        const std::uint32_t g = s->nextSlot(hint);
                        const std::uint32_t qp = g / s->perQpDepth();
                        co_await dr.makeRoomFor(g);
                        OpHandle h = co_await s->readAsync(
                            peer, off,
                            dr.buf + std::uint64_t(g) * kMaxLines * 64,
                            len, hint);
                        ++dr.posts;
                        dr.slots[qp * kQpDepth +
                                 (dr.head[qp] + dr.count[qp]) %
                                     kQpDepth] = h;
                        ++dr.count[qp];
                    } else {
                        co_await dr.makeRoomFor(s->nextSlot());
                        ++dr.posts;
                        if (kind == 3)
                            dr.record(co_await s->write(peer, off,
                                                        dr.buf, len));
                        else if (kind == 4)
                            dr.record(
                                co_await s->fetchAdd(peer, off, 1));
                        else
                            dr.record(co_await s->read(peer, off,
                                                       dr.buf, len));
                    }
                }
                for (std::uint32_t q = 0; q < s->qpCount(); ++q)
                    while (dr.count[q] > 0)
                        co_await dr.retire(q);
                co_await s->drain();
                // The steady window closes when the FIRST driver
                // finishes: everything before this point ran with all
                // four sessions active.
                if (phase->allocsAtSteadyEnd == 0) {
                    phase->allocsAtSteadyEnd = g_allocCount;
                    g_steadyProbe = false;
                }
                dr.done = true;
            }
        };

        phase->warmLeft = 4;
        phase->allocsAtSteadyStart = 0;
        phase->allocsAtSteadyEnd = 0;
        std::vector<Fixed> bodies(4);
        for (int i = 0; i < 4; ++i) {
            bodies[i].d = &drivers[i];
            bodies[i].phase = phase;
            sim::Rng orng(seed * 31 + i);
            bodies[i].offsets.resize(24);
            for (auto &o : bodies[i].offsets)
                o = orng.below((kSegBytes - kMaxLines * 64) / 64) * 64;
        }
        for (auto &b : bodies)
            bed.spawn(b.run());
        bed.run();
        for (auto &d : drivers) {
            EXPECT_TRUE(d.done);
            EXPECT_EQ(d.s->outstanding(), 0u);
        }
        ASSERT_GT(phase->allocsAtSteadyStart, 0u);
        ASSERT_GE(phase->allocsAtSteadyEnd, phase->allocsAtSteadyStart);
        *steadyAllocs =
            phase->allocsAtSteadyEnd - phase->allocsAtSteadyStart;
    };

    Phase phase;
    std::uint64_t warmRun = 0, measuredRun = 0;
    runCounted(101, &phase, &warmRun);      // warms global pools
    runCounted(101, &phase, &measuredRun);  // measured
    EXPECT_EQ(measuredRun, 0u)
        << "steady-state session traffic must not allocate "
           "(0 allocs/event)";
}

} // namespace
