/**
 * @file
 * Tests for the stats framework and the deterministic RNG.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "sim/rng.hh"
#include "sim/stats.hh"

namespace {

using namespace sonuma::sim;

TEST(Stats, CounterRegistersAndCounts)
{
    StatRegistry reg;
    Counter c(reg, "node0.rmc.reqs", "requests");
    c.inc();
    c.inc(9);
    EXPECT_EQ(c.value(), 10u);
    ASSERT_NE(reg.counter("node0.rmc.reqs"), nullptr);
    EXPECT_EQ(reg.counter("node0.rmc.reqs")->value(), 10u);
    EXPECT_EQ(reg.counter("nonexistent"), nullptr);
}

TEST(Stats, SumByPrefixAggregates)
{
    StatRegistry reg;
    Counter a(reg, "node0.l1.hits", "");
    Counter b(reg, "node0.l1.misses", "");
    Counter c(reg, "node1.l1.hits", "");
    a.inc(5);
    b.inc(7);
    c.inc(100);
    EXPECT_EQ(reg.sumByPrefix("node0.l1."), 12u);
    EXPECT_EQ(reg.sumByPrefix("node1."), 100u);
    EXPECT_EQ(reg.sumByPrefix("node2."), 0u);
}

TEST(Stats, HistogramMoments)
{
    StatRegistry reg;
    Histogram h(reg, "lat", "latency");
    for (double v : {1.0, 2.0, 3.0, 4.0, 10.0})
        h.sample(v);
    EXPECT_EQ(h.count(), 5u);
    EXPECT_DOUBLE_EQ(h.mean(), 4.0);
    EXPECT_DOUBLE_EQ(h.min(), 1.0);
    EXPECT_DOUBLE_EQ(h.max(), 10.0);
}

TEST(Stats, HistogramPercentileIsMonotonic)
{
    StatRegistry reg;
    Histogram h(reg, "lat", "");
    for (int i = 1; i <= 1000; ++i)
        h.sample(static_cast<double>(i));
    EXPECT_LE(h.percentile(50), h.percentile(90));
    EXPECT_LE(h.percentile(90), h.percentile(99));
    EXPECT_GE(h.percentile(99), 256.0); // true p99 is 990
}

TEST(Stats, ResetAllClears)
{
    StatRegistry reg;
    Counter c(reg, "c", "");
    Histogram h(reg, "h", "");
    c.inc(3);
    h.sample(5);
    reg.resetAll();
    EXPECT_EQ(c.value(), 0u);
    EXPECT_EQ(h.count(), 0u);
    EXPECT_DOUBLE_EQ(h.mean(), 0.0);
}

TEST(Stats, DumpContainsNamesAndValues)
{
    StatRegistry reg;
    Counter c(reg, "some.counter", "a counter");
    c.inc(17);
    std::ostringstream os;
    reg.dump(os);
    EXPECT_NE(os.str().find("some.counter"), std::string::npos);
    EXPECT_NE(os.str().find("17"), std::string::npos);
}

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += (a.next() == b.next());
    EXPECT_LT(same, 2);
}

TEST(Rng, BelowStaysInRange)
{
    Rng r(7);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(r.below(17), 17u);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng r(9);
    double sum = 0;
    for (int i = 0; i < 10000; ++i) {
        const double u = r.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, ForkedStreamsAreIndependentButDeterministic)
{
    Rng a(42);
    Rng fork1 = a.fork();
    Rng b(42);
    Rng fork2 = b.fork();
    for (int i = 0; i < 50; ++i)
        EXPECT_EQ(fork1.next(), fork2.next());
}

} // namespace
