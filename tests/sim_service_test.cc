/**
 * @file
 * Tests for serial service resources and bandwidth pipes — the queueing
 * building blocks used by DRAM, links, and the emulation/RDMA models.
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/service.hh"
#include "sim/simulation.hh"
#include "sim/task.hh"

namespace {

using namespace sonuma::sim;

TEST(ServiceResource, SerializesJobsFifo)
{
    EventQueue eq;
    ServiceResource res(eq, "srv");
    std::vector<Tick> completions;
    for (int i = 0; i < 3; ++i)
        res.submit(100, [&] { completions.push_back(eq.now()); });
    eq.run();
    EXPECT_EQ(completions, (std::vector<Tick>{100, 200, 300}));
    EXPECT_EQ(res.totalBusy(), 300u);
    EXPECT_EQ(res.jobs(), 3u);
}

TEST(ServiceResource, IdleGapsDoNotAccumulate)
{
    EventQueue eq;
    ServiceResource res(eq, "srv");
    Tick first = 0, second = 0;
    res.submit(50, [&] { first = eq.now(); });
    eq.schedule(1000, [&] { res.submit(50, [&] { second = eq.now(); }); });
    eq.run();
    EXPECT_EQ(first, 50u);
    EXPECT_EQ(second, 1050u); // starts fresh at 1000, not queued behind
}

TEST(ServiceResource, AwaitableUse)
{
    Simulation sim;
    ServiceResource res(sim.eq(), "srv");
    std::vector<int> order;
    auto job = [&](int id, Tick t) -> Task {
        co_await res.use(t);
        order.push_back(id);
    };
    sim.spawn(job(1, 100));
    sim.spawn(job(2, 10));
    sim.run();
    // FIFO by submission: job 1 first even though job 2 is shorter.
    EXPECT_EQ(order, (std::vector<int>{1, 2}));
    EXPECT_EQ(sim.now(), 110u);
}

TEST(BandwidthPipe, SerializationPlusLatency)
{
    EventQueue eq;
    // 1 GB/s, 100 ns propagation.
    BandwidthPipe pipe(eq, "link", 1e9, nsToTicks(100));
    Tick delivered = 0;
    pipe.send(1000, [&] { delivered = eq.now(); }); // 1000 B @ 1 GB/s = 1 us
    eq.run();
    EXPECT_EQ(delivered, usToTicks(1) + nsToTicks(100));
}

TEST(BandwidthPipe, BackToBackMessagesQueueOnSerialization)
{
    EventQueue eq;
    BandwidthPipe pipe(eq, "link", 1e9, nsToTicks(10));
    std::vector<Tick> arrivals;
    for (int i = 0; i < 3; ++i)
        pipe.send(500, [&] { arrivals.push_back(eq.now()); });
    eq.run();
    // Serialization slots at 500 ns each; each arrival +10 ns propagation.
    EXPECT_EQ(arrivals[0], nsToTicks(510));
    EXPECT_EQ(arrivals[1], nsToTicks(1010));
    EXPECT_EQ(arrivals[2], nsToTicks(1510));
}

TEST(BandwidthPipe, SerializationTimeScalesWithSize)
{
    EventQueue eq;
    BandwidthPipe pipe(eq, "link", 12.8e9, 0); // DDR3-1600-like
    EXPECT_EQ(pipe.serializationTime(64), nsToTicks(5));
}

} // namespace
