/**
 * @file
 * Tests for virtual memory: frame allocation, page-table walks (both the
 * functional walk and the PTE layout contract the hardware walker relies
 * on), and address-space functional access.
 */

#include <gtest/gtest.h>

#include <vector>

#include "mem/phys_mem.hh"
#include "sim/log.hh"
#include "vm/address_space.hh"
#include "vm/page_table.hh"

namespace {

using namespace sonuma;
using mem::PhysMem;
using vm::AddressSpace;
using vm::FrameAllocator;
using vm::PageTable;

struct VmFixture : public ::testing::Test
{
    PhysMem mem{256ull << 20};
    FrameAllocator frames{0, 256ull << 20};
};

TEST_F(VmFixture, FrameAllocatorDistinctAndRecycles)
{
    auto f1 = frames.alloc();
    auto f2 = frames.alloc();
    EXPECT_NE(f1, f2);
    EXPECT_EQ(f1 % vm::kPageBytes, 0u);
    EXPECT_EQ(frames.allocated(), 2u);
    frames.free(f1);
    EXPECT_EQ(frames.alloc(), f1); // LIFO recycling
}

TEST_F(VmFixture, ExhaustionIsFatal)
{
    FrameAllocator tiny(0, 2 * vm::kPageBytes);
    tiny.alloc();
    tiny.alloc();
    EXPECT_THROW(tiny.alloc(), sim::FatalError);
}

TEST_F(VmFixture, MapThenTranslate)
{
    PageTable pt(mem, frames);
    const auto frame = frames.alloc();
    pt.map(0x200000, frame);
    auto pa = pt.translate(0x200000 + 123);
    ASSERT_TRUE(pa.has_value());
    EXPECT_EQ(*pa, frame + 123);
}

TEST_F(VmFixture, UnmappedTranslatesToNullopt)
{
    PageTable pt(mem, frames);
    EXPECT_FALSE(pt.translate(0x200000).has_value());
    pt.map(0x200000, frames.alloc());
    EXPECT_TRUE(pt.translate(0x200000).has_value());
    // Neighbouring pages are still unmapped.
    EXPECT_FALSE(pt.translate(0x200000 + vm::kPageBytes).has_value());
}

TEST_F(VmFixture, UnmapRemovesMapping)
{
    PageTable pt(mem, frames);
    pt.map(0x400000, frames.alloc());
    pt.unmap(0x400000);
    EXPECT_FALSE(pt.translate(0x400000).has_value());
}

TEST_F(VmFixture, WalkLevelsMatchHardwareContract)
{
    // The RMC page walker performs kLevels dependent loads starting at
    // root(); verify the PTE chain is exactly what translate() computes.
    PageTable pt(mem, frames);
    const vm::VAddr va = (5ull << 33) | (17ull << 23) | (3ull << 13);
    const auto frame = frames.alloc();
    pt.map(va, frame);

    mem::PAddr table = pt.root();
    for (std::uint32_t level = 0; level < vm::kLevels; ++level) {
        const auto pte =
            mem.readT<std::uint64_t>(PageTable::pteAddr(table, level, va));
        ASSERT_TRUE(PageTable::pteValid(pte)) << "level " << level;
        table = PageTable::pteFrame(pte);
    }
    EXPECT_EQ(table, frame);
}

TEST_F(VmFixture, IndexExtraction)
{
    const vm::VAddr va = (1ull << 33) | (2ull << 23) | (3ull << 13) | 7;
    EXPECT_EQ(PageTable::indexAt(0, va), 1u);
    EXPECT_EQ(PageTable::indexAt(1, va), 2u);
    EXPECT_EQ(PageTable::indexAt(2, va), 3u);
}

TEST_F(VmFixture, DenseMappingsShareTableNodes)
{
    PageTable pt(mem, frames);
    const auto before = pt.tableNodes();
    // 1024 consecutive pages fit one leaf table.
    for (std::uint64_t i = 0; i < 1024; ++i)
        pt.map(i * vm::kPageBytes, frames.alloc());
    // Root + 1 mid + 1 leaf added at most.
    EXPECT_LE(pt.tableNodes() - before, 2u);
}

TEST_F(VmFixture, AddressSpaceAllocIsZeroedAndMapped)
{
    AddressSpace as(mem, frames);
    const auto va = as.alloc(3 * vm::kPageBytes + 5);
    EXPECT_TRUE(as.mapped(va));
    EXPECT_TRUE(as.mapped(va + 3 * vm::kPageBytes)); // rounded up to 4
    EXPECT_EQ(as.readT<std::uint64_t>(va), 0u);
}

TEST_F(VmFixture, AddressSpaceReadWriteAcrossPages)
{
    AddressSpace as(mem, frames);
    const auto va = as.alloc(4 * vm::kPageBytes);
    std::vector<std::uint8_t> src(2 * vm::kPageBytes);
    for (std::size_t i = 0; i < src.size(); ++i)
        src[i] = static_cast<std::uint8_t>(i * 31);
    const auto at = va + vm::kPageBytes - 100; // straddles a boundary
    as.write(at, src.data(), src.size());
    std::vector<std::uint8_t> dst(src.size());
    as.read(at, dst.data(), dst.size());
    EXPECT_EQ(src, dst);
}

TEST_F(VmFixture, DistinctAllocationsDoNotOverlap)
{
    AddressSpace as(mem, frames);
    const auto a = as.alloc(vm::kPageBytes);
    const auto b = as.alloc(vm::kPageBytes);
    as.writeT<std::uint64_t>(a, 0x1111);
    as.writeT<std::uint64_t>(b, 0x2222);
    EXPECT_EQ(as.readT<std::uint64_t>(a), 0x1111u);
    EXPECT_EQ(as.readT<std::uint64_t>(b), 0x2222u);
}

TEST_F(VmFixture, UnmappedAccessIsFatal)
{
    AddressSpace as(mem, frames);
    EXPECT_THROW(as.readT<std::uint64_t>(0x10), sim::FatalError);
}

// Property test: random map/translate agreement against a reference map.
TEST_F(VmFixture, RandomMappingsAgreeWithReference)
{
    PageTable pt(mem, frames);
    std::unordered_map<vm::VAddr, mem::PAddr> ref;
    std::uint64_t x = 88172645463325252ull;
    auto rnd = [&] {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        return x;
    };
    for (int i = 0; i < 500; ++i) {
        const vm::VAddr va =
            (rnd() % (1ull << vm::kVaBits)) & ~(vm::kPageBytes - 1);
        const auto frame = frames.alloc();
        pt.map(va, frame);
        ref[va] = frame;
    }
    for (const auto &[va, frame] : ref) {
        auto pa = pt.translate(va + 42);
        ASSERT_TRUE(pa.has_value());
        EXPECT_EQ(*pa, frame + 42);
    }
}

} // namespace
