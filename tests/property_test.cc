/**
 * @file
 * Property-based and parameterized tests.
 *
 *  - Golden-model fuzz: random sequences of remote reads/writes/atomics
 *    against a host-side reference memory; simulated memory must agree
 *    byte-for-byte at quiescence, for any seed.
 *  - Determinism: identical seeds produce identical simulated end times
 *    and identical memory images.
 *  - Parameterized sweeps: remote reads across request sizes and MAQ
 *    depths always complete, preserve data, and respect monotonicity.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <deque>
#include <map>
#include <vector>

#include "api/session.hh"
#include "node/cluster.hh"
#include "sim/simulation.hh"

namespace {

using namespace sonuma;
using api::RmcSession;

constexpr sim::CtxId kCtx = 1;
constexpr std::uint64_t kSegBytes = 1 << 20;

struct World
{
    sim::Simulation sim;
    std::unique_ptr<node::Cluster> cluster;
    os::Process *server = nullptr;
    os::Process *client = nullptr;
    vm::VAddr seg = 0;

    explicit World(std::uint64_t seed,
                   const rmc::RmcParams &rp =
                       rmc::RmcParams::simulatedHardware())
        : sim(seed)
    {
        node::ClusterParams params;
        params.nodes = 2;
        params.node.rmc = rp;
        cluster = std::make_unique<node::Cluster>(sim, params);
        cluster->createSharedContext(kCtx);
        server = &cluster->node(0).os().createProcess(0);
        seg = server->alloc(kSegBytes);
        cluster->node(0).driver().openContext(*server, kCtx);
        cluster->node(0).driver().registerSegment(*server, kCtx, seg,
                                                  kSegBytes);
        client = &cluster->node(1).os().createProcess(0);
    }
};

/** Host-side reference of the server segment. */
class GoldenMemory
{
  public:
    GoldenMemory() : bytes_(kSegBytes, 0) {}

    void
    write(std::uint64_t off, const void *src, std::uint64_t len)
    {
        std::memcpy(bytes_.data() + off, src, len);
    }

    void
    read(std::uint64_t off, void *dst, std::uint64_t len) const
    {
        std::memcpy(dst, bytes_.data() + off, len);
    }

    std::uint64_t
    fetchAdd(std::uint64_t off, std::uint64_t v)
    {
        std::uint64_t old;
        std::memcpy(&old, bytes_.data() + off, 8);
        const std::uint64_t next = old + v;
        std::memcpy(bytes_.data() + off, &next, 8);
        return old;
    }

    const std::vector<std::uint8_t> &bytes() const { return bytes_; }

  private:
    std::vector<std::uint8_t> bytes_;
};

/** Random op mix against the golden model; checked at quiescence. */
void
runFuzz(std::uint64_t seed, int ops)
{
    World w(seed);
    GoldenMemory golden;
    RmcSession session(w.cluster->node(1).core(0),
                       w.cluster->node(1).driver(), *w.client, kCtx);
    const vm::VAddr buf = session.allocBuffer(8192);

    bool mismatch = false;
    w.sim.spawn([](World *w, GoldenMemory *golden, RmcSession *s,
                   vm::VAddr buf, std::uint64_t seed, int ops,
                   bool *mismatch) -> sim::Task {
        sim::Rng rng(seed * 77 + 1);
        for (int i = 0; i < ops; ++i) {
            // Line-aligned offset and size (the RMC's granularity).
            const std::uint32_t lines =
                static_cast<std::uint32_t>(rng.range(1, 32));
            const std::uint32_t len = lines * 64;
            const std::uint64_t off =
                rng.below((kSegBytes - len) / 64) * 64;
            const int kind = static_cast<int>(rng.below(4));
            if (kind == 0) { // remote write of fresh random data
                std::vector<std::uint8_t> data(len);
                for (auto &b : data)
                    b = static_cast<std::uint8_t>(rng.next());
                w->client->addressSpace().write(buf, data.data(), len);
                const api::OpResult r =
                    co_await s->write(0, off, buf, len);
                EXPECT_TRUE(r.ok());
                golden->write(off, data.data(), len);
            } else if (kind == 1) { // remote read, compare to golden
                const api::OpResult r =
                    co_await s->read(0, off, buf, len);
                EXPECT_TRUE(r.ok());
                std::vector<std::uint8_t> got(len), want(len);
                w->client->addressSpace().read(buf, got.data(), len);
                golden->read(off, want.data(), len);
                if (got != want)
                    *mismatch = true;
            } else if (kind == 2) { // fetch-add on an aligned word
                const std::uint64_t woff = off & ~std::uint64_t(7);
                const api::OpResult r =
                    co_await s->fetchAdd(0, woff, i + 1);
                EXPECT_TRUE(r.ok());
                const std::uint64_t wantOld =
                    golden->fetchAdd(woff, static_cast<std::uint64_t>(
                                               i + 1));
                if (r.oldValue != wantOld)
                    *mismatch = true;
            } else { // local (server-side) functional write
                std::uint64_t v = rng.next();
                w->server->addressSpace().writeT(w->seg + off, v);
                golden->write(off, &v, sizeof(v));
            }
        }
    }(&w, &golden, &session, buf, seed, ops, &mismatch));
    w.sim.run();

    EXPECT_FALSE(mismatch);
    // Full segment comparison at quiescence.
    std::vector<std::uint8_t> image(kSegBytes);
    w.server->addressSpace().read(w.seg, image.data(), kSegBytes);
    EXPECT_EQ(image, golden.bytes());
}

class FuzzSeeds : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(FuzzSeeds, RandomOpsMatchGoldenModel)
{
    runFuzz(GetParam(), 300);
}

INSTANTIATE_TEST_SUITE_P(Property, FuzzSeeds,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

TEST(Determinism, SameSeedSameTimeline)
{
    auto run = [](std::uint64_t seed) {
        World w(seed);
        RmcSession s(w.cluster->node(1).core(0),
                     w.cluster->node(1).driver(), *w.client, kCtx);
        const vm::VAddr buf = s.allocBuffer(4096);
        w.sim.spawn([](RmcSession *s, vm::VAddr buf) -> sim::Task {
            for (int i = 0; i < 100; ++i)
                co_await s->read(0, (std::uint64_t(i) * 640) % 65536,
                                 buf, 64 * (1 + i % 4));
        }(&s, buf));
        return w.sim.run();
    };
    EXPECT_EQ(run(42), run(42));
    EXPECT_NE(run(42), 0u);
}

/** Parameterized read-size sweep: integrity + latency monotonicity. */
class ReadSizes : public ::testing::TestWithParam<std::uint32_t>
{
};

TEST_P(ReadSizes, DataIntactAndLatencyOrdered)
{
    const std::uint32_t size = GetParam();
    World w(7);
    // Pattern the server segment.
    std::vector<std::uint8_t> pattern(size);
    for (std::uint32_t i = 0; i < size; ++i)
        pattern[i] = static_cast<std::uint8_t>(i * 131 + 7);
    w.server->addressSpace().write(w.seg + 4096, pattern.data(), size);

    RmcSession s(w.cluster->node(1).core(0), w.cluster->node(1).driver(),
                 *w.client, kCtx);
    const vm::VAddr buf = s.allocBuffer(size);
    sim::Tick small = 0, measured = 0;
    w.sim.spawn([](sim::Simulation *sim, RmcSession *s, vm::VAddr buf,
                   std::uint32_t size, sim::Tick *small,
                   sim::Tick *measured) -> sim::Task {
        co_await s->read(0, 4096, buf, 64); // warm
        sim::Tick t0 = sim->now();
        co_await s->read(0, 4096, buf, 64);
        *small = sim->now() - t0;
        t0 = sim->now();
        const api::OpResult r = co_await s->read(0, 4096, buf, size);
        *measured = sim->now() - t0;
        EXPECT_TRUE(r.ok());
    }(&w.sim, &s, buf, size, &small, &measured));
    w.sim.run();

    std::vector<std::uint8_t> got(size);
    w.client->addressSpace().read(buf, got.data(), size);
    EXPECT_EQ(got, pattern);
    EXPECT_GE(measured, small); // bigger requests are never faster
}

INSTANTIATE_TEST_SUITE_P(Sweep, ReadSizes,
                         ::testing::Values(64, 128, 256, 512, 1024, 2048,
                                           4096, 8192));

/** Parameterized MAQ-depth sweep: completion under tiny structures. */
class MaqDepths : public ::testing::TestWithParam<std::uint32_t>
{
};

TEST_P(MaqDepths, PipelinedReadsCompleteAtAnyDepth)
{
    auto rp = rmc::RmcParams::simulatedHardware();
    rp.maqEntries = GetParam();
    World w(9, rp);
    RmcSession s(w.cluster->node(1).core(0), w.cluster->node(1).driver(),
                 *w.client, kCtx);
    const vm::VAddr buf = s.allocBuffer(64ull * 64);
    int done = 0;
    w.sim.spawn([](RmcSession *s, vm::VAddr buf, int *done) -> sim::Task {
        std::deque<api::OpHandle> window;
        for (int i = 0; i < 300; ++i) {
            while (window.size() >= s->queueDepth()) {
                EXPECT_TRUE((co_await window.front()).ok());
                window.pop_front();
                ++*done;
            }
            window.push_back(co_await s->readAsync(
                0, (std::uint64_t(i) % 512) * 64,
                buf + (std::uint64_t(i) % 64) * 64, 64));
            while (!window.empty() && window.front().done()) {
                EXPECT_TRUE((co_await window.front()).ok());
                window.pop_front();
                ++*done;
            }
        }
        while (!window.empty()) {
            EXPECT_TRUE((co_await window.front()).ok());
            window.pop_front();
            ++*done;
        }
    }(&s, buf, &done));
    w.sim.run();
    EXPECT_EQ(done, 300);
}

INSTANTIATE_TEST_SUITE_P(Sweep, MaqDepths,
                         ::testing::Values(1, 2, 4, 8, 16, 32));

//
// Multi-QP WQ/CQ invariants: every posted slot completes exactly once,
// completion order within one QP is FIFO for uniform ops, cross-QP
// order is unconstrained, and batched doorbells never lose a post.
//

/** Per-seed fuzz of the multi-QP async path with full accounting. */
class MultiQpSeeds : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(MultiQpSeeds, EveryPostedSlotCompletesExactlyOnce)
{
    const std::uint64_t seed = GetParam();
    auto rp = rmc::RmcParams::simulatedHardware();
    rp.qpCount = 4;
    rp.qpEntries = 8;
    World w(seed, rp);
    api::SessionParams sp;
    sp.doorbellBatching = (seed % 2) == 1; // both modes across seeds
    RmcSession s(w.cluster->node(1).core(0), w.cluster->node(1).driver(),
                 *w.client, kCtx, sp);
    ASSERT_EQ(s.qpCount(), 4u);
    ASSERT_EQ(s.perQpDepth(), 8u);
    ASSERT_EQ(s.queueDepth(), 32u);
    const vm::VAddr buf =
        s.allocBuffer(std::uint64_t(s.queueDepth()) * 64);

    struct Tracking
    {
        int completions = 0;
        int posts = 0;
        bool badStatus = false;
        std::vector<int> perQp; //!< completions per queue pair
    } t;
    t.perQp.resize(4, 0);

    w.sim.spawn([](RmcSession *s, vm::VAddr buf, std::uint64_t seed,
                   Tracking *t) -> sim::Task {
        sim::Rng rng(seed * 131 + 7);
        // Windows are per queue pair: with explicit pins a single QP
        // can lap its own ring long before queueDepth() global posts,
        // so retire-before-post must be enforced per QP (the general
        // form of the one-ring-lap rule).
        std::vector<std::deque<api::OpHandle>> window(s->qpCount());
        auto retire = [&](std::uint32_t qp) -> sim::ValueTask<std::uint8_t> {
            api::OpHandle h = window[qp].front();
            window[qp].pop_front();
            const api::OpResult r = co_await h;
            ++t->completions;
            if (!r.ok())
                t->badStatus = true;
            ++t->perQp[qp];
            co_return 0;
        };
        for (int i = 0; i < 400; ++i) {
            // Mix explicit QP pins and round-robin picks.
            const bool pin = rng.chance(0.5);
            const std::uint32_t hint =
                pin ? static_cast<std::uint32_t>(rng.below(s->qpCount()))
                    : RmcSession::kAnyQp;
            const std::uint32_t g = s->nextSlot(hint);
            const std::uint32_t qp = g / s->perQpDepth();
            while (window[qp].size() >= s->perQpDepth())
                co_await retire(qp);
            api::OpHandle h = co_await s->readAsync(
                0, rng.below((kSegBytes - 64) / 64) * 64,
                buf + std::uint64_t(g) * 64, 64, hint);
            EXPECT_EQ(h.slot(), g); // nextSlot() predicted the slot
            ++t->posts;
            window[qp].push_back(h);
            for (std::uint32_t q = 0; q < s->qpCount(); ++q)
                while (!window[q].empty() && window[q].front().done())
                    co_await retire(q);
        }
        for (std::uint32_t q = 0; q < s->qpCount(); ++q)
            while (!window[q].empty())
                co_await retire(q);
    }(&s, buf, seed, &t));
    w.sim.run();

    // Exactly once: one completion per post, nothing left in flight,
    // and the RMC's CQ-write count agrees with the session's view.
    EXPECT_EQ(t.posts, 400);
    EXPECT_EQ(t.completions, 400);
    EXPECT_EQ(s.outstanding(), 0u);
    EXPECT_EQ(s.pendingDoorbells(), 0u);
    EXPECT_FALSE(t.badStatus);

    // Round-robin + random pins must exercise every queue pair.
    int total = 0;
    for (const int n : t.perQp) {
        EXPECT_GT(n, 0) << "a QP was starved";
        total += n;
    }
    EXPECT_EQ(total, 400);
}

INSTANTIATE_TEST_SUITE_P(Property, MultiQpSeeds,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

/**
 * Per-QP FIFO: with uniform service latency (warm TLBs, single-line
 * reads of one warm page), completions on one queue pair are observed
 * in post order. Cross-QP completion order is deliberately left
 * unconstrained — nothing ties one QP's ticks to another's.
 */
TEST(MultiQp, PerQpFifoCompletionOrderForUniformOps)
{
    auto rp = rmc::RmcParams::simulatedHardware();
    rp.qpCount = 4;
    rp.qpEntries = 8;
    World w(23, rp);
    RmcSession s(w.cluster->node(1).core(0), w.cluster->node(1).driver(),
                 *w.client, kCtx);
    const vm::VAddr buf =
        s.allocBuffer(std::uint64_t(s.queueDepth()) * 64);

    std::vector<std::vector<sim::Tick>> perQp(4);
    w.sim.spawn([](RmcSession *s, vm::VAddr buf,
                   std::vector<std::vector<sim::Tick>> *perQp)
                    -> sim::Task {
        // Warm every TLB/CT$/cache involved: one full lap of sync
        // reads (round-robin covers each QP's slots).
        for (std::uint32_t i = 0; i < s->queueDepth(); ++i)
            EXPECT_TRUE((co_await s->read(0, std::uint64_t(i % 8) * 64,
                                          buf + std::uint64_t(i) * 64,
                                          64))
                            .ok());
        // Measured laps: a full window on each QP, pinned explicitly.
        std::deque<std::pair<api::OpHandle, std::uint32_t>> window;
        for (int lap = 0; lap < 3; ++lap) {
            for (std::uint32_t q = 0; q < s->qpCount(); ++q)
                for (std::uint32_t i = 0; i < s->perQpDepth(); ++i) {
                    const std::uint32_t g = s->nextSlot(q);
                    window.emplace_back(
                        co_await s->readAsync(0,
                                              std::uint64_t(i % 8) * 64,
                                              buf + std::uint64_t(g) * 64,
                                              64, q),
                        q);
                }
            for (auto &[h, q] : window) {
                const api::OpResult r = co_await h;
                EXPECT_TRUE(r.ok());
                (*perQp)[q].push_back(r.completedAt);
            }
            window.clear();
        }
    }(&s, buf, &perQp));
    w.sim.run();

    for (const auto &ticks : perQp) {
        ASSERT_EQ(ticks.size(), 3u * 8u);
        for (std::size_t i = 1; i < ticks.size(); ++i)
            EXPECT_GE(ticks[i], ticks[i - 1])
                << "same-QP uniform reads completed out of post order";
    }
}

/** Batched doorbells: posts stay invisible until flush, none lost. */
TEST(MultiQp, DoorbellBatchingFlushReleasesAllPosts)
{
    auto rp = rmc::RmcParams::simulatedHardware();
    rp.qpCount = 4;
    rp.qpEntries = 8;
    World w(17, rp);
    api::SessionParams sp;
    sp.doorbellBatching = true;
    RmcSession s(w.cluster->node(1).core(0), w.cluster->node(1).driver(),
                 *w.client, kCtx, sp);
    const vm::VAddr buf = s.allocBuffer(64ull * 64);

    bool sawAll = false;
    w.sim.spawn([](RmcSession *s, vm::VAddr buf, bool *sawAll)
                    -> sim::Task {
        // One post per QP, round-robin: four pending doorbells.
        std::vector<api::OpHandle> hs;
        for (int i = 0; i < 4; ++i)
            hs.push_back(co_await s->readAsync(
                0, std::uint64_t(i) * 64, buf + std::uint64_t(i) * 64,
                64));
        EXPECT_EQ(s->pendingDoorbells(), 4u);
        EXPECT_EQ(s->outstanding(), 4u);
        s->flush();
        EXPECT_EQ(s->pendingDoorbells(), 0u);
        for (auto &h : hs)
            EXPECT_TRUE((co_await h).ok());
        *sawAll = true;

        // Without an explicit flush the blocking rendezvous flushes
        // automatically — a sync op after batched posts cannot hang.
        api::OpHandle h = co_await s->readAsync(0, 0, buf, 64);
        EXPECT_TRUE(h.valid());
        EXPECT_EQ(s->pendingDoorbells(), 1u);
        EXPECT_TRUE((co_await h).ok());
        EXPECT_EQ(s->pendingDoorbells(), 0u);
    }(&s, buf, &sawAll));
    w.sim.run();
    EXPECT_TRUE(sawAll);
    EXPECT_EQ(s.outstanding(), 0u);
}

/** The emulation platform preserves semantics, only timing changes. */
TEST(EmulationPlatform, SameSemanticsSlowerClock)
{
    World hw(11, rmc::RmcParams::simulatedHardware());
    World emu(11, rmc::RmcParams::emulationPlatform());

    auto measure = [](World &w) {
        RmcSession s(w.cluster->node(1).core(0),
                     w.cluster->node(1).driver(), *w.client, kCtx);
        const vm::VAddr buf = s.allocBuffer(64);
        w.server->addressSpace().writeT<std::uint64_t>(w.seg, 0xfeed);
        sim::Tick rtt = 0;
        w.sim.spawn([](sim::Simulation *sim, RmcSession *s, vm::VAddr buf,
                       sim::Tick *rtt) -> sim::Task {
            co_await s->read(0, 0, buf, 64); // warm
            const sim::Tick t0 = sim->now();
            const api::OpResult r = co_await s->read(0, 0, buf, 64);
            *rtt = sim->now() - t0;
            EXPECT_TRUE(r.ok());
        }(&w.sim, &s, buf, &rtt));
        w.sim.run();
        std::uint64_t got = 0;
        w.client->addressSpace().read(buf, &got, sizeof(got));
        EXPECT_EQ(got, 0xfeedu);
        return rtt;
    };

    const sim::Tick hwRtt = measure(hw);
    const sim::Tick emuRtt = measure(emu);
    // Paper: dev platform ~5x the simulated hardware's latency.
    EXPECT_GT(static_cast<double>(emuRtt) / static_cast<double>(hwRtt),
              3.0);
    EXPECT_LT(static_cast<double>(emuRtt) / static_cast<double>(hwRtt),
              8.0);
}

/** Torus-fabric cluster: full stack over a routed topology. */
TEST(TorusCluster, RemoteReadsAcrossHops)
{
    sim::Simulation sim(13);
    node::ClusterParams params;
    params.nodes = 4;
    params.topology = node::Topology::kTorus;
    params.torus.dims = {2, 2};
    node::Cluster cluster(sim, params);
    cluster.createSharedContext(kCtx);

    auto &server = cluster.node(3).os().createProcess(0);
    const vm::VAddr seg = server.alloc(1 << 16);
    cluster.node(3).driver().openContext(server, kCtx);
    cluster.node(3).driver().registerSegment(server, kCtx, seg, 1 << 16);
    server.addressSpace().writeT<std::uint64_t>(seg + 128, 0x70517051ULL);

    auto &client = cluster.node(0).os().createProcess(0);
    RmcSession s(cluster.node(0).core(0), cluster.node(0).driver(),
                 client, kCtx);
    const vm::VAddr buf = s.allocBuffer(64);
    api::OpResult result;
    result.status = rmc::CqStatus::kFabricError;
    sim.spawn([](RmcSession *s, vm::VAddr buf,
                 api::OpResult *r) -> sim::Task {
        *r = co_await s->read(3, 128, buf, 64);
    }(&s, buf, &result));
    sim.run();
    EXPECT_TRUE(result.ok());
    EXPECT_EQ(client.addressSpace().readT<std::uint64_t>(buf), 0x70517051ULL);
}

} // namespace
