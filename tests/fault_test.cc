/**
 * @file
 * Fault-injection tests: FaultPlan parsing (grammar + did-you-mean),
 * FaultInjector arm-time validation, fault-aware adaptive torus routing
 * (100% delivery around a failed link), lossy windows, failure
 * notifications with reasons, and end-to-end degraded-mode runs through
 * the SweepDriver (recovery, exact-once accounting, determinism, and
 * the permanent-fault stall diagnostic).
 */

#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "api/sweep.hh"
#include "fabric/crossbar.hh"
#include "fabric/fault.hh"
#include "fabric/router.hh"
#include "fabric/torus.hh"
#include "sim/event_queue.hh"
#include "sim/stats.hh"

namespace {

using namespace sonuma;
using namespace sonuma::fab;
using sim::EventQueue;
using sim::StatRegistry;

//
// ----------------------------- parsing ---------------------------------
//

FaultPlan
mustParse(const std::string &spec, std::uint32_t nodes = 16)
{
    FaultPlan plan;
    std::string error;
    EXPECT_TRUE(FaultPlan::parse(spec, nodes, &plan, &error))
        << spec << ": " << error;
    return plan;
}

std::string
parseError(const std::string &spec, std::uint32_t nodes = 16)
{
    FaultPlan plan;
    std::string error;
    EXPECT_FALSE(FaultPlan::parse(spec, nodes, &plan, &error)) << spec;
    return error;
}

TEST(FaultPlanParse, HealthyScenariosAreEmptyPlans)
{
    EXPECT_TRUE(mustParse("none").empty());
    // incast is a workload-level traffic pattern, not a fabric fault.
    EXPECT_TRUE(mustParse("incast").empty());
}

TEST(FaultPlanParse, NodeKillDefaultsVictimToMiddleNode)
{
    const FaultPlan plan = mustParse("node-kill@50us", 16);
    ASSERT_EQ(plan.events().size(), 1u);
    EXPECT_EQ(plan.events()[0].kind, FaultEventKind::kNodeKill);
    EXPECT_EQ(plan.events()[0].at, sim::usToTicks(50));
    EXPECT_EQ(plan.events()[0].a, 8); // nodes / 2
}

TEST(FaultPlanParse, NodeKillWithDurationAndVictim)
{
    const FaultPlan plan = mustParse("node-kill@50us+100us:3");
    ASSERT_EQ(plan.events().size(), 2u);
    EXPECT_EQ(plan.events()[0].kind, FaultEventKind::kNodeKill);
    EXPECT_EQ(plan.events()[0].a, 3);
    EXPECT_EQ(plan.events()[1].kind, FaultEventKind::kNodeRecover);
    EXPECT_EQ(plan.events()[1].a, 3);
    EXPECT_EQ(plan.events()[1].at, sim::usToTicks(150));
}

TEST(FaultPlanParse, LinkKillAndFlapAndDrop)
{
    const FaultPlan kill = mustParse("link-kill@10us:2-3");
    ASSERT_EQ(kill.events().size(), 1u);
    EXPECT_EQ(kill.events()[0].kind, FaultEventKind::kLinkKill);
    EXPECT_EQ(kill.events()[0].a, 2);
    EXPECT_EQ(kill.events()[0].b, 3);

    // 3 cycles = 3 kills + 3 recovers, half a period apart.
    const FaultPlan flap = mustParse("link-flap@40us~30usx3:0-1");
    EXPECT_EQ(flap.events().size(), 6u);
    const auto sorted = flap.sorted();
    EXPECT_EQ(sorted[0].kind, FaultEventKind::kLinkKill);
    EXPECT_EQ(sorted[0].at, sim::usToTicks(40));
    EXPECT_EQ(sorted[1].kind, FaultEventKind::kLinkRecover);
    EXPECT_EQ(sorted[1].at, sim::usToTicks(55));

    const FaultPlan drop = mustParse("drop@10us+30us:1-2");
    ASSERT_EQ(drop.events().size(), 2u);
    EXPECT_EQ(drop.events()[0].kind, FaultEventKind::kDropStart);
    EXPECT_EQ(drop.events()[1].kind, FaultEventKind::kDropEnd);
    EXPECT_EQ(drop.events()[1].at, sim::usToTicks(40));
}

TEST(FaultPlanParse, MisspelledScenarioGetsDidYouMean)
{
    EXPECT_NE(parseError("node-kil@50us").find("did you mean 'node-kill'"),
              std::string::npos);
    EXPECT_NE(parseError("link-klil@50us").find("did you mean"),
              std::string::npos);
    // Far-off garbage lists the valid grammar instead of guessing.
    EXPECT_NE(parseError("explode@1us").find("valid:"), std::string::npos);
}

TEST(FaultPlanParse, MalformedSpecsFailWithPreciseErrors)
{
    // Times require a unit suffix.
    EXPECT_NE(parseError("node-kill@50").find("unit suffix"),
              std::string::npos);
    // Bare scenarios take no arguments.
    EXPECT_NE(parseError("incast@5us").find("takes no"), std::string::npos);
    // Scheduled scenarios need a time.
    EXPECT_NE(parseError("node-kill").find("@<time>"), std::string::npos);
    // Flap needs period x cycles.
    EXPECT_FALSE(parseError("link-flap@40us").empty());
    EXPECT_FALSE(parseError("link-flap@40us~30usx0").empty());
    EXPECT_FALSE(parseError("").empty());
}

//
// ------------------------ arm-time validation ---------------------------
//

TEST(FaultInjector, ArmRejectsOutOfRangeNode)
{
    EventQueue eq;
    StatRegistry stats;
    CrossbarFabric xbar(eq, stats, CrossbarParams{});
    std::vector<std::unique_ptr<NetworkInterface>> nis;
    for (sim::NodeId i = 0; i < 4; ++i)
        nis.push_back(std::make_unique<NetworkInterface>(
            eq, stats, "ini" + std::to_string(i), i, xbar));

    FaultPlan plan;
    plan.killNode(sim::usToTicks(1), 9);
    FaultInjector inj(eq, xbar, plan);
    EXPECT_THROW(inj.arm(), std::invalid_argument);
}

TEST(FaultInjector, ArmRejectsNonexistentTorusLink)
{
    EventQueue eq;
    StatRegistry stats;
    TorusParams p;
    p.dims = {4, 4};
    TorusFabric torus(eq, stats, p);

    // 0 and 5 are diagonal neighbors on a 4x4 torus: no direct link.
    FaultPlan plan;
    plan.killLink(sim::usToTicks(1), 0, 5);
    FaultInjector inj(eq, torus, plan);
    EXPECT_THROW(inj.arm(), std::invalid_argument);

    // 0 -> 1 is a real +x link; the same plan shape arms fine.
    FaultPlan good;
    good.killLink(sim::usToTicks(1), 0, 1);
    FaultInjector okInj(eq, torus, good);
    EXPECT_NO_THROW(okInj.arm());
    EXPECT_EQ(okInj.eventCount(), 1u);
}

//
// ------------------- fault-aware torus routing --------------------------
//

struct Torus444 : public ::testing::Test
{
    EventQueue eq;
    StatRegistry stats;
    std::unique_ptr<TorusFabric> torus;
    std::vector<std::unique_ptr<NetworkInterface>> nis;
    int received = 0;

    void
    build(RoutingMode mode)
    {
        TorusParams p;
        p.dims = {4, 4, 4};
        p.routing = mode;
        torus = std::make_unique<TorusFabric>(eq, stats, p);
        for (sim::NodeId i = 0; i < 64; ++i) {
            nis.push_back(std::make_unique<NetworkInterface>(
                eq, stats, "fni" + std::to_string(i), i, *torus));
            auto *ni = nis.back().get();
            ni->onArrival(Lane::kRequest, [this, ni] {
                while (ni->hasMessage(Lane::kRequest)) {
                    ni->pop(Lane::kRequest);
                    ++received;
                }
            });
        }
    }

    int
    sendAllPairs()
    {
        int sent = 0;
        for (sim::NodeId a = 0; a < 64; ++a)
            for (sim::NodeId b = 0; b < 64; ++b) {
                if (a == b)
                    continue;
                Message m;
                m.op = Op::kReadReq;
                m.srcNid = a;
                m.dstNid = b;
                EXPECT_TRUE(nis[a]->trySend(m));
                ++sent;
            }
        return sent;
    }
};

TEST_F(Torus444, AdaptiveDelivers100PercentAroundFailedLink)
{
    build(RoutingMode::kAdaptive);
    torus->failLink(0, 1); // +x out of the origin
    const int sent = sendAllPairs();
    eq.run();
    EXPECT_EQ(received, sent) << "adaptive routing must detour every "
                                 "packet around a single failed link";
    EXPECT_EQ(torus->droppedMessages(), 0u);
}

TEST_F(Torus444, DorDropsOnFailedLinkAdaptiveDoesNot)
{
    build(RoutingMode::kDor);
    torus->failLink(0, 1);
    const int sent = sendAllPairs();
    eq.run();
    EXPECT_LT(received, sent);
    EXPECT_GT(torus->droppedMessages(), 0u);
    EXPECT_EQ(received + static_cast<int>(torus->droppedMessages()), sent)
        << "every undelivered packet must be counted dropped";
}

TEST_F(Torus444, RecoveredLinkCarriesTrafficAgain)
{
    build(RoutingMode::kDor);
    torus->failLink(0, 1);
    torus->recoverLink(0, 1);
    const int sent = sendAllPairs();
    eq.run();
    EXPECT_EQ(received, sent);
    EXPECT_EQ(torus->droppedMessages(), 0u);
}

TEST_F(Torus444, LossyWindowDropsSilently)
{
    build(RoutingMode::kDor);
    torus->setLinkLossy(0, 1, true);
    Message m;
    m.op = Op::kReadReq;
    m.srcNid = 0;
    m.dstNid = 1;
    ASSERT_TRUE(nis[0]->trySend(m));
    eq.run();
    EXPECT_EQ(received, 0);
    EXPECT_EQ(torus->droppedMessages(), 1u);
    // Silent: lossy windows model in-flight corruption, not topology
    // changes, so no failure notification fires.
    EXPECT_EQ(nis[0]->lastFailure().kind, FailureKind::kNone);

    torus->setLinkLossy(0, 1, false);
    ASSERT_TRUE(nis[0]->trySend(m));
    eq.run();
    EXPECT_EQ(received, 1);
}

TEST_F(Torus444, FailureNotificationsCarryReasons)
{
    build(RoutingMode::kDor);

    torus->failLink(2, 3);
    EXPECT_EQ(nis[0]->lastFailure().kind, FailureKind::kLinkDown);
    EXPECT_EQ(nis[0]->lastFailure().a, 2);
    EXPECT_EQ(nis[0]->lastFailure().b, 3);

    torus->recoverLink(2, 3);
    EXPECT_EQ(nis[0]->lastFailure().kind, FailureKind::kLinkUp);

    torus->failNode(7);
    EXPECT_EQ(nis[0]->lastFailure().kind, FailureKind::kNodeDown);
    EXPECT_EQ(nis[0]->lastFailure().a, 7);

    torus->recoverNode(7);
    EXPECT_EQ(nis[0]->lastFailure().kind, FailureKind::kNodeUp);
    EXPECT_EQ(nis[0]->lastFailure().a, 7);
}

//
// --------------------- end-to-end degraded runs -------------------------
//

api::SweepConfig
degradedConfig(const std::string &faultSpec)
{
    api::SweepConfig cfg;
    cfg.opsPerNode = 24;
    cfg.faultSpec = faultSpec;
    cfg.echo = false;
    return cfg;
}

/** A cell's JSON with the host_seconds wall-clock field stripped. */
std::string
jsonSansHostSeconds(const api::SweepCellResult &cell)
{
    std::ostringstream os;
    cell.writeJson(os);
    const std::string s = os.str();
    return s.substr(0, s.find(", \"host_seconds\""));
}

TEST(DegradedRun, NodeKillRecoverCompletesWithExactAccounting)
{
    // maxAttempts = 1 pins the legacy fail-fast RMC: every timed-out
    // transfer aborts to software immediately, which is what this
    // test's workload-level retry accounting exercises. (With the
    // default retransmission budget the RMC would ride out the kill
    // window transparently and abortedOps would stay 0 — that path is
    // covered by the drop-window tests.)
    auto cfg = degradedConfig("node-kill@20us+40us");
    cfg.rmcParams.maxAttempts = 1;
    api::SweepDriver driver(cfg);
    const auto cell =
        driver.runCell(16, node::Topology::kTorus, 64, 16);

    // Traffic resumed after recovery: every op eventually completed
    // exactly once, and each aborted attempt is either a retry or a
    // terminal failure — nothing double-counted, nothing lost.
    EXPECT_EQ(cell.okOps + cell.failedOps, cell.ops);
    EXPECT_EQ(cell.abortedOps, cell.retriedOps + cell.failedOps);
    EXPECT_EQ(cell.failedOps, 0u) << "transient kill within the retry "
                                     "budget must lose no ops";
    EXPECT_GT(cell.abortedOps, 0u) << "the kill window must bite";
    EXPECT_GT(cell.droppedMessages, 0u);
    EXPECT_GT(cell.goodputMops, 0.0);
    EXPECT_TRUE(cell.degraded());
}

TEST(DegradedRun, DropWindowRecoversAllOpsViaRetransmission)
{
    // Workload-level retries off: every packet lost in the silent drop
    // window must be recovered by the RMC's timeout-driven
    // retransmission alone. Nothing aborts to software, nothing is
    // lost, and the drops-vs-lost-ops audit (ok + unrecoverable == ops,
    // checked fatally inside runCell for exactly this shape of cell)
    // closes.
    auto cfg = degradedConfig("drop@10us+60us");
    cfg.maxRetries = 0;
    api::SweepDriver driver(cfg);
    const auto cell =
        driver.runCell(16, node::Topology::kTorus, 64, 16);
    EXPECT_GT(cell.droppedMessages, 0u) << "the drop window must bite";
    EXPECT_GT(cell.retransmits, 0u) << "recovery never ran";
    EXPECT_EQ(cell.unrecoverable, 0u);
    EXPECT_EQ(cell.okOps, cell.ops) << "ops lost despite retransmission";
    EXPECT_EQ(cell.abortedOps, 0u)
        << "recovery must be invisible to the workload retry ladder";
    EXPECT_TRUE(cell.degraded());
}

TEST(DegradedRun, SameSeedIsByteIdentical)
{
    const std::string spec = "link-flap@10us~20usx3:0-1";
    api::SweepDriver a(degradedConfig(spec));
    api::SweepDriver b(degradedConfig(spec));
    const auto ca = a.runCell(16, node::Topology::kTorus, 64, 16);
    const auto cb = b.runCell(16, node::Topology::kTorus, 64, 16);
    EXPECT_EQ(jsonSansHostSeconds(ca), jsonSansHostSeconds(cb))
        << "same seed + same fault plan must replay bit-identically";
    EXPECT_EQ(ca.simMicros, cb.simMicros);
    EXPECT_EQ(ca.droppedMessages, cb.droppedMessages);
}

TEST(DegradedRun, AdaptiveRoutingRidesOutLinkKillWithoutRetries)
{
    auto cfg = degradedConfig("link-kill@10us");
    cfg.routing = RoutingMode::kAdaptive;
    api::SweepDriver driver(cfg);
    const auto cell =
        driver.runCell(16, node::Topology::kTorus, 64, 16);
    EXPECT_EQ(cell.okOps, cell.ops);
    EXPECT_EQ(cell.abortedOps, 0u)
        << "adaptive detours mean no op ever sees the dead link";
    EXPECT_EQ(cell.droppedMessages, 0u);
}

TEST(DegradedRun, PermanentNodeKillSurfacesStallDiagnostic)
{
    // No recovery event: the dead node can never announce its barrier
    // arrival and its peers' ops burn out their retry budgets, so the
    // simulation quiesces with coroutines suspended. The bounded
    // barrier re-announce guarantees quiescence (no livelock), and
    // Workload::run turns it into a diagnostic instead of a hang.
    auto cfg = degradedConfig("node-kill@20us");
    cfg.opsPerNode = 8;
    cfg.maxRetries = 2;
    api::SweepDriver driver(cfg);
    EXPECT_THROW(driver.runCell(4, node::Topology::kTorus, 64, 16),
                 std::runtime_error);
}

TEST(DegradedRun, AdaptiveOnCrossbarIsRejected)
{
    auto cfg = degradedConfig("none");
    cfg.routing = RoutingMode::kAdaptive;
    api::SweepDriver driver(cfg);
    EXPECT_THROW(driver.runCell(4, node::Topology::kCrossbar, 64, 16),
                 std::invalid_argument);
}

TEST(DegradedRun, HealthyCellJsonHasNoDegradedFields)
{
    api::SweepDriver driver(degradedConfig("none"));
    const auto cell =
        driver.runCell(4, node::Topology::kCrossbar, 64, 16);
    EXPECT_FALSE(cell.degraded());
    std::ostringstream os;
    cell.writeJson(os);
    EXPECT_EQ(os.str().find("fault_scenario"), std::string::npos)
        << "healthy artifacts must keep the pre-fault schema byte for "
           "byte";
    EXPECT_EQ(os.str().find("goodput_mops"), std::string::npos);
    EXPECT_EQ(cell.okOps, cell.ops); // accounting holds even when hidden
}

} // namespace
