/**
 * @file
 * ClusterSpec / TestBed tests: eager validation of bad configurations
 * (torus dims vs node count, zero nodes), declarative construction of
 * crossbar and torus beds, session caching, and qpDepth plumbing down
 * to the queue pairs.
 */

#include <gtest/gtest.h>

#include <stdexcept>

#include "api/testbed.hh"
#include "fabric/fault.hh"
#include "fabric/router.hh"
#include "sim/simulation.hh"

namespace {

using namespace sonuma;
using api::ClusterSpec;
using api::TestBed;
using api::operator""_KiB;
using api::operator""_MiB;

TEST(ClusterParamsValidation, TorusDimsMustMultiplyToNodeCount)
{
    sim::Simulation sim(1);
    node::ClusterParams p;
    p.nodes = 16;
    p.topology = node::Topology::kTorus;
    p.torus.dims = {4, 3}; // 12 != 16
    try {
        node::Cluster cluster(sim, p);
        FAIL() << "expected std::invalid_argument";
    } catch (const std::invalid_argument &e) {
        const std::string msg = e.what();
        // The message names both the dims and the node count.
        EXPECT_NE(msg.find("4x3"), std::string::npos) << msg;
        EXPECT_NE(msg.find("16"), std::string::npos) << msg;
    }
}

TEST(ClusterParamsValidation, ZeroNodesRejected)
{
    sim::Simulation sim(1);
    node::ClusterParams p;
    p.nodes = 0;
    EXPECT_THROW(node::Cluster cluster(sim, p), std::invalid_argument);
}

TEST(ClusterParamsValidation, ZeroRadixAndEmptyDimsRejected)
{
    node::ClusterParams p;
    p.nodes = 8;
    p.topology = node::Topology::kTorus;
    p.torus.dims = {};
    EXPECT_THROW(node::validate(p), std::invalid_argument);
    p.torus.dims = {8, 0};
    EXPECT_THROW(node::validate(p), std::invalid_argument);
}

TEST(ClusterParamsValidation, Bad3dDimsNameTheOffendingVector)
{
    node::ClusterParams p;
    p.nodes = 256;
    p.topology = node::Topology::kTorus;
    p.torus.dims = {8, 8, 8}; // 512 != 256
    try {
        node::validate(p);
        FAIL() << "expected std::invalid_argument";
    } catch (const std::invalid_argument &e) {
        const std::string msg = e.what();
        EXPECT_NE(msg.find("8x8x8"), std::string::npos) << msg;
        EXPECT_NE(msg.find("512"), std::string::npos) << msg;
        EXPECT_NE(msg.find("256"), std::string::npos) << msg;
    }
}

TEST(ClusterParamsValidation, ZeroRadixMessagePrintsTheDimsVector)
{
    node::ClusterParams p;
    p.nodes = 64;
    p.topology = node::Topology::kTorus;
    p.torus.dims = {8, 0, 8};
    try {
        node::validate(p);
        FAIL() << "expected std::invalid_argument";
    } catch (const std::invalid_argument &e) {
        EXPECT_NE(std::string(e.what()).find("8x0x8"), std::string::npos)
            << e.what();
    }
}

TEST(ClusterParamsValidation, DeriveCapacitiesScalesIttAndEjectRing)
{
    node::ClusterParams p;
    // Table 1 defaults must be a strict no-op (fig7 byte-identity).
    node::ClusterParams defaults = p;
    node::deriveCapacities(defaults);
    EXPECT_EQ(defaults.node.rmc.maxTids, p.node.rmc.maxTids);
    EXPECT_EQ(defaults.node.ni.ejectQueueDepth, p.node.ni.ejectQueueDepth);

    // A deep multi-QP window gets a tid per WQ slot...
    p.node.rmc.qpCount = 4;
    p.node.rmc.qpEntries = 64;
    // ...and a 512-node rack gets incast-depth eject rings.
    p.nodes = 512;
    node::deriveCapacities(p);
    EXPECT_EQ(p.node.rmc.maxTids, 256u);
    EXPECT_EQ(p.node.ni.ejectQueueDepth, 128u);
}

TEST(ClusterSpecTest, Torus3dBedBuildsAndValidates)
{
    using api::operator""_KiB;
    // {2, 2, 2} = 8 nodes builds; a wrong product throws eagerly.
    api::TestBed bed(api::ClusterSpec{}
                         .nodes(8)
                         .torus(2, 2, 2)
                         .segmentPerNode(64_KiB));
    EXPECT_EQ(bed.nodes(), 8u);
    EXPECT_THROW(api::ClusterSpec{}.nodes(8).torus(2, 2, 4).resolve(),
                 std::invalid_argument);
}

TEST(RmcParamsValidation, ZeroAndAbsurdQpConfigsRejectedEagerly)
{
    // qpCount = 0: no queue pair to post on.
    rmc::RmcParams p;
    p.qpCount = 0;
    try {
        rmc::validate(p);
        FAIL() << "expected std::invalid_argument";
    } catch (const std::invalid_argument &e) {
        EXPECT_NE(std::string(e.what()).find("qpCount"),
                  std::string::npos)
            << e.what();
    }

    // qpCount beyond the Context Table's per-context capacity.
    p = rmc::RmcParams{};
    p.qpCount = p.maxQpsPerContext + 1;
    try {
        rmc::validate(p);
        FAIL() << "expected std::invalid_argument";
    } catch (const std::invalid_argument &e) {
        const std::string msg = e.what();
        EXPECT_NE(msg.find("maxQpsPerContext"), std::string::npos) << msg;
        EXPECT_NE(msg.find(std::to_string(p.qpCount)), std::string::npos)
            << msg;
    }

    // qpEntries = 0 and qpEntries beyond the CQ's 16-bit wqIndex.
    p = rmc::RmcParams{};
    p.qpEntries = 0;
    EXPECT_THROW(rmc::validate(p), std::invalid_argument);
    p.qpEntries = 65537;
    try {
        rmc::validate(p);
        FAIL() << "expected std::invalid_argument";
    } catch (const std::invalid_argument &e) {
        EXPECT_NE(std::string(e.what()).find("65536"), std::string::npos)
            << e.what();
    }

    // rgpQpBurst = 0 would stall the arbitration rotation forever.
    p = rmc::RmcParams{};
    p.rgpQpBurst = 0;
    EXPECT_THROW(rmc::validate(p), std::invalid_argument);

    // The defaults and both presets are valid.
    EXPECT_NO_THROW(rmc::validate(rmc::RmcParams{}));
    EXPECT_NO_THROW(rmc::validate(rmc::RmcParams::simulatedHardware()));
    EXPECT_NO_THROW(rmc::validate(rmc::RmcParams::emulationPlatform()));
}

TEST(RmcParamsValidation, ClusterBuildChecksRmcParams)
{
    // The check fires on every cluster construction path, TestBed
    // included, before any node is built.
    sim::Simulation sim(1);
    node::ClusterParams p;
    p.node.rmc.qpCount = 0;
    EXPECT_THROW(node::Cluster cluster(sim, p), std::invalid_argument);
    EXPECT_THROW(TestBed bed(ClusterSpec{}.nodes(2).qpCount(0)),
                 std::invalid_argument);
}

TEST(ClusterSpecTest, QpCountReachesTheSession)
{
    TestBed bed(ClusterSpec{}
                    .nodes(2)
                    .qpDepth(8)
                    .qpCount(4)
                    .segmentPerNode(64_KiB));
    auto &s = bed.session(1);
    EXPECT_EQ(s.qpCount(), 4u);
    EXPECT_EQ(s.perQpDepth(), 8u);
    EXPECT_EQ(s.queueDepth(), 32u);
    EXPECT_FALSE(s.doorbellBatching());

    TestBed batched(ClusterSpec{}
                        .nodes(2)
                        .qpCount(2)
                        .doorbellBatching()
                        .segmentPerNode(64_KiB));
    EXPECT_TRUE(batched.session(1).doorbellBatching());

    // Per-session override: a software layer pins one QP regardless of
    // the node default (the Workload barrier convention).
    api::SessionParams one;
    one.qpCount = 1;
    one.doorbellBatching = false;
    auto &pinned = batched.newSession(1, 0, one);
    EXPECT_EQ(pinned.qpCount(), 1u);
    EXPECT_FALSE(pinned.doorbellBatching());
}

TEST(ClusterSpecTest, BuildFailsEagerlyOnBadTorus)
{
    EXPECT_THROW(TestBed bed(ClusterSpec{}.nodes(6).torus(2, 2)),
                 std::invalid_argument);
    EXPECT_THROW(TestBed bed(ClusterSpec{}.nodes(0)),
                 std::invalid_argument);
}

TEST(ClusterSpecTest, DeclarativeTorusBedMovesBytesAcrossHops)
{
    TestBed bed(ClusterSpec{}
                    .nodes(4)
                    .torus(2, 2)
                    .context(1)
                    .segmentPerNode(64_KiB)
                    .seed(13));
    EXPECT_EQ(bed.nodes(), 4u);
    bed.process(3).addressSpace().writeT<std::uint64_t>(
        bed.segBase(3) + 128, 0x70517051ULL);

    auto &s = bed.session(0);
    const vm::VAddr buf = s.allocBuffer(64);
    api::OpResult r;
    bed.spawn([](api::RmcSession *s, vm::VAddr buf,
                 api::OpResult *out) -> sim::Task {
        *out = co_await s->read(3, 128, buf, 64);
    }(&s, buf, &r));
    bed.run();
    EXPECT_TRUE(r.ok());
    EXPECT_EQ(bed.process(0).addressSpace().readT<std::uint64_t>(buf),
              0x70517051ULL);
}

TEST(ClusterSpecTest, SessionAccessorCachesPerNodeCore)
{
    TestBed bed(ClusterSpec{}.nodes(2).segmentPerNode(64_KiB));
    auto &a = bed.session(0);
    auto &b = bed.session(0);
    EXPECT_EQ(&a, &b); // same QP on repeat access
    auto &fresh = bed.newSession(0);
    EXPECT_NE(&a, &fresh); // explicit new QP
}

TEST(ClusterSpecTest, QpDepthReachesTheQueuePair)
{
    TestBed bed(
        ClusterSpec{}.nodes(2).segmentPerNode(64_KiB).qpDepth(16));
    EXPECT_EQ(bed.session(1).queueDepth(), 16u);

    // The 16-deep ring throttles the async window: outstanding ops can
    // never exceed the depth.
    auto &s = bed.session(1);
    const vm::VAddr buf = s.allocBuffer(64ull * 16);
    std::uint32_t maxOutstanding = 0;
    bed.spawn([](api::RmcSession *s, vm::VAddr buf,
                 std::uint32_t *maxOut) -> sim::Task {
        for (int i = 0; i < 100; ++i) {
            co_await s->readAsync(0, (std::uint64_t(i) % 64) * 64,
                                  buf + (std::uint64_t(i) % 16) * 64, 64);
            *maxOut = std::max(*maxOut, s->outstanding());
        }
        co_await s->drain();
    }(&s, buf, &maxOutstanding));
    bed.run();
    EXPECT_LE(maxOutstanding, 16u);
    EXPECT_GT(maxOutstanding, 4u); // but the window does fill
}

TEST(ClusterSpecTest, AdaptiveRoutingRequiresATorus)
{
    // Adaptive routing is a torus policy; on a crossbar the spec must
    // fail eagerly at build time, not silently route dor.
    EXPECT_THROW(TestBed(ClusterSpec{}
                             .nodes(4)
                             .segmentPerNode(64_KiB)
                             .routing(fab::RoutingMode::kAdaptive)),
                 std::invalid_argument);
    // On a torus it builds.
    TestBed bed(ClusterSpec{}
                    .nodes(4)
                    .torus(2, 2)
                    .segmentPerNode(64_KiB)
                    .routing(fab::RoutingMode::kAdaptive));
    EXPECT_FALSE(bed.faultsActive());
}

TEST(ClusterSpecTest, FaultPlanArmsAndFires)
{
    // A spec-level fault plan is validated and armed at build time and
    // its events fire on the bed's queue: kill+recover leaves the
    // fabric healthy again but the NIs saw both notifications.
    fab::FaultPlan plan;
    plan.killNode(sim::usToTicks(1), 1);
    plan.recoverNode(sim::usToTicks(2), 1);
    TestBed bed(ClusterSpec{}
                    .nodes(2)
                    .segmentPerNode(64_KiB)
                    .faultPlan(plan));
    EXPECT_TRUE(bed.faultsActive());
    bed.run();
    EXPECT_EQ(bed.cluster().node(0).ni().lastFailure().kind,
              fab::FailureKind::kNodeUp);

    // An out-of-range victim throws from the TestBed constructor.
    fab::FaultPlan bad;
    bad.killNode(sim::usToTicks(1), 7);
    EXPECT_THROW(TestBed(ClusterSpec{}
                             .nodes(2)
                             .segmentPerNode(64_KiB)
                             .faultPlan(bad)),
                 std::invalid_argument);
}

TEST(ClusterSpecTest, LiteralsAndPhysMemSizing)
{
    EXPECT_EQ(4_KiB, 4096u);
    EXPECT_EQ(1_MiB, 1048576u);
    // A large segment auto-sizes physical memory (no PhysMem overflow).
    TestBed bed(ClusterSpec{}.nodes(2).segmentPerNode(128_MiB));
    EXPECT_EQ(bed.segBytes(), 128_MiB);
}

} // namespace
