/**
 * @file
 * Tests for the DDR3-1600 DRAM timing model: idle latency near 60 ns,
 * row-buffer locality, bank parallelism, streaming bandwidth near the
 * 12.8 GB/s channel peak, and queue backpressure.
 */

#include <gtest/gtest.h>

#include <vector>

#include "mem/dram.hh"
#include "sim/event_queue.hh"
#include "sim/stats.hh"

namespace {

using namespace sonuma;
using mem::DramChannel;
using mem::DramParams;
using sim::EventQueue;
using sim::StatRegistry;
using sim::Tick;

struct DramFixture : public ::testing::Test
{
    EventQueue eq;
    StatRegistry stats;
    DramChannel dram{eq, stats, "dram", DramParams{}};
};

TEST_F(DramFixture, IdleReadLatencyNear60ns)
{
    Tick done = 0;
    ASSERT_TRUE(dram.access(0, false, [&] { done = eq.now(); }));
    eq.run();
    const double ns = sim::ticksToNs(done);
    // Row miss on a cold bank: controller + tRCD + tCAS + transfer.
    EXPECT_GE(ns, 40.0);
    EXPECT_LE(ns, 70.0);
}

TEST_F(DramFixture, RowHitFasterThanRowMiss)
{
    Tick first = 0, second = 0;
    dram.access(0, false, [&] { first = eq.now(); });
    eq.run();
    const Tick start2 = eq.now();
    dram.access(64 * 8, false, [&] { second = eq.now(); }); // same bank0 row
    eq.run();
    const Tick hit_latency = second - start2;
    EXPECT_LT(hit_latency, first); // hit avoids tRCD (and any precharge)
    EXPECT_EQ(stats.counter("dram.rowHits")->value(), 1u);
    EXPECT_EQ(stats.counter("dram.rowMisses")->value(), 1u);
}

TEST_F(DramFixture, SequentialStreamApproachesPeakBandwidth)
{
    // Stream 4096 sequential lines (256 KB) with unlimited concurrency.
    const int kLines = 4096;
    int done = 0;
    int issued = 0;
    std::function<void()> pump = [&] {
        while (issued < kLines &&
               dram.access(static_cast<std::uint64_t>(issued) * 64, false,
                           [&] { ++done; })) {
            ++issued;
        }
    };
    // Re-pump whenever progress is made.
    for (int i = 0; i < kLines; ++i)
        eq.schedule(static_cast<Tick>(i) * sim::nsToTicks(5), [&] { pump(); });
    eq.run();
    EXPECT_EQ(done, kLines);
    const double secs = sim::ticksToNs(eq.now()) * 1e-9;
    const double gbps = (kLines * 64.0) / secs / 1e9;
    // 12.8 GB/s peak; expect practical streaming >= 9.6 GB/s (paper's
    // "practical maximum" for DDR3-1600).
    EXPECT_GE(gbps, 9.6);
    EXPECT_LE(gbps, 12.9);
}

namespace {

/** Issue an access, retrying on controller backpressure. */
void
issueWithRetry(EventQueue &eq, DramChannel &d, std::uint64_t addr,
               std::function<void()> done)
{
    if (!d.access(addr, false, done)) {
        eq.scheduleAfter(sim::nsToTicks(5),
                         [&eq, &d, addr, done = std::move(done)]() mutable {
                             issueWithRetry(eq, d, addr, std::move(done));
                         });
    }
}

} // namespace

TEST_F(DramFixture, RandomAccessSlowerThanSequential)
{
    const int kLines = 512;
    // Sequential pass.
    int done = 0;
    for (int i = 0; i < kLines; ++i)
        eq.schedule(static_cast<Tick>(i), [&, i] {
            issueWithRetry(eq, dram, static_cast<std::uint64_t>(i) * 64,
                           [&] { ++done; });
        });
    eq.run();
    const double seqNs = sim::ticksToNs(eq.now());

    EventQueue eq2;
    StatRegistry stats2;
    DramChannel dram2(eq2, stats2, "dram2", DramParams{});
    // Random pass: stride of 17 rows defeats the row buffer.
    int done2 = 0;
    for (int i = 0; i < kLines; ++i) {
        const std::uint64_t addr =
            (static_cast<std::uint64_t>(i) * 17 * 65536 + (i % 3) * 64) %
            (1ull << 30);
        eq2.schedule(static_cast<Tick>(i), [&, addr] {
            issueWithRetry(eq2, dram2, addr, [&] { ++done2; });
        });
    }
    eq2.run();
    const double rndNs = sim::ticksToNs(eq2.now());
    EXPECT_EQ(done, kLines);
    EXPECT_EQ(done2, kLines);
    EXPECT_GT(rndNs, seqNs);
}

TEST_F(DramFixture, QueueBackpressureRejects)
{
    // Fill the controller queue synchronously; the next access must fail.
    int accepted = 0;
    while (dram.access(static_cast<std::uint64_t>(accepted) * 1048576,
                       false, nullptr)) {
        ++accepted;
        ASSERT_LE(accepted, 1000);
    }
    EXPECT_EQ(static_cast<std::uint32_t>(accepted),
              DramParams{}.queueDepth);
    EXPECT_TRUE(dram.full());
    eq.run();
    EXPECT_FALSE(dram.full());
}

TEST_F(DramFixture, WritesCompleteAndCount)
{
    int done = 0;
    dram.access(0, true, [&] { ++done; });
    dram.access(64, true, [&] { ++done; });
    eq.run();
    EXPECT_EQ(done, 2);
    EXPECT_EQ(stats.counter("dram.writes")->value(), 2u);
    EXPECT_EQ(stats.counter("dram.reads")->value(), 0u);
}

TEST_F(DramFixture, LatencyHistogramPopulated)
{
    for (int i = 0; i < 10; ++i)
        dram.access(static_cast<std::uint64_t>(i) * 64, false, nullptr);
    eq.run();
    const auto *h = stats.histogram("dram.latencyNs");
    ASSERT_NE(h, nullptr);
    EXPECT_EQ(h->count(), 10u);
    EXPECT_GT(h->mean(), 0.0);
}

TEST_F(DramFixture, BankParallelismBeatsSingleBank)
{
    // 64 accesses across all 8 banks vs. 64 accesses to rows in bank 0.
    int doneA = 0;
    for (int i = 0; i < 64; ++i)
        dram.access(static_cast<std::uint64_t>(i) * 64, false,
                    [&] { ++doneA; });
    eq.run();
    const double parallelNs = sim::ticksToNs(eq.now());

    EventQueue eqB;
    StatRegistry statsB;
    DramChannel dramB(eqB, statsB, "dramB", DramParams{});
    int doneB = 0;
    // Same bank (stride = banks * 64 within different rows).
    for (int i = 0; i < 64; ++i) {
        const std::uint64_t addr =
            static_cast<std::uint64_t>(i) * 8 * 8192 * 8; // bank 0 rows
        dramB.access(addr, false, [&] { ++doneB; });
    }
    eqB.run();
    const double serialNs = sim::ticksToNs(eqB.now());
    EXPECT_EQ(doneA, 64);
    EXPECT_EQ(doneB, 64);
    EXPECT_LT(parallelNs, serialNs);
}

} // namespace
