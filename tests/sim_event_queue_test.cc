/**
 * @file
 * Unit tests for the discrete-event queue: ordering, determinism,
 * cancellation, time-limited runs.
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.hh"

namespace {

using sonuma::sim::EventQueue;
using sonuma::sim::Tick;

TEST(EventQueue, StartsAtTimeZeroAndEmpty)
{
    EventQueue eq;
    EXPECT_EQ(eq.now(), 0u);
    EXPECT_TRUE(eq.empty());
    EXPECT_FALSE(eq.step());
}

TEST(EventQueue, ExecutesInTimeOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(300, [&] { order.push_back(3); });
    eq.schedule(100, [&] { order.push_back(1); });
    eq.schedule(200, [&] { order.push_back(2); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.now(), 300u);
}

TEST(EventQueue, SameTickFifoBySchedulingOrder)
{
    EventQueue eq;
    std::vector<int> order;
    for (int i = 0; i < 10; ++i)
        eq.schedule(42, [&, i] { order.push_back(i); });
    eq.run();
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventQueue, EventsCanScheduleMoreEvents)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(10, [&] {
        ++fired;
        eq.scheduleAfter(5, [&] {
            ++fired;
            eq.scheduleAfter(5, [&] { ++fired; });
        });
    });
    eq.run();
    EXPECT_EQ(fired, 3);
    EXPECT_EQ(eq.now(), 20u);
}

TEST(EventQueue, CancelPreventsExecution)
{
    EventQueue eq;
    bool ran = false;
    auto id = eq.schedule(50, [&] { ran = true; });
    EXPECT_TRUE(eq.cancel(id));
    eq.run();
    EXPECT_FALSE(ran);
    EXPECT_EQ(eq.pendingEvents(), 0u);
}

TEST(EventQueue, CancelFiredEventIsNoop)
{
    EventQueue eq;
    auto id = eq.schedule(1, [] {});
    eq.run();
    EXPECT_FALSE(eq.cancel(id));
}

TEST(EventQueue, DoubleCancelIsNoop)
{
    EventQueue eq;
    auto id = eq.schedule(1, [] {});
    EXPECT_TRUE(eq.cancel(id));
    EXPECT_FALSE(eq.cancel(id));
    eq.run();
}

TEST(EventQueue, RunUntilStopsAtLimit)
{
    EventQueue eq;
    std::vector<Tick> fired;
    for (Tick t : {10u, 20u, 30u, 40u})
        eq.schedule(t, [&, t] { fired.push_back(t); });
    eq.runUntil(25);
    EXPECT_EQ(fired, (std::vector<Tick>{10, 20}));
    EXPECT_EQ(eq.now(), 25u);
    eq.run();
    EXPECT_EQ(fired.size(), 4u);
}

TEST(EventQueue, RunUntilAdvancesTimeWhenIdle)
{
    EventQueue eq;
    eq.runUntil(1000);
    EXPECT_EQ(eq.now(), 1000u);
}

TEST(EventQueue, EventsAtLimitStillFire)
{
    EventQueue eq;
    bool ran = false;
    eq.schedule(100, [&] { ran = true; });
    eq.runUntil(100);
    EXPECT_TRUE(ran);
}

TEST(EventQueue, ExecutedCountTracksFiredOnly)
{
    EventQueue eq;
    eq.schedule(1, [] {});
    auto id = eq.schedule(2, [] {});
    eq.cancel(id);
    eq.schedule(3, [] {});
    eq.run();
    EXPECT_EQ(eq.executedEvents(), 2u);
}

TEST(EventQueue, ManyEventsStressOrdering)
{
    EventQueue eq;
    Tick last = 0;
    bool monotonic = true;
    for (int i = 0; i < 10000; ++i) {
        const Tick when = static_cast<Tick>((i * 7919) % 4096);
        eq.schedule(when, [&, when] {
            if (when < last)
                monotonic = false;
            last = when;
        });
    }
    eq.run();
    EXPECT_TRUE(monotonic);
}

} // namespace
