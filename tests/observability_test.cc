/**
 * @file
 * Observability pipeline tests: TimeSeries ring semantics, OBS artifact
 * rendering, sampler determinism (sampling on changes no model timing;
 * sampling off keeps cell artifacts byte-identical to the checked-in
 * exemplars), the JSON string-escaping regression, histogram percentile
 * edge cases, and the zero-allocation guarantee of the steady-state
 * sampling path. This binary overrides global operator new/delete to
 * count heap allocations (same hook as tests/sim_alloc_test.cc).
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <new>
#include <sstream>
#include <string>

#include "api/sweep.hh"
#include "sim/stats.hh"
#include "sim/time_series.hh"

static std::uint64_t g_allocCount = 0;

// ASan keeps its own allocator; the counting override is skipped there
// (same rationale and guard as tests/session_stress_test.cc).
#if defined(__has_feature)
#if __has_feature(address_sanitizer)
#define SONUMA_ASAN_ACTIVE 1
#endif
#endif
#if defined(__SANITIZE_ADDRESS__)
#define SONUMA_ASAN_ACTIVE 1
#endif

#ifndef SONUMA_ASAN_ACTIVE
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"

void *
operator new(std::size_t n)
{
    ++g_allocCount;
    if (void *p = std::malloc(n ? n : 1))
        return p;
    throw std::bad_alloc();
}

void *
operator new[](std::size_t n)
{
    return operator new(n);
}

void
operator delete(void *p) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete[](void *p) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, std::size_t) noexcept
{
    std::free(p);
}
#pragma GCC diagnostic pop
#endif // !SONUMA_ASAN_ACTIVE

namespace {

using namespace sonuma;

// ------------------------------------------------------------ TimeSeries

TEST(TimeSeries, GaugeRecordsProbeValues)
{
    sim::StatRegistry reg;
    reg.enableSampling(8);
    double probe = 0.0;
    sim::TimeSeries ts(reg, "t.gauge", "ops", "test gauge",
                       sim::TimeSeries::Kind::kGauge,
                       [&probe] { return probe; });

    probe = 3.0;
    reg.sampleAll(1000);
    probe = 7.0;
    reg.sampleAll(2000);

    ASSERT_EQ(ts.size(), 2u);
    EXPECT_EQ(ts.at(0).tick, 1000u);
    EXPECT_EQ(ts.at(0).value, 3.0);
    EXPECT_EQ(ts.at(1).tick, 2000u);
    EXPECT_EQ(ts.at(1).value, 7.0);
    EXPECT_EQ(ts.dropped(), 0u);
}

TEST(TimeSeries, RateRecordsDeltaPerTick)
{
    sim::StatRegistry reg;
    reg.enableSampling(8);
    double busyTicks = 0.0; // monotonic, like SerializedLink busy time
    sim::TimeSeries ts(reg, "t.rate", "frac", "test rate",
                       sim::TimeSeries::Kind::kRate,
                       [&busyTicks] { return busyTicks; });

    busyTicks = 500.0;
    ts.sample(1000); // (500 - 0) / (1000 - 0)
    busyTicks = 500.0;
    ts.sample(2000); // idle interval
    busyTicks = 1500.0;
    ts.sample(3000); // fully busy interval

    ASSERT_EQ(ts.size(), 3u);
    EXPECT_DOUBLE_EQ(ts.at(0).value, 0.5);
    EXPECT_DOUBLE_EQ(ts.at(1).value, 0.0);
    EXPECT_DOUBLE_EQ(ts.at(2).value, 1.0);
}

TEST(TimeSeries, FullRingOverwritesOldestAndCountsDrops)
{
    sim::StatRegistry reg;
    reg.enableSampling(4);
    double probe = 0.0;
    sim::TimeSeries ts(reg, "t.wrap", "ops", "",
                       sim::TimeSeries::Kind::kGauge,
                       [&probe] { return probe; });

    for (int i = 1; i <= 6; ++i) {
        probe = i;
        ts.sample(static_cast<sim::Tick>(i) * 100);
    }

    ASSERT_EQ(ts.size(), 4u);
    EXPECT_EQ(ts.dropped(), 2u);
    // Oldest surviving sample is the 3rd one.
    EXPECT_EQ(ts.at(0).tick, 300u);
    EXPECT_EQ(ts.at(0).value, 3.0);
    EXPECT_EQ(ts.at(3).tick, 600u);
    EXPECT_EQ(ts.at(3).value, 6.0);
}

TEST(TimeSeries, SamplingOffIsANoOp)
{
    sim::StatRegistry reg; // enableSampling never called
    bool probed = false;
    sim::TimeSeries ts(reg, "t.off", "ops", "",
                       sim::TimeSeries::Kind::kGauge, [&probed] {
                           probed = true;
                           return 1.0;
                       });
    EXPECT_FALSE(reg.samplingEnabled());
    reg.sampleAll(1000);
    EXPECT_EQ(ts.size(), 0u);
    EXPECT_FALSE(probed) << "disabled series must not invoke the probe";
}

TEST(TimeSeries, RegistryFindsSeriesByName)
{
    sim::StatRegistry reg;
    reg.enableSampling(4);
    sim::TimeSeries ts(reg, "a.b.c", "ops", "",
                       sim::TimeSeries::Kind::kGauge, [] { return 0.0; });
    EXPECT_EQ(reg.timeSeries("a.b.c"), &ts);
    EXPECT_EQ(reg.timeSeries("a.b.d"), nullptr);
    EXPECT_EQ(reg.allTimeSeries().size(), 1u);
}

// --------------------------------------------------------- OBS rendering

TEST(ObsJson, SchemaFieldsAndZeroSeriesElision)
{
    sim::StatRegistry reg;
    reg.enableSampling(8);
    double busy = 0.0;
    sim::TimeSeries live(reg, "t.live", "ops", "",
                         sim::TimeSeries::Kind::kGauge,
                         [&busy] { return busy; });
    sim::TimeSeries idle(reg, "t.idle", "ops", "",
                         sim::TimeSeries::Kind::kGauge, [] { return 0.0; });

    busy = 2.0;
    reg.sampleAll(2500); // 2500 ticks = 2 ns (integer ns timestamps)
    busy = 2.5;
    reg.sampleAll(5000);

    const std::string json = sim::renderObsJson(reg, "cell_a", 100);
    EXPECT_NE(json.find("\"bench\": \"obs\""), std::string::npos);
    EXPECT_NE(json.find("\"schema\": 1"), std::string::npos);
    EXPECT_NE(json.find("\"label\": \"cell_a\""), std::string::npos);
    EXPECT_NE(json.find("\"period_ns\": 100"), std::string::npos);
    // The all-zero series is elided; the live one is kept.
    EXPECT_NE(json.find("\"series_elided\": 1"), std::string::npos);
    EXPECT_NE(json.find("\"series_count\": 1"), std::string::npos);
    EXPECT_NE(json.find("\"name\": \"t.live\""), std::string::npos);
    EXPECT_EQ(json.find("t.idle"), std::string::npos);
    // Tick-to-ns timestamps; integral values render as integers.
    EXPECT_NE(json.find("[2, 2]"), std::string::npos);
    EXPECT_NE(json.find("[5, 2.5]"), std::string::npos);
}

// ----------------------------------------------------------- jsonEscape

TEST(JsonEscape, EscapesQuotesBackslashesAndControls)
{
    EXPECT_EQ(sim::jsonEscape("plain"), "plain");
    EXPECT_EQ(sim::jsonEscape("a\"b"), "a\\\"b");
    EXPECT_EQ(sim::jsonEscape("a\\b"), "a\\\\b");
    EXPECT_EQ(sim::jsonEscape("a\nb\tc\rd"), "a\\nb\\tc\\rd");
    EXPECT_EQ(sim::jsonEscape(std::string("a\x01") + "b"), "a\\u0001b");
}

// ------------------------------------------------- percentile edge cases

TEST(HistogramPercentile, EmptyHistogramReturnsZero)
{
    sim::Histogram h;
    EXPECT_EQ(h.percentile(50), 0.0);
    EXPECT_EQ(sim::Histogram::percentileFromBuckets({}, 0, 50, 123.0),
              0.0);
}

TEST(HistogramPercentile, SingleSampleIsItsOwnDistribution)
{
    sim::Histogram h;
    h.sample(100.0); // bucket 7: [64, 128)
    // Any in-range p lands in the only occupied bucket (midpoint 96);
    // p >= 100 returns the tracked max, not a bucket midpoint.
    EXPECT_DOUBLE_EQ(h.percentile(50), 96.0);
    EXPECT_DOUBLE_EQ(h.percentile(100), 100.0);
    EXPECT_DOUBLE_EQ(h.percentile(200), 100.0);
}

TEST(HistogramPercentile, NonPositivePClampsToFirstSample)
{
    sim::Histogram h;
    h.sample(100.0);
    // Regression: p <= 0 used to make the target 0 and trivially match
    // the empty bucket 0, answering 0.5 for data that never saw a
    // sub-1 sample.
    EXPECT_DOUBLE_EQ(h.percentile(0), 96.0);
    EXPECT_DOUBLE_EQ(h.percentile(-5), 96.0);
}

TEST(HistogramPercentile, PooledMatchesInstanceAcrossP)
{
    sim::Histogram h;
    for (int i = 1; i <= 1000; ++i)
        h.sample(static_cast<double>(i));
    for (const double p : {-1.0, 0.0, 1.0, 50.0, 95.0, 99.0, 100.0, 150.0}) {
        EXPECT_DOUBLE_EQ(sim::Histogram::percentileFromBuckets(
                             h.buckets(), h.count(), p, h.max()),
                         h.percentile(p))
            << "pooled and instance percentiles diverged at p=" << p;
    }
}

// ----------------------------------------- cell JSON escaping regression

TEST(SweepJson, StringFieldsAreEscaped)
{
    api::SweepCellResult cell;
    cell.workload = "uni\"form\\x";
    cell.nodes = 4;
    cell.requestBytes = 64;
    cell.qpDepth = 16;
    cell.faultScenario = "node-kill@10us\"+100us\\"; // forces degraded()
    cell.extra.emplace_back("we\"ird\\key", 1.0);

    std::ostringstream os;
    cell.writeJson(os);
    const std::string s = os.str();

    EXPECT_NE(s.find("\"workload\": \"uni\\\"form\\\\x\""),
              std::string::npos)
        << s;
    EXPECT_NE(s.find("\"fault_scenario\": "
                     "\"node-kill@10us\\\"+100us\\\\\""),
              std::string::npos)
        << s;
    EXPECT_NE(s.find("\"we\\\"ird\\\\key\": 1"), std::string::npos) << s;
    // No raw (unescaped) quote may survive inside a string value.
    EXPECT_EQ(s.find("uni\"form"), std::string::npos) << s;
}

// --------------------------------------------------- sweep-cell sampling

api::SweepConfig
smallCellConfig()
{
    api::SweepConfig cfg;
    cfg.opsPerNode = 24;
    cfg.echo = false;
    return cfg;
}

/** A cell's JSON with the host_seconds wall-clock field stripped. */
std::string
jsonSansHostSeconds(const api::SweepCellResult &cell)
{
    std::ostringstream os;
    cell.writeJson(os);
    const std::string s = os.str();
    return s.substr(0, s.find(", \"host_seconds\""));
}

TEST(ObsSampling, SidecarIsDeterministicAcrossSameSeedRuns)
{
    auto cfg = smallCellConfig();
    cfg.obsPeriodNs = 200;
    api::SweepDriver d1(cfg);
    api::SweepDriver d2(cfg);
    const auto a = d1.runCell(8, node::Topology::kTorus, 64, 16);
    const auto b = d2.runCell(8, node::Topology::kTorus, 64, 16);

    ASSERT_FALSE(a.obsJson.empty());
    EXPECT_EQ(a.obsJson, b.obsJson)
        << "same-seed OBS sidecars must be byte-identical";
    EXPECT_NE(a.obsJson.find("\"bench\": \"obs\""), std::string::npos);
    // The instrumented stack produced at least one live series.
    EXPECT_EQ(a.obsJson.find("\"series_count\": 0"), std::string::npos);
}

TEST(ObsSampling, SamplingDoesNotPerturbTheCellArtifact)
{
    auto off = smallCellConfig();
    auto on = smallCellConfig();
    on.obsPeriodNs = 200;
    const auto cellOff =
        api::SweepDriver(off).runCell(8, node::Topology::kTorus, 64, 16);
    const auto cellOn =
        api::SweepDriver(on).runCell(8, node::Topology::kTorus, 64, 16);

    EXPECT_TRUE(cellOff.obsJson.empty());
    EXPECT_EQ(jsonSansHostSeconds(cellOff), jsonSansHostSeconds(cellOn))
        << "the read-only sampler must not change model timing";
}

TEST(ObsSampling, SamplingOffCellMatchesCheckedInExemplar)
{
    // Same cell the full bench_sweep run produces (defaults: 128
    // ops/node, seed 1), byte-compared against the checked-in artifact
    // modulo the host_seconds wall-clock tail.
    api::SweepConfig cfg;
    cfg.echo = false;
    const auto cell =
        api::SweepDriver(cfg).runCell(8, node::Topology::kTorus, 64, 16);

    const std::string path = std::string(SONUMA_REPO_ROOT) +
                             "/BENCH_sweep/SWEEP_" + cell.label() +
                             ".json";
    std::ifstream f(path);
    ASSERT_TRUE(f) << "missing checked-in exemplar " << path;
    std::ostringstream ref;
    ref << f.rdbuf();
    const std::string refStr = ref.str();

    EXPECT_EQ(jsonSansHostSeconds(cell),
              refStr.substr(0, refStr.find(", \"host_seconds\"")))
        << "sampling-off cell drifted from " << path;
}

// ------------------------------------------------------------ zero-alloc

TEST(ObsAlloc, SteadyStateSamplingIsAllocationFree)
{
#ifdef SONUMA_ASAN_ACTIVE
    GTEST_SKIP() << "allocation counting needs the operator new override, "
                    "which is disabled under AddressSanitizer";
#endif
    sim::StatRegistry reg;
    reg.enableSampling(256);

    // A representative probe population: gauges and rates, as the
    // fabric/RMC/session instrumentation registers them.
    double raw[16] = {};
    std::vector<std::unique_ptr<sim::TimeSeries>> series;
    for (int i = 0; i < 16; ++i) {
        double *cell = &raw[i];
        series.push_back(std::make_unique<sim::TimeSeries>(
            reg, "t.s" + std::to_string(i), "ops", "",
            i % 2 ? sim::TimeSeries::Kind::kRate
                  : sim::TimeSeries::Kind::kGauge,
            [cell] { return *cell; }));
    }

    // Warm-up (rings are preallocated; this exercises the full path).
    for (sim::Tick t = 1; t <= 8; ++t) {
        for (auto &r : raw)
            r += 1.0;
        reg.sampleAll(t * 1000);
    }

    const std::uint64_t a0 = g_allocCount;
    for (sim::Tick t = 9; t <= 10'008; ++t) {
        for (auto &r : raw)
            r += 1.0;
        reg.sampleAll(t * 1000);
    }
    EXPECT_EQ(g_allocCount - a0, 0u)
        << "steady-state sampling must not allocate (10k sweeps across "
           "16 series, rings wrapping)";
    EXPECT_GT(series[0]->dropped(), 0u) << "rings wrapped during window";
}

} // namespace
