/**
 * @file
 * v2 access-library tests: OpResult error paths (kBoundsError,
 * kBadContext), OpHandle semantics (done(), await-after-completion,
 * fire-and-forget slot recycling), and mixed synchronous/asynchronous
 * completions interleaved on one session across a 16-node cluster.
 */

#include <gtest/gtest.h>

#include <deque>
#include <memory>
#include <vector>

#include "api/testbed.hh"
#include "sim/simulation.hh"

namespace {

using namespace sonuma;
using api::ClusterSpec;
using api::OpHandle;
using api::OpResult;
using api::RmcSession;
using api::TestBed;
using api::operator""_KiB;
using api::operator""_MiB;
using rmc::CqStatus;

TEST(OpResultErrors, BoundsErrorSurfacesInResult)
{
    TestBed bed(ClusterSpec{}.nodes(2).segmentPerNode(64_KiB).seed(2));
    auto &s = bed.session(1);
    const vm::VAddr buf = s.allocBuffer(128);
    OpResult sync, async;
    bed.spawn([](TestBed *bed, RmcSession *s, vm::VAddr buf, OpResult *rs,
                 OpResult *ra) -> sim::Task {
        // Blocking path: offset entirely past the 64 KiB segment.
        *rs = co_await s->read(0, 1 << 20, buf, 64);
        // Async path: straddles the segment end by one line.
        OpHandle h = co_await s->readAsync(0, bed->segBytes() - 64, buf,
                                           128);
        *ra = co_await h;
    }(&bed, &s, buf, &sync, &async));
    bed.run();

    EXPECT_EQ(sync.status, CqStatus::kBoundsError);
    EXPECT_FALSE(sync.ok());
    EXPECT_EQ(async.status, CqStatus::kBoundsError);
    // Error completions still free their slots.
    EXPECT_EQ(s.outstanding(), 0u);
}

TEST(OpResultErrors, BadContextSurfacesInResult)
{
    // Destination registered nothing in context 2: the RRPP reports the
    // miss, which the source maps onto a bounds-error completion, and
    // the badContext counter attributes the cause.
    TestBed bed(ClusterSpec{}.nodes(2).segmentPerNode(64_KiB).seed(3));
    bed.cluster().createSharedContext(2);
    auto &nd = bed.node(1);
    RmcSession session(nd.core(0), nd.driver(), bed.process(1), 2);
    const vm::VAddr buf = session.allocBuffer(64);
    OpResult r;
    bed.spawn([](RmcSession *s, vm::VAddr buf, OpResult *r) -> sim::Task {
        *r = co_await s->read(0, 0, buf, 64);
    }(&session, buf, &r));
    bed.run();

    EXPECT_FALSE(r.ok());
    EXPECT_GT(
        bed.sim().stats().counter("node0.rmc.rrpp.badContext")->value(),
        0u);
}

TEST(OpHandle, DoneBecomesTrueAndAwaitAfterDoneIsImmediate)
{
    TestBed bed(ClusterSpec{}.nodes(2).segmentPerNode(1_MiB).seed(4));
    auto &s = bed.session(1);
    const vm::VAddr buf = s.allocBuffer(64);
    bed.spawn([](sim::Simulation *sim, RmcSession *s,
                 vm::VAddr buf) -> sim::Task {
        OpHandle h = co_await s->readAsync(0, 0, buf, 64);
        EXPECT_TRUE(h.valid());
        EXPECT_FALSE(h.done()); // cannot have completed at post time
        co_await s->drain();
        EXPECT_TRUE(h.done());
        // Awaiting a completed handle returns without advancing time.
        const sim::Tick t0 = sim->now();
        const OpResult r = co_await h;
        EXPECT_EQ(sim->now(), t0);
        EXPECT_TRUE(r.ok());
        EXPECT_GT(r.latency, 0u);
    }(&bed.sim(), &s, buf));
    bed.run();
}

TEST(OpHandle, FireAndForgetRecyclesSlots)
{
    // Discarding handles must not leak WQ slots: 4 ring laps of posts
    // with no explicit completion consumption.
    TestBed bed(ClusterSpec{}.nodes(2).segmentPerNode(1_MiB).seed(5));
    auto &s = bed.session(1);
    const vm::VAddr buf = s.allocBuffer(64);
    const int kOps = static_cast<int>(s.queueDepth()) * 4;
    bed.spawn([](RmcSession *s, vm::VAddr buf, int ops) -> sim::Task {
        for (int i = 0; i < ops; ++i)
            co_await s->writeAsync(0, (std::uint64_t(i) % 128) * 64, buf,
                                   64);
        co_await s->drain();
    }(&s, buf, kOps));
    bed.run();
    EXPECT_EQ(s.outstanding(), 0u);
}

TEST(MixedCompletions, SyncAndAsyncInterleaveOnOneSessionAt16Nodes)
{
    // Every node interleaves blocking reads, windowed async reads, and
    // atomics on ONE session, against all 15 peers. Under the v1
    // callback API this pattern misrouted completions; v2 per-slot
    // results make it safe by construction.
    constexpr std::uint32_t kNodes = 16;
    TestBed bed(
        ClusterSpec{}.nodes(kNodes).segmentPerNode(256_KiB).seed(6));

    // Publish one recognizable line per node at offset 0.
    for (std::uint32_t i = 0; i < kNodes; ++i)
        bed.process(i).addressSpace().writeT<std::uint64_t>(
            bed.segBase(i), 0xbeef0000u + i);

    int finished = 0;
    for (std::uint32_t i = 0; i < kNodes; ++i) {
        auto &s = bed.session(i);
        // One landing line per WQ slot for the async window, plus a
        // separate line for blocking reads (no aliasing).
        const vm::VAddr buf =
            s.allocBuffer(std::uint64_t(s.queueDepth()) * 64 + 64);
        bed.spawn([](RmcSession *s, std::uint32_t self, vm::VAddr buf,
                     int *finished) -> sim::Task {
            auto &as = s->process().addressSpace();
            const vm::VAddr syncBuf =
                buf + std::uint64_t(s->queueDepth()) * 64;
            std::deque<OpHandle> window;
            int asyncDone = 0;
            for (int round = 0; round < 30; ++round) {
                const auto peer = static_cast<sim::NodeId>(
                    (self + 1 + round % 15) % 16);
                // (a) async post into the rolling window.
                const std::uint32_t slot = s->nextSlot();
                window.push_back(co_await s->readAsync(
                    peer, 64, buf + std::uint64_t(slot) * 64, 64));
                // (b) blocking read while async ops are outstanding.
                const OpResult r = co_await s->read(peer, 0, syncBuf, 64);
                EXPECT_TRUE(r.ok());
                EXPECT_EQ(as.readT<std::uint64_t>(syncBuf),
                          0xbeef0000u + peer);
                // (c) every third round, a blocking atomic too.
                if (round % 3 == 0) {
                    const OpResult fa = co_await s->fetchAdd(
                        peer, 128, 1);
                    EXPECT_TRUE(fa.ok());
                }
                while (!window.empty() && window.front().done()) {
                    EXPECT_TRUE((co_await window.front()).ok());
                    window.pop_front();
                    ++asyncDone;
                }
            }
            while (!window.empty()) {
                EXPECT_TRUE((co_await window.front()).ok());
                window.pop_front();
                ++asyncDone;
            }
            EXPECT_EQ(asyncDone, 30);
            EXPECT_EQ(s->outstanding(), 0u);
            ++*finished;
        }(&s, i, buf, &finished));
    }
    bed.run();
    EXPECT_EQ(finished, 16);

    // Each node's counter at offset 128 received one fetch-add per
    // arriving (round % 3 == 0) hit; total adds across the cluster =
    // 16 nodes * 10 rounds.
    std::uint64_t totalAdds = 0;
    for (std::uint32_t i = 0; i < kNodes; ++i)
        totalAdds += bed.process(i).addressSpace().readT<std::uint64_t>(
            bed.segBase(i) + 128);
    EXPECT_EQ(totalAdds, 16u * 10u);
}

TEST(MixedCompletions, LatencyFieldCoversOnlyOwnOp)
{
    // An async op posted first and completed *during* a later blocking
    // op must report its own post->completion latency, not the
    // blocking op's window.
    TestBed bed(ClusterSpec{}.nodes(2).segmentPerNode(1_MiB).seed(7));
    auto &s = bed.session(1);
    const vm::VAddr buf = s.allocBuffer(8192 + 64);
    bed.spawn([](RmcSession *s, vm::VAddr buf) -> sim::Task {
        // Long 8 KiB read posted async; short blocking read after it.
        OpHandle big = co_await s->readAsync(0, 0, buf, 8192);
        const OpResult small = co_await s->read(0, 0, buf + 8192, 64);
        const OpResult bigR = co_await big;
        EXPECT_TRUE(small.ok());
        EXPECT_TRUE(bigR.ok());
        EXPECT_GT(bigR.latency, small.latency);
    }(&s, buf));
    bed.run();
}

} // namespace
