/**
 * @file
 * Tests for the strict bench flag parser: unknown --flags are rejected
 * with a did-you-mean suggestion and the valid-flag list, so a typo'd
 * sweep parameter can never silently fall back to its default and
 * poison a measurement.
 */

#include <gtest/gtest.h>

#include "bench/common.hh"

namespace {

using sonuma::bench::Args;

TEST(BenchArgs, KnownFlagsValidate)
{
    std::string err;
    EXPECT_TRUE(Args::validate({"--platform=hw", "--quick"},
                               {"platform", "quick"}, &err));
    EXPECT_TRUE(err.empty());
}

TEST(BenchArgs, PositionalArgumentsAreIgnored)
{
    std::string err;
    EXPECT_TRUE(Args::validate({"outfile.json"}, {"out"}, &err));
}

TEST(BenchArgs, UnknownFlagRejectedWithSuggestion)
{
    std::string err;
    EXPECT_FALSE(Args::validate({"--platfrom=hw"},
                                {"platform", "quick"}, &err));
    EXPECT_NE(err.find("unknown flag --platfrom"), std::string::npos)
        << err;
    EXPECT_NE(err.find("did you mean --platform"), std::string::npos)
        << err;
    EXPECT_NE(err.find("--quick"), std::string::npos) << err;
}

TEST(BenchArgs, UnknownFlagWithoutCloseMatchListsValidFlags)
{
    std::string err;
    EXPECT_FALSE(
        Args::validate({"--zzzzzzz"}, {"platform", "quick"}, &err));
    EXPECT_NE(err.find("unknown flag --zzzzzzz"), std::string::npos);
    EXPECT_EQ(err.find("did you mean"), std::string::npos) << err;
    EXPECT_NE(err.find("valid flags"), std::string::npos) << err;
}

TEST(BenchArgs, ValueFormsParse)
{
    const char *argv[] = {"bench", "--vertices=4096", "--quick"};
    Args args(3, const_cast<char **>(argv), {"vertices", "quick"});
    EXPECT_EQ(args.getU64("vertices", 1), 4096u);
    EXPECT_TRUE(args.has("quick"));
    EXPECT_FALSE(args.has("platform"));
    EXPECT_EQ(args.get("missing", "dflt"), "dflt");
}

TEST(BenchArgs, TypoInValueFlagIsCaught)
{
    // The exact failure mode from the issue: a typo'd sweep parameter.
    std::string err;
    EXPECT_FALSE(Args::validate(
        {"--vertcies=8192"},
        {"vertices", "degree", "supersteps"}, &err));
    EXPECT_NE(err.find("did you mean --vertices"), std::string::npos)
        << err;
}

TEST(BenchArgs, DegradedModeFlagsValidate)
{
    std::string err;
    EXPECT_TRUE(Args::validate(
        {"--faults=node-kill@50us+100us", "--routing=adaptive",
         "--retries=4", "--retry-backoff-us=10"},
        {"faults", "routing", "retries", "retry-backoff-us"}, &err))
        << err;
}

TEST(BenchArgs, TypodDegradedFlagsGetDidYouMean)
{
    const std::vector<std::string> known = {"faults", "routing",
                                           "retries",
                                           "retry-backoff-us"};
    std::string err;
    EXPECT_FALSE(Args::validate({"--fault=node-kill@50us"}, known, &err));
    EXPECT_NE(err.find("did you mean --faults"), std::string::npos)
        << err;
    EXPECT_FALSE(Args::validate({"--routng=adaptive"}, known, &err));
    EXPECT_NE(err.find("did you mean --routing"), std::string::npos)
        << err;
}

TEST(BenchArgs, TopoDimsParse)
{
    std::vector<std::uint32_t> dims;
    std::string err;
    ASSERT_TRUE(Args::parseDims("8x8x8", &dims, &err)) << err;
    EXPECT_EQ(dims, (std::vector<std::uint32_t>{8, 8, 8}));
    ASSERT_TRUE(Args::parseDims("16x4", &dims, &err)) << err;
    EXPECT_EQ(dims, (std::vector<std::uint32_t>{16, 4}));
    ASSERT_TRUE(Args::parseDims("512", &dims, &err)) << err;
    EXPECT_EQ(dims, (std::vector<std::uint32_t>{512}));
}

TEST(BenchArgs, MalformedTopoAxesGetDidYouMean)
{
    std::vector<std::uint32_t> dims;
    std::string err;
    // Wrong separators: the canonical spelling is suggested.
    EXPECT_FALSE(Args::parseDims("8,8,8", &dims, &err));
    EXPECT_NE(err.find("did you mean 8x8x8"), std::string::npos) << err;
    EXPECT_FALSE(Args::parseDims("8x8o8", &dims, &err));
    EXPECT_NE(err.find("did you mean 8x8x8"), std::string::npos) << err;
    // Named offending axis.
    EXPECT_FALSE(Args::parseDims("8xax8", &dims, &err));
    EXPECT_NE(err.find("'a'"), std::string::npos) << err;
    // Trailing separator, zero radix, empty string: all rejected.
    EXPECT_FALSE(Args::parseDims("8x8x", &dims, &err));
    EXPECT_FALSE(Args::parseDims("8x0x8", &dims, &err));
    EXPECT_FALSE(Args::parseDims("", &dims, &err));
}

TEST(BenchArgs, GetDimsReturnsEmptyWhenAbsent)
{
    const char *argv[] = {"bench", "--quick"};
    Args args(2, const_cast<char **>(argv), {"quick", "topo"});
    EXPECT_TRUE(args.getDims("topo").empty());
}

} // namespace
