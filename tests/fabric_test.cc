/**
 * @file
 * Tests for the fabric layer: message format, NI queues, crossbar
 * latency/credits/backpressure, torus routing and delivery, failure
 * injection, and ordering guarantees.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "fabric/crossbar.hh"
#include "fabric/router.hh"
#include "fabric/torus.hh"
#include "sim/event_queue.hh"
#include "sim/stats.hh"

namespace {

using namespace sonuma;
using namespace sonuma::fab;
using sim::EventQueue;
using sim::StatRegistry;
using sim::Tick;

Message
mkMsg(sim::NodeId src, sim::NodeId dst, Op op = Op::kReadReq,
      std::uint32_t tid = 0)
{
    Message m;
    m.op = op;
    m.srcNid = src;
    m.dstNid = dst;
    m.tid = tid;
    return m;
}

TEST(Message, LaneAssignment)
{
    EXPECT_EQ(laneOf(Op::kReadReq), Lane::kRequest);
    EXPECT_EQ(laneOf(Op::kWriteReq), Lane::kRequest);
    EXPECT_EQ(laneOf(Op::kCasReq), Lane::kRequest);
    EXPECT_EQ(laneOf(Op::kFetchAddReq), Lane::kRequest);
    EXPECT_EQ(laneOf(Op::kReadReply), Lane::kReply);
    EXPECT_EQ(laneOf(Op::kErrorReply), Lane::kReply);
}

TEST(Message, WireSizeIncludesPayload)
{
    Message m = mkMsg(0, 1);
    EXPECT_EQ(m.wireBytes(), Message::kHeaderBytes);
    std::uint8_t line[64] = {};
    m.setPayload(line, 64);
    EXPECT_EQ(m.wireBytes(), Message::kHeaderBytes + 64);
}

TEST(Message, ReplySwapsEndpointsAndEchoesTidOffset)
{
    Message m = mkMsg(3, 7, Op::kReadReq, 42);
    m.offset = 0x1234;
    m.ctxId = 9;
    Message r = m.makeReply(Op::kReadReply);
    EXPECT_EQ(r.srcNid, 7);
    EXPECT_EQ(r.dstNid, 3);
    EXPECT_EQ(r.tid, 42u);
    EXPECT_EQ(r.offset, 0x1234u);
    EXPECT_EQ(r.ctxId, 9);
    EXPECT_EQ(r.lane(), Lane::kReply);
}

struct XbarFixture : public ::testing::Test
{
    EventQueue eq;
    StatRegistry stats;
    CrossbarFabric xbar{eq, stats, CrossbarParams{}};
    NetworkInterface ni0{eq, stats, "ni0", 0, xbar};
    NetworkInterface ni1{eq, stats, "ni1", 1, xbar};
};

TEST_F(XbarFixture, DeliversWithFlatLatency)
{
    Tick arrival = 0;
    ni1.onArrival(Lane::kRequest, [&] { arrival = eq.now(); });
    ASSERT_TRUE(ni0.trySend(mkMsg(0, 1)));
    eq.run();
    ASSERT_TRUE(ni1.hasMessage(Lane::kRequest));
    // 24 B @ 12.8 GB/s ~ 1.9 ns serialization + 50 ns propagation.
    EXPECT_NEAR(sim::ticksToNs(arrival), 51.9, 0.2);
    EXPECT_EQ(ni1.pop(Lane::kRequest).srcNid, 0);
}

TEST_F(XbarFixture, PerSrcDstOrderingPreserved)
{
    std::vector<std::uint32_t> order;
    ni1.onArrival(Lane::kRequest, [&] {
        while (ni1.hasMessage(Lane::kRequest))
            order.push_back(ni1.pop(Lane::kRequest).tid);
    });
    for (std::uint32_t i = 0; i < 10; ++i)
        ASSERT_TRUE(ni0.trySend(mkMsg(0, 1, Op::kReadReq, i)));
    eq.run();
    ASSERT_EQ(order.size(), 10u);
    for (std::uint32_t i = 0; i < 10; ++i)
        EXPECT_EQ(order[i], i);
}

TEST_F(XbarFixture, LanesAreIndependent)
{
    ASSERT_TRUE(ni0.trySend(mkMsg(0, 1, Op::kReadReq)));
    ASSERT_TRUE(ni0.trySend(mkMsg(0, 1, Op::kReadReply)));
    eq.run();
    EXPECT_TRUE(ni1.hasMessage(Lane::kRequest));
    EXPECT_TRUE(ni1.hasMessage(Lane::kReply));
}

TEST_F(XbarFixture, EjectBackpressureParksThenDrains)
{
    // Default eject queue depth is 16; send 40 without popping.
    for (int i = 0; i < 40; ++i)
        ni0.trySend(mkMsg(0, 1, Op::kReadReq, static_cast<std::uint32_t>(i)));
    eq.run();
    EXPECT_EQ(ni1.ejectDepth(Lane::kRequest), 16u);
    EXPECT_GT(stats.counter("fabric.parked")->value(), 0u);
    // Draining the eject queue pulls parked packets through in order.
    std::vector<std::uint32_t> seen;
    while (ni1.hasMessage(Lane::kRequest)) {
        seen.push_back(ni1.pop(Lane::kRequest).tid);
        eq.run();
    }
    ASSERT_EQ(seen.size(), 40u);
    for (std::uint32_t i = 0; i < 40; ++i)
        EXPECT_EQ(seen[i], i);
}

TEST_F(XbarFixture, CreditsExhaustionBlocksInjectionThenRecovers)
{
    // Default credits 64 per lane; inject queue 16. With nobody popping,
    // in-flight = credits + parked; eventually trySend fails.
    int accepted = 0;
    while (ni0.trySend(mkMsg(0, 1)) && accepted < 1000)
        ++accepted;
    EXPECT_LT(accepted, 1000);
    eq.run();
    // Drain everything at the receiver; sender queue must fully flush.
    int received = 0;
    while (true) {
        while (ni1.hasMessage(Lane::kRequest)) {
            ni1.pop(Lane::kRequest);
            ++received;
        }
        if (eq.empty() && !ni1.hasMessage(Lane::kRequest))
            break;
        eq.run();
    }
    EXPECT_EQ(received, accepted);
}

TEST_F(XbarFixture, FailedNodeDropsTraffic)
{
    bool notified = false;
    ni0.onFabricFailure([&] { notified = true; });
    xbar.failNode(1);
    EXPECT_TRUE(notified);
    ni0.trySend(mkMsg(0, 1));
    eq.run();
    EXPECT_FALSE(ni1.hasMessage(Lane::kRequest));
    EXPECT_GT(xbar.droppedMessages(), 0u);
}

TEST(TorusRouting, CoordsRoundTrip)
{
    TorusRouting r({4, 4});
    for (sim::NodeId id = 0; id < 16; ++id)
        EXPECT_EQ(r.idAt(r.coords(id)), id);
}

TEST(TorusRouting, HopCountsSymmetricAndBounded)
{
    TorusRouting r({4, 4});
    for (sim::NodeId a = 0; a < 16; ++a) {
        for (sim::NodeId b = 0; b < 16; ++b) {
            EXPECT_EQ(r.hopCount(a, b), r.hopCount(b, a));
            EXPECT_LE(r.hopCount(a, b), 4u); // 2+2 max in a 4x4 torus
            if (a != b)
                EXPECT_GE(r.hopCount(a, b), 1u);
        }
    }
}

TEST(TorusRouting, DimensionOrderReachesDestination)
{
    TorusRouting r({4, 4});
    for (sim::NodeId a = 0; a < 16; ++a) {
        for (sim::NodeId b = 0; b < 16; ++b) {
            if (a == b)
                continue;
            sim::NodeId cur = a;
            std::uint32_t steps = 0;
            while (cur != b) {
                cur = r.neighbor(cur, r.nextDir(cur, b));
                ASSERT_LE(++steps, 8u) << "routing loop " << a << "->" << b;
            }
            EXPECT_EQ(steps, r.hopCount(a, b)) << a << "->" << b;
        }
    }
}

TEST(TorusRouting, WrapAroundUsesShortPath)
{
    TorusRouting r({8});
    // 0 -> 7 should go negative (1 hop) not positive (7 hops).
    EXPECT_EQ(r.hopCount(0, 7), 1u);
    EXPECT_EQ(r.nextDir(0, 7), 1u); // negative direction of dim 0
}

TEST(TorusRouting3D, HopCountsOn2x2x2)
{
    TorusRouting r({2, 2, 2});
    EXPECT_EQ(r.nodeCount(), 8u);
    EXPECT_EQ(r.portCount(), 6u); // 2 directed ports per dimension
    // In a 2-ring every dimension is one hop either way: the hop count
    // is the Hamming distance of the 3-bit coordinates.
    for (sim::NodeId a = 0; a < 8; ++a) {
        for (sim::NodeId b = 0; b < 8; ++b) {
            const auto hamming =
                static_cast<std::uint32_t>(__builtin_popcount(a ^ b));
            EXPECT_EQ(r.hopCount(a, b), hamming) << a << "->" << b;
        }
    }
}

TEST(TorusRouting3D, CoordsRoundTripAndDiameterOn4x4x4)
{
    TorusRouting r({4, 4, 4});
    EXPECT_EQ(r.nodeCount(), 64u);
    std::uint32_t diameter = 0;
    for (sim::NodeId a = 0; a < 64; ++a) {
        EXPECT_EQ(r.idAt(r.coords(a)), a);
        for (sim::NodeId b = 0; b < 64; ++b)
            diameter = std::max(diameter, r.hopCount(a, b));
    }
    // 2 hops max per 4-ring, 3 dimensions.
    EXPECT_EQ(diameter, 6u);
}

TEST(TorusRouting3D, DimensionOrderReachesDestinationOn4x4x4)
{
    TorusRouting r({4, 4, 4});
    for (sim::NodeId a = 0; a < 64; ++a) {
        for (sim::NodeId b = 0; b < 64; ++b) {
            if (a == b)
                continue;
            // Dimension-order: the route resolves dimension 0, then 1,
            // then 2, never revisiting a resolved dimension, and takes
            // exactly hopCount() steps.
            sim::NodeId cur = a;
            std::uint32_t steps = 0;
            std::uint32_t lastDim = 0;
            while (cur != b) {
                const std::uint32_t dir = r.nextDir(cur, b);
                const std::uint32_t dim = dir / 2;
                EXPECT_GE(dim, lastDim) << a << "->" << b;
                lastDim = dim;
                cur = r.neighbor(cur, dir);
                ASSERT_LE(++steps, 6u) << "routing loop " << a << "->" << b;
            }
            EXPECT_EQ(steps, r.hopCount(a, b)) << a << "->" << b;
        }
    }
}

TEST(TorusRouting3D, MessagesCrossA2x2x2Fabric)
{
    EventQueue eq;
    StatRegistry stats;
    TorusParams params;
    params.dims = {2, 2, 2};
    TorusFabric torus(eq, stats, params);
    std::vector<std::unique_ptr<NetworkInterface>> nis;
    for (sim::NodeId i = 0; i < 8; ++i)
        nis.push_back(std::make_unique<NetworkInterface>(
            eq, stats, "t3ni" + std::to_string(i), i, torus));

    // 0 -> 7 is the 3-hop corner-to-corner route.
    ASSERT_TRUE(nis[0]->trySend(mkMsg(0, 7)));
    eq.run();
    ASSERT_TRUE(nis[7]->hasMessage(Lane::kRequest));
    EXPECT_EQ(nis[7]->pop(Lane::kRequest).srcNid, 0);
    EXPECT_DOUBLE_EQ(torus.meanHops(), 3.0);
}

struct TorusFixture : public ::testing::Test
{
    EventQueue eq;
    StatRegistry stats;
    TorusFabric torus{eq, stats, TorusParams{}};
    std::vector<std::unique_ptr<NetworkInterface>> nis;

    void
    SetUp() override
    {
        for (sim::NodeId i = 0; i < 16; ++i)
            nis.push_back(std::make_unique<NetworkInterface>(
                eq, stats, "tni" + std::to_string(i), i, torus));
    }
};

TEST_F(TorusFixture, LatencyScalesWithHops)
{
    // 1 hop: 0 -> 1. 4 hops: 0 -> 10 (coords (0,0) -> (2,2)).
    Tick t1 = 0, t4 = 0;
    nis[1]->onArrival(Lane::kRequest, [&] { t1 = eq.now(); });
    nis[10]->onArrival(Lane::kRequest, [&] { t4 = eq.now(); });
    ASSERT_EQ(torus.routing().hopCount(0, 1), 1u);
    ASSERT_EQ(torus.routing().hopCount(0, 10), 4u);
    nis[0]->trySend(mkMsg(0, 1));
    nis[0]->trySend(mkMsg(0, 10));
    eq.run();
    EXPECT_GT(t4, t1);
    EXPECT_NEAR(sim::ticksToNs(t4 - t1) / sim::ticksToNs(t1), 3.0, 0.4);
}

TEST_F(TorusFixture, AllPairsDeliver)
{
    int received = 0;
    for (auto &ni : nis) {
        auto *p = ni.get();
        p->onArrival(Lane::kRequest, [&received, p] {
            while (p->hasMessage(Lane::kRequest)) {
                p->pop(Lane::kRequest);
                ++received;
            }
        });
    }
    int sent = 0;
    for (sim::NodeId a = 0; a < 16; ++a) {
        for (sim::NodeId b = 0; b < 16; ++b) {
            if (a == b)
                continue;
            ASSERT_TRUE(nis[a]->trySend(mkMsg(a, b)));
            ++sent;
        }
    }
    eq.run();
    EXPECT_EQ(received, sent);
    EXPECT_GT(torus.meanHops(), 1.9); // 4x4 torus mean distance = 2
    EXPECT_LT(torus.meanHops(), 2.2);
}

TEST_F(TorusFixture, FailedNodeDrops)
{
    torus.failNode(5);
    nis[0]->trySend(mkMsg(0, 5));
    eq.run();
    EXPECT_FALSE(nis[5]->hasMessage(Lane::kRequest));
    EXPECT_GT(torus.droppedMessages(), 0u);
}

} // namespace
