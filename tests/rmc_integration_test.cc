/**
 * @file
 * End-to-end integration tests: application -> access library -> QP ->
 * RGP -> fabric -> RRPP -> memory -> reply -> RCP -> CQ -> application.
 *
 * Verifies data integrity (real bytes move), latency plausibility,
 * multi-line unrolling, out-of-order completion, atomics, bounds/
 * permission errors, multi-QP operation, and failure handling, all on
 * the v2 awaitable API (OpResult / OpHandle).
 */

#include <gtest/gtest.h>

#include <cstring>
#include <deque>
#include <set>
#include <vector>

#include "api/session.hh"
#include "node/cluster.hh"
#include "sim/simulation.hh"

namespace {

using namespace sonuma;
using api::OpHandle;
using api::OpResult;
using api::RmcSession;
using node::Cluster;
using node::ClusterParams;
using rmc::CqStatus;

/** Two-node cluster with a shared context and a registered segment. */
struct TwoNodeFixture : public ::testing::Test
{
    sim::Simulation sim{42};
    std::unique_ptr<Cluster> cluster;
    os::Process *serverProc = nullptr;
    os::Process *clientProc = nullptr;
    vm::VAddr segBase = 0;
    static constexpr std::uint64_t kSegBytes = 1 << 20;
    static constexpr sim::CtxId kCtx = 1;

    void
    SetUp() override
    {
        ClusterParams params;
        params.nodes = 2;
        cluster = std::make_unique<Cluster>(sim, params);
        cluster->createSharedContext(kCtx);

        // Node 0 is the "server": it registers a 1 MiB segment.
        serverProc = &cluster->node(0).os().createProcess(/*uid=*/1);
        segBase = serverProc->alloc(kSegBytes);
        cluster->node(0).driver().openContext(*serverProc, kCtx);
        cluster->node(0).driver().registerSegment(*serverProc, kCtx,
                                                  segBase, kSegBytes);

        // Node 1 is the "client".
        clientProc = &cluster->node(1).os().createProcess(/*uid=*/2);
    }

    RmcSession
    makeClientSession()
    {
        return RmcSession(cluster->node(1).core(0),
                          cluster->node(1).driver(), *clientProc, kCtx);
    }

    /** Fill the server segment with a recognizable pattern. */
    void
    fillSegment(std::uint64_t offset, std::uint32_t len, std::uint8_t seed)
    {
        std::vector<std::uint8_t> data(len);
        for (std::uint32_t i = 0; i < len; ++i)
            data[i] = static_cast<std::uint8_t>(seed + i * 7);
        serverProc->addressSpace().write(segBase + offset, data.data(),
                                         len);
    }
};

TEST_F(TwoNodeFixture, RemoteReadMovesRealBytes)
{
    auto session = makeClientSession();
    fillSegment(4096, 64, 0x11);
    const vm::VAddr buf = session.allocBuffer(64);

    OpResult result;
    sim.spawn([](RmcSession *s, vm::VAddr buf, OpResult *r) -> sim::Task {
        *r = co_await s->read(0, 4096, buf, 64);
    }(&session, buf, &result));
    sim.run();

    EXPECT_EQ(result.status, CqStatus::kOk);
    EXPECT_TRUE(result.ok());
    EXPECT_GT(result.latency, 0u);
    std::uint8_t got[64];
    clientProc->addressSpace().read(buf, got, 64);
    for (int i = 0; i < 64; ++i)
        EXPECT_EQ(got[i], static_cast<std::uint8_t>(0x11 + i * 7)) << i;
}

TEST_F(TwoNodeFixture, RemoteReadLatencyWithinFourXOfLocalDram)
{
    auto session = makeClientSession();
    fillSegment(0, 64, 1);
    const vm::VAddr buf = session.allocBuffer(64);

    // Warm up once (TLB fills, CT$ fill), then measure. OpResult's
    // latency field must agree with wall-clock simulated time.
    double rttNs = 0, reportedNs = 0;
    sim.spawn([](sim::Simulation *sim, RmcSession *s, vm::VAddr buf,
                 double *rtt, double *reported) -> sim::Task {
        co_await s->read(0, 0, buf, 64);
        const sim::Tick t0 = sim->now();
        const OpResult r = co_await s->read(0, 64 * 100, buf, 64);
        *rtt = sim::ticksToNs(sim->now() - t0);
        *reported = sim::ticksToNs(r.latency);
    }(&sim, &session, buf, &rttNs, &reportedNs));
    sim.run();

    // Paper: ~300 ns remote read, within 4x of ~60-90 ns local DRAM.
    EXPECT_GT(rttNs, 150.0);
    EXPECT_LT(rttNs, 450.0);
    EXPECT_LE(reportedNs, rttNs);
    EXPECT_GT(reportedNs, 0.5 * rttNs);
}

TEST_F(TwoNodeFixture, RemoteWriteMovesRealBytes)
{
    auto session = makeClientSession();
    const vm::VAddr buf = session.allocBuffer(128);
    std::vector<std::uint8_t> data(128);
    for (int i = 0; i < 128; ++i)
        data[static_cast<std::size_t>(i)] =
            static_cast<std::uint8_t>(200 - i);
    clientProc->addressSpace().write(buf, data.data(), data.size());

    OpResult result;
    result.status = CqStatus::kFabricError;
    sim.spawn([](RmcSession *s, vm::VAddr buf, OpResult *r) -> sim::Task {
        *r = co_await s->write(0, 8192, buf, 128);
    }(&session, buf, &result));
    sim.run();

    EXPECT_TRUE(result.ok());
    std::uint8_t got[128];
    serverProc->addressSpace().read(segBase + 8192, got, 128);
    EXPECT_EQ(std::memcmp(got, data.data(), 128), 0);
}

TEST_F(TwoNodeFixture, MultiLineRequestUnrolls)
{
    auto session = makeClientSession();
    const std::uint32_t kLen = 8192; // 128 lines
    fillSegment(0, kLen, 0x42);
    const vm::VAddr buf = session.allocBuffer(kLen);

    OpResult result;
    sim.spawn([](RmcSession *s, vm::VAddr buf, OpResult *r) -> sim::Task {
        *r = co_await s->read(0, 0, buf, 8192);
    }(&session, buf, &result));
    sim.run();

    EXPECT_TRUE(result.ok());
    // One WQ entry, 128 request packets (unrolled at the source RGP).
    EXPECT_EQ(sim.stats().counter("node1.rmc.rgp.wqEntries")->value(), 1u);
    EXPECT_EQ(
        sim.stats().counter("node1.rmc.rgp.requestPackets")->value(),
        128u);
    // Full payload integrity.
    std::vector<std::uint8_t> got(kLen);
    clientProc->addressSpace().read(buf, got.data(), kLen);
    for (std::uint32_t i = 0; i < kLen; ++i)
        ASSERT_EQ(got[i], static_cast<std::uint8_t>(0x42 + i * 7)) << i;
}

TEST_F(TwoNodeFixture, AsyncReadsPipelineAndCompleteOutOfOrderSafely)
{
    auto session = makeClientSession();
    const int kOps = 200;
    fillSegment(0, 64 * kOps, 9);
    const vm::VAddr buf = session.allocBuffer(64 * kOps);

    int completions = 0;
    sim.spawn([](RmcSession *s, vm::VAddr buf, int *done) -> sim::Task {
        std::deque<OpHandle> window;
        for (int i = 0; i < kOps; ++i) {
            // Full window: retire the oldest before its slot recycles.
            while (window.size() >= s->queueDepth()) {
                EXPECT_TRUE((co_await window.front()).ok());
                window.pop_front();
                ++*done;
            }
            window.push_back(co_await s->readAsync(
                0, std::uint64_t(i) * 64, buf + std::uint64_t(i) * 64,
                64));
            while (!window.empty() && window.front().done()) {
                const OpResult r = co_await window.front();
                window.pop_front();
                EXPECT_TRUE(r.ok());
                ++*done;
            }
        }
        while (!window.empty()) {
            const OpResult r = co_await window.front();
            window.pop_front();
            EXPECT_TRUE(r.ok());
            ++*done;
        }
    }(&session, buf, &completions));
    sim.run();

    EXPECT_EQ(completions, kOps);
    EXPECT_EQ(session.outstanding(), 0u);
    // Data integrity across all 200 ops.
    std::vector<std::uint8_t> got(64 * kOps);
    clientProc->addressSpace().read(buf, got.data(), got.size());
    for (std::size_t i = 0; i < got.size(); ++i)
        ASSERT_EQ(got[i], static_cast<std::uint8_t>(9 + i * 7)) << i;
}

TEST_F(TwoNodeFixture, FetchAddIsAtomicAndReturnsOldValue)
{
    auto session = makeClientSession();
    serverProc->addressSpace().writeT<std::uint64_t>(segBase + 256, 100);

    std::uint64_t old1 = 0, old2 = 0;
    sim.spawn([](RmcSession *s, std::uint64_t *o1,
                 std::uint64_t *o2) -> sim::Task {
        const OpResult r1 = co_await s->fetchAdd(0, 256, 5);
        EXPECT_TRUE(r1.ok());
        *o1 = r1.oldValue;
        const OpResult r2 = co_await s->fetchAdd(0, 256, 7);
        EXPECT_TRUE(r2.ok());
        *o2 = r2.oldValue;
    }(&session, &old1, &old2));
    sim.run();

    EXPECT_EQ(old1, 100u);
    EXPECT_EQ(old2, 105u);
    EXPECT_EQ(serverProc->addressSpace().readT<std::uint64_t>(segBase + 256),
              112u);
}

TEST_F(TwoNodeFixture, CompareSwapSemantics)
{
    auto session = makeClientSession();
    serverProc->addressSpace().writeT<std::uint64_t>(segBase + 512, 42);

    std::uint64_t oldOk = 0, oldFail = 0;
    sim.spawn([](RmcSession *s, std::uint64_t *ok,
                 std::uint64_t *fail) -> sim::Task {
        *ok = (co_await s->compareSwap(0, 512, 42, 77)).oldValue;   // hits
        *fail = (co_await s->compareSwap(0, 512, 42, 99)).oldValue; // miss
    }(&session, &oldOk, &oldFail));
    sim.run();

    EXPECT_EQ(oldOk, 42u);
    EXPECT_EQ(oldFail, 77u);
    EXPECT_EQ(serverProc->addressSpace().readT<std::uint64_t>(segBase + 512),
              77u);
}

TEST_F(TwoNodeFixture, OutOfBoundsOffsetYieldsErrorCompletion)
{
    auto session = makeClientSession();
    const vm::VAddr buf = session.allocBuffer(64);

    OpResult result;
    sim.spawn([](RmcSession *s, vm::VAddr buf, OpResult *r) -> sim::Task {
        *r = co_await s->read(0, kSegBytes + 4096, buf, 64);
    }(&session, buf, &result));
    sim.run();

    EXPECT_EQ(result.status, CqStatus::kBoundsError);
    EXPECT_FALSE(result.ok());
    EXPECT_GT(sim.stats().counter("node0.rmc.rrpp.boundsErrors")->value(),
              0u);
}

TEST_F(TwoNodeFixture, StraddlingSegmentEndYieldsError)
{
    auto session = makeClientSession();
    const vm::VAddr buf = session.allocBuffer(128);
    OpResult result;
    // Last line is in bounds; the request extends one line past the end.
    sim.spawn([](RmcSession *s, vm::VAddr buf, OpResult *r) -> sim::Task {
        *r = co_await s->read(0, kSegBytes - 64, buf, 128);
    }(&session, buf, &result));
    sim.run();
    EXPECT_EQ(result.status, CqStatus::kBoundsError);
}

TEST_F(TwoNodeFixture, UnregisteredContextAtDestinationErrors)
{
    // Context 2 exists cluster-wide but node 0 never registered it.
    cluster->createSharedContext(2);
    RmcSession session(cluster->node(1).core(0), cluster->node(1).driver(),
                       *clientProc, 2);
    const vm::VAddr buf = session.allocBuffer(64);
    OpResult result;
    sim.spawn([](RmcSession *s, vm::VAddr buf, OpResult *r) -> sim::Task {
        *r = co_await s->read(0, 0, buf, 64);
    }(&session, buf, &result));
    sim.run();
    EXPECT_EQ(result.status, CqStatus::kBoundsError);
    EXPECT_GT(sim.stats().counter("node0.rmc.rrpp.badContext")->value(),
              0u);
}

TEST_F(TwoNodeFixture, OpeningContextWithoutPermissionThrows)
{
    cluster->registry().createContext(5, /*owner=*/40);
    auto &proc = cluster->node(1).os().createProcess(/*uid=*/41);
    EXPECT_THROW(cluster->node(1).driver().openContext(proc, 5),
                 os::PermissionError);
    cluster->registry().grant(5, 41);
    EXPECT_NO_THROW(cluster->node(1).driver().openContext(proc, 5));
}

TEST_F(TwoNodeFixture, BidirectionalTrafficBothDirections)
{
    // The server also reads from a segment registered at the client.
    auto clientSession = makeClientSession();
    const vm::VAddr clientSeg = clientProc->alloc(4096);
    cluster->node(1).driver().openContext(*clientProc, kCtx);
    cluster->node(1).driver().registerSegment(*clientProc, kCtx, clientSeg,
                                              4096);
    clientProc->addressSpace().writeT<std::uint64_t>(clientSeg, 0xabcd);

    RmcSession serverSession(cluster->node(0).core(0),
                             cluster->node(0).driver(), *serverProc, kCtx);
    fillSegment(0, 64, 3);

    const vm::VAddr cbuf = clientSession.allocBuffer(64);
    const vm::VAddr sbuf = serverSession.allocBuffer(64);
    OpResult r1, r2;
    sim.spawn([](RmcSession *s, vm::VAddr buf, OpResult *r) -> sim::Task {
        *r = co_await s->read(0, 0, buf, 64);
    }(&clientSession, cbuf, &r1));
    sim.spawn([](RmcSession *s, vm::VAddr buf, OpResult *r) -> sim::Task {
        *r = co_await s->read(1, 0, buf, 64);
    }(&serverSession, sbuf, &r2));
    sim.run();

    EXPECT_TRUE(r1.ok());
    EXPECT_TRUE(r2.ok());
    EXPECT_EQ(serverProc->addressSpace().readT<std::uint64_t>(sbuf),
              0xabcdu);
}

TEST_F(TwoNodeFixture, FabricFailureAbortsOutstandingOps)
{
    auto session = makeClientSession();
    const vm::VAddr buf = session.allocBuffer(64 * 8);

    bool driverNotified = false;
    cluster->node(1).driver().onFailure([&] { driverNotified = true; });

    std::vector<CqStatus> statuses;
    sim.spawn([](Cluster *cluster, RmcSession *s, vm::VAddr buf,
                 std::vector<CqStatus> *statuses) -> sim::Task {
        std::vector<OpHandle> handles;
        for (int i = 0; i < 8; ++i) {
            handles.push_back(co_await s->readAsync(
                0, std::uint64_t(i) * 64, buf + std::uint64_t(i) * 64,
                64));
        }
        // Fail the server node while requests are in flight.
        cluster->fabric().failNode(0);
        for (OpHandle &h : handles)
            statuses->push_back((co_await h).status);
    }(cluster.get(), &session, buf, &statuses));
    sim.run();

    EXPECT_TRUE(driverNotified);
    EXPECT_EQ(statuses.size(), 8u);
    bool sawFabricError = false;
    for (auto st : statuses)
        sawFabricError |= (st == CqStatus::kFabricError);
    EXPECT_TRUE(sawFabricError);
    EXPECT_EQ(session.outstanding(), 0u);
}

TEST_F(TwoNodeFixture, TwoQpsOnOneNodeOperateIndependently)
{
    auto s1 = makeClientSession();
    RmcSession s2(cluster->node(1).core(0), cluster->node(1).driver(),
                  *clientProc, kCtx);
    fillSegment(0, 64, 1);
    fillSegment(64, 64, 2);
    const vm::VAddr b1 = s1.allocBuffer(64);
    const vm::VAddr b2 = s2.allocBuffer(64);

    OpResult r1, r2;
    sim.spawn([](RmcSession *s, vm::VAddr b, OpResult *r) -> sim::Task {
        *r = co_await s->read(0, 0, b, 64);
    }(&s1, b1, &r1));
    sim.spawn([](RmcSession *s, vm::VAddr b, OpResult *r) -> sim::Task {
        *r = co_await s->read(0, 64, b, 64);
    }(&s2, b2, &r2));
    sim.run();

    EXPECT_TRUE(r1.ok());
    EXPECT_TRUE(r2.ok());
    std::uint8_t g1, g2;
    clientProc->addressSpace().read(b1, &g1, 1);
    clientProc->addressSpace().read(b2, &g2, 1);
    EXPECT_EQ(g1, 1);
    EXPECT_EQ(g2, 2);
}

TEST_F(TwoNodeFixture, WqWrapsAroundManyLaps)
{
    // 3 laps of the 64-entry WQ with data checking.
    auto session = makeClientSession();
    const int kOps = 64 * 3;
    fillSegment(0, 64, 0x77);
    const vm::VAddr buf = session.allocBuffer(64);

    int completions = 0;
    sim.spawn([](RmcSession *s, vm::VAddr buf,
                 int *completions) -> sim::Task {
        for (int i = 0; i < kOps; ++i) {
            const OpResult r = co_await s->read(0, 0, buf, 64);
            EXPECT_TRUE(r.ok());
            ++*completions;
        }
    }(&session, buf, &completions));
    sim.run();
    EXPECT_EQ(completions, kOps);
}

} // namespace
