/**
 * @file
 * Ablation: fabric sensitivity (§3, §8 "distance matters").
 *
 *  - Link-latency sweep on the crossbar: remote-read RTT and the
 *    remote:local ratio as the rack grows (20 ns board trace -> 500 ns
 *    optical hop).
 *  - Topology: flat crossbar vs 4x4 2D torus (per-hop 11 ns router)
 *    under all-to-all traffic.
 *
 * Not a paper figure; quantifies rack-scale deployment choices the
 * paper discusses qualitatively.
 */

#include <cstdio>
#include <numeric>

#include "bench/common.hh"

namespace {

using namespace sonuma;
using api::ClusterSpec;
using api::TestBed;
using api::operator""_MiB;

double
rttWithLinkLatency(double linkNs)
{
    TestBed bed(ClusterSpec{}
                    .nodes(2)
                    .crossbarLinkNs(linkNs)
                    .segmentPerNode(8_MiB)
                    .seed(1));
    auto &s = bed.session(1);
    const auto buf = s.allocBuffer(64);
    double rtt = 0;
    bed.spawn([](sim::Simulation *sim, api::RmcSession *s, vm::VAddr buf,
                 double *out) -> sim::Task {
        for (int i = 0; i < 16; ++i)
            co_await s->read(0, std::uint64_t(i) * 64, buf, 64);
        const sim::Tick t0 = sim->now();
        for (int i = 0; i < 200; ++i)
            co_await s->read(0, std::uint64_t(i) * 64, buf, 64);
        *out = sim::ticksToNs(sim->now() - t0) / 200;
    }(&bed.sim(), &s, buf, &rtt));
    bed.run();
    return rtt;
}

/** All-to-all 64 B reads on 16 nodes; returns mean RTT. */
double
allToAllRtt(node::Topology topo)
{
    ClusterSpec spec;
    spec.nodes(16).segmentPerNode(1_MiB).seed(3);
    if (topo == node::Topology::kTorus)
        spec.torus(4, 4);
    TestBed bed(spec);

    std::vector<double> rtts(16, 0);
    for (std::uint32_t i = 0; i < 16; ++i) {
        auto &s = bed.session(i);
        const auto buf = s.allocBuffer(64);
        bed.spawn([](sim::Simulation *sim, api::RmcSession *s,
                     vm::VAddr buf, std::uint32_t self,
                     double *out) -> sim::Task {
            const int iters = 60;
            const sim::Tick t0 = sim->now();
            for (int i = 0; i < iters; ++i) {
                const auto peer = static_cast<sim::NodeId>(
                    (self + 1 + (static_cast<std::uint32_t>(i) % 15)) %
                    16);
                co_await s->read(peer, (std::uint64_t(i) % 256) * 64,
                                 buf, 64);
            }
            *out = sim::ticksToNs(sim->now() - t0) / iters;
        }(&bed.sim(), &s, buf, i, &rtts[i]));
    }
    bed.run();
    return std::accumulate(rtts.begin(), rtts.end(), 0.0) / 16.0;
}

} // namespace

int
main()
{
    const double localNs = sonuma::bench::measureLocalDramNs();
    std::printf("# Ablation: fabric sensitivity (local DRAM = %.0f ns)\n\n",
                localNs);

    std::printf("## crossbar link-latency sweep (64 B remote read)\n");
    std::printf("%-14s %12s %16s\n", "link(ns/way)", "RTT(ns)",
                "remote:local");
    for (double link : {10.0, 20.0, 50.0, 100.0, 200.0, 500.0}) {
        const double rtt = rttWithLinkLatency(link);
        std::printf("%-14.0f %12.1f %16.1f\n", link, rtt, rtt / localNs);
    }

    std::printf("\n## topology: 16 nodes, all-to-all 64 B reads\n");
    std::printf("%-22s %14s\n", "topology", "mean RTT(ns)");
    std::printf("%-22s %14.1f\n", "crossbar (flat 50ns)",
                allToAllRtt(sonuma::node::Topology::kCrossbar));
    std::printf("%-22s %14.1f\n", "4x4 torus (11ns/hop)",
                allToAllRtt(sonuma::node::Topology::kTorus));
    return 0;
}
