/**
 * @file
 * Ablation: fabric sensitivity (§3, §8 "distance matters").
 *
 *  - Link-latency sweep on the crossbar: remote-read RTT and the
 *    remote:local ratio as the rack grows (20 ns board trace -> 500 ns
 *    optical hop).
 *  - Topology: flat crossbar vs 4x4 2D torus (per-hop 11 ns router)
 *    under all-to-all traffic.
 *
 * Not a paper figure; quantifies rack-scale deployment choices the
 * paper discusses qualitatively.
 */

#include <cstdio>
#include <numeric>

#include "bench/common.hh"
#include "fabric/torus.hh"

namespace {

using namespace sonuma;

double
rttWithLinkLatency(double linkNs)
{
    node::ClusterParams params;
    params.nodes = 2;
    params.crossbar.linkLatency = sim::nsToTicks(linkNs);
    sim::Simulation sim(1);
    node::Cluster cluster(sim, params);
    cluster.createSharedContext(1);
    auto &sp = cluster.node(0).os().createProcess(0);
    const auto seg = sp.alloc(8 << 20);
    cluster.node(0).driver().openContext(sp, 1);
    cluster.node(0).driver().registerSegment(sp, 1, seg, 8 << 20);
    auto &cp = cluster.node(1).os().createProcess(0);
    api::RmcSession s(cluster.node(1).core(0), cluster.node(1).driver(),
                      cp, 1);
    const auto buf = s.allocBuffer(64);
    double rtt = 0;
    sim.spawn([](sim::Simulation *sim, api::RmcSession *s, vm::VAddr buf,
                 double *out) -> sim::Task {
        rmc::CqStatus st;
        for (int i = 0; i < 16; ++i)
            co_await s->readSync(0, std::uint64_t(i) * 64, buf, 64, &st);
        const sim::Tick t0 = sim->now();
        for (int i = 0; i < 200; ++i)
            co_await s->readSync(0, std::uint64_t(i) * 64, buf, 64, &st);
        *out = sim::ticksToNs(sim->now() - t0) / 200;
    }(&sim, &s, buf, &rtt));
    sim.run();
    return rtt;
}

/** All-to-all 64 B reads on 16 nodes; returns mean RTT. */
double
allToAllRtt(node::Topology topo)
{
    node::ClusterParams params;
    params.nodes = 16;
    params.topology = topo;
    params.torus.dims = {4, 4};
    sim::Simulation sim(3);
    node::Cluster cluster(sim, params);
    cluster.createSharedContext(1);

    struct NodeCtx
    {
        os::Process *proc;
        vm::VAddr seg;
        std::unique_ptr<api::RmcSession> session;
        vm::VAddr buf;
    };
    std::vector<NodeCtx> ctx(16);
    for (std::uint32_t i = 0; i < 16; ++i) {
        auto &nd = cluster.node(i);
        ctx[i].proc = &nd.os().createProcess(0);
        ctx[i].seg = ctx[i].proc->alloc(1 << 20);
        nd.driver().openContext(*ctx[i].proc, 1);
        nd.driver().registerSegment(*ctx[i].proc, 1, ctx[i].seg, 1 << 20);
        ctx[i].session = std::make_unique<api::RmcSession>(
            nd.core(0), nd.driver(), *ctx[i].proc, 1);
        ctx[i].buf = ctx[i].session->allocBuffer(64);
    }

    std::vector<double> rtts(16, 0);
    for (std::uint32_t i = 0; i < 16; ++i) {
        sim.spawn([](sim::Simulation *sim, api::RmcSession *s,
                     vm::VAddr buf, std::uint32_t self,
                     double *out) -> sim::Task {
            rmc::CqStatus st;
            const int iters = 60;
            const sim::Tick t0 = sim->now();
            for (int i = 0; i < iters; ++i) {
                const auto peer = static_cast<sim::NodeId>(
                    (self + 1 + (static_cast<std::uint32_t>(i) % 15)) %
                    16);
                co_await s->readSync(peer,
                                     (std::uint64_t(i) % 256) * 64, buf,
                                     64, &st);
            }
            *out = sim::ticksToNs(sim->now() - t0) / iters;
        }(&sim, ctx[i].session.get(), ctx[i].buf, i, &rtts[i]));
    }
    sim.run();
    return std::accumulate(rtts.begin(), rtts.end(), 0.0) / 16.0;
}

} // namespace

int
main()
{
    const double localNs = sonuma::bench::measureLocalDramNs();
    std::printf("# Ablation: fabric sensitivity (local DRAM = %.0f ns)\n\n",
                localNs);

    std::printf("## crossbar link-latency sweep (64 B remote read)\n");
    std::printf("%-14s %12s %16s\n", "link(ns/way)", "RTT(ns)",
                "remote:local");
    for (double link : {10.0, 20.0, 50.0, 100.0, 200.0, 500.0}) {
        const double rtt = rttWithLinkLatency(link);
        std::printf("%-14.0f %12.1f %16.1f\n", link, rtt, rtt / localNs);
    }

    std::printf("\n## topology: 16 nodes, all-to-all 64 B reads\n");
    std::printf("%-22s %14s\n", "topology", "mean RTT(ns)");
    std::printf("%-22s %14.1f\n", "crossbar (flat 50ns)",
                allToAllRtt(sonuma::node::Topology::kCrossbar));
    std::printf("%-22s %14.1f\n", "4x4 torus (11ns/hop)",
                allToAllRtt(sonuma::node::Topology::kTorus));
    return 0;
}
