/**
 * @file
 * Figure 8: unsolicited send/receive performance (the software messaging
 * library of §5.3, measured netpipe-style as in §7.3).
 *
 *  (a) half-duplex latency vs message size, simulated hardware, for
 *      threshold = 0 (pull only), threshold = inf (push only), and the
 *      tuned threshold (256 B on hardware, 1 KB on the dev platform)
 *  (b) streaming bandwidth, same three configurations
 *  (c) latency on the development platform
 *
 * Paper reference points: 340 ns minimal half-duplex latency, >10 Gbps
 * at 4 KB, 12.8 Gbps at 8 KB on simulated hardware; 1.4 us minimum and
 * a 1 KB optimal threshold on the development platform.
 */

#include <limits>
#include <vector>

#include <memory>

#include "api/messaging.hh"
#include "bench/common.hh"

namespace {

using namespace sonuma;
using api::MsgEndpoint;
using api::MsgParams;
using api::TestBed;

struct Endpoints
{
    std::unique_ptr<MsgEndpoint> e0, e1;
};

Endpoints
makeEndpoints(TestBed &bed, const MsgParams &mp)
{
    Endpoints e;
    e.e0 = std::make_unique<MsgEndpoint>(bed.session(0), 1,
                                         bed.segBase(0), 0, 0, mp);
    e.e1 = std::make_unique<MsgEndpoint>(bed.session(1), 0,
                                         bed.segBase(1), 0, 0, mp);
    return e;
}

/** Half-duplex (one-way) latency via ping-pong, as netpipe reports. */
double
pingPongLatencyNs(const rmc::RmcParams &rp, const MsgParams &mp,
                  std::uint32_t size, int iters)
{
    TestBed bed = bench::twoNodeBed(
        rp, std::max<std::uint64_t>(64ull << 20,
                                    4 * MsgEndpoint::regionBytes(mp)));
    auto e = makeEndpoints(bed, mp);
    double oneWayNs = 0;
    bed.spawn([](sim::Simulation *sim, MsgEndpoint *ep,
                   std::uint32_t size, int iters,
                   double *out) -> sim::Task {
        std::vector<std::uint8_t> msg(size, 0x5a), buf;
        co_await ep->send(msg.data(), size); // warm
        co_await ep->receive(&buf);
        const sim::Tick t0 = sim->now();
        for (int i = 0; i < iters; ++i) {
            co_await ep->send(msg.data(), size);
            co_await ep->receive(&buf);
        }
        *out = sim::ticksToNs(sim->now() - t0) / (2.0 * iters);
    }(&bed.sim(), e.e0.get(), size, iters, &oneWayNs));
    bed.spawn([](MsgEndpoint *ep, std::uint32_t size,
                   int iters) -> sim::Task {
        std::vector<std::uint8_t> msg(size, 0xa5), buf;
        co_await ep->receive(&buf);
        co_await ep->send(msg.data(), size);
        for (int i = 0; i < iters; ++i) {
            co_await ep->receive(&buf);
            co_await ep->send(msg.data(), size);
        }
    }(e.e1.get(), size, iters));
    bed.run();
    return oneWayNs;
}

/** Streaming bandwidth: sender pushes messages back to back. */
double
streamGbps(const rmc::RmcParams &rp, const MsgParams &mp,
           std::uint32_t size, int count)
{
    TestBed bed = bench::twoNodeBed(
        rp, std::max<std::uint64_t>(64ull << 20,
                                    4 * MsgEndpoint::regionBytes(mp)));
    auto e = makeEndpoints(bed, mp);
    double gbps = 0;
    bed.spawn([](MsgEndpoint *ep, std::uint32_t size,
                   int count) -> sim::Task {
        std::vector<std::uint8_t> msg(size, 0x42);
        for (int i = 0; i < count; ++i)
            co_await ep->send(msg.data(), size);
    }(e.e0.get(), size, count));
    bed.spawn([](sim::Simulation *sim, MsgEndpoint *ep,
                   std::uint32_t size, int count,
                   double *out) -> sim::Task {
        std::vector<std::uint8_t> buf;
        const sim::Tick t0 = sim->now();
        for (int i = 0; i < count; ++i)
            co_await ep->receive(&buf);
        const double secs = sim::ticksToNs(sim->now() - t0) * 1e-9;
        *out = static_cast<double>(count) * size * 8.0 / secs / 1e9;
    }(&bed.sim(), e.e1.get(), size, count, &gbps));
    bed.run();
    return gbps;
}

void
runPlatform(const rmc::RmcParams &rp, std::uint32_t tunedThreshold,
            bool bandwidth_too)
{
    const std::uint32_t sizes[] = {64,   128,  256,  512,
                                   1024, 2048, 4096, 8192};
    const std::uint32_t kInf = std::numeric_limits<std::uint32_t>::max();

    std::printf("%-8s | %10s %10s %10s", "size(B)", "lat-pull", "lat-push",
                "lat-tuned");
    if (bandwidth_too)
        std::printf(" | %9s %9s %9s", "bw-pull", "bw-push", "bw-tuned");
    std::printf("   (lat ns, bw Gbps; tuned threshold=%u B)\n",
                tunedThreshold);

    for (const std::uint32_t size : sizes) {
        const int iters = rp.emulation() ? 40 : 100;
        MsgParams pull, push, tuned;
        pull.pushThreshold = 0;
        push.pushThreshold = kInf;
        tuned.pushThreshold = tunedThreshold;

        const double lp = pingPongLatencyNs(rp, pull, size, iters);
        const double lh = pingPongLatencyNs(rp, push, size, iters);
        const double lt = pingPongLatencyNs(rp, tuned, size, iters);
        std::printf("%-8u | %10.0f %10.0f %10.0f", size, lp, lh, lt);

        if (bandwidth_too) {
            const int count = size >= 4096 ? 400 : 800;
            const double bp = streamGbps(rp, pull, size, count);
            const double bh = streamGbps(rp, push, size, count);
            const double bt = streamGbps(rp, tuned, size, count);
            std::printf(" | %9.2f %9.2f %9.2f", bp, bh, bt);
        }
        std::printf("\n");
    }
}

} // namespace

int
main(int argc, char **argv)
{
    bench::Args args(argc, argv, {"platform"});
    const bool emuOnly = args.get("platform", "") == "emu";
    const bool hwOnly = args.get("platform", "") == "hw";

    if (!emuOnly) {
        auto hw = rmc::RmcParams::simulatedHardware();
        bench::printConfigHeader(
            "Fig. 8a/8b: send/receive, simulated hardware", hw);
        runPlatform(hw, /*tunedThreshold=*/256, /*bandwidth_too=*/true);
        std::printf("\n");
    }
    if (!hwOnly) {
        auto emu = rmc::RmcParams::emulationPlatform();
        bench::printConfigHeader(
            "Fig. 8c: send/receive, development platform", emu);
        runPlatform(emu, /*tunedThreshold=*/1024, /*bandwidth_too=*/false);
    }
    return 0;
}
