#!/usr/bin/env bash
# Build Release and run the tracked benchmarks, writing BENCH_*.json
# artifacts with a stable schema so future PRs can compare runs.
#
#   BENCH_sim_core.json           - written by bench_sim_core itself
#                                   (events/sec, ns/event, legacy A/B
#                                   speedup, allocs/event, peak RSS)
#   BENCH_fig7_remote_read.json   - written here (wall seconds, peak RSS)
#
# Usage: bench/run_benches.sh [build-dir]   (default: build-release)

set -euo pipefail

REPO_ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
BUILD_DIR="${1:-$REPO_ROOT/build-release}"

cmake -B "$BUILD_DIR" -S "$REPO_ROOT" -DCMAKE_BUILD_TYPE=Release \
      -DSONUMA_BUILD_TESTS=OFF >/dev/null
cmake --build "$BUILD_DIR" -j"$(nproc)" \
      --target bench_sim_core bench_fig7_remote_read >/dev/null

cd "$REPO_ROOT"

echo "== sim_core =="
"$BUILD_DIR/bench_sim_core" --out="$REPO_ROOT/BENCH_sim_core.json"

echo "== fig7_remote_read =="
# Wrap the paper benchmark: wall-clock seconds and peak RSS, schema v1.
FIG7_JSON="$REPO_ROOT/BENCH_fig7_remote_read.json"
read -r WALL PEAK_RSS <<<"$(python3 - "$BUILD_DIR/bench_fig7_remote_read" <<'PY'
import resource
import subprocess
import sys
import time

t0 = time.time()
with open("BENCH_fig7_remote_read.txt", "w") as out:
    subprocess.run([sys.argv[1]], stdout=out, check=True)
wall = time.time() - t0
rss_kb = resource.getrusage(resource.RUSAGE_CHILDREN).ru_maxrss
print(f"{wall:.3f} {rss_kb * 1024}")
PY
)"

cat > "$FIG7_JSON" <<EOF
{
  "bench": "fig7_remote_read",
  "schema": 1,
  "wall_seconds": $WALL,
  "peak_rss_bytes": $PEAK_RSS,
  "output": "BENCH_fig7_remote_read.txt"
}
EOF
echo "wrote $FIG7_JSON (wall ${WALL}s)"
