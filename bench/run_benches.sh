#!/usr/bin/env bash
# Build Release and run the tracked benchmarks, writing BENCH_*.json
# artifacts with a stable schema so future PRs can compare runs.
#
#   BENCH_sim_core.json           - written by bench_sim_core itself
#                                   (events/sec, ns/event, legacy A/B
#                                   speedup, allocs/event, peak RSS)
#   BENCH_fig7_remote_read.json   - written here (wall seconds, peak RSS)
#   BENCH_sweep/SWEEP_*.json      - one JSON per sweep cell (64-node
#                                   torus uniform-read matrix)
#   BENCH_sweep/FIG9_*.json       - fig9 PageRank scale study: fine-grain
#                                   PageRank at 64/256/512 nodes on 3D
#                                   tori (strong scaling, ranks verified)
#   BENCH_sweep/DEGRADED_*.json   - degraded-mode study: goodput, drop
#                                   counts and p50/p95/p99 under node
#                                   kill/recover, link kill (adaptive
#                                   routing), an incast storm, and a
#                                   silent drop window recovered purely
#                                   by RMC retransmission (retransmits,
#                                   dup_suppressed, unrecoverable)
#
# Usage: bench/run_benches.sh [--smoke] [build-dir]
#                             (default build dir: build-release)
#
# --smoke: fast CI sanity — build the bench binaries, run each tracked
# bench on a reduced budget, verify the guard script against the
# checked-in baseline, and write NOTHING into the repository.

set -euo pipefail

REPO_ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
SMOKE=0
if [[ "${1:-}" == "--smoke" ]]; then
    SMOKE=1
    shift
fi
BUILD_DIR="${1:-$REPO_ROOT/build-release}"

cmake -B "$BUILD_DIR" -S "$REPO_ROOT" -DCMAKE_BUILD_TYPE=Release \
      -DSONUMA_BUILD_TESTS=OFF >/dev/null
cmake --build "$BUILD_DIR" -j"$(nproc)" \
      --target bench_sim_core bench_fig7_remote_read bench_sweep \
               bench_table2_comparison bench_fig9_pagerank >/dev/null

cd "$REPO_ROOT"

if [[ "$SMOKE" == 1 ]]; then
    SMOKE_DIR="$(mktemp -d)"
    trap 'rm -rf "$SMOKE_DIR"' EXIT
    echo "== smoke: sim_core guard (ratio check vs checked-in baseline) =="
    python3 "$REPO_ROOT/bench/check_sim_core.py" \
        --binary "$BUILD_DIR/bench_sim_core" \
        --baseline "$REPO_ROOT/BENCH_sim_core.json" \
        --threshold 0.10 --events 400000
    echo "== smoke: sweep (quick matrix incl. qpCount cell, JSON schema check) =="
    "$BUILD_DIR/bench_sweep" --quick --qps=1,2 --batching=1 \
        --out-dir="$SMOKE_DIR" >/dev/null
    python3 - "$SMOKE_DIR" <<'PY'
import json, pathlib, sys
cells = list(pathlib.Path(sys.argv[1]).glob("SWEEP_*.json"))
assert cells, "sweep wrote no cells"
qp_counts = set()
for c in cells:
    d = json.loads(c.read_text())
    for key in ("bench", "schema", "nodes", "topology", "request_bytes",
                "qp_depth", "qp_count", "doorbell_batching", "mops",
                "mean_latency_ns"):
        assert key in d, f"{c}: missing {key}"
    qp_counts.add(d["qp_count"])
assert qp_counts == {1, 2}, f"expected qp_count cells 1 and 2, got {qp_counts}"
print(f"{len(cells)} sweep cell(s) OK (qp_counts {sorted(qp_counts)})")
PY
    echo "== smoke: degraded-mode cell (node kill/recover, accounting) =="
    "$BUILD_DIR/bench_sweep" --quick --nodes=16 --topo=4x4 --sizes=64 \
        --depths=16 --ops=32 --faults=node-kill@20us+40us \
        --out-dir="$SMOKE_DIR" >/dev/null
    python3 - "$SMOKE_DIR" <<'PY'
import json, pathlib, sys
cells = list(pathlib.Path(sys.argv[1]).glob("DEGRADED_*node-kill.json"))
assert cells, "degraded sweep wrote no DEGRADED_*node-kill cells"
for c in cells:
    d = json.loads(c.read_text())
    assert d["fault_scenario"].startswith("node-kill@"), c
    # The run must make progress through the fault...
    assert d["goodput_mops"] > 0, f"{c}: no goodput under faults"
    # ...and the degraded accounting must balance exactly.
    assert d["ok_ops"] + d["failed_ops"] == d["ops"], \
        f"{c}: ok {d['ok_ops']} + failed {d['failed_ops']} != ops {d['ops']}"
    assert d["aborted_ops"] == d["retried_ops"] + d["failed_ops"], \
        f"{c}: aborted {d['aborted_ops']} != retried {d['retried_ops']} " \
        f"+ failed {d['failed_ops']}"
    assert d["dropped_messages"] > 0, f"{c}: node kill dropped nothing"
print(f"{len(cells)} degraded cell(s) OK (goodput > 0, exact accounting)")
PY
    echo "== smoke: recovery cell (silent drop window, RMC retransmission) =="
    # Workload-level retries are OFF (--retries=0): every dropped packet
    # must be recovered by the RMC's timeout-driven retransmission
    # alone, and the ok + unrecoverable == ops identity must close.
    "$BUILD_DIR/bench_sweep" --quick --nodes=16 --topo=4x4 --sizes=64 \
        --depths=16 --ops=32 --faults=drop@10us+60us --max-attempts=6 \
        --retries=0 --out-dir="$SMOKE_DIR" >/dev/null
    python3 - "$SMOKE_DIR" <<'PY'
import json, pathlib, sys
cells = list(pathlib.Path(sys.argv[1]).glob("DEGRADED_*_drop.json"))
assert cells, "drop sweep wrote no DEGRADED_*_drop cells"
for c in cells:
    d = json.loads(c.read_text())
    assert d["fault_scenario"].startswith("drop@"), c
    assert d["dropped_messages"] > 0, f"{c}: drop window dropped nothing"
    assert d["retransmits"] > 0, f"{c}: drops but no retransmissions"
    assert d["unrecoverable"] == 0, f"{c}: {d['unrecoverable']} ops lost"
    assert d["ok_ops"] + d["unrecoverable"] == d["ops"], \
        f"{c}: ok {d['ok_ops']} + unrecoverable {d['unrecoverable']} " \
        f"!= ops {d['ops']}"
    assert d["ok_ops"] == d["ops"], \
        f"{c}: ok {d['ok_ops']} != ops {d['ops']} despite retransmission"
print(f"{len(cells)} recovery cell(s) OK (drops retransmitted, none lost)")
PY
    echo "== smoke: fig9 pagerank workload cell (8 nodes, tiny graph) =="
    "$BUILD_DIR/bench_sweep" --workload=pagerank --nodes=8 --ndims=3 \
        --sizes=64 --depths=16 --pr-vertices=1024 --pr-degree=4 \
        --out-dir="$SMOKE_DIR" >/dev/null
    python3 - "$SMOKE_DIR" <<'PY'
import json, pathlib, sys
cells = list(pathlib.Path(sys.argv[1]).glob("FIG9_*.json"))
assert cells, "pagerank sweep wrote no FIG9 cells"
for c in cells:
    d = json.loads(c.read_text())
    assert d["workload"] == "pagerank", c
    for key in ("nodes", "topology", "ops", "mops", "vertices", "edges",
                "cross_edge_fraction", "sim_us"):
        assert key in d, f"{c}: missing {key}"
    assert d["topology"].count("x") == 2, f"{c}: expected a 3D torus"
print(f"{len(cells)} FIG9 cell(s) OK (ranks verified in-process)")
PY
    echo "== smoke: observability cell (8 nodes, sampling on, OBS schema) =="
    "$BUILD_DIR/bench_sweep" --quick --nodes=8 --sizes=64 --depths=16 \
        --ops=32 --obs-period-ns=200 --out-dir="$SMOKE_DIR" >/dev/null
    python3 - "$SMOKE_DIR" <<'PY'
import json, pathlib, sys
obs = list(pathlib.Path(sys.argv[1]).glob("OBS_*.json"))
assert obs, "obs-enabled sweep wrote no OBS_* sidecars"
for o in obs:
    d = json.loads(o.read_text())
    assert d["bench"] == "obs" and d["schema"] == 1, o
    assert d["period_ns"] == 200, f"{o}: period {d['period_ns']}"
    assert d["series_count"] == len(d["series"]) >= 1, \
        f"{o}: no live series sampled"
    for s in d["series"]:
        for key in ("name", "unit", "dropped", "samples"):
            assert key in s, f"{o}: series missing {key}"
        ts = [t for t, _ in s["samples"]]
        assert ts == sorted(ts), f"{o}: {s['name']} timestamps not sorted"
print(f"{len(obs)} OBS sidecar(s) OK (schema 1, sorted timestamps)")
PY
    echo "== smoke: fig7 (hw side only, binary runs) =="
    "$BUILD_DIR/bench_fig7_remote_read" --platform=hw >/dev/null
    echo "== smoke: JSON validity (every emitted artifact) =="
    for f in "$SMOKE_DIR"/*.json; do
        python3 -m json.tool "$f" >/dev/null || {
            echo "invalid JSON: $f" >&2; exit 1; }
    done
    echo "smoke OK (no repository artifacts touched)"
    exit 0
fi

echo "== sim_core =="
"$BUILD_DIR/bench_sim_core" --out="$REPO_ROOT/BENCH_sim_core.json"

echo "== sweep (64-node torus fig9-style matrix) =="
mkdir -p "$REPO_ROOT/BENCH_sweep"
"$BUILD_DIR/bench_sweep" --nodes=64 --topologies=torus \
    --sizes=64,512 --depths=16,64 --ops=64 \
    --out-dir="$REPO_ROOT/BENCH_sweep"

echo "== sweep exemplar (8-node cell byte-compared by observability_test) =="
"$BUILD_DIR/bench_sweep" --nodes=8 --sizes=64 --depths=16 \
    --out-dir="$REPO_ROOT/BENCH_sweep"

echo "== table2 IOPS-vs-qpCount curve (Table 2 QP axis, OBS sampled) =="
# Sampling is read-only (observability_test proves the cell artifact is
# unchanged), so the curve and its OBS_TABLE2_* sidecars come from the
# same run.
"$BUILD_DIR/bench_table2_comparison" --curve-only --obs-period-ns=10000 \
    --out-dir="$REPO_ROOT/BENCH_sweep"

echo "== fig9 PageRank scale study (64/256/512 nodes, 3D tori) =="
"$BUILD_DIR/bench_fig9_pagerank" --scale --nodes=64,256,512 \
    --out-dir="$REPO_ROOT/BENCH_sweep"

echo "== degraded-mode study (node kill, link kill + adaptive, incast) =="
# The kill lands mid-flight (in-flight ops to the victim peak in the
# first ~15 simulated us) so the abort/retry accounting is exercised,
# not just the recovery.
# The node-kill cell also carries the observability exemplar: sampling
# every 10 simulated us writes an OBS_*_node-kill.json sidecar next to
# the (unchanged) DEGRADED artifact.
"$BUILD_DIR/bench_sweep" --nodes=64 --topo=4x4x4 --sizes=64 --depths=16 \
    --ops=64 --faults=node-kill@10us+100us --obs-period-ns=10000 \
    --out-dir="$REPO_ROOT/BENCH_sweep"
"$BUILD_DIR/bench_sweep" --nodes=64 --topo=4x4x4 --sizes=64 --depths=16 \
    --ops=64 --routing=adaptive --faults=link-kill@10us \
    --out-dir="$REPO_ROOT/BENCH_sweep"
"$BUILD_DIR/bench_sweep" --nodes=64 --topo=4x4x4 --sizes=64 --depths=16 \
    --ops=64 --faults=incast \
    --out-dir="$REPO_ROOT/BENCH_sweep"
# Silent drop window, workload retries off: recovery is carried by RMC
# retransmission alone (retransmits > 0, unrecoverable == 0).
"$BUILD_DIR/bench_sweep" --nodes=64 --topo=4x4x4 --sizes=64 --depths=16 \
    --ops=64 --faults=drop@10us+100us --max-attempts=6 --retries=0 \
    --out-dir="$REPO_ROOT/BENCH_sweep"

echo "== fig7_remote_read =="
# Wrap the paper benchmark: wall-clock seconds and peak RSS, schema v1.
FIG7_JSON="$REPO_ROOT/BENCH_fig7_remote_read.json"
read -r WALL PEAK_RSS <<<"$(python3 - "$BUILD_DIR/bench_fig7_remote_read" <<'PY'
import resource
import subprocess
import sys
import time

t0 = time.time()
with open("BENCH_fig7_remote_read.txt", "w") as out:
    subprocess.run([sys.argv[1]], stdout=out, check=True)
wall = time.time() - t0
rss_kb = resource.getrusage(resource.RUSAGE_CHILDREN).ru_maxrss
print(f"{wall:.3f} {rss_kb * 1024}")
PY
)"

cat > "$FIG7_JSON" <<EOF
{
  "bench": "fig7_remote_read",
  "schema": 1,
  "wall_seconds": $WALL,
  "peak_rss_bytes": $PEAK_RSS,
  "output": "BENCH_fig7_remote_read.txt"
}
EOF
echo "wrote $FIG7_JSON (wall ${WALL}s)"

echo "== JSON validity (every tracked artifact) =="
for f in "$REPO_ROOT"/BENCH_*.json "$REPO_ROOT"/BENCH_sweep/*.json; do
    python3 -m json.tool "$f" >/dev/null || {
        echo "invalid JSON: $f" >&2; exit 1; }
done
echo "all artifacts are valid JSON"
