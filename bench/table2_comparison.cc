/**
 * @file
 * Table 2: soNUMA (development platform + simulated hardware) versus
 * RDMA/InfiniBand (ConnectX-3 class model) on four metrics:
 *
 *            | soNUMA dev | soNUMA sim'd HW | RDMA/IB
 *   Max BW   |  1.8 Gbps  |     77 Gbps     | 50 Gbps
 *   Read RTT |   1.5 us   |     0.3 us      | 1.19 us
 *   F&A      |   1.5 us   |     0.3 us      | 1.15 us
 *   IOPS     |   1.97 M   |     10.9 M      | 35 M @ 4 QPs (8.75/QP)
 *
 * Plus the table's queue-pair axis: IOPS vs qpCount on shallow (8-entry)
 * rings with doorbell batching, the multi-QP session reproduction of
 * "IOPS scale with the number of QPs". One JSON artifact per point with
 * --out-dir=... (checked into BENCH_sweep/); --curve-only skips the
 * slow three-platform table for CI.
 */

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "baseline/rdma.hh"
#include "bench/common.hh"
#include "sim/time_series.hh"

namespace {

using namespace sonuma;
using api::TestBed;

struct Metrics
{
    double maxBwGbps = 0;
    double readRttUs = 0;
    double fetchAddUs = 0;
    double mops = 0;
};

Metrics
measureSonuma(const rmc::RmcParams &params)
{
    Metrics m;
    const bool emu = params.emulation();

    // Read RTT + fetch-and-add (blocking, warm).
    {
        TestBed bed = bench::twoNodeBed(params);
        auto &s = bed.session(1);
        const auto buf = s.allocBuffer(64);
        bed.spawn([](sim::Simulation *sim, api::RmcSession *s,
                     vm::VAddr buf, Metrics *m) -> sim::Task {
            for (int i = 0; i < 16; ++i)
                co_await s->read(0, std::uint64_t(i) * 64, buf, 64);
            sim::Tick t0 = sim->now();
            const int iters = 200;
            for (int i = 0; i < iters; ++i)
                co_await s->read(0, std::uint64_t(i) * 64, buf, 64);
            m->readRttUs = sim::ticksToUs(sim->now() - t0) / iters;
            t0 = sim->now();
            for (int i = 0; i < iters; ++i)
                co_await s->fetchAdd(0, 1 << 20, 1);
            m->fetchAddUs = sim::ticksToUs(sim->now() - t0) / iters;
        }(&bed.sim(), &s, buf, &m));
        bed.run();
    }

    // Max BW: pipelined 8 KB reads. IOPS: pipelined 64 B reads.
    {
        TestBed bed = bench::twoNodeBed(params);
        auto &s = bed.session(1);
        const auto buf = s.allocBuffer(64ull * 8192);
        bed.spawn([](sim::Simulation *sim, api::RmcSession *s,
                     vm::VAddr buf, std::uint64_t segBytes, bool emu,
                     Metrics *m) -> sim::Task {
            const int ops = emu ? 100 : 1500;
            sim::Tick t0 = sim->now();
            for (int i = 0; i < ops; ++i) {
                co_await s->readAsync(
                    0, (std::uint64_t(i) * 8192) % (segBytes / 2),
                    buf + (std::uint64_t(i) % 64) * 8192, 8192);
            }
            co_await s->drain();
            double secs = sim::ticksToNs(sim->now() - t0) * 1e-9;
            m->maxBwGbps = ops * 8192.0 * 8.0 / secs / 1e9;

            const int iops = emu ? 4000 : 20000;
            t0 = sim->now();
            for (int i = 0; i < iops; ++i) {
                co_await s->readAsync(
                    0, (std::uint64_t(i) * 64) % (segBytes / 2), buf, 64);
            }
            co_await s->drain();
            secs = sim::ticksToNs(sim->now() - t0) * 1e-9;
            m->mops = iops / secs / 1e6;
        }(&bed.sim(), &s, buf, bed.segBytes(), emu, &m));
        bed.run();
    }
    return m;
}

Metrics
measureRdma()
{
    Metrics m;
    {
        sim::Simulation sim;
        baseline::RdmaPair rdma(sim.eq(), sim.stats(), {});
        sim.spawn([](sim::Simulation *sim, baseline::RdmaPair *r,
                     Metrics *m) -> sim::Task {
            const int iters = 100;
            sim::Tick t0 = sim->now();
            for (int i = 0; i < iters; ++i)
                co_await r->read(64);
            m->readRttUs = sim::ticksToUs(sim->now() - t0) / iters;
            t0 = sim->now();
            for (int i = 0; i < iters; ++i)
                co_await r->fetchAdd();
            m->fetchAddUs = sim::ticksToUs(sim->now() - t0) / iters;
        }(&sim, &rdma, &m));
        sim.run();
    }
    {
        sim::Simulation sim;
        baseline::RdmaPair rdma(sim.eq(), sim.stats(), {});
        sim.spawn([](sim::Simulation *sim, baseline::RdmaPair *r,
                     Metrics *m) -> sim::Task {
            const int ops = 256;
            const sim::Tick t0 = sim->now();
            co_await r->stream(64 * 1024, ops);
            const double secs = sim::ticksToNs(sim->now() - t0) * 1e-9;
            m->maxBwGbps = ops * 65536.0 * 8.0 / secs / 1e9;
        }(&sim, &rdma, &m));
        sim.run();
    }
    {
        sim::Simulation sim;
        baseline::RdmaPair rdma(sim.eq(), sim.stats(), {});
        sim.spawn([](sim::Simulation *sim, baseline::RdmaPair *r,
                     Metrics *m) -> sim::Task {
            const int ops = 20000;
            const sim::Tick t0 = sim->now();
            co_await r->stream(8, ops);
            const double secs = sim::ticksToNs(sim->now() - t0) * 1e-9;
            m->mops = ops / secs / 1e6;
        }(&sim, &rdma, &m));
        sim.run();
    }
    return m;
}

/**
 * One point of the IOPS-vs-qpCount curve: pipelined 64 B reads from a
 * single session whose in-flight window is qpCount shallow rings. The
 * ring depth (8) is the deliberate bottleneck — adding QPs widens the
 * window until the RMC pipelines saturate, which is exactly the axis
 * Table 2 reports per-QP IOPS on.
 */
double
measureIopsAtQps(std::uint32_t qpCount, std::uint64_t obsPeriodNs,
                 std::string *obsJson)
{
    auto params = sonuma::rmc::RmcParams::simulatedHardware();
    params.qpEntries = 8;
    params.qpCount = qpCount;

    TestBed bed(api::ClusterSpec{}
                    .nodes(2)
                    .rmc(params)
                    .segmentPerNode(64ull << 20)
                    .doorbellBatching(true)
                    .observability(obsPeriodNs));
    auto &s = bed.session(1);
    const auto buf =
        s.allocBuffer(std::uint64_t(s.queueDepth()) * 64);
    double mops = 0;
    bed.spawn([](sim::Simulation *sim, api::RmcSession *s, vm::VAddr buf,
                 std::uint64_t segBytes, double *out) -> sim::Task {
        const std::uint64_t span = segBytes / 2;
        const int warm = 256, ops = 20000;
        for (int i = 0; i < warm; ++i) {
            co_await s->readAsync(0, (std::uint64_t(i) * 64) % span,
                                  buf + std::uint64_t(s->nextSlot()) * 64,
                                  64);
        }
        co_await s->drain();
        const sim::Tick t0 = sim->now();
        for (int i = 0; i < ops; ++i) {
            co_await s->readAsync(0, (std::uint64_t(i) * 64) % span,
                                  buf + std::uint64_t(s->nextSlot()) * 64,
                                  64);
        }
        co_await s->drain();
        const double secs = sim::ticksToNs(sim->now() - t0) * 1e-9;
        *out = ops / secs / 1e6;
    }(&bed.sim(), &s, buf, bed.segBytes(), &mops));
    bed.run();
    if (obsPeriodNs > 0 && obsJson) {
        *obsJson = sim::renderObsJson(
            bed.sim().stats(),
            "TABLE2_iops_qp" + std::to_string(qpCount), obsPeriodNs);
    }
    return mops;
}

void
runQpCurve(const std::string &outDir, std::uint64_t obsPeriodNs)
{
    const std::vector<std::uint32_t> qps{1, 2, 4, 8};
    std::printf("\n# IOPS vs queue pairs (64 B reads, 8-entry rings, "
                "doorbell batching)\n");
    std::printf("%-8s %14s %14s\n", "QPs", "Mops/s", "Mops/s-per-QP");
    for (const auto n : qps) {
        std::string obsJson;
        const double mops = measureIopsAtQps(n, obsPeriodNs, &obsJson);
        std::printf("%-8u %14.2f %14.2f\n", n, mops, mops / n);
        if (outDir.empty())
            continue;
        const std::string path =
            outDir + "/TABLE2_iops_qp" + std::to_string(n) + ".json";
        std::ofstream f(path);
        if (!f) {
            std::fprintf(stderr, "table2: cannot write %s\n",
                         path.c_str());
            std::exit(2);
        }
        f << "{\"bench\": \"table2_iops_vs_qps\", \"schema\": 1"
          << ", \"qp_count\": " << n << ", \"qp_depth\": 8"
          << ", \"doorbell_batching\": 1, \"request_bytes\": 64"
          << ", \"mops\": " << mops << "}\n";
        if (!obsJson.empty()) {
            const std::string obsPath = outDir + "/OBS_TABLE2_iops_qp" +
                                        std::to_string(n) + ".json";
            std::ofstream of(obsPath);
            if (!of) {
                std::fprintf(stderr, "table2: cannot write %s\n",
                             obsPath.c_str());
                std::exit(2);
            }
            of << obsJson;
        }
    }
    std::printf("# paper Table 2: IOPS scale with the number of QPs "
                "(IB: ~8.75 Mops per QP)\n");
}

} // namespace

int
main(int argc, char **argv)
{
    bench::Args args(argc, argv,
                     {"out-dir", "curve-only", "obs-period-ns"});
    const std::string outDir = args.get("out-dir", "");
    const std::uint64_t obsPeriodNs = args.getU64("obs-period-ns", 0);
    if (args.has("curve-only")) {
        runQpCurve(outDir, obsPeriodNs);
        return 0;
    }
    std::printf("# Table 2: soNUMA vs RDMA/InfiniBand\n");
    std::printf("# measuring soNUMA (dev platform)...\n");
    const Metrics dev =
        measureSonuma(sonuma::rmc::RmcParams::emulationPlatform());
    std::printf("# measuring soNUMA (simulated hardware)...\n");
    const Metrics hw =
        measureSonuma(sonuma::rmc::RmcParams::simulatedHardware());
    std::printf("# measuring RDMA/IB model...\n");
    const Metrics ib = measureRdma();

    std::printf("\n%-22s %14s %14s %14s\n", "Transport", "soNUMA dev",
                "soNUMA sim'd HW", "RDMA/IB");
    std::printf("%-22s %14.1f %14.1f %14.1f\n", "Max BW (Gbps)",
                dev.maxBwGbps, hw.maxBwGbps, ib.maxBwGbps);
    std::printf("%-22s %14.2f %14.2f %14.2f\n", "Read RTT (us)",
                dev.readRttUs, hw.readRttUs, ib.readRttUs);
    std::printf("%-22s %14.2f %14.2f %14.2f\n", "Fetch-and-add (us)",
                dev.fetchAddUs, hw.fetchAddUs, ib.fetchAddUs);
    std::printf("%-22s %14.2f %14.2f %14.2f\n", "IOPS (Mops/s, 1 QP)",
                dev.mops, hw.mops, ib.mops);
    std::printf("\n# paper:               1.8 / 77 / 50 Gbps ; "
                "1.5 / 0.3 / 1.19 us ;\n");
    std::printf("#                      1.5 / 0.3 / 1.15 us ; "
                "1.97 / 10.9 / ~8.75-per-QP Mops\n");

    runQpCurve(outDir, obsPeriodNs);
    return 0;
}
