/**
 * @file
 * Figure 9: PageRank speedup relative to a single thread.
 *
 *  left:  simulated hardware, 2/4/8 nodes (one superstep, as the paper
 *         did on its cycle-accurate platform), three implementations:
 *         SHM(pthreads), soNUMA(bulk), soNUMA(fine-grain)
 *  right: development platform, 2/4/8/16 nodes
 *
 * Paper shape: SHM and bulk track each other closely (speedup set by
 * partition imbalance), fine-grain trails because each cross-partition
 * edge costs a remote read bounded by the per-core op rate.
 *
 * All soNUMA runs execute on the API-v2 Workload runtime (one
 * coroutine per node, §5.3 barrier alignment; src/app/pagerank.cc).
 *
 * --scale replaces the comparison tables with the rack-scale study the
 * ROADMAP asks for: the fine-grain implementation as a SweepDriver
 * workload at 64/256/512 nodes on 3D tori ({4,4,4} -> {4,8,8} ->
 * {8,8,8}), one FIG9_<label>.json artifact per cell (--out-dir=...).
 * The graph is fixed across node counts, so throughput (mops) rising
 * with the node count is the paper's near-linear scaling claim.
 *
 * Workload substitution (DESIGN.md): deterministic power-law graph in
 * place of the paper's Twitter subset. --vertices/--degree override the
 * scale; --quick shrinks it for smoke runs.
 */

#include <cinttypes>
#include <cstdio>

#include "api/sweep.hh"
#include "app/graph.hh"
#include "app/pagerank.hh"
#include "bench/common.hh"

namespace {

using namespace sonuma;
using namespace sonuma::app;

void
runSide(const char *title, const Graph &g, const PageRankConfig &cfg,
        const std::vector<std::uint32_t> &nodeCounts,
        const rmc::RmcParams &rmcParams)
{
    std::printf("\n# %s (V=%u, E=%" PRIu64 ", supersteps=%u)\n", title,
                g.numVertices, g.numEdges(), cfg.supersteps);

    const auto base = runPageRankShm(g, 1, cfg);
    const double t1 = static_cast<double>(base.elapsed);
    std::printf("# 1-thread baseline: %.2f us\n",
                sim::ticksToUs(base.elapsed));
    std::printf("%-8s %14s %14s %18s %16s\n", "nodes", "SHM(pthreads)",
                "soNUMA(bulk)", "soNUMA(fine-grain)", "fine remote-ops");

    for (const std::uint32_t n : nodeCounts) {
        const auto shm = runPageRankShm(g, n, cfg);
        sim::Rng prng(cfg.seed + n);
        const auto part = randomPartition(prng, g.numVertices, n);
        const auto bulk = runPageRankBulk(g, part, cfg, rmcParams);
        const auto fine = runPageRankFine(g, part, cfg, rmcParams);
        std::printf("%-8u %14.2f %14.2f %18.2f %16" PRIu64 "\n", n,
                    t1 / static_cast<double>(shm.elapsed),
                    t1 / static_cast<double>(bulk.elapsed),
                    t1 / static_cast<double>(fine.elapsed),
                    fine.remoteOps);
    }
}

/** The rack-scale Fig. 9 study: fine-grain PageRank via SweepDriver. */
int
runScaleStudy(const bench::Args &args, bool quick)
{
    app::registerPageRankSweepWorkload();

    api::SweepConfig cfg;
    cfg.workload = "pagerank";
    cfg.nodeCounts =
        args.getList("nodes", quick ? "8,16" : "64,256,512");
    cfg.topologies = {node::Topology::kTorus};
    cfg.torusNdims = 3;
    cfg.torusDims = args.getDims("topo");
    cfg.requestSizes = {64}; // one vertex record per remote read
    cfg.qpDepths = {64};
    cfg.qpCounts = args.getList("qps", "1");
    if (cfg.qpCounts.empty())
        cfg.qpCounts = {1};
    cfg.seed = args.getU64("seed", 1);
    cfg.outDir = args.get("out-dir", "");
    // 65536 vertices keep >= 128 owned vertices per node at 512 nodes,
    // so compute still dominates the O(N) barrier broadcast and the
    // mops curve stays near-linear through the whole 64-512 sweep.
    cfg.pagerank.vertices = static_cast<std::uint32_t>(
        args.getU64("vertices", quick ? 1024 : 65536));
    cfg.pagerank.degree =
        static_cast<std::uint32_t>(args.getU64("degree", quick ? 4 : 8));
    cfg.pagerank.supersteps = 1;
    cfg.pagerank.l2PerNodeBytes = args.getU64("l2kb", 256) * 1024;

    std::printf("# Fig. 9 scale study: fine-grain PageRank, fixed graph "
                "(V=%u, degree=%u), 3D tori\n",
                cfg.pagerank.vertices, cfg.pagerank.degree);
    std::printf("# strong scaling: mops rising with nodes is the paper's "
                "near-linear claim\n");
    api::SweepDriver driver(cfg);
    try {
        const auto cells = driver.run();
        std::printf("# %zu cells done; per-cell JSON%s\n", cells.size(),
                    cfg.outDir.empty()
                        ? " (pass --out-dir=BENCH_sweep to keep artifacts)"
                        : " written");
    } catch (const std::exception &e) {
        std::fprintf(stderr, "fig9 --scale: %s\n", e.what());
        return 2;
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    bench::Args args(argc, argv,
                     {"quick", "platform", "vertices", "degree",
                      "emu-vertices", "emu-degree", "l2kb", "scale",
                      "nodes", "topo", "qps", "seed", "out-dir"});
    const bool quick = args.has("quick");
    if (args.has("scale"))
        return runScaleStudy(args, quick);
    const bool emuOnly = args.get("platform", "") == "emu";
    const bool hwOnly = args.get("platform", "") == "hw";

    // Default scale keeps the vertex data (V x 64 B) well above the
    // largest aggregate LLC in the sweep, as in the paper (no speedup
    // attributable to cache capacity).
    const auto vertices = static_cast<std::uint32_t>(
        args.getU64("vertices", quick ? 16384 : 32768));
    const auto degree =
        static_cast<std::uint32_t>(args.getU64("degree", 16));

    sim::Rng grng(7);
    const Graph g = generatePowerLaw(grng, vertices, degree);

    // The development platform's software RMC moves data ~40x slower
    // than the simulated hardware while cores run at native speed, so
    // its side runs a half-size graph (still larger than every
    // aggregate LLC in the sweep) to stay simulatable. The paper's own
    // caveat applies: "the higher latency and lower bandwidth of the
    // development platform limit performance" relative to SHM.
    sim::Rng erng(8);
    const Graph gEmu = generatePowerLaw(
        erng,
        static_cast<std::uint32_t>(args.getU64("emu-vertices",
                                               quick ? 8192 : 16384)),
        static_cast<std::uint32_t>(args.getU64("emu-degree", 16)));

    std::printf("# Fig. 9: PageRank speedup over 1 thread "
                "(power-law graph, random partition)\n");

    // Cache-to-dataset scaling (DESIGN.md): the paper's Twitter subset
    // dwarfed every cache configuration, so vertex loads are memory
    // bound. With the graph scaled down ~50x, scale the LLC with it to
    // stay in the same regime. One untimed warm-up superstep removes
    // cold-start artifacts the paper's long runs amortized.
    const std::uint64_t l2PerUnit =
        args.getU64("l2kb", quick ? 32 : 128) * 1024;

    if (!emuOnly) {
        PageRankConfig cfg;
        cfg.supersteps = 1; // as the paper ran on the simulated hardware
        cfg.warmupSupersteps = 1;
        cfg.l2PerUnitBytes = l2PerUnit;
        cfg.seed = 11;
        runSide("left: simulated hardware", g, cfg, {2, 4, 8},
                rmc::RmcParams::simulatedHardware());
    }
    if (!hwOnly) {
        PageRankConfig cfg;
        // The paper ran 30 supersteps at wall-clock speed; our dev
        // platform is itself simulated, so we run one measured
        // superstep after warm-up (the per-superstep shape is what
        // matters).
        cfg.supersteps = 1;
        cfg.warmupSupersteps = 1;
        cfg.seed = 13;
        cfg.l2PerUnitBytes = 32 * 1024; // scaled with the smaller graph
        runSide("right: development platform", gEmu, cfg, {2, 4, 8, 16},
                rmc::RmcParams::emulationPlatform());
    }
    std::printf("\n# paper shape: SHM ~= bulk; fine-grain noticeably "
                "lower (per-core remote-op rate bound)\n");
    return 0;
}
