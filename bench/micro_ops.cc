/**
 * @file
 * Host-side microbenchmarks (google-benchmark) of the simulator's hot
 * primitives: event-queue throughput, coroutine switching, cache-model
 * accesses, and end-to-end simulated remote reads per host-second.
 *
 * These measure *simulator* performance (how fast the model runs on the
 * host), not simulated performance — useful when extending the models.
 */

#include <benchmark/benchmark.h>

#include "bench/common.hh"
#include "mem/cache.hh"
#include "mem/dram.hh"
#include "sim/event_queue.hh"
#include "sim/simulation.hh"

namespace {

using namespace sonuma;

void
BM_EventQueueScheduleRun(benchmark::State &state)
{
    for (auto _ : state) {
        sim::EventQueue eq;
        int sink = 0;
        for (int i = 0; i < 1000; ++i)
            eq.schedule(static_cast<sim::Tick>(i), [&sink] { ++sink; });
        eq.run();
        benchmark::DoNotOptimize(sink);
    }
    state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EventQueueScheduleRun);

void
BM_CoroutineDelayChain(benchmark::State &state)
{
    for (auto _ : state) {
        sim::Simulation sim;
        sim.spawn([](sim::Simulation *s) -> sim::Task {
            for (int i = 0; i < 1000; ++i)
                co_await sim::Delay(s->eq(), 10);
        }(&sim));
        sim.run();
    }
    state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_CoroutineDelayChain);

void
BM_CacheHitAccess(benchmark::State &state)
{
    sim::EventQueue eq;
    sim::StatRegistry stats;
    mem::DramChannel dram(eq, stats, "dram", {});
    mem::L2Cache l2(eq, stats, "l2", {}, dram);
    mem::L1Cache l1(eq, stats, "l1", {}, l2);
    // Warm one line.
    l1.access(0, false, [] {});
    eq.run();
    for (auto _ : state) {
        for (int i = 0; i < 100; ++i)
            l1.access(0, false, [] {});
        eq.run();
    }
    state.SetItemsProcessed(state.iterations() * 100);
}
BENCHMARK(BM_CacheHitAccess);

void
BM_SimulatedRemoteReads(benchmark::State &state)
{
    for (auto _ : state) {
        api::TestBed bed = bench::twoNodeBed(
            rmc::RmcParams::simulatedHardware(), 8ull << 20);
        auto &s = bed.session(1);
        const auto buf = s.allocBuffer(64);
        bed.spawn([](api::RmcSession *s, vm::VAddr buf) -> sim::Task {
            for (int i = 0; i < 200; ++i)
                co_await s->read(0, (std::uint64_t(i) % 1024) * 64, buf,
                                 64);
        }(&s, buf));
        bed.run();
    }
    state.SetItemsProcessed(state.iterations() * 200);
}
BENCHMARK(BM_SimulatedRemoteReads);

} // namespace

BENCHMARK_MAIN();
