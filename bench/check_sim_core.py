#!/usr/bin/env python3
"""Simulation-core performance guard (CTest-registered).

Re-runs bench_sim_core on a reduced event budget and fails when the
engine regressed more than the threshold versus the checked-in
BENCH_sim_core.json:

  - speedup_vs_legacy is checked ALWAYS: the bench measures the legacy
    event queue A/B in the same process, so the ratio is independent of
    host speed and (largely) of compiler flags. A silent regression in
    the inline queue shows up here on any machine. The ratio gets its
    own (wider) threshold: on a busy single-CPU host the interleaved
    A/B still jitters a few percent, while a real engine regression
    moves it far more (the refactor it guards is a 2.7x).
  - events_per_sec is checked only with --require-absolute (passed for
    Release builds, the configuration that produced the baseline file);
    other build types (-O2 RelWithDebInfo, sanitizers) legitimately run
    slower in absolute terms.

Usage:
  check_sim_core.py --binary <bench_sim_core> --baseline <json>
                    [--threshold 0.10] [--events 800000]
                    [--require-absolute]
"""

import argparse
import json
import subprocess
import sys
import tempfile
from pathlib import Path


def main() -> int:
    ap = argparse.ArgumentParser()
    ap.add_argument("--binary", required=True)
    ap.add_argument("--baseline", required=True)
    ap.add_argument("--threshold", type=float, default=0.10)
    ap.add_argument("--ratio-threshold", type=float, default=0.25)
    ap.add_argument("--events", type=int, default=800000)
    ap.add_argument("--require-absolute", action="store_true")
    args = ap.parse_args()

    baseline = json.loads(Path(args.baseline).read_text())

    with tempfile.TemporaryDirectory() as tmp:
        out = Path(tmp) / "sim_core.json"
        subprocess.run(
            [
                args.binary,
                f"--events={args.events}",
                f"--out={out}",
            ],
            check=True,
            stdout=subprocess.DEVNULL,
        )
        current = json.loads(out.read_text())

    floor = 1.0 - args.threshold
    ratio_floor = 1.0 - args.ratio_threshold
    failures = []

    base_ratio = baseline["speedup_vs_legacy"]
    cur_ratio = current["speedup_vs_legacy"]
    print(
        f"speedup_vs_legacy: baseline {base_ratio:.3f}, "
        f"current {cur_ratio:.3f} (floor {base_ratio * ratio_floor:.3f})"
    )
    if cur_ratio < base_ratio * ratio_floor:
        failures.append(
            f"speedup_vs_legacy regressed >{args.ratio_threshold:.0%}: "
            f"{cur_ratio:.3f} < {base_ratio * ratio_floor:.3f}"
        )

    base_eps = baseline["events_per_sec"]
    cur_eps = current["events_per_sec"]
    print(
        f"events_per_sec: baseline {base_eps:.0f}, current {cur_eps:.0f}"
        f" (floor {base_eps * floor:.0f},"
        f" {'enforced' if args.require_absolute else 'informational'})"
    )
    if args.require_absolute and cur_eps < base_eps * floor:
        failures.append(
            f"events_per_sec regressed >{args.threshold:.0%}: "
            f"{cur_eps:.0f} < {base_eps * floor:.0f}"
        )

    alloc = current["allocs_per_event_steady_state"]
    print(f"allocs_per_event_steady_state: {alloc}")
    if alloc > 0.001:
        failures.append(
            f"steady-state allocations crept back in: {alloc}/event"
        )

    for f in failures:
        print(f"FAIL: {f}", file=sys.stderr)
    if not failures:
        print("OK: sim_core within threshold of checked-in baseline")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
