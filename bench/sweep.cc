/**
 * @file
 * Parameter-matrix sweep (ROADMAP "workload sweeps" / paper §7.6 scale
 * projection): request size x QP depth x node count x topology, one
 * JSON blob per cell on stdout (and per-cell SWEEP_*.json files with
 * --out-dir=...).
 *
 *   $ ./bench_sweep                         # 64-node torus fig9-style
 *   $ ./bench_sweep --nodes=4,16,64 --topologies=crossbar,torus \
 *                   --sizes=64,512,4096 --depths=16,64 --ops=256
 *   $ ./bench_sweep --quick                 # smoke-sized matrix
 *
 * The whole driver is ClusterSpec + SweepDriver; scaling the study to
 * 512 nodes is a flag, not a new harness.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "api/sweep.hh"
#include "bench/common.hh"

namespace {

using namespace sonuma;

/** Parse "64,512,..." strictly: any non-numeric token is a clear
 *  error, not a silent default or an unhandled exception. */
std::vector<std::uint32_t>
parseList(const char *flag, const std::string &csv)
{
    std::vector<std::uint32_t> out;
    std::size_t pos = 0;
    while (pos < csv.size()) {
        const std::size_t comma = csv.find(',', pos);
        const std::string tok =
            csv.substr(pos, comma == std::string::npos ? std::string::npos
                                                       : comma - pos);
        if (!tok.empty()) {
            std::size_t used = 0;
            unsigned long v = 0;
            try {
                v = std::stoul(tok, &used);
            } catch (const std::exception &) {
                used = 0;
            }
            if (used != tok.size()) {
                std::fprintf(stderr,
                             "--%s: '%s' is not a number (expected a "
                             "comma-separated list like 64,512)\n",
                             flag, tok.c_str());
                std::exit(2);
            }
            out.push_back(static_cast<std::uint32_t>(v));
        }
        if (comma == std::string::npos)
            break;
        pos = comma + 1;
    }
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    bench::Args args(argc, argv, {"nodes", "topologies", "sizes",
                                  "depths", "qps", "batching", "ops",
                                  "seed", "out-dir", "quick"});
    const bool quick = args.has("quick");

    api::SweepConfig cfg;
    cfg.nodeCounts =
        parseList("nodes", args.get("nodes", quick ? "4" : "64"));
    cfg.requestSizes = parseList(
        "sizes", args.get("sizes", quick ? "64" : "64,512,4096"));
    cfg.qpDepths =
        parseList("depths", args.get("depths", quick ? "16" : "16,64"));
    cfg.qpCounts = parseList("qps", args.get("qps", "1"));
    cfg.doorbellBatching = args.getU64("batching", 0) != 0;
    cfg.opsPerNode = static_cast<std::uint32_t>(
        args.getU64("ops", quick ? 32 : 128));
    cfg.seed = args.getU64("seed", 1);
    cfg.outDir = args.get("out-dir", "");

    cfg.topologies.clear();
    const std::string topos = args.get("topologies", "torus");
    std::size_t pos = 0;
    while (pos <= topos.size()) {
        const std::size_t comma = topos.find(',', pos);
        const std::string tok =
            topos.substr(pos, comma == std::string::npos
                                  ? std::string::npos
                                  : comma - pos);
        if (tok == "crossbar") {
            cfg.topologies.push_back(node::Topology::kCrossbar);
        } else if (tok == "torus") {
            cfg.topologies.push_back(node::Topology::kTorus);
        } else if (!tok.empty()) {
            std::fprintf(stderr,
                         "--topologies: unknown topology '%s' (valid: "
                         "crossbar, torus)\n",
                         tok.c_str());
            return 2;
        }
        if (comma == std::string::npos)
            break;
        pos = comma + 1;
    }
    if (cfg.topologies.empty()) {
        std::fprintf(stderr,
                     "--topologies must name crossbar and/or torus\n");
        return 2;
    }

    std::printf("# sweep: %zu nodes x %zu topologies x %zu sizes x %zu "
                "depths x %zu qps = %zu cells (ops/node=%u%s)\n",
                cfg.nodeCounts.size(), cfg.topologies.size(),
                cfg.requestSizes.size(), cfg.qpDepths.size(),
                cfg.qpCounts.size(),
                cfg.nodeCounts.size() * cfg.topologies.size() *
                    cfg.requestSizes.size() * cfg.qpDepths.size() *
                    cfg.qpCounts.size(),
                cfg.opsPerNode,
                cfg.doorbellBatching ? ", doorbell batching" : "");

    api::SweepDriver driver(cfg);
    try {
        const auto cells = driver.run();
        std::printf("# %zu cells done\n", cells.size());
    } catch (const std::exception &e) {
        std::fprintf(stderr, "sweep: %s\n", e.what());
        return 2;
    }
    return 0;
}
