/**
 * @file
 * Parameter-matrix sweep (ROADMAP "workload sweeps" / paper §7.6 scale
 * projection): workload x request size x QP depth x QP count x node
 * count x topology, one JSON blob per cell on stdout (and per-cell
 * SWEEP_*.json / FIG9_*.json files with --out-dir=...).
 *
 *   $ ./bench_sweep                         # 64-node torus fig9-style
 *   $ ./bench_sweep --nodes=4,16,64 --topologies=crossbar,torus \
 *                   --sizes=64,512,4096 --depths=16,64 --ops=256
 *   $ ./bench_sweep --workload=pagerank --nodes=64,256,512 --ndims=3
 *   $ ./bench_sweep --workload=pagerank --nodes=512 --topo=8x8x8
 *   $ ./bench_sweep --quick                 # smoke-sized matrix
 *
 * Degraded-mode studies add a fault scenario and/or routing policy
 * (cells then land in DEGRADED_*.json instead of SWEEP_/FIG9_):
 *
 *   $ ./bench_sweep --nodes=64 --topo=4x4x4 --faults=node-kill@50us+100us
 *   $ ./bench_sweep --nodes=64 --topo=4x4x4 --routing=adaptive \
 *                   --faults=link-kill@50us
 *   $ ./bench_sweep --nodes=64 --faults=incast --retries=8
 *
 * The whole driver is ClusterSpec + SweepDriver; scaling the study to
 * 512 nodes — or swapping the uniform-read kernel for the Fig. 9
 * PageRank application — is a flag, not a new harness.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "api/sweep.hh"
#include "app/pagerank.hh"
#include "bench/common.hh"
#include "fabric/fault.hh"
#include "fabric/router.hh"

using namespace sonuma;

int
main(int argc, char **argv)
{
    bench::Args args(argc, argv,
                     {"workload", "nodes", "topologies", "topo", "ndims",
                      "sizes", "depths", "qps", "batching", "ops", "seed",
                      "out-dir", "quick", "pr-vertices", "pr-degree",
                      "pr-supersteps", "pr-warmup", "pr-verify", "faults",
                      "routing", "retries", "retry-backoff-us",
                      "max-attempts", "rnr-backoff-us", "bg-traffic",
                      "obs-period-ns", "obs-slots"});
    const bool quick = args.has("quick");
    app::registerPageRankSweepWorkload();

    api::SweepConfig cfg;
    cfg.workload = args.get("workload", "uniform");
    if (!api::SweepDriver::workloadRegistered(cfg.workload)) {
        std::string names;
        for (const auto &n : api::SweepDriver::registeredWorkloads())
            names += " " + n;
        std::fprintf(stderr, "--workload: unknown workload '%s'; valid:%s\n",
                     cfg.workload.c_str(), names.c_str());
        return 2;
    }
    const bool pagerank = cfg.workload == "pagerank";

    cfg.nodeCounts =
        args.getList("nodes", quick ? (pagerank ? "8" : "4") : "64");
    cfg.requestSizes = args.getList(
        "sizes", quick || pagerank ? "64" : "64,512,4096");
    cfg.qpDepths = args.getList("depths", quick ? "16" : "16,64");
    cfg.qpCounts = args.getList("qps", "1");
    cfg.doorbellBatching = args.getU64("batching", 0) != 0;
    cfg.opsPerNode = static_cast<std::uint32_t>(
        args.getU64("ops", quick ? 32 : 128));
    cfg.seed = args.getU64("seed", 1);
    cfg.outDir = args.get("out-dir", "");
    cfg.obsPeriodNs = args.getU64("obs-period-ns", 0);
    cfg.obsSlots = static_cast<std::size_t>(args.getU64("obs-slots", 1024));
    cfg.torusDims = args.getDims("topo");
    cfg.torusNdims = static_cast<std::uint32_t>(
        args.getU64("ndims", cfg.torusDims.empty() ? 2
                                                   : cfg.torusDims.size()));

    // Degraded-mode axis: fault scenario, routing policy, retry budget.
    // Both parsers fail fast here — a typo'd scenario must not burn a
    // long sweep before erroring — with did-you-mean hints.
    cfg.faultSpec = args.get("faults", "none");
    {
        fab::FaultPlan probe;
        std::string error;
        const std::uint32_t probeNodes =
            cfg.nodeCounts.empty() ? 2 : cfg.nodeCounts.front();
        if (!fab::FaultPlan::parse(cfg.faultSpec, probeNodes, &probe,
                                   &error)) {
            std::fprintf(stderr, "--faults: %s\n", error.c_str());
            return 2;
        }
    }
    {
        std::string error;
        if (!fab::parseRoutingMode(args.get("routing", "dor"),
                                   &cfg.routing, &error)) {
            std::fprintf(stderr, "--routing: %s\n", error.c_str());
            return 2;
        }
    }
    cfg.maxRetries =
        static_cast<std::uint32_t>(args.getU64("retries", 8));
    cfg.retryBackoff = sim::usToTicks(
        static_cast<double>(args.getU64("retry-backoff-us", 5)));

    // RMC-level reliable delivery: per-transfer attempt budget and the
    // first retransmit backoff (doubles per attempt, capped). Distinct
    // from --retries, which reposts whole ops in software.
    cfg.rmcParams.maxAttempts = static_cast<std::uint32_t>(args.getU64(
        "max-attempts", cfg.rmcParams.maxAttempts));
    if (args.has("rnr-backoff-us"))
        cfg.rmcParams.rnrBackoff = sim::usToTicks(
            static_cast<double>(args.getU64("rnr-backoff-us", 5)));

    // Background-load axis: a fraction of the foreground window spent
    // on uniform single-line reads next to the measured workload.
    if (args.has("bg-traffic")) {
        const std::string raw = args.get("bg-traffic", "0");
        try {
            cfg.bgTraffic = std::stod(raw);
        } catch (const std::exception &) {
            cfg.bgTraffic = -1.0; // falls into the range error below
        }
        if (cfg.bgTraffic < 0.0 || cfg.bgTraffic > 1.0) {
            std::fprintf(stderr,
                         "--bg-traffic: fraction must be in [0, 1] "
                         "(got '%s')\n",
                         raw.c_str());
            return 2;
        }
    }

    // PageRank axis (paper Fig. 9; see src/app/README.md).
    cfg.pagerank.vertices = static_cast<std::uint32_t>(
        args.getU64("pr-vertices", quick ? 1024 : 16384));
    cfg.pagerank.degree = static_cast<std::uint32_t>(
        args.getU64("pr-degree", quick ? 4 : 8));
    cfg.pagerank.supersteps = static_cast<std::uint32_t>(
        args.getU64("pr-supersteps", 1));
    cfg.pagerank.warmupSupersteps = static_cast<std::uint32_t>(
        args.getU64("pr-warmup", 0));
    cfg.pagerank.verifyRanks = args.getU64("pr-verify", 1) != 0;

    cfg.topologies.clear();
    const std::string topos = args.get("topologies", "torus");
    std::size_t pos = 0;
    while (pos <= topos.size()) {
        const std::size_t comma = topos.find(',', pos);
        const std::string tok =
            topos.substr(pos, comma == std::string::npos
                                  ? std::string::npos
                                  : comma - pos);
        if (tok == "crossbar") {
            cfg.topologies.push_back(node::Topology::kCrossbar);
        } else if (tok == "torus") {
            cfg.topologies.push_back(node::Topology::kTorus);
        } else if (!tok.empty()) {
            std::fprintf(stderr,
                         "--topologies: unknown topology '%s' (valid: "
                         "crossbar, torus)\n",
                         tok.c_str());
            return 2;
        }
        if (comma == std::string::npos)
            break;
        pos = comma + 1;
    }
    if (cfg.topologies.empty()) {
        std::fprintf(stderr,
                     "--topologies must name crossbar and/or torus\n");
        return 2;
    }

    std::printf("# sweep: workload=%s, %zu nodes x %zu topologies x %zu "
                "sizes x %zu depths x %zu qps = %zu cells (ops/node=%u%s)\n",
                cfg.workload.c_str(), cfg.nodeCounts.size(),
                cfg.topologies.size(), cfg.requestSizes.size(),
                cfg.qpDepths.size(), cfg.qpCounts.size(),
                cfg.nodeCounts.size() * cfg.topologies.size() *
                    cfg.requestSizes.size() * cfg.qpDepths.size() *
                    cfg.qpCounts.size(),
                cfg.opsPerNode,
                cfg.doorbellBatching ? ", doorbell batching" : "");
    if (cfg.faultSpec != "none" || cfg.routing != fab::RoutingMode::kDor)
        std::printf("# degraded: faults=%s, routing=%s, retries=%u "
                    "(backoff %llu ticks, capped doubling)\n",
                    cfg.faultSpec.c_str(),
                    fab::routingModeName(cfg.routing), cfg.maxRetries,
                    static_cast<unsigned long long>(cfg.retryBackoff));
    if (pagerank)
        std::printf("# pagerank: V=%u, degree=%u, supersteps=%u (+%u "
                    "warm-up), ranks %s\n",
                    cfg.pagerank.vertices, cfg.pagerank.degree,
                    cfg.pagerank.supersteps,
                    cfg.pagerank.warmupSupersteps,
                    cfg.pagerank.verifyRanks ? "verified vs host reference"
                                             : "unverified");

    api::SweepDriver driver(cfg);
    try {
        const auto cells = driver.run();
        std::printf("# %zu cells done\n", cells.size());
    } catch (const std::exception &e) {
        std::fprintf(stderr, "sweep: %s\n", e.what());
        return 2;
    }
    return 0;
}
