/**
 * @file
 * Shared benchmark scaffolding: a two-node harness (the microbenchmark
 * configuration of paper §7.2/7.3), tiny CLI-flag parsing, and table
 * printing that mirrors the paper's rows/series.
 */

#ifndef SONUMA_BENCH_COMMON_HH
#define SONUMA_BENCH_COMMON_HH

#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "api/session.hh"
#include "node/cluster.hh"
#include "sim/simulation.hh"

namespace sonuma::bench {

/** Minimal flag parser: --name=value / --name. */
class Args
{
  public:
    Args(int argc, char **argv)
    {
        for (int i = 1; i < argc; ++i)
            args_.emplace_back(argv[i]);
    }

    bool
    has(const std::string &name) const
    {
        for (const auto &a : args_) {
            if (a == "--" + name ||
                a.rfind("--" + name + "=", 0) == 0)
                return true;
        }
        return false;
    }

    std::string
    get(const std::string &name, const std::string &def) const
    {
        const std::string prefix = "--" + name + "=";
        for (const auto &a : args_) {
            if (a.rfind(prefix, 0) == 0)
                return a.substr(prefix.size());
        }
        return def;
    }

    std::uint64_t
    getU64(const std::string &name, std::uint64_t def) const
    {
        const auto s = get(name, "");
        return s.empty() ? def : std::stoull(s);
    }

  private:
    std::vector<std::string> args_;
};

/** Print the Table 1 configuration header once per bench. */
inline void
printConfigHeader(const char *bench, const rmc::RmcParams &rmc)
{
    std::printf("# %s\n", bench);
    std::printf("# platform: %s\n",
                rmc.emulation() ? "development platform (RMCemu)"
                                : "simulated hardware (Table 1)");
    std::printf(
        "# node: 2 GHz core, 32 KB 2-way L1 (3 cyc), 4 MB L2 (6 cyc), "
        "DDR3-1600 (60 ns, 12.8 GB/s)\n");
    std::printf(
        "# rmc: RGP/RRPP/RCP, %u-entry MAQ, %u-entry TLB; fabric: "
        "crossbar, 50 ns/hop\n",
        rmc.maqEntries, rmc.tlbEntries);
}

/**
 * Two nodes sharing one context: node 0 registers a segment ("server"),
 * node 1 runs the issuing application ("client"). Mirrors the paper's
 * two-node microbenchmark setup.
 */
struct TwoNodeHarness
{
    sim::Simulation sim;
    std::unique_ptr<node::Cluster> cluster;
    os::Process *serverProc = nullptr;
    os::Process *clientProc = nullptr;
    vm::VAddr serverSegBase = 0;
    vm::VAddr clientSegBase = 0;
    std::uint64_t segBytes;
    static constexpr sim::CtxId kCtx = 1;

    explicit TwoNodeHarness(const rmc::RmcParams &rmcParams,
                            std::uint64_t seg_bytes = 64ull << 20,
                            std::uint64_t seed = 1)
        : sim(seed), segBytes(seg_bytes)
    {
        node::ClusterParams params;
        params.nodes = 2;
        params.node.rmc = rmcParams;
        params.node.physMemBytes =
            std::max<std::uint64_t>(256ull << 20, 4 * seg_bytes);
        cluster = std::make_unique<node::Cluster>(sim, params);
        cluster->createSharedContext(kCtx);

        serverProc = &cluster->node(0).os().createProcess(0);
        serverSegBase = serverProc->alloc(seg_bytes);
        cluster->node(0).driver().openContext(*serverProc, kCtx);
        cluster->node(0).driver().registerSegment(*serverProc, kCtx,
                                                  serverSegBase, seg_bytes);

        clientProc = &cluster->node(1).os().createProcess(0);
        clientSegBase = clientProc->alloc(seg_bytes);
        cluster->node(1).driver().openContext(*clientProc, kCtx);
        cluster->node(1).driver().registerSegment(*clientProc, kCtx,
                                                  clientSegBase, seg_bytes);
    }

    api::RmcSession
    clientSession()
    {
        return api::RmcSession(cluster->node(1).core(0),
                               cluster->node(1).driver(), *clientProc,
                               kCtx);
    }

    api::RmcSession
    serverSession()
    {
        return api::RmcSession(cluster->node(0).core(0),
                               cluster->node(0).driver(), *serverProc,
                               kCtx);
    }
};

/** Measure local DRAM-load latency on a node (the paper's yardstick). */
inline double
measureLocalDramNs(std::uint64_t seed = 9)
{
    sim::Simulation sim(seed);
    node::ClusterParams params;
    params.nodes = 1;
    node::Cluster cluster(sim, params);
    auto &nd = cluster.node(0);
    auto &proc = nd.os().createProcess(0);
    const auto buf = proc.alloc(64ull << 20);
    nd.core(0).attachProcess(proc);
    double result = 0;
    sim.spawn([](sim::Simulation *sim, node::Core *core, vm::VAddr buf,
                 double *out) -> sim::Task {
        const int kAccesses = 256;
        const sim::Tick t0 = sim->now();
        for (int i = 0; i < kAccesses; ++i) {
            // Stride past the L2 so every load reaches DRAM.
            co_await core->load(buf + std::uint64_t(i) * 8192 * 17);
        }
        *out = sim::ticksToNs(sim->now() - t0) / kAccesses;
    }(&sim, &nd.core(0), buf, &result));
    sim.run();
    return result;
}

} // namespace sonuma::bench

#endif // SONUMA_BENCH_COMMON_HH
