/**
 * @file
 * Shared benchmark scaffolding: strict CLI-flag parsing and table
 * printing that mirrors the paper's rows/series. Cluster setup lives in
 * the library now — see api::ClusterSpec / api::TestBed — so benches
 * declare topology and segments instead of hand-wiring them.
 */

#ifndef SONUMA_BENCH_COMMON_HH
#define SONUMA_BENCH_COMMON_HH

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <initializer_list>
#include <string>
#include <vector>

#include "api/testbed.hh"
#include "sim/simulation.hh"

namespace sonuma::bench {

/**
 * Minimal flag parser: --name=value / --name.
 *
 * Flags are validated against the bench's declared set: a typo'd sweep
 * parameter must fail loudly instead of silently falling back to its
 * default and poisoning the measurement.
 */
class Args
{
  public:
    /**
     * @param known every flag this bench accepts (without the "--").
     * Unknown flags print a did-you-mean error and exit(2).
     */
    Args(int argc, char **argv,
         std::initializer_list<const char *> known)
    {
        for (int i = 1; i < argc; ++i)
            args_.emplace_back(argv[i]);
        std::vector<std::string> knownVec(known.begin(), known.end());
        std::string error;
        if (!validate(args_, knownVec, &error)) {
            std::fprintf(stderr, "%s\n", error.c_str());
            std::exit(2);
        }
    }

    /**
     * Check @p args against @p known flags. On failure fills @p error
     * with an "unknown flag / did you mean / valid flags" message.
     * Exposed for tests.
     */
    static bool
    validate(const std::vector<std::string> &args,
             const std::vector<std::string> &known, std::string *error)
    {
        for (const auto &a : args) {
            if (a.rfind("--", 0) != 0)
                continue;
            const auto eq = a.find('=');
            const std::string name =
                a.substr(2, eq == std::string::npos ? std::string::npos
                                                    : eq - 2);
            bool ok = false;
            for (const auto &k : known)
                ok = ok || k == name;
            if (ok)
                continue;
            if (error) {
                *error = "unknown flag --" + name;
                const std::string near = closest(name, known);
                if (!near.empty())
                    *error += "; did you mean --" + near + "?";
                *error += " valid flags:";
                for (const auto &k : known)
                    *error += " --" + k;
            }
            return false;
        }
        return true;
    }

    bool
    has(const std::string &name) const
    {
        for (const auto &a : args_) {
            if (a == "--" + name ||
                a.rfind("--" + name + "=", 0) == 0)
                return true;
        }
        return false;
    }

    std::string
    get(const std::string &name, const std::string &def) const
    {
        const std::string prefix = "--" + name + "=";
        for (const auto &a : args_) {
            if (a.rfind(prefix, 0) == 0)
                return a.substr(prefix.size());
        }
        return def;
    }

    std::uint64_t
    getU64(const std::string &name, std::uint64_t def) const
    {
        const auto s = get(name, "");
        return s.empty() ? def : std::stoull(s);
    }

    /**
     * Parse a comma-separated uint32 list flag ("--nodes=64,512" ->
     * {64, 512}), falling back to parsing @p def when absent. Any
     * non-numeric token (including signs: "-1" must not wrap around)
     * prints a clear error naming the flag and exits(2).
     */
    std::vector<std::uint32_t>
    getList(const std::string &name, const std::string &def) const
    {
        const std::string csv = get(name, def);
        std::vector<std::uint32_t> out;
        std::size_t pos = 0;
        while (pos < csv.size()) {
            const std::size_t comma = csv.find(',', pos);
            const std::string tok =
                csv.substr(pos, comma == std::string::npos
                                    ? std::string::npos
                                    : comma - pos);
            if (!tok.empty()) {
                std::uint32_t v = 0;
                if (!parseU32(tok, &v)) {
                    std::fprintf(stderr,
                                 "--%s: '%s' is not a uint32 (expected a "
                                 "comma-separated list like 64,512)\n",
                                 name.c_str(), tok.c_str());
                    std::exit(2);
                }
                out.push_back(v);
            }
            if (comma == std::string::npos)
                break;
            pos = comma + 1;
        }
        return out;
    }

    /**
     * Parse a torus-dims flag ("--topo=8x8x8" -> {8, 8, 8}). Returns
     * the empty vector when the flag is absent; prints the parse error
     * (with a did-you-mean for malformed axes) and exits(2) otherwise.
     */
    std::vector<std::uint32_t>
    getDims(const std::string &name) const
    {
        const auto s = get(name, "");
        if (s.empty())
            return {};
        std::vector<std::uint32_t> dims;
        std::string error;
        if (!parseDims(s, &dims, &error)) {
            std::fprintf(stderr, "--%s: %s\n", name.c_str(),
                         error.c_str());
            std::exit(2);
        }
        return dims;
    }

    /**
     * Strict "AxBxC" dims parsing. Each axis must be a positive
     * integer; on failure fills @p error with the offending axis and,
     * when the input still contains digit groups (e.g. "8,8,8" or
     * "8x8o8"), a canonical did-you-mean spelling. Exposed for tests.
     */
    static bool
    parseDims(const std::string &s, std::vector<std::uint32_t> *out,
              std::string *error)
    {
        std::vector<std::uint32_t> dims;
        std::string bad;
        bool failed = s.empty();
        std::size_t pos = 0;
        while (!failed && pos <= s.size()) {
            const std::size_t x = s.find('x', pos);
            const std::string tok =
                s.substr(pos, x == std::string::npos ? std::string::npos
                                                     : x - pos);
            std::uint32_t v = 0;
            if (!parseU32(tok, &v) || v == 0) {
                bad = tok;
                failed = true;
                break;
            }
            dims.push_back(v);
            if (x == std::string::npos)
                break;
            pos = x + 1;
        }
        if (!failed) {
            if (out)
                *out = std::move(dims);
            return true;
        }
        if (error) {
            *error = "malformed axis '" + bad + "' in '" + s +
                     "' (expected radices like 8x8 or 8x8x8)";
            const std::string canon = canonicalDims(s);
            if (!canon.empty() && canon != s)
                *error += "; did you mean " + canon + "?";
        }
        return false;
    }

  private:
    std::vector<std::string> args_;

    /**
     * Strict uint32 token parse shared by getList and parseDims:
     * digits only (no signs/whitespace stoul would accept), no
     * overflow past 2^32-1.
     */
    static bool
    parseU32(const std::string &s, std::uint32_t *out)
    {
        if (s.empty())
            return false;
        for (const char c : s) {
            if (c < '0' || c > '9')
                return false;
        }
        unsigned long long v = 0;
        try {
            v = std::stoull(s);
        } catch (const std::exception &) {
            return false;
        }
        if (v > 0xffffffffULL)
            return false;
        *out = static_cast<std::uint32_t>(v);
        return true;
    }

    /**
     * Re-spell a near-miss dims string in canonical AxBxC form by
     * joining its digit groups with 'x' ("8,8,8" / "8x8o8" -> "8x8x8");
     * "" when the input has no digits at all.
     */
    static std::string
    canonicalDims(const std::string &s)
    {
        std::string canon;
        bool inDigits = false;
        for (const char c : s) {
            if (c >= '0' && c <= '9') {
                if (!inDigits && !canon.empty())
                    canon += 'x';
                inDigits = true;
                canon += c;
            } else {
                inDigits = false;
            }
        }
        return canon;
    }

    /** Closest known flag within edit distance 3, or "". */
    static std::string
    closest(const std::string &name, const std::vector<std::string> &known)
    {
        std::string best;
        std::size_t bestDist = 4;
        for (const auto &k : known) {
            const std::size_t d = editDistance(name, k);
            if (d < bestDist) {
                bestDist = d;
                best = k;
            }
        }
        return best;
    }

    static std::size_t
    editDistance(const std::string &a, const std::string &b)
    {
        std::vector<std::size_t> row(b.size() + 1);
        for (std::size_t j = 0; j <= b.size(); ++j)
            row[j] = j;
        for (std::size_t i = 1; i <= a.size(); ++i) {
            std::size_t prev = row[0];
            row[0] = i;
            for (std::size_t j = 1; j <= b.size(); ++j) {
                const std::size_t cur = row[j];
                row[j] = std::min(
                    {row[j] + 1, row[j - 1] + 1,
                     prev + (a[i - 1] == b[j - 1] ? 0 : 1)});
                prev = cur;
            }
        }
        return row[b.size()];
    }
};

/** Print the Table 1 configuration header once per bench. */
inline void
printConfigHeader(const char *bench, const rmc::RmcParams &rmc)
{
    std::printf("# %s\n", bench);
    std::printf("# platform: %s\n",
                rmc.emulation() ? "development platform (RMCemu)"
                                : "simulated hardware (Table 1)");
    std::printf(
        "# node: 2 GHz core, 32 KB 2-way L1 (3 cyc), 4 MB L2 (6 cyc), "
        "DDR3-1600 (60 ns, 12.8 GB/s)\n");
    std::printf(
        "# rmc: RGP/RRPP/RCP, %u-entry MAQ, %u-entry TLB; fabric: "
        "crossbar, 50 ns/hop\n",
        rmc.maqEntries, rmc.tlbEntries);
}

/** The paper's two-node microbenchmark deployment (§7.2/7.3). */
inline api::TestBed
twoNodeBed(const rmc::RmcParams &rmcParams,
           std::uint64_t segBytes = 64ull << 20, std::uint64_t seed = 1)
{
    return api::TestBed(api::ClusterSpec{}
                            .nodes(2)
                            .rmc(rmcParams)
                            .segmentPerNode(segBytes)
                            .seed(seed));
}

/** Measure local DRAM-load latency on a node (the paper's yardstick). */
inline double
measureLocalDramNs(std::uint64_t seed = 9)
{
    using api::operator""_MiB;
    api::TestBed bed(
        api::ClusterSpec{}.nodes(1).segmentPerNode(64_MiB).seed(seed));
    auto &core = bed.node(0).core(0);
    core.attachProcess(bed.process(0));
    const vm::VAddr buf = bed.segBase(0);
    double result = 0;
    bed.spawn([](sim::Simulation *sim, node::Core *core, vm::VAddr buf,
                 double *out) -> sim::Task {
        const int kAccesses = 256;
        const sim::Tick t0 = sim->now();
        for (int i = 0; i < kAccesses; ++i) {
            // Stride past the L2 so every load reaches DRAM.
            co_await core->load(buf + std::uint64_t(i) * 8192 * 17);
        }
        *out = sim::ticksToNs(sim->now() - t0) / kAccesses;
    }(&bed.sim(), &core, buf, &result));
    bed.run();
    return result;
}

} // namespace sonuma::bench

#endif // SONUMA_BENCH_COMMON_HH
