/**
 * @file
 * Figure 7: remote read performance.
 *
 *  (a) latency vs request size, simulated hardware, single/double-sided
 *  (b) bandwidth vs request size, simulated hardware, single/double-sided
 *  (c) latency vs request size, development platform (emulation mode)
 *
 * Paper reference points: ~300 ns for small reads (within 4x of local
 * DRAM), 10 M ops/s at 64 B, 9.6 GB/s at 8 KB, double-sided bandwidth =
 * 2x single-sided; development platform ~1.5 us base latency growing
 * with request size.
 */

#include <cinttypes>

#include "bench/common.hh"

namespace {

using namespace sonuma;
using api::TestBed;

struct Point
{
    std::uint32_t size;
    double latencyNs = 0;
    double gbps = 0;
    double mops = 0;
};

/** Synchronous latency: one node reading (single-sided). */
sim::Task
latencyWorker(api::RmcSession *s, vm::VAddr buf, std::uint64_t segBytes,
              std::uint32_t size, int iters, double *out)
{
    sim::Simulation *sim = &s->core().simulation();
    const std::uint64_t span = segBytes / 2;
    // Warm: TLB/CT$ fills.
    for (int i = 0; i < 16; ++i)
        co_await s->read(0, (std::uint64_t(i) * size) % span, buf, size);
    const sim::Tick t0 = sim->now();
    for (int i = 0; i < iters; ++i)
        co_await s->read(0, (std::uint64_t(i) * size) % span, buf, size);
    *out = sim::ticksToNs(sim->now() - t0) / iters;
}

/** Asynchronous throughput with a full window (WQ depth). */
sim::Task
bandwidthWorker(api::RmcSession *s, vm::VAddr buf, std::uint64_t segBytes,
                sim::NodeId peer, std::uint32_t size, int ops,
                double *gbps, double *mops)
{
    sim::Simulation *sim = &s->core().simulation();
    const std::uint64_t span = segBytes / 2;
    const std::uint64_t bufSpan = 64ull * size;
    const sim::Tick t0 = sim->now();
    for (int i = 0; i < ops; ++i) {
        co_await s->readAsync(peer, (std::uint64_t(i) * size) % span,
                              buf + (std::uint64_t(i) * size) % bufSpan,
                              size);
    }
    co_await s->drain();
    const double secs = sim::ticksToNs(sim->now() - t0) * 1e-9;
    *gbps = static_cast<double>(ops) * size * 8.0 / secs / 1e9;
    *mops = static_cast<double>(ops) / secs / 1e6;
}

void
runPlatform(const rmc::RmcParams &params, bool bandwidth_too)
{
    const std::uint32_t sizes[] = {64,   128,  256,  512,
                                   1024, 2048, 4096, 8192};
    const double localNs = bench::measureLocalDramNs();
    std::printf("# local DRAM load: %.1f ns\n", localNs);

    std::printf("%-8s %14s %14s", "size(B)", "lat-1sided(ns)",
                "lat-2sided(ns)");
    if (bandwidth_too)
        std::printf(" %14s %14s %10s", "bw-1sided(Gbps)",
                    "bw-2sided(Gbps)", "Mops-1s");
    std::printf("\n");

    for (const std::uint32_t size : sizes) {
        Point p;
        p.size = size;
        const int iters = size <= 512 ? 300 : 100;

        // (a) single-sided latency.
        {
            TestBed bed = bench::twoNodeBed(params);
            auto &s = bed.session(1);
            const auto buf = s.allocBuffer(size);
            bed.spawn(latencyWorker(&s, buf, bed.segBytes(), size, iters,
                                    &p.latencyNs));
            bed.run();
        }

        // (a) double-sided latency: both nodes read from each other.
        double lat2 = 0;
        {
            TestBed bed = bench::twoNodeBed(params);
            auto &sc = bed.session(1);
            auto &ss = bed.session(0);
            const auto bufC = sc.allocBuffer(size);
            const auto bufS = ss.allocBuffer(64ull * size);
            double other = 0;
            bed.spawn(latencyWorker(&sc, bufC, bed.segBytes(), size,
                                    iters, &lat2));
            // The peer streams reads in the opposite direction.
            bed.spawn([](api::RmcSession *s, vm::VAddr buf,
                         std::uint64_t segBytes, std::uint32_t size,
                         int ops, double *sink) -> sim::Task {
                double g = 0, m = 0;
                co_await bandwidthWorker(s, buf, segBytes, 1, size, ops,
                                         &g, &m);
                *sink = g;
            }(&ss, bufS, bed.segBytes(), size, iters + 64, &other));
            bed.run();
        }

        double bw1 = 0, mops1 = 0, bw2 = 0;
        if (bandwidth_too) {
            const int ops = size <= 256 ? 20000 : (size <= 2048 ? 4000
                                                                : 1500);
            {
                TestBed bed = bench::twoNodeBed(params);
                auto &s = bed.session(1);
                const auto buf = s.allocBuffer(64ull * size);
                bed.spawn(bandwidthWorker(&s, buf, bed.segBytes(), 0,
                                          size, ops, &bw1, &mops1));
                bed.run();
            }
            {
                TestBed bed = bench::twoNodeBed(params);
                auto &sc = bed.session(1);
                auto &ss = bed.session(0);
                const auto bufC = sc.allocBuffer(64ull * size);
                const auto bufS = ss.allocBuffer(64ull * size);
                double bwa = 0, bwb = 0, m1 = 0, m2 = 0;
                bed.spawn(bandwidthWorker(&sc, bufC, bed.segBytes(), 0,
                                          size, ops, &bwa, &m1));
                bed.spawn(bandwidthWorker(&ss, bufS, bed.segBytes(), 1,
                                          size, ops, &bwb, &m2));
                bed.run();
                bw2 = bwa + bwb;
            }
        }

        std::printf("%-8u %14.1f %14.1f", p.size, p.latencyNs, lat2);
        if (bandwidth_too)
            std::printf(" %14.1f %14.1f %10.2f", bw1, bw2, mops1);
        std::printf("\n");
    }
}

} // namespace

int
main(int argc, char **argv)
{
    bench::Args args(argc, argv, {"platform"});
    const bool emuOnly = args.get("platform", "") == "emu";
    const bool hwOnly = args.get("platform", "") == "hw";

    if (!emuOnly) {
        auto hw = rmc::RmcParams::simulatedHardware();
        bench::printConfigHeader(
            "Fig. 7a/7b: remote reads, simulated hardware", hw);
        runPlatform(hw, /*bandwidth_too=*/true);
        std::printf("\n");
    }
    if (!hwOnly) {
        auto emu = rmc::RmcParams::emulationPlatform();
        bench::printConfigHeader(
            "Fig. 7c: remote reads, development platform", emu);
        runPlatform(emu, /*bandwidth_too=*/false);
    }
    return 0;
}
