/**
 * @file
 * Simulation-core microbenchmark: raw event throughput, coroutine switch
 * throughput, and fabric hop throughput, with heap-allocation accounting.
 *
 * Emits BENCH_sim_core.json (schema v1) so the performance trajectory of
 * the engine is tracked PR over PR:
 *
 *   {
 *     "bench": "sim_core", "schema": 1,
 *     "events_per_sec": ..., "ns_per_event": ...,
 *     "legacy_events_per_sec": ..., "speedup_vs_legacy": ...,
 *     "allocs_per_event_steady_state": ...,
 *     "coro_switches_per_sec": ..., "frame_pool_reuse_ratio": ...,
 *     "fabric_hops_per_sec": ..., "allocs_per_hop_steady_state": ...,
 *     "peak_rss_bytes": ...
 *   }
 *
 * The A/B baseline is LegacyEventQueue below — a faithful copy of the
 * pre-refactor queue (std::function callbacks, unordered_set pending
 * tracking, std::priority_queue storage) — run on the identical
 * workload, so the speedup number is measured live rather than against
 * a stale checked-in figure.
 *
 * This translation unit overrides global operator new/delete to count
 * allocations; the steady-state sections of the report must stay at
 * zero allocations per event (asserted more strictly by
 * tests/sim_alloc_test.cc).
 */

#include <sys/resource.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <new>
#include <queue>
#include <string>
#include <unordered_set>
#include <vector>

#include "bench/common.hh"
#include "fabric/crossbar.hh"
#include "fabric/fabric.hh"
#include "sim/event_queue.hh"
#include "sim/frame_pool.hh"
#include "sim/task.hh"

//
// ------------------- global allocation accounting ----------------------
//

static std::uint64_t g_allocCount = 0;

void *
operator new(std::size_t n)
{
    ++g_allocCount;
    if (void *p = std::malloc(n ? n : 1))
        return p;
    throw std::bad_alloc();
}

void *
operator new[](std::size_t n)
{
    return operator new(n);
}

void
operator delete(void *p) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete[](void *p) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, std::size_t) noexcept
{
    std::free(p);
}

namespace {

using namespace sonuma;
using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point t0)
{
    return std::chrono::duration<double>(Clock::now() - t0).count();
}

//
// --------------------- the pre-refactor event queue --------------------
//

/** Faithful copy of the seed EventQueue (kept here as the A/B baseline). */
class LegacyEventQueue
{
  public:
    using EventId = std::uint64_t;

    sim::Tick now() const { return now_; }

    EventId
    schedule(sim::Tick when, std::function<void()> fn)
    {
        EventId id = nextSeq_++;
        heap_.push(Event{when, id, std::move(fn)});
        pending_.insert(id);
        return id;
    }

    EventId
    scheduleAfter(sim::Tick delay, std::function<void()> fn)
    {
        return schedule(now_ + delay, std::move(fn));
    }

    bool
    step()
    {
        while (!heap_.empty()) {
            Event ev = std::move(const_cast<Event &>(heap_.top()));
            heap_.pop();
            if (pending_.erase(ev.seq) == 0)
                continue;
            now_ = ev.when;
            ev.fn();
            return true;
        }
        return false;
    }

    void
    run()
    {
        while (step()) {
        }
    }

  private:
    struct Event
    {
        sim::Tick when;
        std::uint64_t seq;
        std::function<void()> fn;

        bool
        operator>(const Event &o) const
        {
            return when != o.when ? when > o.when : seq > o.seq;
        }
    };

    std::priority_queue<Event, std::vector<Event>, std::greater<>> heap_;
    std::unordered_set<EventId> pending_;
    sim::Tick now_ = 0;
    std::uint64_t nextSeq_ = 0;
};

//
// --------------------------- event churn -------------------------------
//

/**
 * Self-rescheduling event chains with capture sizes drawn from the real
 * simulator: half the chains carry an 8-byte capture (a coroutine-handle
 * resume), half a 40-byte capture (a model callback with context), which
 * libstdc++'s std::function must heap-allocate but sim::Callback keeps
 * inline.
 */
template <typename Queue>
struct ChurnHarness
{
    Queue &q;
    std::uint64_t target; //!< chains stop re-arming once fired reaches it
    std::uint64_t fired = 0;

    struct BigState
    {
        std::uint64_t a = 1, b = 2, c = 3, d = 4;
    };

    void
    armSmall()
    {
        q.scheduleAfter(1, [this] {
            ++fired;
            if (fired < target)
                armSmall();
        });
    }

    void
    armBig(BigState st)
    {
        q.scheduleAfter(1, [this, st] {
            fired += st.a != 0 ? 1 : 0;
            if (fired < target)
                armBig(st);
        });
    }
};

template <typename Queue>
double
eventChurnEventsPerSec(std::uint64_t totalEvents, int chains)
{
    Queue q;
    ChurnHarness<Queue> churn{q, totalEvents};
    for (int i = 0; i < chains; ++i) {
        if (i % 2 == 0)
            churn.armSmall();
        else
            churn.armBig({});
    }
    const auto t0 = Clock::now();
    q.run();
    const double dt = secondsSince(t0);
    return static_cast<double>(churn.fired) / dt;
}

/** Allocations per event in a warmed-up run of the production queue. */
double
eventChurnAllocsPerEvent(std::uint64_t totalEvents, int chains)
{
    sim::EventQueue q;
    q.reserve(static_cast<std::size_t>(chains) * 2);
    // Warm-up: grows slot table, heap storage, and callback pools.
    ChurnHarness<sim::EventQueue> warm{q, static_cast<std::uint64_t>(chains) * 8};
    for (int i = 0; i < chains; ++i)
        i % 2 == 0 ? warm.armSmall() : warm.armBig({});
    q.run();

    ChurnHarness<sim::EventQueue> churn{q, totalEvents};
    for (int i = 0; i < chains; ++i)
        i % 2 == 0 ? churn.armSmall() : churn.armBig({});
    const std::uint64_t a0 = g_allocCount;
    q.run();
    return static_cast<double>(g_allocCount - a0) /
           static_cast<double>(churn.fired);
}

//
// ------------------------- coroutine churn -----------------------------
//

sim::FireAndForget
spinTask(sim::EventQueue &eq, int iters, std::uint64_t *switches)
{
    for (int i = 0; i < iters; ++i) {
        co_await sim::Delay(eq, 1);
        ++*switches;
    }
}

struct CoroResult
{
    double switchesPerSec;
    double reuseRatio;
    double allocsPerSpawn;
};

CoroResult
coroChurn(int tasks, int iters, int respawnRounds)
{
    sim::EventQueue eq;
    std::uint64_t switches = 0;

    // Warm-up round populates the frame pool and the queue's slot table.
    for (int i = 0; i < tasks; ++i)
        spinTask(eq, iters, &switches);
    eq.run();

    auto &pool = sim::FramePool::instance();
    pool.resetStats();
    switches = 0;
    const std::uint64_t a0 = g_allocCount;
    const auto t0 = Clock::now();
    // Respawn rounds exercise frame alloc/free cycles, not just resumes.
    for (int r = 0; r < respawnRounds; ++r) {
        for (int i = 0; i < tasks; ++i)
            spinTask(eq, iters, &switches);
        eq.run();
    }
    const double dt = secondsSince(t0);
    const std::uint64_t allocs = g_allocCount - a0;
    const auto &st = pool.stats();
    return CoroResult{
        static_cast<double>(switches) / dt,
        st.allocs ? static_cast<double>(st.reuses) /
                        static_cast<double>(st.allocs)
                  : 0.0,
        static_cast<double>(allocs) /
            (static_cast<double>(tasks) * respawnRounds),
    };
}

//
// --------------------------- fabric churn ------------------------------
//

struct FabricResult
{
    double hopsPerSec;
    double allocsPerHop;
};

FabricResult
fabricChurn(std::uint64_t messages)
{
    sim::EventQueue eq;
    sim::StatRegistry stats;
    fab::CrossbarFabric xbar(eq, stats);
    fab::NetworkInterface ni0(eq, stats, "ni0", 0, xbar);
    fab::NetworkInterface ni1(eq, stats, "ni1", 1, xbar);

    std::uint64_t received = 0;
    ni1.onArrival(fab::Lane::kRequest, [&ni1, &received] {
        while (ni1.hasMessage(fab::Lane::kRequest)) {
            ni1.pop(fab::Lane::kRequest);
            ++received;
        }
    });

    std::uint64_t toSend = messages;
    fab::Message msg;
    msg.op = fab::Op::kReadReq;
    msg.srcNid = 0;
    msg.dstNid = 1;
    msg.payloadLen = 0;

    // Keep the inject queue fed from an event-driven producer.
    struct Producer
    {
        sim::EventQueue &eq;
        fab::NetworkInterface &ni;
        fab::Message &msg;
        std::uint64_t &toSend;

        void
        pump()
        {
            while (toSend > 0 && ni.trySend(msg))
                --toSend;
            if (toSend > 0)
                eq.scheduleAfter(100, [this] { pump(); });
        }
    } producer{eq, ni0, msg, toSend};

    // Warm-up: size every ring on the path.
    toSend = 1024;
    producer.pump();
    eq.run();
    received = 0;
    toSend = messages;

    const std::uint64_t a0 = g_allocCount;
    const auto t0 = Clock::now();
    producer.pump();
    eq.run();
    const double dt = secondsSince(t0);
    return FabricResult{
        static_cast<double>(received) / dt,
        static_cast<double>(g_allocCount - a0) /
            static_cast<double>(received),
    };
}

std::uint64_t
peakRssBytes()
{
    struct rusage ru;
    getrusage(RUSAGE_SELF, &ru);
    return static_cast<std::uint64_t>(ru.ru_maxrss) * 1024;
}

} // namespace

int
main(int argc, char **argv)
{
    bench::Args args(argc, argv, {"events", "chains", "messages", "out"});
    const std::uint64_t events = args.getU64("events", 4'000'000);
    const int chains = static_cast<int>(args.getU64("chains", 64));
    const std::uint64_t messages = args.getU64("messages", 400'000);
    const std::string out = args.get("out", "BENCH_sim_core.json");

    std::printf("# sim_core: event/coroutine/fabric core throughput\n");

    // Best-of-3, interleaved, so scheduler/frequency noise on a busy
    // host cannot bias the A/B ratio toward either queue.
    double legacy = 0, current = 0;
    for (int rep = 0; rep < 3; ++rep) {
        legacy = std::max(
            legacy, eventChurnEventsPerSec<LegacyEventQueue>(events, chains));
        current = std::max(
            current, eventChurnEventsPerSec<sim::EventQueue>(events, chains));
    }
    std::printf("legacy queue:   %12.0f events/s  (%6.1f ns/event)\n",
                legacy, 1e9 / legacy);
    std::printf("inline queue:   %12.0f events/s  (%6.1f ns/event)\n",
                current, 1e9 / current);
    std::printf("speedup:        %12.2fx\n", current / legacy);

    const double allocsPerEvent =
        eventChurnAllocsPerEvent(events / 4, chains);
    std::printf("steady allocs:  %12.4f per event\n", allocsPerEvent);

    const CoroResult coro = coroChurn(256, 64, 32);
    std::printf("coroutines:     %12.0f switches/s  "
                "(pool reuse %.3f, %.4f allocs/spawn)\n",
                coro.switchesPerSec, coro.reuseRatio, coro.allocsPerSpawn);

    const FabricResult fabric = fabricChurn(messages);
    std::printf("fabric:         %12.0f hops/s  (%.4f allocs/hop)\n",
                fabric.hopsPerSec, fabric.allocsPerHop);

    const std::uint64_t rss = peakRssBytes();
    std::printf("peak rss:       %12.1f MB\n",
                static_cast<double>(rss) / (1024.0 * 1024.0));

    if (FILE *f = std::fopen(out.c_str(), "w")) {
        std::fprintf(f,
                     "{\n"
                     "  \"bench\": \"sim_core\",\n"
                     "  \"schema\": 1,\n"
                     "  \"events_per_sec\": %.0f,\n"
                     "  \"ns_per_event\": %.2f,\n"
                     "  \"legacy_events_per_sec\": %.0f,\n"
                     "  \"speedup_vs_legacy\": %.3f,\n"
                     "  \"allocs_per_event_steady_state\": %.6f,\n"
                     "  \"coro_switches_per_sec\": %.0f,\n"
                     "  \"frame_pool_reuse_ratio\": %.4f,\n"
                     "  \"allocs_per_coro_spawn\": %.6f,\n"
                     "  \"fabric_hops_per_sec\": %.0f,\n"
                     "  \"allocs_per_hop_steady_state\": %.6f,\n"
                     "  \"peak_rss_bytes\": %llu\n"
                     "}\n",
                     current, 1e9 / current, legacy, current / legacy,
                     allocsPerEvent, coro.switchesPerSec, coro.reuseRatio,
                     coro.allocsPerSpawn, fabric.hopsPerSec,
                     fabric.allocsPerHop,
                     static_cast<unsigned long long>(rss));
        std::fclose(f);
        std::printf("# wrote %s\n", out.c_str());
    } else {
        std::fprintf(stderr, "cannot write %s\n", out.c_str());
        return 1;
    }
    return 0;
}
