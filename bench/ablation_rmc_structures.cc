/**
 * @file
 * Ablation: the RMC's microarchitectural structures (§4.3).
 *
 *  - MAQ depth sweep: in-flight memory accesses bound remote-read
 *    bandwidth (Table 1 uses 32, matching the L1 MSHRs).
 *  - TLB size sweep: page-walk frequency under a large working set.
 *  - CT$ on/off: steady-state requests avoid a CT memory read.
 *
 * Not a paper figure; quantifies design choices DESIGN.md calls out.
 */

#include <cstdio>

#include "bench/common.hh"

namespace {

using namespace sonuma;
using api::TestBed;

struct Result
{
    double gbps = 0;
    double latencyNs = 0;
    std::uint64_t walks = 0;
    std::uint64_t ctMisses = 0;
};

Result
measure(const rmc::RmcParams &params, bool disableCtCache,
        std::uint32_t readSize, int ops, std::uint64_t stride = 0,
        std::uint64_t spanBytes = 0)
{
    Result r;
    TestBed bed = bench::twoNodeBed(params);
    if (disableCtCache)
        bed.node(0).rmc().contextTable().setCacheEnabled(false);
    auto &s = bed.session(1);
    const auto buf = s.allocBuffer(64ull * readSize);
    bed.spawn([](sim::Simulation *sim, api::RmcSession *s, vm::VAddr buf,
                 std::uint64_t segBytes, std::uint32_t size, int ops,
                 std::uint64_t stride, std::uint64_t spanBytes,
                 Result *r) -> sim::Task {
        if (stride == 0)
            stride = size;
        if (spanBytes == 0)
            spanBytes = segBytes / 2;
        // Latency (blocking, warm).
        for (int i = 0; i < 16; ++i)
            co_await s->read(0, (std::uint64_t(i) * stride) % spanBytes,
                             buf, size);
        sim::Tick t0 = sim->now();
        for (int i = 0; i < 100; ++i)
            co_await s->read(0, (std::uint64_t(i) * stride) % spanBytes,
                             buf, size);
        r->latencyNs = sim::ticksToNs(sim->now() - t0) / 100;
        // Bandwidth (async window).
        t0 = sim->now();
        for (int i = 0; i < ops; ++i) {
            co_await s->readAsync(
                0, (std::uint64_t(i) * stride) % spanBytes,
                buf + (std::uint64_t(i) % 64) * size, size);
        }
        co_await s->drain();
        const double secs = sim::ticksToNs(sim->now() - t0) * 1e-9;
        r->gbps = static_cast<double>(ops) * size * 8.0 / secs / 1e9;
    }(&bed.sim(), &s, buf, bed.segBytes(), readSize, ops, stride,
      spanBytes, &r));
    bed.run();
    r.walks = bed.node(0).rmc().tlb().missCount();
    r.ctMisses = bed.node(0).rmc().contextTable().cacheMisses();
    return r;
}

} // namespace

int
main()
{
    std::printf("# Ablation: RMC structures (remote reads, 2 nodes)\n\n");

    std::printf("## MAQ depth sweep (8 KB reads)\n");
    std::printf("%-10s %14s %14s\n", "maq", "bw(Gbps)", "lat(ns)");
    for (std::uint32_t maq : {1u, 2u, 4u, 8u, 16u, 32u, 64u}) {
        auto p = sonuma::rmc::RmcParams::simulatedHardware();
        p.maqEntries = maq;
        const auto r = measure(p, false, 8192, 600);
        std::printf("%-10u %14.1f %14.1f\n", maq, r.gbps, r.latencyNs);
    }

    std::printf("\n## TLB size sweep (64 B reads, one per page over a "
                "64-page working set)\n");
    std::printf("%-10s %14s %14s %14s\n", "tlb", "Mops", "lat(ns)",
                "walks");
    for (std::uint32_t tlb : {4u, 8u, 16u, 32u, 64u, 128u}) {
        auto p = sonuma::rmc::RmcParams::simulatedHardware();
        p.tlbEntries = tlb;
        const auto r = measure(p, false, 64, 8000, /*stride=*/8192,
                               /*spanBytes=*/64 * 8192);
        std::printf("%-10u %14.2f %14.1f %14llu\n", tlb,
                    r.gbps / 8.0 * 1e9 / 64 / 1e6, r.latencyNs,
                    static_cast<unsigned long long>(r.walks));
    }

    std::printf("\n## CT$ on/off (64 B reads)\n");
    std::printf("%-10s %14s %14s\n", "ct$", "lat(ns)", "ctMisses");
    for (bool disabled : {false, true}) {
        const auto r =
            measure(sonuma::rmc::RmcParams::simulatedHardware(), disabled,
                    64, 4000);
        std::printf("%-10s %14.1f %14llu\n", disabled ? "off" : "on",
                    r.latencyNs,
                    static_cast<unsigned long long>(r.ctMisses));
    }
    return 0;
}
