/**
 * @file
 * Figure 1: netpipe over a commodity deep network stack (the paper's
 * motivation measurement on two directly-connected Calxeda ECX-1000
 * microservers with integrated 10 GbE).
 *
 * Paper reference points: latency in excess of 40 us for small request
 * sizes and bandwidth under 2 Gbps for large ones, despite the 10 Gbps
 * fabric — the cost of per-packet TCP/IP processing on wimpy cores.
 */

#include <cstdio>

#include "baseline/tcp_stack.hh"
#include "bench/common.hh"
#include "sim/simulation.hh"

namespace {

using namespace sonuma;
using baseline::TcpPair;
using baseline::TcpParams;

/** Netpipe reports one-way latency = RTT/2 for the ping-pong test. */
double
latencyUs(std::uint32_t size)
{
    sim::Simulation sim;
    TcpPair tcp(sim.eq(), sim.stats(), TcpParams{});
    double us = 0;
    sim.spawn([](sim::Simulation *sim, TcpPair *tcp, std::uint32_t size,
                 double *out) -> sim::Task {
        const int iters = 8;
        const sim::Tick t0 = sim->now();
        for (int i = 0; i < iters; ++i)
            co_await tcp->pingPong(size);
        *out = sim::ticksToUs(sim->now() - t0) / (2.0 * iters);
    }(&sim, &tcp, size, &us));
    sim.run();
    return us;
}

double
bandwidthGbps(std::uint32_t size)
{
    sim::Simulation sim;
    TcpPair tcp(sim.eq(), sim.stats(), TcpParams{});
    double gbps = 0;
    sim.spawn([](sim::Simulation *sim, TcpPair *tcp, std::uint32_t size,
                 double *out) -> sim::Task {
        const int count = size >= 65536 ? 24 : 64;
        const sim::Tick t0 = sim->now();
        co_await tcp->stream(size, count);
        const double secs = sim::ticksToUs(sim->now() - t0) * 1e-6;
        *out = static_cast<double>(count) * size * 8.0 / secs / 1e9;
    }(&sim, &tcp, size, &gbps));
    sim.run();
    return gbps;
}

} // namespace

int
main()
{
    std::printf("# Fig. 1: netpipe on a Calxeda-class microserver "
                "(TCP/IP deep-stack model)\n");
    std::printf("# 10 Gbps integrated fabric; per-packet kernel costs on "
                "wimpy cores dominate\n");
    std::printf("%-10s %14s %16s\n", "size(B)", "latency(us)",
                "bandwidth(Gbps)");
    for (std::uint32_t size :
         {64u, 256u, 1024u, 4096u, 16384u, 65536u, 262144u}) {
        std::printf("%-10u %14.1f %16.2f\n", size, latencyUs(size),
                    bandwidthGbps(size));
    }
    std::printf("# paper shape: >40 us small-message latency, "
                "<2 Gbps large-message bandwidth\n");
    return 0;
}
